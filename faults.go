package ptbsim

import (
	"fmt"
	"strings"

	"ptbsim/internal/fault"
)

// reshapeFaultErr rewrites an internal fault-package error into the public
// parsers' uniform shape — "ptbsim: invalid fault spec: <detail>" — while
// keeping the ErrBadFaultSpec sentinel reachable through errors.Is.
func reshapeFaultErr(err error) error {
	detail := strings.TrimPrefix(err.Error(), "fault: ")
	detail = strings.TrimPrefix(detail, fault.ErrBadSpec.Error()+": ")
	return fmt.Errorf("ptbsim: %w: %s", fault.ErrBadSpec, detail)
}

// FaultSpec declares the fault-injection rates and parameters of a run.
// The zero FaultSpec injects nothing, and a run under the zero spec is
// bit-identical to a run with no spec at all (the golden tests assert the
// digests match byte for byte). Rates are probabilities in [0, 1]; cycle
// counts and retry bounds left at zero select the engine defaults, and
// negative values disable the corresponding mechanism.
//
// Injection is deterministic: the same Seed and rates reproduce the same
// fault sequence, and each fault domain (token exchange, NoC links, power
// sensors, DVFS) draws from an independent stream, so enabling one kind of
// fault never perturbs another kind's decisions. Faults change what the
// controllers observe — a lost report, a stalled link, a noisy sensor —
// never the ground-truth energy or token ledgers, so every conservation
// invariant keeps holding with injection enabled.
type FaultSpec struct {
	// Seed seeds the injector's random streams (0 selects a fixed non-zero
	// constant, so runs stay deterministic either way).
	Seed uint64

	// TokenDrop is the loss probability of one PTB token message: applied
	// per core per cycle to the spare-token report toward the balancer and
	// per delivery attempt to each in-flight token batch. Dropped batches
	// are retransmitted with exponential backoff up to MaxRetries times,
	// then recorded as lost; cores whose reports go stale past StaleTimeout
	// are handled by the balancer's watchdog, which falls back to their
	// static per-core share. Either event marks the run Degraded.
	TokenDrop float64
	// TokenDelay is the probability a token batch is delayed by
	// TokenDelayCycles beyond its normal transfer latency.
	TokenDelay float64
	// TokenDup is the probability a token batch is duplicated in flight
	// (the balancer receives it twice; the extra energy is tracked in
	// Result.TokenDupPJ).
	TokenDup float64
	// TokenDelayCycles is the extra delay of a delayed batch (0 = 16).
	TokenDelayCycles int64
	// StaleTimeout is the balancer watchdog threshold in cycles
	// (0 = 64, negative = watchdog disabled).
	StaleTimeout int64
	// MaxRetries bounds batch retransmissions (0 = 3, negative = no
	// retries: a dropped batch is immediately lost).
	MaxRetries int
	// RetryBackoff is the base retransmit backoff in cycles, doubling per
	// attempt (0 = 8, giving 8, 16, 32, …).
	RetryBackoff int64

	// LinkStall is the per-link-traversal probability of a transient NoC
	// stall of LinkStallCycles.
	LinkStall float64
	// LinkStallCycles is the stall duration (0 = 16).
	LinkStallCycles int64
	// FlitCorrupt is the per-link-traversal probability of detected flit
	// corruption; the flits are retransmitted across the link, doubling its
	// serialization time and link/router energy for that hop.
	FlitCorrupt float64

	// SensorNoise is the relative amplitude of white noise on the per-core
	// power-sensor readings (0.05 = readings jitter within ±5%).
	SensorNoise float64
	// SensorDrift bounds each sensor's slow calibration drift: a bounded
	// random walk within ±SensorDrift.
	SensorDrift float64

	// DVFSGlitch is the per-transition probability that a DVFS mode change
	// fails: the core pays the transition stall but keeps its current
	// operating point until the next window.
	DVFSGlitch float64
}

// internal converts the public spec to the engine's representation.
func (s FaultSpec) internal() fault.Spec {
	return fault.Spec{
		Seed:             s.Seed,
		TokenDrop:        s.TokenDrop,
		TokenDelay:       s.TokenDelay,
		TokenDup:         s.TokenDup,
		TokenDelayCycles: s.TokenDelayCycles,
		StaleTimeout:     s.StaleTimeout,
		MaxRetries:       s.MaxRetries,
		RetryBackoff:     s.RetryBackoff,
		LinkStall:        s.LinkStall,
		LinkStallCycles:  s.LinkStallCycles,
		FlitCorrupt:      s.FlitCorrupt,
		SensorNoise:      s.SensorNoise,
		SensorDrift:      s.SensorDrift,
		DVFSGlitch:       s.DVFSGlitch,
	}
}

// fromInternal converts the engine's representation back to the public one.
func fromInternal(s fault.Spec) FaultSpec {
	return FaultSpec{
		Seed:             s.Seed,
		TokenDrop:        s.TokenDrop,
		TokenDelay:       s.TokenDelay,
		TokenDup:         s.TokenDup,
		TokenDelayCycles: s.TokenDelayCycles,
		StaleTimeout:     s.StaleTimeout,
		MaxRetries:       s.MaxRetries,
		RetryBackoff:     s.RetryBackoff,
		LinkStall:        s.LinkStall,
		LinkStallCycles:  s.LinkStallCycles,
		FlitCorrupt:      s.FlitCorrupt,
		SensorNoise:      s.SensorNoise,
		SensorDrift:      s.SensorDrift,
		DVFSGlitch:       s.DVFSGlitch,
	}
}

// Zero reports whether the spec injects nothing (all rates zero); the
// parameters (seed, timeouts, retry bounds) are ignored.
func (s FaultSpec) Zero() bool { return s.internal().Zero() }

// Validate checks every rate; errors wrap ErrBadFaultSpec.
func (s FaultSpec) Validate() error {
	if err := s.internal().Validate(); err != nil {
		return reshapeFaultErr(err)
	}
	return nil
}

// String renders the spec in ParseFaultSpec's comma-separated key=value
// syntax, omitting zero fields, in a deterministic key order. The zero
// spec renders as "". The output round-trips through ParseFaultSpec.
func (s FaultSpec) String() string { return s.internal().String() }

// ParseFaultSpec builds a FaultSpec from a comma-separated key=value list,
// the syntax the CLI tools accept for their -faults flag:
//
//	"seed=42,drop=0.1,stall=0.05,noise=0.02"
//
// Keys (all optional): seed, drop, delay, dup, delaycycles, stale,
// retries, backoff, stall, stallcycles, corrupt, noise, drift, glitch.
// Unknown or repeated keys and malformed values return an error wrapping
// ErrBadFaultSpec; the empty string parses to the zero spec.
func ParseFaultSpec(in string) (FaultSpec, error) {
	s, err := fault.Parse(in)
	if err != nil {
		return FaultSpec{}, reshapeFaultErr(err)
	}
	return fromInternal(s), nil
}
