package ptbsim

import "testing"

func TestFacadeRun(t *testing.T) {
	base, err := Run(Config{Benchmark: "cholesky", Cores: 2, WorkloadScale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles == 0 || base.EnergyJ <= 0 {
		t.Fatalf("empty result %+v", base)
	}
	ptb, err := Run(Config{Benchmark: "cholesky", Cores: 2, Technique: PTB, Policy: Dynamic, WorkloadScale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if NormalizedAoPBPct(ptb, base) >= 100 {
		t.Fatalf("PTB did not improve accuracy: %.1f%%", NormalizedAoPBPct(ptb, base))
	}
	if ptb.Technique != PTB || ptb.Policy != "Dynamic" {
		t.Fatalf("labels wrong: %+v", ptb)
	}
}

func TestFacadeUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmark: "doom"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 14 {
		t.Fatalf("%d benchmarks, want 14", len(bs))
	}
	for _, b := range bs {
		if b.Name == "" || b.Suite == "" || b.InputSize == "" {
			t.Fatalf("incomplete info %+v", b)
		}
	}
}

func TestFacadeTrace(t *testing.T) {
	tr, err := RunTrace(Config{Benchmark: "fft", Cores: 2, WorkloadScale: 0.05}, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ChipTrace) == 0 || len(tr.CoreTrace) == 0 {
		t.Fatal("traces empty")
	}
	if tr.GlobalBudgetPJ <= 0 {
		t.Fatal("budget missing")
	}
}

func TestFacadeBreakdownFields(t *testing.T) {
	r, err := Run(Config{Benchmark: "fluidanimate", Cores: 4, WorkloadScale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	sum := r.BusyFrac + r.LockAcqFrac + r.LockRelFrac + r.BarrierFrac
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	if r.LockAcqFrac == 0 {
		t.Fatal("fluidanimate shows no lock time")
	}
}

func TestFacadePTBLatency(t *testing.T) {
	s, p, r := PTBLatency(16)
	if s+p+r != 10 {
		t.Fatalf("16-core latency %d+%d+%d, want total 10", s, p, r)
	}
}

func TestFacadePessimisticLatency(t *testing.T) {
	r, err := Run(Config{Benchmark: "ocean", Cores: 4, Technique: PTB,
		WorkloadScale: 0.05, PessimisticPTBLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Fatal("pessimistic run failed")
	}
}

func TestFacadePolicyStrings(t *testing.T) {
	if ToAll.String() != "ToAll" || ToOne.String() != "ToOne" || Dynamic.String() != "Dynamic" {
		t.Fatal("policy names wrong")
	}
}

func TestFacadeClusteredPTB(t *testing.T) {
	r, err := Run(Config{Benchmark: "fft", Cores: 8, Technique: PTB,
		PTBClusterSize: 4, WorkloadScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("clustered run made no progress")
	}
}

func TestFacadeMaxBIPS(t *testing.T) {
	r, err := Run(Config{Benchmark: "fft", Cores: 2, Technique: MaxBIPS, WorkloadScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Technique != MaxBIPS || r.Committed == 0 {
		t.Fatalf("maxbips run broken: %+v", r)
	}
}

func TestFacadeEDP(t *testing.T) {
	r := &Result{EnergyJ: 3, Cycles: 3_000_000_000}
	if d := r.EDP() - 3; d > 1e-9 || d < -1e-9 {
		t.Fatalf("EDP = %v", r.EDP())
	}
	if d := r.ED2P() - 3; d > 1e-9 || d < -1e-9 {
		t.Fatalf("ED2P = %v", r.ED2P())
	}
}

func TestFacadeComponents(t *testing.T) {
	r, err := Run(Config{Benchmark: "fft", Cores: 2, WorkloadScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ComponentJ) == 0 || r.ComponentJ["execute"] <= 0 {
		t.Fatalf("component breakdown missing: %v", r.ComponentJ)
	}
}

func TestFacadeSpinGate(t *testing.T) {
	r, err := Run(Config{Benchmark: "fluidanimate", Cores: 4,
		Technique: PTBSpinGate, Policy: Dynamic, WorkloadScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("spin-gated run made no progress")
	}
}
