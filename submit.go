package ptbsim

import (
	"context"
	"time"

	"ptbsim/internal/sched"
)

// This file is the service-facing half of the Experiment API: a bounded
// priority queue with typed job states and context-aware Submit/Await,
// plus a pluggable result-cache backend. The sweep methods (Run, RunAll,
// RunSweep) execute on their callers' goroutines; Submit instead hands
// the configuration to the experiment's persistent worker pool and
// returns a Job handle immediately — the shape a long-running service
// (cmd/ptbserve) needs: admission control up front, the wait bounded by
// the requester's own context, and dedup/caching shared with every other
// entry point.

// ResultCache is the pluggable cache backend of an Experiment: the
// default in-memory map and any persistent store (ptbserve's
// digest-verified on-disk store) satisfy one contract. Implementations
// must be safe for concurrent use, and Get must be fast — an IO-backed
// store should answer from an in-memory front and write through. Results
// handed to Put are shared; treat them as immutable.
type ResultCache interface {
	// Get reports the cached result for a canonical configuration key.
	Get(key string) (*Result, bool)
	// Put stores a fresh simulation result.
	Put(key string, r *Result)
	// Len reports the number of cached results.
	Len() int
}

// WithCache installs a result-cache backend (default: a process-local
// map). Every entry point — Run, RunAll, RunSweep, Submit — reads and
// writes through it, so a persistent backend makes results survive
// restarts.
func WithCache(c ResultCache) Option {
	return func(e *Experiment) { e.cacheBackend = c }
}

// WithQueue bounds the Submit queue: at most capacity configurations may
// be waiting for a worker (running jobs, cache hits and coalesced
// duplicates never count). Submit on a full queue fails with an error
// wrapping ErrQueueFull — the backpressure signal a service turns into
// 429. capacity <= 0 (the default) leaves the queue unbounded.
func WithQueue(capacity int) Option {
	return func(e *Experiment) { e.queueCap = capacity }
}

// ErrQueueFull rejects a Submit that found the bounded queue (WithQueue)
// at capacity; nothing was enqueued. Branch with errors.Is.
var ErrQueueFull = sched.ErrQueueFull

// ErrDraining rejects a Submit that arrived after Drain: the experiment
// finishes the work it already accepted but takes no more. Branch with
// errors.Is.
var ErrDraining = sched.ErrDraining

// CanceledError is the typed error for a request abandoned because the
// caller's context ended while its result was still being computed — by
// this caller or another one it had coalesced onto. It wraps the context
// error (errors.Is(err, context.Canceled) keeps working) and names the
// abandoned key; the run itself keeps going for any remaining callers.
type CanceledError = sched.CanceledError

// JobState is the lifecycle of a submitted Job: JobQueued → JobRunning →
// JobDone or JobFailed. A job resolved from the cache or coalesced onto
// another caller's run skips JobRunning.
type JobState = sched.State

// The job states.
const (
	JobQueued  = sched.StateQueued
	JobRunning = sched.StateRunning
	JobDone    = sched.StateDone
	JobFailed  = sched.StateFailed
)

// Job is one accepted submission: a handle on a configuration making its
// way through the experiment's queue. Duplicate submissions of one
// configuration share the underlying simulation but hold distinct
// handles, each with its own provenance.
type Job struct {
	cfg Config
	t   *sched.Ticket[*Result]
}

// Config returns the submitted configuration with the experiment's
// defaults applied (the same normalization Run performs).
func (j *Job) Config() Config { return j.cfg }

// Key returns the canonical cache key of the submitted configuration —
// the dedup identity, useful for logs and service bookkeeping.
func (j *Job) Key() string { return j.t.Key() }

// State reports the job's current lifecycle state.
func (j *Job) State() JobState { return j.t.State() }

// Cached reports whether the job was answered from the result cache at
// submission, without simulating.
func (j *Job) Cached() bool { return j.t.Cached() }

// Coalesced reports whether the job joined a simulation another caller
// had already queued or started.
func (j *Job) Coalesced() bool { return j.t.Coalesced() }

// Await blocks until the job resolves or ctx ends, returning the shared
// read-only Result. A cancelled wait returns a *CanceledError; the
// simulation itself keeps its queue slot and still runs (other callers
// may hold handles on it, and the result enters the cache either way).
// Await may be called any number of times, from any goroutine.
func (j *Job) Await(ctx context.Context) (*Result, error) {
	return j.t.Await(ctx)
}

// Submit validates and normalizes cfg, then enqueues it for the
// experiment's persistent worker pool, returning the Job handle
// immediately. Priority orders the queue: higher runs sooner, equal
// priorities in submission order. Deduplication happens before queueing —
// a configuration already cached resolves on the spot, one already queued
// or running coalesces onto that simulation, and neither consumes a queue
// slot, so duplicates can never trip backpressure. A genuinely new
// configuration occupies a slot until a worker picks it up; with
// WithQueue set, Submit on a full queue fails with an error wrapping
// ErrQueueFull, and after Drain with ErrDraining.
//
// ctx gates only admission; the simulation runs detached from the
// submitter (bound it with Job.Await). Each submission produces exactly
// one Progress event — with Cached set when it resolved without a fresh
// simulation — when it completes.
func (e *Experiment) Submit(ctx context.Context, cfg Config, priority int) (*Job, error) {
	return e.SubmitOpts(ctx, cfg, SubmitOptions{Priority: priority})
}

// SubmitOptions refines a submission beyond the configuration itself.
type SubmitOptions struct {
	// Priority orders the queue: higher runs sooner, equal priorities in
	// submission order.
	Priority int
	// Timeout, when > 0, overrides the experiment's WithRunTimeout for
	// this job: the run fails with an error wrapping ErrRunDeadline once
	// the wall-clock budget is spent (still subject to WithRetries). It is
	// not part of the dedup identity — a submission that coalesces onto an
	// in-flight run inherits that run's deadline.
	Timeout time.Duration
}

// SubmitOpts is Submit with per-submission options; see Submit for the
// queueing, dedup and backpressure semantics.
func (e *Experiment) SubmitOpts(ctx context.Context, cfg Config, opts SubmitOptions) (*Job, error) {
	cfg = e.normalize(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	timeout := e.runTimeout
	if opts.Timeout > 0 {
		timeout = opts.Timeout
	}
	t, err := e.eng.Submit(ctx, sched.Job[*Result]{
		Key:      e.key(cfg),
		Priority: opts.Priority,
		Run: func(ctx context.Context) (*Result, error) {
			return e.executeWith(ctx, cfg, timeout)
		},
		OnDone: func(ev sched.Event[*Result]) {
			e.emit(Progress{
				Config: cfg, Result: ev.Value, Err: ev.Err,
				Cached: ev.Err == nil && (ev.Cached || ev.Coalesced),
				Done:   1, Total: 1,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	return &Job{cfg: cfg, t: t}, nil
}

// QueueLen reports the number of submissions waiting for a worker.
func (e *Experiment) QueueLen() int { return e.eng.QueueLen() }

// QueueCap reports the Submit queue bound (0 = unbounded).
func (e *Experiment) QueueCap() int { return e.eng.QueueCap() }

// Running reports the number of submitted simulations currently
// executing on the worker pool.
func (e *Experiment) Running() int { return e.eng.Running() }

// CacheLen reports the number of results in the experiment's cache
// backend.
func (e *Experiment) CacheLen() int { return e.eng.Len() }

// Drain stops intake — every later Submit fails with ErrDraining — and
// waits until every submission already accepted has finished, or ctx
// ends. On a clean drain the worker pool shuts down and Drain returns
// nil (results of the finished work are all in the cache backend, so a
// persistent store is fully flushed); on ctx expiry the remaining work
// keeps running and Drain returns the ctx error. The sweep methods are
// unaffected — they execute on their callers' goroutines.
func (e *Experiment) Drain(ctx context.Context) error {
	return e.eng.Drain(ctx)
}

// Close shuts the experiment down without finishing queued submissions:
// intake stops, still-queued jobs resolve with ErrDraining, running
// simulations are cancelled, and Close waits for the workers to exit.
func (e *Experiment) Close() {
	e.eng.Close()
}
