#!/bin/sh
# crash_e2e.sh — crash-recovery gate for the serving layer: boot ptbserve
# with a persistent store, write-ahead job journal and periodic run
# snapshots, hammer it with sweep requests, SIGKILL the server mid-sweep,
# reboot it on the same store, and demand that (a) the journal replays
# every accepted-but-incomplete job to completion (zero accepted jobs
# lost) and (b) the digests served after recovery are byte-identical to a
# never-crashed reference server's. Used by `make crash-e2e` and CI's
# crash-e2e job.
set -eu

ADDR="${PTBSERVE_ADDR:-127.0.0.1:18178}"
SCALE="${PTBSERVE_SCALE:-0.5}"

workdir="$(mktemp -d)"
server_pid=""
loader_pid=""
trap 'kill -9 "$server_pid" "$loader_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== building binaries"
go build -o "$workdir/ptbserve" ./cmd/ptbserve
go build -o "$workdir/ptbload" ./cmd/ptbload

stats() {
    # Tiny dependency-free stats probe (curl is not guaranteed).
    "$workdir/ptbstats" "http://$ADDR/v1/stats"
}
cat >"$workdir/stats.go" <<'EOF'
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

func main() {
	resp, err := http.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}
EOF
go build -o "$workdir/ptbstats" "$workdir/stats.go"

boot() {
    store="$1"
    shift
    "$workdir/ptbserve" -addr "$ADDR" -store "$store" -scale "$SCALE" "$@" \
        >"$workdir/serve.log" 2>&1 &
    server_pid=$!
    i=0
    while [ "$i" -lt 100 ]; do
        if "$workdir/ptbload" -addr "$ADDR" -n 1 -c 1 -benches fft -cores 2 -techs none \
            >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.2
    done
    echo "server failed to come up:"; cat "$workdir/serve.log"; exit 1
}

echo "== reference pass (never-crashed server)"
boot "$workdir/ref-store"
"$workdir/ptbload" -addr "$ADDR" -n 1 -c 1 | tee "$workdir/ref.out"
kill -TERM "$server_pid"
wait "$server_pid" || true

echo "== boot the crash-test server (journal + snapshots armed)"
boot "$workdir/store" -checkpoint "every=100000,dir=$workdir/store/ckpt"

echo "== hammer with sweeps, then SIGKILL mid-sweep"
"$workdir/ptbload" -addr "$ADDR" -n 20 -c 8 >"$workdir/crash.out" 2>&1 &
loader_pid=$!
# Kill as soon as fresh simulation work is actually in flight.
i=0
while [ "$i" -lt 200 ]; do
    if stats | grep -Eq '"running":[1-9]'; then
        break
    fi
    i=$((i + 1))
    sleep 0.05
done
kill -9 "$server_pid"
wait "$loader_pid" 2>/dev/null || true
loader_pid=""
echo "   (server SIGKILLed; loader aborted as expected)"

echo "== reboot on the same store: journal replay"
boot "$workdir/store" -checkpoint "every=100000,dir=$workdir/store/ckpt"
grep -E "journal" "$workdir/serve.log" || true

echo "== wait until every accepted job is recovered (journal drains)"
i=0
while [ "$i" -lt 600 ]; do
    if ! stats | grep -q '"journal_pending"'; then
        break
    fi
    i=$((i + 1))
    sleep 0.5
done
if stats | grep -q '"journal_pending"'; then
    echo "journal never drained:"; stats; exit 1
fi

echo "== recovered digests byte-identical to the reference server"
"$workdir/ptbload" -addr "$ADDR" -n 1 -c 1 | tee "$workdir/recovered.out"
grep '^digest' "$workdir/ref.out" >"$workdir/ref.digests"
grep '^digest' "$workdir/recovered.out" >"$workdir/recovered.digests"
diff "$workdir/ref.digests" "$workdir/recovered.digests"

echo "== clean shutdown"
kill -TERM "$server_pid"
wait "$server_pid" || { echo "server exited non-zero:"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/serve.log"

echo "crash-e2e: PASS"
