#!/bin/sh
# serve_smoke.sh — end-to-end gate for the serving layer: boots ptbserve
# with a persistent store, replays N concurrent duplicate sweeps with
# ptbload, asserts single-flight dedup on the cold pass and a >=99%
# cache-hit rate on the warm pass, then SIGTERMs the server (graceful
# drain), reboots it on the same store, and demands byte-identical
# digests from the persisted cache. Used by `make serve-smoke` and CI's
# serve-e2e job.
set -eu

ADDR="${PTBSERVE_ADDR:-127.0.0.1:18177}"
SCALE="${PTBSERVE_SCALE:-0.05}"
N="${PTBLOAD_N:-200}"
C="${PTBLOAD_C:-32}"

workdir="$(mktemp -d)"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== building binaries"
go build -o "$workdir/ptbserve" ./cmd/ptbserve
go build -o "$workdir/ptbload" ./cmd/ptbload

boot() {
    "$workdir/ptbserve" -addr "$ADDR" -store "$workdir/store" -scale "$SCALE" \
        >"$workdir/serve.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 50); do
        if "$workdir/ptbload" -addr "$ADDR" -n 1 -c 1 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "server failed to come up:"; cat "$workdir/serve.log"; exit 1
}

echo "== boot (cold store)"
boot

echo "== cold pass: $N concurrent duplicate sweeps, single-flight asserted"
"$workdir/ptbload" -addr "$ADDR" -n "$N" -c "$C" -assert-single-flight \
    | tee "$workdir/cold.out"

echo "== warm pass: >=99% cache hits asserted"
"$workdir/ptbload" -addr "$ADDR" -n "$N" -c "$C" -assert-hit-rate 0.99 \
    | tee "$workdir/warm.out"

echo "== graceful shutdown (SIGTERM drain + store flush)"
kill -TERM "$server_pid"
wait "$server_pid" || { echo "server exited non-zero:"; cat "$workdir/serve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/serve.log"

echo "== reboot on the same store"
boot
grep -q "results loaded" "$workdir/serve.log"

echo "== restarted pass: served from the persistent cache"
"$workdir/ptbload" -addr "$ADDR" -n "$N" -c "$C" -assert-hit-rate 0.99 \
    | tee "$workdir/restart.out"

echo "== digest identity across restart"
grep '^digest' "$workdir/cold.out" >"$workdir/cold.digests"
grep '^digest' "$workdir/restart.out" >"$workdir/restart.digests"
diff "$workdir/cold.digests" "$workdir/restart.digests"

echo "serve-smoke: PASS"
