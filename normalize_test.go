package ptbsim

import (
	"math"
	"testing"

	"ptbsim/internal/metrics"
)

// normCase is one (run, base) pair with the expected paper metrics. The
// expectations are hand-computed from the formulas in §IV (normalized
// energy/AoPB against the uncontrolled base, slowdown in percent).
type normCase struct {
	name                 string
	run, base            Result
	wantEnergy, wantAoPB float64
	wantSlow             float64
}

func normCases() []normCase {
	return []normCase{
		{
			name:       "savings-and-slowdown",
			run:        Result{EnergyJ: 0.8, AoPBJ: 0.02, Cycles: 1_100_000},
			base:       Result{EnergyJ: 1.0, AoPBJ: 0.10, Cycles: 1_000_000},
			wantEnergy: -20, wantAoPB: 20, wantSlow: 10,
		},
		{
			name:       "identical-runs",
			run:        Result{EnergyJ: 0.5, AoPBJ: 0.04, Cycles: 2_000_000},
			base:       Result{EnergyJ: 0.5, AoPBJ: 0.04, Cycles: 2_000_000},
			wantEnergy: 0, wantAoPB: 100, wantSlow: 0,
		},
		{
			name:       "costs-energy-runs-faster",
			run:        Result{EnergyJ: 1.5, AoPBJ: 0, Cycles: 750_000},
			base:       Result{EnergyJ: 1.0, AoPBJ: 0.08, Cycles: 1_000_000},
			wantEnergy: 50, wantAoPB: 0, wantSlow: -25,
		},
		{
			// Degenerate bases must not divide by zero: the helpers
			// define 0 (energy/slowdown) and 0 (AoPB) for them.
			name:       "zero-base",
			run:        Result{EnergyJ: 0.3, AoPBJ: 0.01, Cycles: 500_000},
			base:       Result{},
			wantEnergy: 0, wantAoPB: 0, wantSlow: 0,
		},
		{
			name:       "perfect-budget-match",
			run:        Result{EnergyJ: 0.95, AoPBJ: 0, Cycles: 1_030_000},
			base:       Result{EnergyJ: 1.0, AoPBJ: 0.25, Cycles: 1_000_000},
			wantEnergy: -5, wantAoPB: 0, wantSlow: 3,
		},
	}
}

// TestNormalizationHelpers checks the public helpers against hand-computed
// expectations.
func TestNormalizationHelpers(t *testing.T) {
	for _, tc := range normCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			check := func(metric string, got, want float64) {
				t.Helper()
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("%s = %g, want %g", metric, got, want)
				}
			}
			check("NormalizedEnergyPct", NormalizedEnergyPct(&tc.run, &tc.base), tc.wantEnergy)
			check("NormalizedAoPBPct", NormalizedAoPBPct(&tc.run, &tc.base), tc.wantAoPB)
			check("SlowdownPct", SlowdownPct(&tc.run, &tc.base), tc.wantSlow)
		})
	}
}

// TestNormalizationMatchesInternalRoundTrip cross-checks the direct Result
// helpers against the pre-PR-1 path: convert each Result to the internal
// metrics.RunResult fixture and run the internal/metrics formulas. Any
// drift between the two implementations (e.g. one picking up a new term)
// fails here.
func TestNormalizationMatchesInternalRoundTrip(t *testing.T) {
	toInternal := func(r *Result) *metrics.RunResult {
		return &metrics.RunResult{
			EnergyJ: r.EnergyJ,
			AoPBJ:   r.AoPBJ,
			Cycles:  r.Cycles,
		}
	}
	for _, tc := range normCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ir, ib := toInternal(&tc.run), toInternal(&tc.base)
			pairs := []struct {
				metric   string
				got, old float64
			}{
				{"NormalizedEnergyPct", NormalizedEnergyPct(&tc.run, &tc.base), metrics.NormalizedEnergyPct(ir, ib)},
				{"NormalizedAoPBPct", NormalizedAoPBPct(&tc.run, &tc.base), metrics.NormalizedAoPBPct(ir, ib)},
				{"SlowdownPct", SlowdownPct(&tc.run, &tc.base), metrics.SlowdownPct(ir, ib)},
			}
			for _, p := range pairs {
				if p.got != p.old {
					t.Errorf("%s: direct helper %g != internal round-trip %g", p.metric, p.got, p.old)
				}
			}
		})
	}
}

// TestEDPConsistency pins the EDP/ED²P definitions (3 GHz clock) and their
// relationship: ED²P must equal EDP times the delay.
func TestEDPConsistency(t *testing.T) {
	r := Result{EnergyJ: 2.0, Cycles: 3_000_000_000} // exactly one second at 3 GHz
	if got := r.EDP(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("EDP = %g, want 2.0 J·s", got)
	}
	if got := r.ED2P(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("ED2P = %g, want 2.0 J·s²", got)
	}
	delay := float64(r.Cycles) / 3e9
	if got, want := r.ED2P(), r.EDP()*delay; math.Abs(got-want) > 1e-12 {
		t.Errorf("ED2P %g != EDP×delay %g", got, want)
	}
}
