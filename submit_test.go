package ptbsim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func submitTestConfig(bench string) Config {
	return Config{Benchmark: bench, Cores: 2, Technique: None}
}

func TestSubmitAwaitMatchesRun(t *testing.T) {
	e := NewExperiment(WithScale(0.01), WithParallelism(2))
	defer e.Close()
	ctx := context.Background()
	cfg := submitTestConfig("barnes")

	want, err := e.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(ctx, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("Submit did not share the cached Result pointer with Run")
	}
	if !job.Cached() {
		t.Error("job.Cached() = false after a prior Run of the same config")
	}
	if job.State() != JobDone {
		t.Errorf("job.State() = %v, want JobDone", job.State())
	}
	if got.Digest() != want.Digest() {
		t.Errorf("digest mismatch: %s vs %s", got.Digest(), want.Digest())
	}
}

func TestSubmitValidates(t *testing.T) {
	e := NewExperiment(WithScale(0.01))
	defer e.Close()
	if _, err := e.Submit(context.Background(), Config{Benchmark: "nope", Cores: 2}, 0); err == nil {
		t.Fatal("Submit accepted an unknown benchmark")
	}
}

func TestSubmitDedupsConcurrent(t *testing.T) {
	e := NewExperiment(WithScale(0.01), WithParallelism(2))
	defer e.Close()
	ctx := context.Background()
	cfg := submitTestConfig("ocean")

	const n = 16
	jobs := make([]*Job, n)
	for i := range jobs {
		j, err := e.Submit(ctx, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	var first *Result
	coalesced := 0
	for i, j := range jobs {
		res, err := j.Await(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Fatalf("job %d resolved a different Result pointer", i)
		}
		if j.Cached() || j.Coalesced() {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Errorf("coalesced+cached = %d, want %d (single-flight)", coalesced, n-1)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	e := NewExperiment(WithScale(0.01), WithParallelism(1), WithQueue(1))
	defer e.Close()
	ctx := context.Background()
	if e.QueueCap() != 1 {
		t.Fatalf("QueueCap() = %d, want 1", e.QueueCap())
	}

	// Occupy the single worker and fill the single queue slot, then
	// overflow. Distinct benchmarks keep the keys distinct.
	benches := []string{"barnes", "ocean", "radix", "fft"}
	var accepted []*Job
	var overflowed bool
	for _, b := range benches {
		j, err := e.Submit(ctx, submitTestConfig(b), 0)
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("Submit(%s) = %v, want ErrQueueFull", b, err)
			}
			overflowed = true
			continue
		}
		accepted = append(accepted, j)
	}
	if !overflowed {
		t.Skip("workers drained the queue too fast to observe backpressure")
	}
	for _, j := range accepted {
		if _, err := j.Await(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDrainRejectsThenFlushes(t *testing.T) {
	e := NewExperiment(WithScale(0.01), WithParallelism(2))
	ctx := context.Background()
	j, err := e.Submit(ctx, submitTestConfig("barnes"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if j.State() != JobDone {
		t.Errorf("accepted job state after Drain = %v, want JobDone", j.State())
	}
	if e.CacheLen() != 1 {
		t.Errorf("CacheLen() = %d after drain, want 1", e.CacheLen())
	}
	if _, err := e.Submit(ctx, submitTestConfig("ocean"), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}
}

// countingCache wraps the default map backend to prove WithCache feeds
// every entry point through the pluggable backend.
type countingCache struct {
	mu   sync.Mutex
	m    map[string]*Result
	puts int
	gets int
}

func (c *countingCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	r, ok := c.m[key]
	return r, ok
}

func (c *countingCache) Put(key string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*Result)
	}
	c.m[key] = r
	c.puts++
}

func (c *countingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func TestWithCacheBackendSharedByRunAndSubmit(t *testing.T) {
	cc := &countingCache{}
	e := NewExperiment(WithScale(0.01), WithParallelism(2), WithCache(cc))
	defer e.Close()
	ctx := context.Background()
	cfg := submitTestConfig("barnes")

	res, err := e.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cc.puts != 1 {
		t.Fatalf("backend puts = %d after Run, want 1", cc.puts)
	}
	j, err := e.Submit(ctx, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != res || !j.Cached() {
		t.Fatal("Submit did not hit the pluggable backend populated by Run")
	}
	if cc.puts != 1 {
		t.Errorf("backend puts = %d after cached Submit, want still 1", cc.puts)
	}
}

func TestSubmitEmitsOneProgressPerSubmission(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	e := NewExperiment(WithScale(0.01), WithParallelism(2), WithProgress(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}))
	defer e.Close()
	ctx := context.Background()
	cfg := submitTestConfig("barnes")

	j1, err := e.Submit(ctx, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Await(ctx); err != nil {
		t.Fatal(err)
	}
	j2, err := e.Submit(ctx, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Await(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("progress events = %d, want 2 (one per submission)", len(events))
	}
	if events[0].Cached {
		t.Error("first submission reported Cached")
	}
	if !events[1].Cached {
		t.Error("second submission of same config not reported Cached")
	}
}
