package ptbsim

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestParseTelemetrySpec(t *testing.T) {
	good := map[string]TelemetrySpec{
		"":                        {},
		"every=2048":              {Every: 2048},
		"every=512,ring=64":       {Every: 512, Ring: 64},
		"out=run.jsonl":           {Path: "run.jsonl"},
		"out=-":                   {Path: "-"},
		"format=CSV,out=p.csv":    {Format: "csv", Path: "p.csv"},
		" every = 64 , out = x ":  {Every: 64, Path: "x"},
		"EVERY=16,FORMAT=jsonl":   {Every: 16, Format: "jsonl"},
		"ring=8,every=32,out=a=b": {Every: 32, Ring: 8, Path: "a=b"},
	}
	for in, want := range good {
		got, err := ParseTelemetrySpec(in)
		if err != nil {
			t.Errorf("ParseTelemetrySpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseTelemetrySpec(%q) = %+v, want %+v", in, got, want)
		}
		if again, err := ParseTelemetrySpec(got.String()); err != nil || again != got {
			t.Errorf("canonical %q does not round-trip: (%+v, %v)", got.String(), again, err)
		}
	}
	bad := []string{
		"every=-1", "every=x", "ring=-2", "ring=1.5", "format=xml",
		"bogus=1", "every", "every=1,every=2", "every=1,,ring=2",
	}
	for _, in := range bad {
		if _, err := ParseTelemetrySpec(in); !errors.Is(err, ErrBadTelemetrySpec) {
			t.Errorf("ParseTelemetrySpec(%q) error %v does not wrap ErrBadTelemetrySpec", in, err)
		}
	}
}

func TestTelemetrySpecValidate(t *testing.T) {
	for _, bad := range []TelemetrySpec{
		{Every: -1},
		{Ring: -1},
		{Format: "xml"},
		{Path: "a,b"},
	} {
		if err := bad.Validate(); !errors.Is(err, ErrBadTelemetrySpec) {
			t.Errorf("Validate(%+v) error %v does not wrap ErrBadTelemetrySpec", bad, err)
		}
	}
	if err := (TelemetrySpec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

// TestTelemetrySpecStartJSONL runs Start end to end against a real file:
// samples stream out as JSONL, the close function flushes them, and
// ReadTelemetry gets them back.
func TestTelemetrySpecStartJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	tel, closeTel, err := TelemetrySpec{Every: 128, Path: path}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if tel.Every != 128 {
		t.Fatalf("Telemetry.Every = %d, want 128", tel.Every)
	}
	s := &Sample{Bench: "fft", Cores: 2, Tech: "ptb", CorePJ: []float64{1, 2}}
	tel.Observer.Observe(s)
	s.Epoch = 1
	tel.Observer.Observe(s)
	if err := closeTel(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadTelemetry(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Epoch != 1 || got[0].Bench != "fft" {
		t.Fatalf("file round-trip returned %+v", got)
	}
}

func TestTelemetrySpecStartRejectsBadSpec(t *testing.T) {
	if _, _, err := (TelemetrySpec{Every: -1}).Start(); !errors.Is(err, ErrBadTelemetrySpec) {
		t.Fatalf("Start accepted an invalid spec: %v", err)
	}
}

// TestFlagValues drives the shared flag.Value implementations the way the
// CLI tools wire them, pinning that all four parse through the validated
// parsers and report the typed sentinels.
func TestFlagValues(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	tech := PTB
	fs.Var(&tech, "tech", "")
	pol := Dynamic
	fs.Var(&pol, "policy", "")
	var faults FaultSpecFlag
	fs.Var(&faults, "faults", "")
	var tel TelemetryFlag
	fs.Var(&tel, "telemetry", "")

	if err := fs.Parse([]string{
		"-tech", "2level", "-policy", "toone",
		"-faults", "seed=42,drop=0.25", "-telemetry", "every=512,out=x.jsonl",
	}); err != nil {
		t.Fatal(err)
	}
	if tech != TwoLevel {
		t.Errorf("tech = %v", tech)
	}
	if pol != ToOne {
		t.Errorf("policy = %v", pol)
	}
	if faults.Spec == nil || faults.Spec.Seed != 42 || faults.Spec.TokenDrop != 0.25 {
		t.Errorf("faults = %+v", faults.Spec)
	}
	if tel.Spec == nil || tel.Spec.Every != 512 || tel.Spec.Path != "x.jsonl" {
		t.Errorf("telemetry = %+v", tel.Spec)
	}

	var unset FaultSpecFlag
	var unsetTel TelemetryFlag
	if unset.Spec != nil || unsetTel.Spec != nil || unset.String() != "" || unsetTel.String() != "" {
		t.Error("unset flags must keep Spec nil and render empty")
	}
	if err := unsetTel.Set(""); err != nil || unsetTel.Spec == nil {
		t.Errorf(`-telemetry "" must enable the defaults: (%+v, %v)`, unsetTel.Spec, err)
	}

	if err := new(Technique).Set("warp"); !errors.Is(err, ErrBadTechnique) {
		t.Errorf("bad technique error %v does not wrap ErrBadTechnique", err)
	}
	if err := new(Policy).Set("nosuch"); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("bad policy error %v does not wrap ErrBadPolicy", err)
	}
	if err := new(FaultSpecFlag).Set("drop=2"); !errors.Is(err, ErrBadFaultSpec) {
		t.Errorf("bad fault spec error %v does not wrap ErrBadFaultSpec", err)
	}
	if err := new(TelemetryFlag).Set("every=-1"); !errors.Is(err, ErrBadTelemetrySpec) {
		t.Errorf("bad telemetry spec error %v does not wrap ErrBadTelemetrySpec", err)
	}
}
