package ptbsim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ptbsim"
)

// zeroRateSpec is a fault spec that injects nothing but carries a non-zero
// seed and non-default parameters: the hardest version of the zero-rate
// identity, since every knob except the rates is turned.
func zeroRateSpec() ptbsim.FaultSpec {
	return ptbsim.FaultSpec{
		Seed:             12345,
		TokenDelayCycles: 32,
		StaleTimeout:     128,
		MaxRetries:       5,
		RetryBackoff:     4,
		LinkStallCycles:  8,
	}
}

// aggressiveSpec turns every fault domain on at rates high enough that each
// injector demonstrably fires within a scale-0.05 run.
func aggressiveSpec() ptbsim.FaultSpec {
	return ptbsim.FaultSpec{
		Seed:        7,
		TokenDrop:   0.3,
		TokenDelay:  0.2,
		TokenDup:    0.1,
		LinkStall:   0.05,
		FlitCorrupt: 0.05,
		SensorNoise: 0.05,
		SensorDrift: 0.02,
		DVFSGlitch:  0.2,
	}
}

// TestZeroRateFaultsIdentity is the fast half of the zero-rate property:
// a run under a zero-rate spec (non-zero seed, non-default parameters) must
// produce the byte-identical digest of a run with no spec at all, across
// techniques that exercise the balancer, the NoC, the sensors and DVFS.
func TestZeroRateFaultsIdentity(t *testing.T) {
	cfgs := []ptbsim.Config{
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
		{Benchmark: "raytrace", Cores: 4, Technique: ptbsim.DVFS},
		{Benchmark: "fft", Cores: 8, Technique: ptbsim.TwoLevel},
	}
	digests := func(opts ...ptbsim.Option) []string {
		opts = append([]ptbsim.Option{ptbsim.WithScale(0.05), ptbsim.WithInvariants()}, opts...)
		e := ptbsim.NewExperiment(opts...)
		results, err := e.RunAll(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = r.Digest()
			if r.Degraded || r.FaultsInjected != 0 {
				t.Fatalf("config %d: zero-rate run reports faults: degraded=%t injected=%d",
					i, r.Degraded, r.FaultsInjected)
			}
		}
		return out
	}
	ideal := digests()
	zero := digests(ptbsim.WithFaults(zeroRateSpec()))
	for i := range ideal {
		if ideal[i] != zero[i] {
			t.Errorf("config %d: zero-rate digest diverged:\n ideal %s\n zero  %s", i, ideal[i], zero[i])
		}
	}
}

// TestZeroRateFaultsGoldenIdentity is the full property test from the issue:
// the entire golden matrix, run with a zero-rate fault spec wired through
// every injection point, must reproduce testdata/golden/matrix_scale025.txt
// byte for byte — proving the fault machinery is the identity when no rate
// is set, with the invariant layer watching every run.
func TestZeroRateFaultsGoldenIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix (98 runs) skipped in -short")
	}
	want := readGoldenMatrix(t)
	e := ptbsim.NewExperiment(
		ptbsim.WithScale(0.25),
		ptbsim.WithParallelism(8),
		ptbsim.WithInvariants(),
		ptbsim.WithFaults(zeroRateSpec()),
	)
	results, err := e.RunSweep(context.Background(), goldenMatrixSweep(t))
	if err != nil {
		t.Fatalf("zero-rate golden matrix failed: %v", err)
	}
	if len(results) != len(want) {
		t.Fatalf("matrix has %d runs, golden file has %d digests", len(results), len(want))
	}
	for i, r := range results {
		if got := r.Digest(); got != want[i] {
			t.Errorf("zero-rate digest drift at line %d:\n got  %s\n want %s", i+1, got, want[i])
		}
	}
}

// TestFaultedRunsPassInvariants turns every fault domain on under the full
// runtime invariant layer: injection perturbs what the controllers observe,
// never the conservation ledgers, so no invariant may trip. The PTB run
// must come back Degraded (tokens were provably lost at drop=0.3) with the
// degradation telemetry populated, and the whole thing must be
// reproducible: a second experiment yields the bit-identical digest.
func TestFaultedRunsPassInvariants(t *testing.T) {
	cfg := ptbsim.Config{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic}
	run := func() *ptbsim.Result {
		e := ptbsim.NewExperiment(
			ptbsim.WithScale(0.05),
			ptbsim.WithInvariants(),
			ptbsim.WithFaults(aggressiveSpec()),
		)
		r, err := e.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("faulted run tripped an invariant: %v", err)
		}
		return r
	}
	r := run()
	if !r.Degraded {
		t.Fatal("PTB at drop=0.3 must lose token batches and report Degraded")
	}
	if r.FaultsInjected == 0 {
		t.Fatal("aggressive spec injected nothing")
	}
	if r.TokenLostPJ <= 0 || r.TokenRetries == 0 || r.TokenReportsLost == 0 {
		t.Fatalf("token telemetry empty: lost=%v retries=%d reportsLost=%d",
			r.TokenLostPJ, r.TokenRetries, r.TokenReportsLost)
	}
	if r.NoCStallCycles == 0 || r.NoCRetransmits == 0 {
		t.Fatalf("NoC telemetry empty: stalls=%d retransmits=%d", r.NoCStallCycles, r.NoCRetransmits)
	}

	if d1, d2 := r.Digest(), run().Digest(); d1 != d2 {
		t.Fatalf("faulted run not reproducible:\n first  %s\n second %s", d1, d2)
	}
}

// TestFaultedDVFSGlitches exercises the DVFS-glitch domain, which the PTB
// configuration never reaches (PTB has no mode transitions to glitch).
func TestFaultedDVFSGlitches(t *testing.T) {
	e := ptbsim.NewExperiment(
		ptbsim.WithScale(0.05),
		ptbsim.WithInvariants(),
		ptbsim.WithFaults(ptbsim.FaultSpec{Seed: 11, DVFSGlitch: 0.5}),
	)
	r, err := e.Run(context.Background(), ptbsim.Config{
		Benchmark: "ocean", Cores: 4, Technique: ptbsim.DVFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DVFSGlitches == 0 {
		t.Fatal("glitch=0.5 glitched no DVFS transition")
	}
	if r.Degraded {
		t.Fatal("DVFS glitches are absorbed (stall paid, mode held) and must not mark the run Degraded")
	}
}

// TestSweepPartialResults checks the partial-result contract of RunAll: a
// failing configuration does not stop the others, the error is a typed
// *SweepError indexing each failure, and errors.Is still dispatches on the
// underlying sentinel through the aggregate.
func TestSweepPartialResults(t *testing.T) {
	cfgs := []ptbsim.Config{
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
		{Benchmark: "nosuchbench", Cores: 4, Technique: ptbsim.PTB},
		{Benchmark: "fft", Cores: 4, Technique: ptbsim.None},
	}
	e := ptbsim.NewExperiment(ptbsim.WithScale(0.05))
	results, err := e.RunAll(context.Background(), cfgs)
	if err == nil {
		t.Fatal("sweep with an invalid config returned no error")
	}
	var sweepErr *ptbsim.SweepError
	if !errors.As(err, &sweepErr) {
		t.Fatalf("error %T is not a *SweepError: %v", err, err)
	}
	if sweepErr.Total != 3 || len(sweepErr.Failures) != 1 {
		t.Fatalf("SweepError{Total: %d, Failures: %d}, want {3, 1}", sweepErr.Total, len(sweepErr.Failures))
	}
	if sweepErr.Failures[0].Index != 1 {
		t.Fatalf("failure index %d, want 1", sweepErr.Failures[0].Index)
	}
	if !errors.Is(err, ptbsim.ErrUnknownBenchmark) {
		t.Fatalf("SweepError does not unwrap to ErrUnknownBenchmark: %v", err)
	}
	if len(results) != 3 || results[0] == nil || results[2] == nil {
		t.Fatalf("valid slots must hold results: %v", results)
	}
	if results[1] != nil {
		t.Fatal("failed slot must be nil")
	}
}

// TestRunDeadlineRetry checks the per-run deadline: a run that cannot
// finish inside WithRunTimeout is retried with backoff and ultimately fails
// with an error wrapping ErrRunDeadline — while a generous deadline leaves
// the run untouched.
func TestRunDeadlineRetry(t *testing.T) {
	cfg := ptbsim.Config{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic}

	e := ptbsim.NewExperiment(
		ptbsim.WithScale(0.25),
		ptbsim.WithRunTimeout(time.Microsecond),
		ptbsim.WithRetries(2),
		ptbsim.WithRetryBackoff(time.Millisecond),
	)
	_, err := e.Run(context.Background(), cfg)
	if !errors.Is(err, ptbsim.ErrRunDeadline) {
		t.Fatalf("1µs deadline: error %v does not wrap ErrRunDeadline", err)
	}

	ok := ptbsim.NewExperiment(ptbsim.WithScale(0.05), ptbsim.WithRunTimeout(time.Minute))
	if _, err := ok.Run(context.Background(), cfg); err != nil {
		t.Fatalf("generous deadline failed a healthy run: %v", err)
	}
}

// TestRunDeadlineInSweep checks deadline failures surface through the
// partial-result sweep as typed per-config errors wrapping ErrRunDeadline.
func TestRunDeadlineInSweep(t *testing.T) {
	e := ptbsim.NewExperiment(
		ptbsim.WithScale(0.25),
		ptbsim.WithRunTimeout(time.Microsecond),
		ptbsim.WithRetries(0),
	)
	cfgs := []ptbsim.Config{
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
	}
	results, err := e.RunAll(context.Background(), cfgs)
	var sweepErr *ptbsim.SweepError
	if !errors.As(err, &sweepErr) || !errors.Is(err, ptbsim.ErrRunDeadline) {
		t.Fatalf("want *SweepError wrapping ErrRunDeadline, got %v", err)
	}
	if results[0] != nil {
		t.Fatal("deadline-failed slot must be nil")
	}
}

// TestFaultSpecRoundTrip pins the public spec syntax: String() output
// reparses to the identical spec, the zero spec renders empty, and
// validation failures wrap ErrBadFaultSpec.
func TestFaultSpecRoundTrip(t *testing.T) {
	full := ptbsim.FaultSpec{
		Seed: 42, TokenDrop: 0.25, TokenDelay: 0.1, TokenDup: 0.05,
		TokenDelayCycles: 24, StaleTimeout: 100, MaxRetries: 2, RetryBackoff: 16,
		LinkStall: 0.02, LinkStallCycles: 8, FlitCorrupt: 0.01,
		SensorNoise: 0.05, SensorDrift: 0.02, DVFSGlitch: 0.1,
	}
	back, err := ptbsim.ParseFaultSpec(full.String())
	if err != nil {
		t.Fatalf("String() %q does not reparse: %v", full.String(), err)
	}
	if back != full {
		t.Fatalf("round trip lost fields:\n in  %+v\n out %+v", full, back)
	}

	if s, err := ptbsim.ParseFaultSpec(""); err != nil || !s.Zero() || s.String() != "" {
		t.Fatalf("empty spec: (%+v, %v)", s, err)
	}
	if !(ptbsim.FaultSpec{Seed: 9, StaleTimeout: -1}).Zero() {
		t.Fatal("parameters alone must not make a spec non-zero")
	}

	for _, bad := range []string{"drop=2", "noise=-0.1", "bogus=1", "drop=0.1,drop=0.2", "drop"} {
		if _, err := ptbsim.ParseFaultSpec(bad); !errors.Is(err, ptbsim.ErrBadFaultSpec) {
			t.Errorf("ParseFaultSpec(%q) error %v does not wrap ErrBadFaultSpec", bad, err)
		}
	}
	if err := (ptbsim.FaultSpec{TokenDrop: 1.5}).Validate(); !errors.Is(err, ptbsim.ErrBadFaultSpec) {
		t.Fatalf("Validate(drop=1.5) error %v does not wrap ErrBadFaultSpec", err)
	}

	// An invalid spec attached to a Config must fail Config.Validate too.
	cfg := ptbsim.Config{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB,
		Faults: &ptbsim.FaultSpec{TokenDrop: -1}}
	if err := cfg.Validate(); !errors.Is(err, ptbsim.ErrBadFaultSpec) {
		t.Fatalf("Config.Validate with a bad spec: %v", err)
	}
}
