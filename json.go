package ptbsim

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrDigestMismatch reports a decoded Result whose embedded digest does
// not match the digest recomputed from its decoded fields — the stream
// was corrupted or hand-edited. Branch with errors.Is.
var ErrDigestMismatch = errors.New("ptbsim: result digest mismatch")

// This file pins the JSON wire schema of Result and Config. The Go field
// names are API, but their JSON encoding is a second, independently stable
// contract (the ptbsim -json output, the JSONL telemetry run records, and
// any external tooling built on them), so both types marshal through
// explicit wire structs with snake_case names instead of relying on
// reflection over the Go names. Renaming a Go field can never silently
// change the wire format; adding a field forces a deliberate schema
// decision here.

// resultJSON is Result's wire form. Digest is derived, not stored: it is
// recomputed from the Result on marshal and — because encoding/json
// round-trips float64 values bit-exactly — verified against the decoded
// fields on unmarshal, making every serialized result self-checking
// (ptbserve's on-disk store and the JSONL telemetry records rely on
// this). Streams written before the field existed simply omit it and
// skip verification.
type resultJSON struct {
	Benchmark string `json:"benchmark"`
	Cores     int    `json:"cores"`
	Technique string `json:"technique"`
	Policy    string `json:"policy,omitempty"`

	Cycles    int64 `json:"cycles"`
	Committed int64 `json:"committed"`

	EnergyJ  float64 `json:"energy_j"`
	AoPBJ    float64 `json:"aopb_j"`
	BudgetPJ float64 `json:"budget_pj"`

	MeanPowerW float64 `json:"mean_power_w"`
	StdPowerW  float64 `json:"std_power_w"`

	BusyFrac       float64 `json:"busy_frac"`
	LockAcqFrac    float64 `json:"lock_acq_frac"`
	LockRelFrac    float64 `json:"lock_rel_frac"`
	BarrierFrac    float64 `json:"barrier_frac"`
	SpinEnergyFrac float64 `json:"spin_energy_frac"`
	OverBudgetFrac float64 `json:"over_budget_frac"`

	MeanTempC float64 `json:"mean_temp_c"`
	StdTempC  float64 `json:"std_temp_c"`

	HitMaxCycles bool `json:"hit_max_cycles,omitempty"`

	ComponentJ map[string]float64 `json:"component_j,omitempty"`

	TokenDonatedPJ   float64 `json:"token_donated_pj"`
	TokenGrantedPJ   float64 `json:"token_granted_pj"`
	TokenDiscardedPJ float64 `json:"token_discarded_pj"`
	BalanceRounds    int64   `json:"balance_rounds"`

	CohGetS int64 `json:"coh_gets"`
	CohGetX int64 `json:"coh_getx"`
	CohPut  int64 `json:"coh_put"`
	CohFwd  int64 `json:"coh_fwd"`
	CohInv  int64 `json:"coh_inv"`

	NoCMessages int64 `json:"noc_msgs"`
	NoCFlits    int64 `json:"noc_flits"`

	Degraded            bool    `json:"degraded,omitempty"`
	FaultsInjected      int64   `json:"faults_injected,omitempty"`
	TokenLostPJ         float64 `json:"token_lost_pj,omitempty"`
	TokenDupPJ          float64 `json:"token_dup_pj,omitempty"`
	TokenRetries        int64   `json:"token_retries,omitempty"`
	TokenReportsLost    int64   `json:"token_reports_lost,omitempty"`
	StaleFallbackCycles int64   `json:"stale_fallback_cycles,omitempty"`
	NoCStallCycles      int64   `json:"noc_stall_cycles,omitempty"`
	NoCRetransmits      int64   `json:"noc_retransmits,omitempty"`
	DVFSGlitches        int64   `json:"dvfs_glitches,omitempty"`

	Digest string `json:"digest,omitempty"`
}

// MarshalJSON encodes the result in the stable wire schema.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Benchmark: r.Benchmark, Cores: r.Cores,
		Technique: string(r.Technique), Policy: r.Policy,
		Cycles: r.Cycles, Committed: r.Committed,
		EnergyJ: r.EnergyJ, AoPBJ: r.AoPBJ, BudgetPJ: r.BudgetPJ,
		MeanPowerW: r.MeanPowerW, StdPowerW: r.StdPowerW,
		BusyFrac: r.BusyFrac, LockAcqFrac: r.LockAcqFrac,
		LockRelFrac: r.LockRelFrac, BarrierFrac: r.BarrierFrac,
		SpinEnergyFrac: r.SpinEnergyFrac, OverBudgetFrac: r.OverBudgetFrac,
		MeanTempC: r.MeanTempC, StdTempC: r.StdTempC,
		HitMaxCycles: r.HitMaxCycles, ComponentJ: r.ComponentJ,
		TokenDonatedPJ: r.TokenDonatedPJ, TokenGrantedPJ: r.TokenGrantedPJ,
		TokenDiscardedPJ: r.TokenDiscardedPJ, BalanceRounds: r.BalanceRounds,
		CohGetS: r.CohGetS, CohGetX: r.CohGetX, CohPut: r.CohPut,
		CohFwd: r.CohFwd, CohInv: r.CohInv,
		NoCMessages: r.NoCMessages, NoCFlits: r.NoCFlits,
		Degraded: r.Degraded, FaultsInjected: r.FaultsInjected,
		TokenLostPJ: r.TokenLostPJ, TokenDupPJ: r.TokenDupPJ,
		TokenRetries: r.TokenRetries, TokenReportsLost: r.TokenReportsLost,
		StaleFallbackCycles: r.StaleFallbackCycles,
		NoCStallCycles:      r.NoCStallCycles,
		NoCRetransmits:      r.NoCRetransmits,
		DVFSGlitches:        r.DVFSGlitches,
		Digest:              r.Digest(),
	})
}

// UnmarshalJSON decodes the stable wire schema.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Result{
		Benchmark: w.Benchmark, Cores: w.Cores,
		Technique: Technique(w.Technique), Policy: w.Policy,
		Cycles: w.Cycles, Committed: w.Committed,
		EnergyJ: w.EnergyJ, AoPBJ: w.AoPBJ, BudgetPJ: w.BudgetPJ,
		MeanPowerW: w.MeanPowerW, StdPowerW: w.StdPowerW,
		BusyFrac: w.BusyFrac, LockAcqFrac: w.LockAcqFrac,
		LockRelFrac: w.LockRelFrac, BarrierFrac: w.BarrierFrac,
		SpinEnergyFrac: w.SpinEnergyFrac, OverBudgetFrac: w.OverBudgetFrac,
		MeanTempC: w.MeanTempC, StdTempC: w.StdTempC,
		HitMaxCycles: w.HitMaxCycles, ComponentJ: w.ComponentJ,
		TokenDonatedPJ: w.TokenDonatedPJ, TokenGrantedPJ: w.TokenGrantedPJ,
		TokenDiscardedPJ: w.TokenDiscardedPJ, BalanceRounds: w.BalanceRounds,
		CohGetS: w.CohGetS, CohGetX: w.CohGetX, CohPut: w.CohPut,
		CohFwd: w.CohFwd, CohInv: w.CohInv,
		NoCMessages: w.NoCMessages, NoCFlits: w.NoCFlits,
		Degraded: w.Degraded, FaultsInjected: w.FaultsInjected,
		TokenLostPJ: w.TokenLostPJ, TokenDupPJ: w.TokenDupPJ,
		TokenRetries: w.TokenRetries, TokenReportsLost: w.TokenReportsLost,
		StaleFallbackCycles: w.StaleFallbackCycles,
		NoCStallCycles:      w.NoCStallCycles,
		NoCRetransmits:      w.NoCRetransmits,
		DVFSGlitches:        w.DVFSGlitches,
	}
	if w.Digest != "" {
		if got := r.Digest(); got != w.Digest {
			return fmt.Errorf("%w: stored %q, recomputed %q", ErrDigestMismatch, w.Digest, got)
		}
	}
	return nil
}

// configJSON is Config's wire form. Policy travels as its lowercase parse
// name, Faults as its canonical spec string (a *string so the zero spec
// "" survives omitempty and stays distinct from nil). Observe is runtime
// wiring — an interface holding live sinks — and deliberately has no wire
// form; it is dropped on marshal and left nil on unmarshal.
type configJSON struct {
	Benchmark             string  `json:"benchmark"`
	Cores                 int     `json:"cores,omitempty"`
	Technique             string  `json:"technique,omitempty"`
	Policy                string  `json:"policy,omitempty"`
	RelaxFrac             float64 `json:"relax_frac,omitempty"`
	BudgetFrac            float64 `json:"budget_frac,omitempty"`
	WorkloadScale         float64 `json:"workload_scale,omitempty"`
	MaxCycles             int64   `json:"max_cycles,omitempty"`
	PessimisticPTBLatency bool    `json:"pessimistic_ptb_latency,omitempty"`
	PTBClusterSize        int     `json:"ptb_cluster_size,omitempty"`
	CheckInvariants       bool    `json:"check_invariants,omitempty"`
	Faults                *string `json:"faults,omitempty"`
}

// policyName is ParsePolicy's inverse: the lowercase wire name.
func policyName(p Policy) string {
	switch p {
	case ToOne:
		return "toone"
	case Dynamic:
		return "dynamic"
	default:
		return "toall"
	}
}

// MarshalJSON encodes the config in the stable wire schema.
func (c Config) MarshalJSON() ([]byte, error) {
	w := configJSON{
		Benchmark: c.Benchmark, Cores: c.Cores,
		Technique: string(c.Technique),
		RelaxFrac: c.RelaxFrac, BudgetFrac: c.BudgetFrac,
		WorkloadScale: c.WorkloadScale, MaxCycles: c.MaxCycles,
		PessimisticPTBLatency: c.PessimisticPTBLatency,
		PTBClusterSize:        c.PTBClusterSize,
		CheckInvariants:       c.CheckInvariants,
	}
	if c.Policy != ToAll {
		w.Policy = policyName(c.Policy)
	}
	if c.Faults != nil {
		spec := c.Faults.String()
		w.Faults = &spec
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the stable wire schema; technique, policy and
// fault-spec values go through the public parsers, so errors wrap the same
// ErrBad* sentinels as Validate.
func (c *Config) UnmarshalJSON(data []byte) error {
	var w configJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Config{
		Benchmark: w.Benchmark, Cores: w.Cores,
		RelaxFrac: w.RelaxFrac, BudgetFrac: w.BudgetFrac,
		WorkloadScale: w.WorkloadScale, MaxCycles: w.MaxCycles,
		PessimisticPTBLatency: w.PessimisticPTBLatency,
		PTBClusterSize:        w.PTBClusterSize,
		CheckInvariants:       w.CheckInvariants,
	}
	if w.Technique != "" {
		t, err := ParseTechnique(w.Technique)
		if err != nil {
			return err
		}
		out.Technique = t
	}
	if w.Policy != "" {
		p, err := ParsePolicy(w.Policy)
		if err != nil {
			return err
		}
		out.Policy = p
	}
	if w.Faults != nil {
		spec, err := ParseFaultSpec(*w.Faults)
		if err != nil {
			return err
		}
		out.Faults = &spec
	}
	*c = out
	return nil
}
