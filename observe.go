package ptbsim

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"ptbsim/internal/isa"
	"ptbsim/internal/obs"
)

// Sample is one epoch of telemetry: per-core power and token views, DVFS
// mode residency, sync-class occupancy, the PTB token-flow ledger, and NoC
// and cache pressure, stamped with the run's identity so merged sweep feeds
// stay self-describing. It is an alias of the engine's sample type, so any
// Observer plugs straight into the recorder with no per-sample conversion.
//
// The JSON field names on Sample are the stable wire schema shared by the
// JSONL sink, ptbreport's telemetry table and external tooling.
type Sample = obs.Sample

// Telemetry sampling defaults (see TelemetrySpec and Telemetry).
const (
	// DefaultTelemetryEvery is the sampling period in cycles when a
	// Telemetry leaves Every zero.
	DefaultTelemetryEvery = obs.DefaultEvery
	// DefaultTelemetryRing is the in-memory ring capacity in samples when a
	// Telemetry leaves Ring zero.
	DefaultTelemetryRing = obs.DefaultRing
)

// Observer consumes telemetry samples as a run records them. The *Sample
// passed to Observe points into the recorder's preallocated ring and is
// only valid for the duration of the call — retain Clone()s, not pointers.
//
// Observers attached to a single run (Config.Observe, RunTraceContext) are
// called from that run's goroutine and need no locking. An observer shared
// across concurrent runs must serialize itself — WithObserver does this for
// you, and the bundled sinks (JSONLObserver, CSVObserver, MemoryObserver)
// are safe either way.
type Observer interface {
	Observe(s *Sample)
}

// RunObserver is optionally implemented by an Observer passed to
// WithObserver: ObserveRun is invoked once per finished configuration with
// the same Progress the WithProgress callback receives, letting one sink
// interleave run-completion records with the sample stream (JSONLObserver
// does). Calls are serialized by the experiment.
type RunObserver interface {
	ObserveRun(p Progress)
}

// Telemetry configures the observability layer of a run (Config.Observe):
// every Every cycles the simulator records one Sample into an in-memory
// ring of Ring slots and streams it to Observer, if set. Zero values select
// the defaults above.
//
// Observation is passive — the recorder only reads simulation state — so a
// run produces bit-identical results with telemetry on or off; the golden
// digest matrix pins this. A config with Observe nil pays one nil check per
// simulated cycle.
type Telemetry struct {
	// Every is the sampling period in cycles (0 = DefaultTelemetryEvery).
	Every int64
	// Ring is the in-memory sample ring capacity (0 = DefaultTelemetryRing).
	// Older samples are overwritten once the ring wraps; the Observer sees
	// every sample regardless.
	Ring int
	// Observer, when non-nil, receives every sample as it is recorded.
	Observer Observer
}

// validate checks the Telemetry knobs; errors wrap ErrBadTelemetrySpec.
func (t *Telemetry) validate() error {
	if t.Every < 0 {
		return fmt.Errorf("ptbsim: %w: negative sampling period %d", ErrBadTelemetrySpec, t.Every)
	}
	if t.Ring < 0 {
		return fmt.Errorf("ptbsim: %w: negative ring size %d", ErrBadTelemetrySpec, t.Ring)
	}
	return nil
}

// internal maps the public Telemetry onto the engine's recorder config. An
// Observer satisfies the engine's sink interface directly (Sample is an
// alias), so no adaptation layer runs per sample.
func (t *Telemetry) internal() *obs.Config {
	if t == nil {
		return nil
	}
	return &obs.Config{Every: t.Every, Ring: t.Ring, Sink: t.Observer}
}

// lockedObserver serializes a shared observer across concurrent runs.
type lockedObserver struct {
	mu    sync.Mutex
	inner Observer
}

func (l *lockedObserver) Observe(s *Sample) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Observe(s)
}

// JSONLObserver streams telemetry as JSON Lines: one Sample object per
// line, in the stable wire schema, plus one run-completion record per
// finished configuration when driven by WithObserver (an object with a
// "run" key holding the Config, and "result"/"cached"/"error" fields).
// ReadTelemetry parses the format back. Safe for concurrent use; the first
// write error latches and is reported by Err.
type JSONLObserver struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLObserver creates a JSONL sink writing to w. The caller owns w's
// buffering and closing; see TelemetrySpec.Start for the managed variant.
//
// Deprecated: the telemetry wire formats live in ptbsim/sinks, which
// documents their stability guarantee; use sinks.NewJSONL. This alias is
// permanent but frozen.
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{enc: json.NewEncoder(w)}
}

// Observe writes one sample line.
func (o *JSONLObserver) Observe(s *Sample) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err == nil {
		o.err = o.enc.Encode(s)
	}
}

// runRecord is the JSONL wire form of a run-completion event. The "run"
// key distinguishes these lines from samples (which never have one).
type runRecord struct {
	Run    Config  `json:"run"`
	Result *Result `json:"result,omitempty"`
	Cached bool    `json:"cached,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// ObserveRun writes one run-completion record, implementing RunObserver.
func (o *JSONLObserver) ObserveRun(p Progress) {
	rec := runRecord{Run: p.Config, Result: p.Result, Cached: p.Cached}
	if p.Err != nil {
		rec.Error = p.Err.Error()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err == nil {
		o.err = o.enc.Encode(rec)
	}
}

// Err returns the first write error, if any.
func (o *JSONLObserver) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// CSVObserver streams telemetry as CSV with a header row derived from the
// first sample's core count: the scalar columns, one cycles column per
// sync class, then per-core pj/tokens_pj/epoch_pj/mode/class column
// groups. All samples in one feed must share a core count — merged sweeps
// over mixed sizes belong in the JSONL format. Safe for concurrent use.
type CSVObserver struct {
	mu    sync.Mutex
	w     *csv.Writer
	err   error
	cores int // -1 until the header is written
}

// NewCSVObserver creates a CSV sink writing to w; see NewJSONLObserver for
// ownership conventions.
//
// Deprecated: use sinks.NewCSV (see ptbsim/sinks for the wire-format
// stability guarantee). This alias is permanent but frozen.
func NewCSVObserver(w io.Writer) *CSVObserver {
	return &CSVObserver{w: csv.NewWriter(w), cores: -1}
}

func csvHeader(cores int) []string {
	h := []string{
		"bench", "cores", "tech", "policy", "epoch", "cycle", "cycles",
		"partial", "budget_pj", "chip_pj", "donated_pj", "granted_pj",
		"discarded_pj", "inflight_pj", "noc_msgs", "noc_flits",
		"l1_hits", "l1_misses", "l2_hits", "l2_misses",
	}
	for c := 0; c < isa.NumSyncClasses; c++ {
		name := strings.ReplaceAll(isa.SyncClass(c).String(), "-", "_")
		h = append(h, name+"_cycles")
	}
	for i := 0; i < cores; i++ {
		p := "core" + strconv.Itoa(i)
		h = append(h, p+"_pj", p+"_tokens_pj", p+"_epoch_pj", p+"_mode", p+"_class")
	}
	return h
}

func csvRecord(s *Sample) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	rec := []string{
		s.Bench, strconv.Itoa(s.Cores), s.Tech, s.Policy,
		d(s.Epoch), d(s.Cycle), d(s.Cycles), strconv.FormatBool(s.Partial),
		f(s.BudgetPJ), f(s.ChipPJ), f(s.DonatedPJ), f(s.GrantedPJ),
		f(s.DiscardedPJ), f(s.InFlightPJ), d(s.NoCMessages), d(s.NoCFlits),
		d(s.L1Hits), d(s.L1Misses), d(s.L2Hits), d(s.L2Misses),
	}
	for _, v := range s.ClassCycles {
		rec = append(rec, d(v))
	}
	for i := range s.CorePJ {
		rec = append(rec, f(s.CorePJ[i]), f(s.TokensPJ[i]), f(s.EpochPJ[i]),
			strconv.Itoa(s.Modes[i]), strconv.Itoa(s.Classes[i]))
	}
	return rec
}

// Observe writes one CSV row (and the header, on the first sample).
func (o *CSVObserver) Observe(s *Sample) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		return
	}
	if o.cores < 0 {
		o.cores = len(s.CorePJ)
		if o.err = o.w.Write(csvHeader(o.cores)); o.err != nil {
			return
		}
	}
	if len(s.CorePJ) != o.cores {
		o.err = fmt.Errorf("ptbsim: csv telemetry: %d-core sample in a %d-core feed (use format=jsonl for mixed-size sweeps)",
			len(s.CorePJ), o.cores)
		return
	}
	o.err = o.w.Write(csvRecord(s))
}

// Err flushes buffered rows and returns the first error, if any.
func (o *CSVObserver) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.w.Flush()
	if o.err != nil {
		return o.err
	}
	return o.w.Error()
}

// MemoryObserver retains every sample (deep-copied) and run-completion
// event in memory — the in-process analogue of the file sinks, and the
// easiest way to post-process telemetry without I/O. Safe for concurrent
// use.
type MemoryObserver struct {
	mu      sync.Mutex
	samples []Sample
	runs    []Progress
}

// Observe retains a deep copy of the sample.
func (m *MemoryObserver) Observe(s *Sample) {
	m.mu.Lock()
	m.samples = append(m.samples, s.Clone())
	m.mu.Unlock()
}

// ObserveRun retains the run-completion event, implementing RunObserver.
func (m *MemoryObserver) ObserveRun(p Progress) {
	m.mu.Lock()
	m.runs = append(m.runs, p)
	m.mu.Unlock()
}

// Samples returns the retained samples in arrival order. The slice is a
// copy; the samples it holds are already detached from the recorder.
func (m *MemoryObserver) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// Runs returns the retained run-completion events in arrival order.
func (m *MemoryObserver) Runs() []Progress {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Progress(nil), m.runs...)
}

// Reset discards everything retained so far.
func (m *MemoryObserver) Reset() {
	m.mu.Lock()
	m.samples, m.runs = nil, nil
	m.mu.Unlock()
}

// ReadTelemetry parses a JSONL telemetry stream (the JSONLObserver format)
// back into samples, in stream order. Run-completion records and blank
// lines are skipped; malformed lines fail with their line number.
//
// Deprecated: use sinks.ReadTelemetry (see ptbsim/sinks for the
// wire-format stability guarantee). This alias is permanent but frozen.
func ReadTelemetry(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Sample
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Run json.RawMessage `json:"run"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return nil, fmt.Errorf("ptbsim: telemetry line %d: %w", line, err)
		}
		if probe.Run != nil {
			continue
		}
		var s Sample
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("ptbsim: telemetry line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ptbsim: reading telemetry: %w", err)
	}
	return out, nil
}
