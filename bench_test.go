// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, regenerating the corresponding rows at a reduced
// workload scale. Each benchmark reports its figure's headline metric
// (e.g. avg-normalized AoPB%) through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a compact reproduction record. The full-size tables come from
// cmd/ptbsweep (see EXPERIMENTS.md for paper-vs-measured values).
package ptbsim

import (
	"strconv"
	"testing"

	"ptbsim/internal/budget"
	"ptbsim/internal/core"
	"ptbsim/internal/cpu"
	"ptbsim/internal/isa"
	"ptbsim/internal/power"
	"ptbsim/internal/sim"
)

// benchScale keeps every figure benchmark in the seconds range.
const benchScale = 0.06

// benchSubset is a representative slice of the 14 workloads: one
// barrier-bound, one lock-bound, one synchronization-free.
var benchSubset = []string{"ocean", "unstructured", "blackscholes"}

func newBenchRunner() *sim.Runner {
	r := sim.NewRunner(benchScale)
	r.MaxCycles = 20_000_000
	return r
}

func avgColumn(t *sim.Table, col int) float64 {
	// Average row is last; parse its column.
	row := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Table1()
		if len(t.Rows) < 15 {
			b.Fatal("config table incomplete")
		}
	}
}

func BenchmarkTable2Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Table2()
		if len(t.Rows) != 14 {
			b.Fatal("catalog incomplete")
		}
	}
}

func BenchmarkFig2NaiveSplit(b *testing.B) {
	var aopb float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig2(benchSubset, 8)
		aopb = avgColumn(t, 4) // A.dvfs%
	}
	b.ReportMetric(aopb, "dvfs-AoPB%")
}

func BenchmarkFig3Breakdown(b *testing.B) {
	var barrier16 float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig3([]string{"ocean"}, []int{2, 8})
		v, _ := strconv.ParseFloat(t.Rows[len(t.Rows)-1][4], 64)
		barrier16 = v
	}
	b.ReportMetric(barrier16, "ocean-8c-barrier%")
}

func BenchmarkFig4SpinPower(b *testing.B) {
	var spin float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig4([]string{"unstructured", "ocean"}, []int{2, 8})
		spin = avgColumn(t, 2) // 8-core column of the Avg row
	}
	b.ReportMetric(spin, "avg-spin-power%")
}

func BenchmarkFig5MotivationTrace(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		trace, budgetPJ := sim.Fig5Trace(benchScale)
		if budgetPJ <= 0 {
			b.Fatal("no budget")
		}
		n = len(trace)
	}
	b.ReportMetric(float64(n), "samples")
}

func BenchmarkFig6SpinTrace(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		trace, local := sim.Fig6Trace(benchScale)
		if local <= 0 {
			b.Fatal("no budget")
		}
		n = len(trace)
	}
	b.ReportMetric(float64(n), "samples")
}

// BenchmarkFig7BalancerThroughput exercises the worked-example machinery:
// the PTB balancer redistributing tokens cycle by cycle (the Fig. 7 flow),
// measured in balancing rounds per second.
func BenchmarkFig7BalancerThroughput(b *testing.B) {
	const n = 4
	m := power.NewMeter(n)
	tm := power.NewTokenModel()
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), m, tm, benchNullMem{}, benchNullSync{}, benchNullSrc{})
	}
	st := budget.NewChipState(cores, m, nil, 4000)
	bal := core.NewBalancer(n, core.PolicyToAll, budget.None{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Cycle = int64(i)
		st.ChipEstPJ = 0
		for c := 0; c < n; c++ {
			if c < 2 {
				st.EstPJ[c] = 400
			} else {
				st.EstPJ[c] = 1800
			}
			st.ChipEstPJ += st.EstPJ[c]
			st.ExtraPJ[c] = 0
		}
		bal.Tick(st)
	}
}

func BenchmarkFig8LatencyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig8()
		if len(t.Rows) != 4 {
			b.Fatal("latency table incomplete")
		}
	}
}

func BenchmarkFig9PolicySweep(b *testing.B) {
	var ptbAoPB float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig9([]string{"ocean", "blackscholes"}, []int{2, 8})
		v, _ := strconv.ParseFloat(t.Rows[len(t.Rows)-1][8], 64) // A.ptb% of 8-core ToAll
		ptbAoPB = v
	}
	b.ReportMetric(ptbAoPB, "ptb-AoPB%")
}

func benchDetail(b *testing.B, id string, pol core.Policy) {
	var ptbAoPB float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.FigDetail(id, benchSubset, 8, pol)
		ptbAoPB = avgColumn(t, 8)
	}
	b.ReportMetric(ptbAoPB, "ptb-AoPB%")
}

func BenchmarkFig10ToAll(b *testing.B)   { benchDetail(b, "Figure 10", core.PolicyToAll) }
func BenchmarkFig11ToOne(b *testing.B)   { benchDetail(b, "Figure 11", core.PolicyToOne) }
func BenchmarkFig12Dynamic(b *testing.B) { benchDetail(b, "Figure 12", core.PolicyDynamic) }

func BenchmarkFig13Performance(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig13(benchSubset, 8)
		slow = avgColumn(t, 4) // ptb slowdown
	}
	b.ReportMetric(slow, "ptb-slowdown%")
}

func BenchmarkFig14Relaxed(b *testing.B) {
	var dE float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Fig14([]string{"ocean", "blackscholes"}, []int{8}, 0.20)
		strict, _ := strconv.ParseFloat(t.Rows[len(t.Rows)-1][1], 64)
		relaxed, _ := strconv.ParseFloat(t.Rows[len(t.Rows)-1][2], 64)
		dE = relaxed - strict
	}
	b.ReportMetric(dE, "relax-energy-delta%")
}

func BenchmarkSec4DTDP(b *testing.B) {
	var cores float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t := r.Sec4D([]string{"ocean", "blackscholes"}, 8)
		// PTB row's cores-at-TDP column.
		v, _ := strconv.ParseFloat(t.Rows[2][3], 64)
		cores = v
	}
	b.ReportMetric(cores, "ptb-cores@TDP")
}

// BenchmarkSimulatorSpeed measures raw simulation throughput: how many
// simulated cycles one uncontrolled 4-core run covers per iteration (the
// substrate's own figure of merit; divide by ns/op for cycles/second).
func BenchmarkSimulatorSpeed(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		r := sim.NewRunner(benchScale)
		out := r.Base("fft", 4)
		cycles = out.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// Interface stubs for the balancer micro-benchmark.
type benchNullMem struct{}

func (benchNullMem) Read(int, uint64, func())      {}
func (benchNullMem) Write(int, uint64, func())     {}
func (benchNullMem) FetchProbe(int, uint64) bool   { return true }
func (benchNullMem) FetchMiss(int, uint64, func()) {}

type benchNullSrc struct{}

func (benchNullSrc) Next() (isa.Inst, bool) { return isa.Inst{}, false }
func (benchNullSrc) Resolve(int64)          {}

type benchNullSync struct{}

func (benchNullSync) Eval(int, isa.Inst) int64 { return 0 }
