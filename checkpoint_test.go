package ptbsim_test

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ptbsim"
)

// ckptOf globs the single snapshot file a crash drill left in dir.
func ckptOf(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("snapshot files in %s = %v, want exactly 1", dir, names)
	}
	return names[0]
}

// drill runs cfg until the first snapshot (aborting with ErrRunStopped)
// and returns the snapshot path. cfg's Checkpoint field is overwritten.
func drill(t *testing.T, cfg ptbsim.Config, dir string, every int64) string {
	t.Helper()
	cfg.Checkpoint = &ptbsim.Checkpoint{Every: every, Dir: dir, StopAfter: 1}
	_, err := ptbsim.RunContext(context.Background(), cfg)
	if !errors.Is(err, ptbsim.ErrRunStopped) {
		t.Fatalf("crash drill: err = %v, want ErrRunStopped", err)
	}
	return ckptOf(t, dir)
}

func TestParseCheckpointSpec(t *testing.T) {
	good := map[string]ptbsim.CheckpointSpec{
		"dir=ckpt":                     {Dir: "ckpt"},
		"every=500000,dir=/var/ckpt":   {Every: 500000, Dir: "/var/ckpt"},
		"every=2000, dir=ckpt, stop=3": {Every: 2000, Dir: "ckpt", Stop: 3},
		"STOP=1,dir=d":                 {Dir: "d", Stop: 1},
		"dir=with=equals,every=1":      {Every: 1, Dir: "with=equals"},
	}
	for in, want := range good {
		got, err := ptbsim.ParseCheckpointSpec(in)
		if err != nil || got != want {
			t.Errorf("ParseCheckpointSpec(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	bad := []string{
		"",               // empty
		"every=1000",     // no dir
		"dir=a,dir=b",    // repeated key
		"every=0,dir=d",  // non-positive cadence
		"every=x,dir=d",  // malformed number
		"stop=-1,dir=d",  // negative stop
		"speed=9,dir=d",  // unknown key
		"dir=d,,every=1", // empty clause
		"justadirname",   // not key=value
	}
	for _, in := range bad {
		if _, err := ptbsim.ParseCheckpointSpec(in); !errors.Is(err, ptbsim.ErrBadCheckpointSpec) {
			t.Errorf("ParseCheckpointSpec(%q) err = %v, want ErrBadCheckpointSpec", in, err)
		}
	}

	// The flag round-trips through String.
	s, err := ptbsim.ParseCheckpointSpec("every=2000,dir=ckpt,stop=3")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ptbsim.ParseCheckpointSpec(s.String())
	if err != nil || back != s {
		t.Fatalf("String round-trip: %+v -> %q -> %+v (%v)", s, s.String(), back, err)
	}
	if ck := s.Checkpoint(); ck.Every != 2000 || ck.Dir != "ckpt" || ck.StopAfter != 3 {
		t.Fatalf("Checkpoint() = %+v", ck)
	}
	if ck := (ptbsim.CheckpointSpec{Dir: "d"}).Checkpoint(); ck.Every != ptbsim.DefaultCheckpointEvery {
		t.Fatalf("default cadence not applied: %+v", ck)
	}
}

func TestCheckpointNeedsDir(t *testing.T) {
	cfg := ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.None,
		WorkloadScale: 0.02, Checkpoint: &ptbsim.Checkpoint{Every: 1000}}
	if _, err := ptbsim.RunContext(context.Background(), cfg); !errors.Is(err, ptbsim.ErrBadCheckpointSpec) {
		t.Fatalf("err = %v, want ErrBadCheckpointSpec", err)
	}
}

// TestCheckpointCrashDrillAndAutoResume is the headline round trip: a
// run killed right after its first snapshot, rerun with the same
// checkpoint directory, must resume from the snapshot and produce a
// Result digest byte-identical to an uninterrupted run — with the
// invariant layer and telemetry on, and the snapshot deleted afterwards
// (the result is the durable artifact).
func TestCheckpointCrashDrillAndAutoResume(t *testing.T) {
	cfg := ptbsim.Config{
		Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic,
		WorkloadScale: 0.05, CheckInvariants: true,
		Observe: &ptbsim.Telemetry{Every: 2048},
	}
	want, err := ptbsim.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	drill(t, cfg, dir, 3000)

	resumed := cfg
	resumed.Checkpoint = &ptbsim.Checkpoint{Every: 3000, Dir: dir}
	got, err := ptbsim.RunContext(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != want.Digest() {
		t.Fatalf("resumed run diverged:\n got  %s\n want %s", got.Digest(), want.Digest())
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(names) != 0 {
		t.Fatalf("snapshot not deleted after completion: %v", names)
	}
}

// TestResumeContextExplicit pins the self-describing entry point: the
// snapshot alone — no configuration — must complete the run identically,
// and damaged snapshots must fail with the right typed error instead of
// silently recomputing.
func TestResumeContextExplicit(t *testing.T) {
	cfg := ptbsim.Config{
		Benchmark: "fft", Cores: 2, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic,
		WorkloadScale: 0.05,
	}
	want, err := ptbsim.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := drill(t, cfg, dir, 3000)

	got, err := ptbsim.ResumeContext(context.Background(), path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != want.Digest() {
		t.Fatalf("explicit resume diverged:\n got  %s\n want %s", got.Digest(), want.Digest())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A bit flip in the body must be caught by the checksum.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	cpath := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ptbsim.ResumeContext(context.Background(), cpath, 0); !errors.Is(err, ptbsim.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrSnapshotCorrupt", err)
	}

	// A future format version must be refused as version skew, not noise.
	// Re-seal the trailing checksum so only the version check can object.
	skewed := append([]byte(nil), data...)
	skewed[8] = 0xFF // version uint32 LE follows the 8-byte magic
	sum := sha256.Sum256(skewed[:len(skewed)-sha256.Size])
	copy(skewed[len(skewed)-sha256.Size:], sum[:])
	spath := filepath.Join(dir, "skewed.ckpt")
	if err := os.WriteFile(spath, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ptbsim.ResumeContext(context.Background(), spath, 0); !errors.Is(err, ptbsim.ErrSnapshotVersion) {
		t.Fatalf("skewed snapshot: err = %v, want ErrSnapshotVersion", err)
	}

	// A truncated file is corrupt too.
	tpath := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(tpath, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ptbsim.ResumeContext(context.Background(), tpath, 0); !errors.Is(err, ptbsim.ErrSnapshotCorrupt) {
		t.Fatalf("truncated snapshot: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestCheckpointFallsBackOnDamage pins "degraded, never wrong": the
// automatic resume path, handed a corrupt or version-skewed snapshot,
// recomputes from scratch and still produces the exact digest.
func TestCheckpointFallsBackOnDamage(t *testing.T) {
	cfg := ptbsim.Config{
		Benchmark: "radix", Cores: 2, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic,
		WorkloadScale: 0.05,
	}
	want, err := ptbsim.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, damage := range map[string]func([]byte) []byte{
		"corrupt": func(d []byte) []byte { d[len(d)/2] ^= 0x01; return d },
		"skewed": func(d []byte) []byte {
			d[8] = 0xFE // re-seal so the damage reads as version skew, not corruption
			sum := sha256.Sum256(d[:len(d)-sha256.Size])
			copy(d[len(d)-sha256.Size:], sum[:])
			return d
		},
		"truncate": func(d []byte) []byte { return d[:len(d)/4] },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := drill(t, cfg, dir, 3000)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			resumed := cfg
			resumed.Checkpoint = &ptbsim.Checkpoint{Every: 3000, Dir: dir}
			got, err := ptbsim.RunContext(context.Background(), resumed)
			if err != nil {
				t.Fatalf("damaged snapshot was not recovered from: %v", err)
			}
			if got.Digest() != want.Digest() {
				t.Fatalf("fallback recompute diverged:\n got  %s\n want %s", got.Digest(), want.Digest())
			}
		})
	}
}

// TestCheckpointConformanceShort sweeps a small high-variance matrix —
// telemetry on, invariants on, a faulted cell, serial and 4-way-sharded
// chips — through the drill-then-resume cycle and demands digest
// identity with the uninterrupted runs.
func TestCheckpointConformanceShort(t *testing.T) {
	base := ptbsim.Config{
		Cores: 4, Policy: ptbsim.Dynamic, WorkloadScale: 0.05,
		CheckInvariants: true, Observe: &ptbsim.Telemetry{Every: 1024},
	}
	cfgs := make([]ptbsim.Config, 0, 8)
	for _, tech := range []ptbsim.Technique{ptbsim.None, ptbsim.PTB} {
		for _, par := range []int{1, 4} {
			cfg := base
			cfg.Benchmark, cfg.Technique, cfg.IntraParallel = "ocean", tech, par
			cfgs = append(cfgs, cfg)
		}
	}
	faulted := base
	faulted.Benchmark, faulted.Technique = "fft", ptbsim.PTB
	faulted.Faults = &ptbsim.FaultSpec{Seed: 7, TokenDrop: 0.01, TokenDelay: 0.02, DVFSGlitch: 0.1}
	cfgs = append(cfgs, faulted)

	for i, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("cell-%d", i), func(t *testing.T) {
			t.Parallel()
			want, err := ptbsim.RunContext(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			drill(t, cfg, dir, 2500)
			resumed := cfg
			resumed.Checkpoint = &ptbsim.Checkpoint{Every: 2500, Dir: dir}
			got, err := ptbsim.RunContext(context.Background(), resumed)
			if err != nil {
				t.Fatal(err)
			}
			if got.Digest() != want.Digest() {
				t.Fatalf("resumed digest diverged:\n got  %s\n want %s", got.Digest(), want.Digest())
			}
		})
	}
}

// TestGoldenMatrixCheckpointConformance is the acceptance gate: every
// cell of the committed golden matrix, interrupted mid-run by the crash
// drill and resumed from its snapshot, must land on the committed digest
// byte-for-byte — at serial and 4-way intra-run parallelism, with the
// invariant layer and telemetry enabled. Cells shorter than the snapshot
// cadence simply complete on the first pass, which still must match.
func TestGoldenMatrixCheckpointConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix (98 cells, run twice) skipped in -short")
	}
	want := readGoldenMatrix(t)
	cfgs := goldenMatrixSweep(t).Configs()
	if len(cfgs) != len(want) {
		t.Fatalf("golden matrix has %d cells, golden file has %d digests", len(cfgs), len(want))
	}

	for _, parIntra := range []int{1, 4} {
		parIntra := parIntra
		t.Run(fmt.Sprintf("par-intra=%d", parIntra), func(t *testing.T) {
			sem := make(chan struct{}, 8)
			var wg sync.WaitGroup
			errs := make([]error, len(cfgs))
			for i, cfg := range cfgs {
				i, cfg := i, cfg
				cfg.WorkloadScale = 0.25
				cfg.CheckInvariants = true
				cfg.IntraParallel = parIntra
				cfg.Observe = &ptbsim.Telemetry{Every: 4096}
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					errs[i] = checkpointCell(cfg, want[i])
				}()
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("cell %d: %v", i, err)
				}
			}
		})
	}
}

// checkpointCell drills one golden cell and verifies the resumed digest
// against the committed line. A cell that finishes before its first
// snapshot is verified directly.
func checkpointCell(cfg ptbsim.Config, want string) error {
	dir, err := os.MkdirTemp("", "ckpt-cell-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	drillCfg := cfg
	drillCfg.Checkpoint = &ptbsim.Checkpoint{Every: 20_000, Dir: dir, StopAfter: 1}
	res, err := ptbsim.RunContext(context.Background(), drillCfg)
	switch {
	case errors.Is(err, ptbsim.ErrRunStopped):
		resumed := cfg
		resumed.Checkpoint = &ptbsim.Checkpoint{Every: 20_000, Dir: dir}
		res, err = ptbsim.RunContext(context.Background(), resumed)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	case err != nil:
		return fmt.Errorf("drill: %w", err)
	}
	if got := res.Digest(); got != want {
		return fmt.Errorf("digest drift:\n got  %s\n want %s", got, want)
	}
	return nil
}

// TestExperimentWithCheckpoint pins the engine-level default: an
// experiment built with WithCheckpoint arms snapshots on every run whose
// config leaves Checkpoint nil, results stay digest-identical to an
// uncheckpointed experiment, and completed runs clean their snapshots up.
func TestExperimentWithCheckpoint(t *testing.T) {
	ctx := context.Background()
	cfg := ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic}

	plain := ptbsim.NewExperiment(ptbsim.WithScale(0.05))
	want, err := plain.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	e := ptbsim.NewExperiment(ptbsim.WithScale(0.05), ptbsim.WithCheckpoint(2000, dir))
	got, err := e.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != want.Digest() {
		t.Fatalf("checkpointed experiment diverged:\n got  %s\n want %s", got.Digest(), want.Digest())
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(names) != 0 {
		t.Fatalf("completed run left snapshots behind: %v", names)
	}
}
