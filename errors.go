package ptbsim

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"ptbsim/internal/fault"
	"ptbsim/internal/invariant"
	"ptbsim/internal/workload"
)

// ErrBadFaultSpec is the sentinel wrapped by every FaultSpec validation
// and ParseFaultSpec error; branch with errors.Is.
var ErrBadFaultSpec = fault.ErrBadSpec

// ErrBadTelemetrySpec is the sentinel wrapped by every ParseTelemetrySpec,
// TelemetrySpec and Telemetry validation error; branch with errors.Is.
var ErrBadTelemetrySpec = errors.New("invalid telemetry spec")

// Canonical ErrBad* aliases: the flag parsers (ParseTechnique, ParsePolicy,
// ParseFaultSpec, ParseTelemetrySpec) all report errors of one shape —
// "ptbsim: <what is wrong> (valid: …)" wrapping an ErrBad* sentinel — and
// these aliases let callers branch on that family uniformly. They are the
// same error values as the older ErrUnknown* names, so existing errors.Is
// checks keep working.
var (
	// ErrBadTechnique aliases ErrUnknownTechnique.
	ErrBadTechnique = ErrUnknownTechnique
	// ErrBadPolicy aliases ErrUnknownPolicy.
	ErrBadPolicy = ErrUnknownPolicy
)

// ErrRunDeadline marks a run that exceeded the experiment's per-run
// deadline (WithRunTimeout). Deadline misses are treated as transient:
// the experiment retries them with exponential backoff up to WithRetries
// before reporting the error.
var ErrRunDeadline = errors.New("run exceeded per-run deadline")

// ErrInvariantViolation is the sentinel wrapped by every error a
// CheckInvariants-enabled run returns when a runtime invariant fails; branch
// with errors.Is(err, ErrInvariantViolation). The error text lists each
// violated check with its cycle and a description.
var ErrInvariantViolation = invariant.ErrViolated

// Typed validation errors. Config.Validate, ParseTechnique and ParsePolicy
// return errors wrapping one of these sentinels, so callers can branch
// with errors.Is while still getting a descriptive message.
var (
	// ErrUnknownBenchmark marks a Config.Benchmark not in the Table-2
	// catalog (see Benchmarks).
	ErrUnknownBenchmark = errors.New("unknown benchmark")
	// ErrBadCores marks an unusable CMP size.
	ErrBadCores = errors.New("invalid core count")
	// ErrUnknownTechnique marks a Technique outside the evaluated set.
	ErrUnknownTechnique = errors.New("unknown technique")
	// ErrUnknownPolicy marks a Policy outside ToAll/ToOne/Dynamic.
	ErrUnknownPolicy = errors.New("unknown policy")
	// ErrBadScale marks a non-positive or non-finite WorkloadScale.
	ErrBadScale = errors.New("invalid workload scale")
	// ErrBadBudget marks a BudgetFrac outside (0, 1].
	ErrBadBudget = errors.New("invalid budget fraction")
	// ErrBadRelax marks a negative or non-finite RelaxFrac.
	ErrBadRelax = errors.New("invalid relax fraction")
	// ErrBadMaxCycles marks a negative cycle cap.
	ErrBadMaxCycles = errors.New("invalid max cycles")
	// ErrBadCluster marks a negative PTBClusterSize.
	ErrBadCluster = errors.New("invalid PTB cluster size")
	// ErrBadIntraParallel marks an IntraParallel tile count that is
	// negative, zero via an explicit flag, or not a divisor of the core
	// count.
	ErrBadIntraParallel = errors.New("invalid intra-run parallelism")
)

// MaxCores is the largest CMP size Validate accepts. The paper evaluates
// 2–16 cores; the clustered balancer (§III.E.2) is exercised well past
// that, but the mesh layout and workload generators are only calibrated up
// to this bound.
const MaxCores = 256

// techniques is the canonical name set, in the paper's order.
var techniques = []Technique{None, DVFS, DFS, TwoLevel, PTB, PTBSpinGate, MaxBIPS}

// TechniqueNames lists the parsable technique names in the paper's order
// (for -help texts and error messages).
func TechniqueNames() []string {
	out := make([]string, len(techniques))
	for i, t := range techniques {
		out[i] = string(t)
	}
	return out
}

// ParseTechnique resolves a command-line technique name ("none", "dvfs",
// "dfs", "2level", "ptb", "ptbgate", "maxbips"; case-insensitive, with
// "twolevel" accepted as an alias). Unknown names return an error wrapping
// ErrUnknownTechnique listing the valid set.
func ParseTechnique(s string) (Technique, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	if name == "twolevel" {
		name = string(TwoLevel)
	}
	for _, t := range techniques {
		if name == string(t) {
			return t, nil
		}
	}
	return "", fmt.Errorf("ptbsim: %w %q (valid: %s)",
		ErrUnknownTechnique, s, strings.Join(TechniqueNames(), ", "))
}

// PolicyNames lists the parsable PTB policy names.
func PolicyNames() []string { return []string{"toall", "toone", "dynamic"} }

// ParsePolicy resolves a command-line PTB policy name ("toall", "toone",
// "dynamic"; case-insensitive). Unknown names return an error wrapping
// ErrUnknownPolicy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "toall":
		return ToAll, nil
	case "toone":
		return ToOne, nil
	case "dynamic":
		return Dynamic, nil
	}
	return 0, fmt.Errorf("ptbsim: %w %q (valid: %s)",
		ErrUnknownPolicy, s, strings.Join(PolicyNames(), ", "))
}

// ParseIntraParallel resolves a command-line -par-intra value against a
// core count: the number of tiles the chip is sharded across. Valid values
// are the divisors of cores (1 = serial). Anything else — non-integers,
// zero, negatives, non-divisors, more tiles than cores — returns an error
// wrapping ErrBadIntraParallel. cores <= 0 stands in for the default
// 4-core chip.
func ParseIntraParallel(s string, cores int) (int, error) {
	if cores <= 0 {
		cores = 4
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("ptbsim: %w %q (want a positive divisor of the core count)", ErrBadIntraParallel, s)
	}
	if n <= 0 || n > cores || cores%n != 0 {
		return 0, fmt.Errorf("ptbsim: %w %d (want a divisor of the %d-core chip)", ErrBadIntraParallel, n, cores)
	}
	return n, nil
}

// Validate checks every Config field against the simulator's domain and
// returns an error wrapping the matching sentinel (ErrUnknownBenchmark,
// ErrBadCores, …) for the first violation. Zero values that select
// documented defaults (Cores, Technique, BudgetFrac, WorkloadScale,
// MaxCycles) are valid.
func (c Config) Validate() error {
	if _, ok := workload.ByName(c.Benchmark); !ok {
		return fmt.Errorf("ptbsim: %w %q (see Benchmarks or `ptbsim -list`)", ErrUnknownBenchmark, c.Benchmark)
	}
	if c.Cores < 0 || c.Cores > MaxCores {
		return fmt.Errorf("ptbsim: %w %d (want 1–%d, or 0 for the default 4)", ErrBadCores, c.Cores, MaxCores)
	}
	if c.Technique != "" {
		if _, err := ParseTechnique(string(c.Technique)); err != nil {
			return err
		}
	}
	switch c.Policy {
	case ToAll, ToOne, Dynamic:
	default:
		return fmt.Errorf("ptbsim: %w %d", ErrUnknownPolicy, int(c.Policy))
	}
	if c.WorkloadScale < 0 || math.IsNaN(c.WorkloadScale) || math.IsInf(c.WorkloadScale, 0) {
		return fmt.Errorf("ptbsim: %w %v (want > 0, or 0 for the default 1.0)", ErrBadScale, c.WorkloadScale)
	}
	if c.BudgetFrac < 0 || c.BudgetFrac > 1 || math.IsNaN(c.BudgetFrac) {
		return fmt.Errorf("ptbsim: %w %v (want a fraction of peak in (0, 1], or 0 for the default 0.5)", ErrBadBudget, c.BudgetFrac)
	}
	if c.RelaxFrac < 0 || math.IsNaN(c.RelaxFrac) || math.IsInf(c.RelaxFrac, 0) {
		return fmt.Errorf("ptbsim: %w %v (want ≥ 0, e.g. 0.2 = trigger 20%% above the budget)", ErrBadRelax, c.RelaxFrac)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("ptbsim: %w %d", ErrBadMaxCycles, c.MaxCycles)
	}
	if c.PTBClusterSize < 0 {
		return fmt.Errorf("ptbsim: %w %d", ErrBadCluster, c.PTBClusterSize)
	}
	if c.IntraParallel != 0 {
		cores := c.Cores
		if cores == 0 {
			cores = 4 // the documented Cores default
		}
		if c.IntraParallel < 0 || c.IntraParallel > cores || cores%c.IntraParallel != 0 {
			return fmt.Errorf("ptbsim: %w %d (want a divisor of the %d-core chip, or 0 for the serial default)",
				ErrBadIntraParallel, c.IntraParallel, cores)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.Observe != nil {
		if err := c.Observe.validate(); err != nil {
			return err
		}
	}
	return nil
}
