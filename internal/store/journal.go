package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is a write-ahead log of accepted jobs: the piece that makes
// "accepted" mean "durable". The server appends one fsync'd record per
// accepted submission before acknowledging it, and a completion record
// when the result lands in the store; a SIGKILL'd process therefore
// reboots, replays the journal, and finds exactly the set of jobs that
// were accepted but not yet completed — zero accepted jobs are ever
// lost. The log is JSONL (one record per line) and torn-tail tolerant:
// a crash mid-append leaves at most one partial last line, which is
// dropped and counted rather than tripping recovery. Open compacts the
// log to just the pending records, so it never grows without bound.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	pending map[string]JournalRecord
	order   []string // pending IDs in acceptance order
	torn    int
	err     error // first append failure, latched
}

// JournalRecord is one accepted job: an opaque request payload under a
// caller-chosen ID (the serve layer uses its cache keys, so replaying a
// record that did complete is a harmless cache hit).
type JournalRecord struct {
	// ID identifies the job across accept and done records.
	ID string `json:"id"`
	// Config is the accepted request payload, replayed verbatim on boot.
	Config json.RawMessage `json:"config"`
	// Priority is the accepted submission's priority.
	Priority int `json:"priority,omitempty"`
}

// journalLine is the on-disk form: an op tag around a record.
type journalLine struct {
	Op string `json:"op"` // "accept" | "done"
	JournalRecord
}

// OpenJournal opens (creating if needed) the journal at path, replays
// it, compacts it down to the still-pending records, and returns those
// records in acceptance order — the jobs a recovering server must
// resubmit.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	j := &Journal{path: path, pending: make(map[string]JournalRecord)}

	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// A crash mid-append: at most one torn line at the tail. Every
			// complete record before it stands.
			j.torn++
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		var rec journalLine
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			j.torn++
			continue
		}
		switch rec.Op {
		case "accept":
			if _, ok := j.pending[rec.ID]; !ok {
				j.order = append(j.order, rec.ID)
			}
			j.pending[rec.ID] = rec.JournalRecord
		case "done":
			if _, ok := j.pending[rec.ID]; ok {
				delete(j.pending, rec.ID)
				j.order = removeID(j.order, rec.ID)
			}
		default:
			j.torn++
		}
	}

	// Compact: rewrite just the pending accepts, atomically, then append
	// from there.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, id := range j.order {
		if err := enc.Encode(journalLine{Op: "accept", JournalRecord: j.pending[id]}); err != nil {
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
	}
	if err := writeAtomic(filepath.Dir(path), filepath.Base(path), buf.Bytes()); err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	j.f = f

	out := make([]JournalRecord, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.pending[id])
	}
	return j, out, nil
}

func removeID(ids []string, id string) []string {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Accept journals an accepted job durably: the record is appended and
// fsync'd before Accept returns, so an acknowledgment sent after it can
// never refer to a job a crash would forget. An ID already pending is a
// no-op (a coalesced resubmission).
func (j *Journal) Accept(rec JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, ok := j.pending[rec.ID]; ok {
		return nil
	}
	if err := j.append(journalLine{Op: "accept", JournalRecord: rec}, true); err != nil {
		return err
	}
	j.pending[rec.ID] = rec
	j.order = append(j.order, rec.ID)
	return nil
}

// Done journals a job's completion. Best-effort by design: losing a
// done record only means the job is replayed on the next boot, where it
// resolves as a cache hit — degraded, never wrong — so Done appends
// without fsync and swallows failures into the latched Err.
func (j *Journal) Done(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.pending[id]; !ok {
		return
	}
	delete(j.pending, id)
	j.order = removeID(j.order, id)
	_ = j.append(journalLine{Op: "done", JournalRecord: JournalRecord{ID: id}}, false)
}

// append writes one record line, optionally fsync'd; the first failure
// latches. Callers hold mu.
func (j *Journal) append(line journalLine, sync bool) error {
	data, err := json.Marshal(line)
	if err == nil {
		_, err = j.f.Write(append(data, '\n'))
	}
	if err == nil && sync {
		err = j.f.Sync()
	}
	if err != nil {
		if j.err == nil {
			j.err = fmt.Errorf("store: journal degraded: %w", err)
		}
		return j.err
	}
	return nil
}

// Pending reports the number of accepted-but-not-completed jobs.
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Torn reports how many unparseable lines were dropped at open (at most
// one from a torn tail, plus any hand-edited damage).
func (j *Journal) Torn() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

// Err reports the first append failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close releases the journal's file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
