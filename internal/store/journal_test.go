package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openJ(t *testing.T, path string) (*Journal, []JournalRecord) {
	t.Helper()
	j, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, pending
}

func rec(id string) JournalRecord {
	return JournalRecord{ID: id, Config: json.RawMessage(`{"benchmark":"fft"}`), Priority: 1}
}

func TestJournalAcceptReplayDone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, pending := openJ(t, path)
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := j.Accept(rec(id)); err != nil {
			t.Fatal(err)
		}
	}
	j.Done("b")
	if j.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", j.Pending())
	}
	j.Close()

	// The reboot: replay must surface exactly a and c, in acceptance order.
	j2, pending := openJ(t, path)
	if len(pending) != 2 || pending[0].ID != "a" || pending[1].ID != "c" {
		t.Fatalf("replayed pending = %+v, want [a c]", pending)
	}
	if pending[0].Priority != 1 || string(pending[0].Config) != `{"benchmark":"fft"}` {
		t.Fatalf("record payload lost in replay: %+v", pending[0])
	}
	if j2.Torn() != 0 {
		t.Fatalf("clean journal reported %d torn lines", j2.Torn())
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _ := openJ(t, path)
	if err := j.Accept(rec("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept(rec("b")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, pending := openJ(t, path)
	if len(pending) != 2 {
		t.Fatalf("torn tail dropped complete records: pending = %+v", pending)
	}
	if j2.Torn() != 1 {
		t.Fatalf("Torn() = %d, want 1", j2.Torn())
	}
}

func TestJournalCompactsOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _ := openJ(t, path)
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := j.Accept(rec(id)); err != nil {
			t.Fatal(err)
		}
		j.Done(id)
	}
	if err := j.Accept(rec("live")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, pending := openJ(t, path)
	if len(pending) != 1 || pending[0].ID != "live" {
		t.Fatalf("pending = %+v, want [live]", pending)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("compacted journal holds %d lines, want 1:\n%s", n, data)
	}
}

func TestJournalDuplicateAcceptCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _ := openJ(t, path)
	if err := j.Accept(rec("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept(rec("a")); err != nil {
		t.Fatal(err)
	}
	if j.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", j.Pending())
	}
	j.Close()
	_, pending := openJ(t, path)
	if len(pending) != 1 {
		t.Fatalf("pending = %+v, want one record", pending)
	}
}

// TestQuarantineAccounting pins the recovery bookkeeping of Open: a
// store with one good, one tampered and one misnamed entry serves
// exactly the good one, quarantines the other two as *.corrupt with
// reason sidecars, and a re-Open sees a clean directory (nothing is
// re-examined or double-counted).
func TestQuarantineAccounting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := runOne(t, "fft")
	s.Put("key-good", good)
	s.Put("key-bad", runOne(t, "radix"))

	names, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(names) != 2 {
		t.Fatalf("want 2 entry files, got %v", names)
	}
	badName := filepath.Join(dir, fileName("key-bad"))
	data, err := os.ReadFile(badName)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"cycles":`, `"cycles":9`, 1)
	if err := os.WriteFile(badName, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("cd", 32)+".json"), []byte(`{"key":"x","result":null}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s2.Len())
	}
	if got, ok := s2.Get("key-good"); !ok || got.Digest() != good.Digest() {
		t.Fatal("good entry lost during quarantine")
	}
	if len(s2.Rejected()) != 2 {
		t.Fatalf("Rejected() = %v, want 2", s2.Rejected())
	}
	corrupt, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(corrupt) != 2 {
		t.Fatalf("quarantined files = %v, want 2", corrupt)
	}
	for _, c := range corrupt {
		reason, err := os.ReadFile(c + ".reason")
		if err != nil || len(reason) == 0 {
			t.Fatalf("missing reason sidecar for %s: %v", c, err)
		}
	}

	// Third open: the quarantined files are out of the *.json namespace,
	// so recovery accounting starts clean.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 || len(s3.Rejected()) != 0 {
		t.Fatalf("re-open after quarantine: Len=%d Rejected=%v", s3.Len(), s3.Rejected())
	}
}
