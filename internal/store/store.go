// Package store persists experiment results on disk as a pluggable
// ptbsim.ResultCache backend: the cache that makes ptbserve's results
// survive restarts.
//
// Layout: one JSON file per cached configuration, named by the SHA-256
// of its canonical cache key (content addressing — keys are long and
// contain filesystem-hostile characters), each holding {key, result} in
// the stable wire schema. The result wire form embeds the self-verifying
// digest, so every load recomputes and checks it: a corrupted or
// hand-edited file is rejected at open rather than served as a silently
// wrong result. Writes go through a temp-file rename, so a crash never
// leaves a half-written entry.
//
// The Store answers Get from an in-memory front (loaded at Open, updated
// by Put), keeping the hot path IO-free as the ResultCache contract
// requires; Put writes through to disk. The first write error latches —
// the store keeps serving from memory and reports the error via Err.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ptbsim"
)

// entry is the on-disk form of one cached result.
type entry struct {
	// Key is the experiment's canonical cache key for the configuration.
	Key string `json:"key"`
	// Result is the cached result in the stable wire schema (digest
	// included, verified on decode).
	Result *ptbsim.Result `json:"result"`
}

// Store is a digest-verified on-disk result cache. It satisfies
// ptbsim.ResultCache and is safe for concurrent use.
type Store struct {
	dir string

	mu       sync.Mutex
	mem      map[string]*ptbsim.Result
	byDigest map[string]*ptbsim.Result // sha fragment → result
	err      error                     // first write failure, latched
	rejected []string                  // files refused at Open, by name
}

// Open loads (or creates) a store rooted at dir. Every existing entry is
// decoded and digest-verified; files that fail — truncated writes,
// corruption, hand edits — are excluded from the cache, quarantined on
// disk (renamed to *.corrupt next to a .reason sidecar naming what was
// wrong) and reported by Rejected, so a damaged entry is recomputed on
// the next request instead of served, and never re-examined on the next
// Open. Only *.json files are considered.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		mem:      make(map[string]*ptbsim.Result),
		byDigest: make(map[string]*ptbsim.Result),
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			s.quarantine(name, fmt.Sprintf("unreadable: %v", err))
			continue
		}
		var e entry
		if err := json.Unmarshal(data, &e); err != nil {
			// Includes ptbsim.ErrDigestMismatch: the result wire form
			// self-checks on decode.
			s.quarantine(name, fmt.Sprintf("undecodable: %v", err))
			continue
		}
		if e.Key == "" || e.Result == nil {
			s.quarantine(name, "incomplete entry: missing key or result")
			continue
		}
		if filepath.Base(name) != fileName(e.Key) {
			// Entry renamed or copied under a foreign key hash.
			s.quarantine(name, fmt.Sprintf("misnamed: key hashes to %s", fileName(e.Key)))
			continue
		}
		s.mem[e.Key] = e.Result
		s.byDigest[DigestFragment(e.Result)] = e.Result
	}
	return s, nil
}

// quarantine records a refused entry and moves it aside: name becomes
// name.corrupt with a name.corrupt.reason sidecar for post-mortems. A
// failed rename leaves the file in place — it is still excluded from the
// cache, just re-examined on the next Open.
func (s *Store) quarantine(name, reason string) {
	s.rejected = append(s.rejected, filepath.Base(name))
	if err := os.Rename(name, name+".corrupt"); err != nil {
		return
	}
	_ = os.WriteFile(name+".corrupt.reason", []byte(reason+"\n"), 0o644)
}

// fileName is the content address of a cache key.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// DigestFragment extracts the short sha fragment from a result's digest
// line — the handle results are looked up by over the service API.
func DigestFragment(r *ptbsim.Result) string {
	d := r.Digest()
	if i := strings.LastIndex(d, " sha="); i >= 0 {
		return d[i+len(" sha="):]
	}
	return d
}

// Get answers from the in-memory front; it never touches the disk.
func (s *Store) Get(key string) (*ptbsim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.mem[key]
	return r, ok
}

// Put stores the result in memory and writes it through to disk
// atomically (temp file + rename). A write failure latches into Err; the
// in-memory entry stands either way.
func (s *Store) Put(key string, r *ptbsim.Result) {
	s.mu.Lock()
	s.mem[key] = r
	s.byDigest[DigestFragment(r)] = r
	s.mu.Unlock()

	data, err := json.Marshal(entry{Key: key, Result: r})
	if err == nil {
		err = writeAtomic(s.dir, fileName(key), data)
	}
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = fmt.Errorf("store: persisting %q: %w", key, err)
		}
		s.mu.Unlock()
	}
}

// writeAtomic lands data at dir/name via a same-directory temp file and
// rename, so readers and crash recovery never see a partial entry.
func writeAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len reports the number of cached results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// ByDigest looks a cached result up by its short digest fragment (the
// sha=… tail of Result.Digest()).
func (s *Store) ByDigest(frag string) (*ptbsim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byDigest[frag]
	return r, ok
}

// Err reports the first write-through failure, if any. The in-memory
// cache is unaffected by write failures.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Rejected lists the file names refused at Open (corrupt, tampered, or
// misnamed entries). They stay on disk for post-mortem inspection.
func (s *Store) Rejected() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.rejected...)
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }
