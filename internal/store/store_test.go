package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptbsim"
)

func runOne(t *testing.T, bench string) *ptbsim.Result {
	t.Helper()
	res, err := ptbsim.RunContext(context.Background(), ptbsim.Config{
		Benchmark: bench, Cores: 2, Technique: ptbsim.None, WorkloadScale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPutGetAndReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := runOne(t, "fft")
	s.Put("key-a", res)
	if got, ok := s.Get("key-a"); !ok || got != res {
		t.Fatal("Get after Put missed the in-memory front")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	// A fresh Open over the same directory — the restarted server — must
	// reload the entry with a byte-identical digest.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("key-a")
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if got.Digest() != res.Digest() {
		t.Fatalf("digest drifted across reopen:\n old %s\n new %s", res.Digest(), got.Digest())
	}
	if s2.Len() != 1 {
		t.Fatalf("Len() = %d after reopen, want 1", s2.Len())
	}
}

func TestByDigest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := runOne(t, "radix")
	s.Put("key-r", res)
	frag := DigestFragment(res)
	if len(frag) != 12 || strings.ContainsAny(frag, " /=") {
		t.Fatalf("digest fragment %q is not a short hex handle", frag)
	}
	if got, ok := s.ByDigest(frag); !ok || got != res {
		t.Fatalf("ByDigest(%q) missed", frag)
	}
}

func TestOpenRejectsTamperedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("key-a", runOne(t, "fft"))
	names, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(names) != 1 {
		t.Fatalf("want 1 entry file, got %v", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digest-covered metric without touching the stored digest.
	tampered := strings.Replace(string(data), `"cycles":`, `"cycles":9`, 1)
	if tampered == string(data) {
		t.Fatal("tamper replacement made no change")
	}
	if err := os.WriteFile(names[0], []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("tampered entry served: Len() = %d, want 0", s2.Len())
	}
	if len(s2.Rejected()) != 1 {
		t.Fatalf("Rejected() = %v, want the tampered file", s2.Rejected())
	}
}

func TestOpenRejectsGarbageAndMisnamedFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "garbage.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The garbage file is rejected — and quarantined — on the first open.
	if got := len(s.Rejected()); got != 1 {
		t.Fatalf("Rejected() = %v, want the garbage file", s.Rejected())
	}
	s.Put("key-a", runOne(t, "fft"))
	names, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, n := range names {
		// Copy the valid entry under a wrong content address.
		data, _ := os.ReadFile(n)
		if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (misnamed entry rejected)", s2.Len())
	}
	if got := len(s2.Rejected()); got != 1 {
		t.Fatalf("Rejected() = %v, want the misnamed file", s2.Rejected())
	}
}

func TestStoreBacksExperiment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := ptbsim.Config{Benchmark: "ocean", Cores: 2, Technique: ptbsim.None}

	e1 := ptbsim.NewExperiment(ptbsim.WithScale(0.02), ptbsim.WithCache(s))
	first, err := e1.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	if s.Len() != 1 {
		t.Fatalf("store Len() = %d after run, want 1", s.Len())
	}

	// Restart: a new experiment over a reopened store must serve the
	// result from disk without simulating (Cached provenance on Submit).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := ptbsim.NewExperiment(ptbsim.WithScale(0.02), ptbsim.WithCache(s2))
	defer e2.Close()
	job, err := e2.Submit(ctx, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := job.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !job.Cached() {
		t.Fatal("restarted experiment re-simulated a persisted config")
	}
	if second.Digest() != first.Digest() {
		t.Fatalf("digest drifted across restart:\n old %s\n new %s", first.Digest(), second.Digest())
	}
}
