package obs

import (
	"sync"
	"testing"
)

// fillCounters fabricates a deterministic simulation state: cumulative
// per-core energy grows by core+1 pJ per cycle, the counters by fixed
// increments per cycle.
func fillCounters(cycle *int64) FillFunc {
	return func(s *Sample) {
		c := float64(*cycle)
		var chip float64
		for i := range s.CorePJ {
			s.CorePJ[i] = float64(i + 1)
			chip += s.CorePJ[i]
			s.TokensPJ[i] = float64(i + 1)
			s.EpochPJ[i] = c * float64(i+1) // cumulative
			s.Classes[i] = i % 2
			s.Modes[i] = i % 3
		}
		s.ChipPJ = chip
		s.ClassCycles[0] = *cycle * 2 // cumulative
		s.NoCMessages = *cycle * 3
		s.NoCFlits = *cycle * 5
		s.L1Hits = *cycle * 7
		s.L1Misses = *cycle
		s.L2Hits = *cycle * 11
		s.L2Misses = *cycle * 13
	}
}

func TestRecorderEpochDeltas(t *testing.T) {
	var cycle int64
	r := NewRecorder(Config{Every: 10, Ring: 8}, 2, fillCounters(&cycle))
	r.SetRun("ocean", 2, "ptb", "Dynamic", 123.5)
	for cycle = 1; cycle <= 35; cycle++ {
		r.Tick(cycle)
	}
	cycle = 35
	r.Finalize(35)

	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("samples = %d, want 4 (3 full epochs + 1 partial)", len(got))
	}
	for i, s := range got {
		if s.Epoch != int64(i) {
			t.Errorf("sample %d: epoch = %d", i, s.Epoch)
		}
		if s.Bench != "ocean" || s.Cores != 2 || s.Tech != "ptb" || s.Policy != "Dynamic" || s.BudgetPJ != 123.5 {
			t.Errorf("sample %d: run tags not stamped: %+v", i, s)
		}
	}
	// Full epochs cover 10 cycles; deltas must match the per-cycle rates.
	for i, s := range got[:3] {
		if s.Cycles != 10 || s.Partial {
			t.Errorf("sample %d: cycles=%d partial=%v, want full 10-cycle epoch", i, s.Cycles, s.Partial)
		}
		if s.EpochPJ[0] != 10 || s.EpochPJ[1] != 20 {
			t.Errorf("sample %d: EpochPJ = %v, want [10 20]", i, s.EpochPJ)
		}
		if s.ClassCycles[0] != 20 || s.NoCMessages != 30 || s.NoCFlits != 50 ||
			s.L1Hits != 70 || s.L1Misses != 10 || s.L2Hits != 110 || s.L2Misses != 130 {
			t.Errorf("sample %d: counter deltas wrong: %+v", i, s)
		}
	}
	last := got[3]
	if !last.Partial || last.Cycles != 5 || last.Cycle != 35 {
		t.Fatalf("tail sample: %+v, want partial 5-cycle flush at cycle 35", last)
	}
	if last.EpochPJ[0] != 5 || last.EpochPJ[1] != 10 {
		t.Errorf("tail EpochPJ = %v, want [5 10]", last.EpochPJ)
	}

	// Finalize on an exact boundary must not double-sample.
	var c2 int64
	r2 := NewRecorder(Config{Every: 10, Ring: 8}, 1, fillCounters(&c2))
	for c2 = 1; c2 <= 30; c2++ {
		r2.Tick(c2)
	}
	c2 = 30
	r2.Finalize(30)
	if r2.Taken() != 3 {
		t.Fatalf("boundary finalize: taken = %d, want 3", r2.Taken())
	}
}

func TestRecorderRingWrap(t *testing.T) {
	var cycle int64
	r := NewRecorder(Config{Every: 1, Ring: 4}, 1, fillCounters(&cycle))
	for cycle = 1; cycle <= 10; cycle++ {
		r.Tick(cycle)
	}
	if r.Taken() != 10 || r.Dropped() != 6 {
		t.Fatalf("taken=%d dropped=%d, want 10/6", r.Taken(), r.Dropped())
	}
	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("retained = %d, want ring size 4", len(got))
	}
	for i, s := range got {
		if want := int64(6 + i); s.Epoch != want {
			t.Errorf("retained[%d].Epoch = %d, want %d (chronological tail)", i, s.Epoch, want)
		}
	}
}

func TestRecorderSinkSeesEverySample(t *testing.T) {
	var cycle int64
	var seen []int64
	sink := sinkFunc(func(s *Sample) { seen = append(seen, s.Epoch) })
	r := NewRecorder(Config{Every: 1, Ring: 2, Sink: sink}, 1, fillCounters(&cycle))
	for cycle = 1; cycle <= 6; cycle++ {
		r.Tick(cycle)
	}
	if len(seen) != 6 {
		t.Fatalf("sink saw %d samples, want all 6 despite ring size 2", len(seen))
	}
}

type sinkFunc func(*Sample)

func (f sinkFunc) Observe(s *Sample) { f(s) }

func TestCheckEnergy(t *testing.T) {
	var cycle int64
	r := NewRecorder(Config{Every: 10, Ring: 4}, 2, fillCounters(&cycle))
	for cycle = 1; cycle <= 57; cycle++ {
		r.Tick(cycle)
	}
	cycle = 57
	// Mid-run (no Finalize): the ledger plus the unsampled tail must match
	// the cumulative meter readout.
	total := func(core int) float64 { return 57 * float64(core+1) }
	if err := r.CheckEnergy(total); err != nil {
		t.Fatalf("CheckEnergy mid-run: %v", err)
	}
	r.Finalize(57)
	if err := r.CheckEnergy(total); err != nil {
		t.Fatalf("CheckEnergy after finalize: %v", err)
	}
	// A corrupted ledger must be detected.
	r.observedPJ[0] += 1
	if err := r.CheckEnergy(total); err == nil {
		t.Fatal("CheckEnergy accepted a corrupted ledger")
	}
}

func TestRecorderTickZeroAlloc(t *testing.T) {
	var cycle int64
	r := NewRecorder(Config{Every: 1, Ring: 16}, 4, fillCounters(&cycle))
	cycle = 1
	allocs := testing.AllocsPerRun(1000, func() {
		r.Tick(cycle)
		cycle++
	})
	if allocs != 0 {
		t.Fatalf("Tick allocates %.1f per epoch with a nil sink, want 0", allocs)
	}
}

func TestSynchronized(t *testing.T) {
	if Synchronized(nil) != nil {
		t.Fatal("Synchronized(nil) must stay nil")
	}
	var mu sync.Mutex
	count := 0
	sink := Synchronized(sinkFunc(func(s *Sample) {
		mu.Lock()
		count++
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &Sample{}
			for i := 0; i < 100; i++ {
				sink.Observe(s)
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Fatalf("synchronized sink saw %d observes, want 800", count)
	}
}
