// Package obs is the epoch-sampled observability layer: a preallocated
// time-series recorder the simulator ticks once per cycle, which emits one
// Sample per epoch into a fixed-size ring and, optionally, a streaming
// Sink. The recorder allocates everything at construction, so the enabled
// path is O(1) work per epoch with zero allocations, and a system built
// without a recorder pays a single nil check per cycle — the golden-digest
// matrix pins that a run is bit-identical with the recorder on or off,
// because the recorder only reads simulation state.
//
// The windowed signals mirror what a power-management study needs to plot
// (per-core power, token flows, mode residency, sync-class occupancy, NoC
// and cache pressure), in the spirit of counter-driven windowed accounting
// (Isci et al.; RAPL-style energy windows).
package obs

import (
	"fmt"
	"sync"

	"ptbsim/internal/isa"
)

// DefaultEvery is the sampling period in cycles when Config.Every is zero:
// fine enough to resolve lock/barrier phases at paper scales, coarse
// enough that a full run emits thousands — not millions — of samples.
const DefaultEvery = 4096

// DefaultRing is the in-memory ring capacity in samples when Config.Ring
// is zero. Older samples are overwritten once the ring wraps; a streaming
// Sink sees every sample regardless.
const DefaultRing = 1024

// Sample is one epoch of telemetry. Slice fields are sized to the core
// count. Counter fields are deltas over the epoch unless documented as
// cumulative; power fields are instantaneous values at the sampled cycle.
//
// The JSON field names are the stable wire schema shared by the JSONL
// sink, ptbreport's telemetry table and external tooling.
type Sample struct {
	// Run tags, stamped on every sample so merged sweep feeds stay
	// self-describing.
	Bench  string `json:"bench"`
	Cores  int    `json:"cores"`
	Tech   string `json:"tech"`
	Policy string `json:"policy,omitempty"`

	// Epoch counts emitted samples from 0; Cycle is the simulation cycle
	// the sample was taken at; Cycles is the epoch length (== the sampling
	// period except for a final partial flush).
	Epoch  int64 `json:"epoch"`
	Cycle  int64 `json:"cycle"`
	Cycles int64 `json:"cycles"`
	// Partial marks the end-of-run flush covering a shorter-than-period
	// tail epoch.
	Partial bool `json:"partial,omitempty"`

	// BudgetPJ is the global per-cycle power budget; ChipPJ the chip energy
	// of the sampled cycle (the sum of CorePJ in collector order).
	BudgetPJ float64 `json:"budget_pj"`
	ChipPJ   float64 `json:"chip_pj"`

	// CorePJ is each core's energy in the sampled cycle; TokensPJ the
	// controller-visible per-core power estimate (the token view, after any
	// sensor faults); EpochPJ the metered per-core energy accumulated over
	// the epoch.
	CorePJ   []float64 `json:"core_pj"`
	TokensPJ []float64 `json:"tokens_pj"`
	EpochPJ  []float64 `json:"epoch_pj"`

	// Modes is each core's DVFS ladder index (0 = fastest; all zero for
	// techniques without a governor). Classes is each core's sync class at
	// the sampled cycle (isa.SyncClass numbering); ClassCycles the
	// chip-wide core-cycles spent per class during the epoch.
	Modes       []int                     `json:"modes"`
	Classes     []int                     `json:"classes"`
	ClassCycles [isa.NumSyncClasses]int64 `json:"class_cycles"`

	// PTB token-flow ledger, cumulative since run start (zero for non-PTB
	// techniques): donated into the balancer, granted back out, discarded
	// at the budget clip, and currently in flight.
	DonatedPJ   float64 `json:"donated_pj"`
	GrantedPJ   float64 `json:"granted_pj"`
	DiscardedPJ float64 `json:"discarded_pj"`
	InFlightPJ  float64 `json:"inflight_pj"`

	// NoC and cache pressure over the epoch: mesh messages injected,
	// flit-link traversals, L1 (I+D) and L2 hits/misses.
	NoCMessages int64 `json:"noc_msgs"`
	NoCFlits    int64 `json:"noc_flits"`
	L1Hits      int64 `json:"l1_hits"`
	L1Misses    int64 `json:"l1_misses"`
	L2Hits      int64 `json:"l2_hits"`
	L2Misses    int64 `json:"l2_misses"`
}

// Clone deep-copies the sample, detaching it from any recorder-owned
// backing storage.
func (s *Sample) Clone() Sample {
	out := *s
	out.CorePJ = append([]float64(nil), s.CorePJ...)
	out.TokensPJ = append([]float64(nil), s.TokensPJ...)
	out.EpochPJ = append([]float64(nil), s.EpochPJ...)
	out.Modes = append([]int(nil), s.Modes...)
	out.Classes = append([]int(nil), s.Classes...)
	return out
}

// Sink consumes samples as they are recorded. The *Sample passed to
// Observe is only valid for the duration of the call — it points into the
// recorder's ring and will be overwritten; retain Clone()s, not pointers.
type Sink interface {
	Observe(s *Sample)
}

// Config configures a Recorder.
type Config struct {
	// Every is the sampling period in cycles (0 = DefaultEvery).
	Every int64
	// Ring is the in-memory ring capacity in samples (0 = DefaultRing).
	Ring int
	// Sink, when non-nil, additionally receives every sample as it is
	// recorded.
	Sink Sink
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = DefaultEvery
	}
	if c.Ring <= 0 {
		c.Ring = DefaultRing
	}
	return c
}

// FillFunc populates one sample from simulation state. The recorder owns
// the epoch bookkeeping: the fill writes *cumulative* run totals into
// EpochPJ, ClassCycles and the NoC/cache counters, and the recorder turns
// them into epoch deltas against its previous snapshot.
type FillFunc func(s *Sample)

// Recorder is the per-run telemetry engine. It is not safe for concurrent
// use (simulations are single-threaded); a Sink shared across concurrent
// runs must serialize itself or be wrapped with Synchronized.
type Recorder struct {
	every int64
	ring  []Sample
	sink  Sink
	fill  FillFunc

	next      int   // ring slot of the next sample
	taken     int64 // samples emitted so far
	lastCycle int64 // cycle of the most recent sample

	// Previous-snapshot state for delta fields.
	prevPJ          []float64
	prevClassCycles [isa.NumSyncClasses]int64
	prevNoCMsgs     int64
	prevNoCFlits    int64
	prevL1Hits      int64
	prevL1Misses    int64
	prevL2Hits      int64
	prevL2Misses    int64

	// observedPJ accumulates the per-core epoch energies actually emitted,
	// the recorder-side ledger CheckEnergy verifies against the meter.
	observedPJ []float64

	bench, tech, policy string
	cores               int
	budgetPJ            float64
}

// NewRecorder builds a recorder for a CMP of the given core count. Every
// allocation the hot path needs happens here: the ring slots carry
// preallocated per-core slices that fill writes into in place.
func NewRecorder(cfg Config, cores int, fill FillFunc) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		every:      cfg.Every,
		ring:       make([]Sample, cfg.Ring),
		sink:       cfg.Sink,
		fill:       fill,
		prevPJ:     make([]float64, cores),
		observedPJ: make([]float64, cores),
		cores:      cores,
	}
	for i := range r.ring {
		r.ring[i].CorePJ = make([]float64, cores)
		r.ring[i].TokensPJ = make([]float64, cores)
		r.ring[i].EpochPJ = make([]float64, cores)
		r.ring[i].Modes = make([]int, cores)
		r.ring[i].Classes = make([]int, cores)
	}
	return r
}

// SetRun stamps the run tags and budget carried on every sample.
func (r *Recorder) SetRun(bench string, cores int, tech, policy string, budgetPJ float64) {
	r.bench, r.tech, r.policy = bench, tech, policy
	r.cores = cores
	r.budgetPJ = budgetPJ
}

// Every returns the sampling period in cycles.
func (r *Recorder) Every() int64 { return r.every }

// Tick advances the recorder to the given cycle, emitting a sample on
// epoch boundaries. Off-boundary cycles cost one modulo.
func (r *Recorder) Tick(cycle int64) {
	if cycle%r.every != 0 {
		return
	}
	r.sample(cycle, false)
}

// Finalize flushes the partial tail epoch at run end, if the run did not
// stop exactly on an epoch boundary. Call it before any end-of-run event
// processing (invariant finalization drains the event queue, which charges
// the power meter energy no epoch should claim).
func (r *Recorder) Finalize(cycle int64) {
	if cycle <= r.lastCycle {
		return
	}
	r.sample(cycle, true)
}

func (r *Recorder) sample(cycle int64, partial bool) {
	sm := &r.ring[r.next]
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	sm.Bench, sm.Cores, sm.Tech, sm.Policy = r.bench, r.cores, r.tech, r.policy
	sm.BudgetPJ = r.budgetPJ
	sm.Epoch = r.taken
	sm.Cycle = cycle
	sm.Cycles = cycle - r.lastCycle
	sm.Partial = partial
	r.fill(sm)

	// The fill wrote cumulative counters; convert to epoch deltas.
	for i, cum := range sm.EpochPJ {
		sm.EpochPJ[i] = cum - r.prevPJ[i]
		r.observedPJ[i] += sm.EpochPJ[i]
		r.prevPJ[i] = cum
	}
	for i, cum := range sm.ClassCycles {
		sm.ClassCycles[i] = cum - r.prevClassCycles[i]
		r.prevClassCycles[i] = cum
	}
	sm.NoCMessages, r.prevNoCMsgs = sm.NoCMessages-r.prevNoCMsgs, sm.NoCMessages
	sm.NoCFlits, r.prevNoCFlits = sm.NoCFlits-r.prevNoCFlits, sm.NoCFlits
	sm.L1Hits, r.prevL1Hits = sm.L1Hits-r.prevL1Hits, sm.L1Hits
	sm.L1Misses, r.prevL1Misses = sm.L1Misses-r.prevL1Misses, sm.L1Misses
	sm.L2Hits, r.prevL2Hits = sm.L2Hits-r.prevL2Hits, sm.L2Hits
	sm.L2Misses, r.prevL2Misses = sm.L2Misses-r.prevL2Misses, sm.L2Misses

	r.lastCycle = cycle
	r.taken++
	if r.sink != nil {
		r.sink.Observe(sm)
	}
}

// Taken returns how many samples have been emitted.
func (r *Recorder) Taken() int64 { return r.taken }

// Dropped returns how many samples have been overwritten by ring wrap
// (zero until the run outlives Ring epochs). A streaming Sink still saw
// them.
func (r *Recorder) Dropped() int64 {
	if d := r.taken - int64(len(r.ring)); d > 0 {
		return d
	}
	return 0
}

// Samples returns the retained window of samples in chronological order,
// deep-copied so the caller owns them.
func (r *Recorder) Samples() []Sample {
	n := r.taken
	if n > int64(len(r.ring)) {
		n = int64(len(r.ring))
	}
	start := 0
	if r.taken > int64(len(r.ring)) {
		start = r.next
	}
	out := make([]Sample, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, r.ring[(start+int(i))%len(r.ring)].Clone())
	}
	return out
}

// CheckEnergy verifies the recorder's epoch-energy ledger against the
// power meter: for every core, the sum of emitted EpochPJ deltas plus the
// not-yet-sampled tail must equal the meter's cumulative total. totalPJ is
// the meter's per-core readout (power.Meter.TotalPJ). The tolerance
// absorbs the floating-point telescoping of summing many deltas.
func (r *Recorder) CheckEnergy(totalPJ func(core int) float64) error {
	for i := 0; i < r.cores; i++ {
		want := totalPJ(i)
		got := r.observedPJ[i] + (want - r.prevPJ[i])
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		m := want
		if got > m {
			m = got
		}
		if m < 0 {
			m = -m
		}
		if diff > 1e-7*m+1e-6 {
			return fmt.Errorf("obs: core %d epoch-energy ledger %.3f pJ != meter %.3f pJ", i, got, want)
		}
	}
	return nil
}

// syncSink serializes Observe calls onto a shared inner sink.
type syncSink struct {
	mu    sync.Mutex
	inner Sink
}

func (s *syncSink) Observe(sm *Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Observe(sm)
}

// Synchronized wraps a sink with a mutex so concurrent runs (a parallel
// sweep) can stream into one merged feed. Samples from different runs
// interleave; the per-sample run tags keep the feed unambiguous.
func Synchronized(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &syncSink{inner: s}
}
