package budget

import (
	"ptbsim/internal/dvfs"
)

// MaxBIPS implements the chip-level global power-management policy of Isci
// et al. [1] that the paper positions PTB against (§II.C): every window,
// choose the combination of per-core DVFS modes that maximizes predicted
// chip throughput (billions of instructions per second) subject to the
// global power budget. The predictor is the classic MaxBIPS assumption —
// per-core throughput scales with frequency, per-core power with V²f —
// driven by *performance counters* (retired instructions per window).
//
// This baseline is exactly what the paper criticizes for parallel
// workloads: a spinning core has a high counter-measured IPC while doing
// no useful work, so MaxBIPS happily spends budget speeding up spin loops
// at the expense of critical threads. It is included as the related-work
// comparator; its failure mode is visible on the lock-bound benchmarks.
type MaxBIPS struct {
	modes  []dvfs.Mode
	window int64

	accEst  []float64
	lastRet []int64
	count   int64
	idx     []int

	transitions int64
}

// NewMaxBIPS builds the controller for n cores over the DVFS ladder.
func NewMaxBIPS(n int) *MaxBIPS {
	return &MaxBIPS{
		modes:   dvfs.DVFSModes(),
		window:  dvfs.DefaultWindow,
		accEst:  make([]float64, n),
		lastRet: make([]int64, n),
		idx:     make([]int, n),
	}
}

// Name identifies the technique.
func (m *MaxBIPS) Name() string { return "maxbips" }

// Transitions returns the number of mode changes applied.
func (m *MaxBIPS) Transitions() int64 { return m.transitions }

// ModeIndex returns a core's current ladder position.
func (m *MaxBIPS) ModeIndex(core int) int { return m.idx[core] }

func dynScale(md dvfs.Mode) float64 { return md.V * md.V * md.F }

// Tick accumulates per-core power and retirement counters; at window
// boundaries it re-solves the mode assignment with a greedy knapsack:
// start everything at full speed and repeatedly downgrade the core with
// the cheapest throughput loss per watt saved until the chip fits the
// budget.
func (m *MaxBIPS) Tick(st *ChipState) {
	for i := range st.EstPJ {
		m.accEst[i] += st.EstPJ[i]
	}
	m.count++
	if m.count < m.window {
		return
	}

	n := st.NCores
	// Per-core nominal power and measured throughput for the next window.
	nominal := make([]float64, n)
	bips := make([]float64, n)
	for i, c := range st.Cores {
		nominal[i] = m.accEst[i] / float64(m.count) / dynScale(m.modes[m.idx[i]])
		ret := c.Stats().Committed
		bips[i] = float64(ret-m.lastRet[i]) / float64(m.count)
		m.lastRet[i] = ret
		m.accEst[i] = 0
	}
	m.count = 0

	// Greedy knapsack over mode assignments.
	assign := make([]int, n)
	chipPower := func() float64 {
		p := 0.0
		for i := 0; i < n; i++ {
			p += nominal[i] * dynScale(m.modes[assign[i]])
		}
		return p
	}
	for chipPower() > st.GlobalBudgetPJ {
		best, bestRatio := -1, 0.0
		for i := 0; i < n; i++ {
			if assign[i] == len(m.modes)-1 {
				continue
			}
			cur, next := m.modes[assign[i]], m.modes[assign[i]+1]
			dPower := nominal[i] * (dynScale(cur) - dynScale(next))
			if dPower <= 0 {
				continue
			}
			dBips := bips[i] * (cur.F - next.F)
			ratio := dBips / dPower
			if best < 0 || ratio < bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best < 0 {
			break // everything at the bottom of the ladder
		}
		assign[best]++
	}

	for i, c := range st.Cores {
		if assign[i] == m.idx[i] {
			continue
		}
		m.idx[i] = assign[i]
		md := m.modes[assign[i]]
		c.SetSpeed(md.F, dvfs.DefaultTransitionTicks)
		st.Meter.SetVoltage(i, md.V)
		m.transitions++
	}
}
