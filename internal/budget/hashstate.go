package budget

import "ptbsim/internal/ckpt"

// HashState folds the chip-wide budget state into h for checkpoint
// digests. Cores, Meter and Sync are hashed by their own packages. The
// field order is append-only.
func (st *ChipState) HashState(h *ckpt.Hasher) {
	h.WriteI64(st.Cycle)
	h.WriteF64(st.GlobalBudgetPJ)
	for i := 0; i < st.NCores; i++ {
		h.WriteF64(st.LocalBudgetPJ[i])
		h.WriteF64(st.ExtraPJ[i])
		h.WriteF64(st.DonatedPJ[i])
		h.WriteF64(st.EstPJ[i])
	}
	h.WriteF64(st.ChipEstPJ)
}

// HashState folds the DVFS controller's window accumulators and governor
// position into h.
func (c *DVFSController) HashState(h *ckpt.Hasher) {
	h.WriteString(c.name)
	for _, a := range c.acc {
		h.WriteF64(a)
	}
	h.WriteF64(c.chip)
	h.WriteI64(c.count)
	h.WriteI64(c.trans)
	h.WriteF64(c.Relax)
	c.gov.HashState(h)
}

// HashState folds the 2-level hybrid's state into h.
func (t *TwoLevel) HashState(h *ckpt.Hasher) {
	t.DVFS.HashState(h)
	for _, c := range t.techniqueCycles {
		h.WriteI64(c)
	}
}

// HashState folds the MaxBIPS window state into h.
func (m *MaxBIPS) HashState(h *ckpt.Hasher) {
	for i := range m.accEst {
		h.WriteF64(m.accEst[i])
		h.WriteI64(m.lastRet[i])
		h.WriteInt(m.idx[i])
	}
	h.WriteI64(m.count)
	h.WriteI64(m.transitions)
}

// HashState of the no-control technique: stateless.
func (None) HashState(h *ckpt.Hasher) {}
