package budget

import (
	"math"
	"strings"
	"testing"
)

// TestCheckStateClean verifies a freshly built (and a refreshed) chip state
// satisfies every budget invariant.
func TestCheckStateClean(t *testing.T) {
	st := newState(4, 1000)
	if err := CheckState(st, 5000); err != nil {
		t.Fatalf("fresh state violates: %v", err)
	}
	st.Refresh(1)
	if err := CheckState(st, 5000); err != nil {
		t.Fatalf("refreshed state violates: %v", err)
	}
}

// TestCheckStateDetectsCorruption breaks each checked property in turn and
// verifies CheckState reports it.
func TestCheckStateDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(st *ChipState)
		wantMsg string
	}{
		{"negative-local", func(st *ChipState) {
			st.LocalBudgetPJ[1] = -1
		}, "negative local budget"},
		{"split-mismatch", func(st *ChipState) {
			st.LocalBudgetPJ[0] += 50
		}, "local budgets sum"},
		{"negative-donation", func(st *ChipState) {
			st.DonatedPJ[2] = -0.5
		}, "donated"},
		{"over-donation", func(st *ChipState) {
			st.DonatedPJ[2] = st.LocalBudgetPJ[2] + 1
		}, "donated"},
		{"negative-grant", func(st *ChipState) {
			st.ExtraPJ[0] = -1
		}, "negative grant"},
		{"negative-estimate", func(st *ChipState) {
			st.EstPJ[3] = -2
			st.ChipEstPJ = -2
		}, "negative power estimate"},
		{"chip-estimate-mismatch", func(st *ChipState) {
			st.ChipEstPJ += 100
		}, "Σ per-core estimates"},
		// NaN poisons the CloseTo sum identity first; either message means
		// the poisoned estimate was caught.
		{"nan-estimate", func(st *ChipState) {
			for i := range st.EstPJ {
				st.EstPJ[i] = math.NaN()
			}
			st.ChipEstPJ = math.NaN()
		}, "ChipEstPJ"},
		{"absurd-estimate", func(st *ChipState) {
			st.EstPJ[0] = 1e9
			st.ChipEstPJ = 1e9
		}, "structural peak"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			st := newState(4, 1000)
			tc.corrupt(st)
			err := CheckState(st, 5000)
			if err == nil {
				t.Fatal("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
