package budget

import (
	"testing"

	"ptbsim/internal/dvfs"
)

func TestMaxBIPSDowngradesUnderPressure(t *testing.T) {
	st := newState(2, 100) // impossible budget
	m := NewMaxBIPS(2)
	for cyc := int64(1); cyc <= 2*dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		m.Tick(st)
	}
	for i := 0; i < 2; i++ {
		if m.ModeIndex(i) != len(dvfs.DVFSModes())-1 {
			t.Fatalf("core %d at mode %d under an impossible budget, want bottom", i, m.ModeIndex(i))
		}
	}
	if m.Transitions() == 0 {
		t.Fatal("no transitions recorded")
	}
}

func TestMaxBIPSStaysFastWithHeadroom(t *testing.T) {
	st := newState(2, 1e9)
	m := NewMaxBIPS(2)
	for cyc := int64(1); cyc <= 2*dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		m.Tick(st)
	}
	for i := 0; i < 2; i++ {
		if m.ModeIndex(i) != 0 {
			t.Fatalf("core %d slowed to mode %d despite a huge budget", i, m.ModeIndex(i))
		}
	}
}

func TestMaxBIPSPrefersThroughput(t *testing.T) {
	// With one core idle (zero BIPS) and one busy (positive BIPS), a budget
	// that forces exactly some downgrades must take them from the idle core
	// first: it loses no throughput.
	st := newState(2, 100)
	m := NewMaxBIPS(2)
	// Fake the window state directly: run one window accumulating ests,
	// then inspect. The cores here are idle stubs, so both have zero BIPS;
	// the greedy tie-break still must terminate and produce a valid
	// assignment.
	for cyc := int64(1); cyc <= dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		m.Tick(st)
	}
	for i := 0; i < 2; i++ {
		if m.ModeIndex(i) < 0 || m.ModeIndex(i) >= len(dvfs.DVFSModes()) {
			t.Fatalf("invalid mode assignment %d", m.ModeIndex(i))
		}
	}
}
