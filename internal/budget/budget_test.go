package budget

import (
	"testing"

	"ptbsim/internal/cpu"
	"ptbsim/internal/dvfs"
	"ptbsim/internal/isa"
	"ptbsim/internal/microarch"
	"ptbsim/internal/power"
)

// nullMem satisfies cpu.MemSystem with instant completion.
type nullMem struct{}

func (nullMem) Read(core int, addr uint64, done func())      { done() }
func (nullMem) Write(core int, addr uint64, done func())     { done() }
func (nullMem) FetchProbe(core int, addr uint64) bool        { return true }
func (nullMem) FetchMiss(core int, addr uint64, done func()) { done() }

type nullSrc struct{}

func (nullSrc) Next() (isa.Inst, bool) { return isa.Inst{}, false }
func (nullSrc) Resolve(int64)          {}

type nullSync struct{}

func (nullSync) Eval(int, isa.Inst) int64 { return 0 }

func newState(n int, globalBudget float64) *ChipState {
	m := power.NewMeter(n)
	tm := power.NewTokenModel()
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), m, tm, nullMem{}, nullSync{}, nullSrc{})
	}
	return NewChipState(cores, m, nil, globalBudget)
}

func TestLocalBudgetSplit(t *testing.T) {
	st := newState(4, 4000)
	for i := 0; i < 4; i++ {
		if st.LocalBudgetPJ[i] != 1000 {
			t.Fatalf("local budget[%d] = %v, want 1000", i, st.LocalBudgetPJ[i])
		}
	}
}

func TestEffectiveLocal(t *testing.T) {
	st := newState(2, 2000)
	st.DonatedPJ[0] = 200
	st.ExtraPJ[0] = 50
	if got := st.EffectiveLocal(0); got != 850 {
		t.Fatalf("effective local = %v, want 850", got)
	}
}

func TestEstimateFloor(t *testing.T) {
	st := newState(1, 1000)
	st.Refresh(1)
	// An idle core estimate = clock + leakage floor at nominal V/f.
	want := power.EnergyPJ[power.EvClockActive] + power.EnergyPJ[power.EvLeakage]
	if st.EstPJ[0] != want {
		t.Fatalf("idle estimate = %v, want %v", st.EstPJ[0], want)
	}
	if st.ChipEstPJ != want {
		t.Fatalf("chip estimate = %v", st.ChipEstPJ)
	}
}

func TestEstimateScalesWithMode(t *testing.T) {
	st := newState(1, 1000)
	st.Cores[0].SetSpeed(0.65, 0)
	st.Meter.SetVoltage(0, 0.90)
	st.Refresh(1)
	full := power.EnergyPJ[power.EvClockActive] + power.EnergyPJ[power.EvLeakage]
	if st.EstPJ[0] >= full {
		t.Fatalf("scaled-down estimate %v not below nominal %v", st.EstPJ[0], full)
	}
}

func TestDVFSControllerStepsDownWhenOver(t *testing.T) {
	st := newState(2, 100) // absurdly low budget: always over
	c := NewDVFS(2)
	for cyc := int64(1); cyc <= 3*dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		c.Tick(st)
	}
	for i := 0; i < 2; i++ {
		if c.Governor().ModeIndex(i) == 0 {
			t.Fatalf("core %d never stepped down under an impossible budget", i)
		}
		if st.Cores[i].Speed() >= 1.0 {
			t.Fatalf("core %d speed %v not reduced", i, st.Cores[i].Speed())
		}
	}
}

func TestDVFSControllerStepsBackUp(t *testing.T) {
	st := newState(1, 100)
	c := NewDVFS(1)
	for cyc := int64(1); cyc <= 2*dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		c.Tick(st)
	}
	down := c.Governor().ModeIndex(0)
	if down == 0 {
		t.Fatal("precondition: governor should have stepped down")
	}
	// Relax the budget massively: the governor must recover.
	st.GlobalBudgetPJ = 1e9
	st.LocalBudgetPJ[0] = 1e9
	for cyc := int64(1); cyc <= 10*dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		c.Tick(st)
	}
	if c.Governor().ModeIndex(0) != 0 {
		t.Fatalf("governor stuck at mode %d after budget relaxed", c.Governor().ModeIndex(0))
	}
}

func TestDFSKeepsVoltage(t *testing.T) {
	st := newState(1, 100)
	c := NewDFS(1)
	for cyc := int64(1); cyc <= 3*dvfs.DefaultWindow; cyc++ {
		st.Refresh(cyc)
		c.Tick(st)
	}
	if got := st.Meter.Voltage(0); got != 1.0 {
		t.Fatalf("DFS changed voltage to %v", got)
	}
	if st.Cores[0].Speed() >= 1.0 {
		t.Fatal("DFS did not scale frequency")
	}
}

func TestTwoLevelEngagesMicroarch(t *testing.T) {
	st := newState(1, 100)
	c := NewTwoLevel(1, 0)
	st.Refresh(1)
	// Force a large overshoot signal.
	st.EstPJ[0] = 10 * st.LocalBudgetPJ[0]
	st.ChipEstPJ = st.EstPJ[0]
	c.Tick(st)
	if lvl := microarch.LevelOf(st.Cores[0].Knobs()); lvl != microarch.LevelFetchGate {
		t.Fatalf("10x overshoot engaged %v, want fetch-gate", lvl)
	}
	// Under budget: knobs clear.
	st.EstPJ[0] = 0
	st.ChipEstPJ = 0
	c.Tick(st)
	if lvl := microarch.LevelOf(st.Cores[0].Knobs()); lvl != microarch.LevelNone {
		t.Fatalf("under budget still throttled: %v", lvl)
	}
}

func TestTwoLevelRelaxDelaysTrigger(t *testing.T) {
	st := newState(1, 1000)
	strict := NewTwoLevel(1, 0)
	relaxed := NewTwoLevel(1, 0.20)
	st.Refresh(1)
	st.EstPJ[0] = st.LocalBudgetPJ[0] * 1.1 // 10% over
	st.ChipEstPJ = st.EstPJ[0] * 10         // chip over

	strict.Tick(st)
	ifLvl := microarch.LevelOf(st.Cores[0].Knobs())
	if ifLvl == microarch.LevelNone {
		t.Fatal("strict 2level ignored a 10% overshoot")
	}
	relaxed.Tick(st)
	if lvl := microarch.LevelOf(st.Cores[0].Knobs()); lvl != microarch.LevelNone {
		t.Fatalf("relaxed(+20%%) 2level engaged %v on a 10%% overshoot", lvl)
	}
}

func TestNoneController(t *testing.T) {
	st := newState(1, 1)
	var c None
	st.Refresh(1)
	c.Tick(st)
	if c.Name() != "none" {
		t.Fatal("name")
	}
	if st.Cores[0].Speed() != 1 {
		t.Fatal("none controller changed core speed")
	}
}

func TestChipOver(t *testing.T) {
	st := newState(2, 100)
	st.Refresh(1)
	if !st.ChipOver() {
		t.Fatal("chip should exceed a 100pJ budget")
	}
	st.GlobalBudgetPJ = 1e9
	if st.ChipOver() {
		t.Fatal("chip should be under a huge budget")
	}
}

func TestEstimateIncludesOccupancyAndTokens(t *testing.T) {
	st := newState(1, 1000)
	idle := Estimate(st.Cores[0], st.Meter)
	// Estimate is the analytic floor for an idle core; TokenRate and
	// occupancy are zero before any tick.
	wantFloor := power.EnergyPJ[power.EvClockActive] + power.EnergyPJ[power.EvLeakage]
	if idle != wantFloor {
		t.Fatalf("idle estimate %v, want floor %v", idle, wantFloor)
	}
}

func TestEstimateVoltageScaling(t *testing.T) {
	st := newState(1, 1000)
	full := Estimate(st.Cores[0], st.Meter)
	st.Meter.SetVoltage(0, 0.9)
	scaled := Estimate(st.Cores[0], st.Meter)
	if scaled >= full {
		t.Fatalf("estimate did not scale down with voltage: %v >= %v", scaled, full)
	}
}

func TestTwoLevelTechniqueCyclesAccounting(t *testing.T) {
	st := newState(1, 100)
	c := NewTwoLevel(1, 0)
	st.Refresh(1)
	st.EstPJ[0] = 10 * st.LocalBudgetPJ[0]
	st.ChipEstPJ = st.EstPJ[0]
	c.Tick(st)
	tc := c.TechniqueCycles()
	total := int64(0)
	for _, v := range tc {
		total += v
	}
	if total != 1 {
		t.Fatalf("technique cycles %v, want exactly 1 decision", tc)
	}
	if tc[microarch.LevelFetchGate] != 1 {
		t.Fatalf("expected a fetch-gate decision, got %v", tc)
	}
}
