// Package budget implements the power-budget enforcement framework (§III):
// the global budget and its naive equal split into local budgets, the
// per-cycle estimated-power signal controllers act on (power tokens, not
// performance counters), and the controller stack evaluated in the paper —
// DVFS, DFS, and the two-level hybrid that PTB builds on.
package budget

import (
	"fmt"
	"math"

	"ptbsim/internal/cpu"
	"ptbsim/internal/dvfs"
	"ptbsim/internal/invariant"
	"ptbsim/internal/microarch"
	"ptbsim/internal/power"
	"ptbsim/internal/syncprim"
)

// ChipState is the per-cycle view the controllers operate on. The simulator
// rebuilds EstPJ every cycle; the PTB balancer adjusts ExtraPJ/DonatedPJ.
type ChipState struct {
	Cycle  int64
	NCores int

	// GlobalBudgetPJ is the chip budget per cycle; LocalBudgetPJ its naive
	// equal split (global/n, §III.C).
	GlobalBudgetPJ float64
	LocalBudgetPJ  []float64

	// ExtraPJ are tokens granted to each core by the PTB balancer for this
	// cycle; DonatedPJ are tokens a core has given away that are still in
	// flight (they tighten its own budget, §III.E.2).
	ExtraPJ   []float64
	DonatedPJ []float64

	// EstPJ is each core's estimated power this cycle (token-based);
	// ChipEstPJ their sum.
	EstPJ     []float64
	ChipEstPJ float64

	Cores []*cpu.Core
	Meter *power.Meter
	Sync  *syncprim.Table
}

// NewChipState allocates the state for n cores with the given global
// budget.
func NewChipState(cores []*cpu.Core, meter *power.Meter, sync *syncprim.Table, globalBudgetPJ float64) *ChipState {
	n := len(cores)
	st := &ChipState{
		NCores:         n,
		GlobalBudgetPJ: globalBudgetPJ,
		LocalBudgetPJ:  make([]float64, n),
		ExtraPJ:        make([]float64, n),
		DonatedPJ:      make([]float64, n),
		EstPJ:          make([]float64, n),
		Cores:          cores,
		Meter:          meter,
		Sync:           sync,
	}
	for i := range st.LocalBudgetPJ {
		st.LocalBudgetPJ[i] = globalBudgetPJ / float64(n)
	}
	return st
}

// Refresh recomputes the estimated-power signal for the new cycle and
// clears the per-cycle PTB grants.
func (st *ChipState) Refresh(cycle int64) {
	st.Cycle = cycle
	st.ChipEstPJ = 0
	for i, c := range st.Cores {
		st.ExtraPJ[i] = 0
		st.EstPJ[i] = Estimate(c, st.Meter)
		st.ChipEstPJ += st.EstPJ[i]
	}
}

// EffectiveLocal returns core i's local budget for this cycle: the naive
// share, minus in-flight donations, plus PTB grants.
func (st *ChipState) EffectiveLocal(i int) float64 {
	return st.LocalBudgetPJ[i] - st.DonatedPJ[i] + st.ExtraPJ[i]
}

// ChipOver reports whether the chip exceeds the global budget this cycle.
func (st *ChipState) ChipOver() bool { return st.ChipEstPJ > st.GlobalBudgetPJ }

// Estimate computes a core's per-cycle power estimate in picojoules: the
// analytically known clock/leakage floor at its current operating point,
// the window-residency term (ROB occupancy × the token unit), and the
// short-horizon average of PTHT token consumption (§III.B — power is
// estimated by "accumulating the power-tokens of each instruction being
// fetched"; the average spreads each instruction's lifetime cost over the
// cycles it is in flight, no performance counters involved).
func Estimate(c *cpu.Core, m *power.Meter) float64 {
	v := m.Voltage(c.ID())
	vsq := v * v
	floor := power.EnergyPJ[power.EvClockActive]*vsq*c.Speed() +
		power.EnergyPJ[power.EvLeakage]*v
	dyn := (c.TokenRate() + float64(c.ROBOccupancy())) * power.TokenUnitPJ
	return floor + dyn*vsq
}

// Controller is one budget-matching technique, ticked once per global
// cycle after the state is refreshed.
type Controller interface {
	Name() string
	Tick(st *ChipState)
}

// DVFSController is the paper's technique (a)/(b): a per-core window-based
// governor over a voltage/frequency ladder.
type DVFSController struct {
	name   string
	gov    *dvfs.Governor
	window int64
	acc    []float64
	chip   float64
	count  int64
	trans  int64

	// Relax widens the budget the governor aims for (§IV.C): the
	// power-saving modes engage only relax above the local budget.
	Relax float64
}

// NewDVFS builds the five-mode DVFS controller for n cores.
func NewDVFS(n int) *DVFSController {
	return &DVFSController{
		name:   "dvfs",
		gov:    dvfs.NewGovernor(n, dvfs.DVFSModes()),
		window: dvfs.DefaultWindow,
		acc:    make([]float64, n),
	}
}

// NewDFS builds the frequency-only variant.
func NewDFS(n int) *DVFSController {
	c := NewDVFS(n)
	c.name = "dfs"
	c.gov = dvfs.NewGovernor(n, dvfs.DFSModes())
	return c
}

// Name identifies the technique.
func (d *DVFSController) Name() string { return d.name }

// Governor exposes the underlying governor (for tests and the sweep tool).
func (d *DVFSController) Governor() *dvfs.Governor { return d.gov }

// SetWindow overrides the decision window (ablation knob; default
// dvfs.DefaultWindow).
func (d *DVFSController) SetWindow(w int64) {
	if w < 1 {
		w = 1
	}
	d.window = w
}

// Tick accumulates estimates and, at window boundaries, re-decides every
// core's operating point.
func (d *DVFSController) Tick(st *ChipState) {
	for i := range st.EstPJ {
		d.acc[i] += st.EstPJ[i]
	}
	d.chip += st.ChipEstPJ
	d.count++
	if d.count < d.window {
		return
	}
	chipOver := d.chip/float64(d.count) > st.GlobalBudgetPJ*(1+d.Relax)
	for i, c := range st.Cores {
		avg := d.acc[i] / float64(d.count)
		mode, changed := d.gov.Decide(i, avg, st.EffectiveLocal(i)*(1+d.Relax), chipOver)
		if changed {
			d.trans++
			c.SetSpeed(mode.F, dvfs.DefaultTransitionTicks)
			st.Meter.SetVoltage(i, mode.V)
		}
		d.acc[i] = 0
	}
	d.chip = 0
	d.count = 0
}

// TwoLevel is technique (c): the DVFS first level plus the per-cycle
// microarchitectural spike clipper, optionally relaxed (§IV.C) to trigger
// only RelaxFrac above the budget.
type TwoLevel struct {
	DVFS      *DVFSController
	RelaxFrac float64

	// techniqueCycles counts, per level, how many core-cycles each rung was
	// engaged (ablation/stats).
	techniqueCycles [microarch.NumLevels]int64
}

// NewTwoLevel builds the hybrid controller for n cores. The relax
// threshold (§IV.C) loosens both levels: the DVFS governor aims for
// budget×(1+relax) and the microarchitectural clipper triggers only that
// far above the (grant-adjusted) local budget.
func NewTwoLevel(n int, relax float64) *TwoLevel {
	d := NewDVFS(n)
	d.Relax = relax
	return &TwoLevel{DVFS: d, RelaxFrac: relax}
}

// Name identifies the technique.
func (t *TwoLevel) Name() string { return "2level" }

// TechniqueCycles returns how many core-cycles each rung was engaged.
func (t *TwoLevel) TechniqueCycles() [microarch.NumLevels]int64 {
	return t.techniqueCycles
}

// Tick runs the coarse DVFS level then clips remaining spikes with the
// microarchitectural ladder.
func (t *TwoLevel) Tick(st *ChipState) {
	t.DVFS.Tick(st)
	chipOver := st.ChipOver()
	for i, c := range st.Cores {
		k := c.Knobs()
		eff := st.EffectiveLocal(i)
		lvl := microarch.LevelNone
		if chipOver && eff > 0 && st.EstPJ[i] > eff*(1+t.RelaxFrac) {
			lvl = microarch.ForDistance((st.EstPJ[i] - eff) / eff)
		}
		microarch.Apply(k, lvl)
		t.techniqueCycles[lvl]++
	}
}

// CheckState verifies the budget-framework invariants on the per-cycle
// chip state, for the invariant layer:
//
//   - the naive local split sums back to the global budget (§III.C);
//   - no core donated more than its local share, and no ledger is
//     negative (a donor can only give away unused allotment, §III.E.2);
//   - ChipEstPJ is the sum of the per-core estimates, and is finite;
//   - the chip-wide estimate stays within a generous multiple of
//     structuralPeakPJ (the all-ports-fire worst case). The estimate is a
//     forecast: it charges each instruction's lifetime energy — cache-miss
//     service included — at fetch over an 8-cycle window (§III.B), so
//     during miss bursts it legitimately exceeds the structural per-cycle
//     peak by small factors. A double-counting bug in the token model
//     compounds far past estSlack, which is what the bound catches.
func CheckState(st *ChipState, structuralPeakPJ float64) error {
	var localSum float64
	for i := 0; i < st.NCores; i++ {
		localSum += st.LocalBudgetPJ[i]
		if st.LocalBudgetPJ[i] < 0 {
			return fmt.Errorf("budget: core %d negative local budget %.6f pJ", i, st.LocalBudgetPJ[i])
		}
		if st.DonatedPJ[i] < 0 || st.DonatedPJ[i] > st.LocalBudgetPJ[i]+1e-9 {
			return fmt.Errorf("budget: core %d donated %.6f pJ outside [0, local %.6f]",
				i, st.DonatedPJ[i], st.LocalBudgetPJ[i])
		}
		if st.ExtraPJ[i] < 0 {
			return fmt.Errorf("budget: core %d negative grant %.6f pJ", i, st.ExtraPJ[i])
		}
		if st.EstPJ[i] < 0 {
			return fmt.Errorf("budget: core %d negative power estimate %.6f pJ", i, st.EstPJ[i])
		}
	}
	if !invariant.CloseTo(localSum, st.GlobalBudgetPJ) {
		return fmt.Errorf("budget: local budgets sum to %.6f pJ, global budget is %.6f pJ",
			localSum, st.GlobalBudgetPJ)
	}
	var estSum float64
	for i := 0; i < st.NCores; i++ {
		estSum += st.EstPJ[i]
	}
	if !invariant.CloseTo(estSum, st.ChipEstPJ) {
		return fmt.Errorf("budget: ChipEstPJ %.6f pJ != Σ per-core estimates %.6f pJ", st.ChipEstPJ, estSum)
	}
	if math.IsNaN(st.ChipEstPJ) || math.IsInf(st.ChipEstPJ, 0) {
		return fmt.Errorf("budget: chip estimate is %v", st.ChipEstPJ)
	}
	const estSlack = 16
	if structuralPeakPJ > 0 && st.ChipEstPJ > estSlack*structuralPeakPJ {
		return fmt.Errorf("budget: chip estimate %.6f pJ exceeds %d× the structural peak %.6f pJ",
			st.ChipEstPJ, estSlack, structuralPeakPJ)
	}
	return nil
}

// None is the no-control baseline.
type None struct{}

// Name identifies the technique.
func (None) Name() string { return "none" }

// Tick does nothing.
func (None) Tick(*ChipState) {}
