package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestZeroSeed(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		v := r.Geometric(8)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 6.5 || mean > 9.5 {
		t.Fatalf("Geometric(8) empirical mean %.2f, want ~8", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(3)
	if v := r.Geometric(0.5); v != 1 {
		t.Fatalf("Geometric(0.5) = %d, want 1", v)
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	p := make([]int, 32)
	r.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical draws", same)
	}
}

func TestBoolBias(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %.3f", frac)
	}
}

func TestUint32NotConstant(t *testing.T) {
	r := New(23)
	first := r.Uint32()
	for i := 0; i < 10; i++ {
		if r.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 appears constant")
}
