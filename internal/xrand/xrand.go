// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload generators. Determinism matters:
// every simulation must be exactly reproducible from its seed so that paper
// figures regenerate bit-identically across runs and platforms.
//
// The generator is xorshift64* (Vigna, 2014-style multiply finisher). It is
// not cryptographically secure and must never be used for anything but
// workload synthesis.
package xrand

// Rand is a deterministic xorshift64* generator. The zero value is invalid;
// use New, which maps a zero seed to a fixed non-zero constant.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is replaced by a
// fixed odd constant so the generator never gets stuck at zero.
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric-ish distribution with the
// given mean (>= 1). It is used for burst lengths in workload generation.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Inverse-CDF sampling of a geometric distribution with success
	// probability 1/mean, clamped to at least 1.
	p := 1.0 / mean
	u := r.Float64()
	// Avoid log(0).
	if u >= 1 {
		u = 0.9999999999
	}
	n := 1
	q := 1 - p
	acc := p
	for u > acc && n < 1<<20 {
		u -= acc
		acc *= q
		n++
	}
	return n
}

// Perm fills dst with a pseudo-random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Split derives an independent generator from this one. Deriving rather
// than sharing keeps per-thread streams decoupled so adding instructions to
// one thread does not perturb another thread's stream.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// State exposes the generator's internal state word for checkpoint
// digests. It must never feed back into workload synthesis.
func (r *Rand) State() uint64 { return r.state }
