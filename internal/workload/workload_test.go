package workload

import (
	"testing"

	"ptbsim/internal/isa"
	"ptbsim/internal/syncprim"
)

// stepThreads round-robins all generators, evaluating serializing
// instructions immediately against the shared table. It returns the per-
// class instruction counts per thread and fails the test on deadlock.
func stepThreads(t *testing.T, spec *Spec, threads int) ([][]int64, *syncprim.Table) {
	t.Helper()
	table := syncprim.NewTable(threads, spec.NumLocks, 1)
	gens := make([]*Generator, threads)
	for i := range gens {
		gens[i] = NewGenerator(spec, table, i, threads)
	}
	counts := make([][]int64, threads)
	for i := range counts {
		counts[i] = make([]int64, isa.NumSyncClasses)
	}
	done := make([]bool, threads)
	inCrit := make([]int32, threads) // lock id+1 while inside a critical section
	for i := range inCrit {
		inCrit[i] = -1
	}

	const maxSteps = 100_000_000
	remaining := threads
	for step := 0; step < maxSteps && remaining > 0; step++ {
		th := step % threads
		if done[th] {
			continue
		}
		inst, ok := gens[th].Next()
		if !ok {
			done[th] = true
			remaining--
			continue
		}
		counts[th][inst.SyncClass]++
		if inst.Serialize {
			r := table.Eval(th, inst)
			// Track mutual exclusion.
			switch inst.SyncOp {
			case isa.SyncLockTry:
				if r == 1 {
					for o, l := range inCrit {
						if o != th && l == inst.SyncID {
							t.Fatalf("threads %d and %d both inside critical section of lock %d", th, o, inst.SyncID)
						}
					}
					inCrit[th] = inst.SyncID
				}
			case isa.SyncUnlock:
				if inCrit[th] != inst.SyncID {
					t.Fatalf("thread %d unlocked lock %d it does not hold", th, inst.SyncID)
				}
				inCrit[th] = -1
			}
			gens[th].Resolve(r)
		}
	}
	if remaining > 0 {
		t.Fatalf("%d threads deadlocked (benchmark %s)", remaining, spec.Name)
	}
	return counts, table
}

func TestAllBenchmarksRunToCompletion(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec.Scaled(0.15)
		t.Run(spec.Name, func(t *testing.T) {
			counts, _ := stepThreads(t, spec, 4)
			for th := range counts {
				total := int64(0)
				for _, c := range counts[th] {
					total += c
				}
				if total == 0 {
					t.Fatalf("thread %d emitted no instructions", th)
				}
			}
		})
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d benchmarks, want 14", len(cat))
	}
	want := []string{"barnes", "cholesky", "fft", "ocean", "radix", "raytrace",
		"tomcatv", "unstructured", "waternsq", "watersp", "blackscholes",
		"fluidanimate", "swaptions", "x264"}
	for i, name := range want {
		if cat[i].Name != name {
			t.Fatalf("catalog[%d] = %s, want %s", i, cat[i].Name, name)
		}
		if cat[i].InputSize == "" || cat[i].Suite == "" {
			t.Fatalf("%s missing Table-2 metadata", name)
		}
	}
	if _, ok := ByName("ocean"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found a nonexistent benchmark")
	}
}

func TestDeterminism(t *testing.T) {
	spec := Ocean().Scaled(0.1)
	table1 := syncprim.NewTable(2, spec.NumLocks, 1)
	table2 := syncprim.NewTable(2, spec.NumLocks, 1)
	g1 := NewGenerator(spec, table1, 0, 2)
	g2 := NewGenerator(spec, table2, 0, 2)
	for i := 0; i < 5000; i++ {
		a, okA := g1.Next()
		b, okB := g2.Next()
		if okA != okB || a != b {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, a, b)
		}
		if !okA {
			break
		}
		if a.Serialize {
			g1.Resolve(1)
			g2.Resolve(1)
		}
	}
}

func TestLockContentionProducesSpin(t *testing.T) {
	spec := Unstructured().Scaled(0.2)
	counts, table := stepThreads(t, spec, 4)
	// With interleaved threads and contended locks there must be lock-acq
	// instructions beyond the bare test-and-sets (spin iterations).
	var lockAcq, busy int64
	for th := range counts {
		lockAcq += counts[th][isa.SyncLockAcq]
		busy += counts[th][isa.SyncBusy]
	}
	if lockAcq == 0 {
		t.Fatal("no lock-acquire activity in a lock-heavy benchmark")
	}
	if busy == 0 {
		t.Fatal("no busy instructions")
	}
	var contended int64
	for id := int32(0); id < int32(spec.NumLocks); id++ {
		contended += table.ContendedTries(id)
	}
	if contended == 0 {
		t.Fatal("no contended lock attempts despite 4 interleaved threads")
	}
}

func TestBarrierBenchmarkReachesAllEpisodes(t *testing.T) {
	spec := Ocean().Scaled(0.2)
	_, table := stepThreads(t, spec, 4)
	if table.BarrierEpisodes(0) == 0 {
		t.Fatal("no barrier episodes in a barrier-heavy benchmark")
	}
}

func TestSyncFreeBenchmarkOnlyFinalBarrier(t *testing.T) {
	spec := Swaptions().Scaled(0.2)
	_, table := stepThreads(t, spec, 4)
	if got := table.BarrierEpisodes(0); got != 1 {
		t.Fatalf("swaptions should only hit the final barrier, got %d episodes", got)
	}
	if table.Acquisitions(0) != 0 {
		t.Fatal("swaptions should never lock")
	}
}

func TestAddressesWellFormed(t *testing.T) {
	spec := Barnes().Scaled(0.1)
	table := syncprim.NewTable(2, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 1, 2)
	for i := 0; i < 20000; i++ {
		inst, ok := g.Next()
		if !ok {
			break
		}
		if inst.Op.IsMem() && inst.SyncOp == isa.SyncNone {
			if inst.Addr >= syncprim.Region {
				t.Fatalf("data address %#x collides with sync region", inst.Addr)
			}
			if inst.Addr < codeBase {
				t.Fatalf("data address %#x below code base", inst.Addr)
			}
		}
		if inst.PC < codeBase || inst.PC >= privateBase {
			t.Fatalf("PC %#x outside code region", inst.PC)
		}
		if inst.Serialize {
			g.Resolve(1)
		}
	}
}

func TestImbalanceVariesQuanta(t *testing.T) {
	spec := Radix() // Imbalance 0.40
	table := syncprim.NewTable(2, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 2)
	a := g.quantumLen()
	different := false
	for q := 1; q < 10; q++ {
		g.quantum = q
		if g.quantumLen() != a {
			different = true
		}
	}
	if !different {
		t.Fatal("imbalanced benchmark produced identical quantum lengths")
	}
}

func TestScaledReducesWork(t *testing.T) {
	s := Ocean()
	half := s.Scaled(0.5)
	if half.QuantaPerThread >= s.QuantaPerThread {
		t.Fatal("Scaled(0.5) did not reduce work")
	}
	if s.ApproxInsts() <= half.ApproxInsts() {
		t.Fatal("ApproxInsts not monotonic in scale")
	}
}

func TestMixProducesAllOps(t *testing.T) {
	spec := Barnes().Scaled(0.3)
	table := syncprim.NewTable(1, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 1)
	seen := map[isa.Op]bool{}
	for i := 0; i < 30000; i++ {
		inst, ok := g.Next()
		if !ok {
			break
		}
		seen[inst.Op] = true
		if inst.Serialize {
			g.Resolve(1)
		}
	}
	for _, op := range []isa.Op{isa.OpIntAlu, isa.OpFPAlu, isa.OpFPMul, isa.OpLoad, isa.OpStore, isa.OpBranch} {
		if !seen[op] {
			t.Fatalf("mix never produced %v", op)
		}
	}
}

func TestPhasesCycle(t *testing.T) {
	spec := Ocean() // stencil(3) + reduce(1)
	table := syncprim.NewTable(1, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 1)
	if g.phaseTotal != 4 || len(g.mix) != 2 {
		t.Fatalf("phase setup wrong: total=%d phases=%d", g.phaseTotal, len(g.mix))
	}
	g.quantum = 0
	if g.phaseIndex() != 0 {
		t.Fatal("quantum 0 not in phase 0")
	}
	g.quantum = 3
	if g.phaseIndex() != 1 {
		t.Fatal("quantum 3 not in phase 1")
	}
	g.quantum = 4
	if g.phaseIndex() != 0 {
		t.Fatal("phases do not cycle")
	}
}

func TestPhaselessSpecGetsImplicitPhase(t *testing.T) {
	spec := Swaptions()
	table := syncprim.NewTable(1, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 1)
	if len(g.mix) != 1 || g.phaseIndex() != 0 {
		t.Fatal("implicit phase broken")
	}
}

func TestPhasesChangeMix(t *testing.T) {
	// FFT's transpose phase must produce measurably more memory ops than
	// its butterfly phase.
	spec := FFT()
	table := syncprim.NewTable(1, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 1)
	countMem := func(phase int) float64 {
		g.quantum = phase * 2 // butterfly at 0-1, transpose at 2-3
		mem := 0
		const n = 8000
		for i := 0; i < n; i++ {
			inst := g.busyInst(isa.SyncBusy)
			if inst.Op.IsMem() {
				mem++
			}
		}
		return float64(mem) / n
	}
	butterfly := countMem(0)
	transpose := countMem(1)
	if transpose <= butterfly*1.2 {
		t.Fatalf("transpose mem fraction %.3f not above butterfly %.3f", transpose, butterfly)
	}
}

func TestMixMatchesSpecWeights(t *testing.T) {
	// The generated busy-instruction distribution must track the spec's
	// weights (within sampling noise). Use a phaseless benchmark.
	spec := Swaptions()
	table := syncprim.NewTable(1, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 1)
	const n = 60000
	var counts [7]int
	for i := 0; i < n; i++ {
		inst := g.busyInst(isa.SyncBusy)
		for j, op := range g.mixOps {
			if inst.Op == op {
				counts[j]++
				break
			}
		}
	}
	weights := []float64{spec.MixIntAlu, spec.MixIntMul, spec.MixFPAlu,
		spec.MixFPMul, spec.MixLoad, spec.MixStore, spec.MixBranch}
	var total float64
	for _, w := range weights {
		total += w
	}
	for j, w := range weights {
		want := w / total
		got := float64(counts[j]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("op %v frequency %.3f, want %.3f±0.02", g.mixOps[j], got, want)
		}
	}
}

func TestHotColdSplit(t *testing.T) {
	// Private accesses must be dominated by the hot region.
	spec := Blackscholes()
	table := syncprim.NewTable(1, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 0, 1)
	base := privateBase
	hot, cold, other := 0, 0, 0
	for i := 0; i < 60000; i++ {
		inst := g.busyInst(isa.SyncBusy)
		if !inst.Op.IsMem() {
			continue
		}
		switch {
		case inst.Addr >= base && inst.Addr < base+g.hotLen:
			hot++
		case inst.Addr >= base+g.hotLen && inst.Addr < base+g.hotLen+g.privLen:
			cold++
		default:
			other++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("degenerate split hot=%d cold=%d", hot, cold)
	}
	frac := float64(hot) / float64(hot+cold)
	if frac < 0.95 {
		t.Fatalf("hot fraction %.3f, want >= 0.95 (hotFrac %.3f)", frac, g.hotFrac)
	}
	_ = other // shared-region accesses
}

func TestSharedSliceAffinity(t *testing.T) {
	spec := Ocean()
	table := syncprim.NewTable(4, spec.NumLocks, 1)
	g := NewGenerator(spec, table, 2, 4)
	sliceLen := g.shLen / 4
	mine, remote := 0, 0
	for i := 0; i < 60000; i++ {
		a := g.sharedAddr()
		slice := (a - sharedBase) / sliceLen
		if slice == 2 {
			mine++
		} else {
			remote++
		}
	}
	frac := float64(mine) / float64(mine+remote)
	if frac < 0.70 {
		t.Fatalf("own-slice fraction %.3f, want >= 0.70 (affinity %.2f)", frac, g.sliceAffinity)
	}
	if remote == 0 {
		t.Fatal("no cross-slice traffic at all: coherence would be trivial")
	}
}
