// Package workload synthesizes the multithreaded benchmarks of the paper's
// evaluation (Table 2: SPLASH-2 plus PARSEC applications).
//
// The real benchmark binaries cannot run on this simulator, so each
// application is modeled as a *reactive* instruction-stream generator with
// the properties that drive the paper's results: its instruction mix,
// working-set size and sharing, branch predictability, inter-thread
// imbalance, and — critically — its synchronization structure (lock
// contention vs. barrier frequency). Locks and barriers are executed as real
// atomic operations and spin loops against shared cache lines, so spinning
// time and spinning power are *emergent* from the coherence protocol, not
// scripted. The per-benchmark parameters are calibrated so the Fig. 3
// execution-time breakdown reproduces the paper's shape: unstructured and
// fluidanimate lock-bound, ocean/radix barrier-bound with imbalance,
// cholesky/blackscholes/swaptions/x264 nearly synchronization-free.
package workload

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	// Name and InputSize label the benchmark as in Table 2.
	Name      string
	InputSize string
	// Suite is "SPLASH-2" or "PARSEC".
	Suite string

	// Seed drives all pseudo-random choices; each thread derives its own
	// stream from it.
	Seed uint64

	// Instruction mix weights for busy phases (need not sum to 1).
	MixIntAlu, MixIntMul, MixFPAlu, MixFPMul float64
	MixLoad, MixStore, MixBranch             float64
	// LongLatFrac is the fraction of IntMul/FPMul ops that are
	// long-latency (divides).
	LongLatFrac float64

	// DepMean is the mean data-dependency distance; smaller = less ILP.
	DepMean float64

	// PrivateKB is each thread's private working set; SharedKB the shared
	// region touched by SharedFrac of memory accesses. SeqFrac of accesses
	// walk sequentially, the rest are random within the region.
	PrivateKB  int
	SharedKB   int
	SharedFrac float64
	SeqFrac    float64
	// HotFrac of private accesses go to a HotKB hot subset (temporal
	// locality); the rest stream through the full footprint. Zero values
	// default to 0.90 and 16KB — real applications keep L1 hit rates in
	// the mid-90s, and the power-unbalance PTB exploits comes from the
	// *misses*, not from an unrealistically cold cache.
	HotFrac float64
	HotKB   int
	// SliceAffinity is the probability a shared access stays within the
	// thread's own slice of the shared region (domain decomposition);
	// the rest touch random remote slices and create coherence traffic.
	// Zero defaults to 0.8.
	SliceAffinity float64

	// HardBranchFrac is the fraction of branches with pseudo-random
	// outcomes (unpredictable); the rest follow BranchTakenP loop behavior.
	HardBranchFrac float64
	BranchTakenP   float64

	// Program structure: QuantaPerThread work quanta of ~QuantumInsts busy
	// instructions (±Imbalance relative spread). After every BarrierEvery
	// quanta all threads meet at a barrier (0 = only the final barrier).
	// With probability LockProb a quantum ends with a lock-protected
	// critical section of CritInsts instructions using one of NumLocks
	// locks.
	QuantaPerThread int
	QuantumInsts    int
	Imbalance       float64
	BarrierEvery    int
	LockProb        float64
	CritInsts       int
	NumLocks        int

	// CodeLines is the static code footprint in 64-byte I-cache lines.
	CodeLines int

	// Phases, when non-empty, cycle the busy-phase character over time:
	// real applications alternate program phases (stencil sweep vs.
	// reduction, motion estimation vs. entropy coding) with visibly
	// different power levels — the per-cycle unbalance Fig. 5 shows.
	// Each entry holds for Quanta work quanta, then the next (cyclically).
	Phases []Phase
}

// Phase modulates the busy-instruction generator for a stretch of quanta.
type Phase struct {
	// Name labels the phase (stats/debug).
	Name string
	// Quanta is how many consecutive work quanta the phase covers.
	Quanta int
	// FPScale and MemScale multiply the FP and memory portions of the
	// instruction mix (1.0 = unchanged); the IntAlu weight absorbs the
	// difference so total instruction counts stay comparable.
	FPScale  float64
	MemScale float64
	// SharedScale multiplies SharedFrac (communication-heavy phases).
	SharedScale float64
}

// Scaled returns a copy with the total work multiplied by f (used by unit
// tests and benchmarks to run shortened versions).
func (s *Spec) Scaled(f float64) *Spec {
	c := *s
	c.QuantaPerThread = int(float64(s.QuantaPerThread)*f + 0.5)
	if c.QuantaPerThread < 2 {
		c.QuantaPerThread = 2
	}
	return &c
}

// ApproxInsts estimates the busy instructions per thread (for sizing runs).
func (s *Spec) ApproxInsts() int {
	per := s.QuantumInsts
	if s.LockProb > 0 {
		per += int(s.LockProb * float64(s.CritInsts))
	}
	return s.QuantaPerThread * per
}

// Catalog returns the 14 evaluated benchmarks in the paper's order.
func Catalog() []*Spec {
	return []*Spec{
		Barnes(), Cholesky(), FFT(), Ocean(), Radix(), Raytrace(), Tomcatv(),
		Unstructured(), WaterNSq(), WaterSP(), Blackscholes(), Fluidanimate(),
		Swaptions(), X264(),
	}
}

// ByName finds a catalog benchmark by name.
func ByName(name string) (*Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Barnes models the SPLASH-2 Barnes-Hut N-body simulation: FP-heavy tree
// walks, barriers between time steps, light tree locking, moderate
// imbalance from uneven body distributions.
func Barnes() *Spec {
	return &Spec{
		Name: "barnes", InputSize: "8192 bodies, 4 time steps", Suite: "SPLASH-2",
		Seed:      0xBA12E5,
		MixIntAlu: 0.28, MixIntMul: 0.02, MixFPAlu: 0.18, MixFPMul: 0.12,
		MixLoad: 0.22, MixStore: 0.08, MixBranch: 0.10, LongLatFrac: 0.04,
		DepMean:   5.5,
		PrivateKB: 96, SharedKB: 512, SharedFrac: 0.25, SeqFrac: 0.35,
		HardBranchFrac: 0.12, BranchTakenP: 0.82,
		QuantaPerThread: 48, QuantumInsts: 2200, Imbalance: 0.25,
		BarrierEvery: 2, LockProb: 0.25, CritInsts: 60, NumLocks: 16,
		CodeLines: 220,
	}
}

// Cholesky models SPLASH-2 blocked sparse Cholesky factorization: well
// balanced task queue, low lock contention, no internal barriers.
func Cholesky() *Spec {
	return &Spec{
		Name: "cholesky", InputSize: "tk16.0", Suite: "SPLASH-2",
		Seed:      0xC401E5,
		MixIntAlu: 0.26, MixIntMul: 0.03, MixFPAlu: 0.20, MixFPMul: 0.16,
		MixLoad: 0.20, MixStore: 0.07, MixBranch: 0.08, LongLatFrac: 0.05,
		DepMean:   6.5,
		PrivateKB: 128, SharedKB: 768, SharedFrac: 0.20, SeqFrac: 0.55,
		HardBranchFrac: 0.08, BranchTakenP: 0.85,
		QuantaPerThread: 52, QuantumInsts: 2400, Imbalance: 0.08,
		BarrierEvery: 0, LockProb: 0.35, CritInsts: 40, NumLocks: 32,
		CodeLines: 260,
	}
}

// FFT models the SPLASH-2 radix-√n FFT: all-to-all transposes separated by
// barriers, streaming access, little locking.
func FFT() *Spec {
	return &Spec{
		Name: "fft", InputSize: "256K complex doubles", Suite: "SPLASH-2",
		Seed:      0xFF7A11,
		MixIntAlu: 0.22, MixIntMul: 0.04, MixFPAlu: 0.24, MixFPMul: 0.18,
		MixLoad: 0.18, MixStore: 0.08, MixBranch: 0.06, LongLatFrac: 0.02,
		DepMean:   7.0,
		PrivateKB: 192, SharedKB: 1024, SharedFrac: 0.30, SeqFrac: 0.75,
		HardBranchFrac: 0.04, BranchTakenP: 0.90,
		QuantaPerThread: 44, QuantumInsts: 2600, Imbalance: 0.15,
		BarrierEvery: 2, LockProb: 0.0, CritInsts: 0, NumLocks: 1,
		CodeLines: 150,
		Phases: []Phase{
			{Name: "butterfly", Quanta: 2, FPScale: 1.3, MemScale: 0.9, SharedScale: 0.5},
			{Name: "transpose", Quanta: 2, FPScale: 0.4, MemScale: 1.5, SharedScale: 2.2},
		},
	}
}

// Ocean models SPLASH-2 Ocean (contiguous partitions): stencil sweeps with
// a barrier after every phase and noticeable imbalance at the boundaries —
// the paper's canonical barrier-dominated application.
func Ocean() *Spec {
	return &Spec{
		Name: "ocean", InputSize: "258x258 ocean", Suite: "SPLASH-2",
		Seed:      0x0CEA10,
		MixIntAlu: 0.24, MixIntMul: 0.02, MixFPAlu: 0.24, MixFPMul: 0.14,
		MixLoad: 0.22, MixStore: 0.08, MixBranch: 0.06, LongLatFrac: 0.03,
		DepMean:   6.0,
		PrivateKB: 160, SharedKB: 1024, SharedFrac: 0.22, SeqFrac: 0.70,
		HardBranchFrac: 0.05, BranchTakenP: 0.88,
		QuantaPerThread: 56, QuantumInsts: 1800, Imbalance: 0.35,
		BarrierEvery: 1, LockProb: 0.05, CritInsts: 24, NumLocks: 8,
		CodeLines: 180,
		Phases: []Phase{
			{Name: "stencil", Quanta: 3, FPScale: 1.2, MemScale: 1.2, SharedScale: 1.4},
			{Name: "reduce", Quanta: 1, FPScale: 0.6, MemScale: 0.8, SharedScale: 0.6},
		},
	}
}

// Radix models SPLASH-2 radix sort: permutation phases with barriers and
// strong imbalance from skewed key histograms — high AoPB under the naive
// split in the paper.
func Radix() *Spec {
	return &Spec{
		Name: "radix", InputSize: "1M keys, 1024 radix", Suite: "SPLASH-2",
		Seed:      0x4AD1C5,
		MixIntAlu: 0.40, MixIntMul: 0.04, MixFPAlu: 0.02, MixFPMul: 0.01,
		MixLoad: 0.28, MixStore: 0.14, MixBranch: 0.09, LongLatFrac: 0.01,
		DepMean:   4.5,
		PrivateKB: 256, SharedKB: 1024, SharedFrac: 0.30, SeqFrac: 0.45,
		HardBranchFrac: 0.15, BranchTakenP: 0.80,
		QuantaPerThread: 50, QuantumInsts: 2000, Imbalance: 0.40,
		BarrierEvery: 1, LockProb: 0.0, CritInsts: 0, NumLocks: 1,
		CodeLines: 120,
		Phases: []Phase{
			{Name: "histogram", Quanta: 2, FPScale: 1, MemScale: 0.8, SharedScale: 0.4},
			{Name: "permute", Quanta: 2, FPScale: 1, MemScale: 1.6, SharedScale: 1.8},
		},
	}
}

// Raytrace models SPLASH-2 raytrace: a central work-queue lock feeds
// independent rays; lock contention grows with core count.
func Raytrace() *Spec {
	return &Spec{
		Name: "raytrace", InputSize: "Teapot", Suite: "SPLASH-2",
		Seed:      0x4A97AC,
		MixIntAlu: 0.26, MixIntMul: 0.02, MixFPAlu: 0.20, MixFPMul: 0.16,
		MixLoad: 0.20, MixStore: 0.06, MixBranch: 0.10, LongLatFrac: 0.06,
		DepMean:   5.0,
		PrivateKB: 96, SharedKB: 768, SharedFrac: 0.30, SeqFrac: 0.25,
		HardBranchFrac: 0.18, BranchTakenP: 0.78,
		QuantaPerThread: 60, QuantumInsts: 1500, Imbalance: 0.30,
		BarrierEvery: 0, LockProb: 0.85, CritInsts: 30, NumLocks: 1,
		CodeLines: 240,
	}
}

// Tomcatv models the mesh-generation kernel: vectorizable sweeps with
// barriers between iterations.
func Tomcatv() *Spec {
	return &Spec{
		Name: "tomcatv", InputSize: "256 elements, 5 iterations", Suite: "SPLASH-2",
		Seed:      0x70DCA7,
		MixIntAlu: 0.20, MixIntMul: 0.02, MixFPAlu: 0.26, MixFPMul: 0.18,
		MixLoad: 0.20, MixStore: 0.08, MixBranch: 0.06, LongLatFrac: 0.03,
		DepMean:   7.5,
		PrivateKB: 128, SharedKB: 512, SharedFrac: 0.18, SeqFrac: 0.80,
		HardBranchFrac: 0.03, BranchTakenP: 0.92,
		QuantaPerThread: 46, QuantumInsts: 2200, Imbalance: 0.22,
		BarrierEvery: 1, LockProb: 0.0, CritInsts: 0, NumLocks: 1,
		CodeLines: 100,
	}
}

// Unstructured models the unstructured-mesh CFD kernel: fine-grained locks
// on shared mesh nodes with heavy contention plus phase barriers — the
// paper's most lock-bound and technique-sensitive application.
func Unstructured() *Spec {
	return &Spec{
		Name: "unstructured", InputSize: "Mesh.2K, 5 time steps", Suite: "SPLASH-2",
		Seed:      0x0175C7,
		MixIntAlu: 0.28, MixIntMul: 0.02, MixFPAlu: 0.18, MixFPMul: 0.10,
		MixLoad: 0.24, MixStore: 0.10, MixBranch: 0.08, LongLatFrac: 0.02,
		DepMean:   4.5,
		PrivateKB: 96, SharedKB: 1024, SharedFrac: 0.40, SeqFrac: 0.30,
		HardBranchFrac: 0.10, BranchTakenP: 0.80,
		QuantaPerThread: 56, QuantumInsts: 900, Imbalance: 0.30,
		BarrierEvery: 4, LockProb: 1.0, CritInsts: 90, NumLocks: 2,
		CodeLines: 200,
	}
}

// WaterNSq models SPLASH-2 Water-NSquared: per-molecule locks with moderate
// contention and barriers per time step, unbalanced across threads.
func WaterNSq() *Spec {
	return &Spec{
		Name: "waternsq", InputSize: "512 molecules, 4 time steps", Suite: "SPLASH-2",
		Seed:      0x3A7E41,
		MixIntAlu: 0.24, MixIntMul: 0.02, MixFPAlu: 0.22, MixFPMul: 0.16,
		MixLoad: 0.20, MixStore: 0.08, MixBranch: 0.08, LongLatFrac: 0.05,
		DepMean:   6.0,
		PrivateKB: 96, SharedKB: 512, SharedFrac: 0.28, SeqFrac: 0.40,
		HardBranchFrac: 0.07, BranchTakenP: 0.86,
		QuantaPerThread: 48, QuantumInsts: 1700, Imbalance: 0.32,
		BarrierEvery: 4, LockProb: 0.70, CritInsts: 50, NumLocks: 4,
		CodeLines: 190,
	}
}

// WaterSP models Water-Spatial: same physics with spatial decomposition —
// fewer locks, barrier-synchronized, better balanced.
func WaterSP() *Spec {
	return &Spec{
		Name: "watersp", InputSize: "512 molecules, 4 time steps", Suite: "SPLASH-2",
		Seed:      0x3A7E42,
		MixIntAlu: 0.24, MixIntMul: 0.02, MixFPAlu: 0.22, MixFPMul: 0.16,
		MixLoad: 0.20, MixStore: 0.08, MixBranch: 0.08, LongLatFrac: 0.05,
		DepMean:   6.0,
		PrivateKB: 96, SharedKB: 512, SharedFrac: 0.18, SeqFrac: 0.55,
		HardBranchFrac: 0.06, BranchTakenP: 0.88,
		QuantaPerThread: 48, QuantumInsts: 1800, Imbalance: 0.18,
		BarrierEvery: 2, LockProb: 0.15, CritInsts: 30, NumLocks: 8,
		CodeLines: 190,
	}
}

// Blackscholes models PARSEC blackscholes: embarrassingly parallel option
// pricing; threads only meet at the final barrier.
func Blackscholes() *Spec {
	return &Spec{
		Name: "blackscholes", InputSize: "simsmall", Suite: "PARSEC",
		Seed:      0xB1AC55,
		MixIntAlu: 0.18, MixIntMul: 0.02, MixFPAlu: 0.26, MixFPMul: 0.22,
		MixLoad: 0.18, MixStore: 0.06, MixBranch: 0.08, LongLatFrac: 0.10,
		DepMean:   6.5,
		PrivateKB: 64, SharedKB: 128, SharedFrac: 0.05, SeqFrac: 0.85,
		HardBranchFrac: 0.03, BranchTakenP: 0.90,
		QuantaPerThread: 50, QuantumInsts: 2100, Imbalance: 0.06,
		BarrierEvery: 0, LockProb: 0.0, CritInsts: 0, NumLocks: 1,
		CodeLines: 90,
	}
}

// Fluidanimate models PARSEC fluidanimate: fine-grained cell locks with
// very high contention — the paper's second lock-bound application.
func Fluidanimate() *Spec {
	return &Spec{
		Name: "fluidanimate", InputSize: "simsmall", Suite: "PARSEC",
		Seed:      0xF1D0A1,
		MixIntAlu: 0.24, MixIntMul: 0.02, MixFPAlu: 0.22, MixFPMul: 0.14,
		MixLoad: 0.22, MixStore: 0.08, MixBranch: 0.08, LongLatFrac: 0.03,
		DepMean:   5.0,
		PrivateKB: 96, SharedKB: 1024, SharedFrac: 0.35, SeqFrac: 0.35,
		HardBranchFrac: 0.08, BranchTakenP: 0.84,
		QuantaPerThread: 56, QuantumInsts: 1000, Imbalance: 0.25,
		BarrierEvery: 6, LockProb: 1.0, CritInsts: 70, NumLocks: 3,
		CodeLines: 210,
	}
}

// Swaptions models PARSEC swaptions: independent Monte-Carlo pricing, no
// synchronization until the end.
func Swaptions() *Spec {
	return &Spec{
		Name: "swaptions", InputSize: "simsmall", Suite: "PARSEC",
		Seed:      0x5A9705,
		MixIntAlu: 0.20, MixIntMul: 0.03, MixFPAlu: 0.26, MixFPMul: 0.20,
		MixLoad: 0.17, MixStore: 0.06, MixBranch: 0.08, LongLatFrac: 0.08,
		DepMean:   6.0,
		PrivateKB: 64, SharedKB: 128, SharedFrac: 0.04, SeqFrac: 0.70,
		HardBranchFrac: 0.05, BranchTakenP: 0.88,
		QuantaPerThread: 50, QuantumInsts: 2000, Imbalance: 0.08,
		BarrierEvery: 0, LockProb: 0.0, CritInsts: 0, NumLocks: 1,
		CodeLines: 110,
	}
}

// X264 models PARSEC x264: pipeline-parallel encoding with light ordering
// locks and a final join; moderately unbalanced.
func X264() *Spec {
	return &Spec{
		Name: "x264", InputSize: "simsmall", Suite: "PARSEC",
		Seed:      0xEC0DE4,
		MixIntAlu: 0.36, MixIntMul: 0.06, MixFPAlu: 0.06, MixFPMul: 0.02,
		MixLoad: 0.26, MixStore: 0.12, MixBranch: 0.10, LongLatFrac: 0.02,
		DepMean:   4.0,
		PrivateKB: 128, SharedKB: 512, SharedFrac: 0.15, SeqFrac: 0.60,
		HardBranchFrac: 0.20, BranchTakenP: 0.76,
		QuantaPerThread: 52, QuantumInsts: 1900, Imbalance: 0.15,
		BarrierEvery: 0, LockProb: 0.20, CritInsts: 25, NumLocks: 16,
		CodeLines: 300,
		Phases: []Phase{
			{Name: "motion-est", Quanta: 3, FPScale: 0.5, MemScale: 1.3, SharedScale: 1.2},
			{Name: "entropy", Quanta: 1, FPScale: 0.3, MemScale: 0.7, SharedScale: 0.5},
		},
	}
}
