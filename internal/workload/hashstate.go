package workload

import "ptbsim/internal/ckpt"

// HashState folds one generator thread's mutable state into h for
// checkpoint digests: the rng stream, the block machine, the address
// cursors, and every static branch's pattern position (sorted by PC —
// map order is randomized). Spec-derived tables are static and excluded.
// The field order is append-only.
func (g *Generator) HashState(h *ckpt.Hasher) {
	h.WriteInt(g.thread)
	h.WriteU64(g.rng.State())
	h.WriteInt(int(g.state))
	h.WriteInt(g.quantum)
	h.WriteInt(g.remaining)
	h.WriteI64(int64(g.curLock))
	h.WriteI64(g.spinGen)
	h.WriteInt(len(g.queue))
	for i := range g.queue {
		in := &g.queue[i]
		h.WriteU64(in.PC)
		h.WriteInt(int(in.Op))
		h.WriteU64(in.Addr)
		h.WriteBool(in.Taken)
	}
	h.WriteU64(g.privCursor)
	h.WriteU64(g.sharedCursor)
	h.WriteInt(g.pcCursor)
	h.WriteU64(g.hotCursor)
	h.WriteInt(len(g.branchState))
	for _, pc := range ckpt.SortedKeys(g.branchState) {
		st := g.branchState[pc]
		h.WriteU64(pc)
		h.WriteInt(st.period)
		h.WriteInt(st.count)
		h.WriteBool(st.hard)
	}
	h.WriteI64(g.emitted)
	h.WriteI64(g.lockAcqs)
	h.WriteI64(g.spinIters)
	h.WriteI64(g.barrierWaits)
}
