package workload

import (
	"fmt"

	"ptbsim/internal/isa"
	"ptbsim/internal/syncprim"
	"ptbsim/internal/xrand"
)

// Address-space layout. Each thread owns a private region; the benchmark
// shares one region; code is shared; sync variables live above everything
// (syncprim.Region).
const (
	codeBase    uint64 = 0x0040_0000
	privateBase uint64 = 0x0100_0000
	privateSpan uint64 = 0x0100_0000 // 16MB per thread slot
	sharedBase  uint64 = 0x3000_0000
)

// genState is the generator's control state.
type genState uint8

const (
	gsBusy genState = iota
	gsLockTryWait
	gsLockSpinWait
	gsCrit
	gsUnlockWait
	gsBarrierArriveWait
	gsBarrierSpinWait
	gsDone
)

// Generator produces one thread's dynamic instruction stream. It implements
// cpu.Source: the core calls Next for instructions and Resolve with the
// outcomes of serializing instructions (lock test-and-sets, unlocks, barrier
// arrivals and spin loads), which drive the state machine.
type Generator struct {
	spec    *Spec
	table   *syncprim.Table
	thread  int
	threads int
	rng     *xrand.Rand

	state   genState
	quantum int
	// remaining busy/crit instructions in the current block.
	remaining int
	curLock   int32
	spinGen   int64

	// queue holds instructions synthesized ahead of Next.
	queue []isa.Inst

	// address cursors.
	privCursor   uint64
	sharedCursor uint64
	pcCursor     int

	// mix is the cumulative instruction-mix table, one per program phase
	// (a single implicit phase when the spec defines none).
	mix        [][7]float64
	mixSum     []float64
	sharedFrac []float64
	phaseLen   []int
	phaseTotal int
	mixOps     [7]isa.Op
	privLen    uint64
	shLen      uint64

	// locality model (defaults applied in NewGenerator).
	hotFrac       float64
	hotLen        uint64
	hotCursor     uint64
	sliceAffinity float64

	// branchState gives each static branch a loop-like repeating outcome
	// pattern (taken period-1 times, then not taken once). Real branches
	// are predictable because they are *structured*, not because they are
	// biased coins; a pattern is what lets the gshare predictor reach
	// realistic accuracy.
	branchState map[uint64]*branchPattern

	// stats
	emitted      int64
	lockAcqs     int64
	spinIters    int64
	barrierWaits int64
}

// NewGenerator builds the generator for one thread of a benchmark run with
// the given total thread count.
func NewGenerator(spec *Spec, table *syncprim.Table, thread, threads int) *Generator {
	if threads < 1 {
		panic("workload: need at least one thread")
	}
	g := &Generator{
		spec:    spec,
		table:   table,
		thread:  thread,
		threads: threads,
		rng:     xrand.New(spec.Seed*0x9E3779B97F4A7C15 + uint64(thread)*0xBF58476D1CE4E5B9 + uint64(threads)),
		privLen: uint64(spec.PrivateKB) * 1024,
		shLen:   uint64(spec.SharedKB) * 1024,
	}
	if g.privLen == 0 {
		g.privLen = 4096
	}
	if g.shLen == 0 {
		g.shLen = 4096
	}
	g.hotFrac = spec.HotFrac
	if g.hotFrac == 0 {
		g.hotFrac = 0.99
	}
	g.hotLen = uint64(spec.HotKB) * 1024
	if g.hotLen == 0 {
		g.hotLen = 16 * 1024
	}
	if g.hotLen > g.privLen {
		g.hotLen = g.privLen
	}
	g.sliceAffinity = spec.SliceAffinity
	if g.sliceAffinity == 0 {
		g.sliceAffinity = 0.8
	}
	g.mixOps = [7]isa.Op{isa.OpIntAlu, isa.OpIntMul, isa.OpFPAlu, isa.OpFPMul, isa.OpLoad, isa.OpStore, isa.OpBranch}
	phases := spec.Phases
	if len(phases) == 0 {
		phases = []Phase{{Name: "main", Quanta: 1, FPScale: 1, MemScale: 1, SharedScale: 1}}
	}
	for _, ph := range phases {
		w := [7]float64{spec.MixIntAlu, spec.MixIntMul, spec.MixFPAlu, spec.MixFPMul, spec.MixLoad, spec.MixStore, spec.MixBranch}
		fp, mem, sh := ph.FPScale, ph.MemScale, ph.SharedScale
		if fp == 0 {
			fp = 1
		}
		if mem == 0 {
			mem = 1
		}
		if sh == 0 {
			sh = 1
		}
		w[2] *= fp
		w[3] *= fp
		w[4] *= mem
		w[5] *= mem
		var cum [7]float64
		acc := 0.0
		for i, v := range w {
			acc += v
			cum[i] = acc
		}
		if acc <= 0 {
			panic(fmt.Sprintf("workload %s: empty instruction mix", spec.Name))
		}
		g.mix = append(g.mix, cum)
		g.mixSum = append(g.mixSum, acc)
		sf := spec.SharedFrac * sh
		if sf > 0.9 {
			sf = 0.9
		}
		g.sharedFrac = append(g.sharedFrac, sf)
		q := ph.Quanta
		if q < 1 {
			q = 1
		}
		g.phaseLen = append(g.phaseLen, q)
		g.phaseTotal += q
	}
	g.table.SetState(thread, isa.SyncBusy)
	g.startQuantum()
	return g
}

// Stats returns (emitted instructions, lock acquisitions, spin iterations,
// barrier waits).
func (g *Generator) Stats() (emitted, lockAcqs, spinIters, barrierWaits int64) {
	return g.emitted, g.lockAcqs, g.spinIters, g.barrierWaits
}

// quantumLen draws the (imbalanced) busy length of the current quantum.
func (g *Generator) quantumLen() int {
	base := float64(g.spec.QuantumInsts)
	// Deterministic per-(thread,quantum) jitter in [-1,1].
	h := xrand.New(g.spec.Seed ^ uint64(g.thread)<<32 ^ uint64(g.quantum)*0x94D049BB133111EB)
	jitter := 2*h.Float64() - 1
	n := int(base * (1 + g.spec.Imbalance*jitter))
	if n < 16 {
		n = 16
	}
	return n
}

func (g *Generator) startQuantum() {
	g.state = gsBusy
	g.remaining = g.quantumLen()
	g.table.SetState(g.thread, isa.SyncBusy)
}

// Next implements cpu.Source.
func (g *Generator) Next() (isa.Inst, bool) {
	if len(g.queue) > 0 {
		inst := g.queue[0]
		g.queue = g.queue[1:]
		g.emitted++
		return inst, true
	}
	switch g.state {
	case gsDone:
		return isa.Inst{}, false
	case gsBusy:
		if g.remaining > 0 {
			g.remaining--
			g.emitted++
			return g.busyInst(isa.SyncBusy), true
		}
		g.endOfQuantum()
		return g.Next()
	case gsCrit:
		if g.remaining > 0 {
			g.remaining--
			g.emitted++
			return g.critInst(), true
		}
		// Release the lock.
		g.state = gsUnlockWait
		g.table.SetState(g.thread, isa.SyncLockRel)
		g.emitted++
		return isa.Inst{
			PC: g.lockPC(2), Op: isa.OpAtomicRMW, Addr: g.table.LockAddr(g.curLock),
			Serialize: true, SyncOp: isa.SyncUnlock, SyncID: g.curLock,
			SyncClass: isa.SyncLockRel,
		}, true
	default:
		// Waiting states are driven by Resolve; the core never calls Next
		// while a serializing instruction is outstanding.
		panic(fmt.Sprintf("workload %s: Next in waiting state %d", g.spec.Name, g.state))
	}
}

// endOfQuantum decides what follows a finished busy block: a critical
// section, a barrier, the next quantum, or program end.
func (g *Generator) endOfQuantum() {
	if g.spec.LockProb > 0 && g.rng.Bool(g.spec.LockProb) {
		g.curLock = int32(g.rng.Intn(g.spec.NumLocks))
		g.state = gsLockTryWait
		g.table.SetState(g.thread, isa.SyncLockAcq)
		g.queue = append(g.queue, isa.Inst{
			PC: g.lockPC(0), Op: isa.OpAtomicRMW, Addr: g.table.LockAddr(g.curLock),
			Serialize: true, SyncOp: isa.SyncLockTry, SyncID: g.curLock,
			SyncClass: isa.SyncLockAcq,
		})
		return
	}
	g.advanceQuantum()
}

// advanceQuantum moves past the sync point at the end of a quantum.
func (g *Generator) advanceQuantum() {
	g.quantum++
	if g.quantum >= g.spec.QuantaPerThread {
		// Final barrier: all threads leave the parallel phase together.
		g.enterBarrier()
		return
	}
	if g.spec.BarrierEvery > 0 && g.quantum%g.spec.BarrierEvery == 0 {
		g.enterBarrier()
		return
	}
	g.startQuantum()
}

func (g *Generator) enterBarrier() {
	g.state = gsBarrierArriveWait
	g.table.SetState(g.thread, isa.SyncBarrier)
	g.queue = append(g.queue, isa.Inst{
		PC: g.barrierPC(0), Op: isa.OpAtomicRMW, Addr: g.table.BarrierCounterAddr(0),
		Serialize: true, SyncOp: isa.SyncBarrierArrive, SyncID: 0,
		SyncClass: isa.SyncBarrier,
	})
}

// Resolve implements cpu.Source: it receives the outcome of the last
// serializing instruction and advances the state machine.
func (g *Generator) Resolve(result int64) {
	switch g.state {
	case gsLockTryWait:
		if result == 1 {
			// Acquired: run the critical section.
			g.lockAcqs++
			g.state = gsCrit
			g.remaining = g.spec.CritInsts
			if g.remaining < 1 {
				g.remaining = 1
			}
			g.table.SetState(g.thread, isa.SyncBusy)
			return
		}
		// Contended: spin with test-and-test-and-set.
		g.state = gsLockSpinWait
		g.emitSpinIter(isa.SyncLockAcq)
	case gsLockSpinWait:
		g.spinIters++
		if result == 1 {
			// Lock observed free: retry the test-and-set. The spin-exit
			// branch is the usually-taken loop branch falling through,
			// which the predictor tends to mispredict — emitted not-taken.
			g.queue = append(g.queue,
				isa.Inst{PC: g.lockPC(5), Op: isa.OpBranch, Taken: false, Dep1: 1, SyncClass: isa.SyncLockAcq},
				isa.Inst{
					PC: g.lockPC(0), Op: isa.OpAtomicRMW, Addr: g.table.LockAddr(g.curLock),
					Serialize: true, SyncOp: isa.SyncLockTry, SyncID: g.curLock,
					SyncClass: isa.SyncLockAcq,
				})
			g.state = gsLockTryWait
			return
		}
		g.emitSpinIter(isa.SyncLockAcq)
	case gsUnlockWait:
		g.advanceQuantum()
	case gsBarrierArriveWait:
		last, gen := syncprim.DecodeArrive(result)
		if last {
			// Release the spinners by writing the flag line, then go on.
			g.queue = append(g.queue, isa.Inst{
				PC: g.barrierPC(1), Op: isa.OpStore, Addr: g.table.BarrierFlagAddr(0),
				SyncClass: isa.SyncBarrier,
			})
			g.leaveBarrier()
			return
		}
		g.spinGen = gen
		g.state = gsBarrierSpinWait
		g.emitBarrierSpin()
	case gsBarrierSpinWait:
		g.spinIters++
		if result == 1 {
			g.barrierWaits++
			g.queue = append(g.queue,
				isa.Inst{PC: g.barrierPC(5), Op: isa.OpBranch, Taken: false, Dep1: 1, SyncClass: isa.SyncBarrier})
			g.leaveBarrier()
			return
		}
		g.emitBarrierSpin()
	default:
		panic(fmt.Sprintf("workload %s: unexpected Resolve in state %d", g.spec.Name, g.state))
	}
}

// leaveBarrier continues after a barrier, or ends the program after the
// final one.
func (g *Generator) leaveBarrier() {
	if g.quantum >= g.spec.QuantaPerThread {
		g.state = gsDone
		g.table.SetState(g.thread, isa.SyncBusy)
		return
	}
	g.startQuantum()
}

// emitSpinIter queues one lock spin-loop iteration: test load (serializing),
// then the loop body the core fetches after the outcome is known.
func (g *Generator) emitSpinIter(class isa.SyncClass) {
	g.queue = append(g.queue,
		isa.Inst{PC: g.lockPC(3), Op: isa.OpIntAlu, Dep1: 1, SyncClass: class},
		isa.Inst{PC: g.lockPC(4), Op: isa.OpBranch, Taken: true, Dep1: 1, SyncClass: class},
		isa.Inst{
			PC: g.lockPC(1), Op: isa.OpLoad, Addr: g.table.LockAddr(g.curLock),
			Serialize: true, SyncOp: isa.SyncSpinLock, SyncID: g.curLock,
			SyncClass: class,
		})
}

// emitBarrierSpin queues one barrier spin-loop iteration.
func (g *Generator) emitBarrierSpin() {
	g.queue = append(g.queue,
		isa.Inst{PC: g.barrierPC(3), Op: isa.OpIntAlu, Dep1: 1, SyncClass: isa.SyncBarrier},
		isa.Inst{PC: g.barrierPC(4), Op: isa.OpBranch, Taken: true, Dep1: 1, SyncClass: isa.SyncBarrier},
		isa.Inst{
			PC: g.barrierPC(2), Op: isa.OpLoad, Addr: g.table.BarrierFlagAddr(0),
			Serialize: true, SyncOp: isa.SyncSpinBarrier, SyncID: 0, SyncArg: g.spinGen,
			SyncClass: isa.SyncBarrier,
		})
}

// lockPC/barrierPC return stable PCs for the synchronization code so the
// predictor and PTHT see realistic locality. Slots separate the individual
// static instructions of the lock/barrier routines.
func (g *Generator) lockPC(slot int) uint64 {
	return codeBase + uint64(g.spec.CodeLines)*64 + uint64(g.curLock)*64 + uint64(slot)*4
}

func (g *Generator) barrierPC(slot int) uint64 {
	return codeBase + uint64(g.spec.CodeLines)*64 + uint64(g.spec.NumLocks)*64 + uint64(slot)*4
}

// phaseIndex returns the current program phase from the quantum counter.
func (g *Generator) phaseIndex() int {
	if len(g.phaseLen) == 1 {
		return 0
	}
	pos := g.quantum % g.phaseTotal
	for i, q := range g.phaseLen {
		if pos < q {
			return i
		}
		pos -= q
	}
	return 0
}

// busyInst synthesizes one busy-phase instruction from the benchmark mix
// of the current program phase.
func (g *Generator) busyInst(class isa.SyncClass) isa.Inst {
	ph := g.phaseIndex()
	r := g.rng.Float64() * g.mixSum[ph]
	op := isa.OpIntAlu
	for i, c := range g.mix[ph] {
		if r <= c {
			op = g.mixOps[i]
			break
		}
	}

	pc := codeBase + uint64(g.pcCursor%(g.spec.CodeLines*16))*4
	g.pcCursor++

	inst := isa.Inst{PC: pc, Op: op, SyncClass: class}
	inst.Dep1 = uint16(g.rng.Geometric(g.spec.DepMean))
	if g.rng.Bool(0.35) {
		inst.Dep2 = uint16(g.rng.Geometric(g.spec.DepMean * 1.5))
	}
	if op == isa.OpBranch {
		// Branches compare freshly computed values: they depend on a near
		// producer and resolve quickly once fetched. (A branch hanging off
		// a cold load would stall the front end for the full miss — real
		// codes do that rarely.)
		inst.Dep1 = uint16(1 + g.rng.Intn(3))
		inst.Dep2 = 0
	}

	switch op {
	case isa.OpIntMul, isa.OpFPMul:
		inst.LongLat = g.rng.Bool(g.spec.LongLatFrac)
	case isa.OpLoad, isa.OpStore:
		inst.Addr = g.dataAddr()
	case isa.OpBranch:
		inst.Taken = g.branchOutcome(pc)
	}
	return inst
}

// branchPattern is one static branch's repeating loop structure.
type branchPattern struct {
	period int
	count  int
	hard   bool
}

// branchOutcome produces the next outcome of the static branch at pc:
// loop-patterned for most branches (learnable), random for the benchmark's
// HardBranchFrac share (data-dependent branches the predictor cannot
// learn).
func (g *Generator) branchOutcome(pc uint64) bool {
	if g.branchState == nil {
		g.branchState = make(map[uint64]*branchPattern)
	}
	st, ok := g.branchState[pc]
	if !ok {
		st = &branchPattern{hard: g.rng.Bool(g.spec.HardBranchFrac)}
		// Period derived from BranchTakenP: taken period-1 of period times
		// averages to the benchmark's taken rate.
		p := g.spec.BranchTakenP
		if p >= 0.99 {
			p = 0.99
		}
		st.period = int(1.0/(1.0-p) + 0.5)
		if st.period < 2 {
			st.period = 2
		}
		if st.period > 14 {
			// Keep loop periods within what 16 bits of gshare history can
			// learn.
			st.period = 14
		}
		g.branchState[pc] = st
	}
	if st.hard {
		return g.rng.Bool(0.5)
	}
	st.count++
	if st.count >= st.period {
		st.count = 0
		return false
	}
	return true
}

// critInst synthesizes a critical-section instruction: mostly shared-data
// reads and writes, which is what makes critical sections migrate lines.
func (g *Generator) critInst() isa.Inst {
	pc := codeBase + uint64((g.spec.CodeLines+8)*16+g.pcCursor%64)*4
	g.pcCursor++
	inst := isa.Inst{PC: pc, SyncClass: isa.SyncBusy}
	switch {
	case g.rng.Bool(0.40):
		inst.Op = isa.OpLoad
		inst.Addr = g.sharedAddr()
	case g.rng.Bool(0.45):
		inst.Op = isa.OpStore
		inst.Addr = g.sharedAddr()
	default:
		inst.Op = isa.OpIntAlu
		inst.Dep1 = 1
	}
	return inst
}

// dataAddr picks a load/store address per the benchmark's locality model:
// most private accesses reuse a hot subset (high L1 hit rates, as in real
// applications), the rest stream through the cold footprint and produce the
// cache misses that unbalance power across cores.
func (g *Generator) dataAddr() uint64 {
	if g.rng.Bool(g.sharedFrac[g.phaseIndex()]) {
		return g.sharedAddr()
	}
	base := privateBase + uint64(g.thread)*privateSpan
	if g.rng.Bool(g.hotFrac) {
		if g.rng.Bool(g.spec.SeqFrac) {
			g.hotCursor += 8
			if g.hotCursor >= g.hotLen {
				g.hotCursor = 0
			}
			return base + g.hotCursor
		}
		return base + uint64(g.rng.Intn(int(g.hotLen)))&^7
	}
	// Cold streaming walks line by line through the full footprint beyond
	// the hot region.
	g.privCursor += 64
	if g.privCursor >= g.privLen {
		g.privCursor = 0
	}
	return base + g.hotLen + g.privCursor
}

// sharedAddr models domain decomposition: threads mostly touch their own
// slice of the shared region and occasionally reach into others', which is
// what produces forwards and invalidations in the directory.
func (g *Generator) sharedAddr() uint64 {
	slice := uint64(g.thread)
	if !g.rng.Bool(g.sliceAffinity) {
		slice = uint64(g.rng.Intn(g.threads))
	}
	sliceLen := g.shLen / uint64(g.threads)
	if sliceLen < 256 {
		sliceLen = 256
	}
	base := sharedBase + slice*sliceLen
	// Shared data has temporal locality too: most accesses stay within a
	// hot window at the front of the slice.
	window := sliceLen / 4
	if window > 8*1024 {
		window = 8 * 1024
	}
	if window < 256 {
		window = 256
	}
	if g.rng.Bool(g.hotFrac) {
		if g.rng.Bool(g.spec.SeqFrac) {
			g.sharedCursor += 8
			if g.sharedCursor >= window {
				g.sharedCursor = 0
			}
			return base + g.sharedCursor
		}
		return base + uint64(g.rng.Intn(int(window)))&^7
	}
	return base + uint64(g.rng.Intn(int(sliceLen)))&^7
}
