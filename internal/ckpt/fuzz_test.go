package ckpt

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode proves the snapshot decoder's safety contract:
// whatever bytes arrive — truncated, bit-flipped, version-skewed, or
// adversarial — Decode either returns a valid Snapshot or one of the
// typed errors. It never panics, and any successful decode re-encodes
// back to a decodable snapshot with identical content.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	good := sample().Encode()
	f.Add(good)
	trunc := good[:len(good)/2]
	f.Add(trunc)
	flipped := append([]byte(nil), good...)
	flipped[len(magic)+2] ^= 0xff // version skew
	f.Add(flipped)
	flipped2 := append([]byte(nil), good...)
	flipped2[len(flipped2)-5] ^= 0x01 // checksum damage
	f.Add(flipped2)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A decodable snapshot must survive a re-encode round trip.
		again, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("re-encode of a valid snapshot failed to decode: %v", err)
		}
		if again.Key != s.Key || again.Cycle != s.Cycle || again.State != s.State ||
			string(again.Config) != string(s.Config) {
			t.Fatal("re-encode round trip changed content")
		}
	})
}
