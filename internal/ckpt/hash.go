// Package ckpt is the checkpoint/restore layer: versioned, checksummed,
// self-describing snapshots of a running simulation, with typed errors
// for every way a snapshot can be unusable (corrupt, version-skewed,
// state-mismatched). The design is replay-based: a snapshot records the
// run's identity (key + config payload), the exact cycle it was taken
// at, and a digest over every piece of mutable result-determining
// simulator state. Restore rebuilds the system from the config, replays
// deterministically to the snapshot cycle, and verifies the recomputed
// state digest against the stored one — a mismatch is a typed error,
// never a silently wrong result (DESIGN.md §14).
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// Hasher accumulates simulator state into a sha256 digest. Components
// expose a HashState(*Hasher) method feeding every mutable
// result-determining field through it in a fixed order; the final Sum is
// the state digest stored in (and verified against) snapshots.
//
// The rules for HashState implementations:
//   - hash values, never pointers or addresses;
//   - walk maps in sorted-key order (Go map iteration is randomized);
//   - skip pools, scratch buffers and telemetry — anything whose content
//     cannot influence future results;
//   - keep the field order append-only: reordering changes every digest.
type Hasher struct {
	h   [32]byte // running chain: sha256(prev || block)
	buf []byte
	n   int
}

// NewHasher returns a Hasher with an empty chain.
func NewHasher() *Hasher {
	return &Hasher{buf: make([]byte, 0, 4096)}
}

// flush folds the buffered bytes into the chain.
func (h *Hasher) flush() {
	if len(h.buf) == 0 {
		return
	}
	s := sha256.New()
	s.Write(h.h[:])
	s.Write(h.buf)
	s.Sum(h.h[:0])
	h.buf = h.buf[:0]
	h.n++
}

func (h *Hasher) grow(n int) {
	if len(h.buf)+n > cap(h.buf) {
		h.flush()
	}
}

// WriteU64 appends one unsigned 64-bit value.
func (h *Hasher) WriteU64(v uint64) {
	h.grow(8)
	h.buf = binary.LittleEndian.AppendUint64(h.buf, v)
}

// WriteI64 appends one signed 64-bit value.
func (h *Hasher) WriteI64(v int64) { h.WriteU64(uint64(v)) }

// WriteInt appends one int.
func (h *Hasher) WriteInt(v int) { h.WriteU64(uint64(int64(v))) }

// WriteF64 appends one float64, bit-exactly.
func (h *Hasher) WriteF64(v float64) { h.WriteU64(math.Float64bits(v)) }

// WriteBool appends one bool.
func (h *Hasher) WriteBool(v bool) {
	if v {
		h.WriteU64(1)
	} else {
		h.WriteU64(0)
	}
}

// WriteBytes appends a length-prefixed byte string.
func (h *Hasher) WriteBytes(b []byte) {
	h.WriteU64(uint64(len(b)))
	for len(b) > 0 {
		h.grow(1)
		n := cap(h.buf) - len(h.buf)
		if n > len(b) {
			n = len(b)
		}
		h.buf = append(h.buf, b[:n]...)
		b = b[n:]
	}
}

// WriteString appends a length-prefixed string.
func (h *Hasher) WriteString(s string) {
	h.WriteU64(uint64(len(s)))
	for len(s) > 0 {
		h.grow(1)
		n := cap(h.buf) - len(h.buf)
		if n > len(s) {
			n = len(s)
		}
		h.buf = append(h.buf, s[:n]...)
		s = s[n:]
	}
}

// Sum returns the digest over everything written so far. The Hasher
// remains usable; further writes extend the chain.
func (h *Hasher) Sum() [32]byte {
	h.flush()
	return h.h
}

// SortedKeys returns m's keys in ascending order — the canonical
// iteration order for hashing map-shaped state.
func SortedKeys[M ~map[uint64]V, V any](m M) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
