package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Snapshot wire format (all integers little-endian):
//
//	magic    8 bytes  "PTBCKPT\n"
//	version  uint32   currently 1
//	sections TLV*     tag uint32, length uint32, payload
//	checksum 32 bytes sha256 over everything before it
//
// Sections (each exactly once, any order on decode):
//
//	tag 1  key     canonical run key (the stable config JSON)
//	tag 2  config  opaque config payload handed back verbatim on decode
//	tag 3  cycle   int64, the cycle the snapshot was taken at
//	tag 4  state   32-byte state digest over all mutable simulator state
//
// The checksum catches torn writes and bit flips (ErrCorrupt); the
// version field rejects snapshots from other schema generations
// (ErrVersion); the state digest catches a faithful-looking snapshot
// whose replayed state diverged (ErrStateMismatch). All three are
// recoverable: callers fall back to recomputing from scratch.
const (
	magic   = "PTBCKPT\n"
	Version = 1

	tagKey    = 1
	tagConfig = 2
	tagCycle  = 3
	tagState  = 4
)

// Typed snapshot failures. Every decode or restore problem wraps one of
// these, so callers can distinguish "snapshot unusable, recompute"
// (Corrupt/Version/StateMismatch) from real run failures.
var (
	// ErrCorrupt means the snapshot bytes fail structural validation:
	// truncated, bad magic, bad checksum, malformed or duplicated
	// sections. The file is quarantined-by-ignoring; runs restart fresh.
	ErrCorrupt = errors.New("ckpt: corrupt snapshot")

	// ErrVersion means the snapshot was written by a different schema
	// generation and cannot be interpreted.
	ErrVersion = errors.New("ckpt: snapshot version mismatch")

	// ErrStateMismatch means a structurally valid snapshot did not match
	// the replayed simulator state (or belongs to a different config).
	ErrStateMismatch = errors.New("ckpt: snapshot state mismatch")

	// ErrStopped reports the deliberate crash-drill abort: the run was
	// configured to stop after writing its Nth snapshot (Plan.StopAfter)
	// so tests and CI can exercise a genuine fresh-process resume.
	ErrStopped = errors.New("ckpt: run stopped after snapshot (crash drill)")
)

// Snapshot is one decoded checkpoint.
type Snapshot struct {
	Key    string // canonical run key (stable config JSON)
	Config []byte // opaque config payload, round-tripped verbatim
	Cycle  int64  // cycle the snapshot was taken at
	State  [32]byte
}

// Encode serializes s into the versioned, checksummed wire form.
func (s *Snapshot) Encode() []byte {
	n := len(magic) + 4 + 3*8 + len(s.Key) + len(s.Config) + 8 + 32 + 8 + 32
	buf := make([]byte, 0, n)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	section := func(tag uint32, payload []byte) {
		buf = binary.LittleEndian.AppendUint32(buf, tag)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
	}
	section(tagKey, []byte(s.Key))
	section(tagConfig, s.Config)
	var cyc [8]byte
	binary.LittleEndian.PutUint64(cyc[:], uint64(s.Cycle))
	section(tagCycle, cyc[:])
	section(tagState, s.State[:])
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Decode parses and validates one snapshot. It returns ErrCorrupt for
// any structural damage and ErrVersion for schema skew; it never panics,
// whatever the input.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+4+32 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, sum := data[:len(data)-32], data[len(data)-32:]
	if sha256.Sum256(body) != [32]byte(sum) {
		return nil, fmt.Errorf("%w: checksum failed", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(body[len(magic):])
	if v != Version {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, v, Version)
	}
	var (
		s    Snapshot
		seen [5]bool
	)
	rest := body[len(magic)+4:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return nil, fmt.Errorf("%w: truncated section header", ErrCorrupt)
		}
		tag := binary.LittleEndian.Uint32(rest)
		n := binary.LittleEndian.Uint32(rest[4:])
		rest = rest[8:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: section %d claims %d bytes, %d remain", ErrCorrupt, tag, n, len(rest))
		}
		payload := rest[:n]
		rest = rest[n:]
		if tag >= 1 && tag <= 4 {
			if seen[tag] {
				return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, tag)
			}
			seen[tag] = true
		}
		switch tag {
		case tagKey:
			s.Key = string(payload)
		case tagConfig:
			s.Config = append([]byte(nil), payload...)
		case tagCycle:
			if len(payload) != 8 {
				return nil, fmt.Errorf("%w: cycle section has %d bytes", ErrCorrupt, len(payload))
			}
			s.Cycle = int64(binary.LittleEndian.Uint64(payload))
		case tagState:
			if len(payload) != 32 {
				return nil, fmt.Errorf("%w: state section has %d bytes", ErrCorrupt, len(payload))
			}
			copy(s.State[:], payload)
		default:
			// Unknown sections are skipped: a future minor revision may
			// append data without breaking old readers.
		}
	}
	for tag := 1; tag <= 4; tag++ {
		if !seen[tag] {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, tag)
		}
	}
	if s.Cycle < 0 {
		return nil, fmt.Errorf("%w: negative cycle %d", ErrCorrupt, s.Cycle)
	}
	return &s, nil
}

// Plan configures periodic snapshots for one run.
type Plan struct {
	Every int64  // snapshot period in cycles (<=0 disables)
	Dir   string // snapshot directory (created on first write)

	// Key identifies the run; the snapshot file name is derived from it
	// and restores verify it matches. Config is the opaque payload stored
	// alongside (conventionally the stable config JSON, so a snapshot is
	// self-describing even without the original invocation).
	Key    string
	Config []byte

	// StopAfter, when positive, aborts the run with ErrStopped right
	// after the Nth snapshot is written — a deterministic "crash" for
	// resume tests and the CI crash drill.
	StopAfter int
}

// Path returns the snapshot file path for p.Key inside p.Dir.
func (p *Plan) Path() string { return filepath.Join(p.Dir, FileName(p.Key)) }

// FileName returns the content-addressed snapshot file name for a run
// key: hex(sha256(key)) + ".ckpt".
func FileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".ckpt"
}

// WriteFile atomically writes s to path (temp file + rename), creating
// the directory if needed. A crash mid-write leaves either the previous
// snapshot or a stray temp file — never a torn snapshot under path.
func WriteFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	data := s.Encode()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile loads and decodes the snapshot at path. A missing file is
// reported as os.ErrNotExist (callers treat it as "no snapshot", not an
// error); anything unreadable or invalid decodes to a typed ckpt error.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
