package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Snapshot {
	var st [32]byte
	for i := range st {
		st[i] = byte(i * 7)
	}
	return &Snapshot{
		Key:    `{"benchmark":"ocean","cores":4}`,
		Config: []byte(`{"benchmark":"ocean","cores":4,"technique":"ptb"}`),
		Cycle:  123456,
		State:  st,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sample()
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != want.Key || string(got.Config) != string(want.Config) ||
		got.Cycle != want.Cycle || got.State != want.State {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
	}
}

func TestDecodeTruncated(t *testing.T) {
	data := sample().Encode()
	for _, n := range []int{0, 1, 7, 8, 11, 12, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: want ErrCorrupt, got %v", n, err)
		}
	}
}

func TestDecodeBitFlips(t *testing.T) {
	data := sample().Encode()
	for pos := 0; pos < len(data); pos += 13 {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		_, err := Decode(bad)
		if err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Errorf("bit flip at %d: want typed error, got %v", pos, err)
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	data := sample().Encode()
	// Rewrite the version field and re-seal the checksum so only the
	// version check can object.
	binary.LittleEndian.PutUint32(data[len(magic):], Version+1)
	s := reseal(data)
	if _, err := Decode(s); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecodeMissingAndDuplicateSections(t *testing.T) {
	// Missing: a body with only the key section.
	buf := []byte(magic)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, tagKey)
	buf = binary.LittleEndian.AppendUint32(buf, 1)
	buf = append(buf, 'k')
	if _, err := Decode(reseal(buf)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing sections: want ErrCorrupt, got %v", err)
	}
	// Duplicate: the full encoding with the cycle section appended twice.
	data := sample().Encode()
	body := data[:len(data)-32]
	body = binary.LittleEndian.AppendUint32(body, tagCycle)
	body = binary.LittleEndian.AppendUint32(body, 8)
	body = binary.LittleEndian.AppendUint64(body, 7)
	if _, err := Decode(reseal(body)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate section: want ErrCorrupt, got %v", err)
	}
}

func TestDecodeSkipsUnknownSections(t *testing.T) {
	data := sample().Encode()
	body := data[:len(data)-32]
	body = binary.LittleEndian.AppendUint32(body, 99)
	body = binary.LittleEndian.AppendUint32(body, 3)
	body = append(body, "xyz"...)
	got, err := Decode(reseal(body))
	if err != nil {
		t.Fatalf("unknown section should be skipped: %v", err)
	}
	if got.Cycle != sample().Cycle {
		t.Fatal("payload corrupted by unknown section")
	}
}

// reseal recomputes the trailing checksum over body.
func reseal(body []byte) []byte {
	full := append([]byte(nil), body...)
	sum := sha256.Sum256(full)
	return append(full, sum[:]...)
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	p := &Plan{Every: 1000, Dir: dir, Key: "k1", Config: []byte("{}")}
	path := p.Path()
	if !strings.HasSuffix(path, ".ckpt") {
		t.Fatalf("snapshot path %q lacks .ckpt suffix", path)
	}
	want := sample()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != want.Cycle || got.State != want.State {
		t.Fatal("file round trip mismatch")
	}
	// Overwrite is atomic: a second write replaces, never appends.
	want.Cycle = 999
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != 999 {
		t.Fatalf("overwrite not visible: cycle %d", got.Cycle)
	}
	// No temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1", len(ents))
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestReadFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestHasherDeterministicAndSensitive(t *testing.T) {
	fill := func(h *Hasher) {
		h.WriteU64(1)
		h.WriteI64(-5)
		h.WriteF64(3.14)
		h.WriteBool(true)
		h.WriteInt(42)
		h.WriteBytes([]byte("abc"))
		h.WriteString("def")
	}
	a, b := NewHasher(), NewHasher()
	fill(a)
	fill(b)
	if a.Sum() != b.Sum() {
		t.Fatal("hasher is not deterministic")
	}
	c := NewHasher()
	fill(c)
	c.WriteU64(0)
	if a.Sum() == c.Sum() {
		t.Fatal("hasher misses an appended value")
	}
	// Length prefixes keep concatenations unambiguous.
	x, y := NewHasher(), NewHasher()
	x.WriteString("ab")
	x.WriteString("c")
	y.WriteString("a")
	y.WriteString("bc")
	if x.Sum() == y.Sum() {
		t.Fatal("string framing is ambiguous")
	}
}

func TestHasherLargeWrites(t *testing.T) {
	// Writes larger than the internal buffer must chunk correctly.
	big := make([]byte, 3*4096+17)
	for i := range big {
		big[i] = byte(i)
	}
	a := NewHasher()
	a.WriteBytes(big)
	b := NewHasher()
	b.WriteBytes(big)
	if a.Sum() != b.Sum() {
		t.Fatal("large write not deterministic")
	}
	c := NewHasher()
	big[5000] ^= 1
	c.WriteBytes(big)
	if a.Sum() == c.Sum() {
		t.Fatal("large write misses a flipped byte")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[uint64]int{5: 0, 1: 0, 9: 0, 3: 0}
	got := SortedKeys(m)
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestFileNameStable(t *testing.T) {
	a, b := FileName("key"), FileName("key")
	if a != b || FileName("other") == a {
		t.Fatal("FileName not content-addressed")
	}
	if len(a) != 64+len(".ckpt") {
		t.Fatalf("unexpected file name %q", a)
	}
}
