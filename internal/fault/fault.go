// Package fault is the deterministic fault-injection engine of the
// simulator: a seeded source of "does this fault fire here?" decisions that
// the component packages consult at well-defined perturbation points. The
// paper assumes ideal PTB hardware — token counts always reach the global
// balancer, budget updates always return within the Table-2 latencies, the
// power sensors are exact and DVFS transitions never fail. Real CMP
// power-management networks drop, delay and corrupt messages; this package
// models those non-idealities so the reproduction's claims can be measured
// under them (and so the graceful-degradation machinery in internal/core
// has something to degrade against).
//
// Design rules:
//
//   - Determinism. Every decision comes from an xrand stream derived from
//     Spec.Seed, and each fault domain (token exchange, NoC links, power
//     sensors, DVFS) gets an independent split, so enabling one fault kind
//     never perturbs another kind's stream. Two runs with the same seed and
//     rates inject byte-identical fault sequences.
//   - Zero rates are the identity. An injector whose rates are all zero
//     never fires, and the components are written so the all-zero Spec
//     reproduces the un-faulted simulation bit for bit (the golden tests
//     assert exactly that).
//   - Faults are modeled, not corrupting. An injected fault changes what a
//     component *observes* (a lost report, a stalled link, a noisy sensor),
//     never the ground-truth energy or token ledgers — every conservation
//     invariant must keep holding with injection enabled.
//
// The decision engines live here; the perturbation code lives next to the
// state it perturbs (internal/core, internal/mesh, internal/power,
// internal/dvfs).
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"ptbsim/internal/xrand"
)

// ErrBadSpec is the sentinel wrapped by every Spec validation and Parse
// error; branch with errors.Is.
var ErrBadSpec = errors.New("invalid fault spec")

// Defaults for the tunable parameters (applied when the field is zero).
const (
	// DefaultStaleTimeout is how many cycles a core's token report may be
	// stale before the balancer's watchdog falls back to the core's static
	// per-core share.
	DefaultStaleTimeout = 64
	// DefaultMaxRetries bounds the balancer's retransmit attempts for a
	// dropped token batch; past the bound the batch is recorded as lost.
	DefaultMaxRetries = 3
	// DefaultRetryBackoff is the base retransmit backoff in cycles; it
	// doubles per attempt (8, 16, 32, …).
	DefaultRetryBackoff = 8
	// DefaultTokenDelayCycles is the extra latency of a delayed token batch.
	DefaultTokenDelayCycles = 16
	// DefaultLinkStallCycles is the duration of one injected NoC link stall.
	DefaultLinkStallCycles = 16
)

// neverStale is the watchdog timeout used when the watchdog is disabled.
const neverStale = int64(1) << 62

// Spec declares the fault rates and parameters of one run. The zero Spec
// injects nothing. Rates are probabilities in [0, 1]; cycle counts and
// retry bounds left at zero select the package defaults, and negative
// values disable the corresponding mechanism (see each field).
type Spec struct {
	// Seed seeds the injector's random streams (0 selects a fixed non-zero
	// constant, per xrand.New).
	Seed uint64

	// TokenDrop is the loss probability of one PTB token message: applied
	// per core per cycle to the spare-token report toward the balancer, and
	// per delivery attempt to each in-flight token batch (dropped batches
	// are retransmitted up to MaxRetries times before being lost).
	TokenDrop float64
	// TokenDelay is the probability a launched token batch is delayed by
	// TokenDelayCycles beyond its normal transfer latency.
	TokenDelay float64
	// TokenDup is the probability a launched token batch is duplicated (the
	// balancer receives it twice — over-granting that the token-conservation
	// ledger tracks separately).
	TokenDup float64
	// TokenDelayCycles is the extra delay of a delayed batch
	// (0 = DefaultTokenDelayCycles).
	TokenDelayCycles int64
	// StaleTimeout is the watchdog threshold in cycles (0 =
	// DefaultStaleTimeout, negative = watchdog disabled).
	StaleTimeout int64
	// MaxRetries bounds batch retransmissions (0 = DefaultMaxRetries,
	// negative = no retries: a dropped batch is immediately lost).
	MaxRetries int
	// RetryBackoff is the base retransmit backoff in cycles, doubling per
	// attempt (0 = DefaultRetryBackoff).
	RetryBackoff int64

	// LinkStall is the per-link-traversal probability of a transient stall
	// of LinkStallCycles.
	LinkStall float64
	// LinkStallCycles is the stall duration (0 = DefaultLinkStallCycles).
	LinkStallCycles int64
	// FlitCorrupt is the per-link-traversal probability of detected flit
	// corruption; the message is retransmitted across the link (doubling its
	// serialization time and link/router energy).
	FlitCorrupt float64

	// SensorNoise is the relative amplitude of white noise on the per-core
	// power-sensor readings (0.05 = readings jitter within ±5%).
	SensorNoise float64
	// SensorDrift is the maximum relative drift of a sensor: each core's
	// sensor performs a bounded random walk within ±SensorDrift.
	SensorDrift float64

	// DVFSGlitch is the per-transition probability that a DVFS mode change
	// glitches: the core pays the transition stall but stays at its current
	// operating point.
	DVFSGlitch float64
}

// Zero reports whether the spec injects nothing (all rates zero); the
// parameters (seed, timeouts, retry bounds) are ignored.
func (s Spec) Zero() bool {
	return s.TokenDrop == 0 && s.TokenDelay == 0 && s.TokenDup == 0 &&
		s.LinkStall == 0 && s.FlitCorrupt == 0 &&
		s.SensorNoise == 0 && s.SensorDrift == 0 && s.DVFSGlitch == 0
}

// Validate checks every rate and parameter; errors wrap ErrBadSpec.
func (s Spec) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"drop", s.TokenDrop}, {"delay", s.TokenDelay}, {"dup", s.TokenDup},
		{"stall", s.LinkStall}, {"corrupt", s.FlitCorrupt},
		{"noise", s.SensorNoise}, {"drift", s.SensorDrift},
		{"glitch", s.DVFSGlitch},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %w: %s=%v outside [0, 1]", ErrBadSpec, r.name, r.v)
		}
	}
	return nil
}

// withDefaults resolves the zero-means-default and negative-means-disabled
// parameter conventions into directly usable values.
func (s Spec) withDefaults() Spec {
	switch {
	case s.TokenDelayCycles == 0:
		s.TokenDelayCycles = DefaultTokenDelayCycles
	case s.TokenDelayCycles < 0:
		s.TokenDelayCycles = 0
	}
	switch {
	case s.StaleTimeout == 0:
		s.StaleTimeout = DefaultStaleTimeout
	case s.StaleTimeout < 0:
		s.StaleTimeout = neverStale
	}
	switch {
	case s.MaxRetries == 0:
		s.MaxRetries = DefaultMaxRetries
	case s.MaxRetries < 0:
		s.MaxRetries = 0
	}
	if s.RetryBackoff <= 0 {
		s.RetryBackoff = DefaultRetryBackoff
	}
	switch {
	case s.LinkStallCycles == 0:
		s.LinkStallCycles = DefaultLinkStallCycles
	case s.LinkStallCycles < 0:
		s.LinkStallCycles = 0
	}
	return s
}

// specKeys maps the Parse/String key set onto Spec fields. Kept in one
// table so the parser, the canonical encoder and the error message can
// never disagree about the vocabulary.
var specKeys = []string{
	"seed", "drop", "delay", "dup", "delaycycles", "stale", "retries",
	"backoff", "stall", "stallcycles", "corrupt", "noise", "drift", "glitch",
}

// Parse builds a Spec from a comma-separated key=value list, e.g.
//
//	"seed=42,drop=0.1,stall=0.05,noise=0.02"
//
// Keys (all optional): seed, drop, delay, dup, delaycycles, stale, retries,
// backoff, stall, stallcycles, corrupt, noise, drift, glitch. Unknown or
// repeated keys and malformed values return an error wrapping ErrBadSpec;
// the empty string parses to the zero Spec.
func Parse(in string) (Spec, error) {
	var s Spec
	trimmed := strings.TrimSpace(in)
	if trimmed == "" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(trimmed, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return s, fmt.Errorf("fault: %w: empty clause in %q", ErrBadSpec, in)
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("fault: %w: clause %q is not key=value", ErrBadSpec, part)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		if seen[k] {
			return s, fmt.Errorf("fault: %w: repeated key %q", ErrBadSpec, k)
		}
		seen[k] = true
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 0, 64)
		case "drop":
			s.TokenDrop, err = parseRate(v)
		case "delay":
			s.TokenDelay, err = parseRate(v)
		case "dup":
			s.TokenDup, err = parseRate(v)
		case "delaycycles":
			s.TokenDelayCycles, err = strconv.ParseInt(v, 10, 64)
		case "stale":
			s.StaleTimeout, err = strconv.ParseInt(v, 10, 64)
		case "retries":
			var n int64
			n, err = strconv.ParseInt(v, 10, 32)
			s.MaxRetries = int(n)
		case "backoff":
			s.RetryBackoff, err = strconv.ParseInt(v, 10, 64)
		case "stall":
			s.LinkStall, err = parseRate(v)
		case "stallcycles":
			s.LinkStallCycles, err = strconv.ParseInt(v, 10, 64)
		case "corrupt":
			s.FlitCorrupt, err = parseRate(v)
		case "noise":
			s.SensorNoise, err = parseRate(v)
		case "drift":
			s.SensorDrift, err = parseRate(v)
		case "glitch":
			s.DVFSGlitch, err = parseRate(v)
		default:
			return s, fmt.Errorf("fault: %w: unknown key %q (valid: %s)",
				ErrBadSpec, k, strings.Join(specKeys, ", "))
		}
		if err != nil {
			return s, fmt.Errorf("fault: %w: %s=%q: %v", ErrBadSpec, k, v, err)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func parseRate(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, fmt.Errorf("rate %v outside [0, 1]", f)
	}
	return f, nil
}

// String renders the spec in Parse's syntax, omitting zero fields, in a
// deterministic key order — usable as a cache key and round-trippable
// through Parse. The zero Spec renders as "".
func (s Spec) String() string {
	m := map[string]string{}
	if s.Seed != 0 {
		m["seed"] = strconv.FormatUint(s.Seed, 10)
	}
	rate := func(k string, v float64) {
		if v != 0 {
			m[k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	num := func(k string, v int64) {
		if v != 0 {
			m[k] = strconv.FormatInt(v, 10)
		}
	}
	rate("drop", s.TokenDrop)
	rate("delay", s.TokenDelay)
	rate("dup", s.TokenDup)
	num("delaycycles", s.TokenDelayCycles)
	num("stale", s.StaleTimeout)
	num("retries", int64(s.MaxRetries))
	num("backoff", s.RetryBackoff)
	rate("stall", s.LinkStall)
	num("stallcycles", s.LinkStallCycles)
	rate("corrupt", s.FlitCorrupt)
	rate("noise", s.SensorNoise)
	rate("drift", s.SensorDrift)
	rate("glitch", s.DVFSGlitch)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, ",")
}

// Injector is one run's fault source: four independent decision streams,
// one per fault domain, derived from the spec's seed. Construct one per
// simulation; the streams are not safe for concurrent use (simulations are
// single-threaded).
type Injector struct {
	spec   Spec
	token  *TokenInjector
	link   *LinkInjector
	sensor *SensorInjector
	dvfs   *DVFSInjector
}

// NewInjector builds the injector for a validated spec.
func NewInjector(s Spec) *Injector {
	s = s.withDefaults()
	master := xrand.New(s.Seed)
	return &Injector{
		spec: s,
		// Split order is part of the determinism contract: token, link,
		// sensor, dvfs. Each domain owns its stream, so rates in one domain
		// never shift another domain's decisions.
		token: &TokenInjector{
			rng: master.Split(), drop: s.TokenDrop, delay: s.TokenDelay,
			dup: s.TokenDup, delayCycles: s.TokenDelayCycles,
			staleTimeout: s.StaleTimeout, maxRetries: s.MaxRetries,
			backoff: s.RetryBackoff,
		},
		link: &LinkInjector{
			rng: master.Split(), stall: s.LinkStall,
			stallCycles: s.LinkStallCycles, corrupt: s.FlitCorrupt,
		},
		sensor: &SensorInjector{
			rng: master.Split(), noise: s.SensorNoise, driftMax: s.SensorDrift,
		},
		dvfs: &DVFSInjector{rng: master.Split(), glitch: s.DVFSGlitch},
	}
}

// Spec returns the (defaults-resolved) spec the injector was built from.
func (i *Injector) Spec() Spec { return i.spec }

// Token returns the PTB token-exchange fault stream.
func (i *Injector) Token() *TokenInjector { return i.token }

// Link returns the NoC link fault stream.
func (i *Injector) Link() *LinkInjector { return i.link }

// Sensor returns the power-sensor fault stream.
func (i *Injector) Sensor() *SensorInjector { return i.sensor }

// DVFS returns the DVFS-transition fault stream.
func (i *Injector) DVFS() *DVFSInjector { return i.dvfs }

// Fired returns the total number of faults injected across all domains.
func (i *Injector) Fired() int64 {
	return i.token.fired + i.link.fired + i.sensor.fired + i.dvfs.fired
}

// TokenInjector decides the PTB token-exchange faults: report loss on the
// core→balancer path and drop/delay/duplication of in-flight token batches,
// plus the graceful-degradation parameters the balancer applies.
type TokenInjector struct {
	rng          *xrand.Rand
	drop         float64
	delay        float64
	dup          float64
	delayCycles  int64
	staleTimeout int64
	maxRetries   int
	backoff      int64
	fired        int64
}

// ReportLost decides whether one core's spare-token report toward the
// balancer is lost this cycle.
func (t *TokenInjector) ReportLost() bool {
	if t.drop == 0 {
		return false
	}
	if t.rng.Bool(t.drop) {
		t.fired++
		return true
	}
	return false
}

// FlightDropped decides whether one delivery attempt of an in-flight token
// batch is lost.
func (t *TokenInjector) FlightDropped() bool {
	if t.drop == 0 {
		return false
	}
	if t.rng.Bool(t.drop) {
		t.fired++
		return true
	}
	return false
}

// FlightDelay returns the extra delay of a newly launched token batch
// (0 = on time).
func (t *TokenInjector) FlightDelay() int64 {
	if t.delay == 0 {
		return 0
	}
	if t.rng.Bool(t.delay) {
		t.fired++
		return t.delayCycles
	}
	return 0
}

// FlightDuplicated decides whether a newly launched token batch is
// duplicated in flight.
func (t *TokenInjector) FlightDuplicated() bool {
	if t.dup == 0 {
		return false
	}
	if t.rng.Bool(t.dup) {
		t.fired++
		return true
	}
	return false
}

// StaleTimeout is the balancer watchdog threshold in cycles.
func (t *TokenInjector) StaleTimeout() int64 { return t.staleTimeout }

// MaxRetries bounds retransmission attempts per token batch.
func (t *TokenInjector) MaxRetries() int { return t.maxRetries }

// Backoff returns the retransmit backoff before the given attempt
// (1-based), doubling per attempt: backoff, 2·backoff, 4·backoff, …
func (t *TokenInjector) Backoff(attempt int) int64 {
	if attempt < 1 {
		attempt = 1
	}
	if attempt > 32 {
		attempt = 32
	}
	return t.backoff << (attempt - 1)
}

// Fired returns how many token faults fired.
func (t *TokenInjector) Fired() int64 { return t.fired }

// LinkInjector decides the NoC link faults: transient stalls and detected
// flit corruption (handled by retransmission).
type LinkInjector struct {
	rng         *xrand.Rand
	stall       float64
	stallCycles int64
	corrupt     float64
	fired       int64
}

// Stall returns the stall duration injected into one link traversal
// (0 = none).
func (l *LinkInjector) Stall() int64 {
	if l.stall == 0 {
		return 0
	}
	if l.rng.Bool(l.stall) {
		l.fired++
		return l.stallCycles
	}
	return 0
}

// Corrupt decides whether one link traversal suffers detected flit
// corruption and must retransmit.
func (l *LinkInjector) Corrupt() bool {
	if l.corrupt == 0 {
		return false
	}
	if l.rng.Bool(l.corrupt) {
		l.fired++
		return true
	}
	return false
}

// Fired returns how many link faults fired.
func (l *LinkInjector) Fired() int64 { return l.fired }

// SensorInjector decides the power-sensor faults: white noise plus a
// bounded random-walk drift. The per-core drift state lives with the sensor
// model (power.NoisySensor); this stream only samples the steps.
type SensorInjector struct {
	rng      *xrand.Rand
	noise    float64
	driftMax float64
	fired    int64
}

// driftStepFrac is the random-walk step as a fraction of the drift bound:
// a sensor wanders across its full drift range in the order of a thousand
// samples, slow against the DVFS window but fast against a full run.
const driftStepFrac = 1.0 / 512

// Factor returns the multiplicative reading error for one sensor sample,
// advancing the caller's drift state. With zero noise and drift the factor
// is exactly 1.
func (s *SensorInjector) Factor(drift *float64) float64 {
	if s.noise == 0 && s.driftMax == 0 {
		return 1
	}
	s.fired++
	if s.driftMax > 0 {
		*drift += (s.rng.Float64()*2 - 1) * s.driftMax * driftStepFrac
		if *drift > s.driftMax {
			*drift = s.driftMax
		} else if *drift < -s.driftMax {
			*drift = -s.driftMax
		}
	}
	f := 1 + *drift
	if s.noise > 0 {
		f += (s.rng.Float64()*2 - 1) * s.noise
	}
	if f < 0 {
		f = 0
	}
	return f
}

// Fired returns how many perturbed sensor samples were produced.
func (s *SensorInjector) Fired() int64 { return s.fired }

// DVFSInjector decides DVFS-transition glitches.
type DVFSInjector struct {
	rng    *xrand.Rand
	glitch float64
	fired  int64
}

// Glitch decides whether one attempted mode transition glitches.
func (d *DVFSInjector) Glitch() bool {
	if d.glitch == 0 {
		return false
	}
	if d.rng.Bool(d.glitch) {
		d.fired++
		return true
	}
	return false
}

// Fired returns how many transition glitches fired.
func (d *DVFSInjector) Fired() int64 { return d.fired }
