package fault

import "flag"

// Flag is a flag.Value for -faults flags in tools that drive the internal
// engine directly (ptbsweep, ptbreport). Spec stays nil until the flag is
// set, preserving the nil-vs-zero-spec distinction.
type Flag struct {
	// Spec is the parsed spec, nil when the flag was never set.
	Spec *Spec
}

// String renders the current spec ("" when unset).
func (f *Flag) String() string {
	if f == nil || f.Spec == nil {
		return ""
	}
	return f.Spec.String()
}

// Set implements flag.Value via Parse.
func (f *Flag) Set(in string) error {
	s, err := Parse(in)
	if err != nil {
		return err
	}
	f.Spec = &s
	return nil
}

var _ flag.Value = (*Flag)(nil)
