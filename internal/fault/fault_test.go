package fault

import (
	"errors"
	"math"
	"testing"
)

func TestParseEmptyIsZero(t *testing.T) {
	for _, in := range []string{"", "   "} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if !s.Zero() {
			t.Fatalf("Parse(%q) = %+v, want zero spec", in, s)
		}
		if got := s.String(); got != "" {
			t.Fatalf("zero spec String() = %q, want empty", got)
		}
	}
}

func TestParseFull(t *testing.T) {
	in := "seed=42, drop=0.25, delay=0.1, dup=0.05, delaycycles=32, stale=128," +
		" retries=5, backoff=4, stall=0.2, stallcycles=8, corrupt=0.01," +
		" noise=0.03, drift=0.02, glitch=0.15"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 42, TokenDrop: 0.25, TokenDelay: 0.1, TokenDup: 0.05,
		TokenDelayCycles: 32, StaleTimeout: 128, MaxRetries: 5, RetryBackoff: 4,
		LinkStall: 0.2, LinkStallCycles: 8, FlitCorrupt: 0.01,
		SensorNoise: 0.03, SensorDrift: 0.02, DVFSGlitch: 0.15,
	}
	if s != want {
		t.Fatalf("Parse mismatch:\n got  %+v\n want %+v", s, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"drop",                // no '='
		"bogus=1",             // unknown key
		"drop=2",              // rate out of range
		"drop=-0.1",           // negative rate
		"drop=NaN",            // NaN rate
		"drop=x",              // malformed float
		"seed=-1",             // negative seed
		"drop=0.1,drop=0.2",   // repeated key
		"drop=0.1,,stall=0.2", // empty clause
	} {
		if _, err := Parse(in); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) err = %v, want ErrBadSpec", in, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Seed: 7, TokenDrop: 0.5},
		{TokenDrop: 0.1, TokenDelay: 0.2, TokenDup: 0.3, TokenDelayCycles: 9,
			StaleTimeout: -1, MaxRetries: -2, RetryBackoff: 3,
			LinkStall: 0.4, LinkStallCycles: 5, FlitCorrupt: 0.6,
			SensorNoise: 0.7, SensorDrift: 0.8, DVFSGlitch: 0.9, Seed: 123},
	}
	for _, s := range specs {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("round-trip Parse(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip via %q:\n got  %+v\n want %+v", s.String(), got, s)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	bad := []Spec{
		{TokenDrop: 1.5},
		{TokenDelay: -0.1},
		{SensorNoise: math.NaN()},
		{DVFSGlitch: math.Inf(1)},
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Validate(%+v) = %v, want ErrBadSpec", s, err)
		}
	}
}

func TestDefaultsResolution(t *testing.T) {
	d := Spec{}.withDefaults()
	if d.StaleTimeout != DefaultStaleTimeout || d.MaxRetries != DefaultMaxRetries ||
		d.RetryBackoff != DefaultRetryBackoff ||
		d.TokenDelayCycles != DefaultTokenDelayCycles ||
		d.LinkStallCycles != DefaultLinkStallCycles {
		t.Fatalf("zero-field defaults not applied: %+v", d)
	}
	off := Spec{StaleTimeout: -1, MaxRetries: -1, TokenDelayCycles: -1, LinkStallCycles: -1}.withDefaults()
	if off.StaleTimeout != neverStale {
		t.Fatalf("negative StaleTimeout should disable the watchdog, got %d", off.StaleTimeout)
	}
	if off.MaxRetries != 0 {
		t.Fatalf("negative MaxRetries should mean no retries, got %d", off.MaxRetries)
	}
	if off.TokenDelayCycles != 0 || off.LinkStallCycles != 0 {
		t.Fatalf("negative cycle params should mean zero-length faults: %+v", off)
	}
}

// TestDeterminism: two injectors with the same spec produce identical
// decision sequences across all domains.
func TestDeterminism(t *testing.T) {
	spec := Spec{Seed: 99, TokenDrop: 0.3, TokenDelay: 0.2, TokenDup: 0.1,
		LinkStall: 0.25, FlitCorrupt: 0.15, SensorNoise: 0.05,
		SensorDrift: 0.02, DVFSGlitch: 0.4}
	a, b := NewInjector(spec), NewInjector(spec)
	var da, db float64
	for i := 0; i < 2000; i++ {
		if a.Token().ReportLost() != b.Token().ReportLost() ||
			a.Token().FlightDropped() != b.Token().FlightDropped() ||
			a.Token().FlightDelay() != b.Token().FlightDelay() ||
			a.Token().FlightDuplicated() != b.Token().FlightDuplicated() ||
			a.Link().Stall() != b.Link().Stall() ||
			a.Link().Corrupt() != b.Link().Corrupt() ||
			a.Sensor().Factor(&da) != b.Sensor().Factor(&db) ||
			a.DVFS().Glitch() != b.DVFS().Glitch() {
			t.Fatalf("decision divergence at step %d", i)
		}
	}
	if a.Fired() != b.Fired() {
		t.Fatalf("fired counts diverge: %d vs %d", a.Fired(), b.Fired())
	}
	if a.Fired() == 0 {
		t.Fatal("no faults fired over 2000 steps at these rates")
	}
}

// TestDomainIndependence: changing one domain's rate must not shift another
// domain's decision stream (each domain owns an independent split).
func TestDomainIndependence(t *testing.T) {
	base := Spec{Seed: 5, LinkStall: 0.5}
	more := base
	more.TokenDrop = 0.9 // heavy traffic on the token stream
	a, b := NewInjector(base), NewInjector(more)
	for i := 0; i < 500; i++ {
		b.Token().ReportLost() // consume token-domain entropy in b only
		if a.Link().Stall() != b.Link().Stall() {
			t.Fatalf("link stream perturbed by token-domain rate at step %d", i)
		}
	}
}

// TestZeroRatesNeverFire: a zero spec's injectors never fire and the sensor
// factor is exactly 1 (multiplicative identity, so perturbed readings are
// bit-identical to clean ones).
func TestZeroRatesNeverFire(t *testing.T) {
	inj := NewInjector(Spec{Seed: 1})
	var drift float64
	for i := 0; i < 1000; i++ {
		if inj.Token().ReportLost() || inj.Token().FlightDropped() ||
			inj.Token().FlightDelay() != 0 || inj.Token().FlightDuplicated() ||
			inj.Link().Stall() != 0 || inj.Link().Corrupt() ||
			inj.DVFS().Glitch() {
			t.Fatalf("zero-rate injector fired at step %d", i)
		}
		if f := inj.Sensor().Factor(&drift); f != 1 {
			t.Fatalf("zero-rate sensor factor = %v, want exactly 1", f)
		}
	}
	if inj.Fired() != 0 {
		t.Fatalf("zero-rate injector counted %d fires", inj.Fired())
	}
}

func TestSensorDriftBounded(t *testing.T) {
	inj := NewInjector(Spec{Seed: 3, SensorDrift: 0.1})
	var drift float64
	for i := 0; i < 100000; i++ {
		f := inj.Sensor().Factor(&drift)
		if math.Abs(drift) > 0.1+1e-12 {
			t.Fatalf("drift %v escaped ±0.1 at step %d", drift, i)
		}
		if f < 0 {
			t.Fatalf("negative sensor factor %v", f)
		}
	}
	if drift == 0 {
		t.Fatal("drift never moved")
	}
}

func TestBackoffDoubles(t *testing.T) {
	inj := NewInjector(Spec{TokenDrop: 0.1}) // defaults: backoff 8
	tok := inj.Token()
	want := []int64{8, 8, 16, 32, 64}
	for i, w := range want {
		if got := tok.Backoff(i); got != w { // attempt 0 clamps to 1
			t.Fatalf("Backoff(%d) = %d, want %d", i, got, w)
		}
	}
	if got := tok.Backoff(100); got <= 0 {
		t.Fatalf("Backoff(100) overflowed to %d", got)
	}
}
