package fault

import "ptbsim/internal/ckpt"

// HashState folds all four injection domains' rng streams and fired
// counters into h for checkpoint digests — the injector is deterministic
// state like any other component. Nil-safe: a run without fault
// injection hashes nothing. The field order is append-only.
func (i *Injector) HashState(h *ckpt.Hasher) {
	if i == nil {
		return
	}
	h.WriteU64(i.token.rng.State())
	h.WriteI64(i.token.fired)
	h.WriteU64(i.link.rng.State())
	h.WriteI64(i.link.fired)
	h.WriteU64(i.sensor.rng.State())
	h.WriteI64(i.sensor.fired)
	h.WriteU64(i.dvfs.rng.State())
	h.WriteI64(i.dvfs.fired)
}
