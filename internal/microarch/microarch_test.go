package microarch

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/cpu"
)

func TestForDistanceLadder(t *testing.T) {
	cases := []struct {
		d    float64
		want Level
	}{
		{-1, LevelNone}, {0, LevelNone}, {0.05, LevelFetchThrottle},
		{0.10, LevelFetchThrottle}, {0.2, LevelDecodeThrottle},
		{0.4, LevelIssueThrottle}, {0.9, LevelFetchGate}, {5, LevelFetchGate},
	}
	for _, c := range cases {
		if got := ForDistance(c.d); got != c.want {
			t.Fatalf("ForDistance(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestForDistanceMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return ForDistance(a) <= ForDistance(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRoundTrips(t *testing.T) {
	var k cpu.Knobs
	for l := LevelNone; l <= LevelFetchGate; l++ {
		Apply(&k, l)
		if got := LevelOf(&k); got != l {
			t.Fatalf("LevelOf(Apply(%v)) = %v", l, got)
		}
	}
}

func TestApplyNoneClears(t *testing.T) {
	k := cpu.Knobs{FetchGate: true, FetchWidth: 1}
	Apply(&k, LevelNone)
	if k != (cpu.Knobs{}) {
		t.Fatalf("LevelNone left knobs %+v", k)
	}
}

func TestStrongerLevelsThrottleMore(t *testing.T) {
	var a, b cpu.Knobs
	Apply(&a, LevelFetchThrottle)
	Apply(&b, LevelIssueThrottle)
	if b.FetchWidth >= a.FetchWidth {
		t.Fatal("issue-throttle does not fetch narrower than fetch-throttle")
	}
	var g cpu.Knobs
	Apply(&g, LevelFetchGate)
	if !g.FetchGate {
		t.Fatal("fetch gate not set")
	}
}
