// Package microarch implements the fine-grained microarchitectural
// power-saving techniques of the two-level approach (Cebrián et al. [2],
// §II.B): a ladder of pipeline throttles selected by how far the core is
// over its local power budget. Unlike DVFS these act on the very next cycle
// and target only the offending core, which is what lets the 2-level and
// PTB schemes clip power spikes that DVFS's windows cannot see.
package microarch

import "ptbsim/internal/cpu"

// Level is a rung on the technique ladder, weakest to strongest.
type Level int

const (
	// LevelNone removes all throttles.
	LevelNone Level = iota
	// LevelFetchThrottle halves fetch bandwidth.
	LevelFetchThrottle
	// LevelDecodeThrottle additionally halves decode/dispatch.
	LevelDecodeThrottle
	// LevelIssueThrottle drops fetch to 1 and halves issue.
	LevelIssueThrottle
	// LevelFetchGate stops fetch entirely until pressure subsides.
	LevelFetchGate

	numLevels
)

// NumLevels is the number of rungs including LevelNone.
const NumLevels = int(numLevels)

var levelNames = [...]string{
	LevelNone:           "none",
	LevelFetchThrottle:  "fetch-throttle",
	LevelDecodeThrottle: "decode-throttle",
	LevelIssueThrottle:  "issue-throttle",
	LevelFetchGate:      "fetch-gate",
}

// String names the level.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return "level?"
}

// ForDistance maps the fractional overshoot above the local budget
// ((est-budget)/budget) to a technique, mirroring the distance-based
// selection of [2]: small overshoots get gentle fetch throttling, large
// spikes get the fetch gate.
func ForDistance(d float64) Level {
	switch {
	case d <= 0:
		return LevelNone
	case d <= 0.10:
		return LevelFetchThrottle
	case d <= 0.25:
		return LevelDecodeThrottle
	case d <= 0.50:
		return LevelIssueThrottle
	default:
		return LevelFetchGate
	}
}

// Apply configures a core's knobs for the level. Width values assume the
// Table-1 4-wide machine. Issue width is throttled on every rung: in this
// power model (as in a real core) the issue stage — wakeup, register
// reads, functional units — is where per-cycle spikes originate, so
// fetch-only throttles would act a pipeline-depth too late.
func Apply(k *cpu.Knobs, l Level) {
	switch l {
	case LevelNone:
		*k = cpu.Knobs{}
	case LevelFetchThrottle:
		*k = cpu.Knobs{FetchWidth: 2, IssueWidth: 3}
	case LevelDecodeThrottle:
		*k = cpu.Knobs{FetchWidth: 2, DecodeWidth: 2, IssueWidth: 2}
	case LevelIssueThrottle:
		*k = cpu.Knobs{FetchWidth: 1, DecodeWidth: 1, IssueWidth: 1}
	case LevelFetchGate:
		*k = cpu.Knobs{FetchGate: true, IssueWidth: 1}
	}
}

// LevelOf reports the level a knob block corresponds to (for tests and
// stats).
func LevelOf(k *cpu.Knobs) Level {
	switch {
	case k.FetchGate:
		return LevelFetchGate
	case k.FetchWidth == 1:
		return LevelIssueThrottle
	case k.DecodeWidth == 2:
		return LevelDecodeThrottle
	case k.FetchWidth == 2:
		return LevelFetchThrottle
	}
	return LevelNone
}
