// Package cache implements the simulated memory hierarchy: private L1
// instruction and data caches per core and a distributed shared L2 whose
// banks double as directory home nodes for a MOESI coherence protocol
// (paper Table 1: MOESI, 64KB 2-way L1s at 1 cycle, 1MB/core 4-way unified
// L2 at 12 cycles, 300-cycle memory).
//
// The protocol is a three-hop directory protocol in the style of GEMS/Ruby:
// the home directory is the per-line serialization point (one transaction in
// flight per line; later requests queue), owners forward data directly to
// requesters, sharers acknowledge invalidations directly to the requester,
// and the requester unblocks the directory when its transaction completes.
// Evictions of owned lines are blocking (writeback buffer until PutAck) so
// forwarded requests always find data.
package cache

// CacheID identifies one L1 cache: core*2 for the data cache, core*2+1 for
// the instruction cache. Directory sharer sets are bitmasks over CacheIDs.
type CacheID int

// Core returns the core (tile/node) hosting the cache.
func (c CacheID) Core() int { return int(c) / 2 }

// IsInst reports whether the ID names an instruction cache.
func (c CacheID) IsInst() bool { return int(c)%2 == 1 }

// DataCache returns the data-cache ID of a core.
func DataCache(core int) CacheID { return CacheID(core * 2) }

// InstCache returns the instruction-cache ID of a core.
func InstCache(core int) CacheID { return CacheID(core*2 + 1) }

// Message flit sizes: a control message is header-only; a data message
// carries a 64-byte line.
const (
	ctrlFlits = 2
	dataFlits = 18
)

// putKind distinguishes eviction notices.
type putKind uint8

const (
	putS putKind = iota // sharer eviction, fire-and-forget
	putE                // exclusive clean eviction, blocking, no data
	putM                // dirty eviction (M or O), blocking, carries data
)

// Requests to the home directory.

type msgGetS struct {
	req  CacheID
	line uint64
}

type msgGetX struct {
	req  CacheID
	line uint64
}

type msgPut struct {
	req  CacheID
	line uint64
	kind putKind
}

type msgUnblock struct {
	req  CacheID
	line uint64
}

// Responses and forwards from the home directory.

// msgData carries the line to the requester from the home bank.
type msgData struct {
	line uint64
	dest CacheID
	// excl grants exclusive ownership (E for GetS on an uncached line, M
	// for GetX).
	excl bool
	// acks is the number of InvAcks the requester must collect before the
	// transaction completes.
	acks int
	// noData marks an upgrade response: the requester already holds the
	// line in S and only needed permissions.
	noData bool
}

// msgAckCount tells a GetX requester how many InvAcks to expect when the
// data itself comes from the previous owner (three-hop transfer).
type msgAckCount struct {
	line uint64
	dest CacheID
	acks int
}

// msgFwdGetS asks the current owner to send the line to req and downgrade.
type msgFwdGetS struct {
	line  uint64
	owner CacheID
	req   CacheID
}

// msgFwdGetX asks the current owner to send the line to req and invalidate.
type msgFwdGetX struct {
	line  uint64
	owner CacheID
	req   CacheID
}

// msgInv asks a sharer to invalidate and acknowledge to req.
type msgInv struct {
	line   uint64
	sharer CacheID
	req    CacheID
}

// msgPutAck completes a blocking eviction. stale means the directory no
// longer considered the evictor the owner (its ownership was transferred by
// an earlier-serialized transaction); the evictor just drops its buffer.
type msgPutAck struct {
	line  uint64
	dest  CacheID
	stale bool
}

// Cache-to-cache messages.

// msgOwnerData carries the line from the previous owner to the requester.
type msgOwnerData struct {
	line uint64
	dest CacheID
	// excl: the requester becomes exclusive owner (FwdGetX path).
	excl bool
}

// msgInvAck acknowledges an invalidation to the requester.
type msgInvAck struct {
	line uint64
	dest CacheID
}
