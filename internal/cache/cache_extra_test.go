package cache

import (
	"testing"

	"ptbsim/internal/eventq"
	"ptbsim/internal/mesh"
	"ptbsim/internal/power"
	"ptbsim/internal/xrand"
)

func TestProbeHitAndMiss(t *testing.T) {
	r := newRig(2)
	if r.h.L1D[0].Probe(0x1000) {
		t.Fatal("probe hit on a cold cache")
	}
	done := false
	r.h.Read(0, 0x1000, func() { done = true })
	r.run(t, 20000)
	if !done {
		t.Fatal("fill failed")
	}
	if !r.h.L1D[0].Probe(0x1000) {
		t.Fatal("probe missed a resident line")
	}
	// Probe must not have side effects on a miss: the line is still absent
	// elsewhere.
	if r.h.L1D[1].Probe(0x1000) {
		t.Fatal("probe hit on the wrong core")
	}
}

func TestProbeSkipsWritebackBuffer(t *testing.T) {
	r := newRig(2)
	wrote := false
	r.h.Write(0, 0x2000, func() { wrote = true })
	r.run(t, 20000)
	if !wrote {
		t.Fatal("write failed")
	}
	// Force the dirty line into the writeback buffer.
	const stride = 512 * 64
	for i := 1; i <= 2; i++ {
		r.h.Read(0, uint64(0x2000+i*stride), func() {})
	}
	// Immediately (before the PutAck), a probe of the evicting line must
	// miss (the line is in the buffer, not the array).
	if r.h.L1D[0].Probe(0x2000) {
		// Depending on event interleaving the eviction may not have started
		// yet; drain and re-check the steady state instead of failing hard.
		r.run(t, 20000)
		if _, ok := r.h.L1D[0].wb[0x2000]; ok {
			t.Fatal("probe hit a line sitting in the writeback buffer")
		}
	}
	r.run(t, 20000)
}

func TestL1IAndL1DIndependent(t *testing.T) {
	r := newRig(2)
	// The same line fetched as instructions and read as data lives in both
	// L1s as shared copies.
	n := 0
	r.h.Fetch(0, 0x3000, func() { n++ })
	r.run(t, 20000)
	r.h.Read(0, 0x3000, func() { n++ })
	r.run(t, 20000)
	if n != 2 {
		t.Fatalf("%d of 2 accesses completed", n)
	}
	if r.h.L1I[0].find(0x3000) == nil || r.h.L1D[0].find(0x3000) == nil {
		t.Fatal("line not present in both L1s")
	}
	// A remote write must invalidate both copies.
	wrote := false
	r.h.Write(1, 0x3000, func() { wrote = true })
	r.run(t, 20000)
	if !wrote {
		t.Fatal("remote write failed")
	}
	if r.h.L1I[0].find(0x3000) != nil || r.h.L1D[0].find(0x3000) != nil {
		t.Fatal("write did not invalidate both L1 copies")
	}
}

func TestWritebackBufferRetries(t *testing.T) {
	r := newRig(2)
	wrote := false
	r.h.Write(0, 0x4000, func() { wrote = true })
	r.run(t, 20000)
	if !wrote {
		t.Fatal("initial write failed")
	}
	// Evict it, then access the same line again while the writeback is in
	// flight: the access must be deferred and still complete.
	const stride = 512 * 64
	reread := false
	for i := 1; i <= 2; i++ {
		r.h.Read(0, uint64(0x4000+i*stride), func() {})
	}
	r.h.Read(0, 0x4000, func() { reread = true })
	r.run(t, 50000)
	if !reread {
		t.Fatal("access to an evicting line never completed")
	}
}

func TestDirectoryQueueFairness(t *testing.T) {
	// Hammer one line with writes from all cores; every writer must
	// eventually win (FIFO queueing at the directory, no starvation).
	r := newRig(4)
	wins := make([]int, 4)
	var issue func(core, round int)
	issue = func(core, round int) {
		if round == 6 {
			return
		}
		r.h.Write(core, 0x5000, func() {
			wins[core]++
			issue(core, round+1)
		})
	}
	for c := 0; c < 4; c++ {
		issue(c, 0)
	}
	r.run(t, 2_000_000)
	for c, w := range wins {
		if w != 6 {
			t.Fatalf("core %d completed %d of 6 writes", c, w)
		}
	}
}

func TestUncontendedLatencies(t *testing.T) {
	// A local L1 hit takes 1 cycle; an L2 hit takes tens; DRAM hundreds.
	r := newRig(2)
	var fillAt int64
	r.h.Read(0, 0x6000, func() { fillAt = r.q.Now() })
	r.run(t, 20000)
	if fillAt < 300 {
		t.Fatalf("cold miss completed in %d cycles; DRAM is 300", fillAt)
	}
	start := r.q.Now()
	var hitAt int64
	r.h.Read(0, 0x6000, func() { hitAt = r.q.Now() - start })
	r.run(t, 100)
	if hitAt != 1 {
		t.Fatalf("L1 hit latency %d, want 1", hitAt)
	}
}

func TestSharerCountTracking(t *testing.T) {
	r := newRig(4)
	for c := 0; c < 4; c++ {
		r.h.Read(c, 0x7000, func() {})
		r.run(t, 20000)
	}
	home := int((0x7000 / 64) % 4)
	e := r.h.Banks[home].entry(0x7000)
	// One owner (the first reader, downgraded to O) plus three sharers.
	n := 0
	for _, s := range e.sharerList() {
		_ = s
		n++
	}
	if e.state != dirOwned || n != 3 {
		t.Fatalf("directory state %v with %d sharers, want owned + 3 sharers", e.state, n)
	}
}

func TestEnergySeparatesL1IFromL1D(t *testing.T) {
	r := newRig(2)
	r.h.Fetch(0, 0x8000, func() {})
	r.run(t, 20000)
	if r.m.Count(0, power.EvL1I) == 0 {
		t.Fatal("instruction fetch charged no L1I energy")
	}
	if r.m.Count(0, power.EvL1DRead) != 0 {
		t.Fatal("instruction fetch charged L1D energy")
	}
}

func TestPrefetcherFetchesNextLine(t *testing.T) {
	q := &eventq.Queue{}
	m := power.NewMeter(2)
	net := mesh.New(2, q, m)
	h := NewHierarchy(2, q, m, net, Config{L1Prefetch: true})
	r := &rig{q: q, m: m, h: h}

	done := false
	r.h.Read(0, 0x9000, func() { done = true })
	r.run(t, 20000)
	if !done {
		t.Fatal("demand read failed")
	}
	issued, _ := r.h.L1D[0].PrefetchStats()
	if issued == 0 {
		t.Fatal("no prefetch issued on a demand miss")
	}
	// The next line should now be resident: reading it is a hit.
	hitsBefore := r.h.L1D[0].Hits()
	got := false
	r.h.Read(0, 0x9040, func() { got = true })
	r.run(t, 20000)
	if !got {
		t.Fatal("next-line read failed")
	}
	if r.h.L1D[0].Hits() != hitsBefore+1 {
		t.Fatal("next-line read did not hit the prefetched line")
	}
	_, useful := r.h.L1D[0].PrefetchStats()
	if useful == 0 {
		t.Fatal("useful prefetch not counted")
	}
}

func TestPrefetchStreamingSpeedup(t *testing.T) {
	// Streaming through lines must complete faster with prefetch on.
	runStream := func(pf bool) int64 {
		q := &eventq.Queue{}
		m := power.NewMeter(2)
		net := mesh.New(2, q, m)
		h := NewHierarchy(2, q, m, net, Config{L1Prefetch: pf})
		r := &rig{q: q, m: m, h: h}
		const lines = 64
		next := 0
		var step func()
		step = func() {
			next++
			if next >= lines {
				return
			}
			r.h.Read(0, uint64(0xA0000+next*64), step)
		}
		r.h.Read(0, 0xA0000, step)
		r.run(t, 2_000_000)
		if next < lines {
			t.Fatalf("stream incomplete: %d/%d", next, lines)
		}
		return r.q.Now()
	}
	off := runStream(false)
	on := runStream(true)
	if on >= off {
		t.Fatalf("prefetch did not speed up streaming: %d vs %d cycles", on, off)
	}
}

func TestPrefetchOffByDefault(t *testing.T) {
	r := newRig(2)
	r.h.Read(0, 0xB000, func() {})
	r.run(t, 20000)
	if issued, _ := r.h.L1D[0].PrefetchStats(); issued != 0 {
		t.Fatal("prefetcher active without being enabled")
	}
}

func TestInvariantsOnQuiescentSystem(t *testing.T) {
	r := newRig(4)
	// Mixed traffic, then drain and check.
	for c := 0; c < 4; c++ {
		r.h.Read(c, 0xC000, func() {})
		r.h.Write(c, uint64(0xD000+c*64), func() {})
	}
	r.run(t, 200000)
	if err := r.h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterTorture(t *testing.T) {
	r := newRig(4)
	rng := xrand.New(99)
	for i := 0; i < 600; i++ {
		core := rng.Intn(4)
		line := uint64(0xE000 + rng.Intn(12)*64)
		if rng.Bool(0.5) {
			r.h.Write(core, line, func() {})
		} else {
			r.h.Read(core, line, func() {})
		}
		if rng.Bool(0.15) {
			r.q.RunUntil(r.q.Now() + int64(rng.Intn(300)))
		}
	}
	r.run(t, 3_000_000)
	if err := r.h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
