package cache

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/eventq"
	"ptbsim/internal/mesh"
	"ptbsim/internal/power"
	"ptbsim/internal/xrand"
)

// rig bundles a hierarchy with its queue for tests.
type rig struct {
	q *eventq.Queue
	m *power.Meter
	h *Hierarchy
}

func newRig(n int) *rig {
	q := &eventq.Queue{}
	m := power.NewMeter(n)
	net := mesh.New(n, q, m)
	h := NewHierarchy(n, q, m, net, Config{})
	return &rig{q: q, m: m, h: h}
}

// run drives the queue until idle or limit cycles past the current time.
func (r *rig) run(t *testing.T, limit int64) {
	t.Helper()
	start := r.q.Now()
	for c := start; c < start+limit; c += 16 {
		r.q.RunUntil(c)
		if r.q.Empty() {
			return
		}
	}
	r.q.RunUntil(start + limit)
	if !r.q.Empty() {
		t.Fatalf("memory system did not quiesce within %d cycles", limit)
	}
}

func TestColdReadThenHit(t *testing.T) {
	r := newRig(2)
	var fills int
	r.h.Read(0, 0x1000, func() { fills++ })
	r.run(t, 10000)
	if fills != 1 {
		t.Fatalf("cold read did not complete")
	}
	if r.h.L1D[0].Misses() != 1 {
		t.Fatalf("expected 1 miss, got %d", r.h.L1D[0].Misses())
	}
	// Second read hits.
	r.h.Read(0, 0x1008, func() { fills++ })
	r.run(t, 100)
	if fills != 2 || r.h.L1D[0].Hits() != 1 {
		t.Fatalf("second read should hit: hits=%d", r.h.L1D[0].Hits())
	}
}

func TestColdReadGrantsExclusive(t *testing.T) {
	r := newRig(2)
	done := false
	r.h.Read(0, 0x40, func() { done = true })
	r.run(t, 10000)
	if !done {
		t.Fatal("read did not complete")
	}
	l := r.h.L1D[0].find(0x40)
	if l == nil || l.state != l1E {
		t.Fatalf("cold read should install E, got %v", l)
	}
	// A write to the E line must be a silent hit.
	wrote := false
	r.h.Write(0, 0x40, func() { wrote = true })
	r.run(t, 100)
	if !wrote {
		t.Fatal("write to E line did not complete quickly")
	}
	if l := r.h.L1D[0].find(0x40); l.state != l1M || !l.dirty {
		t.Fatalf("silent upgrade failed: %+v", l)
	}
	if r.h.L1D[0].Misses() != 1 {
		t.Fatalf("silent upgrade should not miss (misses=%d)", r.h.L1D[0].Misses())
	}
}

func TestReadSharing(t *testing.T) {
	r := newRig(4)
	n := 0
	for c := 0; c < 4; c++ {
		r.h.Read(c, 0x2000, func() { n++ })
		r.run(t, 20000)
	}
	if n != 4 {
		t.Fatalf("only %d of 4 reads completed", n)
	}
	// First reader was E then downgraded to O by the forward; the rest are S.
	if l := r.h.L1D[0].find(0x2000); l == nil || l.state != l1O {
		t.Fatalf("first reader should be O after forwards, got %+v", l)
	}
	for c := 1; c < 4; c++ {
		if l := r.h.L1D[c].find(0x2000); l == nil || l.state != l1S {
			t.Fatalf("core %d should hold S, got %+v", c, l)
		}
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(4)
	for c := 0; c < 4; c++ {
		r.h.Read(c, 0x3000, func() {})
		r.run(t, 20000)
	}
	wrote := false
	r.h.Write(3, 0x3000, func() { wrote = true })
	r.run(t, 20000)
	if !wrote {
		t.Fatal("write did not complete")
	}
	for c := 0; c < 3; c++ {
		if l := r.h.L1D[c].find(0x3000); l != nil {
			t.Fatalf("core %d still holds the line after invalidation: %+v", c, l)
		}
	}
	if l := r.h.L1D[3].find(0x3000); l == nil || l.state != l1M {
		t.Fatalf("writer should hold M, got %+v", l)
	}
}

func TestWritePingPong(t *testing.T) {
	r := newRig(2)
	const rounds = 20
	done := 0
	var step func(i int)
	step = func(i int) {
		if i == rounds {
			return
		}
		r.h.Write(i%2, 0x4000, func() {
			done++
			step(i + 1)
		})
	}
	step(0)
	r.run(t, 200000)
	if done != rounds {
		t.Fatalf("ping-pong completed %d of %d writes", done, rounds)
	}
	// Ownership ends at core (rounds-1)%2; the other core must not hold it.
	owner := (rounds - 1) % 2
	if l := r.h.L1D[owner].find(0x4000); l == nil || l.state != l1M {
		t.Fatalf("final owner state wrong: %+v", l)
	}
	if l := r.h.L1D[1-owner].find(0x4000); l != nil {
		t.Fatalf("loser still holds line: %+v", l)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(2)
	r.h.Read(0, 0x5000, func() {})
	r.run(t, 20000)
	r.h.Read(1, 0x5000, func() {})
	r.run(t, 20000)
	// Core 1 holds S; its write is an upgrade (no data transfer needed).
	wrote := false
	r.h.Write(1, 0x5000, func() { wrote = true })
	r.run(t, 20000)
	if !wrote {
		t.Fatal("upgrade did not complete")
	}
	if l := r.h.L1D[1].find(0x5000); l == nil || l.state != l1M {
		t.Fatalf("upgrader should be M, got %+v", l)
	}
	if l := r.h.L1D[0].find(0x5000); l != nil {
		t.Fatalf("previous owner still holds line after invalidation: %+v", l)
	}
}

func TestDirtyOwnerForwardsToReader(t *testing.T) {
	r := newRig(2)
	r.h.Write(0, 0x6000, func() {})
	r.run(t, 20000)
	got := false
	r.h.Read(1, 0x6000, func() { got = true })
	r.run(t, 20000)
	if !got {
		t.Fatal("read from dirty owner did not complete")
	}
	if l := r.h.L1D[0].find(0x6000); l == nil || l.state != l1O {
		t.Fatalf("dirty owner should downgrade to O, got %+v", l)
	}
	if l := r.h.L1D[1].find(0x6000); l == nil || l.state != l1S {
		t.Fatalf("reader should be S, got %+v", l)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	r := newRig(2)
	// Dirty a line, then stream enough conflicting lines through the same
	// set to force its eviction. Set count = 64KB/(2*64) = 512 sets; lines
	// 512*64 bytes apart collide.
	const stride = 512 * 64
	wrote := false
	r.h.Write(0, 0x8000, func() { wrote = true })
	r.run(t, 20000)
	if !wrote {
		t.Fatal("initial write did not complete")
	}
	for i := 1; i <= 2; i++ {
		r.h.Read(0, uint64(0x8000+i*stride), func() {})
		r.run(t, 20000)
	}
	if l := r.h.L1D[0].find(0x8000); l != nil {
		t.Fatalf("line should have been evicted, got %+v", l)
	}
	// The writeback buffer must have drained (PutAck processed).
	if len(r.h.L1D[0].wb) != 0 {
		t.Fatalf("writeback buffer not drained: %d entries", len(r.h.L1D[0].wb))
	}
	// Re-reading must still work (data now at home).
	got := false
	r.h.Read(1, 0x8000, func() { got = true })
	r.run(t, 20000)
	if !got {
		t.Fatal("read after writeback failed")
	}
}

func TestInstructionSharing(t *testing.T) {
	r := newRig(4)
	n := 0
	for c := 0; c < 4; c++ {
		r.h.Fetch(c, 0x100040, func() { n++ })
		r.run(t, 20000)
	}
	if n != 4 {
		t.Fatalf("%d of 4 fetches completed", n)
	}
	// All four L1Is end up with a copy.
	for c := 1; c < 4; c++ {
		if l := r.h.L1I[c].find(0x100040); l == nil {
			t.Fatalf("core %d L1I missing line", c)
		}
	}
}

func TestL2CachesEvictedData(t *testing.T) {
	r := newRig(2)
	r.h.Write(0, 0x9000, func() {})
	r.run(t, 20000)
	const stride = 512 * 64
	for i := 1; i <= 2; i++ {
		r.h.Read(0, uint64(0x9000+i*stride), func() {})
		r.run(t, 20000)
	}
	// 0x9000 was written back to its home bank's L2. A re-read must hit L2
	// (no new memory access).
	memBefore := r.h.Mem.Accesses()
	got := false
	r.h.Read(0, 0x9000, func() { got = true })
	r.run(t, 20000)
	if !got {
		t.Fatal("re-read failed")
	}
	if r.h.Mem.Accesses() != memBefore {
		t.Fatalf("re-read went to memory (%d -> %d accesses); expected L2 hit",
			memBefore, r.h.Mem.Accesses())
	}
}

func TestConcurrentReadersAndOneWriter(t *testing.T) {
	r := newRig(8)
	completed := 0
	for c := 0; c < 8; c++ {
		if c == 3 {
			r.h.Write(c, 0xA000, func() { completed++ })
		} else {
			r.h.Read(c, 0xA000, func() { completed++ })
		}
	}
	r.run(t, 100000)
	if completed != 8 {
		t.Fatalf("%d of 8 concurrent accesses completed", completed)
	}
}

func TestMSHRMerging(t *testing.T) {
	r := newRig(2)
	n := 0
	// Four loads to the same missing line must merge into one transaction.
	for i := 0; i < 4; i++ {
		r.h.Read(0, uint64(0xB000+i*8), func() { n++ })
	}
	if out := r.h.L1D[0].OutstandingMisses(); out != 1 {
		t.Fatalf("outstanding misses = %d, want 1 (merged)", out)
	}
	r.run(t, 20000)
	if n != 4 {
		t.Fatalf("%d of 4 merged loads completed", n)
	}
	if r.h.L1D[0].Misses() != 4 {
		t.Fatalf("miss count should count all merged accesses, got %d", r.h.L1D[0].Misses())
	}
}

func TestMSHROverflowQueues(t *testing.T) {
	r := newRig(2)
	n := 0
	// More distinct missing lines than MSHRs.
	for i := 0; i < DefaultMSHRs+4; i++ {
		r.h.Read(0, uint64(0x10000+i*64), func() { n++ })
	}
	if out := r.h.L1D[0].OutstandingMisses(); out != DefaultMSHRs {
		t.Fatalf("outstanding misses = %d, want %d", out, DefaultMSHRs)
	}
	r.run(t, 100000)
	if n != DefaultMSHRs+4 {
		t.Fatalf("%d of %d loads completed", n, DefaultMSHRs+4)
	}
}

func TestRandomizedCoherenceTorture(t *testing.T) {
	// Many cores hammer a small set of lines with random reads/writes. The
	// protocol must complete every access and leave at most one exclusive
	// owner (or only sharers) per line.
	f := func(seed uint64) bool {
		const n = 4
		r := newRig(n)
		rng := xrand.New(seed)
		issued, completed := 0, 0
		for i := 0; i < 300; i++ {
			core := rng.Intn(n)
			line := uint64(0xC000 + rng.Intn(8)*64)
			issued++
			if rng.Bool(0.4) {
				r.h.Write(core, line, func() { completed++ })
			} else {
				r.h.Read(core, line, func() { completed++ })
			}
			// Occasionally let the system drain a bit.
			if rng.Bool(0.2) {
				r.q.RunUntil(r.q.Now() + int64(rng.Intn(400)))
			}
		}
		for c := int64(0); c < 2_000_000 && !r.q.Empty(); c += 64 {
			r.q.RunUntil(r.q.Now() + 64)
		}
		if completed != issued {
			return false
		}
		// Coherence invariant: per line, either one owner (E/M/O) plus
		// possibly sharers, or only sharers; never two E/M owners.
		for l := 0; l < 8; l++ {
			line := uint64(0xC000 + l*64)
			excl := 0
			for c := 0; c < n; c++ {
				if ln := r.h.L1D[c].find(line); ln != nil {
					if ln.state == l1E || ln.state == l1M {
						excl++
					}
				}
			}
			if excl > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	r := newRig(2)
	r.h.Read(0, 0xD000, func() {})
	r.run(t, 20000)
	if r.m.Count(0, power.EvL1DRead) == 0 {
		t.Fatal("no L1D read energy charged")
	}
	home := int((0xD000 / 64) % 2)
	if r.m.Count(home, power.EvDir) == 0 {
		t.Fatal("no directory energy charged")
	}
	if r.h.Mem.Accesses() != 1 {
		t.Fatalf("memory accesses = %d, want 1", r.h.Mem.Accesses())
	}
}

func TestCacheIDs(t *testing.T) {
	if DataCache(3).Core() != 3 || InstCache(3).Core() != 3 {
		t.Fatal("CacheID core mapping broken")
	}
	if DataCache(3).IsInst() || !InstCache(3).IsInst() {
		t.Fatal("CacheID kind mapping broken")
	}
}
