package cache

import "ptbsim/internal/ckpt"

// HashState folds the whole memory system into h for checkpoint digests.
// Map-shaped state (MSHRs, writebacks, directory entries) is walked in
// sorted line order; waiter/retry callbacks are represented by their
// counts and flags (the closures themselves re-form deterministically on
// replay). The field order is append-only (DESIGN.md §14).
func (hr *Hierarchy) HashState(h *ckpt.Hasher) {
	h.WriteInt(hr.N)
	for _, l1 := range hr.L1I {
		l1.hashState(h)
	}
	for _, l1 := range hr.L1D {
		l1.hashState(h)
	}
	for _, b := range hr.Banks {
		b.hashState(h)
	}
	hr.Mem.HashState(h)
}

func (c *L1) hashState(h *ckpt.Hasher) {
	h.WriteInt(int(c.id))
	h.WriteU64(c.tick)
	for _, set := range c.lines {
		for i := range set {
			ln := &set[i]
			h.WriteU64(ln.tag)
			h.WriteInt(int(ln.state))
			h.WriteBool(ln.dirty)
			h.WriteBool(ln.prefetched)
			h.WriteBool(ln.pinned)
			h.WriteU64(ln.lru)
		}
	}
	h.WriteInt(len(c.mshrs))
	for _, line := range ckpt.SortedKeys(c.mshrs) {
		m := c.mshrs[line]
		h.WriteU64(m.line)
		h.WriteBool(m.wantX)
		h.WriteInt(len(m.waiting))
		for i := range m.waiting {
			h.WriteBool(m.waiting[i].write)
		}
		h.WriteBool(m.prefetch)
		h.WriteBool(m.haveData)
		h.WriteBool(m.noData)
		h.WriteBool(m.excl)
		h.WriteBool(m.acksKnown)
		h.WriteInt(m.acksNeed)
		h.WriteInt(m.acksGot)
	}
	h.WriteInt(len(c.pending))
	for i := range c.pending {
		h.WriteU64(c.pending[i].addr)
		h.WriteBool(c.pending[i].write)
	}
	h.WriteInt(len(c.wb))
	for _, line := range ckpt.SortedKeys(c.wb) {
		w := c.wb[line]
		h.WriteU64(w.line)
		h.WriteBool(w.dirty)
		h.WriteInt(len(w.retry))
		for i := range w.retry {
			h.WriteU64(w.retry[i].addr)
			h.WriteBool(w.retry[i].write)
		}
	}
	h.WriteI64(c.hits)
	h.WriteI64(c.misses)
	h.WriteI64(c.prefetchIssued)
	h.WriteI64(c.prefetchUseful)
}

func (b *HomeBank) hashState(h *ckpt.Hasher) {
	h.WriteInt(b.node)
	h.WriteInt(len(b.lines))
	for _, line := range ckpt.SortedKeys(b.lines) {
		e := b.lines[line]
		h.WriteU64(line)
		h.WriteInt(int(e.state))
		h.WriteInt(int(e.owner))
		for _, word := range e.sharers {
			h.WriteU64(word)
		}
		h.WriteBool(e.busy)
		h.WriteInt(len(e.queue))
	}
	b.data.hashState(h)
	h.WriteI64(b.getS)
	h.WriteI64(b.getX)
	h.WriteI64(b.puts)
	h.WriteI64(b.fwds)
	h.WriteI64(b.invs)
}

func (d *l2Data) hashState(h *ckpt.Hasher) {
	h.WriteU64(d.tick)
	for s := 0; s < d.sets; s++ {
		for w := 0; w < d.ways; w++ {
			h.WriteU64(d.tags[s][w])
			h.WriteBool(d.valid[s][w])
			h.WriteU64(d.lruTick[s][w])
		}
	}
	h.WriteI64(d.hits)
	h.WriteI64(d.misses)
}
