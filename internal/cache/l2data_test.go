package cache

import "testing"

func TestL2DataPresence(t *testing.T) {
	d := newL2Data(1<<20, 4, 64)
	if d.present(0x1000) {
		t.Fatal("cold hit")
	}
	d.insert(0x1000)
	if !d.present(0x1000) {
		t.Fatal("miss after insert")
	}
	if d.Hits() != 1 || d.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", d.Hits(), d.Misses())
	}
}

func TestL2DataLRUEviction(t *testing.T) {
	// Tiny bank: 2 sets × 2 ways.
	d := newL2Data(2*2*64, 2, 64)
	set0 := func(i int) uint64 { return uint64(i) * 2 * 64 } // even line index → set 0
	d.insert(set0(0))
	d.insert(set0(1))
	// Touch line 0 so line 1 is LRU.
	if !d.present(set0(0)) {
		t.Fatal("line 0 missing")
	}
	d.insert(set0(2)) // evicts line 1
	if !d.present(set0(0)) {
		t.Fatal("LRU evicted the recently used line")
	}
	if d.present(set0(1)) {
		t.Fatal("LRU kept the stale line")
	}
	if !d.present(set0(2)) {
		t.Fatal("new line missing")
	}
}

func TestL2DataReinsertRefreshes(t *testing.T) {
	d := newL2Data(2*2*64, 2, 64)
	a, b, c := uint64(0), uint64(2*64), uint64(4*64) // all set 0
	d.insert(a)
	d.insert(b)
	d.insert(a) // refresh a: b becomes LRU
	d.insert(c)
	if !d.present(a) || d.present(b) {
		t.Fatal("re-insert did not refresh LRU position")
	}
}
