package cache

// This file holds the L1 side of the coherence protocol: responses to the
// requester's own transactions (data, ack counting, completion and install)
// and reactions to remote transactions (invalidations and forwards).

func (c *L1) onData(m msgData) {
	h := c.mshrs[m.line]
	if h == nil {
		// A response for a squashed transaction cannot happen in this
		// protocol: MSHRs are only freed at completion.
		panic("cache: data response without MSHR")
	}
	h.haveData = true
	h.noData = m.noData
	h.excl = m.excl
	h.acksKnown = true
	h.acksNeed += m.acks
	c.tryComplete(h)
}

func (c *L1) onAckCount(m msgAckCount) {
	h := c.mshrs[m.line]
	if h == nil {
		panic("cache: ack count without MSHR")
	}
	h.acksKnown = true
	h.acksNeed += m.acks
	c.tryComplete(h)
}

func (c *L1) onOwnerData(m msgOwnerData) {
	h := c.mshrs[m.line]
	if h == nil {
		panic("cache: owner data without MSHR")
	}
	h.haveData = true
	if m.excl {
		h.excl = true
	}
	c.tryComplete(h)
}

func (c *L1) onInvAck(m msgInvAck) {
	h := c.mshrs[m.line]
	if h == nil {
		panic("cache: inv ack without MSHR")
	}
	h.acksGot++
	c.tryComplete(h)
}

// tryComplete finishes the transaction once the data and every expected
// acknowledgment have arrived.
func (c *L1) tryComplete(h *l1MSHR) {
	if !h.haveData {
		return
	}
	if h.wantX {
		if !h.acksKnown || h.acksGot < h.acksNeed {
			return
		}
	}

	line := h.line
	if h.noData {
		// Upgrade: the pinned S/O copy we already hold becomes exclusive.
		l := c.find(line)
		if l == nil {
			// The copy was invalidated while the upgrade waited; the
			// directory in that case always sends full data, so noData
			// with no resident line is a protocol violation.
			panic("cache: upgrade response without resident line")
		}
		l.state = l1M
		l.dirty = true
		l.pinned = false
		c.touch(l)
	} else {
		st := l1S
		if h.wantX {
			st = l1M
		} else if h.excl {
			st = l1E
		}
		c.install(line, st, h.wantX)
		if h.prefetch {
			if l := c.find(line); l != nil {
				l.prefetched = true
			}
		}
	}

	// Wake the waiting accesses. Write waiters that cannot be satisfied by
	// the granted state (a read grant) retry through the normal path.
	var retries []waiter
	for _, w := range h.waiting {
		if !w.write {
			c.q.After(c.hitLat, w.done)
			continue
		}
		l := c.find(line)
		if l != nil && (l.state == l1E || l.state == l1M) {
			l.state = l1M
			l.dirty = true
			c.q.After(c.hitLat, w.done)
			continue
		}
		retries = append(retries, w)
	}

	delete(c.mshrs, line)
	c.send(c.home(line), ctrlFlits, msgUnblock{req: c.id, line: line})

	for _, w := range retries {
		c.Access(line, true, w.done)
	}
	c.drainPending()
}

// drainPending re-issues queued requests that were blocked on a full MSHR
// file or on the pinned-ways limit. Each deferred request is retried at
// most once per drain: a retry may legitimately re-queue itself (the
// blocking condition can still hold), and re-processing it in the same
// drain would spin forever.
func (c *L1) drainPending() {
	pending := c.pending
	c.pending = nil
	for i, r := range pending {
		if len(c.mshrs) >= c.maxMSHR {
			c.pending = append(c.pending, pending[i:]...)
			return
		}
		c.Access(r.addr, r.write, r.done)
	}
}

// install writes a freshly arrived line into the set, evicting the
// least-recently-used unpinned way if necessary.
func (c *L1) install(line uint64, st l1State, dirty bool) {
	c.meter.Add(c.id.Core(), c.writeEv, 1)
	// In-place refresh: happens when a GetX was answered by an owner
	// forward while this cache still held an S copy under that owner
	// (OwnedShared with the requester among the sharers). The pin taken at
	// upgrade time must be released here.
	if l := c.find(line); l != nil {
		l.state = st
		l.dirty = dirty && st == l1M
		l.pinned = false
		c.touch(l)
		return
	}
	s := c.setFor(line)
	victim := -1
	for w := range c.lines[s] {
		if c.lines[s][w].state == l1I {
			victim = w
			break
		}
	}
	if victim < 0 {
		for w := 0; w < c.ways; w++ {
			if c.lines[s][w].pinned {
				continue
			}
			if victim < 0 || c.lines[s][w].lru < c.lines[s][victim].lru {
				victim = w
			}
		}
		c.evict(&c.lines[s][victim])
	}
	c.tick++
	c.lines[s][victim] = l1Line{tag: line, state: st, dirty: dirty && st == l1M, lru: c.tick}
}

// evict removes a resident line, sending the appropriate Put. Owned lines
// (E/M/O) block in the writeback buffer until the directory acknowledges.
func (c *L1) evict(l *l1Line) {
	line := l.tag
	switch l.state {
	case l1S:
		c.send(c.home(line), ctrlFlits, msgPut{req: c.id, line: line, kind: putS})
	case l1E, l1M, l1O:
		e := &wbEntry{line: line, dirty: l.dirty}
		c.wb[line] = e
		if l.dirty {
			c.send(c.home(line), dataFlits, msgPut{req: c.id, line: line, kind: putM})
		} else {
			c.send(c.home(line), ctrlFlits, msgPut{req: c.id, line: line, kind: putE})
		}
	}
	l.state = l1I
}

func (c *L1) onPutAck(m msgPutAck) {
	e := c.wb[m.line]
	if e == nil {
		panic("cache: put ack without writeback entry")
	}
	delete(c.wb, m.line)
	for _, r := range e.retry {
		c.Access(r.addr, r.write, r.done)
	}
}

// onInv handles a remote invalidation: drop the copy (if still present) and
// acknowledge to the requester. The ack is sent even when the line is
// already gone (a concurrent eviction raced with the invalidation) because
// the requester counts acks from the directory's sharer snapshot.
func (c *L1) onInv(m msgInv) {
	if l := c.find(m.line); l != nil {
		l.state = l1I
		l.pinned = false
	}
	c.send(cacheNode(m.req), ctrlFlits, msgInvAck{line: m.line, dest: m.req})
}

// onFwdGetS serves a read request from the current owner: send the line and
// downgrade to O (stay the data provider; sharers now exist so stores need
// a directory transaction).
func (c *L1) onFwdGetS(m msgFwdGetS) {
	c.meter.Add(c.id.Core(), c.readEv, 1)
	if l := c.find(m.line); l != nil {
		l.state = l1O
		c.send(cacheNode(m.req), dataFlits, msgOwnerData{line: m.line, dest: m.req})
		return
	}
	if _, ok := c.wb[m.line]; ok {
		// Serve from the writeback buffer; the in-flight Put will be
		// answered with a stale ack.
		c.send(cacheNode(m.req), dataFlits, msgOwnerData{line: m.line, dest: m.req})
		return
	}
	panic("cache: forwarded GetS to non-owner")
}

// onFwdGetX transfers ownership: send the line to the requester and
// invalidate the local copy.
func (c *L1) onFwdGetX(m msgFwdGetX) {
	c.meter.Add(c.id.Core(), c.readEv, 1)
	if l := c.find(m.line); l != nil {
		l.state = l1I
		l.pinned = false
		c.send(cacheNode(m.req), dataFlits, msgOwnerData{line: m.line, dest: m.req, excl: true})
		return
	}
	if _, ok := c.wb[m.line]; ok {
		c.send(cacheNode(m.req), dataFlits, msgOwnerData{line: m.line, dest: m.req, excl: true})
		return
	}
	panic("cache: forwarded GetX to non-owner")
}
