package cache

import (
	"ptbsim/internal/eventq"
	"ptbsim/internal/mem"
	"ptbsim/internal/mesh"
	"ptbsim/internal/power"
)

// Config sizes the memory hierarchy. The zero value is replaced by the
// paper's Table-1 configuration.
type Config struct {
	L1SizeBytes int // per L1 (I and D each); default 64KB
	L1Ways      int // default 2
	L2SizeBytes int // per bank; default 1MB
	L2Ways      int // default 4
	// L1Prefetch enables next-line prefetching in the data caches
	// (optional substrate feature, off by default to match the paper's
	// Table-1 machine).
	L1Prefetch bool
}

// withDefaults fills zero fields from Table 1.
func (c Config) withDefaults() Config {
	if c.L1SizeBytes == 0 {
		c.L1SizeBytes = 64 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = 2
	}
	if c.L2SizeBytes == 0 {
		c.L2SizeBytes = 1 << 20
	}
	if c.L2Ways == 0 {
		c.L2Ways = 4
	}
	return c
}

// Hierarchy assembles the per-tile caches, the distributed directory and the
// memory behind one mesh. It owns message dispatch: every mesh delivery at a
// node is routed to that node's L1I, L1D or home bank.
type Hierarchy struct {
	N     int
	L1I   []*L1
	L1D   []*L1
	Banks []*HomeBank
	Mem   *mem.Memory

	net *mesh.Mesh
}

// NewHierarchy builds the full memory system for n cores.
func NewHierarchy(n int, q *eventq.Queue, meter *power.Meter, net *mesh.Mesh, cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	h := &Hierarchy{
		N:   n,
		net: net,
		Mem: mem.New(q, meter, n),
	}
	home := func(line uint64) int { return int((line / 64) % uint64(n)) }
	for i := 0; i < n; i++ {
		d := NewL1(DataCache(i), q, meter, net, home, cfg.L1SizeBytes, cfg.L1Ways, false)
		d.EnablePrefetch(cfg.L1Prefetch)
		h.L1D = append(h.L1D, d)
		h.L1I = append(h.L1I, NewL1(InstCache(i), q, meter, net, home, cfg.L1SizeBytes, cfg.L1Ways, true))
		h.Banks = append(h.Banks, NewHomeBank(i, q, meter, net, h.Mem, cfg.L2SizeBytes, cfg.L2Ways))
	}
	for i := 0; i < n; i++ {
		node := i
		net.SetHandler(node, func(payload any) { h.dispatch(node, payload) })
	}
	return h
}

// InstallPorts replaces every L1's front-side access to the event queue and
// mesh with the given per-core port (see FrontPort). The home banks and the
// memory keep their direct wiring — they only act during the serial event
// phase, where the ports would pass through anyway.
func (h *Hierarchy) InstallPorts(port func(core int) FrontPort) {
	for i := 0; i < h.N; i++ {
		h.L1I[i].SetPort(port(i))
		h.L1D[i].SetPort(port(i))
	}
}

// cacheAt returns the L1 identified by id (which must live at the given
// node).
func (h *Hierarchy) cacheAt(id CacheID) *L1 {
	if id.IsInst() {
		return h.L1I[id.Core()]
	}
	return h.L1D[id.Core()]
}

// dispatch routes a delivered message to the right component of the node.
func (h *Hierarchy) dispatch(node int, payload any) {
	switch m := payload.(type) {
	case msgGetS, msgGetX, msgPut, msgUnblock:
		h.Banks[node].Receive(m)
	case msgData:
		h.cacheAt(m.dest).Receive(m)
	case msgAckCount:
		h.cacheAt(m.dest).Receive(m)
	case msgPutAck:
		h.cacheAt(m.dest).Receive(m)
	case msgInv:
		h.cacheAt(m.sharer).Receive(m)
	case msgFwdGetS:
		h.cacheAt(m.owner).Receive(m)
	case msgFwdGetX:
		h.cacheAt(m.owner).Receive(m)
	case msgOwnerData:
		h.cacheAt(m.dest).Receive(m)
	case msgInvAck:
		h.cacheAt(m.dest).Receive(m)
	default:
		panic("cache: unroutable message")
	}
}

// Read issues a data load on core's L1D.
func (h *Hierarchy) Read(core int, addr uint64, done func()) {
	h.L1D[core].Access(addr, false, done)
}

// Write issues a data store (or the exclusive-ownership step of an atomic
// read-modify-write) on core's L1D.
func (h *Hierarchy) Write(core int, addr uint64, done func()) {
	h.L1D[core].Access(addr, true, done)
}

// Fetch issues an instruction-cache line read on core's L1I.
func (h *Hierarchy) Fetch(core int, addr uint64, done func()) {
	h.L1I[core].Access(addr, false, done)
}
