package cache

import "fmt"

// CheckDirectoryEntries verifies the structural legality of every home
// directory entry without requiring quiescence, so the invariant layer can
// run it every epoch while coherence messages are in flight:
//
//   - the state is one of uncached/shared/owned;
//   - an owned entry names a valid owner cache, and the owner is never
//     simultaneously in its own sharer set;
//   - an uncached entry has no sharers (PutS collapses the sharer set);
//   - a non-busy entry has an empty transaction queue (the drain loop runs
//     queued requests whenever the line unblocks).
//
// The full MOESI cross-check against L1 contents (CheckInvariants) still
// needs a quiescent point and runs once at the end of an invariant-enabled
// run.
func (h *Hierarchy) CheckDirectoryEntries() error {
	maxID := CacheID(2 * h.N)
	for node, bank := range h.Banks {
		for line, e := range bank.lines {
			switch e.state {
			case dirUncached:
				if !e.sharers.empty() {
					return fmt.Errorf("bank %d line %#x: uncached but sharer set %v", node, line, e.sharerList())
				}
			case dirShared:
			case dirOwned:
				if e.owner < 0 || e.owner >= maxID {
					return fmt.Errorf("bank %d line %#x: owned by out-of-range cache %d", node, line, e.owner)
				}
				if e.isSharer(e.owner) {
					return fmt.Errorf("bank %d line %#x: owner %d also in its sharer set", node, line, e.owner)
				}
			default:
				return fmt.Errorf("bank %d line %#x: illegal directory state %d", node, line, e.state)
			}
			if !e.busy && len(e.queue) > 0 {
				return fmt.Errorf("bank %d line %#x: idle with %d queued transactions", node, line, len(e.queue))
			}
		}
	}
	return nil
}

// CheckInvariants walks every cache and directory entry and verifies the
// global MOESI invariants hold at a quiescent point (no messages in
// flight). It returns the first violation found, or nil. Tests call it
// after draining the event queue; it is not part of the simulation loop.
//
// Checked invariants:
//
//  1. Single writer: at most one L1 holds a line in E or M.
//  2. Writer exclusion: if any L1 holds E/M, no other L1 holds any copy.
//  3. Directory owner accuracy: the directory's owned state names an L1
//     that actually holds the line in an owner state (E/M/O), and every
//     L1 owner is known to the directory.
//  4. Sharer soundness: every L1 holding S appears in its home
//     directory's sharer set (the reverse may transiently not hold only
//     through in-flight Puts, which quiescence excludes).
func (h *Hierarchy) CheckInvariants() error {
	type holder struct {
		id CacheID
		st l1State
	}
	holders := make(map[uint64][]holder)
	collect := func(c *L1) {
		for s := range c.lines {
			for w := range c.lines[s] {
				l := &c.lines[s][w]
				if l.state != l1I {
					holders[l.tag] = append(holders[l.tag], holder{c.id, l.state})
				}
			}
		}
	}
	for i := 0; i < h.N; i++ {
		collect(h.L1D[i])
		collect(h.L1I[i])
	}

	for line, hs := range holders {
		excl := 0
		owners := 0
		for _, x := range hs {
			switch x.st {
			case l1E, l1M:
				excl++
				owners++
			case l1O:
				owners++
			}
		}
		if excl > 1 {
			return fmt.Errorf("line %#x: %d exclusive holders", line, excl)
		}
		if excl == 1 && len(hs) > 1 {
			return fmt.Errorf("line %#x: exclusive holder coexists with %d other copies", line, len(hs)-1)
		}
		if owners > 1 {
			return fmt.Errorf("line %#x: %d owners", line, owners)
		}

		home := h.Banks[int((line/64)%uint64(h.N))]
		e, ok := home.lines[line]
		if !ok {
			return fmt.Errorf("line %#x: cached but unknown to its home directory", line)
		}
		var dirOwnerHolds bool
		for _, x := range hs {
			if e.state == dirOwned && x.id == e.owner {
				switch x.st {
				case l1E, l1M, l1O:
					dirOwnerHolds = true
				}
			}
			if x.st == l1S && !e.isSharer(x.id) && !(e.state == dirOwned && e.owner == x.id) {
				return fmt.Errorf("line %#x: cache %d holds S but is not a directory sharer", line, x.id)
			}
		}
		if owners == 1 && e.state != dirOwned {
			return fmt.Errorf("line %#x: an L1 owns it but directory state is %v", line, e.state)
		}
		if e.state == dirOwned && !dirOwnerHolds {
			return fmt.Errorf("line %#x: directory owner %d holds no owner-state copy", line, e.owner)
		}
	}
	return nil
}
