package cache

// l2Data is the data array of one L2 bank: a set-associative tag store used
// to decide whether the home bank can supply a line locally (12-cycle L2
// access) or must fetch it from memory (300 cycles). Only presence is
// tracked; line contents are immaterial to the simulation.
type l2Data struct {
	sets int
	ways int
	tags [][]uint64
	// valid marks live ways.
	valid [][]bool
	// lruTick provides cheap LRU: higher = more recent.
	lruTick [][]uint64
	tick    uint64

	hits, misses int64
}

// newL2Data builds a bank with the given geometry. sizeBytes/ways/lineBytes
// must produce a power-of-two set count.
func newL2Data(sizeBytes, ways, lineBytes int) *l2Data {
	sets := sizeBytes / (ways * lineBytes)
	d := &l2Data{sets: sets, ways: ways}
	d.tags = make([][]uint64, sets)
	d.valid = make([][]bool, sets)
	d.lruTick = make([][]uint64, sets)
	for i := range d.tags {
		d.tags[i] = make([]uint64, ways)
		d.valid[i] = make([]bool, ways)
		d.lruTick[i] = make([]uint64, ways)
	}
	return d
}

func (d *l2Data) setFor(line uint64) int {
	return int((line / 64) % uint64(d.sets))
}

// present probes the bank for a line, updating LRU and hit/miss counters.
func (d *l2Data) present(line uint64) bool {
	s := d.setFor(line)
	for w := 0; w < d.ways; w++ {
		if d.valid[s][w] && d.tags[s][w] == line {
			d.tick++
			d.lruTick[s][w] = d.tick
			d.hits++
			return true
		}
	}
	d.misses++
	return false
}

// insert installs a line, evicting the LRU way if needed. L2 evictions are
// silent from the protocol's perspective: the directory keeps coherence
// state separately, and clean data remains available in memory. (Dirty data
// written back into the L2 by a PutM conceptually propagates to memory on
// eviction; only timing matters here and that write is absorbed by the
// memory model's bank occupancy.)
func (d *l2Data) insert(line uint64) {
	s := d.setFor(line)
	// Already present: refresh.
	for w := 0; w < d.ways; w++ {
		if d.valid[s][w] && d.tags[s][w] == line {
			d.tick++
			d.lruTick[s][w] = d.tick
			return
		}
	}
	victim := 0
	for w := 1; w < d.ways; w++ {
		if !d.valid[s][w] {
			victim = w
			break
		}
		if d.lruTick[s][w] < d.lruTick[s][victim] {
			victim = w
		}
	}
	d.tick++
	d.tags[s][victim] = line
	d.valid[s][victim] = true
	d.lruTick[s][victim] = d.tick
}

// Hits and Misses expose the bank-local counters.
func (d *l2Data) Hits() int64   { return d.hits }
func (d *l2Data) Misses() int64 { return d.misses }
