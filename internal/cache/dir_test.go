package cache

import (
	"testing"

	"ptbsim/internal/eventq"
	"ptbsim/internal/mem"
	"ptbsim/internal/mesh"
	"ptbsim/internal/power"
)

// bankRig drives one HomeBank directly with protocol messages, capturing
// everything it sends.
type bankRig struct {
	q    *eventq.Queue
	bank *HomeBank
	sent []any
}

func newBankRig() *bankRig {
	q := &eventq.Queue{}
	m := power.NewMeter(2)
	net := mesh.New(2, q, m)
	r := &bankRig{q: q}
	r.bank = NewHomeBank(0, q, m, net, mem.New(q, m, 1), 1<<20, 4)
	// Node 0 hosts the bank; node 1 plays every requester. Capture both
	// ends (the bank's local loop-back deliveries land on node 0).
	capture := func(p any) { r.sent = append(r.sent, p) }
	net.SetHandler(0, func(p any) {
		// Messages addressed back to the bank would be its own requests in
		// a real system; in this rig everything it emits is captured.
		capture(p)
	})
	net.SetHandler(1, capture)
	return r
}

func (r *bankRig) drain(cycles int64) {
	r.q.RunUntil(r.q.Now() + cycles)
}

func (r *bankRig) lastData() (msgData, bool) {
	for i := len(r.sent) - 1; i >= 0; i-- {
		if d, ok := r.sent[i].(msgData); ok {
			return d, true
		}
	}
	return msgData{}, false
}

func TestBankGetSUncachedGrantsExclusive(t *testing.T) {
	r := newBankRig()
	req := DataCache(1)
	r.bank.Receive(msgGetS{req: req, line: 0x100})
	r.drain(1000)
	d, ok := r.lastData()
	if !ok {
		t.Fatal("no data response")
	}
	if !d.excl || d.acks != 0 || d.noData {
		t.Fatalf("uncached GetS response %+v, want exclusive grant", d)
	}
}

func TestBankSerializesBusyLine(t *testing.T) {
	r := newBankRig()
	a, b := DataCache(1), InstCache(1)
	r.bank.Receive(msgGetS{req: a, line: 0x200})
	r.bank.Receive(msgGetS{req: b, line: 0x200})
	r.drain(2000)
	// Only one data response until the first requester unblocks.
	nData := 0
	for _, m := range r.sent {
		if _, ok := m.(msgData); ok {
			nData++
		}
	}
	if nData != 1 {
		t.Fatalf("%d data responses while line busy, want 1", nData)
	}
	r.bank.Receive(msgUnblock{req: a, line: 0x200})
	r.drain(2000)
	// The queued GetS now finds an owner (the first requester got an E
	// grant), so it is served with a forward.
	nFwd := 0
	for _, m := range r.sent {
		if _, ok := m.(msgFwdGetS); ok {
			nFwd++
		}
	}
	if nFwd != 1 {
		t.Fatalf("queued request not forwarded after unblock: %d forwards", nFwd)
	}
}

func TestBankGetXInvalidatesSharers(t *testing.T) {
	r := newBankRig()
	// Build up two sharers through the directory state machine.
	s1, s2, w := DataCache(1), InstCache(1), DataCache(0)
	r.bank.Receive(msgGetS{req: s1, line: 0x300})
	r.drain(1000)
	r.bank.Receive(msgUnblock{req: s1, line: 0x300})
	r.bank.Receive(msgGetS{req: s2, line: 0x300})
	r.drain(1000)
	r.bank.Receive(msgUnblock{req: s2, line: 0x300})
	r.drain(100)

	r.sent = nil
	r.bank.Receive(msgGetX{req: w, line: 0x300})
	r.drain(2000)

	// s1 is the owner (E grant) so it gets a FwdGetX; s2 gets an Inv; the
	// writer gets an ack count.
	var fwds, invs, ackCounts int
	for _, m := range r.sent {
		switch m.(type) {
		case msgFwdGetX:
			fwds++
		case msgInv:
			invs++
		case msgAckCount:
			ackCounts++
		}
	}
	if fwds != 1 || invs != 1 || ackCounts != 1 {
		t.Fatalf("fwd=%d inv=%d ackCount=%d, want 1/1/1", fwds, invs, ackCounts)
	}
}

func TestBankStalePutAck(t *testing.T) {
	r := newBankRig()
	a, b := DataCache(1), DataCache(0)
	// a owns the line.
	r.bank.Receive(msgGetX{req: a, line: 0x400})
	r.drain(1000)
	r.bank.Receive(msgUnblock{req: a, line: 0x400})
	r.drain(100)
	// Ownership moves to b.
	r.bank.Receive(msgGetX{req: b, line: 0x400})
	r.drain(1000)
	r.bank.Receive(msgUnblock{req: b, line: 0x400})
	r.drain(100)
	// a's late writeback must be acknowledged as stale.
	r.sent = nil
	r.bank.Receive(msgPut{req: a, line: 0x400, kind: putM})
	r.drain(1000)
	found := false
	for _, m := range r.sent {
		if ack, ok := m.(msgPutAck); ok {
			if !ack.stale {
				t.Fatal("late PutM acked as fresh")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no PutAck for a stale writeback")
	}
}

func TestBankPutSharerCleansUp(t *testing.T) {
	r := newBankRig()
	s := DataCache(1)
	r.bank.Receive(msgGetS{req: s, line: 0x500})
	r.drain(1000)
	r.bank.Receive(msgUnblock{req: s, line: 0x500})
	r.drain(100)
	// E owner evicts clean.
	r.bank.Receive(msgPut{req: s, line: 0x500, kind: putE})
	r.drain(1000)
	e := r.bank.entry(0x500)
	if e.state != dirUncached || e.owner != -1 {
		t.Fatalf("directory not cleaned after PutE: state=%v owner=%v", e.state, e.owner)
	}
}

func TestBankL2CapturesWriteback(t *testing.T) {
	r := newBankRig()
	a := DataCache(1)
	r.bank.Receive(msgGetX{req: a, line: 0x600})
	r.drain(1000)
	r.bank.Receive(msgUnblock{req: a, line: 0x600})
	r.drain(100)
	r.bank.Receive(msgPut{req: a, line: 0x600, kind: putM})
	r.drain(1000)
	// The next GetS must be served from the L2, not memory.
	memBefore := r.bank.mem.Accesses()
	r.bank.Receive(msgGetS{req: a, line: 0x600})
	r.drain(1000)
	if r.bank.mem.Accesses() != memBefore {
		t.Fatal("re-read after writeback went to memory instead of the L2")
	}
}
