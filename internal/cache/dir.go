package cache

import (
	"ptbsim/internal/eventq"
	"ptbsim/internal/mem"
	"ptbsim/internal/mesh"
	"ptbsim/internal/power"
)

// Directory timing: the directory lookup is part of the L2 tag pipeline.
const (
	dirLatency = 4
	l2Latency  = 12
)

// dirState is the home directory's view of a line. The protocol collapses
// E/M/O owner states into a single "owned" state: the owner cache is the
// data provider and tracks cleanliness itself (a clean owner writes back
// without data). This keeps the directory exact under silent E→M upgrades.
type dirState uint8

const (
	dirUncached dirState = iota // no L1 copies; data in L2/memory
	dirShared                   // read-only copies; data in L2/memory
	dirOwned                    // one owner (E/M/O), possibly plus sharers
)

// sharerMaskWords sizes the directory sharer bitset: 2 cache IDs per core
// (L1I and L1D interleaved), 64 IDs per word. Eight words cover a 256-core
// chip. A single uint64 — the original representation — silently dropped
// every sharer with CacheID ≥ 64, which capped correct coherence at 32
// cores; the fixed-size array keeps dirEntry a flat value with no
// per-entry allocation.
const sharerMaskWords = 8

// sharerMask is an exact bitset over CacheID.
type sharerMask [sharerMaskWords]uint64

func (m *sharerMask) add(c CacheID)      { m[uint(c)>>6] |= 1 << (uint(c) & 63) }
func (m *sharerMask) drop(c CacheID)     { m[uint(c)>>6] &^= 1 << (uint(c) & 63) }
func (m *sharerMask) has(c CacheID) bool { return m[uint(c)>>6]&(1<<(uint(c)&63)) != 0 }
func (m *sharerMask) clear()             { *m = sharerMask{} }

func (m *sharerMask) empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

type dirEntry struct {
	state   dirState
	owner   CacheID
	sharers sharerMask
	busy    bool
	queue   []any
}

func (e *dirEntry) addSharer(c CacheID)     { e.sharers.add(c) }
func (e *dirEntry) dropSharer(c CacheID)    { e.sharers.drop(c) }
func (e *dirEntry) isSharer(c CacheID) bool { return e.sharers.has(c) }

func (e *dirEntry) sharerList() []CacheID {
	var out []CacheID
	for w, word := range e.sharers {
		for m, i := word, 0; m != 0; m, i = m>>1, i+1 {
			if m&1 != 0 {
				out = append(out, CacheID(w*64+i))
			}
		}
	}
	return out
}

// HomeBank is one tile's slice of the distributed shared L2 together with
// its directory slice. It is the serialization point for all coherence
// transactions on the lines it homes.
type HomeBank struct {
	node  int
	q     *eventq.Queue
	meter *power.Meter
	net   *mesh.Mesh
	mem   *mem.Memory
	data  *l2Data

	lines map[uint64]*dirEntry

	// Stats.
	getS, getX, puts, fwds, invs int64
}

// NewHomeBank creates the home bank at the given mesh node.
func NewHomeBank(node int, q *eventq.Queue, meter *power.Meter, net *mesh.Mesh, m *mem.Memory, l2SizeBytes, l2Ways int) *HomeBank {
	return &HomeBank{
		node:  node,
		q:     q,
		meter: meter,
		net:   net,
		mem:   m,
		data:  newL2Data(l2SizeBytes, l2Ways, 64),
		lines: make(map[uint64]*dirEntry),
	}
}

func (h *HomeBank) entry(line uint64) *dirEntry {
	e, ok := h.lines[line]
	if !ok {
		e = &dirEntry{owner: -1}
		h.lines[line] = e
	}
	return e
}

// Receive dispatches a protocol message addressed to this home bank.
func (h *HomeBank) Receive(msg any) {
	h.meter.Add(h.node, power.EvDir, 1)
	switch m := msg.(type) {
	case msgGetS:
		h.startOrQueue(m.line, m)
	case msgGetX:
		h.startOrQueue(m.line, m)
	case msgPut:
		h.startOrQueue(m.line, m)
	case msgUnblock:
		e := h.entry(m.line)
		e.busy = false
		h.drainQueue(m.line, e)
	default:
		panic("cache: home bank received unknown message")
	}
}

// startOrQueue serializes transactions per line.
func (h *HomeBank) startOrQueue(line uint64, msg any) {
	e := h.entry(line)
	if e.busy {
		e.queue = append(e.queue, msg)
		return
	}
	h.process(line, e, msg)
}

// drainQueue runs queued requests in arrival order until one blocks the
// line again or the queue empties.
func (h *HomeBank) drainQueue(line uint64, e *dirEntry) {
	for len(e.queue) > 0 && !e.busy {
		msg := e.queue[0]
		e.queue = e.queue[1:]
		h.process(line, e, msg)
	}
}

func (h *HomeBank) process(line uint64, e *dirEntry, msg any) {
	switch m := msg.(type) {
	case msgGetS:
		h.getS++
		e.busy = true
		h.q.After(dirLatency, func() { h.handleGetS(line, e, m) })
	case msgGetX:
		h.getX++
		e.busy = true
		h.q.After(dirLatency, func() { h.handleGetX(line, e, m) })
	case msgPut:
		h.puts++
		// Puts are atomic at the directory: no transaction window needed.
		h.q.After(dirLatency, func() { h.handlePut(line, e, m) })
	default:
		panic("cache: unexpected queued message")
	}
}

func (h *HomeBank) handleGetS(line uint64, e *dirEntry, m msgGetS) {
	switch e.state {
	case dirUncached:
		// Grant exclusive-clean (the E optimization of MOESI).
		e.state = dirOwned
		e.owner = m.req
		e.sharers.clear()
		h.supplyData(line, m.req, true, 0, false)
	case dirShared:
		e.addSharer(m.req)
		h.supplyData(line, m.req, false, 0, false)
	case dirOwned:
		// Three-hop transfer: owner forwards and stays owner (data
		// provider); requester becomes a sharer.
		h.fwds++
		e.addSharer(m.req)
		h.send(cacheNode(e.owner), ctrlFlits, msgFwdGetS{line: line, owner: e.owner, req: m.req})
	}
}

func (h *HomeBank) handleGetX(line uint64, e *dirEntry, m msgGetX) {
	switch e.state {
	case dirUncached:
		e.state = dirOwned
		e.owner = m.req
		e.sharers.clear()
		h.supplyData(line, m.req, true, 0, false)
	case dirShared:
		acks := 0
		for _, s := range e.sharerList() {
			if s == m.req {
				continue
			}
			acks++
			h.invs++
			h.send(cacheNode(s), ctrlFlits, msgInv{line: line, sharer: s, req: m.req})
		}
		hadCopy := e.isSharer(m.req)
		e.state = dirOwned
		e.owner = m.req
		e.sharers.clear()
		h.supplyData(line, m.req, true, acks, hadCopy)
	case dirOwned:
		if e.owner == m.req {
			// Store to an owned-shared line: invalidate the sharers, no
			// data needed.
			acks := 0
			for _, s := range e.sharerList() {
				if s == m.req {
					continue
				}
				acks++
				h.invs++
				h.send(cacheNode(s), ctrlFlits, msgInv{line: line, sharer: s, req: m.req})
			}
			e.sharers.clear()
			h.send(cacheNode(m.req), ctrlFlits, msgData{line: line, dest: m.req, excl: true, acks: acks, noData: true})
			return
		}
		acks := 0
		for _, s := range e.sharerList() {
			if s == m.req {
				continue
			}
			acks++
			h.invs++
			h.send(cacheNode(s), ctrlFlits, msgInv{line: line, sharer: s, req: m.req})
		}
		h.fwds++
		h.send(cacheNode(e.owner), ctrlFlits, msgFwdGetX{line: line, owner: e.owner, req: m.req})
		h.send(cacheNode(m.req), ctrlFlits, msgAckCount{line: line, dest: m.req, acks: acks})
		e.owner = m.req
		e.sharers.clear()
	}
}

func (h *HomeBank) handlePut(line uint64, e *dirEntry, m msgPut) {
	switch m.kind {
	case putS:
		// Fire-and-forget sharer eviction.
		e.dropSharer(m.req)
		if e.state == dirShared && e.sharers.empty() {
			e.state = dirUncached
		}
	case putE, putM:
		if e.state != dirOwned || e.owner != m.req {
			// Ownership moved while the Put was in flight; the evictor
			// already served the forward from its writeback buffer.
			h.send(cacheNode(m.req), ctrlFlits, msgPutAck{line: line, dest: m.req, stale: true})
			return
		}
		if m.kind == putM {
			// Dirty data lands in the L2.
			h.meter.Add(h.node, power.EvL2, 1)
			h.data.insert(line)
		}
		e.owner = -1
		if !e.sharers.empty() {
			e.state = dirShared
		} else {
			e.state = dirUncached
		}
		h.send(cacheNode(m.req), ctrlFlits, msgPutAck{line: line, dest: m.req})
	}
}

// supplyData sends the line (or a permissions-only response when noData) to
// the requester, fetching from memory if the L2 bank misses.
func (h *HomeBank) supplyData(line uint64, req CacheID, excl bool, acks int, noData bool) {
	if noData {
		h.send(cacheNode(req), ctrlFlits, msgData{line: line, dest: req, excl: excl, acks: acks, noData: true})
		return
	}
	h.meter.Add(h.node, power.EvL2, 1)
	if h.data.present(line) {
		h.q.After(l2Latency, func() {
			h.send(cacheNode(req), dataFlits, msgData{line: line, dest: req, excl: excl, acks: acks})
		})
		return
	}
	h.q.After(l2Latency, func() {
		h.mem.Access(line, h.node, func() {
			h.meter.Add(h.node, power.EvL2, 1)
			h.data.insert(line)
			h.send(cacheNode(req), dataFlits, msgData{line: line, dest: req, excl: excl, acks: acks})
		})
	})
}

func (h *HomeBank) send(dstNode, flits int, payload any) {
	h.net.Send(h.node, dstNode, flits, payload)
}

// cacheNode returns the mesh node hosting a cache.
func cacheNode(c CacheID) int { return c.Core() }

// Stats returns protocol counters: GetS, GetX, Put, forward and invalidate
// message counts plus the bank's L2 hits and misses.
func (h *HomeBank) Stats() (getS, getX, puts, fwds, invs, l2Hits, l2Misses int64) {
	return h.getS, h.getX, h.puts, h.fwds, h.invs, h.data.Hits(), h.data.Misses()
}
