package cache

import (
	"ptbsim/internal/eventq"
	"ptbsim/internal/mesh"
	"ptbsim/internal/power"
)

// l1State is the MOESI state of a line in an L1.
type l1State uint8

const (
	l1I l1State = iota // invalid
	l1S                // shared, read-only
	l1E                // exclusive clean (silent upgrade to M allowed)
	l1M                // exclusive dirty
	l1O                // owner with other sharers present; stores need GetX
)

// l1Line is one way of an L1 set.
type l1Line struct {
	tag   uint64
	state l1State
	dirty bool
	// prefetched marks a line brought in by the prefetcher and not yet
	// demanded (usefulness accounting).
	prefetched bool
	// pinned marks a resident line with an in-flight upgrade (GetX while
	// holding S/O). Pinned lines are never chosen as victims: the upgrade
	// response may carry no data and relies on the retained copy. At most
	// ways-1 lines per set may be pinned so installs always find a victim.
	pinned bool
	lru    uint64
}

type waiter struct {
	write bool
	done  func()
}

// l1MSHR tracks one outstanding miss.
type l1MSHR struct {
	line    uint64
	wantX   bool
	waiting []waiter
	// prefetch marks a speculative fill with no waiters.
	prefetch bool

	haveData  bool
	noData    bool // upgrade response: keep existing S copy
	excl      bool
	acksKnown bool
	acksNeed  int
	acksGot   int
}

// wbEntry is a blocking eviction awaiting PutAck. The entry can still serve
// forwarded requests, and accesses to the line while it drains are retried
// once the ack arrives.
type wbEntry struct {
	line  uint64
	dirty bool
	retry []retryReq
}

type retryReq struct {
	addr  uint64
	write bool
	done  func()
}

// DefaultMSHRs is the number of outstanding misses an L1 supports.
const DefaultMSHRs = 8

// FrontPort is the L1's gateway to the shared event queue and mesh. The
// concrete queue and mesh satisfy it directly (the default wiring); the
// intra-run partition layer substitutes per-core staging ports that spool
// tick-phase operations until the quantum boundary, which is what lets
// cores tick on separate goroutines without touching shared structures.
type FrontPort interface {
	// After schedules fn to run delay cycles from now.
	After(delay int64, fn func())
	// Send injects a message of the given flit count into the mesh.
	Send(src, dst, flits int, payload any)
}

// frontScheduler and frontSender are the two halves of FrontPort; the L1
// holds them separately so the default wiring can keep handing it the
// concrete queue and mesh.
type frontScheduler interface {
	After(delay int64, fn func())
}
type frontSender interface {
	Send(src, dst, flits int, payload any)
}

// L1 is one private first-level cache (instruction or data). All timing is
// driven by the shared event queue; completion is signalled through the
// callbacks passed to Access.
type L1 struct {
	id    CacheID
	q     frontScheduler
	meter *power.Meter
	net   frontSender
	// home maps a line to its home bank's mesh node.
	home func(line uint64) int

	sets    int
	ways    int
	lines   [][]l1Line
	tick    uint64
	hitLat  int64
	mshrs   map[uint64]*l1MSHR
	maxMSHR int
	pending []retryReq
	wb      map[uint64]*wbEntry

	readEv, writeEv power.EventKind

	// prefetch enables next-line prefetching on demand read misses.
	prefetch bool

	hits, misses int64
	// prefetchIssued counts prefetch requests; prefetchUseful counts
	// prefetched lines that were later demanded before eviction.
	prefetchIssued, prefetchUseful int64
}

// NewL1 builds a 64KB-class L1. isInst selects the energy events charged.
func NewL1(id CacheID, q *eventq.Queue, meter *power.Meter, net *mesh.Mesh, home func(uint64) int, sizeBytes, ways int, isInst bool) *L1 {
	sets := sizeBytes / (ways * 64)
	c := &L1{
		id:      id,
		q:       q,
		meter:   meter,
		net:     net,
		home:    home,
		sets:    sets,
		ways:    ways,
		hitLat:  1,
		mshrs:   make(map[uint64]*l1MSHR),
		maxMSHR: DefaultMSHRs,
		wb:      make(map[uint64]*wbEntry),
	}
	c.lines = make([][]l1Line, sets)
	for i := range c.lines {
		c.lines[i] = make([]l1Line, ways)
	}
	if isInst {
		c.readEv, c.writeEv = power.EvL1I, power.EvL1I
	} else {
		c.readEv, c.writeEv = power.EvL1DRead, power.EvL1DWrite
	}
	return c
}

func (c *L1) setFor(line uint64) int { return int((line / 64) % uint64(c.sets)) }

func (c *L1) find(line uint64) *l1Line {
	s := c.setFor(line)
	for w := range c.lines[s] {
		l := &c.lines[s][w]
		if l.state != l1I && l.tag == line {
			return l
		}
	}
	return nil
}

// Hits and Misses expose access counters.
func (c *L1) Hits() int64   { return c.hits }
func (c *L1) Misses() int64 { return c.misses }

// OutstandingMisses returns the number of MSHRs in use.
func (c *L1) OutstandingMisses() int { return len(c.mshrs) }

// EnablePrefetch turns on next-line prefetching for demand read misses
// (off by default; an optional substrate feature with its own ablation
// benchmark).
func (c *L1) EnablePrefetch(on bool) { c.prefetch = on }

// PrefetchStats returns (issued, useful) prefetch counts.
func (c *L1) PrefetchStats() (issued, useful int64) {
	return c.prefetchIssued, c.prefetchUseful
}

// Probe checks synchronously whether addr hits. On a hit it charges the
// access energy, refreshes LRU and returns true (the caller proceeds within
// its own pipeline). On a miss it returns false with no side effects; the
// caller follows up with Access to start the miss. Fetch pipelines use this
// so that instruction-cache hits do not cost asynchronous round trips.
func (c *L1) Probe(addr uint64) bool {
	line := addr &^ 63
	if _, ok := c.wb[line]; ok {
		return false
	}
	l := c.find(line)
	if l == nil {
		return false
	}
	c.meter.Add(c.id.Core(), c.readEv, 1)
	c.hits++
	c.touch(l)
	return true
}

// Access performs a load (write=false) or a store/atomic (write=true) at
// addr. done runs when the access completes: after the 1-cycle hit latency
// for hits, or at fill time for misses. Writes complete only once the cache
// holds the line in an exclusive state.
func (c *L1) Access(addr uint64, write bool, done func()) {
	line := addr &^ 63
	if write {
		c.meter.Add(c.id.Core(), c.writeEv, 1)
	} else {
		c.meter.Add(c.id.Core(), c.readEv, 1)
	}

	// A line draining through the writeback buffer is retried after its ack.
	if e, ok := c.wb[line]; ok {
		e.retry = append(e.retry, retryReq{addr, write, done})
		return
	}

	if l := c.find(line); l != nil {
		if l.prefetched {
			l.prefetched = false
			c.prefetchUseful++
		}
		if !write {
			c.hits++
			c.touch(l)
			c.q.After(c.hitLat, done)
			return
		}
		switch l.state {
		case l1E, l1M:
			// Silent E→M upgrade.
			c.hits++
			l.state = l1M
			l.dirty = true
			c.touch(l)
			c.q.After(c.hitLat, done)
			return
		case l1S, l1O:
			// Upgrade miss: invalidate the other copies. Pin the retained
			// copy so it survives until the permissions arrive; defer the
			// request if pinning would leave the set without victims.
			if !l.pinned && c.pinnedIn(c.setFor(line)) >= c.ways-1 {
				c.pending = append(c.pending, retryReq{addr, write, done})
				return
			}
			l.pinned = true
		}
	}

	c.misses++
	c.miss(line, write, done)
}

// pinnedIn counts pinned lines in a set.
func (c *L1) pinnedIn(s int) int {
	n := 0
	for w := range c.lines[s] {
		if c.lines[s][w].state != l1I && c.lines[s][w].pinned {
			n++
		}
	}
	return n
}

func (c *L1) touch(l *l1Line) {
	c.tick++
	l.lru = c.tick
}

func (c *L1) miss(line uint64, write bool, done func()) {
	if m, ok := c.mshrs[line]; ok {
		// Merge into the outstanding miss; writes that cannot be satisfied
		// by its grant are retried on completion.
		m.waiting = append(m.waiting, waiter{write, done})
		return
	}
	if len(c.mshrs) >= c.maxMSHR {
		c.pending = append(c.pending, retryReq{line, write, done})
		return
	}
	m := &l1MSHR{line: line, wantX: write}
	m.waiting = append(m.waiting, waiter{write, done})
	c.mshrs[line] = m
	if write {
		c.send(c.home(line), ctrlFlits, msgGetX{req: c.id, line: line})
	} else {
		c.send(c.home(line), ctrlFlits, msgGetS{req: c.id, line: line})
		c.maybePrefetch(line + 64)
	}
}

// maybePrefetch issues a next-line prefetch (GetS with no waiters) if the
// line is absent, not already in flight, and an MSHR is free. Keeping one
// MSHR in reserve stops the prefetcher from starving demand misses.
func (c *L1) maybePrefetch(line uint64) {
	if !c.prefetch {
		return
	}
	if len(c.mshrs) >= c.maxMSHR-1 {
		return
	}
	if c.find(line) != nil {
		return
	}
	if _, ok := c.mshrs[line]; ok {
		return
	}
	if _, ok := c.wb[line]; ok {
		return
	}
	c.prefetchIssued++
	c.mshrs[line] = &l1MSHR{line: line, prefetch: true}
	c.send(c.home(line), ctrlFlits, msgGetS{req: c.id, line: line})
}

func (c *L1) send(dstNode, flits int, payload any) {
	c.net.Send(c.id.Core(), dstNode, flits, payload)
}

// SetPort redirects the L1's event scheduling and mesh injection through p.
// Installed once at system construction, before any access; the partition
// layer's ports pass straight through outside the tick phase, so protocol
// receives and end-of-run drains behave identically.
func (c *L1) SetPort(p FrontPort) {
	c.q = p
	c.net = p
}

// Receive dispatches a protocol message addressed to this cache.
func (c *L1) Receive(msg any) {
	switch m := msg.(type) {
	case msgData:
		c.onData(m)
	case msgAckCount:
		c.onAckCount(m)
	case msgOwnerData:
		c.onOwnerData(m)
	case msgInvAck:
		c.onInvAck(m)
	case msgInv:
		c.onInv(m)
	case msgFwdGetS:
		c.onFwdGetS(m)
	case msgFwdGetX:
		c.onFwdGetX(m)
	case msgPutAck:
		c.onPutAck(m)
	default:
		panic("cache: L1 received unknown message")
	}
}

// PendingLen returns the number of deferred requests (diagnostics).
func (c *L1) PendingLen() int { return len(c.pending) }

// WBLen returns the writeback-buffer occupancy (diagnostics).
func (c *L1) WBLen() int { return len(c.wb) }

// PinnedTotal counts pinned resident lines (diagnostics).
func (c *L1) PinnedTotal() int {
	n := 0
	for s := range c.lines {
		n += c.pinnedIn(s)
	}
	return n
}
