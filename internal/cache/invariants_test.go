package cache

import (
	"strings"
	"testing"
)

// TestCheckDirectoryEntriesCleanAfterTraffic drives real coherence traffic
// (shared readers, an exclusive writer, a steal) and expects the structural
// directory check to stay clean throughout — it must hold even while
// messages are in flight, so it is asserted mid-traffic too.
func TestCheckDirectoryEntriesCleanAfterTraffic(t *testing.T) {
	r := newRig(4)
	for core := 0; core < 4; core++ {
		core := core
		r.h.Read(core, 0x4000, func() {})
	}
	r.h.Write(1, 0x4000, func() {})
	if err := r.h.CheckDirectoryEntries(); err != nil {
		t.Fatalf("structural check failed mid-flight: %v", err)
	}
	r.run(t, 100000)
	if err := r.h.CheckDirectoryEntries(); err != nil {
		t.Fatalf("structural check failed at quiescence: %v", err)
	}
	if err := r.h.CheckInvariants(); err != nil {
		t.Fatalf("full MOESI check failed at quiescence: %v", err)
	}
}

// TestCheckDirectoryEntriesDetectsCorruption corrupts directory entries in
// each of the ways the structural check covers and verifies every one is
// reported — the detection side of the invariant layer.
func TestCheckDirectoryEntriesDetectsCorruption(t *testing.T) {
	line := uint64(0x8000)
	cases := []struct {
		name    string
		corrupt func(e *dirEntry)
		wantMsg string
	}{
		{"uncached-with-sharers", func(e *dirEntry) {
			e.state = dirUncached
			e.addSharer(0)
		}, "uncached but sharer set"},
		{"out-of-range-owner", func(e *dirEntry) {
			e.state = dirOwned
			e.owner = 99
		}, "out-of-range cache"},
		{"owner-in-sharer-set", func(e *dirEntry) {
			e.state = dirOwned
			e.owner = 2
			e.addSharer(2)
		}, "also in its sharer set"},
		{"illegal-state", func(e *dirEntry) {
			e.state = dirState(42)
		}, "illegal directory state"},
		{"idle-with-queue", func(e *dirEntry) {
			e.busy = false
			e.queue = append(e.queue, struct{}{})
		}, "queued transactions"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(4)
			r.h.Read(0, line, func() {})
			r.run(t, 100000)
			home := r.h.Banks[int((line/64)%uint64(4))]
			e, ok := home.lines[line]
			if !ok {
				t.Fatal("line missing from its home directory after a read")
			}
			tc.corrupt(e)
			err := r.h.CheckDirectoryEntries()
			if err == nil {
				t.Fatal("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
