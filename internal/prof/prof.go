// Package prof gives every command-line tool the same three profiling
// flags — -cpuprofile, -memprofile and -trace — backed by the standard
// runtime/pprof and runtime/trace machinery, so any experiment can be
// profiled in place:
//
//	go run ./cmd/ptbsim -bench ocean -cpuprofile cpu.out
//	go tool pprof cpu.out
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the values of the registered profiling flags.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register installs the profiling flags on fs (nil = flag.CommandLine) and
// returns the struct their values land in. Call before flag.Parse.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins whichever profiles were requested and returns the function
// that finishes them (stops the CPU profile and trace, writes the heap
// profile). The returned stop is safe to call more than once and must run
// before the process exits — defer it in main, and call it explicitly ahead
// of any os.Exit. With no flags set, Start is a no-op.
func (f *Flags) Start() (stop func(), err error) {
	var cpuF, traceF *os.File
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if f.Mem != "" {
			memF, err := os.Create(f.Mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(memF); err != nil {
				fmt.Fprintf(os.Stderr, "prof: writing heap profile: %v\n", err)
			}
			memF.Close()
		}
	}
	if f.CPU != "" {
		cpuF, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	if f.Trace != "" {
		traceF, err = os.Create(f.Trace)
		if err != nil {
			stop()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			stop()
			return nil, fmt.Errorf("prof: starting trace: %w", err)
		}
	}
	return stop, nil
}
