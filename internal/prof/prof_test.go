package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterAndStart(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = filepath.Join(dir, "spin") // some work for the profiler to see
	}
	stop()
	stop() // idempotent
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartNoFlagsIsNoOp(t *testing.T) {
	f := &Flags{}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartBadPathFails(t *testing.T) {
	f := &Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.Start(); err == nil {
		t.Fatal("Start succeeded with an unwritable CPU profile path")
	}
}
