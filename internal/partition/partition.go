// Package partition shards one simulated chip into tiles — contiguous
// ranges of cores with their private L1s, workload generators and power
// meter slots — and steps each tile on its own goroutine inside a sync
// quantum, while keeping the simulation bit-for-bit identical to the serial
// schedule.
//
// # Determinism model
//
// A global cycle has two phases. In the *event phase* the coordinator runs
// the shared event queue up to the cycle (protocol messages, mesh hops,
// memory replies — everything cross-tile happens here, serially). In the
// *tick phase* every core walks its pipeline. The tick phase touches only
// tile-local state — each core's pipeline, its own L1s, its own meter
// slots, its own workload generator — with exactly two exceptions: an L1
// hit schedules its completion callback on the shared event queue, and an
// L1 miss injects a coherence message into the shared mesh. Both are
// intercepted by a per-core Port: during the tick phase the Port records
// the operation into a staging spool instead of performing it; once every
// tile has finished the cycle, the coordinator drains the spools in
// ascending core order. The serial simulator ticks cores in ascending
// order too, so the merged sequence of event-queue insertions, mesh link
// reservations, fault-RNG draws and power-meter charges is *identical* to
// the serial one — not merely equivalent. Staging is active even with one
// tile, which is what makes "par-intra=N ≡ serial" provable byte-for-byte
// rather than merely plausible: both schedules run the same code.
//
// # Quantum derivation
//
// Tiles may run isolated from each other for at most QuantumCycles before
// exchanging traffic. The bound comes from the fastest possible cross-core
// interaction: a mesh message injected at cycle t is delivered no earlier
// than t + routerDelay (node-local delivery; remote traffic additionally
// pays serialization and linkLatency per hop). Delivering staged traffic at
// quantum boundaries is therefore invisible to the simulation as long as
// the quantum does not exceed that minimum latency. With the Table-1 mesh
// (routerDelay 1) the usable quantum is exactly one cycle — which the
// chip-wide budget controller, running every cycle between tick phases,
// would force anyway.
package partition

import (
	"fmt"
	"sync"

	"ptbsim/internal/eventq"
	"ptbsim/internal/mesh"
)

// QuantumCycles returns the sound sync-quantum length in cycles for a mesh
// with the given per-hop router delay: the minimum cross-tile delivery
// latency, floored at one cycle. Tiles stepping longer than this between
// staged-traffic exchanges could observe messages late; the simulator
// asserts rather than assumes the bound.
func QuantumCycles(routerDelay int64) int64 {
	if routerDelay < 1 {
		return 1
	}
	return routerDelay
}

// Fit returns the largest legal tile count for an nCores chip that does
// not exceed want: the greatest divisor of nCores in [1, want]. Sweep-level
// callers (experiment defaults, the sweep CLIs) use it to apply one
// par-intra setting across mixed core counts — sound because results are
// bit-identical at every legal tile count, so rounding the tile count down
// is a scheduling decision, never a results decision.
func Fit(nCores, want int) int {
	if nCores < 1 || want < 1 {
		return 1
	}
	if want > nCores {
		want = nCores
	}
	for d := want; d > 1; d-- {
		if nCores%d == 0 {
			return d
		}
	}
	return 1
}

// opKind discriminates staged operations.
type opKind uint8

const (
	opAfter opKind = iota // eventq.Queue.After
	opSend                // mesh.Mesh.Send
)

// op is one staged tick-phase operation, replayed verbatim at the quantum
// boundary.
type op struct {
	kind    opKind
	delay   int64  // opAfter: completion delay in cycles
	fn      func() // opAfter: completion callback
	src     int    // opSend
	dst     int    // opSend
	flits   int    // opSend
	payload any    // opSend
}

// Port is one core's staged gateway to the shared event queue and mesh. It
// satisfies the cache layer's FrontPort interface. Outside the tick phase
// (protocol receives, directory responses, the invariant drain) calls pass
// straight through; inside it they are spooled. The spool's backing array
// is retained across cycles, so a warmed-up Port stages without allocating.
type Port struct {
	run *Run
	q   *eventq.Queue
	net *mesh.Mesh
	ops []op
}

// After schedules fn to run delay cycles from now, staging it during the
// tick phase. Arrival cycles are unaffected by staging: the event queue's
// "now" does not advance between the tick phase and the drain.
func (p *Port) After(delay int64, fn func()) {
	if !p.run.inTick {
		p.q.After(delay, fn)
		return
	}
	p.ops = append(p.ops, op{kind: opAfter, delay: delay, fn: fn})
}

// Send injects a message into the mesh, staging it during the tick phase.
// Link serialization, contention bookkeeping, fault-RNG draws and NoC
// energy charges all happen at drain time, in ascending core order — the
// exact order the serial tick loop produced them.
func (p *Port) Send(src, dst, flits int, payload any) {
	if !p.run.inTick {
		p.net.Send(src, dst, flits, payload)
		return
	}
	p.ops = append(p.ops, op{kind: opSend, src: src, dst: dst, flits: flits, payload: payload})
}

// drain replays the spool in FIFO order and resets it, dropping references
// so spooled callbacks and payloads do not outlive the cycle.
func (p *Port) drain() {
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opAfter:
			p.q.After(o.delay, o.fn)
		case opSend:
			p.net.Send(o.src, o.dst, o.flits, o.payload)
		}
		o.fn, o.payload = nil, nil
	}
	p.ops = p.ops[:0]
}

// Staged reports the number of operations currently spooled (tests).
func (p *Port) Staged() int { return len(p.ops) }

// tile is one contiguous core range [lo, hi).
type tile struct{ lo, hi int }

// Run coordinates the tile workers and staging ports of one simulated chip
// for the lifetime of a simulation.
type Run struct {
	inTick bool
	ports  []*Port
	tiles  []tile

	tick  func(core int)
	inert func(core int)

	// Worker machinery, built lazily on the first parallel cycle so a
	// system that is constructed but never stepped starts no goroutines.
	started bool
	stopped bool
	fast    bool
	start   []chan struct{}
	wg      sync.WaitGroup
	panics  []any
}

// New builds the partition runner for nCores cores split into nTiles
// contiguous tiles. nTiles must be in [1, nCores] and divide nCores — the
// caller's validation layer reports friendlier typed errors; this one is
// the backstop.
func New(nCores, nTiles int, q *eventq.Queue, net *mesh.Mesh) (*Run, error) {
	if nTiles < 1 || nTiles > nCores || nCores%nTiles != 0 {
		return nil, fmt.Errorf("partition: %d tiles cannot shard %d cores (need a divisor in [1, %d])", nTiles, nCores, nCores)
	}
	r := &Run{
		ports:  make([]*Port, nCores),
		tiles:  make([]tile, nTiles),
		panics: make([]any, nTiles),
	}
	for i := range r.ports {
		r.ports[i] = &Port{run: r, q: q, net: net}
	}
	per := nCores / nTiles
	for t := range r.tiles {
		r.tiles[t] = tile{lo: t * per, hi: (t + 1) * per}
	}
	return r, nil
}

// Tiles reports the tile count.
func (r *Run) Tiles() int { return len(r.tiles) }

// Port returns core's staging port, to be installed as that core's L1
// front-side gateway.
func (r *Run) Port(core int) *Port { return r.ports[core] }

// Bind installs the per-core tick functions: tick is the full pipeline
// walk, inert the skip-ahead replay for provably quiescent cycles.
func (r *Run) Bind(tick, inert func(core int)) {
	r.tick, r.inert = tick, inert
}

// Cycle runs one tick phase across all tiles and drains the staged traffic.
// With fast set, every core is known quiescent: the inert replay is cheap
// and strictly tile-local, so it runs on the coordinator — parallel dispatch
// would cost more in barrier overhead than the replay itself. Full tick
// phases fan out to the tile workers when more than one tile is configured.
func (r *Run) Cycle(fast bool) {
	r.inTick = true
	if fast {
		for c := 0; c < len(r.ports); c++ {
			r.inert(c)
		}
	} else if len(r.tiles) > 1 {
		// The coordinator doubles as tile 0's worker: it would otherwise
		// idle in wg.Wait while the workers run, and every handshake saved
		// matters — the wake/park pair costs about a microsecond per worker
		// per cycle, which is the entire overhead budget of a tile.
		r.ensureWorkers()
		r.fast = false
		r.wg.Add(len(r.tiles) - 1)
		for _, ch := range r.start[1:] {
			ch <- struct{}{}
		}
		r.tileCycle(0)
		r.wg.Wait()
	} else {
		t := r.tiles[0]
		for c := t.lo; c < t.hi; c++ {
			r.tick(c)
		}
	}
	r.inTick = false
	for _, p := range r.ports {
		p.drain()
	}
	for t, v := range r.panics {
		if v != nil {
			r.panics[t] = nil
			panic(v)
		}
	}
}

// ensureWorkers starts one goroutine per tile beyond the first on first
// use (tile 0 runs on the coordinator). Workers park on an unbuffered
// start channel between cycles; the channel send/receive pair plus the
// WaitGroup establish the happens-before edges that make the tick phase
// visible to the race detector as properly synchronized.
func (r *Run) ensureWorkers() {
	if r.started {
		return
	}
	r.started = true
	r.start = make([]chan struct{}, len(r.tiles))
	for t := 1; t < len(r.tiles); t++ {
		r.start[t] = make(chan struct{})
		go r.worker(t)
	}
}

// worker is one tile's goroutine: it waits for the cycle start signal, runs
// its tile, and reports completion. It exits when the start channel closes.
func (r *Run) worker(t int) {
	for range r.start[t] {
		r.tileCycle(t)
		r.wg.Done()
	}
}

// tileCycle steps every core of tile t for one cycle. A panic inside a core
// tick is captured and re-raised on the coordinator after the barrier, so a
// simulation bug surfaces exactly like it does in the serial schedule
// (where the scheduler's panic-recovery turns it into a run error) instead
// of killing the process from a nameless goroutine.
func (r *Run) tileCycle(t int) {
	defer func() {
		if v := recover(); v != nil {
			r.panics[t] = v
		}
	}()
	tl := r.tiles[t]
	if r.fast {
		for c := tl.lo; c < tl.hi; c++ {
			r.inert(c)
		}
	} else {
		for c := tl.lo; c < tl.hi; c++ {
			r.tick(c)
		}
	}
}

// Stop terminates the tile workers. Idempotent; the Run remains usable for
// serial (pass-through) event processing afterwards, which the invariant
// layer's end-of-run queue drain relies on.
func (r *Run) Stop() {
	if !r.started || r.stopped {
		r.stopped = true
		return
	}
	r.stopped = true
	for _, ch := range r.start[1:] {
		close(ch)
	}
}
