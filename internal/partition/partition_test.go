package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ptbsim/internal/eventq"
)

// TestQuantumCycles pins the sync-quantum derivation: the usable quantum is
// the minimum cross-tile delivery latency (the router delay of node-local
// delivery), floored at one cycle.
func TestQuantumCycles(t *testing.T) {
	for _, tc := range []struct{ routerDelay, want int64 }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {4, 4},
	} {
		if got := QuantumCycles(tc.routerDelay); got != tc.want {
			t.Errorf("QuantumCycles(%d) = %d, want %d", tc.routerDelay, got, tc.want)
		}
	}
}

// TestFit pins the sweep-level clamp: the largest divisor of the core
// count not exceeding the requested tile count, with 1 as the floor for
// any degenerate input.
func TestFit(t *testing.T) {
	for _, tc := range []struct{ cores, want, fit int }{
		{8, 8, 8}, {8, 5, 4}, {8, 3, 2}, {8, 1, 1},
		{2, 8, 2}, {6, 4, 3}, {7, 6, 1}, {64, 48, 32},
		{4, 0, 1}, {4, -2, 1}, {0, 8, 1},
	} {
		if got := Fit(tc.cores, tc.want); got != tc.fit {
			t.Errorf("Fit(%d, %d) = %d, want %d", tc.cores, tc.want, got, tc.fit)
		}
	}
	// The result is always a legal New shard.
	for cores := 1; cores <= 32; cores++ {
		for want := 1; want <= 32; want++ {
			var q eventq.Queue
			r, err := New(cores, Fit(cores, want), &q, nil)
			if err != nil {
				t.Fatalf("New(%d, Fit(%d, %d)): %v", cores, cores, want, err)
			}
			r.Stop()
		}
	}
}

// TestNewRejectsBadShards pins the backstop validation: tile counts must be
// divisors of the core count in [1, nCores].
func TestNewRejectsBadShards(t *testing.T) {
	var q eventq.Queue
	for _, tc := range []struct{ cores, tiles int }{
		{8, 0}, {8, -1}, {8, 3}, {8, 16}, {6, 4},
	} {
		if _, err := New(tc.cores, tc.tiles, &q, nil); err == nil {
			t.Errorf("New(%d cores, %d tiles) accepted a non-divisor shard", tc.cores, tc.tiles)
		}
	}
	if _, err := New(8, 4, &q, nil); err != nil {
		t.Errorf("New(8, 4) rejected a legal shard: %v", err)
	}
}

// opSchedule is one randomly drawn tick-phase workload: for each core, the
// delays of the After operations it stages during the cycle.
type opSchedule [][]int64

// mergedOrder runs one tick phase of the schedule across nTiles tiles and
// returns the order in which the staged completions actually execute. Each
// completion is tagged core.seq, so the returned sequence is exactly the
// merged event order the rest of the simulator would observe.
func mergedOrder(t *testing.T, sched opSchedule, nTiles int) []string {
	t.Helper()
	var q eventq.Queue
	r, err := New(len(sched), nTiles, &q, nil)
	if err != nil {
		t.Fatalf("New(%d cores, %d tiles): %v", len(sched), nTiles, err)
	}
	defer r.Stop()
	var got []string
	r.Bind(func(c int) {
		for k, d := range sched[c] {
			c, k := c, k
			r.Port(c).After(d, func() {
				got = append(got, fmt.Sprintf("%d.%d", c, k))
			})
		}
	}, func(int) {})
	r.Cycle(false)
	q.RunUntil(1 << 20)
	return got
}

// TestRandomPartitionsPreserveMergedOrder is the property test behind the
// conformance suite: for random chip sizes, random (legal) tile partitions
// and random per-core operation schedules, the merged completion order of a
// sharded tick phase is identical to the serial one. The staging ports
// drain in ascending core order at the quantum barrier, so this must hold
// for every partition — not just the ones the short matrix samples.
func TestRandomPartitionsPreserveMergedOrder(t *testing.T) {
	prop := func(coreSel, tileSel uint8, seed int64) bool {
		nCores := 1 + int(coreSel)%64
		var divs []int
		for d := 1; d <= nCores; d++ {
			if nCores%d == 0 {
				divs = append(divs, d)
			}
		}
		nTiles := divs[int(tileSel)%len(divs)]
		rng := rand.New(rand.NewSource(seed))
		sched := make(opSchedule, nCores)
		for c := range sched {
			for k, n := 0, rng.Intn(4); k < n; k++ {
				sched[c] = append(sched[c], int64(1+rng.Intn(6)))
			}
		}
		serial := mergedOrder(t, sched, 1)
		sharded := mergedOrder(t, sched, nTiles)
		if !reflect.DeepEqual(serial, sharded) {
			t.Logf("%d cores / %d tiles:\n serial  %v\n sharded %v", nCores, nTiles, serial, sharded)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPortPassThroughOutsideTick pins the Port contract that the event
// phase relies on: outside the tick phase nothing is staged — operations
// reach the shared queue immediately, in call order.
func TestPortPassThroughOutsideTick(t *testing.T) {
	var q eventq.Queue
	r, err := New(4, 2, &q, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	ran := false
	r.Port(2).After(1, func() { ran = true })
	if staged := r.Port(2).Staged(); staged != 0 {
		t.Fatalf("pass-through After staged %d ops", staged)
	}
	q.RunUntil(1)
	if !ran {
		t.Fatal("pass-through After never executed")
	}
}

// TestCyclePropagatesTilePanics pins that a panic inside a worker-stepped
// core tick resurfaces on the coordinator — simulation bugs must fail the
// run exactly like the serial schedule does, not kill the process from a
// nameless goroutine.
func TestCyclePropagatesTilePanics(t *testing.T) {
	var q eventq.Queue
	r, err := New(8, 4, &q, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	r.Bind(func(c int) {
		if c == 5 {
			panic("tile bug")
		}
	}, func(int) {})
	defer func() {
		if v := recover(); v != "tile bug" {
			t.Fatalf("recovered %v, want the tile panic", v)
		}
	}()
	r.Cycle(false)
	t.Fatal("Cycle returned instead of re-panicking")
}
