package sim

import (
	"context"
	"errors"
	"fmt"
	"os"

	"ptbsim/internal/budget"
	"ptbsim/internal/ckpt"
	"ptbsim/internal/core"
	"ptbsim/internal/metrics"
)

// Checkpoint/restore (DESIGN.md §14). The simulator is deterministic —
// every run is a pure function of its config — so a snapshot does not
// serialize the object graph (live state is full of closures: pending
// events, MSHR completion callbacks, pooled records). It records the
// run's identity, the exact cycle, and a digest over every mutable
// result-determining component. Restore rebuilds the system from the
// config, replays to the snapshot cycle, verifies the recomputed digest
// against the stored one, and continues — so restore-then-run-to-end is
// byte-identical to an uninterrupted run by construction, and the digest
// attests that the reconstruction was faithful (a code or config skew
// between writer and reader surfaces as ckpt.ErrStateMismatch, never as
// a silently different result).

// StateHash digests every mutable result-determining component of the
// system: cores (ROB, fetch pipe, predictor, PTHT), workload generators
// (rng streams, branch patterns), caches and directory, mesh, memory,
// event queue schedule, power meter ledger, budget state, the active
// controller (balancer ledger and in-flight token batches included),
// collector, thermal model, sync table, and the fault engine's rng
// streams. Telemetry (obs) is deliberately excluded: it is
// result-neutral, not part of the stable config schema, and a resumed
// run may attach a different observer; replay reconstructs its cursor.
func (s *System) StateHash() [32]byte {
	h := ckpt.NewHasher()
	h.WriteI64(s.cycle)
	h.WriteI64(s.fastCycles)
	h.WriteBool(s.hitMax)
	s.q.HashState(h)
	for _, c := range s.cores {
		c.HashState(h)
	}
	for _, g := range s.gens {
		g.HashState(h)
	}
	s.hier.HashState(h)
	s.net.HashState(h)
	s.meter.HashState(h)
	s.st.HashState(h)
	hashController(h, s.ctl)
	s.col.HashState(h)
	s.therm.HashState(h)
	s.sync.HashState(h)
	s.faults.HashState(h)
	s.sensor.HashState(h)
	return h.Sum()
}

// hashController dispatches over the concrete controller types wired by
// NewSystem. Shared by the chip-wide switch and the balancers' inner
// controllers.
func hashController(h *ckpt.Hasher, ctl budget.Controller) {
	switch c := ctl.(type) {
	case budget.None:
		c.HashState(h)
	case *budget.DVFSController:
		c.HashState(h)
	case *budget.TwoLevel:
		c.HashState(h)
	case *budget.MaxBIPS:
		c.HashState(h)
	case *core.Balancer:
		c.HashState(h)
	case *core.ClusteredBalancer:
		c.HashState(h)
	case *core.SpinGate:
		c.HashState(h)
	}
}

// tickCheckpoint runs at the end of every Step while a plan is armed. A
// write failure latches ckErr and disables further snapshots — the run
// itself never fails on checkpoint I/O (degraded, never wrong).
func (s *System) tickCheckpoint() {
	if s.ckErr != nil || s.cycle < s.ckNext {
		return
	}
	s.ckNext = s.cycle + s.ck.Every
	snap := &ckpt.Snapshot{
		Key:    s.ck.Key,
		Config: s.ck.Config,
		Cycle:  s.cycle,
		State:  s.StateHash(),
	}
	if err := ckpt.WriteFile(s.ck.Path(), snap); err != nil {
		s.ckErr = fmt.Errorf("sim: checkpointing disabled: %w", err)
		return
	}
	s.ckWritten++
	if s.ck.StopAfter > 0 && s.ckWritten >= s.ck.StopAfter {
		s.ckStop = true
	}
}

// CheckpointErr reports the latched snapshot-write failure, if any. A
// non-nil error means the run completed correctly but stopped writing
// snapshots at some point.
func (s *System) CheckpointErr() error { return s.ckErr }

// Snapshots reports how many snapshots this process wrote for the run.
func (s *System) Snapshots() int { return s.ckWritten }

// ResumeContext restores a run from snap and completes it: it builds a
// fresh system from cfg, deterministically replays to snap.Cycle,
// verifies the recomputed state digest against the snapshot, and then
// finishes the run exactly as an uninterrupted RunContext would. The
// returned result is byte-identical to a fresh run's.
//
// Failures are typed: a snapshot whose key disagrees with the plan's, or
// whose replayed state diverges (code skew between snapshot writer and
// reader), wraps ckpt.ErrStateMismatch — callers fall back to
// recomputing from scratch.
func ResumeContext(ctx context.Context, cfg Config, snap *ckpt.Snapshot) (*metrics.RunResult, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if s.ck != nil && snap.Key != s.ck.Key {
		return nil, fmt.Errorf("sim: %w: snapshot is for a different run (key %q)",
			ckpt.ErrStateMismatch, snap.Key)
	}
	if snap.Cycle < 1 {
		return nil, fmt.Errorf("sim: %w: snapshot cycle %d", ckpt.ErrStateMismatch, snap.Cycle)
	}
	// Disarm the plan during replay: the prefix's snapshots already exist,
	// and a crash-drill StopAfter must count only post-resume snapshots.
	plan := s.ck
	s.ck = nil
	for s.cycle < snap.Cycle {
		s.Step()
		if s.cycle >= snap.Cycle {
			break
		}
		if s.done() || s.cycle >= s.cfg.MaxCycles {
			s.par.Stop()
			return nil, fmt.Errorf("sim: %w: run ends at cycle %d, before the snapshot cycle %d",
				ckpt.ErrStateMismatch, s.cycle, snap.Cycle)
		}
		if s.cycle%cancelCheckCycles == 0 {
			if err := ctx.Err(); err != nil {
				s.par.Stop()
				return nil, fmt.Errorf("sim: %s/%d/%s resume cancelled at cycle %d: %w",
					s.cfg.Benchmark.Name, s.cfg.Cores, s.cfg.Technique, s.cycle, err)
			}
		}
	}
	if got := s.StateHash(); got != snap.State {
		s.par.Stop()
		return nil, fmt.Errorf("sim: %w: replayed state diverges at cycle %d (snapshot written by a different build or config?)",
			ckpt.ErrStateMismatch, snap.Cycle)
	}
	if plan != nil {
		// Keep snapshotting on the original cadence, but drop the
		// crash-drill knob: StopAfter simulates the first crash; a resumed
		// run must complete.
		rearmed := *plan
		rearmed.StopAfter = 0
		s.ck = &rearmed
		s.ckNext = snap.Cycle + plan.Every
	}
	return s.runFrom(ctx, true)
}

// RunOrResumeContext is the crash-recovery front door over RunContext:
// with a checkpoint plan armed it resumes from the plan's snapshot when
// a usable one exists, falls back to a fresh (still-snapshotting) run
// when the snapshot is missing, corrupt, version-skewed or mismatched,
// and deletes the snapshot once the run completes — the result is the
// durable artifact; the snapshot has served its purpose. Without a plan
// it is exactly RunContext.
func RunOrResumeContext(ctx context.Context, cfg Config) (*metrics.RunResult, error) {
	plan := cfg.Checkpoint
	if plan == nil || plan.Every <= 0 {
		return RunContext(ctx, cfg)
	}
	if snap, err := ckpt.ReadFile(plan.Path()); err == nil && snap.Key == plan.Key {
		res, rerr := ResumeContext(ctx, cfg, snap)
		if rerr == nil {
			_ = os.Remove(plan.Path())
			return res, nil
		}
		if !errors.Is(rerr, ckpt.ErrStateMismatch) {
			// Cancellation, invariant violations, the crash drill — real run
			// outcomes, not snapshot problems.
			return nil, rerr
		}
		// Mismatched snapshot (writer/reader skew): recompute from scratch.
	}
	// No snapshot, an unreadable one, or a mismatched one. The fresh run
	// overwrites the stale file on its first period, so a bad snapshot can
	// never wedge the configuration.
	res, err := RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	_ = os.Remove(plan.Path())
	return res, nil
}
