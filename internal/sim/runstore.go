package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ptbsim/internal/metrics"
)

// RunStore is a persistent sched.Cache for sweep cells: every completed
// run is written through to one JSON file under dir, so a restarted
// sweep (same flags, same directory) skips every cell that already
// finished and recomputes only what was lost. Files are self-describing
// — the full cache key rides inside and is verified at load, so a file
// that was truncated, hand-edited, or belongs to a different key is
// skipped (and counted) rather than served: degraded, never wrong.
//
// encoding/json round-trips float64 bit-exactly, so a result loaded from
// disk is byte-identical to the freshly computed one.
type RunStore struct {
	dir string

	mu       sync.Mutex
	mem      map[string]*metrics.RunResult
	err      error // first write failure, latched
	rejected int   // unreadable or mismatched files skipped at open
}

// runCell is the on-disk form of one cached sweep cell.
type runCell struct {
	Key    string             `json:"key"`
	Result *metrics.RunResult `json:"result"`
}

// OpenRunStore opens (creating if needed) a run store rooted at dir and
// loads every valid cell into memory. Unreadable or key-mismatched files
// are skipped and counted (Rejected), never served.
func OpenRunStore(dir string) (*RunStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: runstore: %w", err)
	}
	st := &RunStore{dir: dir, mem: make(map[string]*metrics.RunResult)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sim: runstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".run.json") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			st.rejected++
			continue
		}
		var cell runCell
		if err := json.Unmarshal(data, &cell); err != nil ||
			cell.Result == nil || cellFileName(cell.Key) != name {
			st.rejected++
			continue
		}
		st.mem[cell.Key] = cell.Result
	}
	return st, nil
}

func cellFileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".run.json"
}

// Get reports the stored result for key, if any.
func (st *RunStore) Get(key string) (*metrics.RunResult, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.mem[key]
	return v, ok
}

// Put stores a completed cell in memory and writes it through to disk
// atomically (temp file + rename). A write failure latches Err and
// degrades the store to memory-only — results are never lost to the
// caller, only to the next process.
func (st *RunStore) Put(key string, v *metrics.RunResult) {
	st.mu.Lock()
	st.mem[key] = v
	st.mu.Unlock()

	data, err := json.Marshal(runCell{Key: key, Result: v})
	if err != nil {
		st.latch(err)
		return
	}
	tmp, err := os.CreateTemp(st.dir, ".cell-*")
	if err != nil {
		st.latch(err)
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		st.latch(err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		st.latch(err)
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, cellFileName(key))); err != nil {
		os.Remove(tmp.Name())
		st.latch(err)
	}
}

func (st *RunStore) latch(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = fmt.Errorf("sim: runstore degraded to memory-only: %w", err)
	}
	st.mu.Unlock()
}

// Len reports the number of cached cells.
func (st *RunStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.mem)
}

// Err reports the latched write failure, if any.
func (st *RunStore) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Rejected reports how many files were skipped at open.
func (st *RunStore) Rejected() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rejected
}
