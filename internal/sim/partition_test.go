package sim

import (
	"fmt"
	"reflect"
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/fault"
	"ptbsim/internal/obs"
)

// conformanceConfigs is the short conformance matrix: every technique under
// its distinct controller stack, the PTB family across all three policies,
// the clustered balancer, and fault-injected runs — each with the runtime
// invariant layer on. The -race CI job runs exactly this matrix at
// par-intra=8 (see Makefile race-intra).
func conformanceConfigs() []Config {
	cfgs := []Config{
		tiny("ocean", 8, TechNone, core.PolicyToAll),
		tiny("ocean", 8, TechDVFS, core.PolicyToAll),
		tiny("fft", 8, TechDFS, core.PolicyToAll),
		tiny("fluidanimate", 8, Tech2Level, core.PolicyToAll),
		tiny("ocean", 8, TechMaxBIPS, core.PolicyToAll),
		tiny("ocean", 8, TechPTB, core.PolicyToAll),
		tiny("fluidanimate", 8, TechPTB, core.PolicyToOne),
		tiny("raytrace", 8, TechPTB, core.PolicyDynamic),
		tiny("barnes", 8, TechPTBSpinGate, core.PolicyDynamic),
	}
	clustered := tiny("ocean", 8, TechPTB, core.PolicyDynamic)
	clustered.PTBClusterSize = 4
	cfgs = append(cfgs, clustered)
	faulted := tiny("ocean", 8, TechPTB, core.PolicyDynamic)
	faulted.Faults = &fault.Spec{Seed: 7, TokenDrop: 0.01, SensorNoise: 0.02, LinkStall: 0.005, FlitCorrupt: 0.002}
	cfgs = append(cfgs, faulted)
	zeroFault := tiny("fft", 8, TechPTB, core.PolicyToAll)
	zeroFault.Faults = &fault.Spec{Seed: 3}
	cfgs = append(cfgs, zeroFault)
	return cfgs
}

func conformanceName(cfg Config) string {
	name := cfg.Benchmark.Name + "/" + string(cfg.Technique)
	if cfg.Technique == TechPTB || cfg.Technique == TechPTBSpinGate {
		name += "/" + cfg.Policy.String()
	}
	if cfg.PTBClusterSize > 0 {
		name += "/clustered"
	}
	if cfg.Faults != nil {
		name += "+faults"
	}
	return name
}

// TestIntraParallelConformance is the tentpole acceptance suite: for every
// configuration of the short matrix, sharding the chip across 2, 4 and 8
// tiles must reproduce the serial run exactly — every result field,
// including the float-valued energy ledgers whose last-ULP rounding depends
// on accumulation order. reflect.DeepEqual over the full RunResult is
// strictly stronger than comparing digests. Invariants stay on, so each
// parallel schedule also re-certifies the conservation laws.
func TestIntraParallelConformance(t *testing.T) {
	for _, base := range conformanceConfigs() {
		t.Run(conformanceName(base), func(t *testing.T) {
			serialCfg := base
			serialCfg.IntraParallel = 1
			serialCfg.Invariants = true
			serial, err := RunContext(t.Context(), serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, tiles := range []int{2, 4, 8} {
				cfg := base
				cfg.IntraParallel = tiles
				cfg.Invariants = true
				got, err := RunContext(t.Context(), cfg)
				if err != nil {
					t.Fatalf("par-intra=%d: %v", tiles, err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Errorf("par-intra=%d diverges from serial:\n par    %+v\n serial %+v", tiles, got, serial)
				}
			}
		})
	}
}

// TestIntraParallelComposesWithObservability pins that the telemetry
// recorder — whose epoch fills run at the quantum barrier, never inside the
// tick phase — sees identical samples from a sharded run, and that the
// skip-ahead fast path still engages under sharding.
func TestIntraParallelComposesWithObservability(t *testing.T) {
	run := func(tiles int) ([]obs.Sample, *System) {
		cfg := tiny("ocean", 8, TechPTB, core.PolicyDynamic)
		cfg.IntraParallel = tiles
		cfg.Invariants = true
		cfg.Observe = &obs.Config{Every: 512, Ring: 4096}
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunContext(t.Context()); err != nil {
			t.Fatal(err)
		}
		return s.Telemetry().Samples(), s
	}
	serial, _ := run(1)
	sharded, s := run(8)
	if len(serial) == 0 {
		t.Fatal("telemetry recorded no samples")
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("telemetry diverges between serial and par-intra=8 (%d vs %d samples)", len(serial), len(sharded))
	}
	if s.FastCycles() == 0 {
		t.Fatal("skip-ahead never engaged under sharding")
	}
}

// TestIntraParallelBigChips runs the post-paper chip sizes the partition
// layer unlocks — 64 cores chip-wide and 256 cores under the clustered
// balancer — serial vs. maximally sharded, invariants on. Scales are tiny:
// the point is exercising the 8×8 and 16×16 meshes and the big-chip PTB
// latency rows, not throughput.
func TestIntraParallelBigChips(t *testing.T) {
	if testing.Short() {
		t.Skip("big-chip conformance skipped in -short")
	}
	big := func(cores, cluster int, scale float64) Config {
		cfg := tiny("ocean", cores, TechPTB, core.PolicyDynamic)
		cfg.WorkloadScale = scale
		cfg.PTBClusterSize = cluster
		cfg.Invariants = true
		return cfg
	}
	for _, cfg := range []Config{big(64, 0, 0.02), big(256, 16, 0.01)} {
		t.Run(fmt.Sprintf("%dcores", cfg.Cores), func(t *testing.T) {
			serialCfg := cfg
			serialCfg.IntraParallel = 1
			serial, err := RunContext(t.Context(), serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			parCfg := cfg
			parCfg.IntraParallel = cfg.Cores / 8
			par, err := RunContext(t.Context(), parCfg)
			if err != nil {
				t.Fatalf("par-intra=%d: %v", parCfg.IntraParallel, err)
			}
			if !reflect.DeepEqual(par, serial) {
				t.Errorf("par-intra=%d diverges from serial on %d cores", parCfg.IntraParallel, cfg.Cores)
			}
		})
	}
}

// TestIntraParallelRejectsBadTileCounts pins the validation backstop at the
// sim layer (the public Config.Validate adds the typed sentinel on top).
func TestIntraParallelRejectsBadTileCounts(t *testing.T) {
	for _, tiles := range []int{-1, 3, 16} {
		cfg := tiny("ocean", 8, TechNone, core.PolicyToAll)
		cfg.IntraParallel = tiles
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("NewSystem accepted IntraParallel=%d on 8 cores", tiles)
		}
	}
}
