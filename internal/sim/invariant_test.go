package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/invariant"
	"ptbsim/internal/workload"
)

func spec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return s
}

// TestInvariantsCleanAcrossTechniques runs every technique (plus the
// clustered PTB variant) with the invariant layer on and demands a
// zero-violation run with a meaningful number of evaluations.
func TestInvariantsCleanAcrossTechniques(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"none", Config{Technique: TechNone}},
		{"dvfs", Config{Technique: TechDVFS}},
		{"dfs", Config{Technique: TechDFS}},
		{"2level", Config{Technique: Tech2Level}},
		{"maxbips", Config{Technique: TechMaxBIPS}},
		{"ptb-dynamic", Config{Technique: TechPTB, Policy: core.PolicyDynamic}},
		{"ptb-toone", Config{Technique: TechPTB, Policy: core.PolicyToOne}},
		{"ptbgate", Config{Technique: TechPTBSpinGate}},
		{"ptb-clustered", Config{Technique: TechPTB, Cores: 8, PTBClusterSize: 4}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Benchmark = spec(t, "ocean")
			cfg.WorkloadScale = 0.05
			cfg.Invariants = true
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.RunContext(context.Background()); err != nil {
				t.Fatalf("invariant violation: %v", err)
			}
			if evals := s.Invariants().Evals(); evals < 10 {
				t.Fatalf("only %d invariant evaluations ran; the layer is not wired in", evals)
			}
		})
	}
}

// TestInvariantViolationWrapsSentinel forces a violation (an epoch check
// that always fails) and verifies the run error wraps invariant.ErrViolated
// so public callers can branch with errors.Is.
func TestInvariantViolationWrapsSentinel(t *testing.T) {
	cfg := Config{Benchmark: spec(t, "fft"), WorkloadScale: 0.02, Invariants: true}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Invariants().Register("always-broken", func() error {
		return errors.New("synthetic failure")
	})
	_, err = s.RunContext(context.Background())
	if err == nil {
		t.Fatal("violating run returned nil error")
	}
	if !errors.Is(err, invariant.ErrViolated) {
		t.Fatalf("error %v does not wrap invariant.ErrViolated", err)
	}
	var verr *invariant.ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %v does not expose *invariant.ViolationError", err)
	}
	if len(verr.Violations) == 0 {
		t.Fatal("ViolationError carries no violations")
	}
}

// TestInvariantsDisabledByDefault checks the zero-cost-off contract: no
// checker is built unless Config.Invariants is set.
func TestInvariantsDisabledByDefault(t *testing.T) {
	s, err := NewSystem(Config{Benchmark: spec(t, "fft"), WorkloadScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if s.Invariants() != nil {
		t.Fatal("checker built without Config.Invariants")
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPTBUnboundedBudgetEquivalence is the differential law behind PTB:
// with the budget lifted far above peak the chip is never over budget, so
// the balancer never collects, the governor never leaves its fastest mode
// and the clipper never engages — PTB must reproduce the baseline timing
// exactly (same cycles, same committed instructions), differing only by
// the power-management energy of the idle PTB machinery.
func TestPTBUnboundedBudgetEquivalence(t *testing.T) {
	run := func(tech Technique) *System {
		s, err := NewSystem(Config{
			Benchmark:     spec(t, "ocean"),
			Technique:     tech,
			Policy:        core.PolicyDynamic,
			BudgetFrac:    8, // far above structural peak: never over budget
			WorkloadScale: 0.05,
			Invariants:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base, err := run(TechNone).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ptbSys := run(TechPTB)
	ptb, err := ptbSys.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != ptb.Cycles {
		t.Errorf("cycles diverge at unbounded budget: none=%d ptb=%d", base.Cycles, ptb.Cycles)
	}
	if base.Committed != ptb.Committed {
		t.Errorf("committed diverge at unbounded budget: none=%d ptb=%d", base.Committed, ptb.Committed)
	}
	if ptb.TokenDonatedPJ != 0 || ptb.TokenGrantedPJ != 0 {
		t.Errorf("balancer moved tokens (%.3f donated, %.3f granted) with nothing over budget",
			ptb.TokenDonatedPJ, ptb.TokenGrantedPJ)
	}
	// Per-component energy matches except the power-management group, which
	// carries PTB's own (idle) machinery.
	for comp, baseJ := range base.ComponentJ {
		if comp == "power-mgmt" {
			continue
		}
		ptbJ := ptb.ComponentJ[comp]
		if diff := math.Abs(ptbJ - baseJ); diff > 1e-12+1e-9*math.Abs(baseJ) {
			t.Errorf("component %q energy diverges: none=%g ptb=%g", comp, baseJ, ptbJ)
		}
	}
}

// TestEnergyMonotoneInScale checks the metamorphic law that more work costs
// more energy: scaling the workload up strictly increases both runtime and
// total energy for the uncontrolled baseline.
func TestEnergyMonotoneInScale(t *testing.T) {
	scales := []float64{0.05, 0.1, 0.2}
	var prevEnergy float64
	var prevCycles int64
	for i, sc := range scales {
		s, err := NewSystem(Config{Benchmark: spec(t, "radix"), WorkloadScale: sc, Invariants: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if res.EnergyJ <= prevEnergy {
				t.Errorf("energy not monotone in scale: %.3g J at %.2f <= %.3g J at %.2f",
					res.EnergyJ, sc, prevEnergy, scales[i-1])
			}
			if res.Cycles <= prevCycles {
				t.Errorf("cycles not monotone in scale: %d at %.2f <= %d at %.2f",
					res.Cycles, sc, prevCycles, scales[i-1])
			}
		}
		prevEnergy, prevCycles = res.EnergyJ, res.Cycles
	}
}
