package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"ptbsim/internal/workload"
)

func TestRunContextCompletes(t *testing.T) {
	spec, _ := workload.ByName("fft")
	res, err := RunContext(context.Background(), Config{
		Benchmark: spec, Cores: 2, WorkloadScale: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Committed == 0 {
		t.Fatalf("empty result %+v", res)
	}
}

func TestRunContextCancelled(t *testing.T) {
	spec, _ := workload.ByName("ocean")
	s, err := NewSystem(Config{Benchmark: spec, Cores: 4, WorkloadScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := s.RunContext(ctx)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, %v; want nil, context.Canceled", res, err)
	}
	// A pre-cancelled run must stop at the first poll, not simulate the
	// full-scale workload (which takes minutes).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestRunContextTwice(t *testing.T) {
	spec, _ := workload.ByName("fft")
	s, err := NewSystem(Config{Benchmark: spec, Cores: 2, WorkloadScale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(context.Background()); err == nil {
		t.Fatal("second RunContext must fail")
	}
}
