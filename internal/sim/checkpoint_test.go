package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ptbsim/internal/ckpt"
	"ptbsim/internal/core"
	"ptbsim/internal/fault"
	"ptbsim/internal/workload"
)

func ckptConfig(t *testing.T, tech Technique, faults *fault.Spec) Config {
	t.Helper()
	spec, ok := workload.ByName("fft")
	if !ok {
		t.Fatal("fft spec missing")
	}
	return Config{
		Benchmark:     spec,
		Cores:         4,
		Technique:     tech,
		Policy:        core.PolicyDynamic,
		WorkloadScale: 0.02,
		Invariants:    true,
		Faults:        faults,
	}
}

// TestCheckpointRoundTripIdentity is the tentpole guarantee at the sim
// layer: run fresh, then restore from a mid-run snapshot in a new System
// and run to completion — the results must be deep-equal, including
// every float. Swept across techniques, fault injection, and intra-run
// tile parallelism.
func TestCheckpointRoundTripIdentity(t *testing.T) {
	cells := []struct {
		name   string
		tech   Technique
		faults *fault.Spec
		par    int
	}{
		{"none", TechNone, nil, 1},
		{"ptb", TechPTB, nil, 1},
		{"ptb-par4", TechPTB, nil, 4},
		{"2level", Tech2Level, nil, 1},
		{"maxbips", TechMaxBIPS, nil, 1},
		{"spingate", TechPTBSpinGate, nil, 1},
		{"ptb-faulted", TechPTB, &fault.Spec{Seed: 42, TokenDrop: 0.2, SensorNoise: 0.02}, 1},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := ckptConfig(t, cell.tech, cell.faults)
			cfg.IntraParallel = cell.par

			fresh, err := RunContext(context.Background(), cfg)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			if fresh.Cycles < 2000 {
				t.Fatalf("run too short (%d cycles) to checkpoint mid-way", fresh.Cycles)
			}

			// Re-run with a plan that stops after one mid-run snapshot —
			// the deterministic "crash".
			plan := &ckpt.Plan{Every: fresh.Cycles / 2, Dir: dir, Key: cell.name, StopAfter: 1}
			cfg2 := cfg
			cfg2.Checkpoint = plan
			_, err = RunContext(context.Background(), cfg2)
			if !errors.Is(err, ckpt.ErrStopped) {
				t.Fatalf("crash drill: want ErrStopped, got %v", err)
			}

			snap, err := ckpt.ReadFile(plan.Path())
			if err != nil {
				t.Fatalf("reading snapshot: %v", err)
			}
			if snap.Cycle != fresh.Cycles/2 {
				t.Fatalf("snapshot at cycle %d, want %d", snap.Cycle, fresh.Cycles/2)
			}

			resumed, err := ResumeContext(context.Background(), cfg2, snap)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !reflect.DeepEqual(fresh, resumed) {
				t.Errorf("resumed result differs from uninterrupted run:\n fresh   %+v\n resumed %+v", fresh, resumed)
			}
		})
	}
}

// TestCheckpointLastCycleSnapshot pins the off-by-one edge: a snapshot
// written at the run's final cycle must resume into an immediate clean
// finish, not one extra Step.
func TestCheckpointLastCycleSnapshot(t *testing.T) {
	cfg := ckptConfig(t, TechPTB, nil)
	fresh, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plan := &ckpt.Plan{Every: fresh.Cycles, Dir: dir, Key: "last"}
	cfg2 := cfg
	cfg2.Checkpoint = plan
	ck, err := RunContext(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, ck) {
		t.Fatal("checkpointing changed the result")
	}
	snap, err := ckpt.ReadFile(plan.Path())
	if err != nil {
		t.Fatalf("no final-cycle snapshot: %v", err)
	}
	if snap.Cycle != fresh.Cycles {
		t.Fatalf("snapshot at %d, want final cycle %d", snap.Cycle, fresh.Cycles)
	}
	resumed, err := ResumeContext(context.Background(), cfg2, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, resumed) {
		t.Error("final-cycle resume diverged")
	}
}

// TestCheckpointPassive pins that an armed plan never changes results:
// checkpointed and plain runs are deep-equal.
func TestCheckpointPassive(t *testing.T) {
	cfg := ckptConfig(t, TechPTB, nil)
	fresh, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Checkpoint = &ckpt.Plan{Every: 2000, Dir: t.TempDir(), Key: "passive"}
	ck, err := RunContext(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, ck) {
		t.Fatal("periodic snapshots changed the result")
	}
}

// TestResumeRejectsMismatch: a snapshot from another run's state (or a
// tampered digest) must be rejected with ErrStateMismatch, and the
// caller can recover by running fresh.
func TestResumeRejectsMismatch(t *testing.T) {
	cfg := ckptConfig(t, TechPTB, nil)
	cfg.Checkpoint = &ckpt.Plan{Every: 3000, Dir: t.TempDir(), Key: "m", StopAfter: 1}
	_, err := RunContext(context.Background(), cfg)
	if !errors.Is(err, ckpt.ErrStopped) {
		t.Fatal(err)
	}
	snap, err := ckpt.ReadFile(cfg.Checkpoint.Path())
	if err != nil {
		t.Fatal(err)
	}
	snap.State[0] ^= 1
	if _, err := ResumeContext(context.Background(), cfg, snap); !errors.Is(err, ckpt.ErrStateMismatch) {
		t.Fatalf("tampered state digest: want ErrStateMismatch, got %v", err)
	}
	snap.State[0] ^= 1
	snap.Key = "someone-else"
	if _, err := ResumeContext(context.Background(), cfg, snap); !errors.Is(err, ckpt.ErrStateMismatch) {
		t.Fatalf("foreign key: want ErrStateMismatch, got %v", err)
	}
	// A snapshot claiming a cycle past the whole run must be rejected too.
	snap.Key = "m"
	snap.Cycle = 1 << 40
	if _, err := ResumeContext(context.Background(), cfg, snap); !errors.Is(err, ckpt.ErrStateMismatch) {
		t.Fatalf("cycle past run end: want ErrStateMismatch, got %v", err)
	}
}

// TestCheckpointWriteFailureDegrades: an unwritable snapshot dir latches
// CheckpointErr but the run itself completes with the right result.
func TestCheckpointWriteFailureDegrades(t *testing.T) {
	cfg := ckptConfig(t, TechNone, nil)
	fresh, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A file where the snapshot dir should be makes MkdirAll fail.
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Checkpoint = &ckpt.Plan{Every: 1000, Dir: filepath.Join(bad, "sub"), Key: "d"}
	s, err := NewSystem(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContext(context.Background())
	if err != nil {
		t.Fatalf("run must survive checkpoint I/O failure: %v", err)
	}
	if s.CheckpointErr() == nil {
		t.Fatal("write failure not latched")
	}
	if s.Snapshots() != 0 {
		t.Fatal("snapshots counted despite failure")
	}
	if !reflect.DeepEqual(fresh, res) {
		t.Fatal("degraded run changed the result")
	}
}
