package sim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"ptbsim/internal/ckpt"
	"ptbsim/internal/core"
	"ptbsim/internal/cpu"
	"ptbsim/internal/fault"
	"ptbsim/internal/mesh"
	"ptbsim/internal/metrics"
	"ptbsim/internal/obs"
	"ptbsim/internal/partition"
	"ptbsim/internal/power"
	"ptbsim/internal/sched"
	"ptbsim/internal/workload"
)

// AllBenchmarks lists the evaluated benchmarks in the paper's order.
func AllBenchmarks() []string {
	var names []string
	for _, s := range workload.Catalog() {
		names = append(names, s.Name)
	}
	return names
}

// CoreCounts are the CMP sizes evaluated in the paper.
func CoreCounts() []int { return []int{2, 4, 8, 16} }

// Runner executes and caches simulation runs so every figure normalizes
// against the same base cases. All runs flow through one parallel
// scheduler (internal/sched), so concurrent requests for the same
// configuration coalesce onto a single simulation instead of racing to
// compute it twice.
type Runner struct {
	// Scale shortens workloads uniformly (1.0 = Table-2 size).
	Scale float64
	// MaxCycles caps each run.
	MaxCycles int64
	// CheckInvariants enables the runtime invariant layer on every run this
	// runner executes; a violation fails the run with an error wrapping
	// invariant.ErrViolated. Set before the first run — results are cached
	// per configuration, and the flag is not part of the cache key.
	CheckInvariants bool
	// Faults, when non-nil, wires the fault-injection engine into every run
	// this runner executes (see sim.Config.Faults). Set before the first
	// run; the spec is part of the cache key, so runners at different fault
	// rates never share results.
	Faults *fault.Spec
	// Observe, when non-nil, wires the epoch-sampled telemetry recorder
	// into every run this runner executes (see sim.Config.Observe). Set
	// before the first run. The runner executes runs concurrently, so a
	// shared Sink must be serialized (obs.Synchronized). Telemetry is not
	// part of the cache key — it cannot change results — so cached runs
	// emit no samples; only fresh simulations stream.
	Observe *obs.Config
	// CheckpointEvery and CheckpointDir, when both set, arm crash-recovery
	// snapshots on every run this runner executes: each cell periodically
	// saves a snapshot keyed by its full cache key, a restarted sweep
	// resumes partial cells from their latest snapshot (byte-identically —
	// see DESIGN.md §14), and a cell's snapshot is deleted the moment the
	// cell completes. Set before the first run. Like telemetry they stay
	// out of the cache key: snapshots cannot change results.
	CheckpointEvery int64
	CheckpointDir   string
	// CheckpointStop, when > 0, arms the crash drill on every cell: a run
	// aborts with ckpt.ErrStopped right after its Nth snapshot. Restarting
	// the sweep resumes the aborted cell (resumed runs ignore the drill).
	CheckpointStop int
	// IntraParallel shards each simulated chip across up to that many
	// goroutine-stepped tiles (see Config.IntraParallel; 0 = serial):
	// every run uses the largest divisor of its core count that fits, so
	// one setting serves the figure sweeps' mixed core counts. Set before
	// the first run. Like telemetry it stays out of the cache key:
	// results are bit-identical at every legal tile count.
	IntraParallel int
	// Progress, when non-nil, receives one line per fresh (uncached) run.
	Progress io.Writer

	mu  sync.Mutex // guards Progress writes and ctx
	eng *sched.Scheduler[*metrics.RunResult]
	ctx context.Context // bound by Bind; used by the legacy Run path
}

// NewRunner creates a runner at the given workload scale.
func NewRunner(scale float64) *Runner {
	r := &Runner{
		Scale:     scale,
		MaxCycles: 80_000_000,
		eng:       sched.New[*metrics.RunResult](0),
		ctx:       context.Background(),
	}
	r.eng.SetEventFunc(func(ev sched.Event[*metrics.RunResult]) {
		if ev.Err != nil || ev.Cached || ev.Coalesced {
			return
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.Progress != nil {
			fmt.Fprintf(r.Progress, "ran %-36s cycles=%d\n", ev.Key, ev.Value.Cycles)
		}
	})
	return r
}

// SetParallelism bounds the worker pool used by WarmContext/Warm
// (n < 1 selects runtime.NumCPU()).
func (r *Runner) SetParallelism(n int) { r.eng.SetWorkers(n) }

// Bind installs the context consulted by the context-free Run/Base/figure
// methods, so command-line tools can make an entire figure build
// interruptible without threading ctx through every table builder.
func (r *Runner) Bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	r.ctx = ctx
	r.mu.Unlock()
}

func (r *Runner) boundCtx() context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctx
}

func runKey(bench string, cores int, tech Technique, pol core.Policy, relax float64) string {
	return fmt.Sprintf("%s/%d/%s/%v/%.2f", bench, cores, tech, pol, relax)
}

// key extends runKey with everything else result-determining — the
// runner's scale, cycle cap and fault spec — so runs from differently
// configured runners never collide in a persistent cell store (and
// faulted and clean runs never collide in the in-memory cache).
func (r *Runner) key(bench string, cores int, tech Technique, pol core.Policy, relax float64) string {
	k := fmt.Sprintf("s%g/m%d/%s", r.Scale, r.MaxCycles, runKey(bench, cores, tech, pol, relax))
	if r.Faults != nil {
		k += "/faults=" + r.Faults.String()
	}
	return k
}

// SetStore installs a persistent cell store at dir (see RunStore): every
// completed run writes through, and a restarted sweep over the same
// directory skips finished cells. Call before the first run. The store
// is returned so callers can surface Rejected and Err.
func (r *Runner) SetStore(dir string) (*RunStore, error) {
	st, err := OpenRunStore(dir)
	if err != nil {
		return nil, err
	}
	r.eng.SetCache(st)
	return st, nil
}

// RunContext returns the result of one configuration, simulating it at
// most once per runner no matter how many goroutines ask concurrently.
// On cancellation it returns an error wrapping ctx.Err().
func (r *Runner) RunContext(ctx context.Context, bench string, cores int, tech Technique, pol core.Policy, relax float64) (*metrics.RunResult, error) {
	return r.eng.Do(ctx, r.key(bench, cores, tech, pol, relax), func(ctx context.Context) (*metrics.RunResult, error) {
		return r.simulate(ctx, bench, cores, tech, pol, relax)
	})
}

// simulate is the raw (uncached, non-deduplicated) run underneath
// RunContext. Engine jobs must call this — not RunContext — because a job
// already executes inside the engine's single-flight slot for its key, and
// re-entering Do with the same key would wait on itself.
func (r *Runner) simulate(ctx context.Context, bench string, cores int, tech Technique, pol core.Policy, relax float64) (*metrics.RunResult, error) {
	spec, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("sim: unknown benchmark %q", bench)
	}
	cfg := Config{
		Benchmark:     spec,
		Cores:         cores,
		Technique:     tech,
		Policy:        pol,
		RelaxFrac:     relax,
		WorkloadScale: r.Scale,
		MaxCycles:     r.MaxCycles,
		Invariants:    r.CheckInvariants,
		Faults:        r.Faults,
		Observe:       r.Observe,
		IntraParallel: partition.Fit(cores, r.IntraParallel),
	}
	if r.CheckpointDir != "" && r.CheckpointEvery > 0 {
		k := r.key(bench, cores, tech, pol, relax)
		cfg.Checkpoint = &ckpt.Plan{
			Every:     r.CheckpointEvery,
			Dir:       r.CheckpointDir,
			Key:       k,
			Config:    []byte(k),
			StopAfter: r.CheckpointStop,
		}
	}
	return RunOrResumeContext(ctx, cfg)
}

// Run is the context-free form the figure builders use: it consults the
// context installed with Bind and panics on any error (unknown benchmark,
// or cancellation of the bound context).
func (r *Runner) Run(bench string, cores int, tech Technique, pol core.Policy, relax float64) *metrics.RunResult {
	res, err := r.RunContext(r.boundCtx(), bench, cores, tech, pol, relax)
	if err != nil {
		panic(err)
	}
	return res
}

// warmJobs lists every run the standard figure set needs: for each
// benchmark × core count the base case, DVFS, DFS, 2level and PTB under
// every policy (plus the relaxed variants when relax is non-zero).
func (r *Runner) warmJobs(benches []string, coreCounts []int, relax float64) []sched.Job[*metrics.RunResult] {
	var jobs []sched.Job[*metrics.RunResult]
	add := func(b string, n int, tech Technique, pol core.Policy, rx float64) {
		jobs = append(jobs, sched.Job[*metrics.RunResult]{
			Key: r.key(b, n, tech, pol, rx),
			Run: func(ctx context.Context) (*metrics.RunResult, error) {
				return r.simulate(ctx, b, n, tech, pol, rx)
			},
		})
	}
	for _, b := range benches {
		for _, n := range coreCounts {
			add(b, n, TechNone, core.PolicyToAll, 0)
			add(b, n, TechDVFS, 0, 0)
			add(b, n, TechDFS, 0, 0)
			add(b, n, Tech2Level, 0, 0)
			add(b, n, TechPTB, core.PolicyToAll, 0)
			add(b, n, TechPTB, core.PolicyToOne, 0)
			add(b, n, TechPTB, core.PolicyDynamic, 0)
			if relax > 0 {
				add(b, n, TechPTB, core.PolicyToAll, relax)
				add(b, n, TechPTB, core.PolicyToOne, relax)
			}
		}
	}
	return jobs
}

// WarmContext precomputes the standard figure set on the engine's worker
// pool (see SetParallelism). Simulations are fully independent, so the
// sweep parallelizes perfectly; subsequent figure builders then hit the
// cache. It returns the first error — in particular a wrapped ctx.Err()
// when cancelled mid-sweep.
func (r *Runner) WarmContext(ctx context.Context, benches []string, coreCounts []int, relax float64) error {
	_, err := r.eng.ForEach(ctx, r.warmJobs(benches, coreCounts, relax), nil)
	return err
}

// Warm is the deprecated context-free form of WarmContext; workers
// overrides the engine parallelism.
//
// Deprecated: use SetParallelism and WarmContext.
func (r *Runner) Warm(benches []string, coreCounts []int, relax float64, workers int) {
	r.eng.SetWorkers(workers)
	if err := r.WarmContext(r.boundCtx(), benches, coreCounts, relax); err != nil {
		panic(err)
	}
}

// Base returns the no-control run used for normalization.
func (r *Runner) Base(bench string, cores int) *metrics.RunResult {
	return r.Run(bench, cores, TechNone, core.PolicyToAll, 0)
}

// Table is a rendered experiment artifact (one paper table or figure).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV with a leading comment line naming the
// artifact (machine-readable results for external plotting).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table with
// a heading.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}

// evaluated techniques, in the order of the paper's figures.
type techSpec struct {
	label string
	tech  Technique
	pol   core.Policy
}

func figTechniques(pol core.Policy) []techSpec {
	return []techSpec{
		{"DVFS", TechDVFS, 0},
		{"DFS", TechDFS, 0},
		{"2Level", Tech2Level, 0},
		{"PTB+2Level", TechPTB, pol},
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Table1 reproduces the simulated CMP configuration.
func (r *Runner) Table1() *Table {
	cfg := cpu.DefaultConfig()
	t := &Table{
		ID:     "Table 1",
		Title:  "Simulated CMP configuration",
		Header: []string{"Parameter", "Value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("Process technology", "32 nanometres")
	add("Frequency", "3000 MHz")
	add("VDD", "0.9 V")
	add("Instruction window", fmt.Sprintf("%d entries + %d Load Store Queue", cfg.ROBSize, cfg.LSQSize))
	add("Decode width", fmt.Sprintf("%d inst/cycle", cfg.DecodeWidth))
	add("Issue width", fmt.Sprintf("%d inst/cycle", cfg.IssueWidth))
	add("Functional units", fmt.Sprintf("%d Int Alu; %d Int Mult; %d FP Alu; %d FP Mult",
		cfg.NumIntAlu, cfg.NumIntMul, cfg.NumFPAlu, cfg.NumFPMul))
	add("Pipeline", fmt.Sprintf("%d stages", cfg.FrontendDepth+4))
	add("Branch predictor", fmt.Sprintf("64KB, %d bit Gshare", cfg.BpredBits))
	add("Coherence protocol", "MOESI")
	add("Memory latency", "300 cycles")
	add("L1 I-cache", "64KB, 2-way, 1 cycle latency")
	add("L1 D-cache", "64KB, 2-way, 1 cycle latency")
	add("L2 cache", "1MB/core, 4-way, unified, 12 cycles latency")
	add("Topology", "2D mesh")
	add("Link latency", fmt.Sprintf("%d cycles", mesh.DefaultLinkLatency))
	add("Flit size", fmt.Sprintf("%d bytes", mesh.FlitBytes))
	add("Link bandwidth", "1 flit/cycle")
	add("Peak power (rated, per core)", fmt.Sprintf("%.0f pJ/cycle (%.2f W)",
		power.PeakCoreCyclePJ(cfg.ROBSize)*power.SustainedPeakFrac,
		power.PeakCoreCyclePJ(cfg.ROBSize)*power.SustainedPeakFrac*1e-12/metrics.CycleSeconds))
	return t
}

// Table2 reproduces the benchmark catalog.
func (r *Runner) Table2() *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Evaluated benchmarks and input working sets",
		Header: []string{"Suite", "Benchmark", "Size"},
	}
	for _, s := range workload.Catalog() {
		t.Rows = append(t.Rows, []string{s.Suite, s.Name, s.InputSize})
	}
	return t
}

// Fig2 reproduces the naive-split study: normalized energy and AoPB for a
// CMP with the legacy techniques (DVFS, DFS, 2level) under a 50% budget.
func (r *Runner) Fig2(benches []string, cores int) *Table {
	t := &Table{
		ID:    "Figure 2",
		Title: fmt.Sprintf("Normalized energy and AoPB, %d-core CMP, naive equal split, 50%% budget", cores),
		Header: []string{"Benchmark",
			"E.dvfs%", "E.dfs%", "E.2lvl%",
			"A.dvfs%", "A.dfs%", "A.2lvl%"},
	}
	techs := []techSpec{{"DVFS", TechDVFS, 0}, {"DFS", TechDFS, 0}, {"2Level", Tech2Level, 0}}
	var sums [6]float64
	for _, b := range benches {
		base := r.Base(b, cores)
		row := []string{b}
		var vals []float64
		for _, ts := range techs {
			res := r.Run(b, cores, ts.tech, ts.pol, 0)
			vals = append(vals, metrics.NormalizedEnergyPct(res, base))
		}
		for _, ts := range techs {
			res := r.Run(b, cores, ts.tech, ts.pol, 0)
			vals = append(vals, metrics.NormalizedAoPBPct(res, base))
		}
		for i, v := range vals {
			sums[i] += v
			row = append(row, f1(v))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Avg."}
	for _, s := range sums {
		avg = append(avg, f1(s/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

// Fig3 reproduces the execution-time breakdown for a varying number of
// cores.
func (r *Runner) Fig3(benches []string, coreCounts []int) *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Execution time breakdown (%) for a varying number of cores",
		Header: []string{"Benchmark", "Cores", "Lock-Acq", "Lock-Rel", "Barrier", "Busy"},
	}
	for _, b := range benches {
		for _, n := range coreCounts {
			res := r.Base(b, n)
			t.Rows = append(t.Rows, []string{
				b, fmt.Sprint(n),
				f1(res.ClassFrac[1] * 100), f1(res.ClassFrac[2] * 100),
				f1(res.ClassFrac[3] * 100), f1(res.ClassFrac[0] * 100),
			})
		}
	}
	return t
}

// Fig4 reproduces the normalized spinning power for a varying number of
// cores.
func (r *Runner) Fig4(benches []string, coreCounts []int) *Table {
	t := &Table{
		ID:     "Figure 4",
		Title:  "Spinning power as % of total power, varying number of cores",
		Header: append([]string{"Benchmark"}, intHeaders(coreCounts)...),
	}
	perCount := make([]float64, len(coreCounts))
	for _, b := range benches {
		row := []string{b}
		for i, n := range coreCounts {
			res := r.Base(b, n)
			v := res.SpinEnergyFrac * 100
			perCount[i] += v
			row = append(row, f1(v))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Avg."}
	for _, s := range perCount {
		avg = append(avg, f1(s/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

func intHeaders(ns []int) []string {
	var out []string
	for _, n := range ns {
		out = append(out, fmt.Sprintf("%d cores", n))
	}
	return out
}

// Fig9 reproduces the policy/core-count sweep: average normalized energy
// and AoPB across benchmarks for every {core count, policy} pair.
func (r *Runner) Fig9(benches []string, coreCounts []int) *Table {
	t := &Table{
		ID:    "Figure 9",
		Title: "Average normalized energy and AoPB vs cores and PTB policy",
		Header: []string{"Config",
			"E.dvfs%", "E.dfs%", "E.2lvl%", "E.ptb%",
			"A.dvfs%", "A.dfs%", "A.2lvl%", "A.ptb%"},
	}
	for _, pol := range []core.Policy{core.PolicyToOne, core.PolicyToAll} {
		for _, n := range coreCounts {
			techs := figTechniques(pol)
			var eSums, aSums [4]float64
			for _, b := range benches {
				base := r.Base(b, n)
				for i, ts := range techs {
					res := r.Run(b, n, ts.tech, ts.pol, 0)
					eSums[i] += metrics.NormalizedEnergyPct(res, base)
					aSums[i] += metrics.NormalizedAoPBPct(res, base)
				}
			}
			row := []string{fmt.Sprintf("%dCore_%s", n, pol)}
			for _, s := range eSums {
				row = append(row, f1(s/float64(len(benches))))
			}
			for _, s := range aSums {
				row = append(row, f1(s/float64(len(benches))))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// FigDetail reproduces the detailed per-benchmark energy/AoPB figures
// (Fig. 10 ToAll, Fig. 11 ToOne, Fig. 12 dynamic selector) at one core
// count.
func (r *Runner) FigDetail(id string, benches []string, cores int, pol core.Policy) *Table {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("Detailed normalized energy and AoPB, %d-core CMP, PTB policy %s", cores, pol),
		Header: []string{"Benchmark",
			"E.dvfs%", "E.dfs%", "E.2lvl%", "E.ptb%",
			"A.dvfs%", "A.dfs%", "A.2lvl%", "A.ptb%"},
	}
	techs := figTechniques(pol)
	var eSums, aSums [4]float64
	for _, b := range benches {
		base := r.Base(b, cores)
		row := []string{b}
		for i, ts := range techs {
			res := r.Run(b, cores, ts.tech, ts.pol, 0)
			v := metrics.NormalizedEnergyPct(res, base)
			eSums[i] += v
			row = append(row, f1(v))
		}
		for i, ts := range techs {
			res := r.Run(b, cores, ts.tech, ts.pol, 0)
			v := metrics.NormalizedAoPBPct(res, base)
			aSums[i] += v
			row = append(row, f1(v))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Avg."}
	for _, s := range eSums {
		avg = append(avg, f1(s/float64(len(benches))))
	}
	for _, s := range aSums {
		avg = append(avg, f1(s/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

// Fig13 reproduces the performance figure: slowdown per benchmark with the
// dynamic policy selector.
func (r *Runner) Fig13(benches []string, cores int) *Table {
	t := &Table{
		ID:     "Figure 13",
		Title:  fmt.Sprintf("Performance slowdown (%%), %d-core CMP, dynamic policy selector", cores),
		Header: []string{"Benchmark", "dvfs%", "dfs%", "2lvl%", "ptb%"},
	}
	techs := figTechniques(core.PolicyDynamic)
	var sums [4]float64
	for _, b := range benches {
		base := r.Base(b, cores)
		row := []string{b}
		for i, ts := range techs {
			res := r.Run(b, cores, ts.tech, ts.pol, 0)
			v := metrics.SlowdownPct(res, base)
			sums[i] += v
			row = append(row, f1(v))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Avg."}
	for _, s := range sums {
		avg = append(avg, f1(s/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

// Fig14 reproduces the relaxed-PTB study: standard techniques plus PTB with
// a relaxed trigger threshold.
func (r *Runner) Fig14(benches []string, coreCounts []int, relax float64) *Table {
	t := &Table{
		ID:    "Figure 14",
		Title: fmt.Sprintf("Normalized energy and AoPB with relaxed PTB (+%.0f%% threshold)", relax*100),
		Header: []string{"Config",
			"E.ptb%", "E.relaxed%", "A.ptb%", "A.relaxed%"},
	}
	for _, pol := range []core.Policy{core.PolicyToOne, core.PolicyToAll} {
		for _, n := range coreCounts {
			var e0, e1, a0, a1 float64
			for _, b := range benches {
				base := r.Base(b, n)
				strict := r.Run(b, n, TechPTB, pol, 0)
				rel := r.Run(b, n, TechPTB, pol, relax)
				e0 += metrics.NormalizedEnergyPct(strict, base)
				e1 += metrics.NormalizedEnergyPct(rel, base)
				a0 += metrics.NormalizedAoPBPct(strict, base)
				a1 += metrics.NormalizedAoPBPct(rel, base)
			}
			k := float64(len(benches))
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dCore_%s", n, pol),
				f1(e0 / k), f1(e1 / k), f1(a0 / k), f1(a1 / k),
			})
		}
	}
	return t
}

// Fig8 reports the PTB transfer latencies (the implementation figure).
func (r *Runner) Fig8() *Table {
	t := &Table{
		ID:     "Figure 8",
		Title:  "PTB load-balancer transfer latencies (cycles)",
		Header: []string{"Cores", "Send", "Process", "Return", "Total"},
	}
	for _, n := range CoreCounts() {
		l := core.LatencyFor(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(l.Send), fmt.Sprint(l.Process),
			fmt.Sprint(l.Return), fmt.Sprint(l.Total()),
		})
	}
	return t
}

// Sec4D reproduces the §IV.D cores-at-TDP arithmetic from the measured
// average AoPB errors of DVFS, plain 2level and PTB+2level.
func (r *Runner) Sec4D(benches []string, cores int) *Table {
	t := &Table{
		ID:     "Section IV.D",
		Title:  fmt.Sprintf("Cores deployable at constant TDP (from measured %d-core AoPB errors)", cores),
		Header: []string{"Technique", "AoPB error %", "Per-core W (vs 3.125 ideal)", "Cores at 100W TDP"},
	}
	techs := []techSpec{
		{"DVFS", TechDVFS, 0},
		{"2Level", Tech2Level, 0},
		{"PTB+2Level", TechPTB, core.PolicyDynamic},
	}
	for _, ts := range techs {
		var sum float64
		for _, b := range benches {
			base := r.Base(b, cores)
			res := r.Run(b, cores, ts.tech, ts.pol, 0)
			sum += metrics.NormalizedAoPBPct(res, base)
		}
		err := sum / float64(len(benches)) / 100
		// The paper's arithmetic: 16 cores at 100W TDP → 6.25W/core; a 50%
		// budget ideally allows 32 cores at 3.125W; an AoPB error e inflates
		// per-core power to 3.125×(1+e).
		perCore := 3.125 * (1 + err)
		t.Rows = append(t.Rows, []string{
			ts.label, f1(err * 100), fmt.Sprintf("%.3f", perCore),
			fmt.Sprint(int(100 / perCore)),
		})
	}
	t.Rows = append(t.Rows, []string{"ideal", "0.0", "3.125", "32"})
	return t
}

// FigExt reports the spin-gating extension (the paper's future work): PTB
// versus PTB+spingate on the lock-bound applications.
func (r *Runner) FigExt(benches []string, cores int) *Table {
	t := &Table{
		ID:    "Extension",
		Title: fmt.Sprintf("PTB as a spin detector: sleep-gating flagged cores, %d-core CMP", cores),
		Header: []string{"Benchmark",
			"E.ptb%", "E.gated%", "slow.ptb%", "slow.gated%"},
	}
	var sums [4]float64
	for _, b := range benches {
		base := r.Base(b, cores)
		ptb := r.Run(b, cores, TechPTB, core.PolicyDynamic, 0)
		gated := r.Run(b, cores, TechPTBSpinGate, core.PolicyDynamic, 0)
		vals := []float64{
			metrics.NormalizedEnergyPct(ptb, base),
			metrics.NormalizedEnergyPct(gated, base),
			metrics.SlowdownPct(ptb, base),
			metrics.SlowdownPct(gated, base),
		}
		row := []string{b}
		for i, v := range vals {
			sums[i] += v
			row = append(row, f1(v))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Avg."}
	for _, s := range sums {
		avg = append(avg, f1(s/float64(len(benches))))
	}
	t.Rows = append(t.Rows, avg)
	return t
}

// Fig5Trace produces the per-cycle chip power trace versus the global
// budget for the PTB motivation figure. It returns subsampled chip power
// (pJ/cycle) and the budget line.
func Fig5Trace(scale float64) (trace []float64, budgetPJ float64) {
	spec, _ := workload.ByName("ocean")
	s, err := NewSystem(Config{
		Benchmark:     spec,
		Cores:         4,
		Technique:     TechNone,
		WorkloadScale: scale,
		TraceEvery:    50,
		MaxCycles:     20_000_000,
	})
	if err != nil {
		panic(err)
	}
	s.Run()
	return s.Collector().Trace(), s.GlobalBudgetPJ()
}

// Fig6Trace produces a single core's per-cycle power while it contends for
// a lock (the spinning-power-signature figure). It returns the subsampled
// core power and its local budget.
func Fig6Trace(scale float64) (coreTrace []float64, localBudgetPJ float64) {
	spec, _ := workload.ByName("raytrace")
	s, err := NewSystem(Config{
		Benchmark:     spec,
		Cores:         4,
		Technique:     TechNone,
		WorkloadScale: scale,
		TraceEvery:    10,
		TraceCore:     2,
		MaxCycles:     20_000_000,
	})
	if err != nil {
		panic(err)
	}
	s.Run()
	return s.CoreTrace(), s.GlobalBudgetPJ() / 4
}
