package sim

import (
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/workload"
)

// TestAllBenchmarksThroughFullStack runs every Table-2 workload through the
// complete simulator (cores + MOESI + mesh + power + PTB) at a tiny scale
// and checks the per-benchmark invariants that the figure shapes rely on.
func TestAllBenchmarksThroughFullStack(t *testing.T) {
	type expect struct {
		locks    bool // must show lock-acquire time
		barriers bool // must show internal barrier time beyond the final one
	}
	expectations := map[string]expect{
		"barnes":       {locks: true, barriers: true},
		"cholesky":     {locks: true, barriers: false},
		"fft":          {locks: false, barriers: true},
		"ocean":        {locks: false, barriers: true},
		"radix":        {locks: false, barriers: true},
		"raytrace":     {locks: true, barriers: false},
		"tomcatv":      {locks: false, barriers: true},
		"unstructured": {locks: true, barriers: true},
		"waternsq":     {locks: true, barriers: true},
		"watersp":      {locks: false, barriers: true},
		"blackscholes": {locks: false, barriers: false},
		"fluidanimate": {locks: true, barriers: true},
		"swaptions":    {locks: false, barriers: false},
		// x264's ordering locks are probabilistic (LockProb 0.2) and may
		// not fire in a tiny scaled run, so only the absence of *heavy*
		// locking is asserted.
		"x264": {locks: false, barriers: false},
	}
	for _, spec := range workload.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			r := mustRun(t, tiny(spec.Name, 4, TechPTB, core.PolicyDynamic))
			if r.Committed == 0 {
				t.Fatal("no instructions committed")
			}
			exp := expectations[spec.Name]
			if exp.locks && r.ClassFrac[1] == 0 {
				t.Errorf("expected lock time, breakdown %v", r.ClassFrac)
			}
			if !exp.locks && r.ClassFrac[1] > 0.05 {
				t.Errorf("unexpected heavy lock time %.1f%%", r.ClassFrac[1]*100)
			}
			if r.EnergyJ <= 0 || r.MeanPowerW <= 0 {
				t.Errorf("degenerate power result %+v", r)
			}
			if r.SpinEnergyFrac < 0 || r.SpinEnergyFrac > 1 {
				t.Errorf("spin energy fraction out of range: %v", r.SpinEnergyFrac)
			}
		})
	}
}
