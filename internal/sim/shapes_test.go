package sim

import (
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/metrics"
)

// TestPaperShapesRegression locks in the qualitative results the
// reproduction stands on (EXPERIMENTS.md): if a future change breaks one of
// the paper's headline orderings, this test names it. It runs a reduced
// sweep (3 representative benchmarks, 8 cores), so thresholds are
// deliberately loose — shapes, not magnitudes.
func TestPaperShapesRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression skipped in -short mode")
	}
	r := NewRunner(0.15)
	r.MaxCycles = 20_000_000
	benches := []string{"ocean", "unstructured", "blackscholes"}
	const cores = 8

	avg := func(tech Technique, pol core.Policy, metric func(*metrics.RunResult, *metrics.RunResult) float64) float64 {
		s := 0.0
		for _, b := range benches {
			s += metric(r.Run(b, cores, tech, pol, 0), r.Base(b, cores))
		}
		return s / float64(len(benches))
	}

	aDFS := avg(TechDFS, 0, metrics.NormalizedAoPBPct)
	aDVFS := avg(TechDVFS, 0, metrics.NormalizedAoPBPct)
	a2lvl := avg(Tech2Level, 0, metrics.NormalizedAoPBPct)
	aPTB := avg(TechPTB, core.PolicyToAll, metrics.NormalizedAoPBPct)

	// Shape 1: coarse-grained DVFS-family techniques cannot track the
	// budget the way fine-grained ones do (paper: DVFS/DFS ≥65%,
	// fine-grained ~10%).
	if aDFS <= aDVFS {
		t.Errorf("DFS (%.1f%%) should leak more AoPB than DVFS (%.1f%%)", aDFS, aDVFS)
	}
	if a2lvl >= aDVFS || aPTB >= aDVFS {
		t.Errorf("fine-grained AoPB (2lvl %.1f%%, PTB %.1f%%) should be well below DVFS (%.1f%%)",
			a2lvl, aPTB, aDVFS)
	}
	if aPTB > 0.6*aDFS {
		t.Errorf("PTB AoPB %.1f%% not a clear improvement over DFS %.1f%%", aPTB, aDFS)
	}

	// Shape 2: accuracy improves with core count (paper Fig. 9).
	a2c := 0.0
	for _, b := range benches {
		a2c += metrics.NormalizedAoPBPct(r.Run(b, 2, TechPTB, core.PolicyToAll, 0), r.Base(b, 2))
	}
	a2c /= float64(len(benches))
	if aPTB >= a2c {
		t.Errorf("PTB AoPB did not improve from 2 cores (%.1f%%) to %d cores (%.1f%%)", a2c, cores, aPTB)
	}

	// Shape 3: PTB recovers throttling performance on the lock-bound app
	// (paper Fig. 13's unstructured story).
	sPTB := metrics.SlowdownPct(r.Run("unstructured", cores, TechPTB, core.PolicyDynamic, 0), r.Base("unstructured", cores))
	s2lvl := metrics.SlowdownPct(r.Run("unstructured", cores, Tech2Level, 0, 0), r.Base("unstructured", cores))
	if sPTB >= s2lvl {
		t.Errorf("PTB slowdown %.1f%% not below plain 2level %.1f%% on unstructured", sPTB, s2lvl)
	}

	// Shape 4: relaxing trades accuracy away (paper §IV.C).
	aRelax := avg(TechPTB, core.PolicyToAll, func(run, base *metrics.RunResult) float64 {
		return metrics.NormalizedAoPBPct(r.Run(run.Benchmark, cores, TechPTB, core.PolicyToAll, 0.20), base)
	})
	if aRelax <= aPTB {
		t.Errorf("relaxed PTB AoPB %.1f%% not above strict %.1f%%", aRelax, aPTB)
	}
}
