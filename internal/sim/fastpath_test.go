package sim

import (
	"fmt"
	"reflect"
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/fault"
	"ptbsim/internal/workload"
)

// fastOffRun runs cfg with the skip-ahead gate forced off (every cycle takes
// the full Tick path), modeling a maximally pessimistic NextWake that always
// answers "wake now".
func fastOffRun(t *testing.T, cfg Config) (*System, any) {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.fastOff = true
	r, err := s.RunContext(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

// TestPessimisticNextWakeOnlyCostsSpeed is the satellite soundness test:
// disabling the fast path entirely (the conservative "unknown → wake now"
// default taken to its extreme) must reproduce every result field exactly —
// a pessimistic classifier can only cost speed, never change the digest.
// Swept across the techniques with distinct controller stacks, plus a
// nonzero-rate fault run (whose RNG draws must line up cycle for cycle).
func TestPessimisticNextWakeOnlyCostsSpeed(t *testing.T) {
	cfgs := []Config{
		tiny("ocean", 4, TechNone, core.PolicyToAll),
		tiny("ocean", 4, TechDVFS, core.PolicyToAll),
		tiny("fluidanimate", 4, Tech2Level, core.PolicyToAll),
		tiny("fluidanimate", 4, TechPTB, core.PolicyDynamic),
		tiny("raytrace", 4, TechPTBSpinGate, core.PolicyToAll),
		tiny("ocean", 4, TechMaxBIPS, core.PolicyToAll),
	}
	faulted := tiny("ocean", 4, TechPTB, core.PolicyToAll)
	faulted.Faults = &fault.Spec{Seed: 7, TokenDrop: 0.01, SensorNoise: 0.02, LinkStall: 0.005}
	cfgs = append(cfgs, faulted)

	for _, cfg := range cfgs {
		name := string(cfg.Technique)
		if cfg.Faults != nil {
			name += "+faults"
		}
		t.Run(name, func(t *testing.T) {
			fastSys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fastRes, err := fastSys.RunContext(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			_, slowRes := fastOffRun(t, cfg)
			if !reflect.DeepEqual(fastRes, slowRes) {
				t.Fatalf("results diverge between fast-path and pessimistic runs:\nfast %+v\nslow %+v", fastRes, slowRes)
			}
			if cfg.Technique == TechNone && fastSys.FastCycles() == 0 {
				t.Fatal("fast path never engaged on an unthrottled run")
			}
		})
	}
}

// TestFastPathEngages pins that skip-ahead actually covers a meaningful
// fraction of an unthrottled run — the perf win exists, not just its safety.
func TestFastPathEngages(t *testing.T) {
	s, err := NewSystem(tiny("ocean", 4, TechNone, core.PolicyToAll))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(t.Context()); err != nil {
		t.Fatal(err)
	}
	frac := float64(s.FastCycles()) / float64(s.Cycle())
	if frac < 0.2 {
		t.Fatalf("fast path covered only %.1f%% of cycles; skip-ahead is not engaging", 100*frac)
	}
	t.Logf("fast path covered %.0f%% of %d cycles", 100*frac, s.Cycle())
}

// TestStepZeroAllocSteadyState pins the ISSUE-4 acceptance criterion:
// System.Step performs zero allocations per cycle in the steady state with
// invariants off. The steady state measured is the quiescent one — workload
// drained, every per-run pool (event free-list, ROB waiter arrays, balancer
// scratch, mesh message records, partition staging spools) warmed by a full
// run — where Step still executes its entire tail: the skip-ahead gate,
// event queue advance, core tick replay, leakage metering, budget refresh,
// controller tick (including a live PTB balancer), meter fold, collector
// and thermal recording. The par-intra>1 variants additionally cover the
// tile-worker handshake: waking the workers, the quantum barrier and the
// staged-spool drain must all run allocation-free too (AllocsPerRun reads
// the global allocation counter, so worker-goroutine allocations count).
func TestStepZeroAllocSteadyState(t *testing.T) {
	for _, tech := range []Technique{TechNone, TechPTB} {
		for _, tiles := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par-intra=%d", tech, tiles), func(t *testing.T) {
				spec, ok := workload.ByName("ocean")
				if !ok {
					t.Fatal("ocean missing from catalog")
				}
				cfg := Config{
					Benchmark:     spec,
					Cores:         4,
					Technique:     tech,
					Policy:        core.PolicyToAll,
					WorkloadScale: 0.05,
					MaxCycles:     3_000_000,
					IntraParallel: tiles,
				}
				s, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for !s.done() && s.cycle < cfg.MaxCycles {
					s.Step()
				}
				if !s.done() {
					t.Fatal("workload did not drain")
				}
				allocs := testing.AllocsPerRun(2000, s.Step)
				if allocs != 0 {
					t.Fatalf("System.Step allocates %.2f objects/cycle in steady state, want 0", allocs)
				}
			})
		}
	}
}
