package sim

import (
	"strconv"
	"strings"
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/workload"
)

func testRunner() *Runner {
	r := NewRunner(0.05)
	r.MaxCycles = 10_000_000
	return r
}

func TestRunnerCaches(t *testing.T) {
	r := testRunner()
	a := r.Base("fft", 2)
	b := r.Base("fft", 2)
	if a != b {
		t.Fatal("base run not cached (pointer changed)")
	}
	c := r.Run("fft", 2, TechPTB, core.PolicyToAll, 0)
	d := r.Run("fft", 2, TechPTB, core.PolicyToAll, 0)
	if c != d {
		t.Fatal("technique run not cached")
	}
	if r.Run("fft", 2, TechPTB, core.PolicyToAll, 0.2) == c {
		t.Fatal("relax variants must not share a cache slot")
	}
}

func TestAllBenchmarksList(t *testing.T) {
	bs := AllBenchmarks()
	if len(bs) != 14 {
		t.Fatalf("%d benchmarks", len(bs))
	}
	if CoreCounts()[3] != 16 {
		t.Fatal("core counts wrong")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "Test",
		Title:  "render check",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Test — render check") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "yyyy") {
		t.Fatalf("missing cells: %q", out)
	}
}

func TestTable1Contents(t *testing.T) {
	tab := testRunner().Table1()
	joined := ""
	for _, row := range tab.Rows {
		joined += strings.Join(row, " ") + "\n"
	}
	for _, want := range []string{"MOESI", "128 entries + 64", "64KB, 16 bit Gshare",
		"2D mesh", "300 cycles", "1MB/core"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestTable2Contents(t *testing.T) {
	tab := testRunner().Table2()
	if len(tab.Rows) != 14 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][1] != "barnes" || tab.Rows[13][1] != "x264" {
		t.Fatal("paper order broken")
	}
}

func TestFig2Shape(t *testing.T) {
	r := testRunner()
	tab := r.Fig2([]string{"fft", "swaptions"}, 2)
	if len(tab.Rows) != 3 { // 2 benches + Avg
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[2][0] != "Avg." {
		t.Fatal("missing average row")
	}
	if len(tab.Header) != 7 {
		t.Fatalf("%d columns", len(tab.Header))
	}
	// Values parse as floats.
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("unparseable cell %q", cell)
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r := testRunner()
	tab := r.Fig3([]string{"ocean"}, []int{2, 4})
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Breakdown fractions sum to ~100.
	for _, row := range tab.Rows {
		sum := 0.0
		for _, cell := range row[2:] {
			v, _ := strconv.ParseFloat(cell, 64)
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Fatalf("breakdown sums to %v", sum)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r := testRunner()
	tab := r.Fig9([]string{"fft"}, []int{2})
	if len(tab.Rows) != 2 { // 2 policies × 1 core count
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][0], "ToOne") || !strings.Contains(tab.Rows[1][0], "ToAll") {
		t.Fatalf("policy labels wrong: %v %v", tab.Rows[0][0], tab.Rows[1][0])
	}
}

func TestFigDetailShape(t *testing.T) {
	r := testRunner()
	tab := r.FigDetail("Figure 10", []string{"fft", "ocean"}, 2, core.PolicyToAll)
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if len(tab.Header) != 9 {
		t.Fatalf("%d cols", len(tab.Header))
	}
}

func TestFig13Shape(t *testing.T) {
	r := testRunner()
	tab := r.Fig13([]string{"fft"}, 2)
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestFig14Shape(t *testing.T) {
	r := testRunner()
	tab := r.Fig14([]string{"fft"}, []int{2}, 0.2)
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestSec4DShape(t *testing.T) {
	r := testRunner()
	tab := r.Sec4D([]string{"fft"}, 2)
	if len(tab.Rows) != 4 { // 3 techniques + ideal
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[3][0] != "ideal" || tab.Rows[3][3] != "32" {
		t.Fatalf("ideal row wrong: %v", tab.Rows[3])
	}
	// Cores-at-TDP must not exceed the ideal 32.
	for _, row := range tab.Rows[:3] {
		v, _ := strconv.ParseFloat(row[3], 64)
		if v > 32 || v < 1 {
			t.Fatalf("implausible cores-at-TDP %v", row)
		}
	}
}

func TestFig8Static(t *testing.T) {
	tab := testRunner().Fig8()
	if tab.Rows[3][4] != "10" {
		t.Fatalf("16-core total latency %v, want 10", tab.Rows[3][4])
	}
}

func TestFigTraces(t *testing.T) {
	trace, budget := Fig5Trace(0.05)
	if len(trace) == 0 || budget <= 0 {
		t.Fatal("fig5 trace empty")
	}
	ct, local := Fig6Trace(0.05)
	if len(ct) == 0 || local <= 0 {
		t.Fatal("fig6 trace empty")
	}
	// The spinning-core trace must show clear variation (peaks + spin
	// floor).
	minV, maxV := ct[0], ct[0]
	for _, v := range ct {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= minV {
		t.Fatal("fig6 trace is flat")
	}
}

func TestAblationKnobsWireThrough(t *testing.T) {
	// Sanity: the ablation knobs produce runnable systems.
	spec, ok := workload.ByName("fft")
	if !ok {
		t.Fatal("unknown benchmark")
	}
	for _, cfg := range []Config{
		{Benchmark: spec, Cores: 2, Technique: TechPTB, WireBits: 2, WorkloadScale: 0.04},
		{Benchmark: spec, Cores: 2, Technique: TechPTB, TokenGroups: 3, WorkloadScale: 0.04},
		{Benchmark: spec, Cores: 2, Technique: TechDVFS, DVFSWindow: 128, WorkloadScale: 0.04},
	} {
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Committed == 0 {
			t.Fatal("no progress with ablation knob")
		}
	}
}

func TestWarmFillsCache(t *testing.T) {
	r := testRunner()
	r.Warm([]string{"fft"}, []int{2}, 0.2, 3)
	// Everything the figures need must now be cached: re-requesting returns
	// identical pointers without re-simulating.
	a := r.Run("fft", 2, TechPTB, core.PolicyToAll, 0)
	b := r.Run("fft", 2, TechPTB, core.PolicyToAll, 0)
	if a != b {
		t.Fatal("warm did not populate the cache")
	}
	if r.Run("fft", 2, TechPTB, core.PolicyToAll, 0.2).Cycles == 0 {
		t.Fatal("relaxed variant missing")
	}
}

func TestWarmMatchesSequential(t *testing.T) {
	seq := testRunner()
	par := testRunner()
	par.Warm([]string{"fft"}, []int{2}, 0, 4)
	a := seq.Run("fft", 2, TechPTB, core.PolicyDynamic, 0)
	b := par.Run("fft", 2, TechPTB, core.PolicyDynamic, 0)
	if a.Cycles != b.Cycles || a.EnergyJ != b.EnergyJ {
		t.Fatalf("parallel warm produced different results: %d/%v vs %d/%v",
			a.Cycles, a.EnergyJ, b.Cycles, b.EnergyJ)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{ID: "Figure X", Title: "md check", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}}
	var sb strings.Builder
	tab.RenderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"### Figure X — md check", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q in %q", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{ID: "Figure X", Title: "csv check", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}}
	var sb strings.Builder
	tab.RenderCSV(&sb)
	out := sb.String()
	for _, want := range []string{"# Figure X — csv check", "a,b", "1,2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q in %q", want, out)
		}
	}
}
