package sim

import (
	"math"
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/metrics"
	"ptbsim/internal/workload"
)

func tiny(bench string, cores int, tech Technique, pol core.Policy) Config {
	spec, ok := workload.ByName(bench)
	if !ok {
		panic("unknown benchmark " + bench)
	}
	return Config{
		Benchmark:     spec,
		Cores:         cores,
		Technique:     tech,
		Policy:        pol,
		WorkloadScale: 0.08,
		MaxCycles:     3_000_000,
	}
}

func mustRun(t *testing.T, cfg Config) *metrics.RunResult {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.HitMaxCycles {
		t.Fatalf("%s/%s/%d hit the cycle cap", cfg.Benchmark.Name, cfg.Technique, cfg.Cores)
	}
	return r
}

func TestAllTechniquesComplete(t *testing.T) {
	for _, tech := range []Technique{TechNone, TechDVFS, TechDFS, Tech2Level, TechPTB} {
		r := mustRun(t, tiny("ocean", 4, tech, core.PolicyToAll))
		if r.Committed == 0 || r.Cycles == 0 || r.EnergyJ <= 0 {
			t.Fatalf("%s: empty result %+v", tech, r)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, tiny("fluidanimate", 4, TechPTB, core.PolicyDynamic))
	b := mustRun(t, tiny("fluidanimate", 4, TechPTB, core.PolicyDynamic))
	if a.Cycles != b.Cycles || a.EnergyJ != b.EnergyJ || a.AoPBJ != b.AoPBJ || a.Committed != b.Committed {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestTechniquesReduceAoPB(t *testing.T) {
	base := mustRun(t, tiny("blackscholes", 4, TechNone, 0))
	if base.AoPBJ <= 0 {
		t.Fatal("base case never exceeded the budget; the 50% budget must bind")
	}
	for _, tech := range []Technique{TechDVFS, Tech2Level, TechPTB} {
		r := mustRun(t, tiny("blackscholes", 4, tech, core.PolicyToAll))
		if r.AoPBJ >= base.AoPBJ {
			t.Fatalf("%s did not reduce AoPB: %v >= %v", tech, r.AoPBJ, base.AoPBJ)
		}
	}
}

func TestFineGrainedBeatsDVFSOnAccuracy(t *testing.T) {
	base := mustRun(t, tiny("blackscholes", 4, TechNone, 0))
	dvfs := mustRun(t, tiny("blackscholes", 4, TechDVFS, 0))
	ptb := mustRun(t, tiny("blackscholes", 4, TechPTB, core.PolicyToOne))
	aDVFS := metrics.NormalizedAoPBPct(dvfs, base)
	aPTB := metrics.NormalizedAoPBPct(ptb, base)
	if aPTB >= aDVFS {
		t.Fatalf("PTB AoPB %.1f%% not below DVFS %.1f%% (paper's headline ordering)", aPTB, aDVFS)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	r := mustRun(t, tiny("unstructured", 4, TechNone, 0))
	sum := 0.0
	for _, f := range r.ClassFrac {
		if f < 0 || f > 1 {
			t.Fatalf("class fraction out of range: %v", r.ClassFrac)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("class fractions sum to %v", sum)
	}
}

func TestLockHeavyBenchSpins(t *testing.T) {
	r := mustRun(t, tiny("fluidanimate", 4, TechNone, 0))
	lock := r.ClassFrac[1] + r.ClassFrac[2] // acquire + release
	if lock <= 0 {
		t.Fatal("fluidanimate shows no lock time")
	}
	if r.SpinEnergyFrac <= 0 {
		t.Fatal("no spin energy recorded")
	}
}

func TestBarrierTimeGrowsWithCores(t *testing.T) {
	r2 := mustRun(t, tiny("ocean", 2, TechNone, 0))
	r8 := mustRun(t, tiny("ocean", 8, TechNone, 0))
	if r8.ClassFrac[3] <= r2.ClassFrac[3] {
		t.Fatalf("barrier fraction did not grow with cores: %v -> %v (Fig. 3 shape)",
			r2.ClassFrac[3], r8.ClassFrac[3])
	}
}

func TestPTBBalancerActive(t *testing.T) {
	cfg := tiny("ocean", 4, TechPTB, core.PolicyToAll)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	donated, granted, _, rounds := s.Balancer().Stats()
	if donated <= 0 || rounds == 0 {
		t.Fatalf("balancer never moved tokens: donated=%v rounds=%d", donated, rounds)
	}
	if granted <= 0 {
		t.Fatal("balancer never granted tokens")
	}
}

func TestDynamicPolicyUsesBoth(t *testing.T) {
	// waternsq mixes locks and barriers, so the dynamic selector should
	// exercise both policies.
	cfg := tiny("waternsq", 4, TechPTB, core.PolicyDynamic)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	toOne, toAll := s.Balancer().PolicyRounds()
	if toOne == 0 && toAll == 0 {
		t.Fatal("dynamic selector never distributed")
	}
	if toOne == 0 {
		t.Fatal("dynamic selector never chose ToOne despite lock contention")
	}
}

func TestPowerTraceCollected(t *testing.T) {
	cfg := tiny("barnes", 2, TechNone, 0)
	cfg.TraceEvery = 100
	cfg.TraceCore = 1
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(s.Collector().Trace()) == 0 {
		t.Fatal("no chip trace")
	}
	if len(s.CoreTrace()) == 0 {
		t.Fatal("no core trace")
	}
}

func TestMaxCyclesFlag(t *testing.T) {
	cfg := tiny("ocean", 2, TechNone, 0)
	cfg.MaxCycles = 500
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HitMaxCycles {
		t.Fatal("cap not reported")
	}
	if r.Cycles != 500 {
		t.Fatalf("ran %d cycles, want 500", r.Cycles)
	}
}

func TestRelaxedPTBSavesEnergy(t *testing.T) {
	strict := mustRun(t, tiny("blackscholes", 4, TechPTB, core.PolicyToAll))
	cfg := tiny("blackscholes", 4, TechPTB, core.PolicyToAll)
	cfg.RelaxFrac = 0.30
	relaxed := mustRun(t, cfg)
	// Relaxing the trigger must not slow the program down more, and should
	// leave AoPB higher (the accuracy/energy trade of §IV.C).
	if relaxed.Cycles > strict.Cycles {
		t.Fatalf("relaxed PTB slower than strict: %d > %d", relaxed.Cycles, strict.Cycles)
	}
	if relaxed.AoPBJ < strict.AoPBJ {
		t.Fatalf("relaxed PTB more accurate than strict: %v < %v", relaxed.AoPBJ, strict.AoPBJ)
	}
}

func TestPessimisticLatencyStillWorks(t *testing.T) {
	lat := core.PessimisticLatency()
	cfg := tiny("ocean", 4, TechPTB, core.PolicyToAll)
	cfg.PTBLatency = &lat
	r := mustRun(t, cfg)
	base := mustRun(t, tiny("ocean", 4, TechNone, 0))
	if r.AoPBJ >= base.AoPBJ {
		t.Fatal("PTB with 10-cycle latency no longer matches the budget at all")
	}
}

func TestSixteenCores(t *testing.T) {
	if testing.Short() {
		t.Skip("16-core run skipped in -short mode")
	}
	cfg := tiny("fft", 16, TechPTB, core.PolicyDynamic)
	r := mustRun(t, cfg)
	if r.Cores != 16 || r.Committed == 0 {
		t.Fatalf("bad 16-core result %+v", r)
	}
}

func TestUnknownTechniqueRejected(t *testing.T) {
	cfg := tiny("fft", 2, "warp-drive", 0)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestMissingBenchmarkRejected(t *testing.T) {
	if _, err := Run(Config{Cores: 2}); err == nil {
		t.Fatal("missing benchmark accepted")
	}
}

func TestThermalTracksTechnique(t *testing.T) {
	base := mustRun(t, tiny("blackscholes", 4, TechNone, 0))
	ptb := mustRun(t, tiny("blackscholes", 4, TechPTB, core.PolicyToAll))
	if ptb.MeanTempC >= base.MeanTempC {
		t.Fatalf("budget enforcement did not lower mean temperature: %.2f >= %.2f",
			ptb.MeanTempC, base.MeanTempC)
	}
}

func TestSpinGateExtensionSavesEnergyOnLockBoundApps(t *testing.T) {
	// The paper's future-work extension: disabling detected spinners must
	// save energy versus plain PTB on a lock-bound benchmark without
	// breaking forward progress.
	plain := mustRun(t, tiny("fluidanimate", 4, TechPTB, core.PolicyDynamic))
	gated := mustRun(t, tiny("fluidanimate", 4, TechPTBSpinGate, core.PolicyDynamic))
	if gated.Committed == 0 {
		t.Fatal("spin-gated run made no progress")
	}
	// The gate must not explode runtime (wake-up latency is bounded by the
	// duty cycle).
	if float64(gated.Cycles) > 1.25*float64(plain.Cycles) {
		t.Fatalf("spin gating blew up runtime: %d vs %d", gated.Cycles, plain.Cycles)
	}
	if gated.EnergyJ >= plain.EnergyJ {
		t.Fatalf("spin gating saved no energy: %v >= %v", gated.EnergyJ, plain.EnergyJ)
	}
}

func TestMaxBIPSBaselineMisfiresOnLockBoundApps(t *testing.T) {
	// §II.C's argument: counter-driven global management treats spinning as
	// throughput. MaxBIPS must run and respect the budget far worse than
	// PTB on a contended benchmark, or at least not better on accuracy
	// while being counter-driven.
	base := mustRun(t, tiny("raytrace", 4, TechNone, 0))
	mb := mustRun(t, tiny("raytrace", 4, TechMaxBIPS, 0))
	ptb := mustRun(t, tiny("raytrace", 4, TechPTB, core.PolicyDynamic))
	if mb.Committed == 0 {
		t.Fatal("maxbips made no progress")
	}
	aMB := metrics.NormalizedAoPBPct(mb, base)
	aPTB := metrics.NormalizedAoPBPct(ptb, base)
	if aPTB >= aMB {
		t.Fatalf("PTB (%.1f%%) not more accurate than MaxBIPS (%.1f%%)", aPTB, aMB)
	}
}

func TestComponentBreakdownSumsToTotal(t *testing.T) {
	r := mustRun(t, tiny("fft", 2, TechNone, 0))
	if len(r.ComponentJ) == 0 {
		t.Fatal("no component breakdown")
	}
	sum := 0.0
	for _, v := range r.ComponentJ {
		if v < 0 {
			t.Fatalf("negative component energy: %v", r.ComponentJ)
		}
		sum += v
	}
	if math.Abs(sum-r.EnergyJ) > 1e-12+r.EnergyJ*1e-9 {
		t.Fatalf("components sum to %v, total %v", sum, r.EnergyJ)
	}
	for _, g := range []string{"frontend", "execute", "caches", "clock", "leakage"} {
		if r.ComponentJ[g] <= 0 {
			t.Fatalf("component %q empty: %v", g, r.ComponentJ)
		}
	}
}

func TestClusteredPTBOn32Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("32-core run skipped in -short mode")
	}
	// The §III.E.2 scalability configuration: a 32-core CMP balanced by
	// four 8-core clusters.
	cfg := tiny("ocean", 32, TechPTB, core.PolicyToAll)
	cfg.PTBClusterSize = 8
	cfg.WorkloadScale = 0.05
	r := mustRun(t, cfg)
	base := mustRun(t, func() Config {
		c := tiny("ocean", 32, TechNone, 0)
		c.WorkloadScale = 0.05
		return c
	}())
	if r.Committed == 0 {
		t.Fatal("clustered run made no progress")
	}
	if r.AoPBJ >= base.AoPBJ {
		t.Fatal("clustered PTB did not improve budget tracking at 32 cores")
	}
}

func TestBudgetFractionKnob(t *testing.T) {
	// A looser budget (75% of peak) must produce less AoPB than the default
	// 50% on the same workload.
	tight := mustRun(t, tiny("blackscholes", 4, TechNone, 0))
	cfg := tiny("blackscholes", 4, TechNone, 0)
	cfg.BudgetFrac = 0.75
	loose, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loose.AoPBJ >= tight.AoPBJ {
		t.Fatalf("75%% budget AoPB %v not below 50%% budget %v", loose.AoPBJ, tight.AoPBJ)
	}
	// Identical workload, identical runtime without control.
	if loose.Cycles != tight.Cycles {
		t.Fatalf("budget fraction changed an uncontrolled run's timing: %d vs %d",
			loose.Cycles, tight.Cycles)
	}
}

func TestStdPowerLowerUnderPTB(t *testing.T) {
	// The paper emphasizes PTB's minimal deviation from the budget: chip
	// power variance must not grow under PTB versus no control.
	base := mustRun(t, tiny("blackscholes", 4, TechNone, 0))
	ptb := mustRun(t, tiny("blackscholes", 4, TechPTB, core.PolicyToOne))
	if ptb.StdPowerW >= base.StdPowerW {
		t.Fatalf("PTB power std %.2f not below base %.2f", ptb.StdPowerW, base.StdPowerW)
	}
}

func TestDeterminismOfExtensions(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"spingate", func(c *Config) { c.Technique = TechPTBSpinGate }},
		{"clustered", func(c *Config) { c.PTBClusterSize = 2 }},
		{"maxbips", func(c *Config) { c.Technique = TechMaxBIPS }},
	} {
		cfgA := tiny("waternsq", 4, TechPTB, core.PolicyDynamic)
		tc.mut(&cfgA)
		cfgB := cfgA
		a := mustRun(t, cfgA)
		b := mustRun(t, cfgB)
		if a.Cycles != b.Cycles || a.EnergyJ != b.EnergyJ {
			t.Fatalf("%s non-deterministic: %d/%v vs %d/%v",
				tc.name, a.Cycles, a.EnergyJ, b.Cycles, b.EnergyJ)
		}
	}
}
