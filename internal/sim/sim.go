// Package sim composes the full simulated CMP — cores, caches, directory,
// mesh, memory, power, thermal, synchronization and budget controllers —
// and runs benchmark experiments. It is the layer the public API, the
// command-line tools and the paper-reproduction benchmarks drive.
package sim

import (
	"context"
	"fmt"

	"ptbsim/internal/budget"
	"ptbsim/internal/cache"
	"ptbsim/internal/ckpt"
	"ptbsim/internal/core"
	"ptbsim/internal/cpu"
	"ptbsim/internal/dvfs"
	"ptbsim/internal/eventq"
	"ptbsim/internal/fault"
	"ptbsim/internal/invariant"
	"ptbsim/internal/isa"
	"ptbsim/internal/mesh"
	"ptbsim/internal/metrics"
	"ptbsim/internal/obs"
	"ptbsim/internal/partition"
	"ptbsim/internal/power"
	"ptbsim/internal/syncprim"
	"ptbsim/internal/thermal"
	"ptbsim/internal/workload"
)

// Technique selects the power-budget mechanism under test (§III.C, §III.E).
type Technique string

// The evaluated techniques.
const (
	TechNone   Technique = "none"
	TechDVFS   Technique = "dvfs"
	TechDFS    Technique = "dfs"
	Tech2Level Technique = "2level"
	TechPTB    Technique = "ptb"
	// TechPTBSpinGate adds the paper's future-work extension: PTB's
	// power-pattern spin detector duty-cycle-gates spinning cores.
	TechPTBSpinGate Technique = "ptbgate"
	// TechMaxBIPS is the Isci et al. [1] related-work baseline: global
	// DVFS-mode selection maximizing counter-measured throughput under the
	// budget — the approach §II.C argues fails for parallel workloads.
	TechMaxBIPS Technique = "maxbips"
)

// Config describes one simulation run.
type Config struct {
	// Benchmark is the workload (required).
	Benchmark *workload.Spec
	// Cores is the CMP size (default 4).
	Cores int
	// Technique is the budget mechanism (default TechNone).
	Technique Technique
	// Policy selects the PTB distribution policy.
	Policy core.Policy
	// RelaxFrac relaxes the trigger threshold (§IV.C), e.g. 0.20 = +20%.
	RelaxFrac float64
	// BudgetFrac is the global budget as a fraction of peak power
	// (default 0.5, the paper's headline configuration).
	BudgetFrac float64
	// WorkloadScale shortens runs for tests/benchmarks (default 1.0).
	WorkloadScale float64
	// MaxCycles is a safety cap (default 50M).
	MaxCycles int64
	// TraceEvery records the chip power every N cycles (0 = off).
	TraceEvery int64
	// TraceCore records one core's per-cycle power at the same rate (pass
	// a negative value to disable; the core trace is only collected when
	// TraceEvery is set). Used for the Fig. 5/6 traces.
	TraceCore int
	// PTBLatency overrides the balancer latency (pessimistic experiment).
	PTBLatency *core.Latency

	// Ablation knobs (zero = paper defaults): k-means token groups (8),
	// PTB token-wire width in bits (4), and the DVFS decision window.
	TokenGroups int
	WireBits    int
	DVFSWindow  int64

	// PTBClusterSize, when >0, replaces the single chip-wide balancer with
	// per-cluster balancers of that many cores (the paper's §III.E.2
	// scalability scheme for >32-core CMPs).
	PTBClusterSize int

	// IntraParallel shards the chip into that many tiles stepped by
	// separate goroutines inside the sync quantum (see internal/partition).
	// It must divide Cores; 0 selects the default 1 (serial). Results are
	// bit-identical at every legal value — the conformance suite and the
	// golden matrix pin this — so it is purely a wall-clock knob for big
	// chips.
	IntraParallel int

	// Observe, when non-nil, wires the epoch-sampled telemetry recorder
	// into the run: one obs.Sample per Observe.Every cycles, recorded into
	// a preallocated ring and streamed to Observe.Sink. The recorder only
	// reads simulation state, so an observed run is bit-identical to an
	// unobserved one (the golden matrix pins this); disabled runs pay one
	// nil check per cycle.
	Observe *obs.Config

	// Faults, when non-nil, wires the deterministic fault-injection engine
	// into the system: token-exchange faults into the PTB balancer, link
	// faults into the mesh, sensor noise into the budget estimates, and
	// transition glitches into the DVFS governors. A spec with all rates
	// zero still routes through the fault-aware code paths and reproduces
	// the un-faulted run bit for bit (the golden tests rely on this).
	Faults *fault.Spec

	// Checkpoint, when non-nil with Every > 0, writes a periodic snapshot
	// of the run (internal/ckpt): every Every cycles the full simulator
	// state is digested and an atomic, checksummed snapshot file lands in
	// Checkpoint.Dir. Snapshots are passive — a checkpointed run is
	// bit-identical to an unobserved one — and disabled runs pay one nil
	// check per cycle. Restore goes through ResumeContext.
	Checkpoint *ckpt.Plan

	// Invariants enables the runtime invariant layer: conservation-law and
	// consistency checks evaluated every InvariantEpoch cycles and once more
	// at run end. A violation fails the run with an error wrapping
	// invariant.ErrViolated. Disabled runs pay one nil check per cycle.
	Invariants bool
	// InvariantEpoch overrides the check cadence (default
	// invariant.DefaultEpoch).
	InvariantEpoch int64

	// CPU and Cache allow overriding Table-1 defaults (including the PTHT
	// size via CPU.PTHTSize).
	CPU   cpu.Config
	Cache cache.Config
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Technique == "" {
		c.Technique = TechNone
	}
	if c.BudgetFrac == 0 {
		c.BudgetFrac = 0.5
	}
	if c.WorkloadScale == 0 {
		c.WorkloadScale = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.IntraParallel == 0 {
		c.IntraParallel = 1
	}
	if c.CPU.ROBSize == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	return c
}

// memAdapter bridges the cache hierarchy to the cpu.MemSystem interface.
type memAdapter struct{ h *cache.Hierarchy }

func (a memAdapter) Read(core int, addr uint64, done func())  { a.h.Read(core, addr, done) }
func (a memAdapter) Write(core int, addr uint64, done func()) { a.h.Write(core, addr, done) }
func (a memAdapter) FetchProbe(core int, addr uint64) bool    { return a.h.L1I[core].Probe(addr) }
func (a memAdapter) FetchMiss(core int, addr uint64, done func()) {
	a.h.Fetch(core, addr, done)
}

// System is one fully wired CMP simulation.
type System struct {
	cfg    Config
	q      *eventq.Queue
	meter  *power.Meter
	hier   *cache.Hierarchy
	net    *mesh.Mesh
	par    *partition.Run
	sync   *syncprim.Table
	cores  []*cpu.Core
	gens   []*workload.Generator
	st     *budget.ChipState
	ctl    budget.Controller
	bal    *core.Balancer // non-nil for TechPTB
	col    *metrics.Collector
	therm  *thermal.Model
	inv    *invariant.Checker // nil unless Config.Invariants
	faults *fault.Injector    // nil unless Config.Faults
	sensor *power.NoisySensor // nil unless Config.Faults
	obs    *obs.Recorder      // nil unless Config.Observe
	obsGov *dvfs.Governor     // mode-residency source; nil when no governor

	perCore   []float64
	classes   []isa.SyncClass
	coreTrace []float64

	cycle      int64
	peakPJ     float64
	hitMax     bool
	stopped    bool
	fastOff    bool  // test hook: force every cycle down the full-tick path
	fastCycles int64 // cycles advanced via the inert fast path

	// Checkpointing (nil ck = off, the default: one nil check per cycle).
	ck        *ckpt.Plan
	ckNext    int64 // next snapshot cycle
	ckWritten int   // snapshots written by this process
	ckErr     error // first write failure; latches and disables (degraded)
	ckStop    bool  // crash drill: Plan.StopAfter snapshots reached
}

// NewSystem builds a system from the config.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.Benchmark == nil {
		return nil, fmt.Errorf("sim: config needs a Benchmark")
	}
	spec := cfg.Benchmark
	if cfg.WorkloadScale != 1 {
		spec = spec.Scaled(cfg.WorkloadScale)
	}

	s := &System{cfg: cfg, q: &eventq.Queue{}}
	n := cfg.Cores
	s.meter = power.NewMeter(n)
	s.net = mesh.New(n, s.q, s.meter)
	s.hier = cache.NewHierarchy(n, s.q, s.meter, s.net, cfg.Cache)
	s.sync = syncprim.NewTable(n, spec.NumLocks, 1)

	// The intra-run partition layer. Every run goes through it — serial
	// runs use a single tile — so the tick phase always stages its event
	// and mesh traffic and drains it in ascending core order: the one code
	// path is its own conformance proof (see internal/partition).
	par, err := partition.New(n, cfg.IntraParallel, s.q, s.net)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.par = par
	s.hier.InstallPorts(func(core int) cache.FrontPort { return s.par.Port(core) })

	tm := power.NewTokenModel()
	if cfg.TokenGroups > 0 {
		tm = power.NewTokenModelK(cfg.TokenGroups)
	}
	mem := memAdapter{s.hier}
	for i := 0; i < n; i++ {
		gen := workload.NewGenerator(spec, s.sync, i, n)
		s.gens = append(s.gens, gen)
		s.cores = append(s.cores, cpu.New(i, cfg.CPU, s.meter, tm, mem, s.sync, gen))
	}
	s.par.Bind(
		func(i int) { s.cores[i].Tick() },
		func(i int) { s.cores[i].TickInert() },
	)

	// The budget is a fraction of the processor's rated peak (§III.C);
	// the rated peak derates the structural worst case per
	// power.SustainedPeakFrac.
	s.peakPJ = power.PeakCoreCyclePJ(cfg.CPU.ROBSize) * power.SustainedPeakFrac * float64(n)
	globalBudget := cfg.BudgetFrac * s.peakPJ
	s.st = budget.NewChipState(s.cores, s.meter, s.sync, globalBudget)

	switch cfg.Technique {
	case TechNone:
		s.ctl = budget.None{}
	case TechDVFS:
		d := budget.NewDVFS(n)
		if cfg.DVFSWindow > 0 {
			d.SetWindow(cfg.DVFSWindow)
		}
		s.ctl = d
	case TechDFS:
		d := budget.NewDFS(n)
		if cfg.DVFSWindow > 0 {
			d.SetWindow(cfg.DVFSWindow)
		}
		s.ctl = d
	case TechMaxBIPS:
		s.ctl = budget.NewMaxBIPS(n)
	case Tech2Level:
		tl := budget.NewTwoLevel(n, cfg.RelaxFrac)
		if cfg.DVFSWindow > 0 {
			tl.DVFS.SetWindow(cfg.DVFSWindow)
		}
		s.ctl = tl
	case TechPTB, TechPTBSpinGate:
		inner := budget.NewTwoLevel(n, cfg.RelaxFrac)
		if cfg.DVFSWindow > 0 {
			inner.DVFS.SetWindow(cfg.DVFSWindow)
		}
		lat := core.LatencyFor(n)
		if cfg.PTBLatency != nil {
			lat = *cfg.PTBLatency
		}
		if cfg.PTBClusterSize > 0 && cfg.Technique == TechPTB {
			s.ctl = core.NewClusteredBalancer(n, cfg.PTBClusterSize, cfg.Policy, inner)
			break
		}
		s.bal = core.NewBalancerLatency(n, cfg.Policy, inner, lat)
		if cfg.WireBits > 0 {
			s.bal.SetWireBits(cfg.WireBits)
		}
		if cfg.Technique == TechPTBSpinGate {
			s.ctl = core.NewSpinGate(s.bal)
		} else {
			s.ctl = s.bal
		}
	default:
		return nil, fmt.Errorf("sim: unknown technique %q", cfg.Technique)
	}

	s.col = metrics.NewCollector(n, globalBudget, cfg.TraceEvery)
	s.therm = thermal.New(n, metrics.CycleSeconds)
	s.perCore = make([]float64, n)
	s.classes = make([]isa.SyncClass, n)
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		s.faults = fault.NewInjector(*cfg.Faults)
		s.net.SetFaults(s.faults.Link())
		s.sensor = power.NewNoisySensor(n, s.faults.Sensor())
		switch ctl := s.ctl.(type) {
		case *core.ClusteredBalancer:
			ctl.SetFaults(s.faults.Token())
		default:
			if s.bal != nil {
				s.bal.SetFaults(s.faults.Token())
			}
		}
		for _, g := range s.governors() {
			g.SetFaults(s.faults.DVFS())
		}
	}
	if cfg.Observe != nil {
		if govs := s.governors(); len(govs) == 1 {
			s.obsGov = govs[0]
		}
		s.obs = obs.NewRecorder(*cfg.Observe, n, s.fillSample)
		pol := ""
		if cfg.Technique == TechPTB || cfg.Technique == TechPTBSpinGate {
			pol = cfg.Policy.String()
		}
		s.obs.SetRun(spec.Name, n, string(cfg.Technique), pol, globalBudget)
	}
	if cfg.Invariants {
		s.inv = invariant.New(cfg.InvariantEpoch)
		s.registerInvariants()
	}
	if cfg.Checkpoint != nil && cfg.Checkpoint.Every > 0 {
		s.ck = cfg.Checkpoint
		s.ckNext = cfg.Checkpoint.Every
	}
	return s, nil
}

// tokenLedger reads the PTB token-flow ledger (cumulative pJ) across
// whichever balancer topology is active; all zeros for non-PTB techniques.
func (s *System) tokenLedger() (donated, granted, discarded, inflight float64) {
	if s.bal != nil {
		d, g, di, _ := s.bal.Stats()
		return d, g, di, s.bal.PendingPJ()
	}
	if cb, ok := s.ctl.(*core.ClusteredBalancer); ok {
		for _, grp := range cb.Groups() {
			d, g, di, _ := grp.Stats()
			donated += d
			granted += g
			discarded += di
			inflight += grp.PendingPJ()
		}
	}
	return
}

// fillSample populates one telemetry sample from live simulation state. It
// runs at the end of Step, after the meter fold and collector record, so
// every readout is the post-cycle view. Cumulative counters are written as
// read; the obs.Recorder converts them to epoch deltas. The fill performs
// no allocation — the sample's slices are preallocated by the recorder —
// which keeps the enabled path O(1) per epoch.
func (s *System) fillSample(sm *obs.Sample) {
	var chip float64
	for i := range s.perCore {
		p := s.perCore[i]
		sm.CorePJ[i] = p
		chip += p
		sm.TokensPJ[i] = s.st.EstPJ[i]
		sm.EpochPJ[i] = s.meter.TotalPJ(i)
		sm.Classes[i] = int(s.classes[i])
		if s.obsGov != nil {
			sm.Modes[i] = s.obsGov.ModeIndex(i)
		} else {
			sm.Modes[i] = 0
		}
	}
	sm.ChipPJ = chip
	sm.ClassCycles = s.col.ClassCycles()
	sm.DonatedPJ, sm.GrantedPJ, sm.DiscardedPJ, sm.InFlightPJ = s.tokenLedger()
	sm.NoCMessages = s.net.Messages()
	sm.NoCFlits = s.net.FlitHops()
	var l1h, l1m int64
	for i := range s.cores {
		l1h += s.hier.L1I[i].Hits() + s.hier.L1D[i].Hits()
		l1m += s.hier.L1I[i].Misses() + s.hier.L1D[i].Misses()
	}
	sm.L1Hits, sm.L1Misses = l1h, l1m
	var l2h, l2m int64
	for _, b := range s.hier.Banks {
		_, _, _, _, _, h, m := b.Stats()
		l2h += h
		l2m += m
	}
	sm.L2Hits, sm.L2Misses = l2h, l2m
}

// registerInvariants wires the component self-checks into the checker.
// Registration order is evaluation order; the final-only checks come last
// because draining the event queue for the quiescent MOESI cross-check
// delivers in-flight messages, which charge the power meter energy the
// collector never saw — so the energy identity must be verified first.
func (s *System) registerInvariants() {
	s.inv.Register("cpu-occupancy", func() error {
		for _, c := range s.cores {
			if err := c.CheckOccupancy(); err != nil {
				return err
			}
		}
		return nil
	})
	s.inv.Register("power-ledger", s.meter.CheckConsistency)
	if s.obs != nil {
		// The telemetry epoch-energy ledger must telescope back to the
		// meter's ground truth: emitted per-core epoch sums plus the
		// unsampled tail equal the cumulative metered energy.
		s.inv.Register("obs-energy", func() error {
			return s.obs.CheckEnergy(s.meter.TotalPJ)
		})
	}
	s.inv.Register("noc-flit-conservation", s.net.CheckFlitConservation)
	s.inv.Register("budget-state", func() error {
		// The structural (non-derated) peak scales the estimate sanity
		// bound; the rated TDP (s.peakPJ) sits below it by
		// SustainedPeakFrac and is transiently overshot by design.
		return budget.CheckState(s.st, s.peakPJ/power.SustainedPeakFrac)
	})
	if s.bal != nil {
		s.inv.Register("ptb-token-conservation", s.bal.CheckConservation)
	} else if cb, ok := s.ctl.(*core.ClusteredBalancer); ok {
		s.inv.Register("ptb-token-conservation", cb.CheckConservation)
	}
	s.inv.Register("dir-structure", s.hier.CheckDirectoryEntries)

	s.inv.RegisterFinal("energy-identity", func() error {
		var meterPJ float64
		for i := 0; i < s.cfg.Cores; i++ {
			for k := 0; k < power.NumEventKinds; k++ {
				meterPJ += s.meter.KindPJ(i, power.EventKind(k))
			}
		}
		colPJ := s.col.EnergyJ() / metrics.PJToJ
		// The collector sums per-cycle chip totals, the meter per-event kind
		// ledgers — two independent accumulation orders over ~1e8 additions,
		// so the tolerance is looser than invariant.CloseTo.
		diff := meterPJ - colPJ
		if diff < 0 {
			diff = -diff
		}
		m := meterPJ
		if colPJ > m {
			m = colPJ
		}
		if diff > 1e-7*m+1e-6 {
			return fmt.Errorf("sim: energy identity broken: collector %.3f pJ != meter %.3f pJ", colPJ, meterPJ)
		}
		return nil
	})
	s.inv.RegisterFinal("quiescent-moesi", func() error {
		// The workload draining does not imply the uncore has: late
		// writebacks and invalidation acks may still be in flight. Run the
		// event queue forward (no core ticks) until it empties, then run the
		// full MOESI cross-check, which is only sound at a quiescent point.
		const drainCap = 4_000_000
		now := s.cycle
		for !s.q.Empty() && now < s.cycle+drainCap {
			now += 1024
			s.q.RunUntil(now)
		}
		if !s.q.Empty() {
			return fmt.Errorf("sim: event queue failed to quiesce within %d cycles of run end", drainCap)
		}
		return s.hier.CheckInvariants()
	})
}

// governors collects the dvfs.Governor instances reachable through the
// active controller stack. None has no governor, and MaxBIPS applies modes
// directly without one, so regulator glitches are not modeled for that
// related-work baseline.
func (s *System) governors() []*dvfs.Governor {
	var out []*dvfs.Governor
	var walk func(c budget.Controller)
	walk = func(c budget.Controller) {
		switch ctl := c.(type) {
		case *budget.DVFSController:
			out = append(out, ctl.Governor())
		case *budget.TwoLevel:
			walk(ctl.DVFS)
		case *core.Balancer:
			walk(ctl.Inner())
		case *core.SpinGate:
			walk(ctl.Balancer())
		case *core.ClusteredBalancer:
			walk(ctl.Inner())
		}
	}
	walk(s.ctl)
	return out
}

// GlobalBudgetPJ returns the per-cycle budget in picojoules.
func (s *System) GlobalBudgetPJ() float64 { return s.cfg.BudgetFrac * s.peakPJ }

// PeakPJ returns the chip peak per-cycle energy.
func (s *System) PeakPJ() float64 { return s.peakPJ }

// Collector exposes the metrics collector (for traces).
func (s *System) Collector() *metrics.Collector { return s.col }

// Balancer returns the PTB balancer, or nil for other techniques.
func (s *System) Balancer() *core.Balancer { return s.bal }

// Sync exposes the synchronization table.
func (s *System) Sync() *syncprim.Table { return s.sync }

// Invariants returns the invariant checker, or nil when Config.Invariants
// is off.
func (s *System) Invariants() *invariant.Checker { return s.inv }

// CoreTrace returns the per-cycle power samples of Config.TraceCore.
func (s *System) CoreTrace() []float64 { return s.coreTrace }

// Telemetry returns the epoch-sampled telemetry recorder, or nil when
// Config.Observe is off.
func (s *System) Telemetry() *obs.Recorder { return s.obs }

// Cycle returns the current simulation cycle.
func (s *System) Cycle() int64 { return s.cycle }

// done reports whether every thread has drained.
func (s *System) done() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// FastCycles reports how many cycles were advanced through the idle
// skip-ahead fast path (diagnostics; not part of any digest).
func (s *System) FastCycles() int64 { return s.fastCycles }

// IntraParallel reports the tile count the chip is sharded into.
func (s *System) IntraParallel() int { return s.par.Tiles() }

// coresQuiescent reports whether every core proves its next tick inert.
func (s *System) coresQuiescent() bool {
	for _, c := range s.cores {
		if d, _ := c.NextWake(); d == 0 {
			return false
		}
	}
	return true
}

// Step advances the simulation by exactly one global cycle.
//
// The cycle is a strict two-phase schedule. The *event phase* runs the
// shared event queue up to the cycle on the coordinating goroutine: mesh
// hops, protocol handlers, memory replies — everything that crosses tile
// boundaries. The *tick phase* walks every core's pipeline through the
// partition layer: each tile's cores tick on their own goroutine (or all
// on the coordinator when IntraParallel is 1), touching only tile-local
// state; the L1s' event-queue and mesh injections are spooled by per-core
// ports and drained in ascending core order at the quantum barrier, which
// reproduces the serial schedule's merged order exactly. Everything after
// the tick phase (leakage, budget refresh, sensor perturbation, controller
// tick, meter fold, collector/thermal recording, telemetry, invariants)
// runs serially on the coordinator.
//
// The idle skip-ahead: when no event is due this cycle and every core
// reports a provably inert tick (cpu.NextWake > 0), the per-core pipeline
// walk is replaced by cpu.TickInert — an exact replay of what Tick would
// have done on a quiescent cycle. Everything after the core loop runs
// identically on both paths, so a fast cycle is bit-for-bit the same as a
// full one; the golden-digest matrix enforces this. The gate re-evaluates
// every cycle, which is what keeps it sound against controllers flipping
// knobs mid-window and against event callbacks waking a pipeline: any such
// change flows into the next cycle's NextWake/NextDue before another fast
// tick can happen.
func (s *System) Step() {
	s.cycle++
	fast := !s.fastOff && s.q.NextDue() > s.cycle && s.coresQuiescent()
	s.q.RunUntil(s.cycle)
	if fast {
		s.fastCycles++
	}
	s.par.Cycle(fast)
	for i, c := range s.cores {
		if c.Knobs().SleepGate {
			s.meter.Add(i, power.EvLeakageSleep, 1)
		} else {
			s.meter.Add(i, power.EvLeakage, 1)
		}
	}
	s.st.Refresh(s.cycle)
	if s.sensor != nil {
		// The controllers read sensors, not ground truth: perturb every
		// estimate and re-derive the chip total in Refresh's summation order
		// (so a zero-rate sensor leaves both bit-identical).
		s.st.ChipEstPJ = 0
		for i := range s.st.EstPJ {
			s.st.EstPJ[i] = s.sensor.Perturb(i, s.st.EstPJ[i])
			s.st.ChipEstPJ += s.st.EstPJ[i]
		}
	}
	s.ctl.Tick(s.st)
	s.meter.EndCycle(s.perCore)
	for i := range s.classes {
		s.classes[i] = s.sync.State(i)
	}
	s.col.Record(s.perCore, s.classes)
	s.therm.Record(s.perCore)
	if s.cfg.TraceCore >= 0 && s.cfg.TraceEvery > 0 && s.cycle%s.cfg.TraceEvery == 0 {
		s.coreTrace = append(s.coreTrace, s.perCore[s.cfg.TraceCore])
	}
	if s.obs != nil {
		s.obs.Tick(s.cycle)
	}
	s.inv.Tick(s.cycle)
	if s.ck != nil {
		s.tickCheckpoint()
	}
}

// cancelCheckCycles is how often the cycle loop polls the context: every
// 4096 simulated cycles, i.e. a few microseconds of wall time, so
// cancellation latency is far below one power-sample interval.
const cancelCheckCycles = 4096

// Run executes the benchmark to completion (or the cycle cap) and returns
// the result summary.
func (s *System) Run() *metrics.RunResult {
	res, err := s.RunContext(context.Background())
	if err != nil {
		// A background context never expires, so the only possible error
		// is the double-run misuse this method has always panicked on.
		panic(err)
	}
	return res
}

// RunContext executes the benchmark to completion (or the cycle cap),
// polling ctx every cancelCheckCycles simulated cycles. On cancellation it
// returns an error wrapping ctx.Err(); the partially advanced system is
// then spent and cannot be resumed.
func (s *System) RunContext(ctx context.Context) (*metrics.RunResult, error) {
	return s.runFrom(ctx, false)
}

// runFrom is the run loop shared by fresh runs and checkpoint restores.
// A resumed system is already advanced to its snapshot cycle, which may
// itself be the run's final cycle — so resumed runs re-check the exit
// conditions before stepping again, keeping the total Step count exactly
// equal to an uninterrupted run's.
func (s *System) runFrom(ctx context.Context, resumed bool) (*metrics.RunResult, error) {
	if s.stopped {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	s.stopped = true
	// Park the tile workers once the run ends (including cancellation and
	// invariant-failure returns) so sweeps never accumulate goroutines; the
	// partition layer keeps passing events through afterwards, which the
	// final quiescent-MOESI drain needs.
	defer s.par.Stop()
	run := true
	if resumed {
		if s.done() {
			run = false
		} else if s.cycle >= s.cfg.MaxCycles {
			s.hitMax = true
			run = false
		}
	}
	for run {
		s.Step()
		if s.ckStop {
			return nil, fmt.Errorf("sim: %s/%d/%s: %w (%d snapshots, cycle %d)",
				s.cfg.Benchmark.Name, s.cfg.Cores, s.cfg.Technique,
				ckpt.ErrStopped, s.ckWritten, s.cycle)
		}
		if s.done() {
			break
		}
		if s.cycle >= s.cfg.MaxCycles {
			s.hitMax = true
			break
		}
		if s.cycle%cancelCheckCycles == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: %s/%d/%s cancelled at cycle %d: %w",
					s.cfg.Benchmark.Name, s.cfg.Cores, s.cfg.Technique, s.cycle, err)
			}
		}
	}
	// Flush the telemetry tail before invariant finalization: the
	// quiescent-MOESI final check drains the event queue, which charges the
	// power meter energy that belongs to no epoch of the finished run.
	if s.obs != nil {
		s.obs.Finalize(s.cycle)
	}
	s.inv.Finalize(s.cycle)
	if err := s.inv.Err(); err != nil {
		return nil, fmt.Errorf("sim: %s/%d/%s: %w",
			s.cfg.Benchmark.Name, s.cfg.Cores, s.cfg.Technique, err)
	}
	return s.result(), nil
}

// RunCycles advances at most n cycles (for trace tooling); it stops early
// if the workload completes and reports whether it did.
func (s *System) RunCycles(n int64) bool {
	for i := int64(0); i < n; i++ {
		s.Step()
		if s.done() {
			return true
		}
	}
	return false
}

func (s *System) result() *metrics.RunResult {
	var committed int64
	for _, c := range s.cores {
		committed += c.Stats().Committed
	}
	label := string(s.cfg.Technique)
	pol := ""
	if s.cfg.Technique == TechPTB || s.cfg.Technique == TechPTBSpinGate {
		pol = s.cfg.Policy.String()
	}
	comp := make(map[string]float64)
	for k := 0; k < power.NumEventKinds; k++ {
		kind := power.EventKind(k)
		for i := 0; i < s.cfg.Cores; i++ {
			comp[kind.Component()] += s.meter.KindPJ(i, kind) * metrics.PJToJ
		}
	}
	var donated, granted, discarded float64
	var rounds int64
	if s.bal != nil {
		donated, granted, discarded, rounds = s.bal.Stats()
	} else if cb, ok := s.ctl.(*core.ClusteredBalancer); ok {
		for _, g := range cb.Groups() {
			d, gr, di, r := g.Stats()
			donated += d
			granted += gr
			discarded += di
			rounds += r
		}
	}
	var degraded bool
	var lostPJ, dupPJ float64
	var retries, reportsLost, staleCycles, stallCycles, retransmits, glitches, injected int64
	if s.faults != nil {
		injected = s.faults.Fired()
		stallCycles, retransmits = s.net.FaultStats()
		if s.bal != nil {
			lostPJ, dupPJ, retries, reportsLost, staleCycles = s.bal.FaultStats()
			degraded = s.bal.Degraded()
		} else if cb, ok := s.ctl.(*core.ClusteredBalancer); ok {
			lostPJ, dupPJ, retries, reportsLost, staleCycles = cb.FaultStats()
			degraded = cb.Degraded()
		}
		for _, g := range s.governors() {
			glitches += g.Glitches()
		}
	}
	var getS, getX, puts, fwds, invs int64
	for _, bank := range s.hier.Banks {
		gs, gx, p, f, iv, _, _ := bank.Stats()
		getS += gs
		getX += gx
		puts += p
		fwds += f
		invs += iv
	}
	return &metrics.RunResult{
		Benchmark:      s.cfg.Benchmark.Name,
		Cores:          s.cfg.Cores,
		Technique:      label,
		Policy:         pol,
		Cycles:         s.col.Cycles(),
		Committed:      committed,
		EnergyJ:        s.col.EnergyJ(),
		AoPBJ:          s.col.AoPBJ(),
		MeanPowerW:     s.col.MeanPowerW(),
		StdPowerW:      s.col.StdPowerW(),
		SpinEnergyFrac: s.col.SpinEnergyFrac(),
		ClassFrac:      s.col.ClassCycleFrac(),
		OverBudgetFrac: s.col.OverBudgetFrac(),
		BudgetPJ:       s.GlobalBudgetPJ(),
		MeanTempC:      s.therm.MeanTempC(),
		StdTempC:       s.therm.StdTempC(),
		HitMaxCycles:   s.hitMax,
		ComponentJ:     comp,

		TokenDonatedPJ:   donated,
		TokenGrantedPJ:   granted,
		TokenDiscardedPJ: discarded,
		BalanceRounds:    rounds,
		CohGetS:          getS,
		CohGetX:          getX,
		CohPut:           puts,
		CohFwd:           fwds,
		CohInv:           invs,
		NoCMessages:      s.net.Messages(),
		NoCFlits:         s.net.FlitHops(),

		Degraded:            degraded,
		FaultsInjected:      injected,
		TokenLostPJ:         lostPJ,
		TokenDupPJ:          dupPJ,
		TokenRetries:        retries,
		TokenReportsLost:    reportsLost,
		StaleFallbackCycles: staleCycles,
		NoCStallCycles:      stallCycles,
		NoCRetransmits:      retransmits,
		DVFSGlitches:        glitches,
	}
}

// Run is the one-shot convenience wrapper.
func Run(cfg Config) (*metrics.RunResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is the one-shot wrapper with cancellation: it builds a system
// and runs it to completion unless ctx ends first.
func RunContext(ctx context.Context, cfg Config) (*metrics.RunResult, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}
