package sim

import (
	"fmt"
	"testing"

	"ptbsim/internal/core"
	"ptbsim/internal/obs"
	"ptbsim/internal/workload"
)

// benchSteps measures the per-cycle cost of System.Step on a live 4-core
// ocean run. The variants differ only in cfg.Invariants / cfg.Observe, so
// comparing their ns/op isolates what each opt-in layer costs when
// disabled (one nil check per cycle — the <2% claims in DESIGN.md §8 and
// §11) and when enabled (epoch-gated sweeps / sampling). cmd/ptbbench
// compares all of them against BENCH_baseline.json.
func benchSteps(b *testing.B, check bool, observe *obs.Config) {
	spec, ok := workload.ByName("ocean")
	if !ok {
		b.Fatal("ocean missing from catalog")
	}
	cfg := Config{
		Benchmark:     spec,
		Cores:         4,
		Technique:     TechNone,
		WorkloadScale: 1.0,
		Invariants:    check,
		Observe:       observe,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.RunCycles(1) {
			// Workload drained; restart on a fresh system off the clock.
			b.StopTimer()
			if s, err = NewSystem(cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkSimStep(b *testing.B)           { benchSteps(b, false, nil) }
func BenchmarkSimStepInvariants(b *testing.B) { benchSteps(b, true, nil) }

// BenchmarkSimStepTelemetry runs the same loop with the observability
// recorder sampling at the default epoch, so the enabled-path cost (one
// counter compare per cycle plus an O(cores) fill every epoch) is
// measurable against BenchmarkSimStep in the same session.
func BenchmarkSimStepTelemetry(b *testing.B) {
	benchSteps(b, false, &obs.Config{Every: obs.DefaultEvery, Ring: 1})
}

// BenchmarkSimStepBigChip is the intra-run scaling benchmark: the per-cycle
// cost of a live 64-core PTB chip as the tile count grows. par-intra=1 is
// the serial baseline; the speedup of the par-intra=8 variant over it is
// the PR-7 acceptance number (≥2×), gated in CI by `ptbbench -par-intra`.
// Results are bit-identical across the variants (the conformance suite
// pins that), so this measures wall-clock only.
func BenchmarkSimStepBigChip(b *testing.B) {
	spec, ok := workload.ByName("ocean")
	if !ok {
		b.Fatal("ocean missing from catalog")
	}
	for _, tiles := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par-intra=%d", tiles), func(b *testing.B) {
			cfg := Config{
				Benchmark:     spec,
				Cores:         64,
				Technique:     TechPTB,
				Policy:        core.PolicyDynamic,
				WorkloadScale: 0.05,
				IntraParallel: tiles,
			}
			s, err := NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.RunCycles(1) {
					b.StopTimer()
					if s, err = NewSystem(cfg); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}
