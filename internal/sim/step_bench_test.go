package sim

import (
	"testing"

	"ptbsim/internal/workload"
)

// benchSteps measures the per-cycle cost of System.Step on a live 4-core
// ocean run. The two variants differ only in cfg.Invariants, so comparing
// their ns/op isolates what the invariant layer costs when disabled (one
// nil check per cycle — the <2% claim in DESIGN.md §8) and when enabled
// (epoch-gated sweeps). cmd/ptbbench compares both against
// BENCH_baseline.json.
func benchSteps(b *testing.B, check bool) {
	spec, ok := workload.ByName("ocean")
	if !ok {
		b.Fatal("ocean missing from catalog")
	}
	cfg := Config{
		Benchmark:     spec,
		Cores:         4,
		Technique:     TechNone,
		WorkloadScale: 1.0,
		Invariants:    check,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.RunCycles(1) {
			// Workload drained; restart on a fresh system off the clock.
			b.StopTimer()
			if s, err = NewSystem(cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkSimStep(b *testing.B)           { benchSteps(b, false) }
func BenchmarkSimStepInvariants(b *testing.B) { benchSteps(b, true) }
