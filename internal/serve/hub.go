package serve

import (
	"encoding/json"
	"sync"

	"ptbsim"
	"ptbsim/internal/store"
)

// event is one server-sent event: a named JSON payload.
type event struct {
	name string
	data []byte
}

// Hub fans the experiment's telemetry out to SSE subscribers. It
// implements ptbsim.Observer and ptbsim.RunObserver, so it plugs into
// ptbsim.WithObserver — which serializes Observe/ObserveRun calls — and
// must therefore be constructed before the Experiment. Subscribers that
// fall behind lose events rather than stalling the simulation: each
// subscription is a bounded channel and the hub drops on overflow,
// counting the loss.
type Hub struct {
	mu      sync.Mutex
	subs    map[chan event]struct{}
	dropped int64
}

// NewHub creates an SSE telemetry hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan event]struct{})}
}

// runEvent is the wire form of a run-completion SSE event.
type runEvent struct {
	Config ptbsim.Config `json:"config"`
	Digest string        `json:"digest,omitempty"`
	Cached bool          `json:"cached,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// Observe broadcasts one telemetry sample as a "sample" event.
func (h *Hub) Observe(s *ptbsim.Sample) {
	data, err := json.Marshal(s)
	if err != nil {
		return
	}
	h.broadcast(event{name: "sample", data: data})
}

// ObserveRun broadcasts one run completion as a "run" event.
func (h *Hub) ObserveRun(p ptbsim.Progress) {
	ev := runEvent{Config: p.Config, Cached: p.Cached}
	if p.Result != nil {
		ev.Digest = p.Result.Digest()
	}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	h.broadcast(event{name: "run", data: data})
}

func (h *Hub) broadcast(ev event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
			continue
		default:
		}
		if ev.name != "run" {
			h.dropped++
			continue
		}
		// Run completions outrank backlogged samples: evict one queued
		// event to make room rather than dropping the completion.
		select {
		case <-ch:
			h.dropped++
		default:
		}
		select {
		case ch <- ev:
		default:
			h.dropped++
		}
	}
}

// subscribe registers a new bounded subscription; cancel unregisters it.
func (h *Hub) subscribe() (ch chan event, cancel func()) {
	ch = make(chan event, 256)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

// Subscribers reports the number of live SSE subscriptions.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped reports events lost to slow subscribers.
func (h *Hub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// fragmentOf mirrors store.DigestFragment for responses when no store is
// attached.
func fragmentOf(r *ptbsim.Result) string { return store.DigestFragment(r) }
