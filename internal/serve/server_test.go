package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ptbsim"
	"ptbsim/internal/store"
)

// newTestServer wires the full stack — hub, store, experiment, server —
// the way cmd/ptbserve does.
func newTestServer(t *testing.T, dir string, expOpts ...ptbsim.Option) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub()
	opts := append([]ptbsim.Option{
		ptbsim.WithScale(0.02),
		ptbsim.WithParallelism(2),
		ptbsim.WithCache(st),
		ptbsim.WithObserver(256, hub),
	}, expOpts...)
	exp := ptbsim.NewExperiment(opts...)
	t.Cleanup(exp.Close)
	srv := New(exp, st, hub)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	req := runRequest{Config: ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.None}}

	resp := postJSON(t, ts.URL+"/v1/runs", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var first runResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	if first.Result == nil || first.Cached || first.Digest == "" {
		t.Fatalf("first run: result=%v cached=%v digest=%q", first.Result, first.Cached, first.Digest)
	}

	// Second identical request: served from cache, identical digest.
	resp2 := postJSON(t, ts.URL+"/v1/runs", req)
	defer resp2.Body.Close()
	var second runResponse
	if err := json.NewDecoder(resp2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical run not served from cache")
	}
	if second.Digest != first.Digest {
		t.Errorf("digest drifted: %s vs %s", first.Digest, second.Digest)
	}

	// The result is addressable by its digest fragment.
	resp3, err := http.Get(ts.URL + "/v1/results/" + first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s = %d", first.Digest, resp3.StatusCode)
	}
}

func TestRunEndpointRejectsBadConfig(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	resp := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: ptbsim.Config{Benchmark: "nope", Cores: 2}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestBackpressure429(t *testing.T) {
	// One worker, one queue slot: hammer distinct configs concurrently
	// until the queue overflows into 429 + Retry-After.
	_, ts := newTestServer(t, t.TempDir(),
		ptbsim.WithParallelism(1), ptbsim.WithQueue(1))
	benches := []string{"barnes", "ocean", "radix", "fft", "cholesky", "raytrace"}
	var wg sync.WaitGroup
	codes := make([]int, len(benches))
	retryAfter := make([]string, len(benches))
	for i, b := range benches {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/runs", runRequest{
				Config: ptbsim.Config{Benchmark: b, Cores: 16, Technique: ptbsim.PTB},
			})
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()
	var rejected int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			rejected++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if rejected == 0 {
		t.Skip("queue never overflowed (machine too fast for the window)")
	}
}

func TestSweepEndpointWarmSecondPass(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	req := sweepRequest{
		Benchmarks: []string{"fft", "radix"},
		CoreCounts: []int{2, 4},
		Techniques: []string{"none", "ptb"},
	}
	resp := postJSON(t, ts.URL+"/v1/sweeps", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var cold sweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&cold); err != nil {
		t.Fatal(err)
	}
	if cold.Total != 8 || cold.Failed != 0 {
		t.Fatalf("cold pass: total=%d failed=%d, want 8/0", cold.Total, cold.Failed)
	}
	if cold.Fresh+cold.Coalesced != 8 {
		t.Fatalf("cold pass: fresh=%d coalesced=%d, want sum 8", cold.Fresh, cold.Coalesced)
	}

	resp2 := postJSON(t, ts.URL+"/v1/sweeps", req)
	defer resp2.Body.Close()
	var warm sweepResponse
	if err := json.NewDecoder(resp2.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cached != warm.Total {
		t.Fatalf("warm pass: cached=%d of %d, want 100%%", warm.Cached, warm.Total)
	}
	for i := range cold.Results {
		if cold.Results[i].Digest != warm.Results[i].Digest {
			t.Errorf("result %d digest drifted: %s vs %s",
				i, cold.Results[i].Digest, warm.Results[i].Digest)
		}
	}
}

func TestSweepEndpointRejectsBadTechnique(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{Techniques: []string{"warp"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.None},
	}).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.Fresh != 1 || st.CacheLen != 1 {
		t.Errorf("stats after one run: %+v", st)
	}
	if st.StoreDir == "" {
		t.Error("stats lack the store directory")
	}
}

func TestTelemetrySSE(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/telemetry", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Drive one run while subscribed; both sample and run events must
	// arrive on the stream.
	go func() {
		postJSON(t, ts.URL+"/v1/runs", runRequest{
			Config: ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.None},
		}).Body.Close()
	}()

	events := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events[name] = true
		}
		if events["sample"] && events["run"] {
			return
		}
	}
	t.Fatalf("stream ended with events %v (scan err %v), want sample and run", events, sc.Err())
}

func TestShutdownDrainsAndPersists(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, dir)
	cfg := ptbsim.Config{Benchmark: "ocean", Cores: 2, Technique: ptbsim.None}

	resp := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg})
	var first runResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A second server over the same store directory — the restart — must
	// answer from the persisted cache with an identical digest.
	_, ts2 := newTestServer(t, dir)
	resp2 := postJSON(t, ts2.URL+"/v1/runs", runRequest{Config: cfg})
	defer resp2.Body.Close()
	var second runResponse
	if err := json.NewDecoder(resp2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("restarted server re-simulated a persisted config")
	}
	if second.Digest != first.Digest {
		t.Errorf("digest drifted across restart: %s vs %s", first.Digest, second.Digest)
	}
	if fmt.Sprint(second.Result.Digest()) != fmt.Sprint(first.Result.Digest()) {
		t.Error("full digests differ across restart")
	}
}

func TestTimeoutMSRejectsAbsurdValues(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	cfg := ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.None}
	for _, ms := range []int64{-1, 3_600_001} {
		resp := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, TimeoutMS: ms})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("timeout_ms=%d: status = %d, want 400", ms, resp.StatusCode)
		}
		resp2 := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
			Benchmarks: []string{"fft"}, CoreCounts: []int{2}, Techniques: []string{"none"},
			TimeoutMS: ms,
		})
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusBadRequest {
			t.Errorf("sweep timeout_ms=%d: status = %d, want 400", ms, resp2.StatusCode)
		}
	}
}

func TestTimeoutMSDeadline504(t *testing.T) {
	// Full-scale barnes on 32 cores takes far longer than 1ms: the run
	// must fail with the structured 504-class deadline error.
	_, ts := newTestServer(t, t.TempDir(), ptbsim.WithScale(1))
	resp := postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config:    ptbsim.Config{Benchmark: "barnes", Cores: 32, Technique: ptbsim.PTB},
		TimeoutMS: 1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Error == "" || !strings.Contains(rr.Error, "deadline") {
		t.Fatalf("504 body lacks a structured deadline error: %+v", rr)
	}
}

// waitJournalDrained polls until the journal has no pending records (the
// completion watcher runs on its own goroutine).
func waitJournalDrained(t *testing.T, jr *store.Journal) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if jr.Pending() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("journal still has %d pending records", jr.Pending())
}

func TestJournalAcceptedThenDone(t *testing.T) {
	dir := t.TempDir()
	jr, pending, err := store.OpenJournal(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	srv, ts := newTestServer(t, dir)
	srv.AttachJournal(jr)

	resp := postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.None},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	waitJournalDrained(t, jr)
}

func TestJournalReplayRecoversInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "jobs.wal")
	cfg := ptbsim.Config{Benchmark: "radix", Cores: 2, Technique: ptbsim.None}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The "crashed" process: a job was accepted and journaled, but the
	// process died before completing it.
	jr0, _, err := store.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr0.Accept(store.JournalRecord{ID: "interrupted-job", Config: cfgJSON, Priority: 3}); err != nil {
		t.Fatal(err)
	}
	jr0.Close()

	// The reboot: replay must resubmit the job, complete it, and clear
	// the journal — zero accepted jobs lost.
	jr, pending, err := store.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(pending) != 1 {
		t.Fatalf("pending = %+v, want the interrupted job", pending)
	}
	srv, ts := newTestServer(t, dir)
	srv.AttachJournal(jr)
	n, err := srv.ReplayJournal(context.Background(), pending)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d jobs, want 1", n)
	}
	waitJournalDrained(t, jr)

	// The recomputed result is in the cache: the same config over HTTP
	// answers cached.
	resp := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg})
	defer resp.Body.Close()
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Cached {
		t.Fatal("replayed job's result not served from cache")
	}
}
