// Package serve is ptbserve's HTTP layer: the experiment engine behind a
// JSON API. The wire formats reuse the repo's stable schemas — Config and
// Result travel exactly as the ptbsim package marshals them (including
// the self-verifying result digest) — so anything that can read `ptbsim
// -json` output can read this API.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /v1/stats           queue/cache/engine counters
//	POST /v1/runs            run one configuration (synchronous)
//	POST /v1/sweeps          run a sweep cross-product (synchronous)
//	GET  /v1/results/{sha}   look a cached result up by digest fragment
//	GET  /v1/telemetry       live SSE feed of samples and run completions
//
// Backpressure maps onto status codes: a full queue answers 429 with
// Retry-After, a draining server 503. Submitted work runs detached from
// the request — a client that disconnects mid-run wastes nothing, the
// result still lands in the cache.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"ptbsim"
	"ptbsim/internal/store"
)

// Server routes the HTTP API onto an Experiment. Construct with New,
// mount via Handler.
type Server struct {
	exp *ptbsim.Experiment
	st  *store.Store   // optional persistent cache, for /v1/results
	hub *Hub           // optional telemetry hub, for /v1/telemetry
	jr  *store.Journal // optional write-ahead journal of accepted jobs
	mux *http.ServeMux

	started time.Time

	runs      atomic.Int64 // configurations answered (runs + sweep members)
	fresh     atomic.Int64 // ... simulated fresh
	cacheHits atomic.Int64 // ... answered from cache
	coalesced atomic.Int64 // ... coalesced onto an in-flight run
	rejected  atomic.Int64 // submissions refused (backpressure or draining)
	failed    atomic.Int64 // runs that ended in error
}

// New builds a server over exp. st may be nil (no /v1/results lookups,
// no persistence stats); hub may be nil (/v1/telemetry answers 404) —
// pass the same Hub the experiment was built with (WithObserver) to
// stream live telemetry.
func New(exp *ptbsim.Experiment, st *store.Store, hub *Hub) *Server {
	s := &Server{exp: exp, st: st, hub: hub, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/results/{sha}", s.handleResult)
	s.mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// AttachJournal installs a write-ahead journal of accepted jobs: every
// successfully submitted configuration is journaled (fsync'd) before the
// HTTP acknowledgment, and marked done once its result is in the cache.
// A SIGKILL'd server therefore reboots knowing exactly which accepted
// jobs never completed — feed them back through ReplayJournal. Call
// before serving requests; nil detaches.
func (s *Server) AttachJournal(jr *store.Journal) { s.jr = jr }

// journalAccept records an accepted job in the journal — before any
// response bytes, so an acknowledgment can never outrun durability — and
// arms the completion watcher. Nil-journal servers skip both.
func (s *Server) journalAccept(job *ptbsim.Job, priority int) {
	if s.jr == nil {
		return
	}
	cfgJSON, err := json.Marshal(job.Config())
	if err == nil {
		_ = s.jr.Accept(store.JournalRecord{ID: job.Key(), Config: cfgJSON, Priority: priority})
	}
	go func() {
		// The watcher outlives the request: a client that disconnects
		// mid-run must not leave a completed job marked pending forever.
		_, runErr := job.Await(context.Background())
		if runErr != nil && errors.Is(runErr, ptbsim.ErrDraining) {
			// Shutdown interrupted the job before it ran; leave it
			// journaled so the next boot replays it.
			return
		}
		s.jr.Done(job.Key())
	}()
}

// ReplayJournal resubmits the pending records a recovering journal
// returned from OpenJournal: each record's config is decoded and
// submitted at its original priority, detached from any request (results
// land in the cache; completions clear the journal). It reports how many
// records were resubmitted; undecodable records are counted out and
// marked done rather than wedging recovery on every future boot.
func (s *Server) ReplayJournal(ctx context.Context, pending []store.JournalRecord) (int, error) {
	replayed := 0
	for _, rec := range pending {
		var cfg ptbsim.Config
		if err := json.Unmarshal(rec.Config, &cfg); err != nil {
			if s.jr != nil {
				s.jr.Done(rec.ID)
			}
			continue
		}
		job, err := s.exp.Submit(ctx, cfg, rec.Priority)
		if err != nil {
			return replayed, fmt.Errorf("replaying journaled job %s: %w", rec.ID, err)
		}
		s.journalAccept(job, rec.Priority)
		if s.jr != nil && job.Key() != rec.ID {
			// The record was journaled under a different key (an older
			// binary, say); clear it under its own ID once the replayed
			// job resolves so it doesn't haunt every future boot.
			go func(id string, job *ptbsim.Job) {
				if _, err := job.Await(context.Background()); errors.Is(err, ptbsim.ErrDraining) {
					return
				}
				s.jr.Done(id)
			}(rec.ID, job)
		}
		replayed++
	}
	return replayed, nil
}

// errorJSON is the wire form of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// submitError maps engine admission failures onto status codes and
// counts the rejection.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	s.rejected.Add(1)
	switch {
	case errors.Is(err, ptbsim.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ptbsim.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// account records one answered configuration's provenance.
func (s *Server) account(job *ptbsim.Job, err error) {
	s.runs.Add(1)
	switch {
	case err != nil:
		s.failed.Add(1)
	case job.Cached():
		s.cacheHits.Add(1)
	case job.Coalesced():
		s.coalesced.Add(1)
	default:
		s.fresh.Add(1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"uptime_sec": int64(time.Since(s.started).Seconds()),
	})
}

// statsJSON is the /v1/stats wire form.
type statsJSON struct {
	UptimeSec   int64 `json:"uptime_sec"`
	QueueLen    int   `json:"queue_len"`
	QueueCap    int   `json:"queue_cap"`
	Running     int   `json:"running"`
	CacheLen    int   `json:"cache_len"`
	Parallelism int   `json:"parallelism"`

	Runs      int64 `json:"runs"`
	Fresh     int64 `json:"fresh"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`

	StoreDir      string `json:"store_dir,omitempty"`
	StoreRejected int    `json:"store_rejected,omitempty"`
	StoreError    string `json:"store_error,omitempty"`

	JournalPending int    `json:"journal_pending,omitempty"`
	JournalTorn    int    `json:"journal_torn,omitempty"`
	JournalError   string `json:"journal_error,omitempty"`

	Subscribers   int   `json:"telemetry_subscribers"`
	DroppedEvents int64 `json:"telemetry_dropped"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := statsJSON{
		UptimeSec:   int64(time.Since(s.started).Seconds()),
		QueueLen:    s.exp.QueueLen(),
		QueueCap:    s.exp.QueueCap(),
		Running:     s.exp.Running(),
		CacheLen:    s.exp.CacheLen(),
		Parallelism: s.exp.Parallelism(),
		Runs:        s.runs.Load(),
		Fresh:       s.fresh.Load(),
		CacheHits:   s.cacheHits.Load(),
		Coalesced:   s.coalesced.Load(),
		Rejected:    s.rejected.Load(),
		Failed:      s.failed.Load(),
	}
	if s.st != nil {
		st.StoreDir = s.st.Dir()
		st.StoreRejected = len(s.st.Rejected())
		if err := s.st.Err(); err != nil {
			st.StoreError = err.Error()
		}
	}
	if s.jr != nil {
		st.JournalPending = s.jr.Pending()
		st.JournalTorn = s.jr.Torn()
		if err := s.jr.Err(); err != nil {
			st.JournalError = err.Error()
		}
	}
	if s.hub != nil {
		st.Subscribers = s.hub.Subscribers()
		st.DroppedEvents = s.hub.Dropped()
	}
	writeJSON(w, http.StatusOK, st)
}

// runRequest is the POST /v1/runs wire form: the standard Config schema
// under "config", plus queue priority and an optional per-request
// wall-clock budget.
type runRequest struct {
	Config   ptbsim.Config `json:"config"`
	Priority int           `json:"priority,omitempty"`
	// TimeoutMS caps this run's wall-clock time in milliseconds
	// (0 = the server's default). A run that exceeds it fails 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// maxTimeoutMS bounds client-supplied timeout_ms at one hour — anything
// larger (or negative) is a malformed request, not a budget.
const maxTimeoutMS = 3_600_000

// submitOpts validates a request's timeout_ms and folds it into the
// submission options.
func submitOpts(priority int, timeoutMS int64) (ptbsim.SubmitOptions, error) {
	if timeoutMS < 0 || timeoutMS > maxTimeoutMS {
		return ptbsim.SubmitOptions{}, fmt.Errorf(
			"timeout_ms %d out of range [0, %d]", timeoutMS, maxTimeoutMS)
	}
	return ptbsim.SubmitOptions{
		Priority: priority,
		Timeout:  time.Duration(timeoutMS) * time.Millisecond,
	}, nil
}

// runResponse is one answered configuration. Digest is the short
// fragment usable with /v1/results/{sha}; the full self-verifying digest
// rides inside Result.
type runResponse struct {
	Config    ptbsim.Config  `json:"config"`
	Result    *ptbsim.Result `json:"result,omitempty"`
	Digest    string         `json:"digest,omitempty"`
	Cached    bool           `json:"cached"`
	Coalesced bool           `json:"coalesced"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Error     string         `json:"error,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	opts, err := submitOpts(req.Priority, req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	job, err := s.exp.SubmitOpts(r.Context(), req.Config, opts)
	if err != nil {
		s.submitError(w, err)
		return
	}
	s.journalAccept(job, req.Priority)
	res, runErr := job.Await(r.Context())
	s.account(job, runErr)
	resp := runResponse{
		Config: job.Config(), Result: res,
		Cached: job.Cached(), Coalesced: job.Coalesced(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if res != nil {
		resp.Digest = fragmentOf(res)
	}
	if runErr != nil {
		resp.Error = runErr.Error()
		var ce *ptbsim.CanceledError
		if errors.As(runErr, &ce) {
			// Client gone; the run continues detached and warms the cache.
			return
		}
		code := http.StatusInternalServerError
		if errors.Is(runErr, ptbsim.ErrRunDeadline) {
			// The run outlived its wall-clock budget — the 504-class
			// outcome a client with a timeout_ms asked to be told about.
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepRequest is the POST /v1/sweeps wire form, mirroring
// ptbsim.Sweep's cross-product dimensions with parsed names.
type sweepRequest struct {
	Benchmarks  []string  `json:"benchmarks,omitempty"`
	CoreCounts  []int     `json:"core_counts,omitempty"`
	Techniques  []string  `json:"techniques,omitempty"`
	Policies    []string  `json:"policies,omitempty"`
	RelaxFracs  []float64 `json:"relax_fracs,omitempty"`
	BudgetFracs []float64 `json:"budget_fracs,omitempty"`
	Priority    int       `json:"priority,omitempty"`
	// TimeoutMS caps each member run's wall-clock time in milliseconds
	// (0 = the server's default); members that exceed it fail in place.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// sweep converts the wire form through the public parsers.
func (r *sweepRequest) sweep() (ptbsim.Sweep, error) {
	s := ptbsim.Sweep{
		Benchmarks:  r.Benchmarks,
		CoreCounts:  r.CoreCounts,
		RelaxFracs:  r.RelaxFracs,
		BudgetFracs: r.BudgetFracs,
	}
	for _, name := range r.Techniques {
		t, err := ptbsim.ParseTechnique(name)
		if err != nil {
			return ptbsim.Sweep{}, err
		}
		s.Techniques = append(s.Techniques, t)
	}
	for _, name := range r.Policies {
		p, err := ptbsim.ParsePolicy(name)
		if err != nil {
			return ptbsim.Sweep{}, err
		}
		s.Policies = append(s.Policies, p)
	}
	return s, nil
}

// sweepResponse summarizes an answered sweep. Results come back in the
// sweep's deterministic expansion order.
type sweepResponse struct {
	Total     int           `json:"total"`
	Fresh     int           `json:"fresh"`
	Cached    int           `json:"cached"`
	Coalesced int           `json:"coalesced"`
	Failed    int           `json:"failed"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Results   []runResponse `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	sweep, err := req.sweep()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := submitOpts(req.Priority, req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfgs := sweep.Configs()
	start := time.Now()

	// Submit the whole cross-product up front — duplicates dedup without
	// consuming queue slots — then await. If the queue fills partway, the
	// request fails 429 but the accepted prefix keeps running and warms
	// the cache, so a retry makes monotone progress.
	jobs := make([]*ptbsim.Job, 0, len(cfgs))
	for _, cfg := range cfgs {
		job, err := s.exp.SubmitOpts(r.Context(), cfg, opts)
		if err != nil {
			if errors.Is(err, ptbsim.ErrQueueFull) || errors.Is(err, ptbsim.ErrDraining) {
				s.submitError(w, fmt.Errorf("sweep config %d/%d: %w", len(jobs), len(cfgs), err))
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.journalAccept(job, req.Priority)
		jobs = append(jobs, job)
	}

	resp := sweepResponse{Total: len(jobs)}
	for _, job := range jobs {
		res, runErr := job.Await(r.Context())
		s.account(job, runErr)
		rr := runResponse{
			Config: job.Config(), Result: res,
			Cached: job.Cached(), Coalesced: job.Coalesced(),
		}
		if res != nil {
			rr.Digest = fragmentOf(res)
		}
		switch {
		case runErr != nil:
			rr.Error = runErr.Error()
			resp.Failed++
		case job.Cached():
			resp.Cached++
		case job.Coalesced():
			resp.Coalesced++
		default:
			resp.Fresh++
		}
		resp.Results = append(resp.Results, rr)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, errors.New("no persistent store attached"))
		return
	}
	frag := r.PathValue("sha")
	res, ok := s.st.ByDigest(frag)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result with digest %q", frag))
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		Config: ptbsim.Config{
			Benchmark: res.Benchmark, Cores: res.Cores, Technique: res.Technique,
		},
		Result: res, Digest: frag, Cached: true,
	})
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		writeError(w, http.StatusNotFound, errors.New("telemetry disabled (no observer hub)"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, cancel := s.hub.subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			flusher.Flush()
		}
	}
}

// Shutdown drains the experiment (finishing accepted work, flushing the
// write-through store) after the HTTP listener has stopped accepting;
// call it from the process's signal handler with a deadline context.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.exp.Drain(ctx); err != nil {
		return fmt.Errorf("draining experiment: %w", err)
	}
	if s.st != nil {
		if err := s.st.Err(); err != nil {
			return err
		}
	}
	return nil
}
