package core

import "ptbsim/internal/budget"

// PowerPatternDetector implements the paper's indirect spinning detection
// (§III.E.1, Fig. 6): when a core enters a spinning state its per-cycle
// power, after the initial peak of useful computation, "lowers and
// stabilizes to an amount that is usually under the budget". The detector
// tracks an exponential moving average and deviation of each core's
// token-estimated power; a core whose power has been low *and* stable for
// long enough is flagged as (presumably) spinning — no instruction
// inspection, no performance counters, just power patterns.
type PowerPatternDetector struct {
	n    int
	mean []float64
	dev  []float64
	run  []int64 // consecutive qualifying cycles

	// Tunables.
	alpha      float64 // EWMA weight
	lowFrac    float64 // "low" = below lowFrac × local budget
	stableFrac float64 // "stable" = deviation below stableFrac × mean
	minCycles  int64   // cycles the pattern must persist

	flagged []bool
	// transitions counts spin-state entries (for tests/stats).
	transitions int64
}

// Detector defaults: a spinning core's loop body consumes well under half
// its budget share (Fig. 4 measures ~10% of peak) and is extremely regular.
const (
	defaultAlpha      = 0.05
	defaultLowFrac    = 0.55
	defaultStableFrac = 0.30
	defaultMinCycles  = 150
)

// NewPowerPatternDetector creates a detector for n cores.
func NewPowerPatternDetector(n int) *PowerPatternDetector {
	return &PowerPatternDetector{
		n:          n,
		mean:       make([]float64, n),
		dev:        make([]float64, n),
		run:        make([]int64, n),
		alpha:      defaultAlpha,
		lowFrac:    defaultLowFrac,
		stableFrac: defaultStableFrac,
		minCycles:  defaultMinCycles,
		flagged:    make([]bool, n),
	}
}

// Update feeds one cycle of per-core power estimates.
func (d *PowerPatternDetector) Update(st *budget.ChipState) {
	d.UpdateMasked(st, nil)
}

// UpdateMasked feeds one cycle of estimates, skipping cores whose mask
// entry is true. The spin-gating extension masks sleep-gated cycles:
// a frozen core's near-zero power would otherwise keep it flagged as
// spinning forever, even after it acquired the lock.
func (d *PowerPatternDetector) UpdateMasked(st *budget.ChipState, skip []bool) {
	for i := 0; i < d.n; i++ {
		if skip != nil && skip[i] {
			continue
		}
		x := st.EstPJ[i]
		d.mean[i] += d.alpha * (x - d.mean[i])
		ad := x - d.mean[i]
		if ad < 0 {
			ad = -ad
		}
		d.dev[i] += d.alpha * (ad - d.dev[i])

		low := d.mean[i] < d.lowFrac*st.LocalBudgetPJ[i]
		stable := d.dev[i] < d.stableFrac*d.mean[i]
		if low && stable {
			d.run[i]++
		} else {
			d.run[i] = 0
		}
		was := d.flagged[i]
		d.flagged[i] = d.run[i] >= d.minCycles
		if d.flagged[i] && !was {
			d.transitions++
		}
	}
}

// Spinning reports whether the detector currently believes core i is
// spinning.
func (d *PowerPatternDetector) Spinning(i int) bool { return d.flagged[i] }

// SpinEntries returns how many spin-state entries were detected.
func (d *PowerPatternDetector) SpinEntries() int64 { return d.transitions }
