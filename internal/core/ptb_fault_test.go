package core

import (
	"testing"

	"ptbsim/internal/fault"
)

// tokenInjector builds a token fault stream for one test balancer.
func tokenInjector(s fault.Spec) *fault.TokenInjector {
	return fault.NewInjector(s).Token()
}

// TestReportLossStarvesBalancerAndTripsWatchdog drives the balancer with
// drop=1: every core report is lost, so the report view never updates, the
// balancer never sees the chip over budget, and after the stale timeout the
// watchdog falls back to the static per-core share for every core. All of
// it must be exactly countable for a fixed seed.
func TestReportLossStarvesBalancerAndTripsWatchdog(t *testing.T) {
	const cycles = 200
	st := newPTBState(4, 4000, nil)
	rec := &recorder{}
	b := NewBalancer(4, PolicyToAll, rec)
	b.SetFaults(tokenInjector(fault.Spec{Seed: 1, TokenDrop: 1}))

	for cyc := int64(1); cyc <= cycles; cyc++ {
		setEst(st, cyc, 500, 500, 1600, 1600)
		b.Tick(st)
	}

	// Blind balancer: the view stays at zero (under budget), and once stale
	// the fallback share sums exactly to the global budget — never over, so
	// no donation rounds and no grants, ever.
	for i, snap := range rec.extras {
		for c, v := range snap {
			if v != 0 {
				t.Fatalf("cycle %d: blind balancer granted %v pJ to core %d", i+1, v, c)
			}
		}
	}
	donated, granted, discarded, rounds := b.Stats()
	if donated != 0 || granted != 0 || discarded != 0 || rounds != 0 {
		t.Fatalf("blind balancer still balanced: donated=%v granted=%v discarded=%v rounds=%d",
			donated, granted, discarded, rounds)
	}

	lost, dup, retries, reportsLost, stale := b.FaultStats()
	if reportsLost != 4*cycles {
		t.Fatalf("reportsLost = %d, want %d (4 cores x %d cycles, drop=1)", reportsLost, 4*cycles, cycles)
	}
	// lastReport stays 0, so a core is stale once cycle > DefaultStaleTimeout:
	// cycles 65..200 inclusive, for all 4 cores.
	wantStale := int64(4 * (cycles - fault.DefaultStaleTimeout))
	if stale != wantStale {
		t.Fatalf("staleFallbackCycles = %d, want %d", stale, wantStale)
	}
	if lost != 0 || dup != 0 || retries != 0 {
		t.Fatalf("no flights ever launched, yet lost=%v dup=%v retries=%d", lost, dup, retries)
	}
	if !b.Degraded() {
		t.Fatal("watchdog fired but Degraded() = false")
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFlightDropRetryAndLoss uses a moderate drop rate so reports mostly
// get through (flights launch) while delivery attempts are dropped often
// enough that both the bounded-retry path and the written-off-as-lost path
// fire. The run must be byte-reproducible for the fixed seed and keep the
// extended conservation ledger balanced throughout.
func TestFlightDropRetryAndLoss(t *testing.T) {
	run := func() *Balancer {
		st := newPTBState(4, 4000, nil)
		b := NewBalancer(4, PolicyToAll, &recorder{})
		b.SetFaults(tokenInjector(fault.Spec{Seed: 7, TokenDrop: 0.4}))
		for cyc := int64(1); cyc <= 2000; cyc++ {
			setEst(st, cyc, 500, 500, 1600, 1600)
			b.Tick(st)
			if cyc%100 == 0 {
				if err := b.CheckConservation(); err != nil {
					panic(err)
				}
			}
		}
		return b
	}
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("conservation broke mid-run: %v", p)
		}
	}()

	b := run()
	donated, granted, _, _ := b.Stats()
	lost, _, retries, reportsLost, _ := b.FaultStats()
	if donated <= 0 || granted <= 0 {
		t.Fatalf("no balancing happened at drop=0.4: donated=%v granted=%v", donated, granted)
	}
	if retries == 0 {
		t.Fatal("no delivery attempt was ever retransmitted at drop=0.4 over 2000 cycles")
	}
	if lost <= 0 {
		t.Fatal("no batch exhausted its retry bound at drop=0.4 over 2000 cycles")
	}
	if reportsLost == 0 {
		t.Fatal("no core report was lost at drop=0.4")
	}
	if !b.Degraded() {
		t.Fatal("tokens were lost but Degraded() = false")
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	// Same seed, same rates: the whole degradation ledger must reproduce.
	b2 := run()
	l2, d2, r2, rl2, s2 := b2.FaultStats()
	l1, d1, r1, rl1, s1 := b.FaultStats()
	if l1 != l2 || d1 != d2 || r1 != r2 || rl1 != rl2 || s1 != s2 {
		t.Fatalf("fixed seed not deterministic: (%v %v %d %d %d) vs (%v %v %d %d %d)",
			l1, d1, r1, rl1, s1, l2, d2, r2, rl2, s2)
	}
	don2, gr2, _, _ := b2.Stats()
	if donated != don2 || granted != gr2 {
		t.Fatalf("token flow not deterministic: donated %v vs %v, granted %v vs %v",
			donated, don2, granted, gr2)
	}
}

// TestFlightDuplication checks dup=1: every launched batch is received
// twice. The duplicate energy is tracked on the input side of the ledger
// (dupPJ must equal donatedPJ exactly when every batch duplicates), the
// ledger stays balanced, and duplication alone is NOT degradation — nothing
// was lost and no watchdog fired.
func TestFlightDuplication(t *testing.T) {
	st := newPTBState(4, 4000, nil)
	b := NewBalancer(4, PolicyToAll, &recorder{})
	b.SetFaults(tokenInjector(fault.Spec{Seed: 3, TokenDup: 1}))

	for cyc := int64(1); cyc <= 50; cyc++ {
		setEst(st, cyc, 500, 500, 1600, 1600)
		b.Tick(st)
	}

	donated, granted, _, _ := b.Stats()
	_, dup, _, _, _ := b.FaultStats()
	if donated <= 0 {
		t.Fatal("no donations at dup=1")
	}
	if dup != donated {
		t.Fatalf("dup=1 must duplicate every batch: dupPJ=%v donatedPJ=%v", dup, donated)
	}
	if granted <= 0 {
		t.Fatal("duplicated batches landed no grants")
	}
	if b.Degraded() {
		t.Fatal("duplication alone must not set Degraded: nothing was lost")
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFlightDelayPostponesGrants checks delay=1 with the default extra
// delay: donations launched at cycle 1 with transfer latency 3 normally
// land at cycle 4; delayed batches must land exactly DefaultTokenDelayCycles
// later, and not a cycle earlier.
func TestFlightDelayPostponesGrants(t *testing.T) {
	st := newPTBState(4, 4000, nil)
	rec := &recorder{}
	b := NewBalancer(4, PolicyToAll, rec)
	b.SetFaults(tokenInjector(fault.Spec{Seed: 2, TokenDelay: 1}))

	firstGrant := int64(4 + fault.DefaultTokenDelayCycles) // 20
	for cyc := int64(1); cyc <= firstGrant+5; cyc++ {
		setEst(st, cyc, 500, 500, 1600, 1600)
		b.Tick(st)
	}
	for i, snap := range rec.extras {
		cyc := int64(i + 1)
		got := snap[2] > 0 || snap[3] > 0
		if got && cyc < firstGrant {
			t.Fatalf("delayed grant landed at cycle %d, earliest legal is %d", cyc, firstGrant)
		}
		if cyc == firstGrant && !got {
			t.Fatalf("no grant at cycle %d despite deterministic delay", firstGrant)
		}
	}
	if _, _, _, _, stale := b.FaultStats(); stale != 0 {
		t.Fatalf("delay must not trip the watchdog: staleFallbackCycles=%d", stale)
	}
	if b.Degraded() {
		t.Fatal("delays are absorbed by the protocol and must not set Degraded")
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroRateTokenInjectorIsIdentity runs two balancers over the same
// stimulus — one ideal, one with a zero-rate injector (non-zero seed) — and
// requires bit-identical grants and statistics each cycle: the zero spec is
// the identity, per the package contract.
func TestZeroRateTokenInjectorIsIdentity(t *testing.T) {
	stA := newPTBState(4, 4000, nil)
	stB := newPTBState(4, 4000, nil)
	recA, recB := &recorder{}, &recorder{}
	a := NewBalancer(4, PolicyDynamic, recA)
	b := NewBalancer(4, PolicyDynamic, recB)
	b.SetFaults(tokenInjector(fault.Spec{Seed: 99}))

	for cyc := int64(1); cyc <= 120; cyc++ {
		// Alternate over- and under-budget phases so collect, land and the
		// dynamic policy all exercise.
		ests := []float64{500, 500, 1600, 1600}
		if (cyc/20)%2 == 1 {
			ests = []float64{400, 400, 900, 900}
		}
		setEst(stA, cyc, ests...)
		setEst(stB, cyc, ests...)
		a.Tick(stA)
		b.Tick(stB)
	}

	for i := range recA.extras {
		for c := range recA.extras[i] {
			if recA.extras[i][c] != recB.extras[i][c] {
				t.Fatalf("cycle %d core %d: ideal grant %v != zero-rate grant %v",
					i+1, c, recA.extras[i][c], recB.extras[i][c])
			}
		}
	}
	donA, graA, disA, rndA := a.Stats()
	donB, graB, disB, rndB := b.Stats()
	if donA != donB || graA != graB || disA != disB || rndA != rndB {
		t.Fatalf("zero-rate stats diverged: (%v %v %v %d) vs (%v %v %v %d)",
			donA, graA, disA, rndA, donB, graB, disB, rndB)
	}
	lost, dup, retries, reportsLost, stale := b.FaultStats()
	if lost != 0 || dup != 0 || retries != 0 || reportsLost != 0 || stale != 0 {
		t.Fatalf("zero-rate injector fired: %v %v %d %d %d", lost, dup, retries, reportsLost, stale)
	}
	if b.Degraded() {
		t.Fatal("zero-rate run marked Degraded")
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
