package core

import (
	"strings"
	"testing"

	"ptbsim/internal/budget"
)

// TestCheckConservationThroughBalancing drives a real over-budget balancing
// sequence (collect → flight → land → distribute) and asserts the token
// ledger conserves at every step, including while tokens are in flight.
func TestCheckConservationThroughBalancing(t *testing.T) {
	b := NewBalancer(4, PolicyToAll, &recorder{})
	st := newPTBState(4, 400, nil)
	for cycle := int64(1); cycle <= 20; cycle++ {
		// Core 0 idles far under budget, cores 1-3 run hot: the chip is
		// over budget and core 0's slack goes on the wire every cycle.
		setEst(st, cycle, 10, 150, 150, 150)
		b.Tick(st)
		if err := b.CheckConservation(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	donated, granted, discarded, _ := b.Stats()
	if donated == 0 {
		t.Fatal("scenario never donated; conservation was checked vacuously")
	}
	if got := granted + discarded + b.PendingPJ(); got == 0 {
		t.Fatal("donated tokens vanished")
	}
}

// TestCheckConservationDetectsLeak corrupts the ledger in the ways a real
// accounting bug would and verifies each is reported.
func TestCheckConservationDetectsLeak(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(b *Balancer)
		wantMsg string
	}{
		{"granted-without-donation", func(b *Balancer) {
			b.grantedPJ = 25
		}, "token leak"},
		{"lost-in-flight", func(b *Balancer) {
			b.donatedPJ = 100 // donated but neither granted, discarded nor flying
		}, "token leak"},
		{"negative-ledger", func(b *Balancer) {
			b.donatedPJ = -5
			b.grantedPJ = -5
		}, "negative token ledger"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := NewBalancer(4, PolicyToAll, &recorder{})
			tc.corrupt(b)
			err := b.CheckConservation()
			if err == nil {
				t.Fatal("ledger corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestClusteredCheckConservation verifies the clustered balancer checks
// every group and names the broken one.
func TestClusteredCheckConservation(t *testing.T) {
	c := NewClusteredBalancer(8, 4, PolicyToAll, budget.None{})
	if err := c.CheckConservation(); err != nil {
		t.Fatalf("fresh clusters violate: %v", err)
	}
	c.Groups()[1].grantedPJ = 42
	err := c.CheckConservation()
	if err == nil {
		t.Fatal("cluster ledger corruption went undetected")
	}
	if !strings.Contains(err.Error(), "cluster 1") {
		t.Fatalf("error %q does not name the broken cluster", err)
	}
}
