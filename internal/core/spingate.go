package core

import "ptbsim/internal/budget"

// SpinGate is the paper's stated future-work extension (§IV.C): "higher
// energy savings could be achieved if we use PTB as a spinlock detector and
// we disable the spinning cores to save power." It layers on the balancer:
// a core whose power pattern has been flagged as spinning by the
// PowerPatternDetector is sleep-gated (clock stopped, leakage power-gated)
// on a duty cycle, polling briefly each period so a lock release or a
// barrier flag is observed within a bounded latency.
//
// Two details make this safe:
//
//   - Wake-up is bounded: the core runs gateOpen of every gatePeriod
//     cycles, so the spin loop re-executes at least once per period.
//   - The detector is masked during sleep cycles: a frozen core's
//     near-zero power looks exactly like spinning, so unmasked updates
//     would keep a core flagged forever even after it acquired its lock.
//     With the mask, the open-window samples alone decide — a core doing
//     useful work in its window destabilizes the pattern and is released
//     within about one period.
type SpinGate struct {
	bal *Balancer

	// gatePeriod/gateOpen control the duty cycle: the core sleeps except
	// for gateOpen cycles out of every gatePeriod.
	gatePeriod int64
	gateOpen   int64

	sleeping    []bool
	gatedCycles int64
}

// Spin-gate duty cycle defaults: poll 8 of every 64 cycles while flagged.
const (
	defaultGatePeriod = 64
	defaultGateOpen   = 8
)

// NewSpinGate wraps a balancer with spin gating.
func NewSpinGate(bal *Balancer) *SpinGate {
	g := &SpinGate{
		bal:        bal,
		gatePeriod: defaultGatePeriod,
		gateOpen:   defaultGateOpen,
		sleeping:   make([]bool, bal.n),
	}
	bal.SetDetectorMask(g.sleeping)
	return g
}

// Name identifies the technique.
func (g *SpinGate) Name() string { return g.bal.Name() + "+spingate" }

// Balancer exposes the wrapped PTB mechanism.
func (g *SpinGate) Balancer() *Balancer { return g.bal }

// GatedCycles returns how many core-cycles were sleep-gated.
func (g *SpinGate) GatedCycles() int64 { return g.gatedCycles }

// Tick runs PTB, then sleep-gates the cores the power-pattern detector
// currently flags as spinning (outside their polling window).
func (g *SpinGate) Tick(st *budget.ChipState) {
	// Decide sleep for this cycle before the balancer runs so the detector
	// mask reflects it.
	det := g.bal.Detector()
	phase := st.Cycle % g.gatePeriod
	for i, c := range st.Cores {
		sleep := det.Spinning(i) && phase >= g.gateOpen
		g.sleeping[i] = sleep
		c.Knobs().SleepGate = sleep
		if sleep {
			g.gatedCycles++
		}
	}
	g.bal.Tick(st)
	// The inner controller may have rewritten the knobs; reassert the
	// sleep decision (a flagged core is far under budget, so the ladder
	// left it at LevelNone anyway).
	for i, c := range st.Cores {
		if g.sleeping[i] {
			c.Knobs().SleepGate = true
		}
	}
}
