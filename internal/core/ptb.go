// Package core implements Power Token Balancing (PTB), the paper's primary
// contribution (§III.E): a centralized load balancer that, every cycle,
// collects spare power tokens from cores running under their local power
// budget and grants them to cores over budget, so the chip matches a global
// power budget without slowing down critical threads.
//
// Key properties reproduced from the paper:
//
//   - Tokens are a currency, not a loan: cores send *counts* of spare
//     tokens over dedicated 4-bit-per-direction wires; nothing is repaid.
//   - Balancing is per cycle; spare tokens are never stored across cycles.
//   - Transfer latency depends on core count (Xilinx ISE estimates):
//     4 cores → 1+1+1 cycles, 8 → 2+1+2, 16 → 4+2+4; a pessimistic
//     10-cycle option exists and, per the paper, PTB still works.
//   - A donating core tightens its own budget by what it donates each
//     cycle, so in steady state the chip-wide allowance never exceeds the
//     global budget.
//   - Distribution policies: ToAll (split among all over-budget cores),
//     ToOne (all to the neediest core), and the §IV.B dynamic selector
//     (lock spinning → ToOne, barrier spinning → ToAll).
//   - The balancer's wires and logic cost ~1% of chip power, charged to the
//     power model.
//
// PTB knows nothing about locks, barriers or mispredictions — it only sees
// power unbalance. Spinning detection falls out of the token stream for
// free; the PowerPatternDetector below implements the paper's observation
// (Fig. 6) that a spinning core's power settles to a low, stable level.
package core

import (
	"fmt"

	"ptbsim/internal/budget"
	"ptbsim/internal/fault"
	"ptbsim/internal/invariant"
	"ptbsim/internal/power"
)

// Policy selects how the balancer distributes spare tokens (§III.E.1).
type Policy int

const (
	// PolicyToAll splits spare tokens equally among all cores over their
	// local budget. Best for barrier-bound applications.
	PolicyToAll Policy = iota
	// PolicyToOne gives all spare tokens to the most power-hungry core.
	// Best for lock-bound applications (priority to the critical section).
	PolicyToOne
	// PolicyDynamic switches between the two based on what kind of
	// spinning is happening (§IV.B).
	PolicyDynamic
)

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p {
	case PolicyToAll:
		return "ToAll"
	case PolicyToOne:
		return "ToOne"
	case PolicyDynamic:
		return "Dynamic"
	}
	return "Policy?"
}

// Latency is the send/process/return cycle counts of one balancing round.
type Latency struct {
	Send, Process, Return int64
}

// Total returns the end-to-end token transfer latency.
func (l Latency) Total() int64 { return l.Send + l.Process + l.Return }

// LatencyFor returns the paper's Xilinx-derived latencies by core count.
// The paper's synthesis table stops at 16 cores; the 64- and 256-core rows
// extrapolate by mesh diameter (send/return wires grow with the chip edge,
// the balancer's adder tree by log of the core count), enabling the
// post-paper big-chip configurations the partition layer unlocks.
func LatencyFor(nCores int) Latency {
	switch {
	case nCores <= 4:
		return Latency{1, 1, 1}
	case nCores <= 8:
		return Latency{2, 1, 2}
	case nCores <= 16:
		return Latency{4, 2, 4}
	case nCores <= 64:
		return Latency{6, 3, 6}
	default:
		return Latency{8, 4, 8}
	}
}

// PessimisticLatency is the 10-cycle worst case the paper also evaluates.
func PessimisticLatency() Latency { return Latency{4, 2, 4} }

// defaultWireBits is the width of the paper's token wires ("4 wires for
// sending and 4 wires for receiving the number of tokens per core");
// amounts are encoded as multiples of localBudget/(2^bits − 1).
const defaultWireBits = 4

// flight is one balancing round in transit.
type flight struct {
	arriveAt int64
	total    float64
	// attempts counts retransmissions after injected drops (fault mode).
	attempts int
}

// Balancer is the PTB load-balancer wrapped around an inner budget
// controller (the 2-level technique in the paper's PTB+2level results).
type Balancer struct {
	n      int
	policy Policy
	lat    Latency
	inner  budget.Controller
	// wireQuanta is the maximum encodable token count per wire transfer.
	wireQuanta int

	flights []flight
	// needy is the scratch list distribute rebuilds each round, kept across
	// cycles so the per-cycle balancing path allocates nothing.
	needy []int

	detector *PowerPatternDetector
	// detectorMask, when set, suppresses detector updates for masked
	// cores (used by the spin-gating extension for sleep cycles).
	detectorMask []bool

	// Stats.
	donatedPJ   float64
	grantedPJ   float64
	discardedPJ float64
	rounds      int64
	toOneRounds int64
	toAllRounds int64

	// Fault mode (nil faults = the paper's ideal hardware). When an injector
	// is wired, the balancer no longer reads ground-truth EstPJ directly: it
	// keeps a *report view* — the last token count each core successfully
	// delivered — plus a stale-token watchdog and a bounded retransmit path
	// for dropped batches, and two extra ledger terms (lost, duplicated) so
	// token conservation stays checkable under injection.
	faults       *fault.TokenInjector
	estView      []float64 // last successfully reported estimate per core
	lastReport   []int64   // cycle of each core's last delivered report
	staleTimeout int64

	lostPJ              float64 // batches dropped past the retry bound
	dupPJ               float64 // extra energy injected by duplicated batches
	retries             int64   // retransmission attempts
	reportsLost         int64   // core→balancer report messages lost
	staleFallbackCycles int64   // core-cycles the watchdog ran on fallback
}

// NewBalancer creates the PTB mechanism for n cores with the standard
// latency for that core count.
func NewBalancer(n int, policy Policy, inner budget.Controller) *Balancer {
	return NewBalancerLatency(n, policy, inner, LatencyFor(n))
}

// NewBalancerLatency allows overriding the transfer latency (for the
// pessimistic 10-cycle experiment).
func NewBalancerLatency(n int, policy Policy, inner budget.Controller, lat Latency) *Balancer {
	return &Balancer{
		n:          n,
		policy:     policy,
		lat:        lat,
		inner:      inner,
		wireQuanta: (1 << defaultWireBits) - 1,
		detector:   NewPowerPatternDetector(n),
	}
}

// SetWireBits overrides the token-wire width (ablation knob; the paper
// uses 4 bits per direction).
func (b *Balancer) SetWireBits(bits int) {
	if bits < 1 {
		bits = 1
	}
	if bits > 16 {
		bits = 16
	}
	b.wireQuanta = (1 << bits) - 1
}

// Name identifies the technique.
func (b *Balancer) Name() string { return "ptb+" + b.inner.Name() }

// Inner exposes the wrapped budget controller (for fault wiring through the
// controller stack).
func (b *Balancer) Inner() budget.Controller { return b.inner }

// SetFaults wires a token-exchange fault stream into the balancer and
// activates the graceful-degradation machinery (report view, stale-token
// watchdog, bounded retransmit). With all rates zero the faulted paths are
// bit-identical to the ideal ones — the view always equals the ground truth
// and no retransmit ever happens.
func (b *Balancer) SetFaults(inj *fault.TokenInjector) {
	if inj == nil {
		return
	}
	b.faults = inj
	b.staleTimeout = inj.StaleTimeout()
	b.estView = make([]float64, b.n)
	b.lastReport = make([]int64, b.n)
}

// Policy returns the configured distribution policy.
func (b *Balancer) Policy() Policy { return b.policy }

// Detector exposes the power-pattern spin detector fed by the balancer.
func (b *Balancer) Detector() *PowerPatternDetector { return b.detector }

// SetDetectorMask suppresses detector updates for cores whose entry is
// true (the spin-gating extension masks sleep cycles).
func (b *Balancer) SetDetectorMask(mask []bool) { b.detectorMask = mask }

// Stats returns (donated, granted, discarded) token energy in pJ and the
// number of balancing rounds.
func (b *Balancer) Stats() (donated, granted, discarded float64, rounds int64) {
	return b.donatedPJ, b.grantedPJ, b.discardedPJ, b.rounds
}

// PolicyRounds returns how many landing rounds used ToOne and ToAll.
func (b *Balancer) PolicyRounds() (toOne, toAll int64) {
	return b.toOneRounds, b.toAllRounds
}

// FaultStats returns the balancer's degradation ledger: token energy lost
// past the retry bound, extra energy from duplicated batches, retransmission
// attempts, lost core reports, and core-cycles spent on the watchdog's
// static-share fallback. All zero without an injector.
func (b *Balancer) FaultStats() (lostPJ, dupPJ float64, retries, reportsLost, staleCycles int64) {
	return b.lostPJ, b.dupPJ, b.retries, b.reportsLost, b.staleFallbackCycles
}

// Degraded reports whether the balancer ever left ideal operation: a token
// batch was lost for good, or the stale-token watchdog had to fall back to
// a core's static share. Retries and delays alone are not degradation — the
// protocol absorbed those.
func (b *Balancer) Degraded() bool {
	return b.lostPJ > 0 || b.staleFallbackCycles > 0
}

// PendingPJ returns the token energy currently in flight toward the
// balancer (donated but not yet landed as grants or discards).
func (b *Balancer) PendingPJ() float64 {
	var s float64
	for _, f := range b.flights {
		s += f.total
	}
	return s
}

// CheckConservation verifies power-token conservation across balancing:
// tokens are a currency, so every picojoule ever donated must have been
// granted to a needy core, discarded (no taker when the batch landed), or
// still be in flight. §III.E's "a donating core sets a more restrictive
// power budget" only sums to the global budget if this ledger balances;
// a leak here would silently break the paper's AoPB accounting.
// Under fault injection the ledger gains two terms — duplicated batches add
// energy on the input side, lost batches account for it on the output side —
// and the identity becomes donated + duplicated = granted + discarded +
// in-flight + lost. Faults are modeled, not corrupting: injection must never
// unbalance this equation.
func (b *Balancer) CheckConservation() error {
	in := b.donatedPJ + b.dupPJ
	out := b.grantedPJ + b.discardedPJ + b.PendingPJ() + b.lostPJ
	if !invariant.CloseTo(in, out) {
		return fmt.Errorf("core: token leak: donated %.6f + duplicated %.6f pJ != granted %.6f + discarded %.6f + in-flight %.6f + lost %.6f pJ",
			b.donatedPJ, b.dupPJ, b.grantedPJ, b.discardedPJ, b.PendingPJ(), b.lostPJ)
	}
	if b.donatedPJ < 0 || b.grantedPJ < 0 || b.discardedPJ < 0 || b.lostPJ < 0 || b.dupPJ < 0 {
		return fmt.Errorf("core: negative token ledger: donated %.6f granted %.6f discarded %.6f lost %.6f duplicated %.6f",
			b.donatedPJ, b.grantedPJ, b.discardedPJ, b.lostPJ, b.dupPJ)
	}
	return nil
}

// Tick runs one balancing cycle: land arriving token batches as grants,
// collect new donations if the chip is over budget, then run the inner
// technique against the adjusted local budgets.
func (b *Balancer) Tick(st *budget.ChipState) {
	b.BalanceOnly(st)
	b.inner.Tick(st)
}

// BalanceOnly performs the token-balancing half of a cycle without running
// the inner controller — used by the clustered configuration, where each
// cluster balances independently and a single chip-wide inner technique
// runs afterwards.
func (b *Balancer) BalanceOnly(st *budget.ChipState) {
	// PTB hardware overhead: per-core wire drivers plus the balancer logic
	// (~1% of chip power, measured with XPower in the paper).
	for i := 0; i < b.n; i++ {
		st.Meter.Add(st.Cores[i].ID(), power.EvPTBWire, 1)
	}
	st.Meter.Add(st.Cores[0].ID(), power.EvPTBLogic, 1)

	b.detector.UpdateMasked(st, b.detectorMask)

	// Fault mode: refresh the report view. Each core sends its current token
	// count toward the balancer; a lost report leaves the previous view (and
	// its timestamp) in place, and cores whose last delivered report is older
	// than the watchdog timeout are counted as running on the static-share
	// fallback this cycle.
	if b.faults != nil {
		for i := 0; i < b.n; i++ {
			if b.faults.ReportLost() {
				b.reportsLost++
			} else {
				b.estView[i] = st.EstPJ[i]
				b.lastReport[i] = st.Cycle
			}
			if st.Cycle-b.lastReport[i] > b.staleTimeout {
				b.staleFallbackCycles++
			}
		}
	}

	// Donor restrictions are per cycle: clear last cycle's ledger before
	// landing grants so neediness is judged against this cycle's state.
	for i := 0; i < b.n; i++ {
		st.DonatedPJ[i] = 0
	}
	b.land(st)
	b.collect(st)
}

// est returns the balancer's belief about core i's per-cycle energy: the
// ground truth on ideal hardware, the report view under fault injection, or
// — when the view is older than the watchdog timeout — the core's static
// share, which makes a silent core neither donor nor needy (graceful
// degradation toward the paper's no-PTB baseline for that core).
func (b *Balancer) est(st *budget.ChipState, i int) float64 {
	if b.faults == nil {
		return st.EstPJ[i]
	}
	if st.Cycle-b.lastReport[i] > b.staleTimeout {
		return st.LocalBudgetPJ[i]
	}
	return b.estView[i]
}

// chipOver decides whether balancing should collect this cycle. The real
// balancer hardware only sees the reports, so in fault mode the decision
// sums the view rather than the ground-truth ChipEstPJ. The summation order
// matches ChipState.Refresh, so with a zero-rate injector the sum is
// bit-identical to ChipEstPJ.
func (b *Balancer) chipOver(st *budget.ChipState) bool {
	if b.faults == nil {
		return st.ChipOver()
	}
	sum := 0.0
	for i := 0; i < b.n; i++ {
		sum += b.est(st, i)
	}
	return sum > st.GlobalBudgetPJ
}

// land applies token batches whose transfer latency has elapsed. On ideal
// hardware flights arrive strictly in launch order (constant latency), so
// the FIFO pop suffices; under fault injection delays and retransmit
// backoffs reorder arrivals, so the whole queue is scanned. A batch whose
// delivery attempt is dropped is retransmitted after an exponential backoff
// until the retry bound, then written off as lost.
func (b *Balancer) land(st *budget.ChipState) {
	if b.faults == nil {
		n := 0
		for n < len(b.flights) && b.flights[n].arriveAt <= st.Cycle {
			b.distribute(st, b.flights[n].total)
			n++
		}
		if n > 0 {
			// Compact in place instead of reslicing so the backing array is
			// reused forever (collect appends after land each cycle).
			rest := copy(b.flights, b.flights[n:])
			b.flights = b.flights[:rest]
		}
		return
	}
	kept := b.flights[:0]
	for _, f := range b.flights {
		if f.arriveAt > st.Cycle {
			kept = append(kept, f)
			continue
		}
		if b.faults.FlightDropped() {
			if f.attempts >= b.faults.MaxRetries() {
				b.lostPJ += f.total
				continue
			}
			f.attempts++
			b.retries++
			f.arriveAt = st.Cycle + b.faults.Backoff(f.attempts) + b.lat.Total()
			kept = append(kept, f)
			continue
		}
		b.distribute(st, f.total)
	}
	b.flights = kept
}

// distribute grants a landed token batch to the cores currently over their
// local budget, per the active policy. Undistributed remainder is discarded
// — tokens are never stored across cycles.
func (b *Balancer) distribute(st *budget.ChipState, total float64) {
	if total <= 0 {
		return
	}
	b.rounds++
	pol := b.policy
	if pol == PolicyDynamic {
		pol = b.dynamicPolicy(st)
	}

	// Per-core grant cap: the receiving wires have the same width.
	capPJ := st.LocalBudgetPJ[0] // equal split: any index
	quantum := capPJ / float64(b.wireQuanta)
	maxGrant := float64(b.wireQuanta) * quantum

	needy := b.needyCores(st)
	if len(needy) == 0 {
		b.discardedPJ += total
		return
	}

	granted := 0.0
	switch pol {
	case PolicyToOne:
		b.toOneRounds++
		// The core that needs tokens the most: largest overshoot.
		best, bestOver := -1, 0.0
		for _, i := range needy {
			over := b.est(st, i) - (st.LocalBudgetPJ[i] - st.DonatedPJ[i])
			if over > bestOver {
				best, bestOver = i, over
			}
		}
		if best >= 0 {
			g := min2(total, maxGrant)
			st.ExtraPJ[best] += g
			granted = g
		}
	default: // PolicyToAll
		b.toAllRounds++
		share := total / float64(len(needy))
		if share > maxGrant {
			share = maxGrant
		}
		for _, i := range needy {
			st.ExtraPJ[i] += share
			granted += share
		}
	}
	b.grantedPJ += granted
	if rest := total - granted; rest > 0 {
		b.discardedPJ += rest
	}
}

// collect gathers spare tokens from under-budget cores when the chip
// exceeds the global budget, and launches them toward the balancer.
//
// Spare tokens are a per-cycle *rate*: every cycle each under-budget core
// offers that cycle's unused allotment. The donor "sets a more restrictive
// power budget" (§III.E.2) equal to its local share minus what it donated
// this cycle — recorded in DonatedPJ for the inner controller — so the
// chip-wide allowance never exceeds the global budget once the pipeline of
// token flights reaches steady state.
func (b *Balancer) collect(st *budget.ChipState) {
	if !b.chipOver(st) {
		return
	}
	quantum := st.LocalBudgetPJ[0] / float64(b.wireQuanta)
	if quantum <= 0 {
		return
	}
	total := 0.0
	for i := 0; i < b.n; i++ {
		avail := st.LocalBudgetPJ[i] - b.est(st, i)
		if avail <= 0 {
			continue
		}
		q := int(avail / quantum)
		if q <= 0 {
			continue
		}
		if q > b.wireQuanta {
			q = b.wireQuanta
		}
		d := float64(q) * quantum
		st.DonatedPJ[i] = d // this cycle's tighter budget for the donor
		total += d
	}
	if total <= 0 {
		return
	}
	b.donatedPJ += total
	fl := flight{
		arriveAt: st.Cycle + b.lat.Total(),
		total:    total,
	}
	if b.faults != nil {
		fl.arriveAt += b.faults.FlightDelay()
		if b.faults.FlightDuplicated() {
			// The balancer receives the batch twice: the duplicate is extra
			// energy entering the system, tracked on the input side of the
			// conservation ledger.
			b.dupPJ += total
			b.flights = append(b.flights, fl)
		}
	}
	b.flights = append(b.flights, fl)
}

// dynamicPolicy implements the §IV.B selector: lock spinning anywhere on
// the chip favors ToOne (boost the critical-section holder); otherwise
// barrier spinning (or no spinning) favors ToAll.
func (b *Balancer) dynamicPolicy(st *budget.ChipState) Policy {
	if st.Sync == nil {
		return PolicyToAll
	}
	lockSpin, _, _ := st.Sync.SpinBreakdown()
	if lockSpin > 0 {
		return PolicyToOne
	}
	return PolicyToAll
}

// needyCores lists the cores above their donation-adjusted local budget, as
// seen through the balancer's report view. A watchdog-stale core reads as
// exactly at budget, and a stale core cannot have donated this cycle, so it
// is never needy.
func (b *Balancer) needyCores(st *budget.ChipState) []int {
	out := b.needy[:0]
	for i := 0; i < st.NCores; i++ {
		if b.est(st, i) > st.LocalBudgetPJ[i]-st.DonatedPJ[i] {
			out = append(out, i)
		}
	}
	b.needy = out
	return out
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
