package core

import (
	"ptbsim/internal/budget"
	"ptbsim/internal/ckpt"
)

// hashInner covers the budget-package controllers a balancer can wrap
// (the chip-level dispatch for the outer controller lives in sim).
func hashInner(h *ckpt.Hasher, ctl budget.Controller) {
	switch c := ctl.(type) {
	case budget.None:
		c.HashState(h)
	case *budget.DVFSController:
		c.HashState(h)
	case *budget.TwoLevel:
		c.HashState(h)
	case *budget.MaxBIPS:
		c.HashState(h)
	}
}

// HashState folds the balancer's mutable state into h for checkpoint
// digests: the token ledger, in-flight batches, the spin detector, and
// the fault-mode report view. The needy scratch list is excluded (it is
// rebuilt from scratch each round). The field order is append-only.
func (b *Balancer) HashState(h *ckpt.Hasher) {
	h.WriteInt(b.n)
	hashInner(h, b.inner)
	h.WriteInt(len(b.flights))
	for i := range b.flights {
		h.WriteI64(b.flights[i].arriveAt)
		h.WriteF64(b.flights[i].total)
		h.WriteInt(b.flights[i].attempts)
	}
	b.detector.hashState(h)
	for _, m := range b.detectorMask {
		h.WriteBool(m)
	}
	h.WriteF64(b.donatedPJ)
	h.WriteF64(b.grantedPJ)
	h.WriteF64(b.discardedPJ)
	h.WriteI64(b.rounds)
	h.WriteI64(b.toOneRounds)
	h.WriteI64(b.toAllRounds)
	for _, v := range b.estView {
		h.WriteF64(v)
	}
	for _, c := range b.lastReport {
		h.WriteI64(c)
	}
	h.WriteF64(b.lostPJ)
	h.WriteF64(b.dupPJ)
	h.WriteI64(b.retries)
	h.WriteI64(b.reportsLost)
	h.WriteI64(b.staleFallbackCycles)
}

func (d *PowerPatternDetector) hashState(h *ckpt.Hasher) {
	for i := 0; i < d.n; i++ {
		h.WriteF64(d.mean[i])
		h.WriteF64(d.dev[i])
		h.WriteI64(d.run[i])
		h.WriteBool(d.flagged[i])
	}
	h.WriteI64(d.transitions)
}

// HashState folds every per-cluster balancer into h. The lazily built
// views mirror slices of the chip state, which is hashed separately.
func (c *ClusteredBalancer) HashState(h *ckpt.Hasher) {
	h.WriteBool(c.built)
	hashInner(h, c.inner)
	h.WriteInt(len(c.groups))
	for _, g := range c.groups {
		g.HashState(h)
	}
}

// HashState folds the spin gate's sleep schedule into h on top of the
// wrapped balancer.
func (g *SpinGate) HashState(h *ckpt.Hasher) {
	g.bal.HashState(h)
	for _, s := range g.sleeping {
		h.WriteBool(s)
	}
	h.WriteI64(g.gatedCycles)
}
