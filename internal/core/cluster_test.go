package core

import (
	"testing"

	"ptbsim/internal/budget"
)

func TestClusteredBalancerKeepsTokensLocal(t *testing.T) {
	// 8 cores in two clusters of 4 (local budget 1000 each). Cluster 0 has
	// spare (both donors); cluster 1 is entirely over budget. Tokens must
	// NOT cross: cluster 1 receives nothing, cluster 0's needy cores do.
	st := newPTBState(8, 8000, nil)
	rec := &recorder{}
	c := NewClusteredBalancer(8, 4, PolicyToAll, rec)

	for cyc := int64(1); cyc <= 12; cyc++ {
		setEst(st, cyc,
			200, 200, 1900, 1900, // cluster 0 over its group budget: donors + needy
			1400, 1400, 1400, 1400) // cluster 1: all over, no spare
		c.Tick(st)
	}
	final := rec.extras[len(rec.extras)-1]
	if final[2] <= 0 || final[3] <= 0 {
		t.Fatalf("cluster 0's needy cores got nothing: %v", final)
	}
	for i := 4; i < 8; i++ {
		if final[i] != 0 {
			t.Fatalf("tokens crossed clusters: %v", final)
		}
	}
}

func TestClusteredBalancerUsesShortLatency(t *testing.T) {
	c := NewClusteredBalancer(16, 4, PolicyToAll, budget.None{})
	if len(c.Groups()) != 4 {
		t.Fatalf("%d groups for 16 cores / 4", len(c.Groups()))
	}
	for _, g := range c.Groups() {
		if g.lat.Total() != LatencyFor(4).Total() {
			t.Fatalf("cluster latency %d, want the 4-core latency %d",
				g.lat.Total(), LatencyFor(4).Total())
		}
	}
}

func TestClusteredBalancerUnevenGroups(t *testing.T) {
	c := NewClusteredBalancer(10, 4, PolicyToOne, budget.None{})
	if len(c.Groups()) != 3 {
		t.Fatalf("%d groups for 10 cores / 4", len(c.Groups()))
	}
	if c.Groups()[2].n != 2 {
		t.Fatalf("trailing group has %d cores, want 2", c.Groups()[2].n)
	}
	// Run it to make sure the uneven view works.
	st := newPTBState(10, 10000, nil)
	for cyc := int64(1); cyc <= 8; cyc++ {
		ests := make([]float64, 10)
		for i := range ests {
			ests[i] = 1200
		}
		ests[0] = 100
		setEst(st, cyc, ests...)
		c.Tick(st)
	}
}

func TestClusteredName(t *testing.T) {
	c := NewClusteredBalancer(32, 8, PolicyDynamic, budget.NewTwoLevel(32, 0))
	if c.Name() != "ptb-clustered+2level" {
		t.Fatalf("name %q", c.Name())
	}
}
