package core

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/budget"
)

// TestPropertyTokenConservation drives the balancer with random power
// vectors and checks the paper's conservation invariants on every cycle:
//
//  1. grants are never created from nothing: at every cycle the cumulative
//     granted+discarded tokens never exceed the cumulative donated tokens
//     (tokens in flight are non-negative);
//  2. a core never donates more than its spare (local − est);
//  3. grants only go to cores over their donation-adjusted local budget;
//  4. the chip allowance only ever exceeds the global budget by tokens
//     that donors already paid for: Σ extra ≤ tokens landed this cycle,
//     which invariant 1 bounds by earlier donations.
func TestPropertyTokenConservation(t *testing.T) {
	f := func(raw []uint16, policyPick uint8) bool {
		const n = 4
		st := newPTBState(n, 4000, nil)
		pol := []Policy{PolicyToAll, PolicyToOne}[int(policyPick)%2]
		b := NewBalancer(n, pol, budget.None{})

		if len(raw) == 0 {
			return true
		}
		prevGranted := 0.0
		for cyc := int64(1); cyc <= 40; cyc++ {
			st.Cycle = cyc
			st.ChipEstPJ = 0
			for i := 0; i < n; i++ {
				v := float64(raw[(int(cyc)*n+i)%len(raw)] % 2500)
				st.EstPJ[i] = v
				st.ChipEstPJ += v
				st.ExtraPJ[i] = 0
			}
			b.Tick(st)
			donated, granted, discarded, _ := b.Stats()

			// Invariant 1: in-flight tokens are non-negative.
			if granted+discarded > donated+1e-6 {
				return false
			}
			// Invariant 2: donation bounded by spare (only donors checked;
			// non-donors trivially have DonatedPJ == 0).
			for i := 0; i < n; i++ {
				if st.DonatedPJ[i] > 0 &&
					st.DonatedPJ[i] > st.LocalBudgetPJ[i]-st.EstPJ[i]+1e-9 {
					return false
				}
			}
			// Invariant 3: grants only to needy cores.
			sumExtra := 0.0
			for i := 0; i < n; i++ {
				sumExtra += st.ExtraPJ[i]
				if st.ExtraPJ[i] > 0 &&
					st.EstPJ[i] <= st.LocalBudgetPJ[i]-st.DonatedPJ[i] {
					return false
				}
			}
			// Invariant 4: this cycle's grants match the balancer's own
			// granted accounting — nothing appears outside the ledger.
			if sumExtra > granted-prevGranted+1e-6 {
				return false
			}
			prevGranted = granted
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDetectorNeverFlagsHotCores: a core whose estimate stays above
// its budget share can never be classified as spinning, whatever the noise.
func TestPropertyDetectorNeverFlagsHotCores(t *testing.T) {
	f := func(noise []uint8) bool {
		if len(noise) == 0 {
			return true
		}
		st := newPTBState(1, 1000, nil)
		d := NewPowerPatternDetector(1)
		for cyc := 0; cyc < 3000; cyc++ {
			// Always at or above the 1000 budget share.
			st.EstPJ[0] = 1000 + float64(noise[cyc%len(noise)])
			d.Update(st)
			if d.Spinning(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
