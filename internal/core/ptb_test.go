package core

import (
	"testing"

	"ptbsim/internal/budget"
	"ptbsim/internal/cpu"
	"ptbsim/internal/isa"
	"ptbsim/internal/power"
	"ptbsim/internal/syncprim"
)

type nullMem struct{}

func (nullMem) Read(core int, addr uint64, done func())      { done() }
func (nullMem) Write(core int, addr uint64, done func())     { done() }
func (nullMem) FetchProbe(core int, addr uint64) bool        { return true }
func (nullMem) FetchMiss(core int, addr uint64, done func()) { done() }

type nullSrc struct{}

func (nullSrc) Next() (isa.Inst, bool) { return isa.Inst{}, false }
func (nullSrc) Resolve(int64)          {}

type nullSync struct{}

func (nullSync) Eval(int, isa.Inst) int64 { return 0 }

// recorder is an inner controller that records the state it saw.
type recorder struct {
	extras [][]float64
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) Tick(st *budget.ChipState) {
	snap := append([]float64(nil), st.ExtraPJ...)
	r.extras = append(r.extras, snap)
}

func newPTBState(n int, globalBudget float64, sync *syncprim.Table) *budget.ChipState {
	m := power.NewMeter(n)
	tm := power.NewTokenModel()
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), m, tm, nullMem{}, nullSync{}, nullSrc{})
	}
	return budget.NewChipState(cores, m, sync, globalBudget)
}

// setEst overrides the estimated power signal for a test cycle.
func setEst(st *budget.ChipState, cycle int64, ests ...float64) {
	st.Cycle = cycle
	st.ChipEstPJ = 0
	for i, e := range ests {
		st.EstPJ[i] = e
		st.ChipEstPJ += e
	}
	for i := range st.ExtraPJ {
		st.ExtraPJ[i] = 0
	}
}

func TestLatencyTable(t *testing.T) {
	if l := LatencyFor(4); l != (Latency{1, 1, 1}) || l.Total() != 3 {
		t.Fatalf("4-core latency %+v", l)
	}
	if l := LatencyFor(8); l != (Latency{2, 1, 2}) || l.Total() != 5 {
		t.Fatalf("8-core latency %+v", l)
	}
	if l := LatencyFor(16); l != (Latency{4, 2, 4}) || l.Total() != 10 {
		t.Fatalf("16-core latency %+v", l)
	}
	if PessimisticLatency().Total() != 10 {
		t.Fatal("pessimistic latency")
	}
}

func TestDonationAndGrantToAll(t *testing.T) {
	// 4 cores, budget 4000 (local 1000). Cores 0,1 at 400 (spare), cores
	// 2,3 at 1600 (over). Chip total 4000... make it over: 0,1 at 500 and
	// 2,3 at 1600 → chip 4200 > 4000.
	st := newPTBState(4, 4000, nil)
	rec := &recorder{}
	b := NewBalancer(4, PolicyToAll, rec) // 4-core latency: total 3
	for cyc := int64(1); cyc <= 10; cyc++ {
		setEst(st, cyc, 500, 500, 1600, 1600)
		b.Tick(st)
	}
	// During flight, donors' budgets are tightened.
	// After latency 3, grants must appear for cores 2 and 3, equally.
	final := rec.extras[len(rec.extras)-1]
	if final[2] <= 0 || final[3] <= 0 {
		t.Fatalf("over-budget cores received no grants: %v", final)
	}
	if final[2] != final[3] {
		t.Fatalf("ToAll split unequal: %v", final)
	}
	if final[0] != 0 || final[1] != 0 {
		t.Fatalf("under-budget cores received grants: %v", final)
	}
	donated, granted, _, rounds := b.Stats()
	if donated <= 0 || granted <= 0 || rounds == 0 {
		t.Fatalf("stats: donated=%v granted=%v rounds=%d", donated, granted, rounds)
	}
}

func TestGrantLatencyRespected(t *testing.T) {
	st := newPTBState(4, 4000, nil)
	rec := &recorder{}
	b := NewBalancer(4, PolicyToAll, rec)
	for cyc := int64(1); cyc <= 3; cyc++ {
		setEst(st, cyc, 500, 500, 1600, 1600)
		b.Tick(st)
	}
	// Donations start at cycle 1, latency 3 → first grants at cycle 4, so
	// through cycle 3 no extra tokens may appear.
	for i, snap := range rec.extras {
		for c, v := range snap {
			if v != 0 {
				t.Fatalf("grant appeared at tick %d core %d before latency elapsed", i+1, c)
			}
		}
	}
}

func TestToOneGivesAllToNeediest(t *testing.T) {
	st := newPTBState(4, 4000, nil)
	rec := &recorder{}
	b := NewBalancer(4, PolicyToOne, rec)
	for cyc := int64(1); cyc <= 10; cyc++ {
		setEst(st, cyc, 300, 300, 1200, 2400) // core 3 needs the most
		b.Tick(st)
	}
	final := rec.extras[len(rec.extras)-1]
	if final[3] <= 0 {
		t.Fatalf("neediest core got nothing: %v", final)
	}
	if final[0] != 0 || final[1] != 0 || final[2] != 0 {
		t.Fatalf("ToOne leaked grants to other cores: %v", final)
	}
}

func TestDonorBudgetTightened(t *testing.T) {
	st := newPTBState(4, 4000, nil)
	b := NewBalancer(4, PolicyToAll, &recorder{})
	setEst(st, 1, 100, 100, 1950, 1950)
	b.Tick(st)
	if st.DonatedPJ[0] <= 0 || st.DonatedPJ[1] <= 0 {
		t.Fatalf("donors not tightened: %v", st.DonatedPJ)
	}
	// The donation reflects this cycle's spare and never exceeds it.
	if st.DonatedPJ[0] > st.LocalBudgetPJ[0]-st.EstPJ[0]+1e-9 {
		t.Fatalf("donated %v beyond spare %v", st.DonatedPJ[0], st.LocalBudgetPJ[0]-st.EstPJ[0])
	}
	// Once a donor has no spare, its tighter budget is lifted immediately.
	setEst(st, 2, 2000, 2000, 2000, 2000)
	b.Tick(st)
	if st.DonatedPJ[0] != 0 || st.DonatedPJ[1] != 0 {
		t.Fatalf("donation hold not lifted: %v", st.DonatedPJ)
	}
	// Steady-state conservation: in any cycle the chip-wide allowance
	// (sum of effective local budgets plus grants still in flight)
	// matches the global budget.
	setEst(st, 3, 100, 100, 1950, 1950)
	b.Tick(st)
	var allowance float64
	for i := 0; i < 4; i++ {
		allowance += st.EffectiveLocal(i)
	}
	if allowance > st.GlobalBudgetPJ+1e-9 {
		t.Fatalf("chip allowance %v exceeds global budget %v", allowance, st.GlobalBudgetPJ)
	}
}

func TestNoDonationWhenChipUnderBudget(t *testing.T) {
	st := newPTBState(4, 100000, nil)
	b := NewBalancer(4, PolicyToAll, &recorder{})
	setEst(st, 1, 500, 500, 1600, 1600) // chip well under global
	b.Tick(st)
	donated, _, _, _ := b.Stats()
	if donated != 0 {
		t.Fatalf("donated %v while chip under global budget", donated)
	}
}

func TestTokensNotStoredAcrossCycles(t *testing.T) {
	st := newPTBState(4, 4000, nil)
	rec := &recorder{}
	b := NewBalancer(4, PolicyToAll, rec)
	// One donation round, then everyone under budget when it lands.
	setEst(st, 1, 500, 500, 1600, 1600)
	b.Tick(st)
	for cyc := int64(2); cyc <= 10; cyc++ {
		setEst(st, cyc, 100, 100, 100, 100)
		b.Tick(st)
	}
	_, granted, discarded, _ := b.Stats()
	if granted != 0 {
		t.Fatalf("granted %v with no needy cores", granted)
	}
	if discarded <= 0 {
		t.Fatal("landed tokens with no takers must be discarded")
	}
}

func TestDynamicPolicySelector(t *testing.T) {
	sync := syncprim.NewTable(4, 1, 1)
	st := newPTBState(4, 4000, sync)
	b := NewBalancer(4, PolicyDynamic, &recorder{})

	// Barrier spinning → ToAll.
	sync.SetState(1, isa.SyncBarrier)
	if got := b.dynamicPolicy(st); got != PolicyToAll {
		t.Fatalf("barrier spin chose %v", got)
	}
	// Lock spinning anywhere → ToOne.
	sync.SetState(2, isa.SyncLockAcq)
	if got := b.dynamicPolicy(st); got != PolicyToOne {
		t.Fatalf("lock spin chose %v", got)
	}
	// No spinning → ToAll.
	sync.SetState(1, isa.SyncBusy)
	sync.SetState(2, isa.SyncBusy)
	if got := b.dynamicPolicy(st); got != PolicyToAll {
		t.Fatalf("no spin chose %v", got)
	}
}

func TestWireQuantization(t *testing.T) {
	st := newPTBState(2, 2000, nil) // local 1000, quantum ~66.7
	b := NewBalancer(2, PolicyToAll, &recorder{})
	// Core 0 has 100 spare (1 quantum = 66.7); core 1 hugely over.
	setEst(st, 1, 900, 5000)
	b.Tick(st)
	donated, _, _, _ := b.Stats()
	quantum := 1000.0 / 15
	if donated != quantum {
		t.Fatalf("donated %v, want exactly one wire quantum %v", donated, quantum)
	}
}

func TestPTBEnergyCharged(t *testing.T) {
	st := newPTBState(2, 2000, nil)
	b := NewBalancer(2, PolicyToAll, &recorder{})
	setEst(st, 1, 100, 100)
	b.Tick(st)
	if st.Meter.Count(0, power.EvPTBWire) == 0 || st.Meter.Count(0, power.EvPTBLogic) == 0 {
		t.Fatal("PTB hardware energy not charged")
	}
}

func TestBalancerName(t *testing.T) {
	b := NewBalancer(2, PolicyToAll, budget.NewTwoLevel(2, 0))
	if b.Name() != "ptb+2level" {
		t.Fatalf("name = %s", b.Name())
	}
}

func TestSpinDetectorFlagsLowStablePower(t *testing.T) {
	st := newPTBState(2, 2000, nil) // local 1000
	d := NewPowerPatternDetector(2)
	// Core 0 busy (noisy, high); core 1 spinning (low, stable).
	for cyc := int64(0); cyc < 3000; cyc++ {
		noise := float64((cyc % 7)) * 120
		setEst(st, cyc, 900+noise, 200)
		d.Update(st)
	}
	if d.Spinning(0) {
		t.Fatal("busy core flagged as spinning")
	}
	if !d.Spinning(1) {
		t.Fatal("spinning core not flagged")
	}
	if d.SpinEntries() == 0 {
		t.Fatal("no spin entries counted")
	}
}

func TestSpinDetectorRecovers(t *testing.T) {
	st := newPTBState(1, 1000, nil)
	d := NewPowerPatternDetector(1)
	for cyc := int64(0); cyc < 2000; cyc++ {
		setEst(st, cyc, 150)
		d.Update(st)
	}
	if !d.Spinning(0) {
		t.Fatal("precondition: should be flagged")
	}
	for cyc := int64(0); cyc < 2000; cyc++ {
		noise := float64((cyc % 5)) * 200
		setEst(st, cyc, 900+noise)
		d.Update(st)
	}
	if d.Spinning(0) {
		t.Fatal("detector stuck after core resumed useful work")
	}
}
