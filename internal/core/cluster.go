package core

import (
	"fmt"

	"ptbsim/internal/budget"
	"ptbsim/internal/fault"
)

// ClusteredBalancer is the paper's scalability proposal (§III.E.2): "one
// approach to make PTB more scalable (>32 cores) consists of clustering the
// PTB load-balancer into groups of 8 or 16 cores and replicating the
// structure as needed." Each cluster runs its own balancer — with the
// *short* transfer latency of its own size — over its slice of the chip;
// tokens never cross cluster boundaries. The inner power-saving technique
// still runs chip-wide afterwards.
//
// The paper's results show a group of 8–16 cores is enough to balance
// power effectively, so the cross-cluster loss is small.
type ClusteredBalancer struct {
	groupSize int
	groups    []*Balancer
	views     []*budget.ChipState
	inner     budget.Controller
	built     bool
	policy    Policy
}

// NewClusteredBalancer creates per-cluster balancers of groupSize cores
// each (the trailing cluster may be smaller). The views are built lazily on
// the first Tick, when the full ChipState is available.
func NewClusteredBalancer(n, groupSize int, policy Policy, inner budget.Controller) *ClusteredBalancer {
	if groupSize < 2 {
		groupSize = 2
	}
	if groupSize > n {
		groupSize = n
	}
	c := &ClusteredBalancer{groupSize: groupSize, inner: inner, policy: policy}
	for start := 0; start < n; start += groupSize {
		size := groupSize
		if start+size > n {
			size = n - start
		}
		c.groups = append(c.groups, NewBalancerLatency(size, policy, budget.None{}, LatencyFor(size)))
	}
	return c
}

// Name identifies the technique.
func (c *ClusteredBalancer) Name() string {
	return "ptb-clustered+" + c.inner.Name()
}

// Groups returns the per-cluster balancers (stats/tests).
func (c *ClusteredBalancer) Groups() []*Balancer { return c.groups }

// Inner exposes the chip-wide inner controller (for fault wiring through
// the controller stack).
func (c *ClusteredBalancer) Inner() budget.Controller { return c.inner }

// SetFaults wires one shared token fault stream into every cluster. The
// clusters tick in a fixed order each cycle, so sharing the stream keeps
// the decision sequence deterministic.
func (c *ClusteredBalancer) SetFaults(inj *fault.TokenInjector) {
	for _, g := range c.groups {
		g.SetFaults(inj)
	}
}

// FaultStats aggregates the degradation ledger across clusters.
func (c *ClusteredBalancer) FaultStats() (lostPJ, dupPJ float64, retries, reportsLost, staleCycles int64) {
	for _, g := range c.groups {
		l, d, r, rl, sc := g.FaultStats()
		lostPJ += l
		dupPJ += d
		retries += r
		reportsLost += rl
		staleCycles += sc
	}
	return
}

// Degraded reports whether any cluster left ideal operation.
func (c *ClusteredBalancer) Degraded() bool {
	for _, g := range c.groups {
		if g.Degraded() {
			return true
		}
	}
	return false
}

// CheckConservation verifies token conservation independently for every
// cluster (tokens never cross cluster boundaries, so each group must
// balance its own ledger).
func (c *ClusteredBalancer) CheckConservation() error {
	for gi, g := range c.groups {
		if err := g.CheckConservation(); err != nil {
			return fmt.Errorf("cluster %d: %w", gi, err)
		}
	}
	return nil
}

// build creates one ChipState view per cluster, aliasing subslices of the
// chip-wide state so grants and donations write through.
func (c *ClusteredBalancer) build(st *budget.ChipState) {
	n := st.NCores
	for gi := range c.groups {
		start := gi * c.groupSize
		end := start + c.groupSize
		if end > n {
			end = n
		}
		groupBudget := 0.0
		for i := start; i < end; i++ {
			groupBudget += st.LocalBudgetPJ[i]
		}
		c.views = append(c.views, &budget.ChipState{
			NCores:         end - start,
			GlobalBudgetPJ: groupBudget,
			LocalBudgetPJ:  st.LocalBudgetPJ[start:end],
			ExtraPJ:        st.ExtraPJ[start:end],
			DonatedPJ:      st.DonatedPJ[start:end],
			EstPJ:          st.EstPJ[start:end],
			Cores:          st.Cores[start:end],
			Meter:          st.Meter,
			Sync:           st.Sync,
		})
	}
	c.built = true
}

// Tick balances every cluster independently, then runs the chip-wide inner
// technique.
func (c *ClusteredBalancer) Tick(st *budget.ChipState) {
	if !c.built {
		c.build(st)
	}
	for gi, g := range c.groups {
		v := c.views[gi]
		v.Cycle = st.Cycle
		v.ChipEstPJ = 0
		for _, e := range v.EstPJ {
			v.ChipEstPJ += e
		}
		g.BalanceOnly(v)
	}
	c.inner.Tick(st)
}
