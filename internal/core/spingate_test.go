package core

import (
	"testing"

	"ptbsim/internal/budget"
)

func TestSpinGateGatesFlaggedCores(t *testing.T) {
	st := newPTBState(2, 2000, nil) // local 1000
	g := NewSpinGate(NewBalancer(2, PolicyToAll, budget.None{}))

	// Train the detector: core 1 low and stable, core 0 busy.
	for cyc := int64(0); cyc < 2000; cyc++ {
		setEst(st, cyc, 950, 200)
		g.Tick(st)
	}
	if !g.Balancer().Detector().Spinning(1) {
		t.Fatal("precondition: core 1 should be flagged")
	}
	if g.GatedCycles() == 0 {
		t.Fatal("no cycles gated")
	}
	// The duty cycle must leave a polling window open every period.
	slept, open := 0, 0
	for cyc := int64(2048); cyc < 2048+defaultGatePeriod; cyc++ {
		setEst(st, cyc, 950, 200)
		g.Tick(st)
		if st.Cores[1].Knobs().SleepGate {
			slept++
		} else {
			open++
		}
	}
	if slept == 0 || open == 0 {
		t.Fatalf("duty cycle broken: slept=%d open=%d", slept, open)
	}
	if int64(open) > defaultGateOpen+1 {
		t.Fatalf("open window too wide: %d", open)
	}
	// The busy core must never be sleep-gated.
	if st.Cores[0].Knobs().SleepGate {
		t.Fatal("busy core gated")
	}
}

func TestSpinGateName(t *testing.T) {
	g := NewSpinGate(NewBalancer(4, PolicyDynamic, budget.NewTwoLevel(4, 0)))
	if g.Name() != "ptb+2level+spingate" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestSpinGateReleasesWhenBusy(t *testing.T) {
	st := newPTBState(1, 1000, nil)
	g := NewSpinGate(NewBalancer(1, PolicyToAll, budget.None{}))
	for cyc := int64(0); cyc < 2000; cyc++ {
		setEst(st, cyc, 150)
		g.Tick(st)
	}
	if !g.Balancer().Detector().Spinning(0) {
		t.Fatal("precondition: should be flagged")
	}
	// Core resumes useful work: the masked detector sees only open-window
	// samples, which destabilize the pattern and release the gate quickly.
	released := int64(-1)
	for cyc := int64(2000); cyc < 4000; cyc++ {
		noise := float64(cyc%5) * 200
		setEst(st, cyc, 900+noise)
		g.Tick(st)
		if !st.Cores[0].Knobs().SleepGate && !g.Balancer().Detector().Spinning(0) {
			released = cyc
			break
		}
	}
	if released < 0 {
		t.Fatal("gate never released after core resumed useful work")
	}
	if released > 2000+4*defaultGatePeriod {
		t.Fatalf("release took %d cycles, want within a few periods", released-2000)
	}
}

func TestSpinGateDetectorMaskPreventsLivelock(t *testing.T) {
	// Without the mask, a sleeping core's near-zero estimate would keep it
	// flagged forever. Verify the mask suppresses updates: feed sleep-like
	// power only on sleep cycles and busy power in open windows — the core
	// must eventually unflag.
	st := newPTBState(1, 1000, nil)
	g := NewSpinGate(NewBalancer(1, PolicyToAll, budget.None{}))
	for cyc := int64(0); cyc < 1000; cyc++ {
		setEst(st, cyc, 150)
		g.Tick(st)
	}
	unflagged := false
	for cyc := int64(1000); cyc < 3000; cyc++ {
		if st.Cores[0].Knobs().SleepGate {
			setEst(st, cyc, 40) // frozen core
		} else {
			noise := float64(cyc%4) * 250
			setEst(st, cyc, 850+noise) // working hard in its window
		}
		g.Tick(st)
		if !g.Balancer().Detector().Spinning(0) {
			unflagged = true
			break
		}
	}
	if !unflagged {
		t.Fatal("masked detector never released a working core (livelock)")
	}
}
