package eventq

import (
	"testing"
	"testing/quick"
)

func TestFIFOWithinCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.RunUntil(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("events at same cycle ran out of order: %v", got)
		}
	}
}

func TestOrderingAcrossCycles(t *testing.T) {
	var q Queue
	var got []int64
	for _, c := range []int64{9, 3, 7, 1, 5} {
		c := c
		q.At(c, func() { got = append(got, c) })
	}
	q.RunUntil(10)
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunUntilBoundary(t *testing.T) {
	var q Queue
	ran := false
	q.At(10, func() { ran = true })
	q.RunUntil(9)
	if ran {
		t.Fatal("event at cycle 10 ran during RunUntil(9)")
	}
	q.RunUntil(10)
	if !ran {
		t.Fatal("event at cycle 10 did not run during RunUntil(10)")
	}
}

func TestCascadingEvents(t *testing.T) {
	var q Queue
	var trace []string
	q.At(1, func() {
		trace = append(trace, "a")
		q.After(2, func() { trace = append(trace, "b") })
	})
	q.RunUntil(5)
	if len(trace) != 2 || trace[0] != "a" || trace[1] != "b" {
		t.Fatalf("cascade trace %v", trace)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	var q Queue
	q.RunUntil(100)
	ran := false
	q.At(50, func() { ran = true })
	q.RunUntil(100)
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestAfterUsesNow(t *testing.T) {
	var q Queue
	q.RunUntil(10)
	var at int64 = -1
	q.After(5, func() { at = q.Now() })
	q.RunUntil(15)
	if at != 15 {
		t.Fatalf("After(5) from cycle 10 ran at %d, want 15", at)
	}
}

func TestLenEmpty(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.At(1, func() {})
	if q.Empty() || q.Len() != 1 {
		t.Fatal("queue with one event reports empty")
	}
	q.RunUntil(1)
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestPropertyAllEventsRunInOrder(t *testing.T) {
	f := func(cycles []uint8) bool {
		var q Queue
		var got []int64
		for _, c := range cycles {
			c := int64(c)
			q.At(c, func() { got = append(got, c) })
		}
		q.RunUntil(256)
		if len(got) != len(cycles) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNowDuringEventExecution(t *testing.T) {
	var q Queue
	var sawNow int64 = -1
	q.At(7, func() { sawNow = q.Now() })
	q.RunUntil(50)
	if sawNow != 7 {
		t.Fatalf("Now() inside handler = %d, want the event's cycle 7", sawNow)
	}
	if q.Now() != 50 {
		t.Fatalf("Now() after RunUntil = %d, want 50", q.Now())
	}
}

func TestRunUntilNeverRewinds(t *testing.T) {
	var q Queue
	q.RunUntil(100)
	q.RunUntil(50) // must be a no-op
	if q.Now() != 100 {
		t.Fatalf("clock rewound to %d", q.Now())
	}
}
