package eventq

import (
	"container/heap"
	"testing"
	"testing/quick"
)

// refEvent/refHeap re-implement the pre-calendar container/heap queue as the
// ordering oracle: (cycle, scheduling seq) min-heap, past clamped to now.
type refEvent struct {
	cycle int64
	seq   uint64
	fn    func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type refQueue struct {
	h   refHeap
	seq uint64
	now int64
}

func (q *refQueue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	heap.Push(&q.h, &refEvent{cycle: cycle, seq: q.seq, fn: fn})
}

func (q *refQueue) After(delay int64, fn func()) { q.At(q.now+delay, fn) }

func (q *refQueue) RunUntil(cycle int64) {
	if cycle < q.now {
		return
	}
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		e := heap.Pop(&q.h).(*refEvent)
		q.now = e.cycle
		e.fn()
	}
	q.now = cycle
}

func (q *refQueue) Empty() bool { return len(q.h) == 0 }

// schedOp is one step of a generated schedule: delay cycles after the current
// queue time, schedule an event; every few ops, advance the clock.
type schedOp struct {
	Delay   uint16 // scheduling delay; %1500 spans past, near and >wheelSize
	Advance uint8  // clock advance after scheduling (0 = stay)
	Cascade uint8  // the handler reschedules Cascade%3 children at Delay/4
}

// runSchedule feeds ops to a queue through the common At/After/RunUntil
// subset and returns the order event ids executed in.
func runSchedule(ops []schedOp, at func(int64, func()), runUntil func(int64), now func() int64) []int {
	var order []int
	id := 0
	var schedule func(delay int64, cascade int)
	schedule = func(delay int64, cascade int) {
		myID := id
		id++
		at(now()+delay, func() {
			order = append(order, myID)
			for i := 0; i < cascade; i++ {
				schedule(delay/4, 0)
			}
		})
	}
	for _, op := range ops {
		// Negative offsets exercise the past-clamp path.
		delay := int64(op.Delay%1500) - 8
		schedule(delay, int(op.Cascade%3))
		if adv := int64(op.Advance % 64); adv > 0 {
			runUntil(now() + adv)
		}
	}
	// Drain exactly the way sim.go's quiescent-MOESI final check does:
	// fixed 1024-cycle hops until the queue empties.
	end := now()
	for i := 0; i < 64; i++ {
		end += 1024
		runUntil(end)
	}
	return order
}

// TestPropertyCalendarMatchesHeap is the order-equivalence property: for any
// generated schedule — including cascades, past clamps, >wheelSize delays and
// the 1024-cycle drain pattern — the calendar queue executes events in
// exactly the old heap's order (cycle order, FIFO within a cycle).
func TestPropertyCalendarMatchesHeap(t *testing.T) {
	f := func(ops []schedOp) bool {
		var cal Queue
		var ref refQueue
		got := runSchedule(ops, cal.At, cal.RunUntil, cal.Now)
		want := runSchedule(ops, ref.At, ref.RunUntil, func() int64 { return ref.now })
		if !cal.Empty() || !ref.Empty() {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAtArgMatchesAt pins that AtArg interleaves with At in strict
// scheduling order within a cycle.
func TestPropertyAtArgMatchesAt(t *testing.T) {
	var q Queue
	var order []int
	record := func(a any) { order = append(order, a.(int)) }
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			q.AtArg(10, record, i)
		} else {
			i := i
			q.At(10, func() { order = append(order, i) })
		}
	}
	q.RunUntil(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("AtArg/At interleaving broke FIFO: %v", order)
		}
	}
}

// TestNextDue pins the skip-ahead gate's view of the queue.
func TestNextDue(t *testing.T) {
	var q Queue
	if q.NextDue() <= 1<<62 {
		t.Fatalf("empty queue NextDue = %d, want +inf", q.NextDue())
	}
	q.At(40, func() {})
	q.At(7, func() {})
	if q.NextDue() != 7 {
		t.Fatalf("NextDue = %d, want 7", q.NextDue())
	}
	q.RunUntil(7)
	if q.NextDue() != 40 {
		t.Fatalf("NextDue after draining 7 = %d, want 40", q.NextDue())
	}
	q.RunUntil(39)
	if q.NextDue() != 40 {
		t.Fatalf("NextDue must survive empty advances, got %d", q.NextDue())
	}
	q.RunUntil(40)
	if q.NextDue() <= 1<<62 {
		t.Fatalf("drained queue NextDue = %d, want +inf", q.NextDue())
	}
}

// TestFarEventsBeyondWheel exercises bucket sharing across revolutions: a
// near and a far event in the same bucket, and a queue whose only events sit
// several revolutions out (the findNextDue fallback).
func TestFarEventsBeyondWheel(t *testing.T) {
	var q Queue
	var order []int64
	mark := func(c int64) func() { return func() { order = append(order, c) } }
	q.At(3+4*wheelSize, mark(3+4*wheelSize)) // same bucket as cycle 3
	q.At(3, mark(3))
	q.At(2*wheelSize+1, mark(2*wheelSize+1))
	q.RunUntil(3)
	if q.NextDue() != 2*wheelSize+1 {
		t.Fatalf("NextDue across revolutions = %d, want %d", q.NextDue(), 2*wheelSize+1)
	}
	q.RunUntil(8 * wheelSize)
	want := []int64{3, 2*wheelSize + 1, 3 + 4*wheelSize}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// TestQueueZeroAllocSteadyState pins the free-list: once warm, At and
// RunUntil allocate nothing. This is half of the ISSUE-4 zero-alloc
// acceptance criterion (System.Step is the other half, in internal/sim).
func TestQueueZeroAllocSteadyState(t *testing.T) {
	var q Queue
	nop := func() {}
	var end int64
	// Warm the free list and the bucket array.
	for i := 0; i < 64; i++ {
		q.At(q.Now()+int64(i%13), nop)
	}
	q.RunUntil(32)
	end = 32
	allocs := testing.AllocsPerRun(1000, func() {
		q.At(end+5, nop)
		q.At(end+2, nop)
		end++
		q.RunUntil(end)
	})
	q.RunUntil(end + 1000)
	if allocs != 0 {
		t.Fatalf("steady-state At/RunUntil allocates %.1f objects per cycle, want 0", allocs)
	}

	argFn := func(any) {}
	arg := &struct{}{}
	allocs = testing.AllocsPerRun(1000, func() {
		q.AtArg(end+3, argFn, arg)
		end++
		q.RunUntil(end)
	})
	if allocs != 0 {
		t.Fatalf("steady-state AtArg/RunUntil allocates %.1f objects per cycle, want 0", allocs)
	}
}
