// Package eventq provides the discrete-event scheduler used by the uncore
// (caches, directory, mesh, memory). Cores are stepped every cycle, but
// uncore activity is sparse, so a calendar queue keeps long-latency messages
// cheap to simulate.
//
// Events scheduled for the same cycle run in FIFO order of scheduling, which
// keeps the simulation deterministic regardless of queue internals.
//
// The queue is a single-width calendar: wheelSize one-cycle buckets indexed
// by cycle modulo wheelSize, each holding a list sorted by cycle (FIFO within
// a cycle falls out of inserting after equal-cycle neighbors). Events more
// than one revolution ahead share buckets with near events and are simply
// skipped by the in-window scan. Spent events go to a free list, so the
// steady state allocates nothing, and NextDue is O(1), which is what lets
// the simulator's idle skip-ahead gate on "no event due this cycle" for free.
package eventq

import (
	"math"
	"math/bits"
)

const (
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Event is a callback scheduled to run at a simulation cycle. Exactly one of
// fn and fnArg is set; fnArg carries its argument in the event itself so
// callers on hot paths can schedule without allocating a closure.
type Event struct {
	cycle int64
	fn    func()
	fnArg func(any)
	arg   any
	next  *Event
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use.
type Queue struct {
	// buckets[c & wheelMask] chains the pending events of cycle c, sorted by
	// cycle, FIFO within a cycle.
	buckets []*Event
	// occupied is one bit per bucket, for skipping empty buckets in bulk.
	occupied [wheelSize / 64]uint64

	count   int
	now     int64
	nextDue int64 // earliest pending cycle; only meaningful when count > 0

	free *Event
}

// Now returns the cycle most recently passed to RunUntil (the current
// simulation time from the queue's perspective).
func (q *Queue) Now() int64 { return q.now }

// NextDue returns the earliest cycle at which an event is pending, or
// math.MaxInt64 when the queue is empty. The simulator's skip-ahead uses it
// to prove a cycle has no uncore activity.
func (q *Queue) NextDue() int64 {
	if q.count == 0 {
		return math.MaxInt64
	}
	return q.nextDue
}

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// (before the last RunUntil cycle) runs the event at the current cycle
// instead; this can only happen through a zero/negative delay and is safe.
func (q *Queue) At(cycle int64, fn func()) {
	e := q.alloc()
	e.fn = fn
	q.insert(cycle, e)
}

// AtArg schedules fn(arg) at the given absolute cycle, with the same
// past-clamping as At. The argument rides in the event, so a caller holding
// a static fn schedules without a closure allocation.
func (q *Queue) AtArg(cycle int64, fn func(any), arg any) {
	e := q.alloc()
	e.fnArg = fn
	e.arg = arg
	q.insert(cycle, e)
}

// After schedules fn to run delay cycles after the current cycle.
func (q *Queue) After(delay int64, fn func()) {
	q.At(q.now+delay, fn)
}

func (q *Queue) alloc() *Event {
	if e := q.free; e != nil {
		q.free = e.next
		e.next = nil
		return e
	}
	return &Event{}
}

func (q *Queue) recycle(e *Event) {
	e.fn = nil
	e.fnArg = nil
	e.arg = nil
	e.next = q.free
	q.free = e
}

func (q *Queue) insert(cycle int64, e *Event) {
	if q.buckets == nil {
		q.buckets = make([]*Event, wheelSize)
	}
	if cycle < q.now {
		cycle = q.now
	}
	e.cycle = cycle
	idx := int(cycle & wheelMask)
	// Insert after every event with cycle <= e.cycle: cycle order across
	// revolutions, FIFO within a cycle.
	p := &q.buckets[idx]
	for *p != nil && (*p).cycle <= cycle {
		p = &(*p).next
	}
	e.next = *p
	*p = e
	q.occupied[idx>>6] |= 1 << (uint(idx) & 63)
	q.count++
	if q.count == 1 || cycle < q.nextDue {
		q.nextDue = cycle
	}
}

// RunUntil executes, in order, every event scheduled at or before cycle.
// Events may schedule further events; those run too if they fall within the
// window. While an event executes, Now reports that event's cycle, so
// relative scheduling (After) from inside a handler is anchored correctly.
func (q *Queue) RunUntil(cycle int64) {
	if cycle < q.now {
		return
	}
	for q.count > 0 && q.nextDue <= cycle {
		cy := q.nextDue
		q.now = cy
		idx := int(cy & wheelMask)
		// Drain every event of cycle cy. Handlers may schedule more events
		// at cy (including via past-clamping); they land behind the current
		// ones in this same bucket and this loop picks them up in FIFO order.
		for {
			e := q.buckets[idx]
			if e == nil || e.cycle != cy {
				break
			}
			q.buckets[idx] = e.next
			q.count--
			fn, fnArg, arg := e.fn, e.fnArg, e.arg
			q.recycle(e)
			if fnArg != nil {
				fnArg(arg)
			} else {
				fn()
			}
		}
		if q.buckets[idx] == nil {
			q.occupied[idx>>6] &^= 1 << (uint(idx) & 63)
		}
		if q.count == 0 {
			break
		}
		q.nextDue = q.findNextDue(cy + 1)
	}
	q.now = cycle
}

// findNextDue locates the earliest pending cycle >= from. One revolution of
// the wheel starting at from's bucket visits candidate cycles in increasing
// order (one cycle per bucket within [from, from+wheelSize)); a bucket whose
// head lies inside that window holds exactly the window's representative
// cycle, which is then the minimum. If every pending event is more than a
// revolution out, fall back to the global minimum over occupied buckets.
func (q *Queue) findNextDue(from int64) int64 {
	start := int(from & wheelMask)
	limit := from + wheelSize
	for idx := q.nextOccupied(start); idx >= 0; idx = q.nextOccupied(idx + 1) {
		if c := q.buckets[idx].cycle; c < limit {
			return c
		}
	}
	for idx := q.nextOccupied(0); idx >= 0 && idx < start; idx = q.nextOccupied(idx + 1) {
		if c := q.buckets[idx].cycle; c < limit {
			return c
		}
	}
	min := int64(math.MaxInt64)
	for idx := q.nextOccupied(0); idx >= 0; idx = q.nextOccupied(idx + 1) {
		if c := q.buckets[idx].cycle; c < min {
			min = c
		}
	}
	return min
}

// nextOccupied returns the first occupied bucket index >= start (no wrap),
// or -1 when none remains.
func (q *Queue) nextOccupied(start int) int {
	if start >= wheelSize {
		return -1
	}
	w := start >> 6
	word := q.occupied[w] >> (uint(start) & 63)
	if word != 0 {
		return start + bits.TrailingZeros64(word)
	}
	for w++; w < len(q.occupied); w++ {
		if q.occupied[w] != 0 {
			return w<<6 + bits.TrailingZeros64(q.occupied[w])
		}
	}
	return -1
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.count }

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return q.count == 0 }
