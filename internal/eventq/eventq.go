// Package eventq provides the discrete-event scheduler used by the uncore
// (caches, directory, mesh, memory). Cores are stepped every cycle, but
// uncore activity is sparse, so an event heap keeps long-latency messages
// cheap to simulate.
//
// Events scheduled for the same cycle run in FIFO order of scheduling, which
// keeps the simulation deterministic regardless of heap internals.
package eventq

import "container/heap"

// Event is a callback scheduled to run at a simulation cycle.
type Event struct {
	cycle int64
	seq   uint64
	fn    func()
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use.
type Queue struct {
	h   eventHeap
	seq uint64
	now int64
}

// Now returns the cycle most recently passed to RunUntil (the current
// simulation time from the queue's perspective).
func (q *Queue) Now() int64 { return q.now }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// (before the last RunUntil cycle) runs the event at the current cycle
// instead; this can only happen through a zero/negative delay and is safe.
func (q *Queue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	heap.Push(&q.h, &Event{cycle: cycle, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles after the current cycle.
func (q *Queue) After(delay int64, fn func()) {
	q.At(q.now+delay, fn)
}

// RunUntil executes, in order, every event scheduled at or before cycle.
// Events may schedule further events; those run too if they fall within the
// window. While an event executes, Now reports that event's cycle, so
// relative scheduling (After) from inside a handler is anchored correctly.
func (q *Queue) RunUntil(cycle int64) {
	if cycle < q.now {
		return
	}
	for len(q.h) > 0 && q.h[0].cycle <= cycle {
		e := heap.Pop(&q.h).(*Event)
		q.now = e.cycle
		e.fn()
	}
	q.now = cycle
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return len(q.h) == 0 }
