package eventq

import "ptbsim/internal/ckpt"

// HashState folds the queue's observable schedule into h for checkpoint
// digests: the counters plus the multiset of pending event cycles, in
// deterministic wheel order. Event payloads are closures and cannot be
// hashed — the component state they would mutate is hashed separately,
// and the cycle multiset pins the schedule's shape. The free list is
// excluded. The field order is append-only.
func (q *Queue) HashState(h *ckpt.Hasher) {
	h.WriteInt(q.count)
	h.WriteI64(q.now)
	if q.count > 0 {
		h.WriteI64(q.nextDue)
	}
	for b := range q.buckets {
		for e := q.buckets[b]; e != nil; e = e.next {
			h.WriteI64(e.cycle)
		}
	}
}
