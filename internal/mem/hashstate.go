package mem

import "ptbsim/internal/ckpt"

// HashState folds the memory controller's mutable state into h for
// checkpoint digests. The field order is append-only.
func (m *Memory) HashState(h *ckpt.Hasher) {
	for _, f := range m.nextFree {
		h.WriteI64(f)
	}
	h.WriteI64(m.accesses)
}
