package mem

import (
	"testing"

	"ptbsim/internal/eventq"
	"ptbsim/internal/power"
)

func TestFixedLatency(t *testing.T) {
	q := &eventq.Queue{}
	m := New(q, power.NewMeter(1), 2)
	var done int64 = -1
	m.Access(0x1000, 0, func() { done = q.Now() })
	q.RunUntil(1000)
	if done != DefaultLatency {
		t.Fatalf("access completed at %d, want %d", done, DefaultLatency)
	}
	if m.Accesses() != 1 {
		t.Fatalf("accesses = %d", m.Accesses())
	}
}

func TestBankOccupancySerializes(t *testing.T) {
	q := &eventq.Queue{}
	m := New(q, power.NewMeter(1), 1) // single bank
	var first, second int64
	m.Access(0x0, 0, func() { first = q.Now() })
	m.Access(0x40, 0, func() { second = q.Now() })
	q.RunUntil(10000)
	if second-first != DefaultBankBusy {
		t.Fatalf("bank spacing = %d, want %d", second-first, DefaultBankBusy)
	}
}

func TestBanksOverlap(t *testing.T) {
	q := &eventq.Queue{}
	m := New(q, power.NewMeter(1), 8)
	times := make([]int64, 0, 2)
	// Addresses in different banks complete simultaneously.
	m.Access(0, 0, func() { times = append(times, q.Now()) })
	m.Access(64, 0, func() { times = append(times, q.Now()) })
	q.RunUntil(10000)
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("different banks did not overlap: %v", times)
	}
}

func TestEnergyCharged(t *testing.T) {
	q := &eventq.Queue{}
	meter := power.NewMeter(2)
	m := New(q, meter, 2)
	m.Access(0, 1, func() {})
	q.RunUntil(1000)
	if meter.Count(1, power.EvMem) != 1 {
		t.Fatal("memory energy not charged to the requesting tile")
	}
}

func TestZeroBanksClamped(t *testing.T) {
	q := &eventq.Queue{}
	m := New(q, power.NewMeter(1), 0)
	ok := false
	m.Access(0, 0, func() { ok = true })
	q.RunUntil(1000)
	if !ok {
		t.Fatal("access with clamped bank count failed")
	}
}
