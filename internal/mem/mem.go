// Package mem models main memory: a fixed-latency DRAM (Table 1: 300-cycle
// memory latency) with a per-bank occupancy model so that bursts of misses
// queue instead of overlapping perfectly.
package mem

import (
	"ptbsim/internal/eventq"
	"ptbsim/internal/power"
)

// DefaultLatency is the DRAM access latency in cycles (Table 1).
const DefaultLatency = 300

// DefaultBankBusy is the cycles a DRAM bank stays busy per access (cycle
// time), limiting throughput under miss bursts.
const DefaultBankBusy = 24

// Memory is the DRAM model. One Memory instance serves the whole chip; it is
// internally split into banks addressed by line address.
type Memory struct {
	q       *eventq.Queue
	meter   *power.Meter
	latency int64
	busy    int64
	// nextFree per bank.
	nextFree []int64
	accesses int64
}

// New creates a memory with the default timing and nBanks banks.
func New(q *eventq.Queue, meter *power.Meter, nBanks int) *Memory {
	if nBanks < 1 {
		nBanks = 1
	}
	return &Memory{
		q:        q,
		meter:    meter,
		latency:  DefaultLatency,
		busy:     DefaultBankBusy,
		nextFree: make([]int64, nBanks),
	}
}

// Access performs a line read or write. done runs when the access completes.
// The energy is charged to the tile given by chargeTile (the requesting home
// bank's tile, since memory controllers sit at the mesh edges in our
// floorplan abstraction).
func (m *Memory) Access(line uint64, chargeTile int, done func()) {
	bank := int(line/64) % len(m.nextFree)
	now := m.q.Now()
	start := m.nextFree[bank]
	if start < now {
		start = now
	}
	m.nextFree[bank] = start + m.busy
	m.accesses++
	m.meter.Add(chargeTile, power.EvMem, 1)
	m.q.At(start+m.latency, done)
}

// Accesses returns the total number of DRAM accesses performed.
func (m *Memory) Accesses() int64 { return m.accesses }
