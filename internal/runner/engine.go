// Package runner is the parallel experiment engine underneath the public
// sweep API and the figure builders. It runs keyed, deterministic jobs on
// a bounded worker pool with:
//
//   - result caching — a key is simulated at most once per engine;
//   - single-flight deduplication — concurrent requests for the same key
//     coalesce onto one in-flight run instead of simulating it twice;
//   - context cancellation — callers waiting on a run return as soon as
//     their context is done, and pool sweeps stop dispatching;
//   - per-run panic recovery — a panicking job is retried once (transient
//     corruption) and surfaces as a *PanicError if it panics again;
//   - streaming events — one callback per completed request, carrying the
//     value, coalescing/caching provenance and any error.
//
// The engine is generic over the job result type; the simulator layers
// instantiate it with their result structs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError reports a job that panicked on both attempts.
type PanicError struct {
	// Key identifies the failing job.
	Key string
	// Value is the recovered panic value of the second attempt.
	Value any
	// Stack is the goroutine stack captured at the second panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked twice: %v", e.Key, e.Value)
}

// Event describes one completed request, streamed to the engine's event
// callback.
type Event[V any] struct {
	// Key identifies the job.
	Key string
	// Value is the job result (the zero value on error).
	Value V
	// Err is the job error, if any.
	Err error
	// Cached marks a request served from the result cache without running.
	Cached bool
	// Coalesced marks a request that waited on another caller's in-flight
	// run of the same key.
	Coalesced bool
	// Retried marks a run that panicked once and succeeded on retry.
	Retried bool
}

// flight is one in-progress run other callers can wait on.
type flight[V any] struct {
	done    chan struct{}
	val     V
	err     error
	retried bool
}

// Engine caches and deduplicates keyed jobs and fans sweeps out over a
// bounded worker pool. The zero value is not usable; construct with New.
type Engine[V any] struct {
	workers int
	onEvent func(Event[V])

	mu       sync.Mutex
	cache    map[string]V
	inflight map[string]*flight[V]
}

// New returns an engine whose sweeps use the given number of workers;
// workers < 1 selects runtime.NumCPU().
func New[V any](workers int) *Engine[V] {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &Engine[V]{
		workers:  workers,
		cache:    make(map[string]V),
		inflight: make(map[string]*flight[V]),
	}
}

// Workers reports the sweep pool size.
func (e *Engine[V]) Workers() int { return e.workers }

// SetWorkers resizes the sweep pool (workers < 1 selects runtime.NumCPU).
// It only affects subsequent ForEach calls.
func (e *Engine[V]) SetWorkers(workers int) {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	e.mu.Lock()
	e.workers = workers
	e.mu.Unlock()
}

// SetEventFunc installs the streaming callback. Events are delivered
// synchronously from whichever goroutine completes a request; fn must be
// safe for concurrent use (or do its own locking).
func (e *Engine[V]) SetEventFunc(fn func(Event[V])) {
	e.mu.Lock()
	e.onEvent = fn
	e.mu.Unlock()
}

func (e *Engine[V]) emit(ev Event[V]) {
	e.mu.Lock()
	fn := e.onEvent
	e.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// Cached reports the cached value for key, if any.
func (e *Engine[V]) Cached(key string) (V, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.cache[key]
	return v, ok
}

// Len reports the number of cached results.
func (e *Engine[V]) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Do returns the result for key, computing it with fn at most once no
// matter how many goroutines ask concurrently. Successful results are
// cached forever; errors are not, so a later request retries. A caller
// whose ctx ends while another caller's run is in flight returns its
// ctx error immediately (the run itself keeps going for the others).
func (e *Engine[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	e.mu.Lock()
	if v, ok := e.cache[key]; ok {
		e.mu.Unlock()
		e.emit(Event[V]{Key: key, Value: v, Cached: true})
		return v, nil
	}
	if fl, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-fl.done:
			e.emit(Event[V]{Key: key, Value: fl.val, Err: fl.err, Coalesced: true, Retried: fl.retried})
			return fl.val, fl.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	fl := &flight[V]{done: make(chan struct{})}
	e.inflight[key] = fl
	e.mu.Unlock()

	fl.val, fl.err, fl.retried = e.runProtected(ctx, key, fn)

	e.mu.Lock()
	if fl.err == nil {
		e.cache[key] = fl.val
	}
	delete(e.inflight, key)
	e.mu.Unlock()
	close(fl.done)
	e.emit(Event[V]{Key: key, Value: fl.val, Err: fl.err, Retried: fl.retried})
	return fl.val, fl.err
}

// runProtected executes fn with panic recovery, retrying once.
func (e *Engine[V]) runProtected(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, err error, retried bool) {
	v, err, pe := attempt(ctx, key, fn)
	if pe == nil {
		return v, err, false
	}
	v, err, pe = attempt(ctx, key, fn)
	if pe == nil {
		return v, err, true
	}
	return v, pe, true
}

func attempt[V any](ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, err error, pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Key: key, Value: r, Stack: debug.Stack()}
		}
	}()
	v, err = fn(ctx)
	return v, err, nil
}

// Job is one keyed unit of work for ForEach.
type Job[V any] struct {
	// Key identifies the job for caching and deduplication.
	Key string
	// Run computes the result.
	Run func(context.Context) (V, error)
}

// ForEach runs every job through Do on at most Workers goroutines and
// returns the results in job order. The first job error cancels the
// remaining jobs and is returned alongside the partial results (failed or
// skipped slots hold the zero value). Duplicate keys coalesce onto one
// run. onDone, when non-nil, is invoked once per completed slot from
// whichever worker finished it (it must be safe for concurrent use);
// slots skipped after a failure get no callback.
func (e *Engine[V]) ForEach(ctx context.Context, jobs []Job[V], onDone func(i int, v V, err error)) ([]V, error) {
	results := make([]V, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	e.mu.Lock()
	workers := e.workers
	e.mu.Unlock()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := e.Do(ctx, jobs[i].Key, jobs[i].Run)
				if onDone != nil {
					onDone(i, v, err)
				}
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("runner: job %q: %w", jobs[i].Key, err)
						cancel()
					})
					continue
				}
				results[i] = v
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// ForEachAll runs every job through Do on at most Workers goroutines and
// returns per-slot results and errors in job order. Unlike ForEach, a job
// error does not cancel the rest of the pool — every job still runs, so
// callers get every completable result plus the full error picture. Only
// the caller's context stops the sweep early: slots never dispatched
// because ctx ended hold ctx.Err() (and the zero value). onDone, when
// non-nil, fires once per dispatched slot from whichever worker finished
// it (it must be safe for concurrent use); undispatched slots get no
// callback.
func (e *Engine[V]) ForEachAll(ctx context.Context, jobs []Job[V], onDone func(i int, v V, err error)) ([]V, []error) {
	results := make([]V, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}

	e.mu.Lock()
	workers := e.workers
	e.mu.Unlock()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := e.Do(ctx, jobs[i].Key, jobs[i].Run)
				results[i], errs[i] = v, err
				if onDone != nil {
					onDone(i, v, err)
				}
			}
		}()
	}
	// dispatched is written only here (the dispatching goroutine) and read
	// only after wg.Wait, so it needs no lock.
	dispatched := make([]bool, len(jobs))
dispatch:
	for i := range jobs {
		select {
		case next <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range jobs {
			if !dispatched[i] {
				errs[i] = err
			}
		}
	}
	return results, errs
}
