package cpu

import (
	"fmt"
	"strings"
)

// DebugString renders the core's pipeline state for diagnosing stalls and
// deadlocks in integration tests. It is not part of the simulation proper.
func (c *Core) DebugString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d: tick=%d rob=%d/%d headSeq=%d lsq=%d storeBuf=%d readyQ=%d inflight=%d pipe=%d\n",
		c.id, c.tick, c.count, len(c.rob), c.headSeq, c.lsqCount, c.storeBuf,
		len(c.readyQ), len(c.inflight), c.fpLen)
	fmt.Fprintf(&b, "  flags: srcDone=%v fetchStalled=%v icacheBusy=%v wrongPath=%v pendingInst=%v stallTicks=%d freq=%.2f gate=%v\n",
		c.srcDone, c.fetchStalled, c.icacheBusy, c.wrongPath, c.hasPending, c.stallTicks, c.freq, c.knobs.FetchGate)
	if c.count > 0 {
		e := &c.rob[c.head]
		fmt.Fprintf(&b, "  head: seq=%d op=%v pc=%#x addr=%#x state=%d syncOp=%d serialize=%v pendingDeps=%d doneTick=%d\n",
			e.seq, e.inst.Op, e.inst.PC, e.inst.Addr, e.state, e.inst.SyncOp, e.inst.Serialize, e.pendingDeps, e.doneTick)
	}
	return b.String()
}
