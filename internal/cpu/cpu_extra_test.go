package cpu

import (
	"testing"

	"ptbsim/internal/isa"
	"ptbsim/internal/power"
)

func TestSleepGateFreezesCore(t *testing.T) {
	r := newTestRig(aluStream(400, 0))
	r.core.Knobs().SleepGate = true
	dst := make([]float64, 1)
	for cyc := int64(1); cyc <= 200; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	r.m.EndCycle(dst)
	if got := r.core.Stats().Committed; got != 0 {
		t.Fatalf("sleeping core committed %d instructions", got)
	}
	if r.core.Stats().SleepCycles != 200 {
		t.Fatalf("sleep cycles = %d, want 200", r.core.Stats().SleepCycles)
	}
	// No clock energy while asleep.
	if r.m.Count(0, power.EvClockActive) != 0 || r.m.Count(0, power.EvClockGated) != 0 {
		t.Fatal("sleeping core consumed clock energy")
	}
	// Wake up: progress resumes and the program completes.
	r.core.Knobs().SleepGate = false
	r.runUntilDone(t, 20000)
	if got := r.core.Stats().Committed; got != 400 {
		t.Fatalf("committed %d after waking, want 400", got)
	}
}

func TestSleepDoesNotLoseMemoryResponses(t *testing.T) {
	// A load issued before sleep completes while the core is frozen; the
	// result must be consumed after wake-up.
	insts := []isa.Inst{
		{PC: 0x100, Op: isa.OpLoad, Addr: 0x1000},
		{PC: 0x104, Op: isa.OpIntAlu, Dep1: 1},
	}
	r := newTestRig(insts)
	r.mem.loadLat = 50
	// Run until the load has issued.
	for cyc := int64(1); cyc <= 20; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	if r.mem.reads != 1 {
		t.Fatal("load not issued in warmup window")
	}
	r.core.Knobs().SleepGate = true
	for cyc := int64(21); cyc <= 100; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	r.core.Knobs().SleepGate = false
	r.runUntilDone(t, 10000)
	if got := r.core.Stats().Committed; got != 2 {
		t.Fatalf("committed %d, want 2", got)
	}
}

func TestRMWWaitsForROBHead(t *testing.T) {
	// A long-latency FP op ahead of the RMW delays the RMW's issue until
	// it reaches the head.
	insts := []isa.Inst{
		{PC: 0x200, Op: isa.OpFPMul, LongLat: true},
		{PC: 0x204, Op: isa.OpAtomicRMW, Addr: 0x2000, Serialize: true, SyncOp: isa.SyncLockTry},
	}
	r := newTestRig(insts)
	issuedAt := int64(-1)
	origWrites := 0
	for cyc := int64(1); cyc <= 5000; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
		if r.mem.writes > origWrites && issuedAt < 0 {
			issuedAt = cyc
		}
		if r.core.Done() {
			break
		}
	}
	if issuedAt < 0 {
		t.Fatal("RMW never issued")
	}
	// The FPMul needs ~LatLong cycles after dispatch; the RMW cannot have
	// gone to memory before the front-end depth + that latency.
	min := int64(DefaultConfig().FrontendDepth + DefaultConfig().LatLong)
	if issuedAt < min {
		t.Fatalf("RMW issued at %d, before the older op could retire (min %d)", issuedAt, min)
	}
}

func TestMidRunSpeedChange(t *testing.T) {
	r := newTestRig(aluStream(2000, 0))
	for cyc := int64(1); cyc <= 200; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	before := r.core.Stats().Committed
	r.core.SetSpeed(0.5, 0)
	for cyc := int64(201); cyc <= 400; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	slowRate := float64(r.core.Stats().Committed-before) / 200
	r.core.SetSpeed(1.0, 0)
	mid := r.core.Stats().Committed
	for cyc := int64(401); cyc <= 600; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	fastRate := float64(r.core.Stats().Committed-mid) / 200
	if fastRate < 1.5*slowRate {
		t.Fatalf("speed change ineffective: slow %.2f fast %.2f IPC", slowRate, fastRate)
	}
}

func TestTokenRateTracksActivity(t *testing.T) {
	r := newTestRig(aluStream(3000, 0))
	for cyc := int64(1); cyc <= 300; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	busyRate := r.core.TokenRate()
	if busyRate <= 0 {
		t.Fatal("token rate zero while busy")
	}
	r.runUntilDone(t, 100000)
	// After the program drains, the rate decays toward zero.
	end := r.q.Now() + 200
	for cyc := r.q.Now() + 1; cyc <= end; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	if r.core.TokenRate() > busyRate/4 {
		t.Fatalf("token rate did not decay: %.1f -> %.1f", busyRate, r.core.TokenRate())
	}
}

func TestCustomPTHTSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PTHTSize = 256
	m := power.NewMeter(1)
	c := New(0, cfg, m, power.NewTokenModel(), &fakeMem{icached: true}, fixedSync{0}, &sliceSource{})
	// Entries 256 apart in index space alias in a 256-entry table.
	c.PTHT().Update(0x1000, 17)
	if got := c.PTHT().Lookup(0x1000+256*4, 0); got != 17 {
		t.Fatalf("256-entry table did not alias: %d", got)
	}
}

func TestROBOccupancyAccessor(t *testing.T) {
	r := newTestRig(aluStream(500, 1))
	for cyc := int64(1); cyc <= 50; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	if r.core.ROBOccupancy() == 0 {
		t.Fatal("ROB empty mid-run on a dependency chain")
	}
	if r.core.ROBOccupancy() > DefaultConfig().ROBSize {
		t.Fatal("ROB over capacity")
	}
}

func TestWrongPathEnergyBounded(t *testing.T) {
	// One mispredicted branch stuck behind a slow load: phantom fetch must
	// stop once the fetch-queue capacity worth of wrong-path instructions
	// has been charged, not accrue for the whole miss latency.
	insts := []isa.Inst{
		{PC: 0x100, Op: isa.OpLoad, Addr: 0x1000},
		// Branch with an unpredictable outcome: the 2-bit counters start
		// weakly taken, so Taken=false mispredicts on first sight.
		{PC: 0x104, Op: isa.OpBranch, Taken: false, Dep1: 1},
		{PC: 0x108, Op: isa.OpIntAlu},
	}
	r := newTestRig(insts)
	r.mem.loadLat = 2000 // branch resolves long after fetch
	r.runUntilDone(t, 50000)
	if r.core.Stats().Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", r.core.Stats().Mispredicts)
	}
	cap := int64(DefaultConfig().FrontendDepth * DefaultConfig().FetchWidth)
	if got := r.core.Stats().WrongPathFetch; got > cap {
		t.Fatalf("wrong-path fetches %d exceed the fetch-queue bound %d", got, cap)
	}
}

func TestBpredAliasingIsHarmless(t *testing.T) {
	// Two branches aliasing to nearby gshare entries with opposite biases
	// still train (accuracy above chance).
	g := newGshare(8, nil, 0) // tiny table to force aliasing
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		pc := uint64(0x100 + (i%2)*4)
		taken := i%2 == 0 // pc A always taken, pc B never
		p := g.predict(pc)
		if p == taken {
			correct++
		}
		total++
		g.update(pc, taken, p)
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Fatalf("aliased accuracy %.2f below chance-ish threshold", acc)
	}
}
