package cpu

import (
	"strings"
	"testing"

	"ptbsim/internal/isa"
)

// TestCheckOccupancyCleanUnderLoad runs a mixed ALU/load/store stream that
// keeps the ROB, LSQ, store buffer and fetch pipe busy and asserts the
// occupancy bounds hold on every single cycle, not just at quiescence.
func TestCheckOccupancyCleanUnderLoad(t *testing.T) {
	insts := make([]isa.Inst, 0, 3000)
	for i := 0; len(insts) < 3000; i++ {
		pc := uint64(0x1000 + len(insts)*4)
		switch i % 4 {
		case 0:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpLoad, Addr: uint64(0x9000 + i*8)})
		case 1:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpStore, Addr: uint64(0x9000 + i*8)})
		default:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpIntAlu, Dep1: 1})
		}
	}
	r := newTestRig(insts)
	for cyc := int64(1); cyc <= 100000; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
		if err := r.core.CheckOccupancy(); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		if r.core.Done() {
			return
		}
	}
	t.Fatal("core did not finish within 100000 cycles")
}

// TestCheckOccupancyDetectsCorruption forces each tracked counter out of
// bounds in turn — both over-allocation and the negative counts a double
// release would produce — and verifies CheckOccupancy names the structure.
func TestCheckOccupancyDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(c *Core)
		wantMsg string
	}{
		{"rob-over", func(c *Core) { c.count = c.cfg.ROBSize + 1 }, "ROB occupancy"},
		{"rob-negative", func(c *Core) { c.count = -1 }, "ROB occupancy"},
		{"lsq-over", func(c *Core) { c.lsqCount = c.cfg.LSQSize + 1 }, "LSQ occupancy"},
		{"lsq-negative", func(c *Core) { c.lsqCount = -3 }, "LSQ occupancy"},
		{"storebuf-over", func(c *Core) { c.storeBuf = c.cfg.StoreBufSize + 1 }, "store buffer"},
		{"storebuf-negative", func(c *Core) { c.storeBuf = -1 }, "store buffer"},
		{"fetchpipe-over", func(c *Core) { c.fpLen = c.fetchPipeCap + 1 }, "fetch pipe"},
		{"fetchpipe-negative", func(c *Core) { c.fpLen = -1 }, "fetch pipe"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := newTestRig(aluStream(8, 0))
			r.runUntilDone(t, 1000)
			if err := r.core.CheckOccupancy(); err != nil {
				t.Fatalf("clean core violates: %v", err)
			}
			tc.corrupt(r.core)
			err := r.core.CheckOccupancy()
			if err == nil {
				t.Fatal("occupancy corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
