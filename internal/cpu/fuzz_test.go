package cpu

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/eventq"
	"ptbsim/internal/isa"
	"ptbsim/internal/power"
	"ptbsim/internal/xrand"
)

// randomProgram synthesizes an arbitrary (but well-formed) instruction
// stream: random ops, dependencies, branch outcomes, memory addresses and
// serialize points.
func randomProgram(seed uint64, n int) []isa.Inst {
	rng := xrand.New(seed)
	ops := []isa.Op{isa.OpIntAlu, isa.OpIntMul, isa.OpFPAlu, isa.OpFPMul,
		isa.OpLoad, isa.OpStore, isa.OpBranch, isa.OpAtomicRMW}
	insts := make([]isa.Inst, n)
	for i := range insts {
		op := ops[rng.Intn(len(ops))]
		inst := isa.Inst{
			PC:   uint64(0x1000 + (rng.Intn(512))*4),
			Op:   op,
			Dep1: uint16(rng.Intn(12)),
			Dep2: uint16(rng.Intn(20)),
		}
		switch op {
		case isa.OpLoad, isa.OpStore:
			inst.Addr = uint64(0x100000 + rng.Intn(1<<16))
		case isa.OpBranch:
			inst.Taken = rng.Bool(0.6)
		case isa.OpAtomicRMW:
			inst.Addr = uint64(0x200000 + rng.Intn(256)*64)
			inst.Serialize = true
			inst.SyncOp = isa.SyncLockTry
		}
		if rng.Bool(0.1) {
			inst.LongLat = true
		}
		// Occasional serializing spin loads.
		if op == isa.OpLoad && rng.Bool(0.05) {
			inst.Serialize = true
			inst.SyncOp = isa.SyncSpinLock
		}
		insts[i] = inst
	}
	return insts
}

// TestFuzzRandomProgramsComplete pushes random programs through the core
// with varying memory latencies and knob settings; every program must
// retire completely with bounded structures.
func TestFuzzRandomProgramsComplete(t *testing.T) {
	f := func(seed uint64, latPick, knobPick uint8) bool {
		prog := randomProgram(seed, 600)
		q := &eventq.Queue{}
		mem := &fakeMem{q: q, loadLat: int64(1 + latPick%60), storeLat: int64(1 + latPick%30), icached: true}
		src := &sliceSource{insts: prog}
		m := power.NewMeter(1)
		c := New(0, DefaultConfig(), m, power.NewTokenModel(), mem, fixedSync{1}, src)

		switch knobPick % 4 {
		case 1:
			c.Knobs().FetchWidth = 2
		case 2:
			c.Knobs().IssueWidth = 1
			c.Knobs().DecodeWidth = 2
		case 3:
			c.SetSpeed(0.65, 10)
		}

		for cyc := int64(1); cyc <= 600_000; cyc++ {
			q.RunUntil(cyc)
			c.Tick()
			if c.count > DefaultConfig().ROBSize || c.lsqCount > DefaultConfig().LSQSize {
				return false
			}
			if c.Done() {
				return c.Stats().Committed == 600
			}
		}
		return false // did not finish: livelock/deadlock
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzKnobFlipping randomly toggles throttles and frequency mid-run;
// the program must still complete exactly.
func TestFuzzKnobFlipping(t *testing.T) {
	f := func(seed uint64) bool {
		prog := randomProgram(seed^0xDEADBEEF, 400)
		q := &eventq.Queue{}
		mem := &fakeMem{q: q, loadLat: 8, storeLat: 4, icached: true}
		src := &sliceSource{insts: prog}
		m := power.NewMeter(1)
		c := New(0, DefaultConfig(), m, power.NewTokenModel(), mem, fixedSync{1}, src)
		rng := xrand.New(seed)
		freqs := []float64{1.0, 0.95, 0.9, 0.75, 0.65}
		for cyc := int64(1); cyc <= 800_000; cyc++ {
			q.RunUntil(cyc)
			if cyc%64 == 0 {
				k := c.Knobs()
				*k = Knobs{}
				switch rng.Intn(5) {
				case 1:
					k.FetchGate = true
				case 2:
					k.FetchWidth = 1 + rng.Intn(4)
				case 3:
					k.IssueWidth = 1 + rng.Intn(4)
				case 4:
					c.SetSpeed(freqs[rng.Intn(len(freqs))], 5)
				}
				// Never leave the core gated forever.
				if cyc%1024 == 0 {
					*k = Knobs{}
				}
			}
			c.Tick()
			if c.Done() {
				return c.Stats().Committed == 400
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
