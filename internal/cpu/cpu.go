// Package cpu models the out-of-order cores of the simulated CMP (paper
// Table 1): 4-wide fetch/decode/issue, a 128-entry instruction window with a
// 64-entry load/store queue, a 14-stage pipeline, a 64KB 16-bit gshare
// branch predictor and the Table-1 functional-unit mix, at 3GHz and 0.9V
// nominal.
//
// The core is trace-reactive: it consumes the correct-path dynamic
// instruction stream from a workload Source, predicts branches with a real
// gshare (misprediction starves and redirects the front end and burns
// wrong-path fetch energy), stalls fetch across serializing instructions
// (atomics and spin loads) and reports their outcomes back to the Source —
// which is how spin loops, locks and barriers interact with the simulated
// coherence protocol.
package cpu

import (
	"fmt"

	"ptbsim/internal/isa"
	"ptbsim/internal/power"
)

// Source supplies one thread's dynamic correct-path instruction stream.
// Implementations react to Resolve calls: the outcome of a serializing
// instruction (lock test-and-set, spin load, barrier arrival) decides what
// the stream contains next.
type Source interface {
	// Next returns the next instruction in program order, or ok=false when
	// the thread has finished. Next is never called between a serializing
	// instruction and its Resolve.
	Next() (inst isa.Inst, ok bool)
	// Resolve delivers the result of the most recent serializing
	// instruction.
	Resolve(result int64)
}

// SyncEvaluator evaluates the logical effect of synchronization
// instructions at the cycle they execute.
type SyncEvaluator interface {
	Eval(core int, inst isa.Inst) int64
}

// MemSystem is the core's view of the memory hierarchy.
type MemSystem interface {
	// Read issues a data load; done runs when the value is available.
	Read(core int, addr uint64, done func())
	// Write acquires exclusive ownership and performs a store or atomic.
	Write(core int, addr uint64, done func())
	// FetchProbe synchronously checks the L1I; a hit keeps fetch streaming.
	FetchProbe(core int, addr uint64) bool
	// FetchMiss starts an instruction-cache fill; done runs at fill time.
	FetchMiss(core int, addr uint64, done func())
}

// Config is the core configuration (defaults = Table 1).
type Config struct {
	ROBSize       int
	LSQSize       int
	FetchWidth    int
	DecodeWidth   int
	IssueWidth    int
	CommitWidth   int
	FrontendDepth int // fetch→dispatch latency; total depth 14 incl. back end
	StoreBufSize  int

	NumIntAlu, NumIntMul, NumFPAlu, NumFPMul int
	LatIntAlu, LatIntMul, LatFPAlu, LatFPMul int
	LatLong                                  int // long-latency variant (divide)

	BpredBits uint

	// PTHTSize overrides the Power-Token History Table entry count
	// (0 = the paper's 8K; ablation knob).
	PTHTSize int
}

// DefaultConfig returns the Table-1 core.
func DefaultConfig() Config {
	return Config{
		ROBSize:       128,
		LSQSize:       64,
		FetchWidth:    4,
		DecodeWidth:   4,
		IssueWidth:    4,
		CommitWidth:   4,
		FrontendDepth: 10,
		StoreBufSize:  8,
		NumIntAlu:     6,
		NumIntMul:     2,
		NumFPAlu:      4,
		NumFPMul:      4,
		LatIntAlu:     1,
		LatIntMul:     3,
		LatFPAlu:      2,
		LatFPMul:      4,
		LatLong:       12,
		BpredBits:     16,
	}
}

// Knobs are the per-cycle microarchitectural throttles the power-budget
// controllers drive (§II.B techniques). Zero values mean "unthrottled".
type Knobs struct {
	// FetchGate stops instruction fetch entirely.
	FetchGate bool
	// FetchWidth/DecodeWidth/IssueWidth throttle the respective stages.
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	// SleepGate freezes the whole core for the cycle (clock stopped, no
	// pipeline activity, power-gated leakage). Used by the spin-gating
	// extension; in-flight memory responses still arrive and are consumed
	// once the core wakes.
	SleepGate bool
}

type entryState uint8

const (
	stWaiting entryState = iota
	stReady
	stExecuting
	stDone
)

type robEntry struct {
	inst      isa.Inst
	seq       int64
	state     entryState
	predicted bool // branch prediction recorded at fetch
	result    int64

	pendingDeps int
	waiters     []int64 // seqs woken when this entry completes

	dispatchTick int64
	doneTick     int64 // FU completion tick for in-flight ops
	fuClass      int   // index into fuFree; -1 if none held
}

type fetchedInst struct {
	inst      isa.Inst
	predicted bool
	readyTick int64
}

// fuClass indices.
const (
	fuIntAlu = iota
	fuIntMul
	fuFPAlu
	fuFPMul
	numFUClasses
)

// Stats collects per-core counters.
type Stats struct {
	Committed       int64
	Ticks           int64 // core-domain active ticks
	StallTicks      int64 // DVFS transition stalls
	SleepCycles     int64 // cycles frozen by the sleep gate
	Branches        int64
	Mispredicts     int64
	WrongPathFetch  int64
	SerializeStalls int64 // ticks fetch was stalled on a serializing inst
	ROBOccupancySum int64
	LoadCount       int64
	StoreCount      int64
	RMWCount        int64
}

// Core is one simulated out-of-order core.
type Core struct {
	id    int
	cfg   Config
	knobs Knobs

	meter *power.Meter
	tm    *power.TokenModel
	ptht  *power.PTHT
	mem   MemSystem
	sync  SyncEvaluator
	src   Source
	bp    *gshare

	// ROB ring buffer.
	rob     []robEntry
	head    int
	count   int
	headSeq int64
	nextSeq int64

	readyQ   []int64 // seqs ready to issue, ascending
	inflight []int64 // seqs executing on a FU with a doneTick

	fuFree [numFUClasses]int
	fuLat  [numFUClasses]int64

	lsqCount int
	storeBuf int

	// Fetch pipe: a fixed ring of fetchPipeCap entries so the steady state
	// never reslices or reallocates. fpHead is the oldest entry; fpLen the
	// occupancy.
	fpBuf        []fetchedInst
	fpHead       int
	fpLen        int
	fetchPipeCap int
	pendingInst  isa.Inst // instruction parked across an I-miss
	hasPending   bool
	curFetchLine uint64
	icacheBusy   bool
	fetchStalled bool // waiting for a serializing inst to commit
	wrongPath    bool // mispredicted branch outstanding
	wrongPathBuf int  // phantom instructions buffered this episode
	srcDone      bool

	tick       int64 // core-domain tick counter
	freqAcc    float64
	freq       float64
	stallTicks int64 // DVFS transition stall

	// fetchedTokens is the PTHT-based token estimate of the instructions
	// fetched in the current tick; tokenRate is its short moving average,
	// which spreads each instruction's lifetime cost over the cycles it is
	// actually in flight — together with the ROB occupancy term this is
	// the controllers' power signal.
	fetchedTokens int
	tokenRate     float64

	// storeDrain is the store-buffer release callback, built once at New so
	// commit doesn't allocate a closure per retiring store.
	storeDrain func()
	// fetchFill completes the single outstanding I-miss (fetch stalls while
	// icacheBusy, so one pending PC suffices); built once at New.
	fetchFill   func()
	fetchFillPC uint64
	// cbFree pools load/atomic completion callbacks; each record carries a
	// closure built once, so issuing memory operations never allocates in
	// the steady state.
	cbFree *memCB

	stats Stats
}

// memCB is a pooled completion callback for loads and atomics.
type memCB struct {
	c    *Core
	seq  int64
	rmw  bool
	fn   func()
	next *memCB
}

// memCallback leases a pooled callback bound to (seq, rmw).
func (c *Core) memCallback(seq int64, rmw bool) func() {
	cb := c.cbFree
	if cb != nil {
		c.cbFree = cb.next
		cb.next = nil
	} else {
		cb = &memCB{c: c}
		cb.fn = func() { cb.c.memDone(cb) }
	}
	cb.seq, cb.rmw = seq, rmw
	return cb.fn
}

// memDone returns the record to the pool, then completes the operation (in
// that order, so a completion that issues another memory op can reuse it).
func (c *Core) memDone(cb *memCB) {
	seq, rmw := cb.seq, cb.rmw
	cb.next = c.cbFree
	c.cbFree = cb
	if rmw {
		c.rmwDone(seq)
	} else {
		c.loadDone(seq)
	}
}

// New creates a core wired to its memory system, sync evaluator and
// instruction source.
func New(id int, cfg Config, meter *power.Meter, tm *power.TokenModel, mem MemSystem, sync SyncEvaluator, src Source) *Core {
	phtSize := cfg.PTHTSize
	if phtSize == 0 {
		phtSize = power.PTHTSize
	}
	c := &Core{
		id:    id,
		cfg:   cfg,
		meter: meter,
		tm:    tm,
		ptht:  power.NewPTHTSized(meter, id, phtSize),
		mem:   mem,
		sync:  sync,
		src:   src,
		bp:    newGshare(cfg.BpredBits, meter, id),
		rob:   make([]robEntry, cfg.ROBSize),
		freq:  1,
	}
	c.fuFree = [numFUClasses]int{cfg.NumIntAlu, cfg.NumIntMul, cfg.NumFPAlu, cfg.NumFPMul}
	c.fuLat = [numFUClasses]int64{int64(cfg.LatIntAlu), int64(cfg.LatIntMul), int64(cfg.LatFPAlu), int64(cfg.LatFPMul)}
	c.fetchPipeCap = cfg.FrontendDepth * cfg.FetchWidth
	c.fpBuf = make([]fetchedInst, c.fetchPipeCap)
	c.curFetchLine = ^uint64(0)
	c.storeDrain = func() { c.storeBuf-- }
	c.fetchFill = func() {
		c.icacheBusy = false
		c.curFetchLine = c.fetchFillPC &^ 63
	}
	return c
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// PTHT exposes the core's Power-Token History Table.
func (c *Core) PTHT() *power.PTHT { return c.ptht }

// Knobs returns a pointer to the live knob block for controllers.
func (c *Core) Knobs() *Knobs { return &c.knobs }

// SetSpeed changes the core's relative frequency, stalling the core for
// transitionTicks to model the regulator/PLL switch (Kim-style fast DVFS
// uses small values).
func (c *Core) SetSpeed(freq float64, transitionTicks int64) {
	if freq <= 0 {
		freq = 0.01
	}
	if c.freq != freq {
		c.stallTicks += transitionTicks
	}
	c.freq = freq
}

// Speed returns the current relative frequency.
func (c *Core) Speed() float64 { return c.freq }

// Done reports whether the thread finished and the pipeline fully drained.
func (c *Core) Done() bool {
	return c.srcDone && c.count == 0 && c.fpLen == 0 &&
		c.storeBuf == 0 && !c.hasPending
}

// FetchedTokens returns the PTHT token estimate of the instructions fetched
// on the most recent tick (the §III.B per-cycle power estimate).
func (c *Core) FetchedTokens() int { return c.fetchedTokens }

// TokenRate returns the smoothed per-cycle token consumption estimate: an
// 8-cycle moving average of the fetched-token stream. Fetch is bursty
// (0 or 4 instructions) while the energy of those instructions is spent
// across their pipeline lifetime; the short average is what tracks actual
// per-cycle power.
func (c *Core) TokenRate() float64 { return c.tokenRate }

// ROBOccupancy returns the current number of in-flight instructions, whose
// window-residency energy is part of the core's power.
func (c *Core) ROBOccupancy() int { return c.count }

// LSQOccupancy returns the number of memory operations currently holding
// load/store-queue entries.
func (c *Core) LSQOccupancy() int { return c.lsqCount }

// CheckOccupancy verifies the pipeline's structural occupancy bounds: the
// ROB, LSQ, store buffer and fetch pipe can never hold more entries than
// they have (nor a negative count — the signature of a double release).
// The invariant layer runs this every epoch; dispatch/commit bugs that
// would silently corrupt the window-residency power term (ROB occupancy ×
// token unit, §III.B) surface here instead.
func (c *Core) CheckOccupancy() error {
	switch {
	case c.count < 0 || c.count > c.cfg.ROBSize:
		return fmt.Errorf("cpu: core %d ROB occupancy %d outside [0, %d]", c.id, c.count, c.cfg.ROBSize)
	case c.lsqCount < 0 || c.lsqCount > c.cfg.LSQSize:
		return fmt.Errorf("cpu: core %d LSQ occupancy %d outside [0, %d]", c.id, c.lsqCount, c.cfg.LSQSize)
	case c.storeBuf < 0 || c.storeBuf > c.cfg.StoreBufSize:
		return fmt.Errorf("cpu: core %d store buffer %d outside [0, %d]", c.id, c.storeBuf, c.cfg.StoreBufSize)
	case c.fpLen < 0 || c.fpLen > c.fetchPipeCap:
		return fmt.Errorf("cpu: core %d fetch pipe %d over capacity %d", c.id, c.fpLen, c.fetchPipeCap)
	}
	return nil
}

// Tick advances the core by one *global* clock cycle. Under frequency
// scaling the pipeline steps only on a fraction of global cycles; skipped
// cycles consume no dynamic energy (leakage is charged by the caller per
// global cycle). It returns true if the pipeline stepped.
func (c *Core) Tick() bool {
	c.fetchedTokens = 0
	if c.Done() {
		c.tokenRate = 0
		return false
	}
	if c.knobs.SleepGate {
		c.tokenRate *= 7.0 / 8
		c.stats.SleepCycles++
		return false
	}
	c.freqAcc += c.freq
	if c.freqAcc < 1 {
		c.tokenRate *= 7.0 / 8
		return false
	}
	c.freqAcc--
	defer func() { c.tokenRate += (float64(c.fetchedTokens) - c.tokenRate) / 8 }()
	if c.stallTicks > 0 {
		c.stallTicks--
		c.stats.StallTicks++
		c.meter.Add(c.id, power.EvClockGated, 1)
		return false
	}
	c.step()
	return true
}

// step runs one core-domain pipeline cycle, back to front.
func (c *Core) step() {
	c.tick++
	c.stats.Ticks++
	c.stats.ROBOccupancySum += int64(c.count)

	committed := c.commit()
	c.completeExecution()
	issued := c.issue()
	dispatched := c.dispatch()
	fetched := c.fetch()

	// Clock tree: active when any stage moved, otherwise gated (Table 1
	// runs with clock gating enabled).
	if committed+issued+dispatched+fetched > 0 || len(c.inflight) > 0 {
		c.meter.Add(c.id, power.EvClockActive, 1)
	} else {
		c.meter.Add(c.id, power.EvClockGated, 1)
	}
	if c.count > 0 {
		c.meter.Add(c.id, power.EvROBOccupancy, c.count)
	}
}

func (c *Core) entry(seq int64) *robEntry {
	off := seq - c.headSeq
	return &c.rob[(c.head+int(off))%len(c.rob)]
}

func (c *Core) effWidth(knob, def int) int {
	if knob <= 0 || knob > def {
		return def
	}
	return knob
}
