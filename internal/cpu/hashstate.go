package cpu

import (
	"ptbsim/internal/ckpt"
	"ptbsim/internal/isa"
)

// HashState folds every mutable result-determining core field into h for
// checkpoint digests (DESIGN.md §14). Pools and prebuilt callbacks
// (cbFree, storeDrain, fetchFill) are excluded: recycled records carry no
// information once free. The field order is append-only.
func (c *Core) HashState(h *ckpt.Hasher) {
	h.WriteInt(c.id)

	// ROB ring, oldest to youngest.
	h.WriteInt(c.count)
	h.WriteI64(c.headSeq)
	h.WriteI64(c.nextSeq)
	for i := 0; i < c.count; i++ {
		e := &c.rob[(c.head+i)%len(c.rob)]
		hashInst(h, e.inst)
		h.WriteI64(e.seq)
		h.WriteInt(int(e.state))
		h.WriteBool(e.predicted)
		h.WriteI64(e.result)
		h.WriteInt(e.pendingDeps)
		h.WriteInt(len(e.waiters))
		for _, w := range e.waiters {
			h.WriteI64(w)
		}
		h.WriteI64(e.dispatchTick)
		h.WriteI64(e.doneTick)
		h.WriteInt(e.fuClass)
	}

	h.WriteInt(len(c.readyQ))
	for _, s := range c.readyQ {
		h.WriteI64(s)
	}
	h.WriteInt(len(c.inflight))
	for _, s := range c.inflight {
		h.WriteI64(s)
	}
	for _, f := range c.fuFree {
		h.WriteInt(f)
	}
	h.WriteInt(c.lsqCount)
	h.WriteInt(c.storeBuf)

	// Fetch pipe ring, oldest to youngest.
	h.WriteInt(c.fpLen)
	for i := 0; i < c.fpLen; i++ {
		e := &c.fpBuf[(c.fpHead+i)%c.fetchPipeCap]
		hashInst(h, e.inst)
		h.WriteBool(e.predicted)
		h.WriteI64(e.readyTick)
	}
	hashInst(h, c.pendingInst)
	h.WriteBool(c.hasPending)
	h.WriteU64(c.curFetchLine)
	h.WriteBool(c.icacheBusy)
	h.WriteBool(c.fetchStalled)
	h.WriteBool(c.wrongPath)
	h.WriteInt(c.wrongPathBuf)
	h.WriteBool(c.srcDone)
	h.WriteU64(c.fetchFillPC)

	h.WriteI64(c.tick)
	h.WriteF64(c.freqAcc)
	h.WriteF64(c.freq)
	h.WriteI64(c.stallTicks)
	h.WriteInt(c.fetchedTokens)
	h.WriteF64(c.tokenRate)

	c.bp.hashState(h)
	c.ptht.HashState(h)

	h.WriteI64(c.stats.Committed)
	h.WriteI64(c.stats.Ticks)
	h.WriteI64(c.stats.StallTicks)
	h.WriteI64(c.stats.SleepCycles)
	h.WriteI64(c.stats.Branches)
	h.WriteI64(c.stats.Mispredicts)
	h.WriteI64(c.stats.WrongPathFetch)
	h.WriteI64(c.stats.SerializeStalls)
	h.WriteI64(c.stats.ROBOccupancySum)
	h.WriteI64(c.stats.LoadCount)
	h.WriteI64(c.stats.StoreCount)
	h.WriteI64(c.stats.RMWCount)
}

func hashInst(h *ckpt.Hasher, in isa.Inst) {
	h.WriteU64(in.PC)
	h.WriteInt(int(in.Op))
	h.WriteU64(in.Addr)
	h.WriteBool(in.Taken)
	h.WriteU64(uint64(in.Dep1))
	h.WriteU64(uint64(in.Dep2))
	h.WriteBool(in.LongLat)
	h.WriteInt(int(in.SyncClass))
	h.WriteBool(in.Serialize)
}

func (b *gshare) hashState(h *ckpt.Hasher) {
	h.WriteU64(b.history)
	h.WriteI64(b.lookups)
	h.WriteI64(b.correct)
	h.WriteBytes(b.counters)
}
