package cpu

import (
	"sort"

	"ptbsim/internal/isa"
	"ptbsim/internal/power"
)

// This file implements the pipeline stages. step() runs them back to front
// so that resources freed by older instructions are available to younger
// ones on the same cycle.

// commit retires up to CommitWidth completed instructions from the ROB head.
func (c *Core) commit() int {
	n := 0
	for n < c.cfg.CommitWidth && c.count > 0 {
		e := &c.rob[c.head]
		if e.state != stDone {
			break
		}
		inst := &e.inst

		if inst.Op == isa.OpStore {
			if c.storeBuf >= c.cfg.StoreBufSize {
				break // store buffer full: retry next cycle
			}
			c.storeBuf++
			c.mem.Write(c.id, inst.Addr, c.storeDrain)
		}
		if inst.Op.IsMem() {
			c.lsqCount--
		}

		// Power-token bookkeeping (§III.B): base tokens plus ROB residency.
		tokens := c.tm.BaseTokens(inst.Op, inst.LongLat) + int(c.tick-e.dispatchTick)
		c.ptht.Update(inst.PC, tokens)

		c.meter.Add(c.id, power.EvROBRead, 1)
		if inst.Op == isa.OpBranch {
			c.bp.update(inst.PC, inst.Taken, e.predicted)
		}
		if inst.Serialize {
			c.src.Resolve(e.result)
			c.fetchStalled = false
		}

		e.waiters = e.waiters[:0]
		c.head = (c.head + 1) % len(c.rob)
		c.headSeq++
		c.count--
		c.stats.Committed++
		n++
	}
	return n
}

// completeExecution finishes FU operations whose latency elapsed.
func (c *Core) completeExecution() {
	if len(c.inflight) == 0 {
		return
	}
	kept := c.inflight[:0]
	for _, seq := range c.inflight {
		e := c.entry(seq)
		if e.doneTick > c.tick {
			kept = append(kept, seq)
			continue
		}
		if e.fuClass >= 0 {
			c.fuFree[e.fuClass]++
			e.fuClass = -1
		}
		c.finish(e)
	}
	c.inflight = kept
}

// finish marks an entry completed and wakes its dependents.
func (c *Core) finish(e *robEntry) {
	e.state = stDone
	c.meter.Add(c.id, power.EvRegWrite, 1)

	if e.inst.Op == isa.OpBranch {
		c.stats.Branches++
		if e.predicted != e.inst.Taken {
			// Misprediction resolved: stop phantom fetch; the front end
			// redirects and refills naturally through the fetch pipe.
			c.stats.Mispredicts++
			c.wrongPath = false
			c.wrongPathBuf = 0
		}
	}

	for _, w := range e.waiters {
		if w < c.headSeq {
			continue
		}
		d := c.entry(w)
		d.pendingDeps--
		if d.pendingDeps == 0 && d.state == stWaiting {
			d.state = stReady
			c.pushReady(w)
		}
	}
	e.waiters = e.waiters[:0]
}

func (c *Core) pushReady(seq int64) {
	// Keep readyQ sorted ascending; wakeups arrive roughly in order so the
	// insertion point is near the end.
	i := sort.Search(len(c.readyQ), func(i int) bool { return c.readyQ[i] >= seq })
	c.readyQ = append(c.readyQ, 0)
	copy(c.readyQ[i+1:], c.readyQ[i:])
	c.readyQ[i] = seq
}

// issue selects up to IssueWidth ready instructions, oldest first.
func (c *Core) issue() int {
	width := c.effWidth(c.knobs.IssueWidth, c.cfg.IssueWidth)
	issued := 0
	kept := c.readyQ[:0]
	for qi, seq := range c.readyQ {
		if issued >= width {
			kept = append(kept, c.readyQ[qi:]...)
			break
		}
		e := c.entry(seq)
		if !c.tryIssue(e) {
			kept = append(kept, seq)
			continue
		}
		issued++
	}
	c.readyQ = kept
	return issued
}

// tryIssue starts execution of a ready entry; false means a structural
// hazard (or an atomic not yet at the head) kept it queued.
func (c *Core) tryIssue(e *robEntry) bool {
	inst := &e.inst
	switch inst.Op {
	case isa.OpLoad:
		c.issueCommon(e, fuIntAlu, false) // AGU energy, no FU slot held
		e.state = stExecuting
		c.stats.LoadCount++
		c.mem.Read(c.id, inst.Addr, c.memCallback(e.seq, false))
		return true
	case isa.OpStore:
		// Address generation only; data is written at commit.
		c.issueCommon(e, fuIntAlu, false)
		e.state = stExecuting
		e.doneTick = c.tick + 1
		e.fuClass = -1
		c.inflight = append(c.inflight, e.seq)
		c.stats.StoreCount++
		return true
	case isa.OpAtomicRMW:
		// Atomics execute at the ROB head only (they are not speculated
		// past), acquiring exclusive ownership of their line.
		if e.seq != c.headSeq {
			return false
		}
		c.issueCommon(e, fuIntAlu, false)
		e.state = stExecuting
		c.stats.RMWCount++
		c.mem.Write(c.id, inst.Addr, c.memCallback(e.seq, true))
		return true
	default:
		cls := fuClassOf(inst.Op)
		if cls >= 0 {
			if c.fuFree[cls] == 0 {
				return false
			}
			c.fuFree[cls]--
		}
		c.issueCommon(e, cls, true)
		e.state = stExecuting
		e.fuClass = cls
		lat := int64(1)
		if cls >= 0 {
			lat = c.fuLat[cls]
			if inst.LongLat {
				lat = int64(c.cfg.LatLong)
			}
		}
		e.doneTick = c.tick + lat
		c.inflight = append(c.inflight, e.seq)
		return true
	}
}

// issueCommon charges the issue-stage energy.
func (c *Core) issueCommon(e *robEntry, cls int, holdsFU bool) {
	c.meter.Add(c.id, power.EvIQWakeup, 1)
	c.meter.Add(c.id, power.EvRegRead, 2)
	switch cls {
	case fuIntAlu:
		c.meter.Add(c.id, power.EvFUIntAlu, 1)
	case fuIntMul:
		c.meter.Add(c.id, power.EvFUIntMul, 1)
	case fuFPAlu:
		c.meter.Add(c.id, power.EvFUFPAlu, 1)
	case fuFPMul:
		c.meter.Add(c.id, power.EvFUFPMul, 1)
	}
	_ = holdsFU
}

func fuClassOf(op isa.Op) int {
	switch op {
	case isa.OpIntAlu, isa.OpBranch, isa.OpNop:
		return fuIntAlu
	case isa.OpIntMul:
		return fuIntMul
	case isa.OpFPAlu:
		return fuFPAlu
	case isa.OpFPMul:
		return fuFPMul
	}
	return -1
}

// loadDone completes a load when its data arrives from the memory system.
func (c *Core) loadDone(seq int64) {
	if seq < c.headSeq {
		return // already committed: cannot happen for loads, defensive
	}
	e := c.entry(seq)
	if e.inst.SyncOp != isa.SyncNone {
		e.result = c.sync.Eval(c.id, e.inst)
	}
	c.meter.Add(c.id, power.EvLSQ, 1)
	c.finish(e)
}

// rmwDone completes an atomic once exclusive ownership is held; the logical
// sync effect is evaluated at this instant.
func (c *Core) rmwDone(seq int64) {
	e := c.entry(seq)
	e.result = c.sync.Eval(c.id, e.inst)
	c.meter.Add(c.id, power.EvLSQ, 1)
	c.finish(e)
}

// dispatch moves instructions from the front-end pipe into the ROB.
func (c *Core) dispatch() int {
	width := c.effWidth(c.knobs.DecodeWidth, c.cfg.DecodeWidth)
	n := 0
	for n < width && c.fpLen > 0 && c.count < len(c.rob) {
		f := c.fpBuf[c.fpHead]
		if f.readyTick > c.tick {
			break
		}
		if f.inst.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize {
			break
		}
		c.fpHead++
		if c.fpHead == len(c.fpBuf) {
			c.fpHead = 0
		}
		c.fpLen--

		seq := c.nextSeq
		c.nextSeq++
		idx := (c.head + c.count) % len(c.rob)
		c.count++
		e := &c.rob[idx]
		// Keep the entry's waiters backing array across reuse.
		w := e.waiters[:0]
		*e = robEntry{
			inst:         f.inst,
			seq:          seq,
			state:        stWaiting,
			predicted:    f.predicted,
			waiters:      w,
			dispatchTick: c.tick,
			fuClass:      -1,
		}

		c.meter.Add(c.id, power.EvDecode, 1)
		c.meter.Add(c.id, power.EvRename, 1)
		c.meter.Add(c.id, power.EvIQWrite, 1)
		c.meter.Add(c.id, power.EvROBWrite, 1)
		if f.inst.Op.IsMem() {
			c.meter.Add(c.id, power.EvLSQ, 1)
			c.lsqCount++
		}

		// Register data dependencies.
		for _, d := range [2]uint16{f.inst.Dep1, f.inst.Dep2} {
			if d == 0 {
				continue
			}
			depSeq := seq - int64(d)
			if depSeq < c.headSeq {
				continue // already committed
			}
			dep := c.entry(depSeq)
			if dep.state == stDone {
				continue
			}
			dep.waiters = append(dep.waiters, seq)
			e.pendingDeps++
		}
		if e.pendingDeps == 0 {
			e.state = stReady
			c.pushReady(seq)
		}
		n++
	}
	return n
}

// fetch consumes the instruction source, modeling I-cache access, branch
// prediction, serialize stalls and wrong-path phantom fetch.
func (c *Core) fetch() int {
	if c.srcDone && !c.hasPending {
		return 0
	}
	if c.knobs.FetchGate {
		return 0
	}
	if c.fetchStalled {
		c.stats.SerializeStalls++
		return 0
	}
	if c.icacheBusy {
		return 0
	}
	width := c.effWidth(c.knobs.FetchWidth, c.cfg.FetchWidth)
	if c.wrongPath {
		// Phantom wrong-path fetch: burns front-end energy, produces no
		// instructions (they would be squashed at resolution). The fetch
		// queue bounds the damage — once it would be full of wrong-path
		// instructions the front end stalls, as in a real machine.
		if c.wrongPathBuf >= c.fetchPipeCap-c.fpLen {
			return 0
		}
		c.wrongPathBuf += width
		c.meter.Add(c.id, power.EvFetch, width)
		c.meter.Add(c.id, power.EvDecode, width)
		c.meter.Add(c.id, power.EvL1I, 1)
		c.stats.WrongPathFetch += int64(width)
		return width
	}

	n := 0
	for n < width && c.fpLen < c.fetchPipeCap {
		inst, ok := c.nextInst()
		if !ok {
			break
		}
		line := inst.PC &^ 63
		if line != c.curFetchLine {
			if !c.mem.FetchProbe(c.id, inst.PC) {
				// I-miss: stall fetch until the fill arrives.
				c.icacheBusy = true
				c.pendingInst = inst
				c.hasPending = true
				c.fetchFillPC = inst.PC
				c.mem.FetchMiss(c.id, inst.PC, c.fetchFill)
				break
			}
			c.curFetchLine = line
		}

		c.meter.Add(c.id, power.EvFetch, 1)
		c.fetchedTokens += c.ptht.Lookup(inst.PC, c.tm.BaseTokens(inst.Op, inst.LongLat))

		predicted := inst.Taken
		if inst.Op == isa.OpBranch {
			predicted = c.bp.predict(inst.PC)
		}
		tail := c.fpHead + c.fpLen
		if tail >= len(c.fpBuf) {
			tail -= len(c.fpBuf)
		}
		c.fpBuf[tail] = fetchedInst{
			inst:      inst,
			predicted: predicted,
			readyTick: c.tick + int64(c.cfg.FrontendDepth),
		}
		c.fpLen++
		n++

		if inst.Serialize {
			c.fetchStalled = true
			break
		}
		if inst.Op == isa.OpBranch && predicted != inst.Taken {
			c.wrongPath = true
			break
		}
	}
	return n
}

// nextInst returns the pending instruction left over from an I-miss, or
// pulls the next one from the source.
func (c *Core) nextInst() (isa.Inst, bool) {
	if c.hasPending {
		c.hasPending = false
		return c.pendingInst, true
	}
	if c.srcDone {
		return isa.Inst{}, false
	}
	inst, ok := c.src.Next()
	if !ok {
		c.srcDone = true
		return isa.Inst{}, false
	}
	return inst, true
}
