package cpu

import "ptbsim/internal/power"

// gshare is the branch predictor of Table 1: a 64KB gshare with 16 bits of
// global history (2^16 two-bit saturating counters plus the history
// register).
type gshare struct {
	counters []uint8
	history  uint64
	bits     uint
	mask     uint64

	meter *power.Meter
	core  int

	lookups, correct int64
}

func newGshare(bits uint, meter *power.Meter, core int) *gshare {
	g := &gshare{
		counters: make([]uint8, 1<<bits),
		bits:     bits,
		mask:     (1 << bits) - 1,
		meter:    meter,
		core:     core,
	}
	// Initialize to weakly taken: loop branches train instantly.
	for i := range g.counters {
		g.counters[i] = 2
	}
	return g
}

func (g *gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// predict returns the prediction for the branch at pc and charges the
// lookup energy.
func (g *gshare) predict(pc uint64) bool {
	if g.meter != nil {
		g.meter.Add(g.core, power.EvBpred, 1)
	}
	g.lookups++
	return g.counters[g.index(pc)] >= 2
}

// update trains the predictor with the actual outcome and shifts the
// history. The simulator resolves predictions at fetch (the correct-path
// stream is known), so history is always the true history — equivalent to a
// machine with perfect history repair on misprediction.
func (g *gshare) update(pc uint64, taken, predicted bool) {
	if g.meter != nil {
		g.meter.Add(g.core, power.EvBpred, 1)
	}
	if taken == predicted {
		g.correct++
	}
	i := g.index(pc)
	c := g.counters[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	g.counters[i] = c
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
}

// Accuracy returns the fraction of correct predictions so far.
func (g *gshare) Accuracy() float64 {
	if g.lookups == 0 {
		return 1
	}
	return float64(g.correct) / float64(g.lookups)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
