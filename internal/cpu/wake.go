package cpu

import (
	"math"

	"ptbsim/internal/power"
)

// This file is the core's half of the simulator's idle skip-ahead: a
// quiescence classifier (NextWake) and an exact cheap replay of a quiescent
// tick (TickInert). The contract is strict bit-equivalence: whenever
// NextWake returns a nonzero delta, calling TickInert for the next global
// cycle performs exactly the state updates, counter increments and power
// meter events — in the same order, with the same floating-point
// expressions — that Tick would have performed. The simulator re-evaluates
// NextWake every cycle, so a controller flipping a knob (sleep gate, fetch
// gate, width throttles) or an event-queue callback waking the pipeline is
// picked up before the next tick; NextWake only ever has to be right about
// one cycle at a time, and anything it cannot prove quiescent reports
// WakeNow.

// WakeReason classifies why a core is (or is not) quiescent this cycle.
type WakeReason uint8

const (
	// WakeNow means the core is not provably quiescent: it must be ticked
	// normally. This is the conservative default for any pipeline state the
	// classifier does not recognize.
	WakeNow WakeReason = iota
	// WakeDone: the thread finished and the pipeline drained for good.
	WakeDone
	// WakeSleep: the spin-gating controller froze the core this cycle.
	WakeSleep
	// WakeThrottle: frequency scaling skips this core-domain tick entirely.
	WakeThrottle
	// WakeTransition: the core is stalled in a DVFS mode transition.
	WakeTransition
	// WakeStall: the pipeline is frozen waiting on something external — a
	// memory reply, an I-cache fill, a serializing instruction, or front-end
	// drain latency.
	WakeStall
)

// String names the reason for traces and tests.
func (r WakeReason) String() string {
	switch r {
	case WakeNow:
		return "now"
	case WakeDone:
		return "done"
	case WakeSleep:
		return "sleep"
	case WakeThrottle:
		return "throttle"
	case WakeTransition:
		return "transition"
	case WakeStall:
		return "stall"
	}
	return "wake?"
}

// WakeNever is the delta reported when nothing internal will ever wake the
// core — only an external event (memory reply, knob change) can.
const WakeNever = int64(math.MaxInt64)

// NextWake reports how many upcoming global cycles are provably quiescent
// for this core, with the reason. A return of 0 (WakeNow) means the next
// Tick may do real work and must run normally. A return of d > 0 guarantees
// the next d Ticks are exactly replayed by TickInert provided no external
// input changes — controller knobs are rewritten every cycle and event
// callbacks can touch the pipeline, so callers must re-evaluate NextWake
// each cycle and treat d as "at least this cycle".
func (c *Core) NextWake() (int64, WakeReason) {
	// The branch order mirrors Tick: Done, sleep gate, frequency skip, DVFS
	// stall, then the pipeline-frozen analysis.
	if c.Done() {
		return WakeNever, WakeDone
	}
	if c.knobs.SleepGate {
		return 1, WakeSleep
	}
	if c.freqAcc+c.freq < 1 {
		return 1, WakeThrottle
	}
	if c.stallTicks > 0 {
		return c.stallTicks, WakeTransition
	}
	// The pipeline will step. It is quiescent only if no stage can move:
	//
	//   - completeExecution: nothing on a functional unit (an in-flight op
	//     would also switch the clock tree to active);
	//   - issue: the ready queue is empty;
	//   - commit: the ROB head (if any) is not completed — a blocked head is
	//     re-polled with no state change;
	//   - dispatch: the front-end pipe is empty, the ROB or LSQ is full, or
	//     the head fetched instruction is still in front-end flight
	//     (readyTick beyond the next tick);
	//   - fetch: stalled in a way that provably performs no work (see
	//     below) — the only permitted side effect is the SerializeStalls
	//     counter, which TickInert replays.
	if len(c.inflight) != 0 || len(c.readyQ) != 0 {
		return 0, WakeNow
	}
	if c.count > 0 && c.rob[c.head].state == stDone {
		return 0, WakeNow
	}
	wake := WakeNever
	if c.fpLen > 0 && c.count < len(c.rob) {
		f := &c.fpBuf[c.fpHead]
		if !(f.inst.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize) {
			if f.readyTick <= c.tick+1 {
				return 0, WakeNow // dispatch moves next tick
			}
			// Front-end drain: quiescent until the head entry matures.
			wake = f.readyTick - c.tick - 1
		}
	}
	// fetch() side effects, in its own order of checks: drained source and
	// fetch gate do nothing; a serialize stall only counts a stat; a busy
	// I-cache does nothing; wrong-path phantom fetch is quiescent only once
	// its buffer is exhausted; normal fetch is quiescent only with a full
	// pipe (the loop body never runs, so no instruction is consumed).
	switch {
	case c.srcDone && !c.hasPending:
	case c.knobs.FetchGate:
	case c.fetchStalled:
	case c.icacheBusy:
	case c.wrongPath:
		if c.wrongPathBuf < c.fetchPipeCap-c.fpLen {
			return 0, WakeNow
		}
	default:
		if c.fpLen < c.fetchPipeCap {
			return 0, WakeNow
		}
	}
	return wake, WakeStall
}

// TickInert advances the core by one global cycle on the fast path. It must
// only be called when NextWake reported a nonzero delta for this cycle; it
// then replays Tick exactly: same counters, same meter events, same
// floating-point updates in the same order — minus the pipeline walk that a
// quiescent cycle provably reduces to nothing.
func (c *Core) TickInert() {
	c.fetchedTokens = 0
	if c.Done() {
		c.tokenRate = 0
		return
	}
	if c.knobs.SleepGate {
		c.tokenRate *= 7.0 / 8
		c.stats.SleepCycles++
		return
	}
	c.freqAcc += c.freq
	if c.freqAcc < 1 {
		c.tokenRate *= 7.0 / 8
		return
	}
	c.freqAcc--
	if c.stallTicks > 0 {
		c.stallTicks--
		c.stats.StallTicks++
		c.meter.Add(c.id, power.EvClockGated, 1)
		c.tokenRate += (float64(c.fetchedTokens) - c.tokenRate) / 8
		return
	}
	// step() on a frozen pipeline: the tick advances, occupancy accrues, the
	// serialize-stall counter ticks if fetch is parked on a serializing
	// instruction, the clock tree is gated, and ROB residency is charged.
	c.tick++
	c.stats.Ticks++
	c.stats.ROBOccupancySum += int64(c.count)
	if !(c.srcDone && !c.hasPending) && !c.knobs.FetchGate && c.fetchStalled {
		c.stats.SerializeStalls++
	}
	c.meter.Add(c.id, power.EvClockGated, 1)
	if c.count > 0 {
		c.meter.Add(c.id, power.EvROBOccupancy, c.count)
	}
	c.tokenRate += (float64(c.fetchedTokens) - c.tokenRate) / 8
}
