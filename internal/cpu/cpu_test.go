package cpu

import (
	"testing"

	"ptbsim/internal/eventq"
	"ptbsim/internal/isa"
	"ptbsim/internal/power"
)

// fakeMem is a fixed-latency memory system for unit tests.
type fakeMem struct {
	q        *eventq.Queue
	loadLat  int64
	storeLat int64
	icached  bool // true = all instruction fetches hit
	reads    int
	writes   int
}

func (m *fakeMem) Read(core int, addr uint64, done func()) {
	m.reads++
	m.q.After(m.loadLat, done)
}

func (m *fakeMem) Write(core int, addr uint64, done func()) {
	m.writes++
	m.q.After(m.storeLat, done)
}

func (m *fakeMem) FetchProbe(core int, addr uint64) bool { return m.icached }

func (m *fakeMem) FetchMiss(core int, addr uint64, done func()) {
	m.q.After(20, done)
}

// sliceSource feeds a fixed instruction slice.
type sliceSource struct {
	insts    []isa.Inst
	pos      int
	resolved []int64
}

func (s *sliceSource) Next() (isa.Inst, bool) {
	if s.pos >= len(s.insts) {
		return isa.Inst{}, false
	}
	i := s.insts[s.pos]
	s.pos++
	return i, true
}

func (s *sliceSource) Resolve(r int64) { s.resolved = append(s.resolved, r) }

// fixedSync returns a constant for every sync evaluation.
type fixedSync struct{ val int64 }

func (f fixedSync) Eval(core int, inst isa.Inst) int64 { return f.val }

type testRig struct {
	q    *eventq.Queue
	m    *power.Meter
	mem  *fakeMem
	core *Core
	src  *sliceSource
}

func newTestRig(insts []isa.Inst) *testRig {
	q := &eventq.Queue{}
	m := power.NewMeter(1)
	mem := &fakeMem{q: q, loadLat: 2, storeLat: 2, icached: true}
	src := &sliceSource{insts: insts}
	tm := power.NewTokenModel()
	core := New(0, DefaultConfig(), m, tm, mem, fixedSync{1}, src)
	return &testRig{q: q, m: m, mem: mem, core: core, src: src}
}

// runUntilDone ticks the core until it drains or the cycle budget runs out.
func (r *testRig) runUntilDone(t *testing.T, limit int64) int64 {
	t.Helper()
	for cyc := int64(1); cyc <= limit; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
		if r.core.Done() {
			return cyc
		}
	}
	t.Fatalf("core did not finish within %d cycles (committed %d)", limit, r.core.Stats().Committed)
	return limit
}

func aluStream(n int, dep uint16) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(0x1000 + i*4), Op: isa.OpIntAlu, Dep1: dep}
	}
	return insts
}

func TestALUStreamThroughput(t *testing.T) {
	const n = 4000
	r := newTestRig(aluStream(n, 0))
	cycles := r.runUntilDone(t, 100000)
	ipc := float64(n) / float64(cycles)
	if ipc < 2.0 {
		t.Fatalf("independent ALU stream IPC = %.2f, want >= 2 (4-wide core)", ipc)
	}
	if got := r.core.Stats().Committed; got != n {
		t.Fatalf("committed %d of %d", got, n)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	const n = 2000
	r := newTestRig(aluStream(n, 1)) // each inst depends on the previous
	cycles := r.runUntilDone(t, 100000)
	ipc := float64(n) / float64(cycles)
	if ipc > 1.1 {
		t.Fatalf("serial chain IPC = %.2f, want ~1", ipc)
	}
	if ipc < 0.5 {
		t.Fatalf("serial chain IPC = %.2f, unexpectedly slow", ipc)
	}
}

func TestLongLatencyOps(t *testing.T) {
	// A chain of dependent FP multiplies runs at 1/latency IPC.
	const n = 500
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(0x2000 + i*4), Op: isa.OpFPMul, Dep1: 1}
	}
	r := newTestRig(insts)
	cycles := r.runUntilDone(t, 100000)
	perInst := float64(cycles) / float64(n)
	if perInst < 3.5 || perInst > 6 {
		t.Fatalf("dependent FPMul cost %.2f cycles/inst, want ~4", perInst)
	}
}

func TestLoadsIssueAndComplete(t *testing.T) {
	const n = 600
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(0x3000 + i*4), Op: isa.OpLoad, Addr: uint64(0x100000 + i*64)}
	}
	r := newTestRig(insts)
	r.runUntilDone(t, 100000)
	if r.mem.reads != n {
		t.Fatalf("issued %d loads, want %d", r.mem.reads, n)
	}
}

func TestStoresDrainThroughBuffer(t *testing.T) {
	const n = 300
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(0x4000 + i*4), Op: isa.OpStore, Addr: uint64(0x200000 + i*64)}
	}
	r := newTestRig(insts)
	r.runUntilDone(t, 100000)
	if r.mem.writes != n {
		t.Fatalf("drained %d stores, want %d", r.mem.writes, n)
	}
}

func TestBranchMispredictStallsFetch(t *testing.T) {
	// Alternating-taken branches defeat the 2-bit counters badly enough to
	// produce a measurable mispredict count and slowdown vs. always-taken.
	mk := func(pattern func(i int) bool) []isa.Inst {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			if i%2 == 0 {
				insts[i] = isa.Inst{PC: uint64(0x5000 + i*4), Op: isa.OpIntAlu}
			} else {
				insts[i] = isa.Inst{PC: uint64(0x5000 + i*4), Op: isa.OpBranch, Taken: pattern(i)}
			}
		}
		return insts
	}
	rSteady := newTestRig(mk(func(i int) bool { return true }))
	cSteady := rSteady.runUntilDone(t, 200000)

	// A pseudo-random pattern that gshare cannot fully learn.
	rHard := newTestRig(mk(func(i int) bool { return (i*2654435761)>>13&1 == 1 }))
	cHard := rHard.runUntilDone(t, 400000)

	if rSteady.core.Stats().Mispredicts > rHard.core.Stats().Mispredicts {
		t.Fatalf("steady pattern mispredicted more (%d) than hard pattern (%d)",
			rSteady.core.Stats().Mispredicts, rHard.core.Stats().Mispredicts)
	}
	if cHard <= cSteady {
		t.Fatalf("hard branch pattern (%d cycles) not slower than steady (%d)", cHard, cSteady)
	}
	if rHard.core.Stats().WrongPathFetch == 0 {
		t.Fatal("no wrong-path fetch energy recorded despite mispredictions")
	}
}

func TestSerializeResolvesToSource(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x100, Op: isa.OpIntAlu},
		{PC: 0x104, Op: isa.OpAtomicRMW, Addr: 0x9000, Serialize: true, SyncOp: isa.SyncLockTry},
		{PC: 0x108, Op: isa.OpIntAlu},
	}
	r := newTestRig(insts)
	r.runUntilDone(t, 10000)
	if len(r.src.resolved) != 1 || r.src.resolved[0] != 1 {
		t.Fatalf("resolved = %v, want [1]", r.src.resolved)
	}
	if r.core.Stats().RMWCount != 1 {
		t.Fatalf("RMW count = %d", r.core.Stats().RMWCount)
	}
	if r.core.Stats().SerializeStalls == 0 {
		t.Fatal("no serialize stall cycles recorded")
	}
}

func TestSpinLoadEvaluatesSync(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x200, Op: isa.OpLoad, Addr: 0x9000, Serialize: true, SyncOp: isa.SyncSpinLock},
	}
	r := newTestRig(insts)
	r.runUntilDone(t, 10000)
	if len(r.src.resolved) != 1 || r.src.resolved[0] != 1 {
		t.Fatalf("resolved = %v, want [1]", r.src.resolved)
	}
}

func TestFrequencyScalingSlowsCore(t *testing.T) {
	full := newTestRig(aluStream(2000, 0))
	cFull := full.runUntilDone(t, 200000)

	slow := newTestRig(aluStream(2000, 0))
	slow.core.SetSpeed(0.5, 0)
	cSlow := slow.runUntilDone(t, 400000)

	ratio := float64(cSlow) / float64(cFull)
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("half-frequency runtime ratio = %.2f, want ~2", ratio)
	}
}

func TestDVFSTransitionStalls(t *testing.T) {
	r := newTestRig(aluStream(100, 0))
	r.core.SetSpeed(0.9, 50)
	r.runUntilDone(t, 10000)
	if r.core.Stats().StallTicks != 50 {
		t.Fatalf("transition stalls = %d, want 50", r.core.Stats().StallTicks)
	}
}

func TestFetchGateBlocksProgress(t *testing.T) {
	r := newTestRig(aluStream(100, 0))
	r.core.Knobs().FetchGate = true
	for cyc := int64(1); cyc <= 500; cyc++ {
		r.q.RunUntil(cyc)
		r.core.Tick()
	}
	if got := r.core.Stats().Committed; got != 0 {
		t.Fatalf("committed %d with fetch gated", got)
	}
	r.core.Knobs().FetchGate = false
	r.runUntilDone(t, 10000)
	if got := r.core.Stats().Committed; got != 100 {
		t.Fatalf("committed %d after ungating, want 100", got)
	}
}

func TestIssueThrottleLowersIPC(t *testing.T) {
	fast := newTestRig(aluStream(3000, 0))
	cFast := fast.runUntilDone(t, 200000)

	throttled := newTestRig(aluStream(3000, 0))
	throttled.core.Knobs().IssueWidth = 1
	throttled.core.Knobs().FetchWidth = 1
	cThrottled := throttled.runUntilDone(t, 400000)

	if float64(cThrottled) < 2*float64(cFast) {
		t.Fatalf("width-1 throttle: %d cycles vs %d unthrottled; expected >= 2x slower",
			cThrottled, cFast)
	}
}

func TestPTHTLearnsCosts(t *testing.T) {
	// Re-executing the same PCs must populate the PTHT with positive costs.
	insts := aluStream(64, 0)
	// Repeat the same 64 PCs 10 times.
	var all []isa.Inst
	for rep := 0; rep < 10; rep++ {
		all = append(all, insts...)
	}
	r := newTestRig(all)
	r.runUntilDone(t, 100000)
	got := r.core.PTHT().Lookup(0x1000, 0)
	if got <= 0 {
		t.Fatalf("PTHT entry for hot PC = %d, want > 0", got)
	}
	// The fetched-token estimate should have been non-zero at some point;
	// check the PTHT access count as a proxy for per-fetch estimation.
	if r.m.Count(0, power.EvPTHT) == 0 {
		t.Fatal("PTHT never accessed")
	}
}

func TestICacheMissStallsFetch(t *testing.T) {
	r := newTestRig(aluStream(400, 0))
	r.mem.icached = false // every new line misses
	cycles := r.runUntilDone(t, 200000)
	// 400 insts on 16-inst lines = 25 line fills at 20 cycles each; runtime
	// must reflect the stalls.
	if cycles < 400 {
		t.Fatalf("runtime %d cycles too fast for an I-starved core", cycles)
	}
}

func TestEnergyFloorWhenIdle(t *testing.T) {
	r := newTestRig(nil) // empty program
	q := r.q
	dst := make([]float64, 1)
	// First tick discovers the source is exhausted (one gated-clock cycle).
	q.RunUntil(1)
	r.core.Tick()
	r.m.EndCycle(dst)
	if !r.core.Done() {
		t.Fatal("core with empty source not done after first tick")
	}
	// Thereafter a finished core consumes nothing from Tick (leakage is
	// charged by the system loop, not the core).
	q.RunUntil(2)
	r.core.Tick()
	r.m.EndCycle(dst)
	if dst[0] != 0 {
		t.Fatalf("finished core consumed %v pJ in Tick", dst[0])
	}
}

func TestROBOccupancyBounded(t *testing.T) {
	// Loads with huge latency fill the ROB; occupancy must never exceed it.
	mem := &fakeMem{loadLat: 5000, storeLat: 2, icached: true}
	q := &eventq.Queue{}
	mem.q = q
	insts := make([]isa.Inst, 600)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(0x7000 + i*4), Op: isa.OpLoad, Addr: uint64(0x300000 + i*64)}
	}
	src := &sliceSource{insts: insts}
	m := power.NewMeter(1)
	core := New(0, DefaultConfig(), m, power.NewTokenModel(), mem, fixedSync{0}, src)
	for cyc := int64(1); cyc <= 3000; cyc++ {
		q.RunUntil(cyc)
		core.Tick()
		if core.count > DefaultConfig().ROBSize {
			t.Fatalf("ROB occupancy %d exceeds capacity", core.count)
		}
	}
	// LSQ bound: at most LSQSize memory ops in flight.
	if core.lsqCount > DefaultConfig().LSQSize {
		t.Fatalf("LSQ occupancy %d exceeds capacity", core.lsqCount)
	}
}

func TestGshareTrainsOnLoop(t *testing.T) {
	g := newGshare(16, nil, 0)
	pc := uint64(0x800)
	correct := 0
	for i := 0; i < 1000; i++ {
		taken := true // loop branch
		p := g.predict(pc)
		if p == taken {
			correct++
		}
		g.update(pc, taken, p)
	}
	if correct < 990 {
		t.Fatalf("gshare got %d/1000 on a pure loop branch", correct)
	}
	if g.Accuracy() < 0.98 {
		t.Fatalf("accuracy %.3f", g.Accuracy())
	}
}
