package cpu

import (
	"math"
	"testing"

	"ptbsim/internal/isa"
	"ptbsim/internal/power"
)

// mixedStream builds a deterministic workload that drives the core through
// every quiescence class: long-latency loads (memory stalls), dependent ALU
// chains, stores (store-buffer drain), mispredicting branches (wrong-path
// phantom fetch), long-latency FP, and serializing atomics (fetch stalls).
func mixedStream(n int) []isa.Inst {
	insts := make([]isa.Inst, 0, n)
	for i := 0; len(insts) < n; i++ {
		pc := uint64(0x4000 + len(insts)*4)
		switch i % 11 {
		case 0:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpLoad, Addr: uint64(0xA000 + i*64)})
		case 1:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpIntAlu, Dep1: 1})
		case 2:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpStore, Addr: uint64(0xB000 + i*64)})
		case 3:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpBranch, Taken: i%3 == 0})
		case 4:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpFPMul, LongLat: i%5 == 0, Dep1: 2})
		case 5:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpAtomicRMW, Addr: 0xC000,
				Serialize: true, SyncOp: isa.SyncLockTry})
		default:
			insts = append(insts, isa.Inst{PC: pc, Op: isa.OpIntAlu})
		}
	}
	return insts
}

// runRig drives a rig to completion. When useFast is true it runs the
// simulator's skip-ahead protocol: each cycle, consult NextWake before
// delivering events; if the core is provably quiescent and no event is due,
// replay the cycle with TickInert instead of Tick. Returns the completion
// cycle and how many cycles took the fast path.
func runRig(t *testing.T, r *testRig, useFast bool, limit int64) (int64, int64) {
	t.Helper()
	fastCycles := int64(0)
	for cyc := int64(1); cyc <= limit; cyc++ {
		fast := false
		if useFast {
			delta, _ := r.core.NextWake()
			fast = delta > 0 && r.q.NextDue() > cyc
		}
		r.q.RunUntil(cyc)
		if fast {
			r.core.TickInert()
			fastCycles++
		} else {
			r.core.Tick()
		}
		if r.core.Done() && r.q.Empty() {
			return cyc, fastCycles
		}
	}
	t.Fatalf("core did not finish within %d cycles (committed %d)\n%s",
		limit, r.core.Stats().Committed, r.core.DebugString())
	return limit, fastCycles
}

// TestTickInertMatchesTick is the core-level soundness proof backing the
// simulator's skip-ahead: over a workload exercising every stall class, the
// fast-path run must be bit-identical to the plain run — same completion
// cycle, same counters, same per-kind energy and event counts, same token
// rate — while actually taking the fast path a meaningful fraction of the
// time.
func TestTickInertMatchesTick(t *testing.T) {
	insts := mixedStream(4000)

	slow := newTestRig(insts)
	slow.mem.loadLat = 60
	slow.mem.storeLat = 40
	slowEnd, _ := runRig(t, slow, false, 400000)

	fastRig := newTestRig(insts)
	fastRig.mem.loadLat = 60
	fastRig.mem.storeLat = 40
	fastEnd, fastCycles := runRig(t, fastRig, true, 400000)

	if slowEnd != fastEnd {
		t.Fatalf("completion cycle diverged: slow=%d fast=%d", slowEnd, fastEnd)
	}
	if fastCycles == 0 {
		t.Fatal("fast path never taken: the test exercises nothing")
	}
	if slow.core.stats != fastRig.core.stats {
		t.Fatalf("stats diverged:\nslow %+v\nfast %+v", slow.core.stats, fastRig.core.stats)
	}
	if math.Float64bits(slow.core.tokenRate) != math.Float64bits(fastRig.core.tokenRate) {
		t.Fatalf("tokenRate diverged: slow=%x fast=%x",
			math.Float64bits(slow.core.tokenRate), math.Float64bits(fastRig.core.tokenRate))
	}
	for k := 0; k < power.NumEventKinds; k++ {
		kind := power.EventKind(k)
		if slow.m.Count(0, kind) != fastRig.m.Count(0, kind) {
			t.Errorf("event %v count diverged: slow=%d fast=%d",
				kind, slow.m.Count(0, kind), fastRig.m.Count(0, kind))
		}
		sp, fp := slow.m.KindPJ(0, kind), fastRig.m.KindPJ(0, kind)
		if math.Float64bits(sp) != math.Float64bits(fp) {
			t.Errorf("event %v energy diverged: slow=%x fast=%x",
				kind, math.Float64bits(sp), math.Float64bits(fp))
		}
	}
	t.Logf("fast path covered %d/%d cycles (%.0f%%)",
		fastCycles, fastEnd, 100*float64(fastCycles)/float64(fastEnd))
}

// TestTickInertMatchesTickThrottled repeats the equivalence under frequency
// scaling and DVFS transition stalls, which route through the throttle and
// transition branches of NextWake/TickInert.
func TestTickInertMatchesTickThrottled(t *testing.T) {
	insts := mixedStream(1500)

	run := func(useFast bool) (*testRig, int64) {
		r := newTestRig(insts)
		r.mem.loadLat = 30
		fastCycles := int64(0)
		speeds := []float64{1, 0.5, 0.25, 0.75, 1}
		for cyc := int64(1); cyc <= 400000; cyc++ {
			if cyc%1000 == 0 {
				r.core.SetSpeed(speeds[(cyc/1000)%int64(len(speeds))], 10)
			}
			fast := false
			if useFast {
				delta, _ := r.core.NextWake()
				fast = delta > 0 && r.q.NextDue() > cyc
			}
			r.q.RunUntil(cyc)
			if fast {
				r.core.TickInert()
				fastCycles++
			} else {
				r.core.Tick()
			}
			if r.core.Done() && r.q.Empty() {
				return r, fastCycles
			}
		}
		t.Fatalf("throttled core did not finish\n%s", r.core.DebugString())
		return nil, 0
	}

	slow, _ := run(false)
	fast, fastCycles := run(true)
	if fastCycles == 0 {
		t.Fatal("fast path never taken under throttling")
	}
	if slow.core.stats != fast.core.stats {
		t.Fatalf("stats diverged under throttling:\nslow %+v\nfast %+v", slow.core.stats, fast.core.stats)
	}
	if slow.m.TotalPJ(0) != fast.m.TotalPJ(0) {
		t.Fatalf("energy diverged under throttling: slow=%v fast=%v", slow.m.TotalPJ(0), fast.m.TotalPJ(0))
	}
}

// TestNextWakeReasons pins the classifier's reason codes for each
// quiescence class.
func TestNextWakeReasons(t *testing.T) {
	// Done core.
	r := newTestRig(aluStream(4, 0))
	r.runUntilDone(t, 1000)
	if d, reason := r.core.NextWake(); reason != WakeDone || d != WakeNever {
		t.Fatalf("done core: delta=%d reason=%v, want WakeNever/done", d, reason)
	}

	// Sleep-gated core.
	r = newTestRig(aluStream(64, 0))
	r.core.Knobs().SleepGate = true
	if d, reason := r.core.NextWake(); reason != WakeSleep || d != 1 {
		t.Fatalf("sleeping core: delta=%d reason=%v, want 1/sleep", d, reason)
	}
	r.core.Knobs().SleepGate = false

	// Frequency-throttled core: freq 0.25 skips 3 of 4 global cycles.
	r.core.SetSpeed(0.25, 0)
	if d, reason := r.core.NextWake(); reason != WakeThrottle || d != 1 {
		t.Fatalf("throttled core: delta=%d reason=%v, want 1/throttle", d, reason)
	}

	// DVFS transition stall.
	r = newTestRig(aluStream(64, 0))
	r.core.SetSpeed(0.5, 7)
	r.core.SetSpeed(1, 7) // freq changed twice: 14 stall ticks pending
	if d, reason := r.core.NextWake(); reason != WakeTransition || d != 14 {
		t.Fatalf("transitioning core: delta=%d reason=%v, want 14/transition", d, reason)
	}

	// An active core with work available must be conservative.
	r = newTestRig(aluStream(64, 0))
	if d, reason := r.core.NextWake(); reason != WakeNow || d != 0 {
		t.Fatalf("active core: delta=%d reason=%v, want 0/now", d, reason)
	}
}

// TestNextWakeConservative verifies the "unknown → wake now" default the
// hard way: whenever NextWake reports quiescence, a normal Tick from a
// cloned notion of the same cycle must behave exactly like TickInert. The
// mixed workload makes this sweep every stall class the classifier handles.
func TestNextWakeConservative(t *testing.T) {
	r := newTestRig(mixedStream(2000))
	r.mem.loadLat = 45
	checked := 0
	for cyc := int64(1); cyc <= 400000; cyc++ {
		delta, reason := r.core.NextWake()
		if delta < 0 {
			t.Fatalf("cycle %d: negative wake delta %d (%v)", cyc, delta, reason)
		}
		fast := delta > 0 && r.q.NextDue() > cyc
		r.q.RunUntil(cyc)
		if fast {
			// The claim under test: Tick on a quiescent cycle does not step
			// the pipeline (TickInert equivalence is covered bitwise above;
			// here we assert Tick agrees the cycle was inert).
			before := r.core.stats.Committed
			stepped := r.core.Tick()
			if stepped && r.core.stats.Committed != before {
				t.Fatalf("cycle %d: NextWake said quiescent (%v) but Tick committed work", cyc, reason)
			}
			checked++
		} else {
			r.core.Tick()
		}
		if r.core.Done() && r.q.Empty() {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no quiescent cycles observed")
	}
}
