// Package power implements the energy accounting substrate of the simulator
// and the paper's power-token machinery (§III.B):
//
//   - a per-event energy table with CACTI-like relative magnitudes for a
//     32nm, 0.9V, 3GHz core (the paper derived its scaling factors from
//     CACTI v5.1; absolute joules do not matter for the normalized results,
//     relative structure costs do),
//   - a Meter that accumulates per-core, per-cycle energy (ground truth used
//     for the AoPB and energy metrics),
//   - the power-token model: base token cost per instruction class, k-means
//     quantization into 8 groups, and the Power-Token History Table (PTHT)
//     that controllers use to *estimate* power without performance counters.
package power

import "fmt"

// EventKind enumerates every energy-consuming event the simulator models.
type EventKind uint8

const (
	// EvFetch is one instruction passing the fetch stage.
	EvFetch EventKind = iota
	// EvL1I is one L1 instruction-cache line read.
	EvL1I
	// EvBpred is one branch-predictor lookup or update.
	EvBpred
	// EvDecode is one instruction decoded.
	EvDecode
	// EvRename is one instruction renamed.
	EvRename
	// EvIQWrite is one issue-queue insertion.
	EvIQWrite
	// EvIQWakeup is one issue-queue wakeup/select broadcast.
	EvIQWakeup
	// EvRegRead is one physical register file read port access.
	EvRegRead
	// EvRegWrite is one physical register file write.
	EvRegWrite
	// EvFUIntAlu is one integer ALU operation.
	EvFUIntAlu
	// EvFUIntMul is one integer multiply operation.
	EvFUIntMul
	// EvFUFPAlu is one FP add/sub operation.
	EvFUFPAlu
	// EvFUFPMul is one FP multiply/divide operation.
	EvFUFPMul
	// EvROBWrite is one reorder-buffer allocation write.
	EvROBWrite
	// EvROBRead is one reorder-buffer read at commit.
	EvROBRead
	// EvROBOccupancy is one instruction resident in the ROB for one cycle.
	// This event defines the power-token unit (paper §III.B).
	EvROBOccupancy
	// EvLSQ is one load/store queue operation (insert, search or remove).
	EvLSQ
	// EvL1DRead is one L1 data-cache read.
	EvL1DRead
	// EvL1DWrite is one L1 data-cache write.
	EvL1DWrite
	// EvL2 is one L2 bank access (tag+data).
	EvL2
	// EvDir is one directory lookup/update at an L2 home bank.
	EvDir
	// EvNoCLink is one flit traversing one mesh link.
	EvNoCLink
	// EvNoCRouter is one flit traversing one router.
	EvNoCRouter
	// EvMem is one DRAM access (full cache line).
	EvMem
	// EvPTHT is one Power-Token History Table access.
	EvPTHT
	// EvPTBWire is one PTB load-balancer wire transfer (per core per
	// balancing round). Together with EvPTBLogic it charges the ~1% chip
	// power overhead the paper measured with XPower.
	EvPTBWire
	// EvPTBLogic is one PTB load-balancer arbitration operation.
	EvPTBLogic
	// EvClockActive is the core clock-tree energy for one active cycle.
	EvClockActive
	// EvClockGated is the residual clock/idle energy for one cycle in which
	// the core is stalled or frequency-gated, with clock gating enabled.
	EvClockGated
	// EvLeakage is the per-cycle leakage of one core tile (core + L1s +
	// L2 bank + router share). Charged every global cycle regardless of
	// activity; scales with supply voltage.
	EvLeakage
	// EvLeakageSleep replaces EvLeakage on cycles a core is sleep-gated:
	// power gating cuts most of the core's leakage, leaving the always-on
	// tile share (L2 bank, router, retention).
	EvLeakageSleep

	numEventKinds
)

// NumEventKinds is the number of modeled event kinds.
const NumEventKinds = int(numEventKinds)

var eventNames = [...]string{
	EvFetch:        "fetch",
	EvL1I:          "l1i",
	EvBpred:        "bpred",
	EvDecode:       "decode",
	EvRename:       "rename",
	EvIQWrite:      "iq-write",
	EvIQWakeup:     "iq-wakeup",
	EvRegRead:      "reg-read",
	EvRegWrite:     "reg-write",
	EvFUIntAlu:     "fu-ialu",
	EvFUIntMul:     "fu-imul",
	EvFUFPAlu:      "fu-falu",
	EvFUFPMul:      "fu-fmul",
	EvROBWrite:     "rob-write",
	EvROBRead:      "rob-read",
	EvROBOccupancy: "rob-occ",
	EvLSQ:          "lsq",
	EvL1DRead:      "l1d-read",
	EvL1DWrite:     "l1d-write",
	EvL2:           "l2",
	EvDir:          "dir",
	EvNoCLink:      "noc-link",
	EvNoCRouter:    "noc-router",
	EvMem:          "mem",
	EvPTHT:         "ptht",
	EvPTBWire:      "ptb-wire",
	EvPTBLogic:     "ptb-logic",
	EvClockActive:  "clock-active",
	EvClockGated:   "clock-gated",
	EvLeakage:      "leakage",
	EvLeakageSleep: "leakage-sleep",
}

// String returns a short name for the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// EnergyPJ is the nominal energy, in picojoules, of each event at full
// voltage (0.9V) and 32nm. The relative magnitudes follow CACTI-style
// structure costs: SRAM access energy grows with capacity and associativity,
// FP units cost more than integer units, off-chip DRAM dwarfs everything.
// The distribution is Wattch-style: the clock network is mostly folded
// into the per-access costs of the structures it feeds (each event below
// includes its clock share), leaving only a small always-on spine in
// EvClockActive. This matters for fidelity: it makes per-cycle power track
// instruction flow — which is what lets the paper's token estimate reach
// <1% error — and gives instruction-flow techniques (fetch/issue
// throttling) genuine power leverage.
var EnergyPJ = [NumEventKinds]float64{
	EvFetch:        35,
	EvL1I:          55,
	EvBpred:        18,
	EvDecode:       30,
	EvRename:       32,
	EvIQWrite:      38,
	EvIQWakeup:     50,
	EvRegRead:      28,
	EvRegWrite:     35,
	EvFUIntAlu:     40,
	EvFUIntMul:     90,
	EvFUFPAlu:      80,
	EvFUFPMul:      130,
	EvROBWrite:     30,
	EvROBRead:      25,
	EvROBOccupancy: 2, // the power-token unit
	EvLSQ:          30,
	EvL1DRead:      55,
	EvL1DWrite:     62,
	EvL2:           190,
	EvDir:          32,
	EvNoCLink:      8,
	EvNoCRouter:    5,
	EvMem:          2100,
	EvPTHT:         8,
	EvPTBWire:      9,
	EvPTBLogic:     12,
	EvClockActive:  120,
	EvClockGated:   35,
	EvLeakage:      120,
	EvLeakageSleep: 45,
}

// SustainedPeakFrac relates the structural worst-case cycle energy
// (PeakCoreCyclePJ) to the processor's rated peak ("the original processor
// peak power consumption" the paper budgets against). The structural bound
// assumes every port of every structure fires in the same cycle — several
// times beyond achievable ILP — while a rated (datasheet) peak reflects
// sustainable activity. The factor is calibrated so that a 50% budget
// reproduces the paper's Fig. 6 geometry: the budget line sits slightly
// above the mean busy-phase power (overage comes from activity spikes, as
// in the paper, not from a permanently impossible target) and ~15% above
// spinning power.
const SustainedPeakFrac = 0.37

// Component groups event kinds for energy-breakdown reporting.
func (k EventKind) Component() string {
	switch k {
	case EvFetch, EvL1I, EvBpred, EvDecode, EvRename:
		return "frontend"
	case EvIQWrite, EvIQWakeup, EvRegRead, EvRegWrite,
		EvFUIntAlu, EvFUIntMul, EvFUFPAlu, EvFUFPMul,
		EvROBWrite, EvROBRead, EvROBOccupancy, EvLSQ:
		return "execute"
	case EvL1DRead, EvL1DWrite, EvL2, EvDir:
		return "caches"
	case EvNoCLink, EvNoCRouter:
		return "noc"
	case EvMem:
		return "dram"
	case EvPTHT, EvPTBWire, EvPTBLogic:
		return "power-mgmt"
	case EvClockActive, EvClockGated:
		return "clock"
	case EvLeakage, EvLeakageSleep:
		return "leakage"
	}
	return "other"
}

// Components lists the breakdown group names in report order.
func Components() []string {
	return []string{"frontend", "execute", "caches", "noc", "dram",
		"power-mgmt", "clock", "leakage"}
}

// TokenUnitPJ is the energy of one power token: the joules consumed by one
// instruction staying in the ROB for one cycle (paper §III.B).
const TokenUnitPJ = 2.0

// Tokens converts an energy in picojoules to whole power tokens, rounding to
// nearest.
func Tokens(pj float64) int {
	t := int(pj/TokenUnitPJ + 0.5)
	if t < 0 {
		return 0
	}
	return t
}
