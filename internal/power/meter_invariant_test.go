package power

import (
	"strings"
	"testing"
)

// TestCheckConsistencyClean exercises the ledger identity across Add and
// EndCycle: the per-kind breakdown must always equal the running total plus
// the in-progress cycle energy.
func TestCheckConsistencyClean(t *testing.T) {
	m := NewMeter(2)
	per := make([]float64, 2)
	for cycle := 0; cycle < 50; cycle++ {
		m.Add(0, EvFetch, 3)
		m.Add(1, EvL1DRead, 1)
		m.Add(1, EvLeakage, 1)
		if cycle%3 == 0 {
			m.Add(0, EvFUFPMul, 2)
		}
		// Mid-cycle (before EndCycle) the identity must already hold.
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("cycle %d mid-cycle: %v", cycle, err)
		}
		m.EndCycle(per)
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("cycle %d after EndCycle: %v", cycle, err)
		}
	}
}

// TestCheckConsistencyDetectsSkew corrupts each side of the ledger and
// verifies the identity check reports the mismatch.
func TestCheckConsistencyDetectsSkew(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(m *Meter)
	}{
		{"total-inflated", func(m *Meter) { m.totalEnergy[0] += 7 }},
		{"kind-lost", func(m *Meter) { m.byKind[1*NumEventKinds+int(EvFetch)] -= 3 }},
		{"cycle-skewed", func(m *Meter) { m.cycleEnergy[0] += 2 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := NewMeter(2)
			per := make([]float64, 2)
			m.Add(0, EvFetch, 4)
			m.Add(1, EvFetch, 4)
			m.EndCycle(per)
			tc.corrupt(m)
			err := m.CheckConsistency()
			if err == nil {
				t.Fatal("ledger skew went undetected")
			}
			if !strings.Contains(err.Error(), "energy ledger mismatch") {
				t.Fatalf("unexpected error text: %q", err)
			}
		})
	}
}
