package power

import "ptbsim/internal/fault"

// NoisySensor models imperfect per-core power sensing: the controllers in
// a real chip read sensors, not ground truth, and sensors exhibit white
// noise and slow calibration drift. The simulator's power *accounting*
// stays exact — only the estimates the budget controllers see are
// perturbed, so energy-conservation invariants keep holding while control
// decisions degrade.
//
// Each core owns an independent drift state (a bounded random walk);
// sampling order is the fixed core order 0..n-1 each cycle, so runs are
// deterministic. With zero noise and drift the factor is exactly 1 and
// Perturb is the bit-identity.
type NoisySensor struct {
	inj   *fault.SensorInjector
	drift []float64
}

// NewNoisySensor creates the sensor bank for n cores. A nil injector
// returns a nil sensor (callers skip perturbation entirely).
func NewNoisySensor(n int, inj *fault.SensorInjector) *NoisySensor {
	if inj == nil {
		return nil
	}
	return &NoisySensor{inj: inj, drift: make([]float64, n)}
}

// Perturb returns core i's sensor reading for a true per-cycle estimate.
func (s *NoisySensor) Perturb(core int, est float64) float64 {
	return est * s.inj.Factor(&s.drift[core])
}

// Drift returns core i's current drift state (tests).
func (s *NoisySensor) Drift(core int) float64 { return s.drift[core] }
