package power

import (
	"fmt"

	"ptbsim/internal/invariant"
)

// Meter accumulates ground-truth energy per core tile per cycle. Every
// component posts events to the meter; at the end of each global cycle the
// simulator calls EndCycle to obtain the per-core energies of that cycle and
// fold them into totals.
//
// Dynamic events are scaled by the square of the core's current relative
// supply voltage (P_dyn ∝ V²); leakage scales linearly with voltage (a
// conservative stand-in for its super-linear voltage dependence — the DVFS
// ladder only moves V between 0.90 and 1.00 of nominal, where a linear model
// is within a few percent). Frequency scaling needs no explicit factor: a
// core at relative frequency f simply produces events on fewer global
// cycles.
type Meter struct {
	nCores int

	// vScaleSq is the per-core dynamic scale factor (relative V squared).
	vScaleSq []float64
	// vScaleLeak is the per-core leakage scale factor (relative V).
	vScaleLeak []float64

	cycleEnergy []float64 // pJ accumulated this cycle, per core
	totalEnergy []float64 // pJ accumulated since reset, per core

	// byKind tracks total energy per event kind per core (pJ), for detailed
	// reports and for the spinlock-power metric. Flat [core*NumEventKinds+k]
	// layout: Add is the hottest call in the simulator and the flat array
	// saves an indirection per event.
	byKind []float64

	// counts tracks total event counts per kind per core (same layout).
	counts []int64
}

// NewMeter returns a meter for nCores core tiles at nominal voltage.
func NewMeter(nCores int) *Meter {
	m := &Meter{
		nCores:      nCores,
		vScaleSq:    make([]float64, nCores),
		vScaleLeak:  make([]float64, nCores),
		cycleEnergy: make([]float64, nCores),
		totalEnergy: make([]float64, nCores),
		byKind:      make([]float64, nCores*NumEventKinds),
		counts:      make([]int64, nCores*NumEventKinds),
	}
	for i := 0; i < nCores; i++ {
		m.vScaleSq[i] = 1
		m.vScaleLeak[i] = 1
	}
	return m
}

// NumCores returns the number of core tiles the meter tracks.
func (m *Meter) NumCores() int { return m.nCores }

// SetVoltage sets a core's relative supply voltage (1.0 = nominal). It
// affects the scaling of all subsequent events on that core.
func (m *Meter) SetVoltage(core int, rel float64) {
	m.vScaleSq[core] = rel * rel
	m.vScaleLeak[core] = rel
}

// Voltage returns the core's current relative supply voltage squared scale.
func (m *Meter) Voltage(core int) float64 { return m.vScaleLeak[core] }

// Add posts n events of kind k on core's tile during the current cycle.
func (m *Meter) Add(core int, k EventKind, n int) {
	if n == 0 {
		return
	}
	var e float64
	if k == EvLeakage || k == EvLeakageSleep {
		e = EnergyPJ[k] * float64(n) * m.vScaleLeak[core]
	} else {
		e = EnergyPJ[k] * float64(n) * m.vScaleSq[core]
	}
	m.cycleEnergy[core] += e
	idx := core*NumEventKinds + int(k)
	m.byKind[idx] += e
	m.counts[idx] += int64(n)
}

// EndCycle finishes the current cycle. It writes each core's cycle energy
// (pJ) into dst (which must have length NumCores), adds them to the running
// totals, resets the per-cycle accumulators, and returns the chip-wide cycle
// energy in picojoules.
func (m *Meter) EndCycle(dst []float64) float64 {
	var chip float64
	for i := 0; i < m.nCores; i++ {
		e := m.cycleEnergy[i]
		dst[i] = e
		m.totalEnergy[i] += e
		m.cycleEnergy[i] = 0
		chip += e
	}
	return chip
}

// TotalPJ returns the total energy consumed by a core tile, in picojoules.
func (m *Meter) TotalPJ(core int) float64 { return m.totalEnergy[core] }

// ChipTotalPJ returns the total chip energy in picojoules.
func (m *Meter) ChipTotalPJ() float64 {
	var s float64
	for _, e := range m.totalEnergy {
		s += e
	}
	return s
}

// KindPJ returns the total energy consumed by events of kind k on core.
func (m *Meter) KindPJ(core int, k EventKind) float64 {
	return m.byKind[core*NumEventKinds+int(k)]
}

// Count returns the number of events of kind k posted on core.
func (m *Meter) Count(core int, k EventKind) int64 {
	return m.counts[core*NumEventKinds+int(k)]
}

// CheckConsistency verifies the meter's energy-accounting identity: every
// picojoule in a core's running total is attributed to exactly one event
// kind, so the per-kind ledger must sum back to the total (within float
// accumulation tolerance — both sides add the same event energies, but in
// different orders). The invariant layer evaluates this every epoch; a
// mismatch means some component bypassed Add or a ledger was corrupted.
func (m *Meter) CheckConsistency() error {
	for i := 0; i < m.nCores; i++ {
		var kindSum float64
		for k := 0; k < NumEventKinds; k++ {
			kindSum += m.byKind[i*NumEventKinds+k]
		}
		// cycleEnergy holds the current cycle's not-yet-folded events; the
		// identity covers totalEnergy + the in-progress cycle.
		total := m.totalEnergy[i] + m.cycleEnergy[i]
		if !invariant.CloseTo(kindSum, total) {
			return fmt.Errorf("power: core %d energy ledger mismatch: Σ per-kind %.6f pJ != total %.6f pJ",
				i, kindSum, total)
		}
	}
	return nil
}

// PeakCoreCyclePJ returns the worst-case single-cycle energy of one core
// tile at nominal voltage, used to define the chip's peak power and hence
// the power budget (budgets are a fraction of peak, paper §III.C). The
// bound is structural: a 4-wide front end at full tilt, the issue width
// saturated with the most expensive operations (the machine cannot start
// more FU operations per cycle than it issues), both L1D ports active, and
// a full ROB.
func PeakCoreCyclePJ(robSize int) float64 {
	w := 4.0
	e := EnergyPJ[EvClockActive] + EnergyPJ[EvLeakage]
	e += w * (EnergyPJ[EvFetch] + EnergyPJ[EvDecode] + EnergyPJ[EvRename] +
		EnergyPJ[EvIQWrite] + EnergyPJ[EvIQWakeup] +
		2*EnergyPJ[EvRegRead] + EnergyPJ[EvRegWrite] +
		EnergyPJ[EvROBWrite] + EnergyPJ[EvROBRead] + EnergyPJ[EvPTHT])
	e += EnergyPJ[EvL1I] + EnergyPJ[EvBpred]
	// Issue width saturated with the most expensive unit (FP multiply).
	e += w * EnergyPJ[EvFUFPMul]
	// Two L1D ports plus LSQ activity.
	e += 2*EnergyPJ[EvL1DRead] + 2*EnergyPJ[EvLSQ]
	// Full ROB occupancy.
	e += float64(robSize) * EnergyPJ[EvROBOccupancy]
	return e
}
