package power

import "ptbsim/internal/ckpt"

// HashState folds the meter's full energy ledger into h for checkpoint
// digests. The field order is append-only.
func (m *Meter) HashState(h *ckpt.Hasher) {
	for i := 0; i < m.nCores; i++ {
		h.WriteF64(m.vScaleSq[i])
		h.WriteF64(m.vScaleLeak[i])
		h.WriteF64(m.cycleEnergy[i])
		h.WriteF64(m.totalEnergy[i])
	}
	for _, e := range m.byKind {
		h.WriteF64(e)
	}
	for _, c := range m.counts {
		h.WriteI64(c)
	}
}

// HashState folds the Power Token History Table into h.
func (t *PTHT) HashState(h *ckpt.Hasher) {
	for _, e := range t.entries {
		h.WriteU64(uint64(e))
	}
}

// HashState folds the sensor drift random walk into h. Nil-safe: a run
// without fault injection has no sensor bank.
func (s *NoisySensor) HashState(h *ckpt.Hasher) {
	if s == nil {
		return
	}
	for _, d := range s.drift {
		h.WriteF64(d)
	}
}
