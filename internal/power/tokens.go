package power

import "ptbsim/internal/isa"

// NumTokenGroups is the number of k-means instruction groups (paper §III.B:
// 8 groups give <1% error versus exact joules).
const NumTokenGroups = 8

// TokenModel maps instruction classes to base power-token costs. The base
// cost of an instruction covers "all regular accesses to structures done by
// that instruction which are known a priori"; the time-dependent component
// (cycles spent in the ROB) is added dynamically by the core when the
// instruction commits.
type TokenModel struct {
	// baseCost is the exact base energy (pJ) of each (op, longLat) variant.
	baseCost [isa.NumOps][2]float64
	// group is the k-means group of each variant.
	group [isa.NumOps][2]uint8
	// centers are the group centers in tokens.
	centers [NumTokenGroups]int
}

// baseEnergyPJ returns the a-priori per-instruction energy of an (op,
// longLat) variant: front-end, rename, issue, register file, ROB write/read
// and the class-specific functional-unit and memory structure accesses.
func baseEnergyPJ(op isa.Op, longLat bool) float64 {
	e := EnergyPJ[EvFetch] + EnergyPJ[EvDecode] + EnergyPJ[EvRename] +
		EnergyPJ[EvIQWrite] + EnergyPJ[EvIQWakeup] +
		2*EnergyPJ[EvRegRead] + EnergyPJ[EvRegWrite] +
		EnergyPJ[EvROBWrite] + EnergyPJ[EvROBRead]
	switch op {
	case isa.OpNop:
		// Front-end cost only.
	case isa.OpIntAlu:
		e += EnergyPJ[EvFUIntAlu]
	case isa.OpIntMul:
		e += EnergyPJ[EvFUIntMul]
		if longLat {
			e += EnergyPJ[EvFUIntMul]
		}
	case isa.OpFPAlu:
		e += EnergyPJ[EvFUFPAlu]
	case isa.OpFPMul:
		e += EnergyPJ[EvFUFPMul]
		if longLat {
			// FP divide occupies the multiplier for many cycles.
			e += 2 * EnergyPJ[EvFUFPMul]
		}
	case isa.OpLoad:
		e += EnergyPJ[EvFUIntAlu] + EnergyPJ[EvLSQ] + EnergyPJ[EvL1DRead]
	case isa.OpStore:
		e += EnergyPJ[EvFUIntAlu] + EnergyPJ[EvLSQ] + EnergyPJ[EvL1DWrite]
	case isa.OpBranch:
		e += EnergyPJ[EvFUIntAlu] + 2*EnergyPJ[EvBpred]
	case isa.OpAtomicRMW:
		e += EnergyPJ[EvFUIntAlu] + EnergyPJ[EvLSQ] +
			EnergyPJ[EvL1DRead] + EnergyPJ[EvL1DWrite]
	}
	return e
}

// NewTokenModel builds the standard 8-group token model.
func NewTokenModel() *TokenModel { return NewTokenModelK(NumTokenGroups) }

// NewTokenModelK builds the token model with k quantization groups (the
// ablation knob behind the paper's "8 groups give <1% error" claim): it
// computes the base energy of every instruction variant and quantizes the
// costs into k k-means groups. Clustering runs over the *unique* cost
// values so that variants sharing a cost (e.g. long-latency flags that do
// not change the op's energy) do not skew the group centers.
func NewTokenModelK(k int) *TokenModel {
	if k < 1 {
		k = 1
	}
	if k > NumTokenGroups {
		k = NumTokenGroups
	}
	t := &TokenModel{}
	seen := map[float64]bool{}
	var unique []float64
	for op := 0; op < isa.NumOps; op++ {
		for ll := 0; ll < 2; ll++ {
			e := baseEnergyPJ(isa.Op(op), ll == 1)
			t.baseCost[op][ll] = e
			if !seen[e] {
				seen[e] = true
				unique = append(unique, e)
			}
		}
	}
	_, centers := kmeans1D(unique, k)
	for i, c := range centers {
		if i < NumTokenGroups {
			t.centers[i] = Tokens(c)
		}
	}
	// Pad missing groups (fewer unique values than groups) by repeating the
	// last center so every group index is valid.
	for i := len(centers); i < NumTokenGroups; i++ {
		t.centers[i] = t.centers[len(centers)-1]
	}
	// Assign every variant to its nearest center.
	for op := 0; op < isa.NumOps; op++ {
		for ll := 0; ll < 2; ll++ {
			cost := t.baseCost[op][ll] / TokenUnitPJ
			best, bestD := 0, abs(cost-float64(t.centers[0]))
			for g := 1; g < NumTokenGroups; g++ {
				if d := abs(cost - float64(t.centers[g])); d < bestD {
					best, bestD = g, d
				}
			}
			t.group[op][ll] = uint8(best)
		}
	}
	return t
}

// Group returns the k-means group index of an instruction variant.
func (t *TokenModel) Group(op isa.Op, longLat bool) int {
	ll := 0
	if longLat {
		ll = 1
	}
	return int(t.group[op][ll])
}

// BaseTokens returns the quantized base token cost of an instruction
// variant: the center of its k-means group.
func (t *TokenModel) BaseTokens(op isa.Op, longLat bool) int {
	return t.centers[t.Group(op, longLat)]
}

// ExactBaseTokens returns the unquantized base token cost. The difference
// between BaseTokens and ExactBaseTokens is the quantization error the paper
// bounds below 1%.
func (t *TokenModel) ExactBaseTokens(op isa.Op, longLat bool) float64 {
	ll := 0
	if longLat {
		ll = 1
	}
	return t.baseCost[op][ll] / TokenUnitPJ
}

// GroupCenters returns the group centers in tokens, ascending.
func (t *TokenModel) GroupCenters() []int {
	out := make([]int, NumTokenGroups)
	copy(out, t.centers[:])
	return out
}

// PTHTSize is the number of entries in the Power-Token History Table (paper
// §III.B: an 8K-entry table accessed by PC).
const PTHTSize = 8192

// PTHT is the Power-Token History Table: a direct-mapped, PC-indexed table
// storing the token cost of each static instruction's last execution. It is
// updated at commit with the tokens actually consumed and read at fetch to
// estimate the power of in-flight instructions without performance counters.
type PTHT struct {
	entries []uint16
	mask    uint64
	// meter/core let the table charge its own access energy, which the
	// paper includes in its results ("the extra power consumption of the
	// PTHT structure is also accounted").
	meter *Meter
	core  int
}

// NewPTHT returns a PTHT of the standard size, charging access energy for
// the given core on the meter. A nil meter disables energy accounting (used
// in unit tests).
func NewPTHT(meter *Meter, core int) *PTHT {
	return NewPTHTSized(meter, core, PTHTSize)
}

// NewPTHTSized returns a PTHT with the given entry count (a power of two;
// the ablation knob for the paper's 8K-entry choice).
func NewPTHTSized(meter *Meter, core, size int) *PTHT {
	if size < 1 || size&(size-1) != 0 {
		panic("power: PTHT size must be a positive power of two")
	}
	return &PTHT{
		entries: make([]uint16, size),
		mask:    uint64(size - 1),
		meter:   meter,
		core:    core,
	}
}

func (p *PTHT) index(pc uint64) uint64 {
	// PCs are word-aligned; drop the low bits so neighboring instructions
	// map to neighboring entries.
	return (pc >> 2) & p.mask
}

// Lookup returns the stored token cost of the instruction at pc, or def if
// the entry has never been written (a cold entry predicts the default cost).
func (p *PTHT) Lookup(pc uint64, def int) int {
	if p.meter != nil {
		p.meter.Add(p.core, EvPTHT, 1)
	}
	v := p.entries[p.index(pc)]
	if v == 0 {
		return def
	}
	return int(v)
}

// Update stores the token cost of the instruction at pc, saturating to the
// 16-bit entry width.
func (p *PTHT) Update(pc uint64, tokens int) {
	if p.meter != nil {
		p.meter.Add(p.core, EvPTHT, 1)
	}
	if tokens < 1 {
		tokens = 1
	}
	if tokens > 0xFFFF {
		tokens = 0xFFFF
	}
	p.entries[p.index(pc)] = uint16(tokens)
}
