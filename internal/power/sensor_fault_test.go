package power

import (
	"math"
	"testing"

	"ptbsim/internal/fault"
)

func TestNoisySensorNilInjector(t *testing.T) {
	if s := NewNoisySensor(4, nil); s != nil {
		t.Fatal("nil injector must yield a nil sensor so callers skip perturbation")
	}
}

// TestNoisySensorZeroRateIdentity: with zero noise and drift the factor is
// exactly 1 — Perturb is the bit-identity and the drift state never moves.
func TestNoisySensorZeroRateIdentity(t *testing.T) {
	s := NewNoisySensor(2, fault.NewInjector(fault.Spec{Seed: 5}).Sensor())
	for i := 0; i < 100; i++ {
		est := 123.456 + float64(i)
		if got := s.Perturb(i%2, est); got != est {
			t.Fatalf("zero-rate Perturb(%v) = %v", est, got)
		}
	}
	if s.Drift(0) != 0 || s.Drift(1) != 0 {
		t.Fatalf("zero-rate drift moved: %v, %v", s.Drift(0), s.Drift(1))
	}
}

// TestNoisySensorBoundedAndDeterministic: readings stay within the
// noise+drift envelope, the drift walk stays within its bound, and two
// sensors built from the same spec produce bit-identical sequences.
func TestNoisySensorBoundedAndDeterministic(t *testing.T) {
	spec := fault.Spec{Seed: 9, SensorNoise: 0.05, SensorDrift: 0.02}
	a := NewNoisySensor(2, fault.NewInjector(spec).Sensor())
	b := NewNoisySensor(2, fault.NewInjector(spec).Sensor())

	const est = 1000.0
	bound := est * (1 + spec.SensorNoise + spec.SensorDrift)
	perturbed := false
	for i := 0; i < 2000; i++ {
		core := i % 2
		ra := a.Perturb(core, est)
		rb := b.Perturb(core, est)
		if ra != rb {
			t.Fatalf("sample %d: same seed diverged: %v vs %v", i, ra, rb)
		}
		if ra < est*(1-spec.SensorNoise-spec.SensorDrift) || ra > bound {
			t.Fatalf("sample %d: reading %v outside envelope around %v", i, ra, est)
		}
		if d := math.Abs(a.Drift(core)); d > spec.SensorDrift {
			t.Fatalf("sample %d: drift %v exceeds bound %v", i, d, spec.SensorDrift)
		}
		if ra != est {
			perturbed = true
		}
	}
	if !perturbed {
		t.Fatal("noisy sensor never perturbed a reading")
	}
}
