package power

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ptbsim/internal/isa"
)

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter(2)
	m.Add(0, EvFUIntAlu, 3)
	m.Add(1, EvL1DRead, 1)
	dst := make([]float64, 2)
	chip := m.EndCycle(dst)
	want0 := 3 * EnergyPJ[EvFUIntAlu]
	want1 := EnergyPJ[EvL1DRead]
	if dst[0] != want0 || dst[1] != want1 {
		t.Fatalf("cycle energies = %v, want [%v %v]", dst, want0, want1)
	}
	if chip != want0+want1 {
		t.Fatalf("chip energy %v, want %v", chip, want0+want1)
	}
	if m.TotalPJ(0) != want0 {
		t.Fatalf("total(0) = %v, want %v", m.TotalPJ(0), want0)
	}
	// Second cycle starts from zero.
	chip = m.EndCycle(dst)
	if chip != 0 || dst[0] != 0 {
		t.Fatal("cycle accumulator not reset")
	}
}

func TestMeterVoltageScaling(t *testing.T) {
	m := NewMeter(1)
	m.SetVoltage(0, 0.9)
	m.Add(0, EvFUIntAlu, 1)
	m.Add(0, EvLeakage, 1)
	dst := make([]float64, 1)
	m.EndCycle(dst)
	want := EnergyPJ[EvFUIntAlu]*0.81 + EnergyPJ[EvLeakage]*0.9
	if math.Abs(dst[0]-want) > 1e-9 {
		t.Fatalf("scaled energy %v, want %v", dst[0], want)
	}
}

func TestMeterCounts(t *testing.T) {
	m := NewMeter(1)
	m.Add(0, EvDecode, 4)
	m.Add(0, EvDecode, 2)
	if m.Count(0, EvDecode) != 6 {
		t.Fatalf("count = %d, want 6", m.Count(0, EvDecode))
	}
	if m.KindPJ(0, EvDecode) != 6*EnergyPJ[EvDecode] {
		t.Fatalf("kind energy mismatch")
	}
}

func TestPeakCoreCyclePJSane(t *testing.T) {
	peak := PeakCoreCyclePJ(128)
	// The peak should be a few nanojoules per cycle (a handful of watts per
	// core at 3GHz) and strictly larger than the idle floor.
	if peak < 1000 || peak > 10000 {
		t.Fatalf("peak cycle energy %v pJ implausible", peak)
	}
	floor := EnergyPJ[EvClockGated] + EnergyPJ[EvLeakage]
	if peak <= 4*floor {
		t.Fatalf("peak %v not well above idle floor %v", peak, floor)
	}
}

func TestTokensRounding(t *testing.T) {
	if Tokens(3.9) != 2 {
		t.Fatalf("Tokens(3.9) = %d, want 2", Tokens(3.9))
	}
	if Tokens(-5) != 0 {
		t.Fatalf("Tokens(-5) = %d, want 0", Tokens(-5))
	}
	if Tokens(0) != 0 {
		t.Fatalf("Tokens(0) = %d, want 0", Tokens(0))
	}
}

func TestKMeansBasic(t *testing.T) {
	vals := []float64{1, 1.1, 0.9, 10, 10.2, 9.8, 50, 49, 51}
	assign, centers := kmeans1D(vals, 3)
	if len(centers) != 3 {
		t.Fatalf("got %d centers, want 3", len(centers))
	}
	if !sort.Float64sAreSorted(centers) {
		t.Fatalf("centers not sorted: %v", centers)
	}
	// All ~1 values must share a group, etc.
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("low cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("mid cluster split: %v", assign)
	}
	if assign[6] != assign[7] || assign[7] != assign[8] {
		t.Fatalf("high cluster split: %v", assign)
	}
	if assign[0] == assign[3] || assign[3] == assign[6] {
		t.Fatalf("clusters merged: %v", assign)
	}
}

func TestKMeansDegenerate(t *testing.T) {
	assign, centers := kmeans1D(nil, 4)
	if len(assign) != 0 || centers != nil {
		t.Fatal("empty input should produce empty output")
	}
	assign, centers = kmeans1D([]float64{5}, 4)
	if len(centers) != 1 || centers[0] != 5 || assign[0] != 0 {
		t.Fatalf("single value: assign=%v centers=%v", assign, centers)
	}
}

func TestKMeansPropertyAssignmentsNearest(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		assign, centers := kmeans1D(vals, 4)
		// Every value must be assigned to its nearest center.
		for i, v := range vals {
			best := assign[i]
			for c := range centers {
				if abs(v-centers[c]) < abs(v-centers[best])-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenModelQuantizationError(t *testing.T) {
	tm := NewTokenModel()
	// The paper reports <1% error from 8-group quantization; our variant
	// space is small so the error should be tiny as well. Verify it is
	// bounded by 5% on every variant with a non-trivial cost.
	for op := 1; op < isa.NumOps; op++ {
		for _, ll := range []bool{false, true} {
			exact := tm.ExactBaseTokens(isa.Op(op), ll)
			quant := float64(tm.BaseTokens(isa.Op(op), ll))
			if exact <= 0 {
				t.Fatalf("op %v has non-positive base cost", isa.Op(op))
			}
			if rel := abs(quant-exact) / exact; rel > 0.05 {
				t.Errorf("op %v longLat=%v: quantization error %.1f%% (exact %.1f, quant %.0f)",
					isa.Op(op), ll, rel*100, exact, quant)
			}
		}
	}
}

func TestTokenModelOrdering(t *testing.T) {
	tm := NewTokenModel()
	// FP multiply must cost at least as much as integer ALU; loads more
	// than plain ALU ops (they touch LSQ + L1D).
	if tm.BaseTokens(isa.OpFPMul, false) < tm.BaseTokens(isa.OpIntAlu, false) {
		t.Fatal("FPMul cheaper than IntAlu")
	}
	if tm.BaseTokens(isa.OpLoad, false) < tm.BaseTokens(isa.OpIntAlu, false) {
		t.Fatal("Load cheaper than IntAlu")
	}
	if tm.BaseTokens(isa.OpAtomicRMW, false) < tm.BaseTokens(isa.OpLoad, false) {
		t.Fatal("RMW cheaper than Load")
	}
}

func TestTokenModelGroups(t *testing.T) {
	tm := NewTokenModel()
	centers := tm.GroupCenters()
	if len(centers) != NumTokenGroups {
		t.Fatalf("got %d centers", len(centers))
	}
	for op := 0; op < isa.NumOps; op++ {
		g := tm.Group(isa.Op(op), false)
		if g < 0 || g >= NumTokenGroups {
			t.Fatalf("group out of range: %d", g)
		}
	}
}

func TestPTHTLookupDefault(t *testing.T) {
	p := NewPTHT(nil, 0)
	if got := p.Lookup(0x1234, 42); got != 42 {
		t.Fatalf("cold lookup = %d, want default 42", got)
	}
	p.Update(0x1234, 77)
	if got := p.Lookup(0x1234, 42); got != 77 {
		t.Fatalf("lookup after update = %d, want 77", got)
	}
}

func TestPTHTSaturation(t *testing.T) {
	p := NewPTHT(nil, 0)
	p.Update(0x10, 1<<20)
	if got := p.Lookup(0x10, 0); got != 0xFFFF {
		t.Fatalf("saturated value = %d, want 65535", got)
	}
	p.Update(0x20, -5)
	if got := p.Lookup(0x20, 0); got != 1 {
		t.Fatalf("clamped value = %d, want 1", got)
	}
}

func TestPTHTAliasing(t *testing.T) {
	p := NewPTHT(nil, 0)
	// Two PCs that map to the same entry must alias (direct-mapped table).
	pcA := uint64(0x100)
	pcB := pcA + uint64(PTHTSize)*4
	p.Update(pcA, 9)
	if got := p.Lookup(pcB, 0); got != 9 {
		t.Fatalf("aliased lookup = %d, want 9", got)
	}
}

func TestPTHTChargesEnergy(t *testing.T) {
	m := NewMeter(1)
	p := NewPTHT(m, 0)
	p.Update(0x40, 10)
	p.Lookup(0x40, 0)
	if m.Count(0, EvPTHT) != 2 {
		t.Fatalf("PTHT events = %d, want 2", m.Count(0, EvPTHT))
	}
}
