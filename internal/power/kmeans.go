package power

import "sort"

// kmeans1D clusters scalar values into k groups and returns the group index
// of each input value plus the k group centers, sorted ascending. It is the
// quantization step of the paper's token model: "we used a K-mean algorithm
// to group instructions with similar base power consumption ... having just
// 8 groups of instructions is accurate enough ... with an error lower than
// 1%" (§III.B).
//
// Initialization is deterministic (quantiles of the sorted values), so the
// grouping is reproducible.
func kmeans1D(values []float64, k int) (assign []int, centers []float64) {
	n := len(values)
	assign = make([]int, n)
	if n == 0 || k <= 0 {
		return assign, nil
	}
	if k > n {
		k = n
	}

	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)

	centers = make([]float64, k)
	for i := 0; i < k; i++ {
		// Quantile-based seeding: evenly spaced through the sorted values.
		idx := (i*2 + 1) * n / (2 * k)
		if idx >= n {
			idx = n - 1
		}
		centers[i] = sorted[idx]
	}

	counts := make([]int, k)
	sums := make([]float64, k)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i := range counts {
			counts[i] = 0
			sums[i] = 0
		}
		for i, v := range values {
			best := 0
			bestD := abs(v - centers[0])
			for c := 1; c < k; c++ {
				if d := abs(v - centers[c]); d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			counts[best]++
			sums[best] += v
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	// Sort centers ascending and remap assignments so group 0 is always the
	// cheapest instruction class.
	type pair struct {
		center float64
		old    int
	}
	ps := make([]pair, k)
	for i := range ps {
		ps[i] = pair{centers[i], i}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].center < ps[j].center })
	remap := make([]int, k)
	for newIdx, p := range ps {
		remap[p.old] = newIdx
		centers[newIdx] = p.center
	}
	// centers was modified in place while reading ps; rebuild cleanly.
	for i, p := range ps {
		centers[i] = p.center
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return assign, centers
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
