package mesh

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/eventq"
	"ptbsim/internal/power"
)

func newTestMesh(n int) (*Mesh, *eventq.Queue) {
	q := &eventq.Queue{}
	m := New(n, q, power.NewMeter(n))
	return m, q
}

func TestDims(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {3, 3}, 16: {4, 4},
	}
	for n, want := range cases {
		w, h := Dims(n)
		if w*h < n {
			t.Fatalf("Dims(%d) = %dx%d does not fit", n, w, h)
		}
		if n == 4 || n == 16 || n == 2 || n == 1 {
			if w != want[0] || h != want[1] {
				t.Fatalf("Dims(%d) = %dx%d, want %dx%d", n, w, h, want[0], want[1])
			}
		}
	}
}

func TestFlitsFor(t *testing.T) {
	// 8-byte header + 0 payload = 2 flits.
	if got := FlitsFor(0); got != 2 {
		t.Fatalf("FlitsFor(0) = %d, want 2", got)
	}
	// 64-byte line + 8 header = 18 flits.
	if got := FlitsFor(64); got != 18 {
		t.Fatalf("FlitsFor(64) = %d, want 18", got)
	}
}

func TestLocalDelivery(t *testing.T) {
	m, q := newTestMesh(4)
	var gotCycle int64 = -1
	m.SetHandler(2, func(p any) { gotCycle = q.Now() })
	m.Send(2, 2, 2, nil)
	q.RunUntil(100)
	if gotCycle != DefaultRouterDelay {
		t.Fatalf("local delivery at cycle %d, want %d", gotCycle, DefaultRouterDelay)
	}
}

func TestUncontendedLatency(t *testing.T) {
	m, q := newTestMesh(16) // 4x4
	var gotCycle int64 = -1
	var payload any
	m.SetHandler(15, func(p any) { gotCycle, payload = q.Now(), p })
	// Node 0 (0,0) to node 15 (3,3): 6 hops.
	flits := 2
	m.Send(0, 15, flits, "hello")
	q.RunUntil(1000)
	want := m.UncontendedLatency(0, 15, flits)
	if gotCycle != want {
		t.Fatalf("delivery at %d, want %d", gotCycle, want)
	}
	if payload != "hello" {
		t.Fatalf("payload %v", payload)
	}
	if m.HopCount(0, 15) != 6 {
		t.Fatalf("hop count %d, want 6", m.HopCount(0, 15))
	}
}

func TestLinkContention(t *testing.T) {
	m, q := newTestMesh(4) // 2x2
	var first, second int64 = -1, -1
	n := 0
	m.SetHandler(1, func(p any) {
		if n == 0 {
			first = q.Now()
		} else {
			second = q.Now()
		}
		n++
	})
	// Two 18-flit data messages down the same link back to back.
	m.Send(0, 1, 18, nil)
	m.Send(0, 1, 18, nil)
	q.RunUntil(1000)
	if first < 0 || second < 0 {
		t.Fatal("messages not delivered")
	}
	// The second must wait for the first's 18-cycle serialization.
	if second-first < 18 {
		t.Fatalf("second delivered %d cycles after first, want >= 18", second-first)
	}
}

func TestOrderingOnSameLink(t *testing.T) {
	m, q := newTestMesh(4)
	var order []int
	m.SetHandler(3, func(p any) { order = append(order, p.(int)) })
	for i := 0; i < 5; i++ {
		m.Send(0, 3, 2, i)
	}
	q.RunUntil(10000)
	if len(order) != 5 {
		t.Fatalf("delivered %d of 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestEnergyCharged(t *testing.T) {
	q := &eventq.Queue{}
	meter := power.NewMeter(4)
	m := New(4, q, meter)
	m.SetHandler(3, func(p any) {})
	m.Send(0, 3, 2, nil) // 2 hops on a 2x2 mesh
	q.RunUntil(1000)
	var link int64
	for c := 0; c < 4; c++ {
		link += meter.Count(c, power.EvNoCLink)
	}
	if link != 4 { // 2 flits × 2 hops
		t.Fatalf("link flit events = %d, want 4", link)
	}
	if m.FlitHops() != 4 {
		t.Fatalf("FlitHops = %d, want 4", m.FlitHops())
	}
	if m.Messages() != 1 {
		t.Fatalf("Messages = %d, want 1", m.Messages())
	}
}

func TestAllPairsDeliver(t *testing.T) {
	f := func(seed uint8) bool {
		n := 16
		m, q := newTestMesh(n)
		delivered := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			m.SetHandler(i, func(p any) { delivered[i]++ })
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				m.Send(s, d, 2+int(seed)%4, nil)
			}
		}
		q.RunUntil(1 << 20)
		for i := 0; i < n; i++ {
			if delivered[i] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestHopCountSymmetric(t *testing.T) {
	m, _ := newTestMesh(16)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if m.HopCount(a, b) != m.HopCount(b, a) {
				t.Fatalf("asymmetric hop count %d,%d", a, b)
			}
		}
	}
}

func TestLatencyMonotonicInHops(t *testing.T) {
	f := func(seed uint8) bool {
		m, _ := newTestMesh(16)
		// For fixed flit count, uncontended latency grows with hop count.
		flits := 2 + int(seed)%16
		prev := int64(-1)
		for _, dst := range []int{1, 2, 3, 7, 11, 15} { // growing distance from 0
			l := m.UncontendedLatency(0, dst, flits)
			if l <= prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	// Messages on disjoint rows must not slow each other down.
	m, q := newTestMesh(16) // 4x4
	var a, b int64 = -1, -1
	m.SetHandler(3, func(p any) { a = q.Now() })  // row 0: 0→3
	m.SetHandler(15, func(p any) { b = q.Now() }) // row 3: 12→15
	m.Send(0, 3, 18, nil)
	m.Send(12, 15, 18, nil)
	q.RunUntil(10000)
	if a != b {
		t.Fatalf("disjoint paths interfered: %d vs %d", a, b)
	}
	if a != m.UncontendedLatency(0, 3, 18) {
		t.Fatalf("latency %d, want uncontended %d", a, m.UncontendedLatency(0, 3, 18))
	}
}
