package mesh

import "ptbsim/internal/ckpt"

// HashState folds the mesh's mutable state into h for checkpoint
// digests. In-flight messages live in the event queue (via AtArg) and
// are covered by the eventq and component hashes; here only the link
// reservations and counters matter. The freeMsg pool is excluded —
// recycled records carry no information. The field order is append-only.
func (m *Mesh) HashState(h *ckpt.Hasher) {
	for _, f := range m.nextFree {
		h.WriteI64(f)
	}
	h.WriteI64(m.messages)
	h.WriteI64(m.flitHops)
	h.WriteI64(m.stallCycles)
	h.WriteI64(m.retransmits)
}
