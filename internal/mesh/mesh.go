// Package mesh models the switched 2D-mesh direct network connecting the
// CMP tiles (paper Table 1: 2D mesh, 4-cycle link latency, 4-byte flits,
// 1 flit/cycle/link bandwidth).
//
// Messages are routed hop by hop with dimension-ordered (XY) routing. Each
// directed link serializes flits at 1 flit/cycle and then pipelines them
// across the 4-cycle wire; a 1-cycle router stage is charged per hop. Link
// contention is modeled by per-link busy tracking, so coherence storms (e.g.
// lock line ping-pong) slow down realistically.
package mesh

import (
	"fmt"

	"ptbsim/internal/eventq"
	"ptbsim/internal/fault"
	"ptbsim/internal/power"
)

// Default timing parameters from Table 1.
const (
	// DefaultLinkLatency is the pipeline latency of one link in cycles.
	DefaultLinkLatency = 4
	// DefaultRouterDelay is the per-hop router traversal latency in cycles.
	DefaultRouterDelay = 1
	// FlitBytes is the width of one flit.
	FlitBytes = 4
	// HeaderBytes is the protocol header carried by every message.
	HeaderBytes = 8
)

// FlitsFor returns the number of flits needed for a message with the given
// payload size in bytes (header included).
func FlitsFor(payloadBytes int) int {
	total := payloadBytes + HeaderBytes
	return (total + FlitBytes - 1) / FlitBytes
}

// Handler receives messages delivered to a node.
type Handler func(payload any)

// Mesh is a W×H mesh of nodes. Node i sits at (i%W, i/W). Each node hosts
// one core tile (core + L1s + L2 bank + directory slice).
type Mesh struct {
	w, h  int
	q     *eventq.Queue
	meter *power.Meter

	handlers []Handler

	linkLatency int64
	routerDelay int64

	// nextFree[l] is the first cycle at which directed link l can accept a
	// new message's first flit.
	nextFree []int64

	// Stats.
	messages int64
	flitHops int64

	// Fault mode (nil = ideal links): transient per-traversal stalls and
	// detected flit corruption handled by full retransmission across the
	// affected link.
	faults      *fault.LinkInjector
	stallCycles int64
	retransmits int64

	// freeMsg recycles hopMsg records so routing allocates nothing in the
	// steady state.
	freeMsg *hopMsg
}

// hopMsg carries an in-flight message's routing state through the event
// queue. One record travels with the message across all its hops (via
// Queue.AtArg and the static runHop), replacing a closure allocation per
// hop.
type hopMsg struct {
	m       *Mesh
	cur     int // node the message occupies when its event fires
	dst     int
	flits   int
	payload any
	next    *hopMsg // free-list link
}

// runHop is the single event-queue trampoline for all mesh traffic.
func runHop(a any) {
	h := a.(*hopMsg)
	m := h.m
	if h.cur == h.dst {
		dst, payload := h.dst, h.payload
		m.recycleMsg(h)
		m.handlers[dst](payload)
		return
	}
	m.hop(h)
}

func (m *Mesh) allocMsg() *hopMsg {
	if h := m.freeMsg; h != nil {
		m.freeMsg = h.next
		h.next = nil
		return h
	}
	return &hopMsg{m: m}
}

func (m *Mesh) recycleMsg(h *hopMsg) {
	h.payload = nil
	h.next = m.freeMsg
	m.freeMsg = h
}

// Dims returns the width and height of the mesh for n nodes, preferring the
// most square exact factorization (2→2x1, 4→2x2, 8→4x2, 16→4x4). If n has no
// useful factorization (primes), the mesh grows to the smallest near-square
// grid that fits, leaving the excess coordinates unused.
func Dims(n int) (w, h int) {
	if n < 1 {
		return 1, 1
	}
	for h = isqrt(n); h >= 1; h-- {
		if n%h == 0 {
			w = n / h
			// Degenerate 1×n strips are worse than a near-square grid with
			// an unused corner once n is large.
			if h > 1 || n <= 3 {
				return w, h
			}
			break
		}
	}
	w, h = 1, 1
	for w*h < n {
		if w <= h {
			w++
		} else {
			h++
		}
	}
	return w, h
}

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// New creates a mesh for n nodes using the default Table-1 timing. Handlers
// must be registered with SetHandler before any message arrives.
func New(n int, q *eventq.Queue, meter *power.Meter) *Mesh {
	w, h := Dims(n)
	m := &Mesh{
		w: w, h: h,
		q:           q,
		meter:       meter,
		handlers:    make([]Handler, n),
		linkLatency: DefaultLinkLatency,
		routerDelay: DefaultRouterDelay,
		// 4 directed links per node is an over-allocation for edge nodes;
		// unused entries stay at zero and are never referenced.
		nextFree: make([]int64, w*h*4),
	}
	return m
}

// SetHandler registers the message handler for node.
func (m *Mesh) SetHandler(node int, h Handler) { m.handlers[node] = h }

// SetFaults wires a link fault stream into the mesh. Stalls push a
// traversal's start time back; corruption retransmits the message across
// the link (its flits cross — and are metered — twice), so flit
// conservation holds under injection by construction.
func (m *Mesh) SetFaults(inj *fault.LinkInjector) {
	if inj == nil {
		return
	}
	m.faults = inj
}

// FaultStats returns the injected-fault tallies: total stall cycles and
// link-level retransmissions. Zero without an injector.
func (m *Mesh) FaultStats() (stallCycles, retransmits int64) {
	return m.stallCycles, m.retransmits
}

// NumNodes returns the number of addressable nodes (w×h; callers with fewer
// tiles simply do not use the excess coordinates).
func (m *Mesh) NumNodes() int { return m.w * m.h }

// direction indexes into the per-node link array.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func (m *Mesh) linkIndex(node, dir int) int { return node*4 + dir }

// nextHop returns the neighbor node and link direction for XY routing from
// cur toward dst.
func (m *Mesh) nextHop(cur, dst int) (next, dir int) {
	cx, cy := cur%m.w, cur/m.w
	dx, dy := dst%m.w, dst/m.w
	switch {
	case cx < dx:
		return cur + 1, dirEast
	case cx > dx:
		return cur - 1, dirWest
	case cy < dy:
		return cur + m.w, dirSouth
	case cy > dy:
		return cur - m.w, dirNorth
	}
	panic("mesh: nextHop called with cur == dst")
}

// HopCount returns the Manhattan distance between two nodes.
func (m *Mesh) HopCount(a, b int) int {
	ax, ay := a%m.w, a/m.w
	bx, by := b%m.w, b/m.w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Send injects a message of the given flit count at src, to be delivered to
// dst's handler after routing. Local (src==dst) messages pay only the router
// delay. The payload is handed to the destination handler untouched.
func (m *Mesh) Send(src, dst, flits int, payload any) {
	if m.handlers[dst] == nil {
		panic(fmt.Sprintf("mesh: no handler registered for node %d", dst))
	}
	m.messages++
	h := m.allocMsg()
	h.cur, h.dst, h.flits, h.payload = src, dst, flits, payload
	if src == dst {
		// Local delivery pays only the router delay; runHop sees cur == dst
		// and delivers directly.
		m.q.AtArg(m.q.Now()+m.routerDelay, runHop, h)
		return
	}
	m.hop(h)
}

// hop advances the message one link toward dst, modeling serialization and
// link contention, then schedules the next leg (or the delivery) via runHop.
func (m *Mesh) hop(h *hopMsg) {
	cur, dst, flits := h.cur, h.dst, h.flits
	next, dir := m.nextHop(cur, dst)
	li := m.linkIndex(cur, dir)
	now := m.q.Now()
	start := m.nextFree[li]
	if start < now {
		start = now
	}
	// Flits that actually cross this link — doubled when an injected
	// corruption forces a retransmission, so serialization time and the
	// energy charges below automatically account for the second crossing.
	linkFlits := flits
	if m.faults != nil {
		if st := m.faults.Stall(); st > 0 {
			start += st
			m.stallCycles += st
		}
		if m.faults.Corrupt() {
			linkFlits *= 2
			m.retransmits++
		}
	}
	// The link is busy until the last flit has been injected.
	m.nextFree[li] = start + int64(linkFlits)
	arrive := start + int64(linkFlits) + m.linkLatency + m.routerDelay

	// Charge energy at the source tile of the link: flits crossing the link
	// plus the router traversal at the receiving node.
	m.meter.Add(m.tileFor(cur), power.EvNoCLink, linkFlits)
	m.meter.Add(m.tileFor(next), power.EvNoCRouter, linkFlits)
	m.flitHops += int64(linkFlits)

	h.cur = next
	m.q.AtArg(arrive, runHop, h)
}

// tileFor maps a node to the core index charged for its energy. Nodes and
// cores are 1:1 up to the meter's range; coordinates beyond the core count
// (non-square meshes with unused corners never route through, but guard
// anyway) are clamped.
func (m *Mesh) tileFor(node int) int {
	if node >= m.meter.NumCores() {
		return m.meter.NumCores() - 1
	}
	return node
}

// Messages returns the number of messages injected.
func (m *Mesh) Messages() int64 { return m.messages }

// FlitHops returns the total number of flit-link traversals.
func (m *Mesh) FlitHops() int64 { return m.flitHops }

// CheckFlitConservation verifies that every flit-hop the mesh routed was
// charged to the power meter exactly once on each side of the link: the
// sum over tiles of EvNoCLink events (flits injected into links) and of
// EvNoCRouter events (flits traversing the receiving router) must both
// equal the mesh's own flit-hop counter. Counts are integers, so the
// identity is exact; a mismatch means a message was routed without being
// metered (or vice versa) and the NoC energy in the results is wrong.
func (m *Mesh) CheckFlitConservation() error {
	var links, routers int64
	for i := 0; i < m.meter.NumCores(); i++ {
		links += m.meter.Count(i, power.EvNoCLink)
		routers += m.meter.Count(i, power.EvNoCRouter)
	}
	if links != m.flitHops || routers != m.flitHops {
		return fmt.Errorf("mesh: flit conservation broken: %d flit-hops routed, %d link events, %d router events",
			m.flitHops, links, routers)
	}
	return nil
}

// UncontendedLatency returns the delivery latency of a message of the given
// flit count between two nodes on an idle mesh, for tests and documentation.
func (m *Mesh) UncontendedLatency(a, b, flits int) int64 {
	hops := int64(m.HopCount(a, b))
	if hops == 0 {
		return m.routerDelay
	}
	return hops * (int64(flits) + m.linkLatency + m.routerDelay)
}
