package mesh

import (
	"testing"

	"ptbsim/internal/fault"
)

// TestLinkStallDelaysDelivery injects a stall on every link traversal and
// checks the delivery slips by exactly the stall duration per hop while the
// flit ledger stays conserved.
func TestLinkStallDelaysDelivery(t *testing.T) {
	m, q := newTestMesh(4) // 2x2
	m.SetFaults(fault.NewInjector(fault.Spec{Seed: 1, LinkStall: 1}).Link())
	var gotCycle int64 = -1
	m.SetHandler(1, func(p any) { gotCycle = q.Now() })

	flits := 2
	m.Send(0, 1, flits, nil) // 1 hop east
	q.RunUntil(1000)

	want := m.UncontendedLatency(0, 1, flits) + fault.DefaultLinkStallCycles
	if gotCycle != want {
		t.Fatalf("stalled delivery at cycle %d, want %d", gotCycle, want)
	}
	stall, retx := m.FaultStats()
	if stall != fault.DefaultLinkStallCycles || retx != 0 {
		t.Fatalf("FaultStats = (%d, %d), want (%d, 0)", stall, retx, fault.DefaultLinkStallCycles)
	}
	if m.FlitHops() != int64(flits) {
		t.Fatalf("stall must not change flit count: %d hops", m.FlitHops())
	}
	if err := m.CheckFlitConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFlitCorruptionRetransmits injects detected corruption on every link
// traversal: each hop's flits cross the link twice, doubling serialization
// time and the metered flit-hops, and the flit-conservation invariant must
// hold by construction.
func TestFlitCorruptionRetransmits(t *testing.T) {
	m, q := newTestMesh(4) // 2x2
	m.SetFaults(fault.NewInjector(fault.Spec{Seed: 1, FlitCorrupt: 1}).Link())
	var gotCycle int64 = -1
	m.SetHandler(3, func(p any) { gotCycle = q.Now() })

	flits := 2
	m.Send(0, 3, flits, nil) // 2 hops: east, then south
	q.RunUntil(1000)

	// Every hop serializes 2x flits: one extra flit-time per flit per hop.
	want := m.UncontendedLatency(0, 3, flits) + int64(2*flits)
	if gotCycle != want {
		t.Fatalf("corrupted delivery at cycle %d, want %d", gotCycle, want)
	}
	stall, retx := m.FaultStats()
	if retx != 2 || stall != 0 {
		t.Fatalf("FaultStats = (%d, %d), want (0, 2)", stall, retx)
	}
	if m.FlitHops() != int64(2*2*flits) {
		t.Fatalf("retransmission must double metered flits: %d hops, want %d", m.FlitHops(), 2*2*flits)
	}
	if err := m.CheckFlitConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroRateLinkInjectorIsIdentity checks a zero-rate link injector (and
// a nil one) leaves timing and flit accounting bit-identical to the
// unfaulted mesh.
func TestZeroRateLinkInjectorIsIdentity(t *testing.T) {
	ideal, qi := newTestMesh(16)
	zero, qz := newTestMesh(16)
	zero.SetFaults(fault.NewInjector(fault.Spec{Seed: 42}).Link())
	zero.SetFaults(nil) // no-op, must not clear the stream or panic

	var atIdeal, atZero int64 = -1, -1
	ideal.SetHandler(15, func(p any) { atIdeal = qi.Now() })
	zero.SetHandler(15, func(p any) { atZero = qz.Now() })
	ideal.Send(0, 15, 18, nil)
	zero.Send(0, 15, 18, nil)
	qi.RunUntil(1000)
	qz.RunUntil(1000)

	if atIdeal != atZero {
		t.Fatalf("zero-rate delivery at %d, ideal at %d", atZero, atIdeal)
	}
	if ideal.FlitHops() != zero.FlitHops() {
		t.Fatalf("flit hops diverged: %d vs %d", ideal.FlitHops(), zero.FlitHops())
	}
	stall, retx := zero.FaultStats()
	if stall != 0 || retx != 0 {
		t.Fatalf("zero-rate injector fired: (%d, %d)", stall, retx)
	}
	if err := zero.CheckFlitConservation(); err != nil {
		t.Fatal(err)
	}
}
