package mesh

import (
	"strings"
	"testing"

	"ptbsim/internal/eventq"
	"ptbsim/internal/power"
)

// TestCheckFlitConservationAcrossTraffic routes messages of several sizes
// across the mesh (multi-hop, local, contended) and verifies routed
// flit-hops always reconcile with the metered link and router events.
func TestCheckFlitConservationAcrossTraffic(t *testing.T) {
	q := &eventq.Queue{}
	m := power.NewMeter(4)
	net := New(4, q, m)
	delivered := 0
	for i := 0; i < 4; i++ {
		net.SetHandler(i, func(any) { delivered++ })
	}
	net.Send(0, 3, FlitsFor(64), nil) // corner to corner
	net.Send(1, 1, FlitsFor(8), nil)  // local: no link traversal
	net.Send(0, 3, FlitsFor(64), nil) // contends with the first
	net.Send(2, 0, FlitsFor(8), nil)
	for c := int64(1); !q.Empty() && c < 10_000; c++ {
		q.RunUntil(c)
	}
	if !q.Empty() {
		t.Fatal("mesh did not quiesce")
	}
	if delivered != 4 {
		t.Fatalf("delivered %d of 4 messages", delivered)
	}
	if err := net.CheckFlitConservation(); err != nil {
		t.Fatal(err)
	}
	if net.FlitHops() == 0 {
		t.Fatal("no flit-hops routed; conservation was checked vacuously")
	}
}

// TestCheckFlitConservationDetectsSkew injects a metered NoC event with no
// matching routed flit and expects the reconciliation to fail — the
// signature of charging NoC energy outside the routing path (or routing
// without charging).
func TestCheckFlitConservationDetectsSkew(t *testing.T) {
	q := &eventq.Queue{}
	m := power.NewMeter(4)
	net := New(4, q, m)
	for i := 0; i < 4; i++ {
		net.SetHandler(i, func(any) {})
	}
	net.Send(0, 3, FlitsFor(8), nil)
	for c := int64(1); !q.Empty() && c < 10_000; c++ {
		q.RunUntil(c)
	}
	m.Add(0, power.EvNoCLink, 1) // phantom link event
	err := net.CheckFlitConservation()
	if err == nil {
		t.Fatal("phantom NoC energy event went undetected")
	}
	if !strings.Contains(err.Error(), "flit conservation broken") {
		t.Fatalf("unexpected error text: %q", err)
	}
}
