package thermal

import "ptbsim/internal/ckpt"

// HashState folds the thermal RC state and its statistics into h for
// checkpoint digests. The field order is append-only.
func (m *Model) HashState(h *ckpt.Hasher) {
	for i := 0; i < m.nCores; i++ {
		h.WriteF64(m.tempC[i])
		h.WriteF64(m.accPJ[i])
		h.WriteF64(m.sum[i])
		h.WriteF64(m.sumSq[i])
	}
	h.WriteI64(m.accCycles)
	h.WriteI64(m.n)
}
