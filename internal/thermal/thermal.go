// Package thermal provides a lumped-RC per-core thermal model in the spirit
// of HotSpot's simplest configuration (Skadron et al. [20]). The paper uses
// temperature qualitatively — PTB's accurate budget tracking yields a more
// stable temperature than DVFS — and a first-order RC captures exactly that
// effect: temperature follows low-passed power.
package thermal

import "math"

// Model integrates per-core temperatures from per-cycle energies.
type Model struct {
	nCores  int
	tempC   []float64
	ambient float64
	rTh     float64 // K/W junction-to-ambient per core tile
	cTh     float64 // J/K per core tile

	interval     int64 // integration step in cycles
	cycleSeconds float64
	accPJ        []float64
	accCycles    int64

	sum   []float64
	sumSq []float64
	n     int64
}

// Option-free constructor with sensible 32nm-class defaults. The
// capacitance is scaled down so the thermal time constant (~50µs) is
// observable within the microsecond-scale windows a cycle-level simulator
// can afford — the standard acceleration when pairing HotSpot-style models
// with detailed simulation. Relative effects (PTB's steadier power → lower
// temperature variation) are preserved; absolute transient speed is not
// meaningful at either setting.
const (
	// DefaultAmbientC is the intra-package ambient temperature.
	DefaultAmbientC = 45.0
	// DefaultRth is the per-tile junction-to-ambient thermal resistance.
	DefaultRth = 8.0 // K/W
	// DefaultCth is the per-tile thermal capacitance (accelerated).
	DefaultCth = 6e-6 // J/K → time constant ~48µs ≈ 144k cycles
	// DefaultInterval is the integration step in cycles.
	DefaultInterval = 2000
)

// New creates a thermal model for nCores tiles, all starting at ambient.
func New(nCores int, cycleSeconds float64) *Model {
	m := &Model{
		nCores:       nCores,
		tempC:        make([]float64, nCores),
		ambient:      DefaultAmbientC,
		rTh:          DefaultRth,
		cTh:          DefaultCth,
		interval:     DefaultInterval,
		cycleSeconds: cycleSeconds,
		accPJ:        make([]float64, nCores),
		sum:          make([]float64, nCores),
		sumSq:        make([]float64, nCores),
	}
	for i := range m.tempC {
		m.tempC[i] = m.ambient
	}
	return m
}

// Record adds one cycle's per-core energies (pJ) and advances the RC
// integration on interval boundaries.
func (m *Model) Record(perCorePJ []float64) {
	for i, e := range perCorePJ {
		m.accPJ[i] += e
	}
	m.accCycles++
	if m.accCycles >= m.interval {
		// C dT/dt = P - (T - Tamb)/R, integrated exactly over the step.
		m.integrate()
	}
}

// Advance integrates a constant per-core power (given as pJ/cycle) over
// many cycles at once. It is equivalent to calling Record repeatedly and
// exists for coarse-grained callers and tests.
func (m *Model) Advance(perCorePJ []float64, cycles int64) {
	for cycles > 0 {
		step := m.interval - m.accCycles
		if step > cycles {
			step = cycles
		}
		for i, e := range perCorePJ {
			m.accPJ[i] += e * float64(step)
		}
		m.accCycles += step - 1
		cycles -= step
		// Reuse Record's boundary handling for the final cycle of the step.
		m.accCycles++
		if m.accCycles >= m.interval {
			m.integrate()
		}
	}
}

// integrate folds the accumulated energy into the RC state.
func (m *Model) integrate() {
	dt := float64(m.accCycles) * m.cycleSeconds
	for i := range m.tempC {
		pW := m.accPJ[i] * 1e-12 / dt
		tau := m.rTh * m.cTh
		tInf := m.ambient + pW*m.rTh
		m.tempC[i] = tInf + (m.tempC[i]-tInf)*math.Exp(-dt/tau)
		m.sum[i] += m.tempC[i]
		m.sumSq[i] += m.tempC[i] * m.tempC[i]
		m.accPJ[i] = 0
	}
	m.n++
	m.accCycles = 0
}

// ResetStats clears the mean/std accumulators without touching the current
// temperatures, so callers can exclude warm-up transients.
func (m *Model) ResetStats() {
	for i := range m.sum {
		m.sum[i] = 0
		m.sumSq[i] = 0
	}
	m.n = 0
}

// TempC returns the current temperature of a core.
func (m *Model) TempC(core int) float64 { return m.tempC[core] }

// MeanTempC returns the time- and core-averaged temperature.
func (m *Model) MeanTempC() float64 {
	if m.n == 0 {
		return m.ambient
	}
	s := 0.0
	for _, v := range m.sum {
		s += v
	}
	return s / float64(m.n) / float64(m.nCores)
}

// StdTempC returns the average per-core standard deviation of temperature
// over time — the paper's temperature-stability indicator.
func (m *Model) StdTempC() float64 {
	if m.n < 2 {
		return 0
	}
	n := float64(m.n)
	total := 0.0
	for i := range m.sum {
		mean := m.sum[i] / n
		v := m.sumSq[i]/n - mean*mean
		if v < 0 {
			v = 0
		}
		total += math.Sqrt(v)
	}
	return total / float64(m.nCores)
}
