package thermal

import (
	"testing"

	"ptbsim/internal/metrics"
)

func TestHeatsUpUnderLoad(t *testing.T) {
	m := New(1, metrics.CycleSeconds)
	// 2000 pJ/cycle at 3GHz = 6W; steady state = ambient + 6W * Rth.
	m.Advance([]float64{2000}, 600_000)
	if m.TempC(0) <= DefaultAmbientC {
		t.Fatalf("no heating: %v", m.TempC(0))
	}
	// Run ~20 thermal time constants to converge.
	tauCycles := int64(DefaultRth * DefaultCth / metrics.CycleSeconds)
	m.Advance([]float64{2000}, 20*tauCycles)
	want := DefaultAmbientC + 6*DefaultRth
	if d := m.TempC(0) - want; d > 0.5 || d < -0.5 {
		t.Fatalf("steady state %v, want ~%v", m.TempC(0), want)
	}
}

func TestCoolsDownWhenIdle(t *testing.T) {
	m := New(1, metrics.CycleSeconds)
	m.Advance([]float64{3000}, 30_000_000)
	hot := m.TempC(0)
	m.Advance([]float64{0}, 30_000_000)
	if m.TempC(0) >= hot {
		t.Fatal("no cooling after load removed")
	}
}

func TestRecordMatchesAdvance(t *testing.T) {
	a := New(1, metrics.CycleSeconds)
	b := New(1, metrics.CycleSeconds)
	e := []float64{1234}
	for i := 0; i < 3*DefaultInterval; i++ {
		a.Record(e)
	}
	b.Advance(e, 3*DefaultInterval)
	if a.TempC(0) != b.TempC(0) {
		t.Fatalf("Record %v != Advance %v", a.TempC(0), b.TempC(0))
	}
}

func TestStableLoadLowStd(t *testing.T) {
	tauCycles := int64(DefaultRth * DefaultCth / metrics.CycleSeconds)

	stable := New(1, metrics.CycleSeconds)
	stable.Advance([]float64{1500}, 20*tauCycles) // warm to steady state
	stable.ResetStats()
	stable.Advance([]float64{1500}, 10*tauCycles)

	osc := New(1, metrics.CycleSeconds)
	osc.Advance([]float64{1500}, 20*tauCycles)
	osc.ResetStats()
	for i := 0; i < 20; i++ {
		p := 0.0
		if i%2 == 0 {
			p = 3000
		}
		osc.Advance([]float64{p}, tauCycles/2)
	}
	if osc.StdTempC() <= stable.StdTempC() {
		t.Fatalf("oscillating load std %.4f not above stable %.4f",
			osc.StdTempC(), stable.StdTempC())
	}
}

func TestMeanTempTracksPower(t *testing.T) {
	low := New(1, metrics.CycleSeconds)
	low.Advance([]float64{500}, 20_000_000)
	high := New(1, metrics.CycleSeconds)
	high.Advance([]float64{2500}, 20_000_000)
	if high.MeanTempC() <= low.MeanTempC() {
		t.Fatal("higher power did not produce higher mean temperature")
	}
}

func TestPerCoreIndependence(t *testing.T) {
	m := New(2, metrics.CycleSeconds)
	m.Advance([]float64{2500, 100}, 20_000_000)
	if m.TempC(0) <= m.TempC(1) {
		t.Fatalf("hot core %v not hotter than idle core %v", m.TempC(0), m.TempC(1))
	}
}

func TestResetStatsKeepsTemperature(t *testing.T) {
	m := New(1, metrics.CycleSeconds)
	m.Advance([]float64{2500}, 10_000_000)
	temp := m.TempC(0)
	m.ResetStats()
	if m.TempC(0) != temp {
		t.Fatal("ResetStats changed the temperature state")
	}
	if m.MeanTempC() != DefaultAmbientC {
		t.Fatal("stats not cleared")
	}
}
