package syncprim

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/isa"
)

func lockTry(id int32) isa.Inst {
	return isa.Inst{Op: isa.OpAtomicRMW, SyncOp: isa.SyncLockTry, SyncID: id}
}

func unlock(id int32) isa.Inst {
	return isa.Inst{Op: isa.OpAtomicRMW, SyncOp: isa.SyncUnlock, SyncID: id}
}

func arrive(id int32) isa.Inst {
	return isa.Inst{Op: isa.OpAtomicRMW, SyncOp: isa.SyncBarrierArrive, SyncID: id}
}

func TestLockMutualExclusion(t *testing.T) {
	tab := NewTable(4, 1, 0)
	if tab.Eval(0, lockTry(0)) != 1 {
		t.Fatal("first TryLock must win")
	}
	for c := 1; c < 4; c++ {
		if tab.Eval(c, lockTry(0)) != 0 {
			t.Fatalf("core %d acquired a held lock", c)
		}
	}
	if tab.LockHolder(0) != 0 {
		t.Fatalf("holder = %d, want 0", tab.LockHolder(0))
	}
	tab.Eval(0, unlock(0))
	if tab.LockHolder(0) != -1 {
		t.Fatal("lock still held after unlock")
	}
	if tab.Eval(2, lockTry(0)) != 1 {
		t.Fatal("TryLock after release must win")
	}
	if tab.Acquisitions(0) != 2 || tab.ContendedTries(0) != 3 {
		t.Fatalf("stats: acq=%d cont=%d", tab.Acquisitions(0), tab.ContendedTries(0))
	}
}

func TestSpinLockRead(t *testing.T) {
	tab := NewTable(2, 1, 0)
	spin := isa.Inst{Op: isa.OpLoad, SyncOp: isa.SyncSpinLock, SyncID: 0}
	if tab.Eval(1, spin) != 1 {
		t.Fatal("free lock should read as free")
	}
	tab.Eval(0, lockTry(0))
	if tab.Eval(1, spin) != 0 {
		t.Fatal("held lock should read as held")
	}
}

func TestBarrierRelease(t *testing.T) {
	tab := NewTable(3, 0, 1)
	var results []int64
	for c := 0; c < 3; c++ {
		results = append(results, tab.Eval(c, arrive(0)))
	}
	for i, r := range results[:2] {
		last, gen := DecodeArrive(r)
		if last || gen != 0 {
			t.Fatalf("arriver %d: last=%v gen=%d", i, last, gen)
		}
	}
	last, gen := DecodeArrive(results[2])
	if !last || gen != 0 {
		t.Fatalf("final arriver: last=%v gen=%d", last, gen)
	}
	spin := isa.Inst{Op: isa.OpLoad, SyncOp: isa.SyncSpinBarrier, SyncID: 0, SyncArg: 0}
	if tab.Eval(0, spin) != 1 {
		t.Fatal("barrier generation 0 should have completed")
	}
	spin.SyncArg = 1
	if tab.Eval(0, spin) != 0 {
		t.Fatal("generation 1 should not have completed")
	}
	if tab.BarrierEpisodes(0) != 1 {
		t.Fatalf("episodes = %d", tab.BarrierEpisodes(0))
	}
}

func TestBarrierMultipleEpisodes(t *testing.T) {
	tab := NewTable(2, 0, 1)
	for ep := 0; ep < 5; ep++ {
		r0 := tab.Eval(0, arrive(0))
		r1 := tab.Eval(1, arrive(0))
		l0, g0 := DecodeArrive(r0)
		l1, g1 := DecodeArrive(r1)
		if l0 || !l1 {
			t.Fatalf("episode %d: last flags %v %v", ep, l0, l1)
		}
		if g0 != int64(ep) || g1 != int64(ep) {
			t.Fatalf("episode %d: generations %d %d", ep, g0, g1)
		}
	}
}

func TestEncodeDecodeArriveProperty(t *testing.T) {
	f := func(gen uint32, last bool) bool {
		l, g := DecodeArrive(EncodeArrive(last, int64(gen)))
		return l == last && g == int64(gen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressesDistinct(t *testing.T) {
	tab := NewTable(4, 8, 4)
	seen := map[uint64]bool{}
	check := func(a uint64) {
		if a < Region {
			t.Fatalf("sync address %#x below region base", a)
		}
		if a%isa.CacheLineSize != 0 {
			t.Fatalf("sync address %#x not line aligned", a)
		}
		if seen[a] {
			t.Fatalf("duplicate sync address %#x", a)
		}
		seen[a] = true
	}
	for i := int32(0); i < 8; i++ {
		check(tab.LockAddr(i))
	}
	for i := int32(0); i < 4; i++ {
		check(tab.BarrierCounterAddr(i))
		check(tab.BarrierFlagAddr(i))
	}
}

func TestStateTracking(t *testing.T) {
	tab := NewTable(4, 0, 0)
	tab.SetState(0, isa.SyncLockAcq)
	tab.SetState(1, isa.SyncBarrier)
	tab.SetState(2, isa.SyncBarrier)
	lockSpin, barrierSpin, busy := tab.SpinBreakdown()
	if lockSpin != 1 || barrierSpin != 2 || busy != 1 {
		t.Fatalf("breakdown = %d/%d/%d", lockSpin, barrierSpin, busy)
	}
	if tab.State(1) != isa.SyncBarrier {
		t.Fatal("state readback failed")
	}
}

func TestEvalNoneIsNoop(t *testing.T) {
	tab := NewTable(1, 1, 1)
	if tab.Eval(0, isa.Inst{Op: isa.OpIntAlu}) != 0 {
		t.Fatal("plain instruction produced a sync result")
	}
}
