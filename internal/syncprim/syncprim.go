// Package syncprim holds the logical state of the locks and barriers the
// synthetic workloads synchronize on.
//
// Timing is emergent, not scripted: each lock and barrier owns dedicated
// cache lines in the shared address space, and the workload generators emit
// real atomic read-modify-writes and spin loads against those lines, so
// invalidation storms, line ping-pong and directory queueing are produced by
// the coherence protocol. This package only answers the *value* questions —
// "did the test-and-set win?", "has generation g completed?" — evaluated at
// the cycle the corresponding instruction executes.
//
// The value-vs-coherence approximation: a spinner may observe a value change
// one L1 hit before its stale copy is invalidated. The error is bounded by
// one spin iteration (tens of cycles) against synchronization waits of
// thousands, and is documented in DESIGN.md.
package syncprim

import (
	"ptbsim/internal/isa"
)

// Region is the base of the shared address region holding sync variables;
// workload data regions must stay below it.
const Region uint64 = 0x4000_0000

type lock struct {
	held   bool
	holder int
	// acquisitions counts successful TryLocks, for stats and tests.
	acquisitions int64
	contended    int64
}

type barrier struct {
	parties    int
	count      int
	generation int64
	episodes   int64
}

// Table is the chip-wide logical synchronization state plus the per-core
// activity classification used by the Fig. 3 breakdown and the §IV.B
// dynamic policy selector.
type Table struct {
	nCores   int
	locks    []lock
	barriers []barrier
	state    []isa.SyncClass
}

// NewTable creates a table for nCores cores with the given number of locks
// and barriers. Barriers expect all nCores cores to arrive.
func NewTable(nCores, nLocks, nBarriers int) *Table {
	t := &Table{
		nCores:   nCores,
		locks:    make([]lock, nLocks),
		barriers: make([]barrier, nBarriers),
		state:    make([]isa.SyncClass, nCores),
	}
	for i := range t.barriers {
		t.barriers[i].parties = nCores
	}
	return t
}

// NumLocks returns the number of locks.
func (t *Table) NumLocks() int { return len(t.locks) }

// NumBarriers returns the number of barriers.
func (t *Table) NumBarriers() int { return len(t.barriers) }

// LockAddr returns the byte address of a lock's cache line.
func (t *Table) LockAddr(id int32) uint64 {
	return Region + uint64(id)*isa.CacheLineSize
}

// BarrierCounterAddr returns the byte address of a barrier's arrival
// counter line.
func (t *Table) BarrierCounterAddr(id int32) uint64 {
	return Region + uint64(len(t.locks)+int(id)*2)*isa.CacheLineSize
}

// BarrierFlagAddr returns the byte address of a barrier's release flag
// line. Spinners wait on this line; the last arriver stores to it.
func (t *Table) BarrierFlagAddr(id int32) uint64 {
	return Region + uint64(len(t.locks)+int(id)*2+1)*isa.CacheLineSize
}

// SetState records what core is logically doing; the workload generators
// call it at phase transitions.
func (t *Table) SetState(core int, class isa.SyncClass) { t.state[core] = class }

// State returns the core's current activity class.
func (t *Table) State(core int) isa.SyncClass { return t.state[core] }

// barrierArriveEncode packs (lastArriver, generationAtArrival) into the
// int64 result of a SyncBarrierArrive: bit 62 marks the last arriver, the
// low bits carry the generation the arriver must wait past.
const barrierLastBit = int64(1) << 62

// EncodeArrive packs a barrier-arrival result.
func EncodeArrive(last bool, gen int64) int64 {
	if last {
		return gen | barrierLastBit
	}
	return gen
}

// DecodeArrive unpacks a barrier-arrival result.
func DecodeArrive(r int64) (last bool, gen int64) {
	return r&barrierLastBit != 0, r &^ barrierLastBit
}

// Eval evaluates a synchronization instruction's logical effect at the
// moment it executes and returns the value delivered to the workload
// generator via Source.Resolve.
func (t *Table) Eval(core int, inst isa.Inst) int64 {
	switch inst.SyncOp {
	case isa.SyncNone:
		return 0
	case isa.SyncLockTry:
		l := &t.locks[inst.SyncID]
		if l.held {
			l.contended++
			return 0
		}
		l.held = true
		l.holder = core
		l.acquisitions++
		return 1
	case isa.SyncUnlock:
		l := &t.locks[inst.SyncID]
		// Unlock by a non-holder indicates a generator bug; the logical
		// model tolerates it but the workload tests assert it never
		// happens.
		l.held = false
		return 0
	case isa.SyncBarrierArrive:
		b := &t.barriers[inst.SyncID]
		gen := b.generation
		b.count++
		if b.count >= b.parties {
			b.count = 0
			b.generation++
			b.episodes++
			return EncodeArrive(true, gen)
		}
		return EncodeArrive(false, gen)
	case isa.SyncSpinLock:
		if t.locks[inst.SyncID].held {
			return 0
		}
		return 1
	case isa.SyncSpinBarrier:
		if t.barriers[inst.SyncID].generation > inst.SyncArg {
			return 1
		}
		return 0
	}
	return 0
}

// LockHolder returns the core currently holding a lock, or -1.
func (t *Table) LockHolder(id int32) int {
	l := t.locks[id]
	if !l.held {
		return -1
	}
	return l.holder
}

// Acquisitions returns the number of successful acquisitions of a lock.
func (t *Table) Acquisitions(id int32) int64 { return t.locks[id].acquisitions }

// ContendedTries returns the number of failed test-and-sets on a lock.
func (t *Table) ContendedTries(id int32) int64 { return t.locks[id].contended }

// BarrierEpisodes returns the number of completed episodes of a barrier.
func (t *Table) BarrierEpisodes(id int32) int64 { return t.barriers[id].episodes }

// SpinBreakdown reports, over all cores, how many are currently in each
// activity class. The dynamic policy selector uses the lock/barrier split.
func (t *Table) SpinBreakdown() (lockSpin, barrierSpin, busy int) {
	for _, s := range t.state {
		switch s {
		case isa.SyncLockAcq, isa.SyncLockRel:
			lockSpin++
		case isa.SyncBarrier:
			barrierSpin++
		default:
			busy++
		}
	}
	return
}
