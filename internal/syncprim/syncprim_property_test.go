package syncprim

import (
	"testing"
	"testing/quick"

	"ptbsim/internal/isa"
	"ptbsim/internal/xrand"
)

// TestPropertyLockNeverDoubleGranted: under any interleaving of try/unlock
// operations, at most one core holds each lock and only successful tries
// transfer ownership.
func TestPropertyLockNeverDoubleGranted(t *testing.T) {
	f := func(seed uint64) bool {
		const cores = 6
		const locks = 3
		tab := NewTable(cores, locks, 1)
		rng := xrand.New(seed)
		holder := make([]int, locks)
		for i := range holder {
			holder[i] = -1
		}
		for step := 0; step < 3000; step++ {
			c := rng.Intn(cores)
			l := int32(rng.Intn(locks))
			if holder[l] == c {
				// Holder releases.
				tab.Eval(c, isa.Inst{Op: isa.OpAtomicRMW, SyncOp: isa.SyncUnlock, SyncID: l})
				holder[l] = -1
				continue
			}
			r := tab.Eval(c, isa.Inst{Op: isa.OpAtomicRMW, SyncOp: isa.SyncLockTry, SyncID: l})
			if r == 1 {
				if holder[l] != -1 {
					return false // double grant
				}
				holder[l] = c
			} else if holder[l] == -1 {
				return false // free lock refused
			}
			// Spin reads agree with the model.
			spin := tab.Eval(c, isa.Inst{Op: isa.OpLoad, SyncOp: isa.SyncSpinLock, SyncID: l})
			if (spin == 1) != (holder[l] == -1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBarrierGenerations: for any arrival order, each episode has
// exactly one "last" arriver, generations advance by one per episode, and
// a generation only reads as complete after its episode finished.
func TestPropertyBarrierGenerations(t *testing.T) {
	f := func(seed uint64, parties8 uint8) bool {
		parties := 2 + int(parties8)%6
		tab := NewTable(parties, 0, 1)
		rng := xrand.New(seed)
		order := make([]int, parties)
		for episode := 0; episode < 10; episode++ {
			rng.Perm(order)
			lastSeen := 0
			for i, c := range order {
				r := tab.Eval(c, isa.Inst{Op: isa.OpAtomicRMW, SyncOp: isa.SyncBarrierArrive, SyncID: 0})
				last, gen := DecodeArrive(r)
				if gen != int64(episode) {
					return false
				}
				if last {
					lastSeen++
					if i != parties-1 {
						return false // someone was "last" early
					}
				}
				// The episode must not read complete until it is.
				done := tab.Eval(c, isa.Inst{Op: isa.OpLoad, SyncOp: isa.SyncSpinBarrier, SyncID: 0, SyncArg: gen})
				if i < parties-1 && done == 1 {
					return false
				}
				if i == parties-1 && done != 1 {
					return false
				}
			}
			if lastSeen != 1 {
				return false
			}
		}
		return tab.BarrierEpisodes(0) == 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
