package syncprim

import "ptbsim/internal/ckpt"

// HashState folds the chip's logical synchronization state into h for
// checkpoint digests. The field order is append-only.
func (t *Table) HashState(h *ckpt.Hasher) {
	for i := range t.locks {
		l := &t.locks[i]
		h.WriteBool(l.held)
		h.WriteInt(l.holder)
		h.WriteI64(l.acquisitions)
		h.WriteI64(l.contended)
	}
	for i := range t.barriers {
		b := &t.barriers[i]
		h.WriteInt(b.parties)
		h.WriteInt(b.count)
		h.WriteI64(b.generation)
		h.WriteI64(b.episodes)
	}
	for _, s := range t.state {
		h.WriteInt(int(s))
	}
}
