package metrics

import "ptbsim/internal/ckpt"

// HashState folds the collector's accumulated statistics into h for
// checkpoint digests. The optional power trace is excluded: TraceEvery
// is not part of the stable config wire schema, so a resumed run may
// legitimately trace differently — everything that reaches Result
// digests is covered by the accumulators below. The field order is
// append-only.
func (c *Collector) HashState(h *ckpt.Hasher) {
	h.WriteI64(c.cycles)
	h.WriteF64(c.chipEnergyPJ)
	h.WriteF64(c.aopbPJ)
	h.WriteI64(c.overCycles)
	h.WriteF64(c.sumChip)
	h.WriteF64(c.sumChipSq)
	for _, v := range c.classCycles {
		h.WriteI64(v)
	}
	for _, v := range c.classEnergy {
		h.WriteF64(v)
	}
	for _, v := range c.perCoreLast {
		h.WriteF64(v)
	}
}
