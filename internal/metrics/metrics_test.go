package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"ptbsim/internal/isa"
)

func TestAoPBIntegration(t *testing.T) {
	c := NewCollector(2, 100, 0)
	busy := []isa.SyncClass{isa.SyncBusy, isa.SyncBusy}
	// Cycle 1: 120 pJ total → 20 over. Cycle 2: 80 → 0 over.
	c.Record([]float64{70, 50}, busy)
	c.Record([]float64{40, 40}, busy)
	wantA := 20 * PJToJ
	if math.Abs(c.AoPBJ()-wantA) > 1e-18 {
		t.Fatalf("AoPB = %v, want %v", c.AoPBJ(), wantA)
	}
	wantE := 200 * PJToJ
	if math.Abs(c.EnergyJ()-wantE) > 1e-18 {
		t.Fatalf("Energy = %v, want %v", c.EnergyJ(), wantE)
	}
	if c.OverBudgetFrac() != 0.5 {
		t.Fatalf("over-budget fraction = %v", c.OverBudgetFrac())
	}
}

func TestAoPBDisabled(t *testing.T) {
	c := NewCollector(1, 0, 0)
	c.Record([]float64{1000}, []isa.SyncClass{isa.SyncBusy})
	if c.AoPBJ() != 0 {
		t.Fatal("AoPB tracked without a budget")
	}
}

func TestClassBreakdown(t *testing.T) {
	c := NewCollector(2, 0, 0)
	c.Record([]float64{10, 10}, []isa.SyncClass{isa.SyncBusy, isa.SyncBarrier})
	c.Record([]float64{10, 10}, []isa.SyncClass{isa.SyncLockAcq, isa.SyncBarrier})
	f := c.ClassCycleFrac()
	if f[isa.SyncBusy] != 0.25 || f[isa.SyncBarrier] != 0.5 || f[isa.SyncLockAcq] != 0.25 {
		t.Fatalf("breakdown = %v", f)
	}
}

func TestSpinEnergyFrac(t *testing.T) {
	c := NewCollector(2, 0, 0)
	c.Record([]float64{30, 10}, []isa.SyncClass{isa.SyncBusy, isa.SyncBarrier})
	if got := c.SpinEnergyFrac(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("spin energy fraction = %v, want 0.25", got)
	}
}

func TestPowerStats(t *testing.T) {
	c := NewCollector(1, 0, 0)
	for i := 0; i < 100; i++ {
		c.Record([]float64{300}, []isa.SyncClass{isa.SyncBusy})
	}
	// 300 pJ/cycle at 3GHz = 0.9W.
	if got := c.MeanPowerW(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("mean power %v, want 0.9", got)
	}
	if got := c.StdPowerW(); got > 1e-9 {
		t.Fatalf("constant power should have zero std, got %v", got)
	}
}

func TestTraceSubsampling(t *testing.T) {
	c := NewCollector(1, 0, 10)
	for i := 0; i < 100; i++ {
		c.Record([]float64{float64(i)}, []isa.SyncClass{isa.SyncBusy})
	}
	if len(c.Trace()) != 10 {
		t.Fatalf("trace has %d samples, want 10", len(c.Trace()))
	}
}

func TestTraceReturnsCopy(t *testing.T) {
	c := NewCollector(1, 0, 1)
	for i := 0; i < 5; i++ {
		c.Record([]float64{float64(i)}, []isa.SyncClass{isa.SyncBusy})
	}
	first := c.Trace()
	first[0] = -1
	if got := c.Trace()[0]; got != 0 {
		t.Fatalf("mutating a returned trace corrupted the collector: trace[0] = %v", got)
	}
}

func TestNormalization(t *testing.T) {
	base := &RunResult{EnergyJ: 2.0, AoPBJ: 0.5, Cycles: 1000}
	r := &RunResult{EnergyJ: 1.9, AoPBJ: 0.05, Cycles: 1100}
	if got := NormalizedEnergyPct(r, base); math.Abs(got+5) > 1e-9 {
		t.Fatalf("energy pct = %v, want -5", got)
	}
	if got := NormalizedAoPBPct(r, base); math.Abs(got-10) > 1e-9 {
		t.Fatalf("AoPB pct = %v, want 10", got)
	}
	if got := SlowdownPct(r, base); math.Abs(got-10) > 1e-9 {
		t.Fatalf("slowdown = %v, want 10", got)
	}
}

func TestNormalizationZeroBase(t *testing.T) {
	base := &RunResult{}
	r := &RunResult{EnergyJ: 1}
	if NormalizedEnergyPct(r, base) != 0 || NormalizedAoPBPct(r, base) != 0 || SlowdownPct(r, base) != 0 {
		t.Fatal("zero base should normalize to 0, not NaN")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if math.Abs(Std(xs)-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", Std(xs))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
}

func TestAoPBNonNegativeProperty(t *testing.T) {
	f := func(vals []uint16, budget uint16) bool {
		c := NewCollector(1, float64(budget), 0)
		for _, v := range vals {
			c.Record([]float64{float64(v)}, []isa.SyncClass{isa.SyncBusy})
		}
		return c.AoPBJ() >= 0 && c.EnergyJ() >= c.AoPBJ()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEDPAndED2P(t *testing.T) {
	r := &RunResult{EnergyJ: 2, Cycles: 3_000_000_000} // 1 second at 3GHz
	if math.Abs(r.EDP()-2) > 1e-9 {
		t.Fatalf("EDP = %v, want 2 J·s", r.EDP())
	}
	if math.Abs(r.ED2P()-2) > 1e-9 {
		t.Fatalf("ED2P = %v, want 2 J·s²", r.ED2P())
	}
	// Halving runtime at equal energy halves EDP and quarters ED2P.
	half := &RunResult{EnergyJ: 2, Cycles: 1_500_000_000}
	if math.Abs(half.EDP()-1) > 1e-9 || math.Abs(half.ED2P()-0.5) > 1e-9 {
		t.Fatalf("EDP/ED2P scaling wrong: %v %v", half.EDP(), half.ED2P())
	}
}

func TestClassAvgPJ(t *testing.T) {
	c := NewCollector(2, 0, 0)
	c.Record([]float64{100, 20}, []isa.SyncClass{isa.SyncBusy, isa.SyncBarrier})
	c.Record([]float64{200, 40}, []isa.SyncClass{isa.SyncBusy, isa.SyncBarrier})
	avg := c.ClassAvgPJ()
	if avg[isa.SyncBusy] != 150 || avg[isa.SyncBarrier] != 30 {
		t.Fatalf("class averages %v", avg)
	}
	if avg[isa.SyncLockAcq] != 0 {
		t.Fatal("unvisited class should average 0")
	}
}
