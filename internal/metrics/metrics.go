// Package metrics implements the paper's evaluation metrics: Area over the
// Power Budget (AoPB, Fig. 1), total energy, performance, the Fig. 3
// execution-time breakdown, the Fig. 4 spinning-power share, and power/
// temperature statistics.
package metrics

import (
	"math"

	"ptbsim/internal/isa"
)

// CycleSeconds is the duration of one 3GHz cycle.
const CycleSeconds = 1.0 / 3e9

// PJToJ converts picojoules to joules.
const PJToJ = 1e-12

// Collector accumulates per-cycle measurements during a run.
type Collector struct {
	nCores   int
	budgetPJ float64 // global per-cycle budget; <=0 disables AoPB tracking

	cycles       int64
	chipEnergyPJ float64
	aopbPJ       float64
	overCycles   int64

	sumChip   float64
	sumChipSq float64

	// classCycles[class] counts core-cycles spent in each activity class
	// chip-wide; classEnergy[class] the corresponding energy.
	classCycles [isa.NumSyncClasses]int64
	classEnergy [isa.NumSyncClasses]float64

	// optional per-cycle chip power trace (pJ/cycle), subsampled.
	trace       []float64
	traceEvery  int64
	perCoreLast []float64
}

// NewCollector creates a collector. budgetPJ is the global per-cycle energy
// budget in picojoules (pass 0 when no budget applies). traceEvery > 0
// records the chip cycle energy every traceEvery cycles.
func NewCollector(nCores int, budgetPJ float64, traceEvery int64) *Collector {
	return &Collector{
		nCores:      nCores,
		budgetPJ:    budgetPJ,
		traceEvery:  traceEvery,
		perCoreLast: make([]float64, nCores),
	}
}

// Record accumulates one cycle: per-core tile energies (pJ) and per-core
// activity classes.
func (c *Collector) Record(perCorePJ []float64, classes []isa.SyncClass) {
	c.cycles++
	var chip float64
	for i, e := range perCorePJ {
		chip += e
		cl := classes[i]
		c.classCycles[cl]++
		c.classEnergy[cl] += e
	}
	copy(c.perCoreLast, perCorePJ)
	c.chipEnergyPJ += chip
	c.sumChip += chip
	c.sumChipSq += chip * chip
	if c.budgetPJ > 0 && chip > c.budgetPJ {
		c.aopbPJ += chip - c.budgetPJ
		c.overCycles++
	}
	if c.traceEvery > 0 && c.cycles%c.traceEvery == 0 {
		c.trace = append(c.trace, chip)
	}
}

// Cycles returns the number of recorded cycles.
func (c *Collector) Cycles() int64 { return c.cycles }

// EnergyJ returns the total chip energy in joules.
func (c *Collector) EnergyJ() float64 { return c.chipEnergyPJ * PJToJ }

// AoPBJ returns the area over the power budget in joules: the integral of
// chip power above the budget line (Fig. 1).
func (c *Collector) AoPBJ() float64 { return c.aopbPJ * PJToJ }

// OverBudgetFrac returns the fraction of cycles the chip exceeded the
// budget.
func (c *Collector) OverBudgetFrac() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.overCycles) / float64(c.cycles)
}

// MeanPowerW returns the mean chip power in watts.
func (c *Collector) MeanPowerW() float64 {
	if c.cycles == 0 {
		return 0
	}
	return (c.sumChip / float64(c.cycles)) * PJToJ / CycleSeconds
}

// StdPowerW returns the standard deviation of per-cycle chip power in
// watts. The paper emphasizes PTB's minimal deviation from the budget.
func (c *Collector) StdPowerW() float64 {
	if c.cycles < 2 {
		return 0
	}
	n := float64(c.cycles)
	mean := c.sumChip / n
	v := c.sumChipSq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v) * PJToJ / CycleSeconds
}

// ClassCycleFrac returns the fraction of core-cycles in each activity class
// (the Fig. 3 breakdown).
func (c *Collector) ClassCycleFrac() [isa.NumSyncClasses]float64 {
	var out [isa.NumSyncClasses]float64
	var total int64
	for _, v := range c.classCycles {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range c.classCycles {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// SpinEnergyFrac returns the fraction of chip energy consumed while cores
// were in spinning states (lock acquire/release + barrier), the Fig. 4
// metric.
func (c *Collector) SpinEnergyFrac() float64 {
	if c.chipEnergyPJ == 0 {
		return 0
	}
	spin := c.classEnergy[isa.SyncLockAcq] + c.classEnergy[isa.SyncLockRel] +
		c.classEnergy[isa.SyncBarrier]
	return spin / c.chipEnergyPJ
}

// Trace returns the recorded chip power samples (pJ/cycle). The returned
// slice is a copy: results built on a collector are shared across cached
// callers, so handing out the live internal slice would let one caller's
// mutation corrupt every other's trace.
func (c *Collector) Trace() []float64 {
	out := make([]float64, len(c.trace))
	copy(out, c.trace)
	return out
}

// ClassCycles returns the cumulative chip-wide core-cycles recorded per
// activity class (the counters behind ClassCycleFrac), for windowed
// observers that difference successive readouts.
func (c *Collector) ClassCycles() [isa.NumSyncClasses]int64 { return c.classCycles }

// ClassAvgPJ returns the average per-core-cycle energy spent in each
// activity class — the calibration view of how hot a busy core runs versus
// a spinning one.
func (c *Collector) ClassAvgPJ() [isa.NumSyncClasses]float64 {
	var out [isa.NumSyncClasses]float64
	for i := range out {
		if c.classCycles[i] > 0 {
			out[i] = c.classEnergy[i] / float64(c.classCycles[i])
		}
	}
	return out
}

// RunResult is the summary of one simulation run.
type RunResult struct {
	Benchmark string
	Cores     int
	Technique string
	Policy    string

	Cycles         int64
	Committed      int64
	EnergyJ        float64
	AoPBJ          float64
	MeanPowerW     float64
	StdPowerW      float64
	SpinEnergyFrac float64
	ClassFrac      [isa.NumSyncClasses]float64
	OverBudgetFrac float64

	// BudgetPJ is the global per-cycle power budget in picojoules — the
	// line the AoPB integral is measured against, carried on the result so
	// trace tooling does not need to rebuild the system to learn it.
	BudgetPJ float64

	MeanTempC float64
	StdTempC  float64

	// HitMaxCycles marks a run cut off by the safety cycle cap.
	HitMaxCycles bool

	// Token-flow ledger of the PTB balancer (zero for non-PTB techniques):
	// picojoules donated into the balancer, granted back out, discarded at
	// the budget clip, and the number of balancing rounds run.
	TokenDonatedPJ   float64
	TokenGrantedPJ   float64
	TokenDiscardedPJ float64
	BalanceRounds    int64

	// Coherence traffic totals across all home directory banks.
	CohGetS int64
	CohGetX int64
	CohPut  int64
	CohFwd  int64
	CohInv  int64

	// NoC totals: messages injected and flit-link traversals.
	NoCMessages int64
	NoCFlits    int64

	// ComponentJ breaks total energy down by structure group (frontend,
	// execute, caches, noc, dram, power-mgmt, clock, leakage), in joules.
	ComponentJ map[string]float64

	// Fault-injection telemetry (all zero unless a fault spec was wired).
	// None of these fields enter Result.Digest — the digest format is pinned
	// by the committed golden matrix, and the zero-rate identity is asserted
	// on the digest itself.

	// Degraded marks a run in which the PTB balancer left ideal operation:
	// a token batch was lost past the retry bound, or the stale-token
	// watchdog fell back to a static share.
	Degraded bool
	// FaultsInjected counts every fault decision that fired, all domains.
	FaultsInjected int64
	// TokenLostPJ and TokenDupPJ extend the token ledger under injection:
	// energy of batches lost past the retry bound, and extra energy from
	// duplicated batches.
	TokenLostPJ float64
	TokenDupPJ  float64
	// TokenRetries counts batch retransmissions; TokenReportsLost counts
	// lost core→balancer report messages; StaleFallbackCycles counts
	// core-cycles the watchdog ran on the static-share fallback.
	TokenRetries        int64
	TokenReportsLost    int64
	StaleFallbackCycles int64
	// NoCStallCycles and NoCRetransmits tally injected link faults.
	NoCStallCycles int64
	NoCRetransmits int64
	// DVFSGlitches counts failed mode transitions.
	DVFSGlitches int64
}

// EDP returns the energy-delay product in joule-seconds.
func (r *RunResult) EDP() float64 {
	return r.EnergyJ * float64(r.Cycles) * CycleSeconds
}

// ED2P returns the energy-delay² product in joule-seconds².
func (r *RunResult) ED2P() float64 {
	d := float64(r.Cycles) * CycleSeconds
	return r.EnergyJ * d * d
}

// NormalizedEnergyPct returns the paper's "Normalized Energy (%)": the
// energy delta of r versus the no-control base, in percent (negative =
// savings).
func NormalizedEnergyPct(r, base *RunResult) float64 {
	if base.EnergyJ == 0 {
		return 0
	}
	return (r.EnergyJ/base.EnergyJ - 1) * 100
}

// NormalizedAoPBPct returns the paper's "Normalized AoPB (%)": the area
// over the budget relative to the uncontrolled base case.
func NormalizedAoPBPct(r, base *RunResult) float64 {
	if base.AoPBJ == 0 {
		return 0
	}
	return r.AoPBJ / base.AoPBJ * 100
}

// SlowdownPct returns the performance degradation of r versus base in
// percent (positive = slower).
func SlowdownPct(r, base *RunResult) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return (float64(r.Cycles)/float64(base.Cycles) - 1) * 100
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}
