package dvfs

import "ptbsim/internal/ckpt"

// HashState folds the governor's ladder positions into h for checkpoint
// digests. The mode table is static configuration. The field order is
// append-only.
func (g *Governor) HashState(h *ckpt.Hasher) {
	for _, i := range g.idx {
		h.WriteInt(i)
	}
	h.WriteI64(g.transitions)
	h.WriteI64(g.glitches)
}
