package dvfs

import (
	"testing"

	"ptbsim/internal/fault"
)

// TestGlitchHoldsOperatingPoint: with glitch=1 every attempted transition
// fails — Decide reports a change (the caller charges the stall) but the
// core must stay at its current operating point, deterministically.
func TestGlitchHoldsOperatingPoint(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	g.SetFaults(fault.NewInjector(fault.Spec{Seed: 1, DVFSGlitch: 1}).DVFS())

	// Chip over budget, estimate far above the local budget: the governor
	// wants the deepest power-saving mode.
	for i := 1; i <= 5; i++ {
		mode, changed := g.Decide(0, 100, 50, true)
		if !changed {
			t.Fatalf("attempt %d: glitched transition must still report a change (stall is paid)", i)
		}
		if mode != DVFSModes()[0] {
			t.Fatalf("attempt %d: glitched core moved to %+v", i, mode)
		}
		if g.ModeIndex(0) != 0 {
			t.Fatalf("attempt %d: ladder position moved to %d", i, g.ModeIndex(0))
		}
	}
	if g.Glitches() != 5 {
		t.Fatalf("Glitches() = %d, want 5", g.Glitches())
	}
	if g.Transitions() != 0 {
		t.Fatalf("Transitions() = %d, want 0: no switch ever completed", g.Transitions())
	}
}

// TestZeroRateGlitchInjectorIsIdentity: a zero-rate injector (and a nil
// one) must leave the governor's transitions untouched.
func TestZeroRateGlitchInjectorIsIdentity(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	g.SetFaults(fault.NewInjector(fault.Spec{Seed: 42}).DVFS())
	g.SetFaults(nil) // no-op

	mode, changed := g.Decide(0, 100, 50, true)
	if !changed {
		t.Fatal("zero-rate governor refused the transition")
	}
	want := DVFSModes()[len(DVFSModes())-1]
	if mode != want {
		t.Fatalf("transitioned to %+v, want deepest mode %+v", mode, want)
	}
	if g.Glitches() != 0 {
		t.Fatalf("zero-rate injector glitched %d times", g.Glitches())
	}
	if g.Transitions() != 1 {
		t.Fatalf("Transitions() = %d, want 1", g.Transitions())
	}

	// Constraint lifted: the core steps straight back to full speed.
	mode, changed = g.Decide(0, 100, 50, false)
	if !changed || mode != DVFSModes()[0] {
		t.Fatalf("release: mode %+v changed=%t, want full speed", mode, changed)
	}
}
