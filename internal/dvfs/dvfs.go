// Package dvfs implements the paper's coarse-grained voltage/frequency
// controllers (§III.C): the five-mode DVFS ladder, the frequency-only DFS
// ladder, and a per-core window-based governor that walks a core up and
// down its ladder to converge on a local power budget.
//
// Transition timing follows the paper's best-case assumption for DVFS
// (Kim-style on-chip regulators, 30–50 mV/ns): a mode switch costs a few
// cycles of stall, set by TransitionTicks.
package dvfs

import "ptbsim/internal/fault"

// Mode is one (relative voltage, relative frequency) operating point.
type Mode struct {
	V float64
	F float64
}

// DVFSModes is the paper's ladder: (100%,100%), (95%,95%), (90%,90%),
// (90%,75%), (90%,65%).
func DVFSModes() []Mode {
	return []Mode{{1.00, 1.00}, {0.95, 0.95}, {0.90, 0.90}, {0.90, 0.75}, {0.90, 0.65}}
}

// DFSModes scales only frequency; VDD stays at 100%.
func DFSModes() []Mode {
	return []Mode{{1.00, 1.00}, {1.00, 0.95}, {1.00, 0.90}, {1.00, 0.75}, {1.00, 0.65}}
}

// DefaultTransitionTicks is the stall charged on a mode change (fast
// on-chip regulator; a slower off-chip regulator would be hundreds of
// cycles and would only favor the fine-grained techniques, as the paper
// notes).
const DefaultTransitionTicks = 30

// DefaultWindow is the observation window, in cycles, between governor
// decisions. DVFS cannot react per cycle — this window is exactly the
// "long exploration and use windows" limitation the paper discusses: the
// window must be long enough to amortize mode-transition overheads, which
// leaves DVFS blind to the sub-window spikes the fine-grained techniques
// (and PTB) catch.
const DefaultWindow = 2048

// Governor picks, each window, the fastest mode whose predicted power fits
// a core's local budget. This is the performance-first policy of the
// DVFS literature the paper compares against ([1][19]-style: maximize
// throughput under the constraint): the core hugs the budget from below
// and steps straight back to full speed the moment the constraint lifts.
// The consequence — faithfully reproduced — is that power spikes shorter
// than the decision window leak over the budget, which is why DVFS's AoPB
// stays high while fine-grained techniques track the line.
type Governor struct {
	modes []Mode
	idx   []int

	transitions int64

	// Fault mode (nil = ideal regulator): an injected glitch makes an
	// attempted mode change fail — the core pays the transition stall but
	// stays at its current operating point until the next window.
	faults   *fault.DVFSInjector
	glitches int64
}

// NewGovernor creates a governor for n cores on the given ladder.
func NewGovernor(n int, modes []Mode) *Governor {
	return &Governor{
		modes: modes,
		idx:   make([]int, n),
	}
}

// Mode returns a core's current operating point.
func (g *Governor) Mode(core int) Mode { return g.modes[g.idx[core]] }

// ModeIndex returns the core's position on the ladder (0 = fastest).
func (g *Governor) ModeIndex(core int) int { return g.idx[core] }

// Transitions returns the total number of mode changes decided.
func (g *Governor) Transitions() int64 { return g.transitions }

// SetFaults wires a DVFS-transition fault stream into the governor.
func (g *Governor) SetFaults(inj *fault.DVFSInjector) {
	if inj == nil {
		return
	}
	g.faults = inj
}

// Glitches returns how many attempted transitions glitched.
func (g *Governor) Glitches() int64 { return g.glitches }

// dynScale is the dynamic-power scale of a mode (V²·f).
func dynScale(m Mode) float64 { return m.V * m.V * m.F }

// Decide updates a core's mode from its window-averaged power estimate
// (measured at the current mode). Power-saving modes engage only when the
// chip as a whole exceeds the global budget AND the core exceeds its
// (effective) local budget — the paper's two activation conditions
// (§III.C); otherwise the core returns to full speed. It returns the new
// mode and whether it changed.
func (g *Governor) Decide(core int, avgEstPJ, localBudgetPJ float64, chipOver bool) (Mode, bool) {
	cur := g.idx[core]
	target := 0
	if chipOver && localBudgetPJ > 0 {
		// Normalize the measurement to nominal, then pick the fastest mode
		// predicted to fit the local budget with a small safety margin
		// (sub-window spikes ride on top of the average).
		nominal := avgEstPJ / dynScale(g.modes[cur])
		target = len(g.modes) - 1
		for i := range g.modes {
			if nominal*dynScale(g.modes[i]) <= 0.93*localBudgetPJ {
				target = i
				break
			}
		}
	}
	if target == cur {
		return g.modes[cur], false
	}
	if g.faults != nil && g.faults.Glitch() {
		// The regulator attempted the switch and failed: report "changed" so
		// the caller charges the transition stall, but hold the current
		// operating point (re-applying the same V/F is harmless).
		g.glitches++
		return g.modes[cur], true
	}
	g.idx[core] = target
	g.transitions++
	return g.modes[target], true
}
