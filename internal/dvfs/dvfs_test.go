package dvfs

import "testing"

func TestLaddersMatchPaper(t *testing.T) {
	dv := DVFSModes()
	want := []Mode{{1, 1}, {0.95, 0.95}, {0.90, 0.90}, {0.90, 0.75}, {0.90, 0.65}}
	if len(dv) != len(want) {
		t.Fatalf("DVFS ladder has %d modes", len(dv))
	}
	for i := range want {
		if dv[i] != want[i] {
			t.Fatalf("mode %d = %+v, want %+v", i, dv[i], want[i])
		}
	}
	for i, m := range DFSModes() {
		if m.V != 1 {
			t.Fatalf("DFS mode %d scales voltage", i)
		}
		if m.F != dv[i].F {
			t.Fatalf("DFS mode %d frequency %v != DVFS %v", i, m.F, dv[i].F)
		}
	}
}

func TestGovernorPicksBottomForHugeOverage(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	// 2000 pJ against a 1000 budget: even the bottom mode
	// (0.9²·0.65 ≈ 0.53 scale → 1053) exceeds the budget, so the governor
	// parks at the bottom of the ladder.
	g.Decide(0, 2000, 1000, true)
	if g.ModeIndex(0) != len(DVFSModes())-1 {
		t.Fatalf("governor at %d, want bottom of ladder", g.ModeIndex(0))
	}
	// Saturates at the bottom.
	if _, changed := g.Decide(0, 1053, 1000, true); changed {
		t.Fatal("changed past the bottom mode")
	}
}

func TestGovernorPicksFastestFittingMode(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	// 1200 pJ at nominal against 1000: mode 1 (0.857 scale → 1029) still
	// exceeds, mode 2 (0.729 → 875) fits.
	g.Decide(0, 1200, 1000, true)
	if g.ModeIndex(0) != 2 {
		t.Fatalf("governor chose mode %d, want 2", g.ModeIndex(0))
	}
}

func TestGovernorRequiresChipOver(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	if _, changed := g.Decide(0, 2000, 1000, false); changed {
		t.Fatal("stepped down while the chip was under the global budget")
	}
}

func TestGovernorReturnsToFullSpeed(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	g.Decide(0, 2000, 1000, true)
	if g.ModeIndex(0) == 0 {
		t.Fatal("precondition: should have scaled down")
	}
	// Constraint lifted: performance-first policy snaps back to mode 0.
	if _, changed := g.Decide(0, 500, 1000, false); !changed {
		t.Fatal("did not return to full speed")
	}
	if g.ModeIndex(0) != 0 {
		t.Fatalf("mode %d, want 0", g.ModeIndex(0))
	}
	if g.Transitions() != 2 {
		t.Fatalf("transitions = %d, want 2", g.Transitions())
	}
}

func TestGovernorNormalizesCurrentMode(t *testing.T) {
	g := NewGovernor(1, DVFSModes())
	// Park at the bottom first.
	g.Decide(0, 5000, 1000, true)
	bottom := g.ModeIndex(0)
	// Measured 450 at the bottom mode (scale ~0.527) = ~855 nominal, under
	// the 0.93×1000 margin: full speed fits again.
	g.Decide(0, 450, 1000, true)
	if g.ModeIndex(0) != 0 {
		t.Fatalf("mode %d after normalization, want 0 (was %d)", g.ModeIndex(0), bottom)
	}
}

func TestPerCoreIndependence(t *testing.T) {
	g := NewGovernor(2, DVFSModes())
	g.Decide(0, 2000, 1000, true)
	if g.ModeIndex(1) != 0 {
		t.Fatal("core 1's mode changed by core 0's decision")
	}
}
