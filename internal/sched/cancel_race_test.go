package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCanceledWaiterGetsTypedError is the regression test for the
// cache-lookup/cancellation race: a coalesced waiter whose context dies
// must come back with a typed *CanceledError naming the key — never a
// bare ctx error next to a silent zero value, and never (zero, nil).
func TestCanceledWaiterGetsTypedError(t *testing.T) {
	s := New[int](2)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go s.Do(context.Background(), "slow", func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Do(ctx, "slow", func(context.Context) (int, error) { return 2, nil })
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CanceledError", err, err)
	}
	if ce.Key != "slow" {
		t.Fatalf("CanceledError.Key = %q, want \"slow\"", ce.Key)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
}

// TestSubmitCancelRaceOnSameKey hammers one digest key with concurrent
// Submit/Await pairs whose contexts cancel at random points while other
// callers run to completion — the -race regression for concurrent
// Submit/cancel on the same key. Every outcome must be either the true
// value or a typed *CanceledError; (zero, nil) would be the silent-zero
// bug, and a bare context error would be the untyped one.
func TestSubmitCancelRaceOnSameKey(t *testing.T) {
	s := New[int](4)
	defer s.Close()
	const (
		rounds  = 50
		callers = 8
		want    = 1234
	)
	for round := 0; round < rounds; round++ {
		key := "digest-" + string(rune('a'+round%26)) + string(rune('0'+round/26))
		var wg sync.WaitGroup
		var bad atomic.Value
		for c := 0; c < callers; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				if c%2 == 0 {
					cancel() // half the callers race an already-dead context
				} else {
					defer cancel()
				}
				tk, err := s.Submit(ctx, Job[int]{
					Key: key,
					Run: func(context.Context) (int, error) { return want, nil },
				})
				if err == nil {
					var v int
					v, err = tk.Await(ctx)
					if err == nil {
						if v != want {
							bad.Store(v)
						}
						return
					}
				}
				var ce *CanceledError
				if !errors.As(err, &ce) || ce.Key != key || !errors.Is(err, context.Canceled) {
					bad.Store(err)
				}
			}()
		}
		wg.Wait()
		if v := bad.Load(); v != nil {
			t.Fatalf("round %d: bad outcome %v — want the value or a typed *CanceledError", round, v)
		}
	}
}

// TestAwaitPrefersCompletedFlight: when cancellation and completion land
// in the same instant, the completed result wins — the waiter never drops
// a real value for a cancellation error it can no longer act on.
func TestAwaitPrefersCompletedFlight(t *testing.T) {
	s := New[int](1)
	defer s.Close()
	tk, err := s.Submit(context.Background(), Job[int]{
		Key: "fast",
		Run: func(context.Context) (int, error) { return 6, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Resolve first, then await with a dead context: the done channel is
	// already closed, so the result must come back despite cancellation.
	if _, err := tk.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if v, err := tk.Await(ctx); err != nil || v != 6 {
		t.Fatalf("Await(dead ctx) after completion = %d, %v, want 6, nil", v, err)
	}
}
