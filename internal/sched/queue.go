package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrQueueFull rejects a Submit that found the bounded queue at capacity
// (see WithQueueCap) — the scheduler's backpressure signal. The caller
// should shed load or retry later; nothing was enqueued.
var ErrQueueFull = errors.New("sched: job queue full")

// ErrDraining rejects a Submit that arrived after Drain (or Close): the
// scheduler finishes the work it already accepted but takes no more.
var ErrDraining = errors.New("sched: scheduler draining, not accepting jobs")

// State is the lifecycle of a submitted Ticket.
type State int32

const (
	// StateQueued: accepted, waiting for a worker (or for another
	// caller's in-flight run of the same key).
	StateQueued State = iota
	// StateRunning: executing on a worker.
	StateRunning
	// StateDone: resolved with a value.
	StateDone
	// StateFailed: resolved with an error.
	StateFailed
)

// String names the state for logs and the service API.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Ticket is one accepted submission: a handle on a job that resolves to a
// value or an error. Duplicate submissions of one key share the
// underlying run but hold distinct tickets, each with its own provenance
// (Cached/Coalesced) and OnDone callback.
type Ticket[V any] struct {
	key       string
	fl        *flight[V]
	state     atomic.Int32
	cached    bool
	coalesced bool
}

// Key reports the job key this ticket resolves.
func (t *Ticket[V]) Key() string { return t.key }

// State reports the ticket's current lifecycle state.
func (t *Ticket[V]) State() State { return State(t.state.Load()) }

// Cached reports whether the ticket was answered from the result cache at
// submission, without any run.
func (t *Ticket[V]) Cached() bool { return t.cached }

// Coalesced reports whether the ticket joined a run another caller had
// already queued or started.
func (t *Ticket[V]) Coalesced() bool { return t.coalesced }

// Await blocks until the ticket resolves or ctx ends. A cancelled wait
// returns a *CanceledError; the job itself keeps its place in the queue
// and still runs (other callers may hold tickets on it, and the result
// enters the cache either way). Await may be called any number of times,
// from any goroutine.
func (t *Ticket[V]) Await(ctx context.Context) (V, error) {
	var zero V
	select {
	case <-t.fl.done:
	case <-ctx.Done():
		select {
		case <-t.fl.done:
			// Resolved in the same instant the context died; prefer the
			// real result over a cancellation error.
		default:
			return zero, &CanceledError{Key: t.key, Err: ctx.Err()}
		}
	}
	return t.fl.val, t.fl.err
}

// event builds the ticket's resolution event from the flight outcome.
func (t *Ticket[V]) event() Event[V] {
	return Event[V]{
		Key:       t.key,
		Value:     t.fl.val,
		Err:       t.fl.err,
		Cached:    t.cached,
		Coalesced: t.coalesced,
		Retried:   t.fl.retried,
	}
}

// qitem is one queued job on the priority heap.
type qitem[V any] struct {
	ticket *Ticket[V]
	run    func(context.Context) (V, error)
	pri    int
	seq    uint64
}

// queue is a max-heap by priority, FIFO within a priority level.
type queue[V any] []*qitem[V]

func (q queue[V]) Len() int { return len(q) }
func (q queue[V]) Less(i, j int) bool {
	if q[i].pri != q[j].pri {
		return q[i].pri > q[j].pri
	}
	return q[i].seq < q[j].seq
}
func (q queue[V]) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue[V]) Push(x any)   { *q = append(*q, x.(*qitem[V])) }
func (q *queue[V]) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// QueueLen reports the number of jobs waiting for a worker (not counting
// running jobs or coalesced submissions).
func (s *Scheduler[V]) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// QueueCap reports the Submit queue bound (0 = unbounded).
func (s *Scheduler[V]) QueueCap() int { return s.queueCap }

// Running reports the number of queued jobs currently executing.
func (s *Scheduler[V]) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Submit enqueues a job for the persistent worker pool and returns its
// Ticket immediately. The scheduler deduplicates before queueing: a key
// already in the cache resolves the ticket on the spot (Cached), and a
// key already queued or running coalesces onto that run (Coalesced) —
// neither consumes a queue slot, so duplicates can never trip
// backpressure. A genuinely new key occupies one slot until a worker
// picks it up; if the bounded queue is full, Submit fails with an error
// wrapping ErrQueueFull, and after Drain or Close with ErrDraining.
//
// ctx gates only admission (a done ctx refuses the submission); the job
// itself runs under the scheduler's lifetime, detached from the
// submitter, so one impatient caller cannot kill a run others coalesced
// onto. Use Ticket.Await(ctx) to bound the wait.
func (s *Scheduler[V]) Submit(ctx context.Context, job Job[V]) (*Ticket[V], error) {
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Key: job.Key, Err: err}
	}
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (job %q)", ErrDraining, job.Key)
	}
	if v, ok := s.cache.Get(job.Key); ok {
		s.mu.Unlock()
		fl := &flight[V]{done: make(chan struct{}), val: v}
		t := &Ticket[V]{key: job.Key, fl: fl, cached: true}
		t.state.Store(int32(StateDone))
		fl.resolve()
		ev := t.event()
		if job.OnDone != nil {
			job.OnDone(ev)
		}
		s.emit(ev)
		return t, nil
	}
	if fl, ok := s.inflight[job.Key]; ok {
		s.mu.Unlock()
		t := &Ticket[V]{key: job.Key, fl: fl, coalesced: true}
		s.attach(t, job.OnDone)
		return t, nil
	}
	if s.queueCap > 0 && len(s.pending) >= s.queueCap {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (cap %d, job %q)", ErrQueueFull, s.queueCap, job.Key)
	}
	fl := &flight[V]{done: make(chan struct{})}
	s.inflight[job.Key] = fl
	t := &Ticket[V]{key: job.Key, fl: fl}
	s.seq++
	heap.Push(&s.pending, &qitem[V]{ticket: t, run: job.Run, pri: job.Priority, seq: s.seq})
	s.mu.Unlock()
	s.attach(t, job.OnDone)

	s.workersOnce.Do(s.startWorkers)
	s.cond.Signal()
	return t, nil
}

// attach subscribes the ticket's state transition and OnDone callback to
// its flight's resolution.
func (s *Scheduler[V]) attach(t *Ticket[V], onDone func(Event[V])) {
	t.fl.subscribe(func() {
		if t.fl.err != nil {
			t.state.Store(int32(StateFailed))
		} else {
			t.state.Store(int32(StateDone))
		}
		if onDone != nil {
			onDone(t.event())
		}
	})
}

// startWorkers launches the persistent Submit pool, sized by the worker
// count at first Submit.
func (s *Scheduler[V]) startWorkers() {
	s.mu.Lock()
	n := s.workers
	s.mu.Unlock()
	s.workerWG.Add(n)
	for i := 0; i < n; i++ {
		go s.worker()
	}
}

func (s *Scheduler[V]) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		it := heap.Pop(&s.pending).(*qitem[V])
		s.running++
		s.mu.Unlock()

		t := it.ticket
		t.state.Store(int32(StateRunning))
		t.fl.val, t.fl.err, t.fl.retried = s.runProtected(s.baseCtx, t.key, it.run)

		s.finish(t.key, t.fl)
		s.emit(Event[V]{Key: t.key, Value: t.fl.val, Err: t.fl.err, Retried: t.fl.retried})

		s.mu.Lock()
		s.running--
		idle := len(s.pending) == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			s.cond.Broadcast() // wake Drain waiters
		}
	}
}

// Drain stops intake — every later Submit fails with ErrDraining — and
// waits until every job already accepted (queued or running) has
// finished, or ctx ends. On a clean drain the worker pool shuts down and
// Drain returns nil; on ctx expiry the remaining work keeps running and
// Drain returns the ctx error. Do/ForEach are unaffected: they execute on
// their callers' goroutines. Drain is idempotent.
func (s *Scheduler[V]) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			s.cond.Broadcast()
		case <-watchDone:
		}
	}()

	s.mu.Lock()
	for (len(s.pending) > 0 || s.running > 0) && ctx.Err() == nil {
		s.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast() // release idle workers to exit
	s.workerWG.Wait()
	return nil
}

// Close shuts the scheduler down without finishing queued work: intake
// stops, jobs still in the queue resolve with ErrDraining, the base
// context of running jobs is cancelled, and Close waits for the workers
// to exit. Tickets already resolved are unaffected.
func (s *Scheduler[V]) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workerWG.Wait()
		return
	}
	s.draining = true
	s.closed = true
	abandoned := make([]*qitem[V], len(s.pending))
	copy(abandoned, s.pending)
	s.pending = nil
	s.mu.Unlock()
	s.baseCancel()
	for _, it := range abandoned {
		it.ticket.fl.err = fmt.Errorf("%w (job %q)", ErrDraining, it.ticket.key)
		s.mu.Lock()
		delete(s.inflight, it.ticket.key)
		s.mu.Unlock()
		it.ticket.fl.resolve()
	}
	s.cond.Broadcast()
	s.workerWG.Wait()
}
