package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitAwait covers the basic queued lifecycle: a submitted job runs
// on the persistent pool, Await returns its value, and the ticket walks
// Queued → Done.
func TestSubmitAwait(t *testing.T) {
	s := New[int](2)
	defer s.Close()
	tk, err := s.Submit(context.Background(), Job[int]{
		Key: "a",
		Run: func(context.Context) (int, error) { return 41, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := tk.Await(context.Background())
	if err != nil || v != 41 {
		t.Fatalf("Await = %d, %v", v, err)
	}
	if st := tk.State(); st != StateDone {
		t.Fatalf("state = %v, want done", st)
	}
	if tk.Cached() || tk.Coalesced() {
		t.Fatalf("fresh ticket marked cached=%t coalesced=%t", tk.Cached(), tk.Coalesced())
	}
}

// TestSubmitDedups checks all three admission paths: a fresh key queues, a
// duplicate of a queued/running key coalesces without a queue slot, and a
// cached key resolves instantly — with exactly one execution in total.
func TestSubmitDedups(t *testing.T) {
	s := New[int](1)
	defer s.Close()
	var calls int32
	release := make(chan struct{})
	started := make(chan struct{})
	run := func(context.Context) (int, error) {
		atomic.AddInt32(&calls, 1)
		close(started)
		<-release
		return 7, nil
	}
	t1, err := s.Submit(context.Background(), Job[int]{Key: "k", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	t2, err := s.Submit(context.Background(), Job[int]{Key: "k", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if !t2.Coalesced() {
		t.Fatal("duplicate submit of an in-flight key did not coalesce")
	}
	close(release)
	for _, tk := range []*Ticket[int]{t1, t2} {
		if v, err := tk.Await(context.Background()); err != nil || v != 7 {
			t.Fatalf("Await = %d, %v", v, err)
		}
	}
	t3, err := s.Submit(context.Background(), Job[int]{Key: "k", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if !t3.Cached() || t3.State() != StateDone {
		t.Fatalf("cached submit: cached=%t state=%v", t3.Cached(), t3.State())
	}
	if v, err := t3.Await(context.Background()); err != nil || v != 7 {
		t.Fatalf("cached Await = %d, %v", v, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

// TestPriorityOrdering submits jobs at mixed priorities onto a single
// blocked worker and checks execution order: higher priority first, FIFO
// within a level.
func TestPriorityOrdering(t *testing.T) {
	s := New[int](1)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := s.Submit(context.Background(), Job[int]{
		Key: "block",
		Run: func(context.Context) (int, error) { close(started); <-release; return 0, nil },
	}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is busy; everything below queues up

	var mu sync.Mutex
	var order []string
	mk := func(key string, pri int) Job[int] {
		return Job[int]{
			Key:      key,
			Priority: pri,
			Run: func(context.Context) (int, error) {
				mu.Lock()
				order = append(order, key)
				mu.Unlock()
				return 0, nil
			},
		}
	}
	var last *Ticket[int]
	for _, j := range []Job[int]{
		mk("low-1", 0), mk("hi-1", 2), mk("mid-1", 1), mk("hi-2", 2), mk("low-2", 0),
	} {
		tk, err := s.Submit(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		if j.Key == "low-2" {
			last = tk
		}
	}
	close(release)
	if _, err := last.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"hi-1", "hi-2", "mid-1", "low-1", "low-2"}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
}

// TestQueueFullBackpressure fills a bounded queue behind a blocked worker
// and checks the overflow Submit fails with ErrQueueFull — while a
// duplicate of an already-queued key still coalesces (dedup never trips
// backpressure) and capacity frees once the queue moves.
func TestQueueFullBackpressure(t *testing.T) {
	s := New[int](1, WithQueueCap[int](2))
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := s.Submit(context.Background(), Job[int]{
		Key: "block",
		Run: func(context.Context) (int, error) { close(started); <-release; return 0, nil },
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	ok := func(context.Context) (int, error) { return 1, nil }
	var queued []*Ticket[int]
	for _, k := range []string{"q1", "q2"} {
		tk, err := s.Submit(context.Background(), Job[int]{Key: k, Run: ok})
		if err != nil {
			t.Fatalf("submit %s: %v", k, err)
		}
		queued = append(queued, tk)
	}
	if _, err := s.Submit(context.Background(), Job[int]{Key: "q3", Run: ok}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if tk, err := s.Submit(context.Background(), Job[int]{Key: "q1", Run: ok}); err != nil || !tk.Coalesced() {
		t.Fatalf("duplicate of queued key: tk=%+v err=%v, want coalesced, nil", tk, err)
	}
	close(release)
	for _, tk := range queued {
		if _, err := tk.Await(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if tk, err := s.Submit(context.Background(), Job[int]{Key: "q3", Run: ok}); err != nil {
		t.Fatalf("submit after queue moved: %v", err)
	} else if _, err := tk.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainFinishesAccepted checks the graceful-drain contract: queued and
// running jobs all finish, their results land in the cache, later Submits
// are refused with ErrDraining, and Drain returns only when idle.
func TestDrainFinishesAccepted(t *testing.T) {
	s := New[int](2)
	var calls int32
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		k := k
		if _, err := s.Submit(context.Background(), Job[int]{
			Key: k,
			Run: func(context.Context) (int, error) {
				atomic.AddInt32(&calls, 1)
				time.Sleep(5 * time.Millisecond)
				return len(k), nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != int32(len(keys)) {
		t.Fatalf("%d jobs ran, want %d — drain dropped accepted work", got, len(keys))
	}
	for _, k := range keys {
		if _, ok := s.Cached(k); !ok {
			t.Fatalf("key %q missing from cache after drain", k)
		}
	}
	if _, err := s.Submit(context.Background(), Job[int]{Key: "late", Run: func(context.Context) (int, error) { return 0, nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain err = %v, want ErrDraining", err)
	}
}

// TestDrainHonorsContext: a drain bounded by an already-expired context
// returns promptly with the context error instead of blocking on a stuck
// job.
func TestDrainHonorsContext(t *testing.T) {
	s := New[int](1)
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	if _, err := s.Submit(context.Background(), Job[int]{
		Key: "stuck",
		Run: func(context.Context) (int, error) { close(started); <-release; return 0, nil },
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
}

// TestCloseAbandonsQueue: Close resolves still-queued tickets with
// ErrDraining instead of leaving Await hanging forever.
func TestCloseAbandonsQueue(t *testing.T) {
	s := New[int](1)
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	if _, err := s.Submit(context.Background(), Job[int]{
		Key: "block",
		Run: func(context.Context) (int, error) { close(started); <-release; return 0, nil },
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	tk, err := s.Submit(context.Background(), Job[int]{
		Key: "queued",
		Run: func(context.Context) (int, error) { return 1, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	go s.Close()
	if _, err := tk.Await(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("abandoned ticket Await err = %v, want ErrDraining", err)
	}
}

// TestSubmitOnDoneExactlyOnce: every submission — fresh, coalesced and
// cached — fires its OnDone exactly once with the right provenance.
func TestSubmitOnDoneExactlyOnce(t *testing.T) {
	s := New[int](1)
	defer s.Close()
	var fresh, coal, cached int32
	count := func(n *int32) func(Event[int]) {
		return func(ev Event[int]) {
			if ev.Err != nil {
				t.Errorf("OnDone err = %v", ev.Err)
			}
			atomic.AddInt32(n, 1)
		}
	}
	release := make(chan struct{})
	started := make(chan struct{})
	t1, err := s.Submit(context.Background(), Job[int]{
		Key:    "k",
		Run:    func(context.Context) (int, error) { close(started); <-release; return 3, nil },
		OnDone: count(&fresh),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	t2, err := s.Submit(context.Background(), Job[int]{Key: "k", OnDone: count(&coal)})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	for _, tk := range []*Ticket[int]{t1, t2} {
		if _, err := tk.Await(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(context.Background(), Job[int]{Key: "k", OnDone: count(&cached)}); err != nil {
		t.Fatal(err)
	}
	// OnDone for t1/t2 fires from the worker goroutine right before the
	// global event; both tickets are resolved, so the counters are stable.
	if fresh != 1 || coal != 1 || cached != 1 {
		t.Fatalf("OnDone counts fresh=%d coalesced=%d cached=%d, want 1 each", fresh, coal, cached)
	}
}

// TestFailedTicketState: a job error resolves the ticket as StateFailed
// and the error is not cached (a later submit retries).
func TestFailedTicketState(t *testing.T) {
	s := New[int](1)
	defer s.Close()
	boom := errors.New("boom")
	var calls int32
	run := func(context.Context) (int, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return 0, boom
		}
		return 9, nil
	}
	tk, err := s.Submit(context.Background(), Job[int]{Key: "flaky", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Await(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Await err = %v, want boom", err)
	}
	if st := tk.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	tk2, err := s.Submit(context.Background(), Job[int]{Key: "flaky", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tk2.Await(context.Background()); err != nil || v != 9 {
		t.Fatalf("retry Await = %d, %v", v, err)
	}
}

// TestPluggableCacheBackend: a custom Cache sees Puts from Do and answers
// later Do/Submit calls without re-running.
func TestPluggableCacheBackend(t *testing.T) {
	backend := NewMemCache[int]()
	backend.Put("warm", 99)
	s := New[int](1, WithCache[int](Cache[int](backend)))
	defer s.Close()
	var calls int32
	run := func(context.Context) (int, error) { atomic.AddInt32(&calls, 1); return 5, nil }
	if v, err := s.Do(context.Background(), "warm", run); err != nil || v != 99 {
		t.Fatalf("Do(warm) = %d, %v — backend not consulted", v, err)
	}
	if v, err := s.Do(context.Background(), "cold", run); err != nil || v != 5 {
		t.Fatalf("Do(cold) = %d, %v", v, err)
	}
	if v, ok := backend.Get("cold"); !ok || v != 5 {
		t.Fatalf("backend.Get(cold) = %d, %t — Do result not written through", v, ok)
	}
	tk, err := s.Submit(context.Background(), Job[int]{Key: "cold", Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Cached() {
		t.Fatal("submit of a backend-cached key did not resolve from cache")
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}
