package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCachesResults(t *testing.T) {
	e := New[int](2)
	var calls int32
	fn := func(context.Context) (int, error) {
		atomic.AddInt32(&calls, 1)
		return 42, nil
	}
	for i := 0; i < 3; i++ {
		v, err := e.Do(context.Background(), "k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if v, ok := e.Cached("k"); !ok || v != 42 {
		t.Fatalf("Cached = %d, %v", v, ok)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestDoErrorsAreNotCached(t *testing.T) {
	e := New[int](1)
	var calls int32
	boom := errors.New("boom")
	fn := func(context.Context) (int, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return 0, boom
		}
		return 7, nil
	}
	if _, err := e.Do(context.Background(), "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v", err)
	}
	v, err := e.Do(context.Background(), "k", fn)
	if err != nil || v != 7 {
		t.Fatalf("retry Do = %d, %v", v, err)
	}
}

// TestSingleFlight is the duplicate-simulation-race regression test: many
// goroutines asking for one key must trigger exactly one execution.
func TestSingleFlight(t *testing.T) {
	e := New[int](4)
	var calls int32
	release := make(chan struct{})
	fn := func(context.Context) (int, error) {
		atomic.AddInt32(&calls, 1)
		<-release
		return 1, nil
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Do(context.Background(), "same", fn)
		}(i)
	}
	// Let the goroutines pile up on the flight, then release the one run.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", calls)
	}
}

func TestWaiterHonorsCancellation(t *testing.T) {
	e := New[int](2)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go e.Do(context.Background(), "slow", func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, "slow", func(context.Context) (int, error) { return 2, nil })
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}
}

func TestPanicRetriesOnce(t *testing.T) {
	e := New[int](1)
	var events []Event[int]
	e.SetEventFunc(func(ev Event[int]) { events = append(events, ev) })
	var calls int32
	v, err := e.Do(context.Background(), "flaky", func(context.Context) (int, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			panic("transient")
		}
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
	if len(events) != 1 || !events[0].Retried {
		t.Fatalf("events = %+v, want one retried event", events)
	}
}

func TestDoublePanicSurfacesError(t *testing.T) {
	e := New[int](1)
	_, err := e.Do(context.Background(), "broken", func(context.Context) (int, error) {
		panic("hard")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Key != "broken" || pe.Value != "hard" || len(pe.Stack) == 0 {
		t.Fatalf("panic error incomplete: %+v", pe)
	}
}

func TestForEachRunsAllAndDedups(t *testing.T) {
	e := New[int](4)
	var calls int32
	jobs := make([]Job[int], 20)
	for i := range jobs {
		v := i % 5 // four duplicates of each key
		jobs[i] = Job[int]{
			Key: fmt.Sprint("k", v),
			Run: func(context.Context) (int, error) {
				atomic.AddInt32(&calls, 1)
				return v, nil
			},
		}
	}
	out, err := e.ForEach(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i%5 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i%5)
		}
	}
	if calls != 5 {
		t.Fatalf("fn ran %d times, want 5 (dedup)", calls)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New[int](workers)
	var cur, peak int32
	jobs := make([]Job[int], 24)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprint(i),
			Run: func(context.Context) (int, error) {
				n := atomic.AddInt32(&cur, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				atomic.AddInt32(&cur, -1)
				return i, nil
			},
		}
	}
	if _, err := e.ForEach(context.Background(), jobs, nil); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", peak, workers)
	}
}

func TestForEachStopsOnError(t *testing.T) {
	e := New[int](2)
	boom := errors.New("boom")
	var after int32
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprint(i),
			Run: func(ctx context.Context) (int, error) {
				if i == 3 {
					return 0, boom
				}
				if i > 10 {
					atomic.AddInt32(&after, 1)
				}
				return i, nil
			},
		}
	}
	_, err := e.ForEach(context.Background(), jobs, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop dispatching shortly after the failure; with 2
	// workers at most a handful of later jobs can already be in flight.
	if after > 10 {
		t.Fatalf("%d jobs ran after the failure — pool did not stop", after)
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	e := New[int](2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ForEach(ctx, []Job[int]{{Key: "a", Run: func(context.Context) (int, error) { return 1, nil }}}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
