// Package sched is the reusable job scheduler underneath the public
// experiment API, the figure builders and the ptbserve service. It runs
// keyed, deterministic jobs with:
//
//   - result caching — a key is computed at most once per scheduler, with
//     a pluggable Cache backend so an in-memory map and an on-disk store
//     share one contract;
//   - single-flight deduplication — concurrent requests for the same key
//     coalesce onto one in-flight run instead of computing it twice,
//     whether they arrive through Do, ForEach or Submit;
//   - a bounded priority queue — Submit enqueues work for a persistent
//     worker pool, returning a Ticket with typed states and a
//     context-aware Await; a full queue rejects with ErrQueueFull
//     (backpressure), and Drain stops intake while finishing everything
//     already accepted;
//   - context cancellation — callers waiting on a run return as soon as
//     their context is done with a typed *CanceledError, and pool sweeps
//     stop dispatching;
//   - per-run panic recovery — a panicking job is retried once (transient
//     corruption) and surfaces as a *PanicError if it panics again;
//   - streaming events — one callback per completed request, carrying the
//     value, coalescing/caching provenance and any error.
//
// The scheduler is generic over the job result type; the simulator layers
// instantiate it with their result structs.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError reports a job that panicked on both attempts.
type PanicError struct {
	// Key identifies the failing job.
	Key string
	// Value is the recovered panic value of the second attempt.
	Value any
	// Stack is the goroutine stack captured at the second panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %q panicked twice: %v", e.Key, e.Value)
}

// CanceledError reports a request abandoned because the caller's context
// ended while its result was still being computed — by this caller or by
// another one it had coalesced onto. The computation itself keeps going
// for any remaining callers; only this caller's wait is abandoned. It
// wraps the context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) keep working, while errors.As
// recovers which key was abandoned — the typed replacement for the old
// engine's bare ctx.Err() next to a zero value.
type CanceledError struct {
	// Key identifies the abandoned request.
	Key string
	// Err is the caller's context error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sched: request %q abandoned: %v", e.Key, e.Err)
}

// Unwrap exposes the context error to errors.Is.
func (e *CanceledError) Unwrap() error { return e.Err }

// Cache is the pluggable result-cache backend: the in-memory MemCache and
// any persistent store (ptbserve's digest-verified on-disk store) share
// this contract. Implementations must be safe for concurrent use; Get is
// called with scheduler internals locked and must be fast (IO-backed
// implementations should answer from an in-memory front and write
// through). A backend that can fail should latch its first error and
// surface it out of band — a lost Put degrades the cache, not the result.
type Cache[V any] interface {
	// Get reports the cached value for key, if any.
	Get(key string) (V, bool)
	// Put stores a successful result. Called at most once per key unless
	// an earlier entry was lost.
	Put(key string, v V)
	// Len reports the number of cached results.
	Len() int
}

// MemCache is the default Cache: a mutex-guarded map.
type MemCache[V any] struct {
	mu sync.Mutex
	m  map[string]V
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache[V any]() *MemCache[V] {
	return &MemCache[V]{m: make(map[string]V)}
}

// Get reports the cached value for key, if any.
func (c *MemCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

// Put stores a value.
func (c *MemCache[V]) Put(key string, v V) {
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
}

// Len reports the number of cached results.
func (c *MemCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Event describes one completed request, streamed to the scheduler's
// event callback and to per-submission OnDone callbacks.
type Event[V any] struct {
	// Key identifies the job.
	Key string
	// Value is the job result (the zero value on error).
	Value V
	// Err is the job error, if any.
	Err error
	// Cached marks a request served from the result cache without running.
	Cached bool
	// Coalesced marks a request that waited on another caller's in-flight
	// run of the same key.
	Coalesced bool
	// Retried marks a run that panicked once and succeeded on retry.
	Retried bool
}

// flight is one in-progress run other callers can wait on. Tickets
// subscribe for completion callbacks; subscriptions added after the
// flight resolved fire immediately.
type flight[V any] struct {
	done    chan struct{}
	val     V
	err     error
	retried bool

	mu       sync.Mutex
	resolved bool
	subs     []func()
}

// subscribe registers fn to run once when the flight resolves (now, if it
// already has). Callbacks run on whichever goroutine resolves the flight.
func (fl *flight[V]) subscribe(fn func()) {
	fl.mu.Lock()
	if fl.resolved {
		fl.mu.Unlock()
		fn()
		return
	}
	fl.subs = append(fl.subs, fn)
	fl.mu.Unlock()
}

// resolve publishes the flight's outcome: it closes done and fires every
// subscription exactly once.
func (fl *flight[V]) resolve() {
	fl.mu.Lock()
	fl.resolved = true
	subs := fl.subs
	fl.subs = nil
	fl.mu.Unlock()
	close(fl.done)
	for _, fn := range subs {
		fn()
	}
}

// Option configures a Scheduler at construction.
type Option[V any] func(*Scheduler[V])

// WithCache installs a result-cache backend (default: a fresh MemCache).
func WithCache[V any](c Cache[V]) Option[V] {
	return func(s *Scheduler[V]) { s.cache = c }
}

// WithQueueCap bounds the Submit queue: at most n tickets may be waiting
// for a worker (running jobs, cache hits and coalesced submissions do not
// count). Submit on a full queue fails with ErrQueueFull. n <= 0 (the
// default) leaves the queue unbounded.
func WithQueueCap[V any](n int) Option[V] {
	return func(s *Scheduler[V]) { s.queueCap = n }
}

// WithEventFunc installs the streaming callback at construction; see
// SetEventFunc.
func WithEventFunc[V any](fn func(Event[V])) Option[V] {
	return func(s *Scheduler[V]) { s.onEvent = fn }
}

// Scheduler caches and deduplicates keyed jobs, fans sweeps out over a
// bounded worker pool, and queues Submitted work for a persistent pool of
// the same size. The zero value is not usable; construct with New.
type Scheduler[V any] struct {
	workers  int
	queueCap int
	onEvent  func(Event[V])
	cache    Cache[V]

	mu       sync.Mutex
	cond     *sync.Cond // signaled on queue pushes and lifecycle changes
	inflight map[string]*flight[V]
	pending  queue[V]
	seq      uint64
	running  int  // queued jobs currently executing on workers
	draining bool // Drain called: no new Submits
	closed   bool // Close called or Drain finished: workers exit

	workersOnce sync.Once
	baseCtx     context.Context
	baseCancel  context.CancelFunc
	workerWG    sync.WaitGroup
}

// New returns a scheduler whose sweeps and Submit queue use the given
// number of workers; workers < 1 selects runtime.NumCPU().
func New[V any](workers int, opts ...Option[V]) *Scheduler[V] {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	s := &Scheduler[V]{
		workers:  workers,
		inflight: make(map[string]*flight[V]),
	}
	for _, o := range opts {
		o(s)
	}
	if s.cache == nil {
		s.cache = NewMemCache[V]()
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Workers reports the pool size.
func (s *Scheduler[V]) Workers() int { return s.workers }

// SetWorkers resizes the sweep pool (workers < 1 selects runtime.NumCPU).
// It only affects subsequent ForEach calls, not the persistent Submit
// pool once it has started.
func (s *Scheduler[V]) SetWorkers(workers int) {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	s.mu.Lock()
	s.workers = workers
	s.mu.Unlock()
}

// SetCache replaces the result-cache backend. Call it before the first
// request — entries already living in the old backend are not migrated,
// so swapping mid-run forfeits them (they are recomputed, never wrong).
func (s *Scheduler[V]) SetCache(c Cache[V]) {
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
}

// SetEventFunc installs the streaming callback. Events are delivered
// synchronously from whichever goroutine completes a request; fn must be
// safe for concurrent use (or do its own locking).
func (s *Scheduler[V]) SetEventFunc(fn func(Event[V])) {
	s.mu.Lock()
	s.onEvent = fn
	s.mu.Unlock()
}

func (s *Scheduler[V]) emit(ev Event[V]) {
	s.mu.Lock()
	fn := s.onEvent
	s.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// Cached reports the cached value for key, if any.
func (s *Scheduler[V]) Cached(key string) (V, bool) {
	return s.cache.Get(key)
}

// Len reports the number of cached results.
func (s *Scheduler[V]) Len() int {
	return s.cache.Len()
}

// Do returns the result for key, computing it with fn at most once no
// matter how many goroutines ask concurrently — fn runs on the caller's
// goroutine, not the Submit pool. Successful results are cached; errors
// are not, so a later request retries. A caller whose ctx ends while
// another caller's run is in flight returns a *CanceledError immediately
// (the run itself keeps going for the others); a flight that completed in
// the same instant wins the race and its result is returned instead.
func (s *Scheduler[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, &CanceledError{Key: key, Err: err}
	}
	s.mu.Lock()
	if v, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.emit(Event[V]{Key: key, Value: v, Cached: true})
		return v, nil
	}
	if fl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		return s.await(ctx, key, fl)
	}
	fl := &flight[V]{done: make(chan struct{})}
	s.inflight[key] = fl
	s.mu.Unlock()

	fl.val, fl.err, fl.retried = s.runProtected(ctx, key, fn)

	s.finish(key, fl)
	s.emit(Event[V]{Key: key, Value: fl.val, Err: fl.err, Retried: fl.retried})
	return fl.val, fl.err
}

// finish publishes a completed flight: the result enters the cache (on
// success) strictly before the flight leaves the in-flight table, so a
// concurrent request always sees either the flight or the cache entry —
// never a gap that would re-run the job.
func (s *Scheduler[V]) finish(key string, fl *flight[V]) {
	if fl.err == nil {
		s.cache.Put(key, fl.val)
	}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	fl.resolve()
}

// await waits for another caller's flight, honoring ctx. On cancellation
// it re-checks the flight first: a result that is already complete is
// delivered rather than dropped for a *CanceledError.
func (s *Scheduler[V]) await(ctx context.Context, key string, fl *flight[V]) (V, error) {
	var zero V
	select {
	case <-fl.done:
	case <-ctx.Done():
		select {
		case <-fl.done:
			// The flight resolved in the same instant the context died;
			// prefer the real result over a cancellation error.
		default:
			return zero, &CanceledError{Key: key, Err: ctx.Err()}
		}
	}
	s.emit(Event[V]{Key: key, Value: fl.val, Err: fl.err, Coalesced: true, Retried: fl.retried})
	return fl.val, fl.err
}

// runProtected executes fn with panic recovery, retrying once.
func (s *Scheduler[V]) runProtected(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, err error, retried bool) {
	v, err, pe := attempt(ctx, key, fn)
	if pe == nil {
		return v, err, false
	}
	v, err, pe = attempt(ctx, key, fn)
	if pe == nil {
		return v, err, true
	}
	return v, pe, true
}

func attempt[V any](ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, err error, pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Key: key, Value: r, Stack: debug.Stack()}
		}
	}()
	v, err = fn(ctx)
	return v, err, nil
}

// Job is one keyed unit of work for ForEach and Submit.
type Job[V any] struct {
	// Key identifies the job for caching and deduplication.
	Key string
	// Run computes the result.
	Run func(context.Context) (V, error)
	// Priority orders Submitted jobs: higher runs sooner; equal
	// priorities run in submission order. Ignored by ForEach.
	Priority int
	// OnDone, when non-nil, is invoked exactly once when this submission
	// resolves — with Cached or Coalesced set when the result came from
	// the cache or another caller's run. It runs on whichever goroutine
	// resolves the ticket and must be safe for concurrent use. Ignored by
	// ForEach (use onDone there).
	OnDone func(Event[V])
}

// ForEach runs every job through Do on at most Workers goroutines and
// returns the results in job order. The first job error cancels the
// remaining jobs and is returned alongside the partial results (failed or
// skipped slots hold the zero value). Duplicate keys coalesce onto one
// run. onDone, when non-nil, is invoked once per completed slot from
// whichever worker finished it (it must be safe for concurrent use);
// slots skipped after a failure get no callback.
func (s *Scheduler[V]) ForEach(ctx context.Context, jobs []Job[V], onDone func(i int, v V, err error)) ([]V, error) {
	results := make([]V, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := s.Do(ctx, jobs[i].Key, jobs[i].Run)
				if onDone != nil {
					onDone(i, v, err)
				}
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sched: job %q: %w", jobs[i].Key, err)
						cancel()
					})
					continue
				}
				results[i] = v
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// ForEachAll runs every job through Do on at most Workers goroutines and
// returns per-slot results and errors in job order. Unlike ForEach, a job
// error does not cancel the rest of the pool — every job still runs, so
// callers get every completable result plus the full error picture. Only
// the caller's context stops the sweep early: slots never dispatched
// because ctx ended hold ctx.Err() (and the zero value). onDone, when
// non-nil, fires once per dispatched slot from whichever worker finished
// it (it must be safe for concurrent use); undispatched slots get no
// callback.
func (s *Scheduler[V]) ForEachAll(ctx context.Context, jobs []Job[V], onDone func(i int, v V, err error)) ([]V, []error) {
	results := make([]V, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}

	s.mu.Lock()
	workers := s.workers
	s.mu.Unlock()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := s.Do(ctx, jobs[i].Key, jobs[i].Run)
				results[i], errs[i] = v, err
				if onDone != nil {
					onDone(i, v, err)
				}
			}
		}()
	}
	// dispatched is written only here (the dispatching goroutine) and read
	// only after wg.Wait, so it needs no lock.
	dispatched := make([]bool, len(jobs))
dispatch:
	for i := range jobs {
		select {
		case next <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range jobs {
			if !dispatched[i] {
				errs[i] = err
			}
		}
	}
	return results, errs
}
