package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestEpochGating(t *testing.T) {
	c := New(100)
	var calls int
	c.Register("counter", func() error { calls++; return nil })
	for cycle := int64(1); cycle <= 1000; cycle++ {
		c.Tick(cycle)
	}
	if calls != 10 {
		t.Fatalf("epoch-100 check ran %d times over 1000 cycles, want 10", calls)
	}
	if c.Evals() != 10 {
		t.Fatalf("Evals() = %d, want 10", c.Evals())
	}
}

func TestDefaultEpochSelected(t *testing.T) {
	for _, epoch := range []int64{0, -5} {
		if got := New(epoch).Epoch(); got != DefaultEpoch {
			t.Errorf("New(%d).Epoch() = %d, want DefaultEpoch %d", epoch, got, DefaultEpoch)
		}
	}
}

func TestFinalOnlyChecks(t *testing.T) {
	c := New(1)
	var epochCalls, finalCalls int
	c.Register("epoch", func() error { epochCalls++; return nil })
	c.RegisterFinal("final", func() error { finalCalls++; return nil })
	for cycle := int64(1); cycle <= 5; cycle++ {
		c.Tick(cycle)
	}
	if finalCalls != 0 {
		t.Fatalf("final-only check ran %d times before Finalize", finalCalls)
	}
	c.Finalize(5)
	if finalCalls != 1 {
		t.Fatalf("final-only check ran %d times after Finalize, want 1", finalCalls)
	}
	if epochCalls != 6 { // 5 ticks + once more at Finalize
		t.Fatalf("epoch check ran %d times, want 6", epochCalls)
	}
}

func TestFinalizeEvaluatesInRegistrationOrder(t *testing.T) {
	c := New(1)
	var order []string
	c.Register("a", func() error { order = append(order, "a"); return nil })
	c.RegisterFinal("b", func() error { order = append(order, "b"); return nil })
	c.Register("c", func() error { order = append(order, "c"); return nil })
	c.Finalize(1)
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("Finalize order %q, want \"abc\"", got)
	}
}

func TestViolationRecordingAndCap(t *testing.T) {
	c := New(1)
	c.Register("broken", func() error { return errors.New("boom") })
	for cycle := int64(1); cycle <= maxRecorded+10; cycle++ {
		c.Tick(cycle)
	}
	if got := len(c.Violations()); got != maxRecorded {
		t.Fatalf("recorded %d violations, want cap %d", got, maxRecorded)
	}
	var verr *ViolationError
	err := c.Err()
	if !errors.As(err, &verr) {
		t.Fatalf("Err() = %T, want *ViolationError", err)
	}
	if verr.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", verr.Dropped)
	}
	if !errors.Is(err, ErrViolated) {
		t.Fatal("Err() does not wrap ErrViolated")
	}
	if msg := err.Error(); !strings.Contains(msg, "broken") || !strings.Contains(msg, "beyond cap") {
		t.Fatalf("error message misses check name or drop count: %q", msg)
	}
}

func TestViolationCarriesCycleAndName(t *testing.T) {
	c := New(10)
	c.Register("ledger", func() error { return fmt.Errorf("off by one") })
	c.Tick(30)
	vs := c.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	if vs[0].Cycle != 30 || vs[0].Check != "ledger" {
		t.Fatalf("violation = %+v, want cycle 30 / check %q", vs[0], "ledger")
	}
	if s := vs[0].String(); !strings.Contains(s, "cycle 30") || !strings.Contains(s, "ledger") {
		t.Fatalf("String() = %q", s)
	}
}

func TestNilCheckerIsDisabled(t *testing.T) {
	var c *Checker
	c.Tick(1024) // must not panic
	c.Finalize(2048)
	if c.Err() != nil || c.Violations() != nil || c.Evals() != 0 {
		t.Fatal("nil checker reports activity")
	}
}

func TestCloseTo(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1e9, 1e9 + 0.5, true},    // ULP-scale drift on a large sum
		{1e9, 1e9 + 10, false},    // whole-event mismatch
		{0, 1e-7, true},           // below the absolute floor
		{0, 1e-3, false},          // above it
		{-5, -5.0000000001, true}, // sign handled
		{-5, 5, false},            // sign mismatch
		{1234.5, 1234.5, true},    // exact
		{100, 100.000001, true},   // within atol near small magnitudes
	}
	for _, tc := range cases {
		if got := CloseTo(tc.a, tc.b); got != tc.want {
			t.Errorf("CloseTo(%g, %g) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
