// Package invariant is the runtime invariant-checking layer of the
// simulator: a registry of conservation-law and consistency checks that the
// sim package evaluates at a configurable cycle granularity (the epoch) and
// once more at the end of a run.
//
// The checks themselves live next to the state they inspect (the power
// meter verifies its own energy ledgers, the PTB balancer its token
// conservation, the cache hierarchy its MOESI directory, and so on); this
// package only provides the harness: registration, epoch gating, violation
// collection with a cap, and a typed error wrapping the ErrViolated
// sentinel so callers can branch with errors.Is.
//
// Checking is strictly opt-in. A disabled run carries a nil *Checker and
// pays one pointer comparison per simulated cycle; see DESIGN.md §8 for
// the per-invariant cost when enabled.
package invariant

import (
	"errors"
	"fmt"
	"strings"
)

// ErrViolated is the sentinel wrapped by every invariant-violation error.
var ErrViolated = errors.New("invariant violated")

// DefaultEpoch is the default check granularity in cycles. It is chosen so
// that a full-length run evaluates every invariant tens of thousands of
// times while the walk over directory and ledger state stays far below 1%
// of simulation time.
const DefaultEpoch = 1024

// maxRecorded caps the violations kept per run; one broken conservation
// law re-fires every epoch, and the first few occurrences carry all the
// signal.
const maxRecorded = 32

// CheckFunc inspects component state and returns nil when the invariant
// holds, or a descriptive error when it does not. Checks must not mutate
// simulation state.
type CheckFunc func() error

// Violation is one failed evaluation of a registered check.
type Violation struct {
	// Cycle is the simulation cycle at which the check ran.
	Cycle int64
	// Check is the registered name of the failed invariant.
	Check string
	// Err describes the violation.
	Err error
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %v", v.Cycle, v.Check, v.Err)
}

type check struct {
	name      string
	fn        CheckFunc
	finalOnly bool
}

// Checker evaluates registered invariants at epoch boundaries and collects
// violations. The zero value is not usable; construct with New. A nil
// *Checker is the disabled state: Tick and Finalize on nil are no-ops.
type Checker struct {
	epoch  int64
	checks []check

	viols   []Violation
	dropped int64
	evals   int64
}

// New returns a checker evaluating at the given cycle granularity
// (epoch < 1 selects DefaultEpoch).
func New(epoch int64) *Checker {
	if epoch < 1 {
		epoch = DefaultEpoch
	}
	return &Checker{epoch: epoch}
}

// Epoch returns the check granularity in cycles.
func (c *Checker) Epoch() int64 { return c.epoch }

// Register adds an invariant evaluated at every epoch boundary and once
// more by Finalize. Registration order is evaluation order.
func (c *Checker) Register(name string, fn CheckFunc) {
	c.checks = append(c.checks, check{name: name, fn: fn})
}

// RegisterFinal adds an invariant evaluated only by Finalize — for
// identities that need the run to be complete (or the uncore quiescent)
// to hold exactly.
func (c *Checker) RegisterFinal(name string, fn CheckFunc) {
	c.checks = append(c.checks, check{name: name, fn: fn, finalOnly: true})
}

// Tick evaluates the epoch checks if cycle falls on an epoch boundary.
// Safe on a nil receiver (disabled checking).
func (c *Checker) Tick(cycle int64) {
	if c == nil || cycle%c.epoch != 0 {
		return
	}
	c.run(cycle, false)
}

// Finalize evaluates every check (epoch and final-only) once, in
// registration order, at the end of a run. Safe on a nil receiver.
func (c *Checker) Finalize(cycle int64) {
	if c == nil {
		return
	}
	c.run(cycle, true)
}

func (c *Checker) run(cycle int64, final bool) {
	for i := range c.checks {
		ck := &c.checks[i]
		if ck.finalOnly && !final {
			continue
		}
		c.evals++
		if err := ck.fn(); err != nil {
			c.record(Violation{Cycle: cycle, Check: ck.name, Err: err})
		}
	}
}

func (c *Checker) record(v Violation) {
	if len(c.viols) >= maxRecorded {
		c.dropped++
		return
	}
	c.viols = append(c.viols, v)
}

// Violations returns the recorded violations in detection order (capped;
// see Err for the number dropped beyond the cap).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.viols
}

// Evals returns how many individual check evaluations ran (stats for
// overhead accounting and tests).
func (c *Checker) Evals() int64 {
	if c == nil {
		return 0
	}
	return c.evals
}

// Err returns nil when every evaluation passed, or a *ViolationError
// wrapping ErrViolated otherwise. Safe on a nil receiver.
func (c *Checker) Err() error {
	if c == nil || len(c.viols) == 0 {
		return nil
	}
	return &ViolationError{Violations: c.viols, Dropped: c.dropped}
}

// ViolationError reports every recorded invariant violation of a run.
type ViolationError struct {
	Violations []Violation
	// Dropped counts violations beyond the recording cap.
	Dropped int64
}

// Error lists the violations, one per line after the summary.
func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s)", len(e.Violations))
	if e.Dropped > 0 {
		fmt.Fprintf(&b, " (+%d beyond cap)", e.Dropped)
	}
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrViolated) true for every ViolationError.
func (e *ViolationError) Unwrap() error { return ErrViolated }

// CloseTo reports whether two accumulated floating-point quantities agree
// within the tolerance used by the conservation checks: a relative epsilon
// that scales with magnitude plus a small absolute floor for near-zero
// sums. Float accumulation across millions of cycles legitimately drifts
// by a few ULPs per addition; rtol covers that while still catching any
// real accounting bug (which shows up as whole events, many orders of
// magnitude larger).
func CloseTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if x := b; x < 0 {
		x = -x
		if x > m {
			m = x
		}
	} else if x > m {
		m = x
	}
	const rtol, atol = 1e-9, 1e-6
	return d <= rtol*m+atol
}
