package isa

import (
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		OpNop: "nop", OpIntAlu: "ialu", OpIntMul: "imul", OpFPAlu: "falu",
		OpFPMul: "fmul", OpLoad: "load", OpStore: "store", OpBranch: "branch",
		OpAtomicRMW: "rmw",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(200).String() == "" {
		t.Fatal("out-of-range op has empty name")
	}
}

func TestIsMem(t *testing.T) {
	memOps := map[Op]bool{
		OpLoad: true, OpStore: true, OpAtomicRMW: true,
		OpIntAlu: false, OpBranch: false, OpNop: false, OpFPMul: false,
	}
	for op, want := range memOps {
		if op.IsMem() != want {
			t.Fatalf("%v.IsMem() = %v, want %v", op, op.IsMem(), want)
		}
	}
}

func TestSyncClassStrings(t *testing.T) {
	want := map[SyncClass]string{
		SyncBusy: "busy", SyncLockAcq: "lock-acq", SyncLockRel: "lock-rel",
		SyncBarrier: "barrier",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if NumSyncClasses != 4 {
		t.Fatalf("NumSyncClasses = %d", NumSyncClasses)
	}
}

func TestLineAddr(t *testing.T) {
	cases := map[uint64]uint64{
		0:      0,
		63:     0,
		64:     64,
		65:     64,
		0x1234: 0x1200,
	}
	for addr, want := range cases {
		if got := LineAddr(addr); got != want {
			t.Fatalf("LineAddr(%#x) = %#x, want %#x", addr, got, want)
		}
	}
}

func TestLineAddrProperties(t *testing.T) {
	f := func(addr uint64) bool {
		l := LineAddr(addr)
		return l%CacheLineSize == 0 && l <= addr && addr-l < CacheLineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumOps(t *testing.T) {
	if NumOps != 9 {
		t.Fatalf("NumOps = %d, want 9", NumOps)
	}
}
