// Package isa defines the instruction abstraction executed by the simulated
// out-of-order cores. Instructions are produced by the reactive workload
// generators (package workload) and consumed by the pipeline model (package
// cpu).
//
// The ISA is deliberately minimal: what the PTB study needs from an
// instruction is (a) which functional unit class it occupies and for how
// long, (b) whether and where it touches memory, (c) whether it is a branch
// and whether that branch is taken, and (d) data dependencies that throttle
// ILP. Architectural register semantics are abstracted into explicit
// dependency distances, which is sufficient to drive a realistic issue/wakeup
// model.
package isa

import "fmt"

// Op enumerates instruction classes. The classes mirror the functional-unit
// mix of the simulated core (Table 1 of the paper): integer ALU, integer
// multiply, FP ALU, FP multiply, loads, stores, branches, and the atomic
// read-modify-write used to build locks and barriers.
type Op uint8

const (
	// OpNop is an empty slot; cores never fetch it from workloads but the
	// zero value must be harmless.
	OpNop Op = iota
	// OpIntAlu is a single-cycle integer operation.
	OpIntAlu
	// OpIntMul is a pipelined integer multiply.
	OpIntMul
	// OpFPAlu is a pipelined floating-point add/sub/convert.
	OpFPAlu
	// OpFPMul is a pipelined floating-point multiply/divide (divides are
	// modeled with a longer latency flag on the instruction).
	OpFPMul
	// OpLoad reads memory through the L1D.
	OpLoad
	// OpStore writes memory through the L1D at commit.
	OpStore
	// OpBranch is a conditional branch predicted by the gshare predictor.
	OpBranch
	// OpAtomicRMW is an atomic read-modify-write (test-and-set /
	// fetch-and-increment) used by locks and barriers. It occupies the load
	// path, requires exclusive coherence ownership, and is not speculated
	// past.
	OpAtomicRMW

	numOps
)

// NumOps is the number of distinct instruction classes.
const NumOps = int(numOps)

var opNames = [...]string{
	OpNop:       "nop",
	OpIntAlu:    "ialu",
	OpIntMul:    "imul",
	OpFPAlu:     "falu",
	OpFPMul:     "fmul",
	OpLoad:      "load",
	OpStore:     "store",
	OpBranch:    "branch",
	OpAtomicRMW: "rmw",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool {
	return o == OpLoad || o == OpStore || o == OpAtomicRMW
}

// Inst is one dynamic instruction. Instructions are values, not pointers:
// the pipeline copies them into its ROB entries.
type Inst struct {
	// PC is the (synthetic) program counter. PCs identify static
	// instructions for the branch predictor and the Power-Token History
	// Table; workload generators assign stable PCs to static program points
	// so that history mechanisms see realistic locality.
	PC uint64

	// Op is the instruction class.
	Op Op

	// Addr is the byte address touched by memory operations (aligned to the
	// access size by the generator). Zero for non-memory ops.
	Addr uint64

	// Taken is the actual outcome for OpBranch.
	Taken bool

	// Dep1 and Dep2 are data-dependency distances: this instruction reads
	// the results of the instructions Dep1 and Dep2 positions earlier in
	// program order (0 means no dependency). Distances larger than the ROB
	// size behave as satisfied dependencies.
	Dep1, Dep2 uint16

	// LongLat marks a long-latency variant of the op class (e.g. FP divide
	// on the FPMul unit).
	LongLat bool

	// SyncClass tags the synchronization context this instruction executes
	// in. It is bookkeeping for the time-breakdown metric (Fig. 3) and for
	// the application-assisted dynamic policy selector (§IV.B); the pipeline
	// itself does not act on it.
	SyncClass SyncClass

	// Serialize stalls fetch after this instruction until it commits. The
	// workload generator sets it on instructions whose outcome decides the
	// subsequent instruction stream (atomics and spin loads); the outcome is
	// delivered back to the generator through Source.Resolve.
	Serialize bool

	// SyncOp is the logical synchronization operation evaluated when this
	// instruction executes (OpAtomicRMW and spin OpLoads). SyncNone for
	// ordinary instructions.
	SyncOp SyncOpKind

	// SyncID identifies the lock or barrier the SyncOp targets.
	SyncID int32

	// SyncArg carries per-op context (the observed barrier generation for
	// barrier spin loads).
	SyncArg int64
}

// SyncOpKind enumerates the logical synchronization operations.
type SyncOpKind uint8

const (
	// SyncNone marks ordinary instructions.
	SyncNone SyncOpKind = iota
	// SyncLockTry is an atomic test-and-set on a lock; result 1 = acquired.
	SyncLockTry
	// SyncUnlock releases a lock.
	SyncUnlock
	// SyncBarrierArrive atomically increments a barrier counter; the result
	// encodes the generation at arrival and whether the arriver was last.
	SyncBarrierArrive
	// SyncSpinLock is a spin read of a lock word; result 1 = lock free.
	SyncSpinLock
	// SyncSpinBarrier is a spin read of a barrier flag; result 1 = the
	// generation in SyncArg has completed.
	SyncSpinBarrier
)

// SyncClass classifies what program activity an instruction belongs to, for
// the execution-time breakdown of Fig. 3.
type SyncClass uint8

const (
	// SyncBusy is useful computation.
	SyncBusy SyncClass = iota
	// SyncLockAcq is spinning/working to acquire a lock.
	SyncLockAcq
	// SyncLockRel is releasing a lock.
	SyncLockRel
	// SyncBarrier is waiting at a barrier.
	SyncBarrier

	numSyncClasses
)

// NumSyncClasses is the number of sync classes.
const NumSyncClasses = int(numSyncClasses)

var syncNames = [...]string{
	SyncBusy:    "busy",
	SyncLockAcq: "lock-acq",
	SyncLockRel: "lock-rel",
	SyncBarrier: "barrier",
}

// String returns the breakdown label used in Fig. 3.
func (s SyncClass) String() string {
	if int(s) < len(syncNames) {
		return syncNames[s]
	}
	return fmt.Sprintf("sync(%d)", uint8(s))
}

// CacheLineSize is the coherence/line granularity in bytes, shared by the
// whole memory system.
const CacheLineSize = 64

// LineAddr returns the cache-line address (byte address of the line start)
// containing addr.
func LineAddr(addr uint64) uint64 {
	return addr &^ uint64(CacheLineSize-1)
}
