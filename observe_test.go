package ptbsim_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"ptbsim"
	"ptbsim/internal/sim"
)

// telemetryTestConfigs is the small cross-technique grid the telemetry
// identity tests run at scale 0.05 — the same set the parallelism-
// independence test uses, so the two "results never depend on X" gates
// cover identical ground.
func telemetryTestConfigs() []ptbsim.Config {
	return []ptbsim.Config{
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.None},
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
		{Benchmark: "raytrace", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.ToOne},
		{Benchmark: "fft", Cores: 4, Technique: ptbsim.TwoLevel},
	}
}

// TestDigestTelemetryIndependence demands byte-identical digests with an
// observer attached and without: observation is passive, so telemetry must
// never perturb a simulation. This is the zero-cost contract of the
// observability layer in its cheapest-to-run form; the non-short
// TestTelemetryGoldenMatrix pins the same property across the full matrix.
func TestDigestTelemetryIndependence(t *testing.T) {
	cfgs := telemetryTestConfigs()
	digests := func(opts ...ptbsim.Option) []string {
		e := ptbsim.NewExperiment(append([]ptbsim.Option{
			ptbsim.WithScale(0.05),
			ptbsim.WithInvariants(),
		}, opts...)...)
		results, err := e.RunAll(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = r.Digest()
		}
		return out
	}
	bare := digests()
	mo := &ptbsim.MemoryObserver{}
	observed := digests(ptbsim.WithObserver(512, mo))
	for i := range bare {
		if bare[i] != observed[i] {
			t.Errorf("config %d: digest depends on telemetry:\n off %s\n on  %s",
				i, bare[i], observed[i])
		}
	}
	// The observer must actually have seen every run: samples from all
	// four configurations and one run-completion event per config.
	if got := len(mo.Runs()); got != len(cfgs) {
		t.Errorf("ObserveRun fired %d times, want %d", got, len(cfgs))
	}
	seen := map[string]bool{}
	for _, s := range mo.Samples() {
		seen[s.Bench+"/"+s.Tech] = true
	}
	for _, cfg := range cfgs {
		key := cfg.Benchmark + "/" + string(cfg.Technique)
		if !seen[key] {
			t.Errorf("no telemetry samples from %s", key)
		}
	}
}

// TestTelemetryEnergyIdentity checks the recorder's accounting against the
// run's headline result: for each run, the epoch energies (including the
// partial tail flush) must telescope back to the total chip energy the
// metrics collector reports. A drift here means an epoch was dropped,
// double-counted, or sampled off the meter.
func TestTelemetryEnergyIdentity(t *testing.T) {
	for _, cfg := range telemetryTestConfigs() {
		mo := &ptbsim.MemoryObserver{}
		cfg.WorkloadScale = 0.05
		cfg.CheckInvariants = true
		cfg.Observe = &ptbsim.Telemetry{Every: 1000, Observer: mo}
		res, err := ptbsim.RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Benchmark, cfg.Technique, err)
		}
		var sumPJ float64
		var cycles int64
		for _, s := range mo.Samples() {
			for _, e := range s.EpochPJ {
				sumPJ += e
			}
			cycles += s.Cycles
		}
		wantPJ := res.EnergyJ * 1e12
		if diff := math.Abs(sumPJ - wantPJ); diff > 1e-6*wantPJ+1e-6 {
			t.Errorf("%s/%s: epoch energies sum to %.3f pJ, result says %.3f pJ",
				cfg.Benchmark, cfg.Technique, sumPJ, wantPJ)
		}
		if cycles != res.Cycles {
			t.Errorf("%s/%s: epochs cover %d cycles, run took %d",
				cfg.Benchmark, cfg.Technique, cycles, res.Cycles)
		}
	}
}

// TestTraceShimEquivalence pins the RunTraceContext compatibility shim to
// the legacy collector-based trace path it replaced: both figure traces
// must come out bit-identical, because the observer samples the same
// per-core energies on the same cycles. This is the deprecation-safety
// gate for callers migrating to Config.Observe.
func TestTraceShimEquivalence(t *testing.T) {
	const scale = 0.05
	t.Run("fig5-chip", func(t *testing.T) {
		want, wantBudget := sim.Fig5Trace(scale)
		got, err := ptbsim.RunTraceContext(context.Background(), ptbsim.Config{
			Benchmark:     "ocean",
			Cores:         4,
			Technique:     ptbsim.None,
			WorkloadScale: scale,
			MaxCycles:     20_000_000,
		}, 50, -1)
		if err != nil {
			t.Fatal(err)
		}
		compareTraces(t, got.ChipTrace, want)
		if got.GlobalBudgetPJ != wantBudget {
			t.Errorf("budget %v, legacy path says %v", got.GlobalBudgetPJ, wantBudget)
		}
	})
	t.Run("fig6-core", func(t *testing.T) {
		want, wantBudget := sim.Fig6Trace(scale)
		got, err := ptbsim.RunTraceContext(context.Background(), ptbsim.Config{
			Benchmark:     "raytrace",
			Cores:         4,
			Technique:     ptbsim.None,
			WorkloadScale: scale,
			MaxCycles:     20_000_000,
		}, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		compareTraces(t, got.CoreTrace, want)
		if got.GlobalBudgetPJ/4 != wantBudget {
			t.Errorf("local budget %v, legacy path says %v", got.GlobalBudgetPJ/4, wantBudget)
		}
	})
}

func compareTraces(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace has %d samples, legacy path has %d", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("empty trace")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trace diverges at sample %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestTelemetryGoldenMatrix reruns the full golden matrix with a JSONL
// observer attached and demands (a) every digest byte-identical to the
// committed baseline — the observability-on half of the zero-cost
// contract — and (b) a well-formed merged feed: parseable, covering every
// configuration and every core, with per-run epochs numbered contiguously
// from zero and one run-completion record per configuration.
func TestTelemetryGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix (98 runs) skipped in -short")
	}
	want := readGoldenMatrix(t)

	var buf bytes.Buffer
	jo := ptbsim.NewJSONLObserver(&buf)
	e := ptbsim.NewExperiment(
		ptbsim.WithScale(0.25),
		ptbsim.WithParallelism(8),
		ptbsim.WithInvariants(),
		ptbsim.WithObserver(8192, jo),
	)
	results, err := e.RunSweep(context.Background(), goldenMatrixSweep(t))
	if err != nil {
		t.Fatalf("golden matrix run failed: %v", err)
	}
	if err := jo.Err(); err != nil {
		t.Fatalf("telemetry sink error: %v", err)
	}
	if len(results) != len(want) {
		t.Fatalf("matrix has %d runs, golden file has %d digests", len(results), len(want))
	}
	for i, r := range results {
		if got := r.Digest(); got != want[i] {
			t.Errorf("digest drift with telemetry attached at line %d:\n got  %s\n want %s",
				i+1, got, want[i])
		}
	}

	feed := buf.String()
	if got := strings.Count(feed, `"run":`); got != len(results) {
		t.Errorf("feed has %d run-completion records, want %d", got, len(results))
	}
	samples, err := ptbsim.ReadTelemetry(strings.NewReader(feed))
	if err != nil {
		t.Fatalf("feed does not round-trip: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("feed holds no samples")
	}
	epochs := map[string][]int64{}
	for _, s := range samples {
		if s.Cores != 4 || len(s.CorePJ) != 4 || len(s.EpochPJ) != 4 {
			t.Fatalf("sample from %s/%s is not 4-core shaped: %+v", s.Bench, s.Tech, s)
		}
		key := fmt.Sprintf("%s/%s/%s", s.Bench, s.Tech, s.Policy)
		epochs[key] = append(epochs[key], s.Epoch)
	}
	for _, r := range results {
		key := fmt.Sprintf("%s/%s/%s", r.Benchmark, r.Technique, r.Policy)
		es := epochs[key]
		if len(es) == 0 {
			t.Errorf("no samples from %s", key)
			continue
		}
		// The shared feed interleaves runs, but each run's own epochs
		// arrive in order and numbered 0..n-1.
		for i, e := range es {
			if e != int64(i) {
				t.Errorf("%s: epoch %d arrived in position %d", key, e, i)
				break
			}
		}
	}
}

// TestReadTelemetrySkipsRunRecords pins the feed-demultiplexing rule: a
// line with a "run" key is a run-completion record, everything else is a
// sample, and malformed lines report their line number.
func TestReadTelemetrySkipsRunRecords(t *testing.T) {
	var buf bytes.Buffer
	jo := ptbsim.NewJSONLObserver(&buf)
	s := &ptbsim.Sample{Bench: "fft", Cores: 2, Tech: "ptb", Epoch: 0, Cycle: 100,
		CorePJ: []float64{1, 2}}
	jo.Observe(s)
	jo.ObserveRun(ptbsim.Progress{Config: ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.PTB}})
	s.Epoch, s.Cycle = 1, 200
	jo.Observe(s)
	if err := jo.Err(); err != nil {
		t.Fatal(err)
	}

	got, err := ptbsim.ReadTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Epoch != 0 || got[1].Epoch != 1 {
		t.Fatalf("got %d samples %+v, want the two sample lines", len(got), got)
	}

	if _, err := ptbsim.ReadTelemetry(strings.NewReader("{}\nnot json\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error %v does not carry its line number", err)
	}
}

// TestCSVObserverRejectsMixedCores pins the CSV sink's shape rule: the
// header is derived from the first sample's core count and later samples
// of a different width latch an error instead of writing ragged rows.
func TestCSVObserverRejectsMixedCores(t *testing.T) {
	var buf bytes.Buffer
	co := ptbsim.NewCSVObserver(&buf)
	co.Observe(&ptbsim.Sample{Bench: "fft", Cores: 2,
		CorePJ: []float64{1, 2}, TokensPJ: []float64{1, 2}, EpochPJ: []float64{1, 2},
		Modes: []int{0, 0}, Classes: []int{0, 0}})
	if err := co.Err(); err != nil {
		t.Fatal(err)
	}
	co.Observe(&ptbsim.Sample{Bench: "fft", Cores: 4,
		CorePJ: []float64{1, 2, 3, 4}, TokensPJ: []float64{1, 2, 3, 4}, EpochPJ: []float64{1, 2, 3, 4},
		Modes: []int{0, 0, 0, 0}, Classes: []int{0, 0, 0, 0}})
	if err := co.Err(); err == nil || !strings.Contains(err.Error(), "4-core sample in a 2-core feed") {
		t.Fatalf("mixed core counts not rejected: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("feed has %d lines, want header + one row", len(lines))
	}
	if cols := strings.Split(lines[0], ","); cols[0] != "bench" || len(cols) != len(strings.Split(lines[1], ",")) {
		t.Fatalf("header/row shape mismatch:\n %s\n %s", lines[0], lines[1])
	}
}
