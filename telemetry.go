package ptbsim

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// TelemetrySpec is the parsed form of the CLI tools' -telemetry flag: where
// and how to stream epoch telemetry. The zero spec selects the defaults —
// JSONL on standard output at DefaultTelemetryEvery.
type TelemetrySpec struct {
	// Every is the sampling period in cycles (0 = DefaultTelemetryEvery).
	Every int64
	// Ring is the in-memory ring capacity (0 = DefaultTelemetryRing).
	Ring int
	// Path is the output file; "" or "-" means standard output.
	Path string
	// Format is "jsonl" (the default when empty) or "csv".
	Format string
}

// ParseTelemetrySpec builds a TelemetrySpec from a comma-separated
// key=value list, the syntax the CLI tools accept for their -telemetry
// flag:
//
//	"every=2048,out=run.jsonl"
//	"every=512,format=csv,out=power.csv,ring=4096"
//
// Keys (all optional): every, ring, out, format. Unknown or repeated keys
// and malformed values return an error wrapping ErrBadTelemetrySpec; the
// empty string parses to the zero spec.
func ParseTelemetrySpec(in string) (TelemetrySpec, error) {
	var s TelemetrySpec
	if strings.TrimSpace(in) == "" {
		return s, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(in, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: empty clause in %q", ErrBadTelemetrySpec, in)
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: clause %q is not key=value", ErrBadTelemetrySpec, part)
		}
		k, v = strings.ToLower(strings.TrimSpace(k)), strings.TrimSpace(v)
		if seen[k] {
			return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: repeated key %q", ErrBadTelemetrySpec, k)
		}
		seen[k] = true
		switch k {
		case "every":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: every=%q (want a non-negative cycle count)", ErrBadTelemetrySpec, v)
			}
			s.Every = n
		case "ring":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: ring=%q (want a non-negative sample count)", ErrBadTelemetrySpec, v)
			}
			s.Ring = n
		case "out":
			s.Path = v
		case "format":
			f := strings.ToLower(v)
			if f != "jsonl" && f != "csv" {
				return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: format=%q (valid: jsonl, csv)", ErrBadTelemetrySpec, v)
			}
			s.Format = f
		default:
			return TelemetrySpec{}, fmt.Errorf("ptbsim: %w: unknown key %q (valid: every, ring, out, format)", ErrBadTelemetrySpec, k)
		}
	}
	return s, nil
}

// String renders the spec in ParseTelemetrySpec's syntax, omitting zero
// fields in a deterministic key order. The zero spec renders as ""; every
// spec ParseTelemetrySpec accepts round-trips.
func (s TelemetrySpec) String() string {
	var parts []string
	if s.Every != 0 {
		parts = append(parts, "every="+strconv.FormatInt(s.Every, 10))
	}
	if s.Ring != 0 {
		parts = append(parts, "ring="+strconv.Itoa(s.Ring))
	}
	if s.Path != "" {
		parts = append(parts, "out="+s.Path)
	}
	if s.Format != "" {
		parts = append(parts, "format="+s.Format)
	}
	return strings.Join(parts, ",")
}

// Validate checks the spec; errors wrap ErrBadTelemetrySpec. A Path
// containing a comma is rejected because it could not round-trip through
// the flag syntax.
func (s TelemetrySpec) Validate() error {
	if s.Every < 0 {
		return fmt.Errorf("ptbsim: %w: negative sampling period %d", ErrBadTelemetrySpec, s.Every)
	}
	if s.Ring < 0 {
		return fmt.Errorf("ptbsim: %w: negative ring size %d", ErrBadTelemetrySpec, s.Ring)
	}
	switch s.Format {
	case "", "jsonl", "csv":
	default:
		return fmt.Errorf("ptbsim: %w: format=%q (valid: jsonl, csv)", ErrBadTelemetrySpec, s.Format)
	}
	if strings.Contains(s.Path, ",") {
		return fmt.Errorf("ptbsim: %w: output path %q contains a comma", ErrBadTelemetrySpec, s.Path)
	}
	return nil
}

// Start validates the spec, opens its output and builds the Telemetry to
// put in Config.Observe (or Runner equivalents). The returned close
// function flushes buffered samples, reports the first sink error and
// closes the file; call it once after the run(s) finish:
//
//	tel, closeTel, err := spec.Start()
//	// ... run with Config{Observe: tel}
//	err = closeTel()
//
// The observer inside the returned Telemetry is safe to share across
// concurrent runs.
func (s TelemetrySpec) Start() (*Telemetry, func() error, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	var f *os.File
	var w io.Writer = os.Stdout
	if s.Path != "" && s.Path != "-" {
		var err error
		if f, err = os.Create(s.Path); err != nil {
			return nil, nil, fmt.Errorf("ptbsim: telemetry output: %w", err)
		}
		w = f
	}
	bw := bufio.NewWriter(w)
	var obsv Observer
	var finish func() error
	switch s.Format {
	case "csv":
		o := NewCSVObserver(bw)
		obsv, finish = o, o.Err
	default:
		o := NewJSONLObserver(bw)
		obsv, finish = o, o.Err
	}
	closeFn := func() error {
		err := finish()
		if e := bw.Flush(); err == nil {
			err = e
		}
		if f != nil {
			if e := f.Close(); err == nil {
				err = e
			}
		}
		return err
	}
	return &Telemetry{Every: s.Every, Ring: s.Ring, Observer: obsv}, closeFn, nil
}
