package sinks

import (
	"io"

	"ptbsim"
)

// Sample is one epoch of telemetry; see ptbsim.Sample. Its JSON field
// names are the stable JSONL wire schema.
type Sample = ptbsim.Sample

// Observer consumes telemetry samples as a run records them; see
// ptbsim.Observer.
type Observer = ptbsim.Observer

// RunObserver is optionally implemented by an Observer to also receive
// run-completion events; see ptbsim.RunObserver.
type RunObserver = ptbsim.RunObserver

// JSONLObserver streams telemetry as JSON Lines in the stable wire
// schema; see the package documentation for the format guarantee.
type JSONLObserver = ptbsim.JSONLObserver

// CSVObserver streams telemetry as CSV with an append-only column order;
// see the package documentation for the format guarantee.
type CSVObserver = ptbsim.CSVObserver

// MemoryObserver retains samples and run-completion events in memory.
type MemoryObserver = ptbsim.MemoryObserver

// NewJSONL creates a JSONL sink writing to w. The caller owns w's
// buffering and closing.
func NewJSONL(w io.Writer) *JSONLObserver { return ptbsim.NewJSONLObserver(w) }

// NewCSV creates a CSV sink writing to w; see NewJSONL for ownership
// conventions.
func NewCSV(w io.Writer) *CSVObserver { return ptbsim.NewCSVObserver(w) }

// ReadTelemetry parses a JSONL telemetry stream (the JSONLObserver
// format) back into samples, in stream order. Run-completion records and
// blank lines are skipped; malformed lines fail with their line number.
func ReadTelemetry(r io.Reader) ([]Sample, error) { return ptbsim.ReadTelemetry(r) }
