package sinks_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ptbsim"
	"ptbsim/sinks"
)

// TestAliasesAreRootTypes proves the two import paths name identical
// types: a sink built here plugs into the root experiment API unchanged.
func TestAliasesAreRootTypes(t *testing.T) {
	var buf bytes.Buffer
	var o sinks.Observer = sinks.NewJSONL(&buf)
	if _, ok := o.(ptbsim.Observer); !ok {
		t.Fatal("sinks.Observer value does not satisfy ptbsim.Observer")
	}
	var _ *ptbsim.JSONLObserver = sinks.NewJSONL(&buf)
	var _ *ptbsim.CSVObserver = sinks.NewCSV(&buf)
	var _ *ptbsim.MemoryObserver = &sinks.MemoryObserver{}
}

// TestJSONLRoundTripThroughExperiment drives a real run through a sinks
// JSONL observer and parses the stream back with sinks.ReadTelemetry.
func TestJSONLRoundTripThroughExperiment(t *testing.T) {
	var buf bytes.Buffer
	o := sinks.NewJSONL(&buf)
	e := ptbsim.NewExperiment(ptbsim.WithScale(0.02), ptbsim.WithObserver(256, o))
	res, err := e.Run(context.Background(), ptbsim.Config{
		Benchmark: "fft", Cores: 2, Technique: ptbsim.None,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	samples, err := sinks.ReadTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples on the wire")
	}
	for i, s := range samples {
		if s.Bench != "fft" || s.Cores != 2 {
			t.Fatalf("sample %d tagged %s/%d, want fft/2", i, s.Bench, s.Cores)
		}
	}
	_ = res
}

// TestJSONLRunRecordCarriesDigest pins that run-completion records embed
// the self-verifying result digest on the wire.
func TestJSONLRunRecordCarriesDigest(t *testing.T) {
	var buf bytes.Buffer
	o := sinks.NewJSONL(&buf)
	e := ptbsim.NewExperiment(ptbsim.WithScale(0.02), ptbsim.WithObserver(0, o))
	res, err := e.Run(context.Background(), ptbsim.Config{
		Benchmark: "radix", Cores: 2, Technique: ptbsim.None,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"digest":"`+res.Digest()[:20]) {
		t.Fatalf("run record lacks the result digest; stream:\n%s", buf.String())
	}
}

// TestCSVHeader pins the CSV header's leading stable columns.
func TestCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	o := sinks.NewCSV(&buf)
	e := ptbsim.NewExperiment(ptbsim.WithScale(0.02), ptbsim.WithObserver(256, o))
	if _, err := e.Run(context.Background(), ptbsim.Config{
		Benchmark: "fft", Cores: 2, Technique: ptbsim.None,
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	header, _, ok := strings.Cut(buf.String(), "\n")
	if !ok {
		t.Fatal("no CSV output")
	}
	if !strings.HasPrefix(header, "bench,cores,tech,policy,epoch,cycle,cycles,partial,budget_pj") {
		t.Fatalf("CSV header drifted: %s", header)
	}
}
