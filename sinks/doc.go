// Package sinks is the stable home of ptbsim's telemetry wire formats:
// the JSONL and CSV observer sinks, the in-memory sink, and the
// ReadTelemetry parser.
//
// # Stability guarantee
//
// The wire formats produced by the sinks in this package are a stable
// contract, independent of the Go API:
//
//   - JSONL: one JSON object per line. Sample lines use the snake_case
//     schema pinned on Sample's json tags. Run-completion lines are
//     distinguished by a "run" key holding the Config wire form, with
//     optional "result" (the Result wire form, including its
//     self-verifying "digest"), "cached" and "error" fields. New fields
//     may be added; existing keys are never renamed, retyped or removed.
//   - CSV: a header row derived from the feed's core count, then one row
//     per sample; column order is append-only.
//
// Streams written by any released version remain parseable by
// ReadTelemetry in every later version.
//
// The concrete types are declared in the root ptbsim package (they embed
// root types like Config and Result, so the dependency must point this
// way) and aliased here; the two import paths name identical types, and
// values flow freely between them. New code should import this package —
// the root-level constructors are kept as deprecated aliases.
package sinks
