package ptbsim_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"ptbsim"
)

// goldenMatrixSweep is the configuration grid committed under
// testdata/golden/matrix_scale025.txt: every benchmark × every technique at
// 4 cores, the PTB family under its headline Dynamic policy. It must match
// cmd/ptbgolden exactly — the test and the generator describe the same
// matrix.
func goldenMatrixSweep(t *testing.T) ptbsim.Sweep {
	t.Helper()
	var techs []ptbsim.Technique
	for _, name := range ptbsim.TechniqueNames() {
		tech, err := ptbsim.ParseTechnique(name)
		if err != nil {
			t.Fatalf("ParseTechnique(%q): %v", name, err)
		}
		techs = append(techs, tech)
	}
	return ptbsim.Sweep{
		CoreCounts: []int{4},
		Techniques: techs,
		Policies:   []ptbsim.Policy{ptbsim.Dynamic},
	}
}

// readGoldenMatrix loads the committed digest lines from
// testdata/golden/matrix_scale025.txt, skipping comments and blanks. Shared
// by the golden regression gate and the zero-rate fault identity test.
func readGoldenMatrix(t *testing.T) []string {
	t.Helper()
	return readGoldenFile(t, "testdata/golden/matrix_scale025.txt")
}

// readGoldenFile loads the digest lines of any committed golden file,
// skipping comments and blanks.
func readGoldenFile(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with `go generate ./...`): %v", err)
	}
	var want []string
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want = append(want, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestGoldenMatrixDigests reruns the full golden matrix — with the runtime
// invariant layer enabled and 8-way sweep parallelism — and compares every
// digest byte-for-byte against testdata/golden/matrix_scale025.txt. It is
// the whole-simulator regression gate: any behavioral change anywhere in
// the pipeline, caches, NoC, power model or controllers moves at least one
// digest. Regenerate intentionally changed baselines with `go generate
// ./...` (or `make golden`).
func TestGoldenMatrixDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix (98 runs) skipped in -short")
	}
	want := readGoldenMatrix(t)

	// par-intra=1 is the serial baseline; par-intra=8 clamps to the
	// maximal partition of the matrix's 4-core chips (single-core tiles,
	// the experiment default means "up to n") and must reproduce the
	// committed digests byte-for-byte too.
	for _, parIntra := range []int{1, 8} {
		t.Run(fmt.Sprintf("par-intra=%d", parIntra), func(t *testing.T) {
			e := ptbsim.NewExperiment(
				ptbsim.WithScale(0.25),
				ptbsim.WithParallelism(8),
				ptbsim.WithInvariants(),
				ptbsim.WithIntraParallel(parIntra),
			)
			results, err := e.RunSweep(context.Background(), goldenMatrixSweep(t))
			if err != nil {
				t.Fatalf("golden matrix run failed (invariant violation?): %v", err)
			}
			if len(results) != len(want) {
				t.Fatalf("golden matrix has %d runs, golden file has %d digests", len(results), len(want))
			}
			for i, r := range results {
				if got := r.Digest(); got != want[i] {
					t.Errorf("digest drift at line %d:\n got  %s\n want %s", i+1, got, want[i])
				}
			}
		})
	}
}

// TestGoldenMatrixBigChip reruns the committed 64- and 256-core mini-matrix
// (testdata/golden/matrix_bigchip.txt) with every chip sharded across 8
// goroutine tiles and compares digests byte-for-byte. It is both halves of
// the big-chip acceptance: the post-paper chip sizes stay pinned, and the
// partition layer reproduces them exactly at par-intra=8. The grid must
// match the go:generate ptbgolden invocation in ptbsim.go.
func TestGoldenMatrixBigChip(t *testing.T) {
	if testing.Short() {
		t.Skip("big-chip matrix (8 runs up to 256 cores) skipped in -short")
	}
	want := readGoldenFile(t, "testdata/golden/matrix_bigchip.txt")

	sweep := ptbsim.Sweep{
		Benchmarks: []string{"ocean", "fft"},
		CoreCounts: []int{64, 256},
		Techniques: []ptbsim.Technique{ptbsim.None, ptbsim.PTB},
		Policies:   []ptbsim.Policy{ptbsim.Dynamic},
	}
	cfgs := sweep.Configs()
	for i := range cfgs {
		if cfgs[i].Technique == ptbsim.PTB {
			cfgs[i].PTBClusterSize = 16
		}
	}
	e := ptbsim.NewExperiment(
		ptbsim.WithScale(0.01),
		ptbsim.WithInvariants(),
		ptbsim.WithIntraParallel(8),
	)
	results, err := e.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("big-chip matrix run failed (invariant violation?): %v", err)
	}
	if len(results) != len(want) {
		t.Fatalf("big-chip matrix has %d runs, golden file has %d digests", len(results), len(want))
	}
	for i, r := range results {
		if got := r.Digest(); got != want[i] {
			t.Errorf("big-chip digest drift at line %d (par-intra=8):\n got  %s\n want %s", i+1, got, want[i])
		}
	}
}

// TestDigestParallelismIndependence runs the same configurations through a
// serial and an 8-way-parallel experiment — the latter also sharding each
// chip across up to 8 goroutine tiles — and demands byte-identical
// digests: neither sweep parallelism nor intra-run tile parallelism may
// ever leak into results. The mixed core counts (2 and 4) also exercise
// the experiment-level clamp: WithIntraParallel(8) must fit itself to
// every chip instead of rejecting the sweep.
func TestDigestParallelismIndependence(t *testing.T) {
	cfgs := []ptbsim.Config{
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.None},
		{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
		{Benchmark: "raytrace", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.ToOne},
		{Benchmark: "fft", Cores: 2, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
		{Benchmark: "fft", Cores: 4, Technique: ptbsim.TwoLevel},
	}
	digests := func(par int) []string {
		opts := []ptbsim.Option{
			ptbsim.WithScale(0.05),
			ptbsim.WithParallelism(par),
			ptbsim.WithInvariants(),
		}
		if par > 1 {
			opts = append(opts, ptbsim.WithIntraParallel(par))
		}
		e := ptbsim.NewExperiment(opts...)
		results, err := e.RunAll(context.Background(), cfgs)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = r.Digest()
		}
		return out
	}
	serial := digests(1)
	parallel := digests(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("config %d: digest depends on parallelism:\n par=1 %s\n par=8 %s",
				i, serial[i], parallel[i])
		}
	}
}

// TestDigestCoversTokenFlow pins the digest format itself: distinct results
// must yield distinct digests, and the sha fragment must match the line it
// annotates.
func TestDigestCoversTokenFlow(t *testing.T) {
	a := &ptbsim.Result{Benchmark: "ocean", Cores: 4, Technique: ptbsim.PTB, Policy: "Dynamic",
		Cycles: 100, Committed: 50, EnergyJ: 1.5, TokenDonatedPJ: 10}
	b := *a
	b.TokenDonatedPJ = 10.0000000001
	da, db := a.Digest(), b.Digest()
	if da == db {
		t.Fatalf("digest misses a last-ULP token-flow change: %s", da)
	}
	for _, d := range []string{da, db} {
		if !strings.Contains(d, " sha=") {
			t.Fatalf("digest %q lacks the sha fragment", d)
		}
	}
	if fmt.Sprint(a.Digest()) != da {
		t.Fatal("Digest is not deterministic for identical results")
	}
}
