// Ablation benchmarks for the design choices DESIGN.md §6 calls out: token
// quantization depth, PTHT size, balancer transfer latency, token-wire
// width, DVFS window, PTB policies and relaxed thresholds. Each benchmark
// sweeps one knob over a fixed workload and reports the resulting AoPB (or
// energy) per setting, so
//
//	go test -bench=Ablation -benchtime=1x
//
// produces a sensitivity record for the mechanism.
package ptbsim

import (
	"fmt"
	"testing"

	"ptbsim/internal/cache"
	"ptbsim/internal/core"
	"ptbsim/internal/isa"
	"ptbsim/internal/metrics"
	"ptbsim/internal/power"
	"ptbsim/internal/sim"
	"ptbsim/internal/workload"
)

// ablationRun executes one PTB configuration on a fixed workload.
func ablationRun(b *testing.B, mutate func(*sim.Config)) *metrics.RunResult {
	b.Helper()
	spec, _ := workload.ByName("ocean")
	cfg := sim.Config{
		Benchmark:     spec,
		Cores:         8,
		Technique:     sim.TechPTB,
		Policy:        core.PolicyToAll,
		WorkloadScale: benchScale,
		MaxCycles:     20_000_000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func ablationBase(b *testing.B) *metrics.RunResult {
	b.Helper()
	return ablationRun(b, func(c *sim.Config) { c.Technique = sim.TechNone })
}

func BenchmarkAblationTokenGroups(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			// Quantization error of the k-group model over all variants,
			// plus the end-to-end AoPB it yields.
			tm := power.NewTokenModelK(k)
			worst := 0.0
			for op := 1; op < isa.NumOps; op++ {
				for _, ll := range []bool{false, true} {
					exact := tm.ExactBaseTokens(isa.Op(op), ll)
					quant := float64(tm.BaseTokens(isa.Op(op), ll))
					if exact > 0 {
						rel := (quant - exact) / exact
						if rel < 0 {
							rel = -rel
						}
						if rel > worst {
							worst = rel
						}
					}
				}
			}
			var aopb float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) { c.TokenGroups = k })
				aopb = metrics.NormalizedAoPBPct(r, base)
			}
			b.ReportMetric(worst*100, "worst-quant-err%")
			b.ReportMetric(aopb, "AoPB%")
		})
	}
}

func BenchmarkAblationPTHTSize(b *testing.B) {
	for _, size := range []int{512, 2048, 8192} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			var aopb float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) { c.CPU.PTHTSize = size })
				aopb = metrics.NormalizedAoPBPct(r, base)
			}
			b.ReportMetric(aopb, "AoPB%")
		})
	}
}

func BenchmarkAblationBalancerLatency(b *testing.B) {
	for _, lat := range []core.Latency{{Send: 1, Process: 1, Return: 1}, {Send: 2, Process: 1, Return: 2}, {Send: 4, Process: 2, Return: 4}} {
		lat := lat
		b.Run(fmt.Sprintf("total=%d", lat.Total()), func(b *testing.B) {
			var aopb float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) { c.PTBLatency = &lat })
				aopb = metrics.NormalizedAoPBPct(r, base)
			}
			b.ReportMetric(aopb, "AoPB%")
		})
	}
}

func BenchmarkAblationWireBits(b *testing.B) {
	for _, bits := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var aopb, slow float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) { c.WireBits = bits })
				aopb = metrics.NormalizedAoPBPct(r, base)
				slow = metrics.SlowdownPct(r, base)
			}
			b.ReportMetric(aopb, "AoPB%")
			b.ReportMetric(slow, "slowdown%")
		})
	}
}

func BenchmarkAblationDVFSWindow(b *testing.B) {
	for _, w := range []int64{256, 2048, 8192} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			var aopb float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) {
					c.Technique = sim.TechDVFS
					c.DVFSWindow = w
				})
				aopb = metrics.NormalizedAoPBPct(r, base)
			}
			b.ReportMetric(aopb, "dvfs-AoPB%")
		})
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	for _, pol := range []core.Policy{core.PolicyToAll, core.PolicyToOne, core.PolicyDynamic} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var aopb, slow float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) { c.Policy = pol })
				aopb = metrics.NormalizedAoPBPct(r, base)
				slow = metrics.SlowdownPct(r, base)
			}
			b.ReportMetric(aopb, "AoPB%")
			b.ReportMetric(slow, "slowdown%")
		})
	}
}

func BenchmarkAblationRelax(b *testing.B) {
	for _, relax := range []float64{0, 0.10, 0.20, 0.30} {
		relax := relax
		b.Run(fmt.Sprintf("relax=%.0f%%", relax*100), func(b *testing.B) {
			var aopb, energy float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) { c.RelaxFrac = relax })
				aopb = metrics.NormalizedAoPBPct(r, base)
				energy = metrics.NormalizedEnergyPct(r, base)
			}
			b.ReportMetric(aopb, "AoPB%")
			b.ReportMetric(energy, "energy%")
		})
	}
}

func BenchmarkAblationSpinGate(b *testing.B) {
	for _, tech := range []sim.Technique{sim.TechPTB, sim.TechPTBSpinGate} {
		tech := tech
		b.Run(string(tech), func(b *testing.B) {
			var energy, slow float64
			for i := 0; i < b.N; i++ {
				spec, _ := workload.ByName("fluidanimate")
				base, err := sim.Run(sim.Config{Benchmark: spec, Cores: 8,
					WorkloadScale: benchScale, MaxCycles: 20_000_000})
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(sim.Config{Benchmark: spec, Cores: 8,
					Technique: tech, Policy: core.PolicyDynamic,
					WorkloadScale: benchScale, MaxCycles: 20_000_000})
				if err != nil {
					b.Fatal(err)
				}
				energy = metrics.NormalizedEnergyPct(r, base)
				slow = metrics.SlowdownPct(r, base)
			}
			b.ReportMetric(energy, "energy%")
			b.ReportMetric(slow, "slowdown%")
		})
	}
}

// BenchmarkAblationPrefetch compares the optional next-line L1D prefetcher
// (off = the paper's Table-1 machine) on a streaming-heavy benchmark.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []bool{false, true} {
		pf := pf
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				spec, _ := workload.ByName("fft")
				r, err := sim.Run(sim.Config{
					Benchmark: spec, Cores: 4, WorkloadScale: benchScale,
					MaxCycles: 20_000_000,
					Cache:     cache.Config{L1Prefetch: pf},
				})
				if err != nil {
					b.Fatal(err)
				}
				ipc = float64(r.Committed) / float64(r.Cycles) / 4
			}
			b.ReportMetric(ipc, "IPC/core")
		})
	}
}

// BenchmarkAblationClusterSize evaluates the §III.E.2 clustered balancer on
// a 16-core CMP: one chip-wide balancer (cluster=0) versus 4- and 8-core
// clusters with their shorter transfer latencies.
func BenchmarkAblationClusterSize(b *testing.B) {
	for _, cs := range []int{0, 4, 8} {
		cs := cs
		b.Run(fmt.Sprintf("cluster=%d", cs), func(b *testing.B) {
			var aopb float64
			for i := 0; i < b.N; i++ {
				base := ablationBase(b)
				r := ablationRun(b, func(c *sim.Config) {
					c.Cores = 16
					c.PTBClusterSize = cs
				})
				baseR := ablationRun(b, func(c *sim.Config) {
					c.Cores = 16
					c.Technique = sim.TechNone
				})
				_ = base
				aopb = metrics.NormalizedAoPBPct(r, baseR)
			}
			b.ReportMetric(aopb, "AoPB%")
		})
	}
}
