package ptbsim

import "flag"

// The CLI tools all expose the same technique/policy/faults/telemetry
// flags; these flag.Value implementations replace the per-tool string
// parsing so every tool validates identically and errors carry the typed
// ErrBad* sentinels. Usage:
//
//	tech := ptbsim.None
//	flag.Var(&tech, "tech", "technique ("+strings.Join(ptbsim.TechniqueNames(), ", ")+")")
//	var faults ptbsim.FaultSpecFlag
//	flag.Var(&faults, "faults", "fault spec, e.g. seed=42,drop=0.1")
//	var tel ptbsim.TelemetryFlag
//	flag.Var(&tel, "telemetry", "telemetry spec, e.g. every=2048,out=run.jsonl")

// String returns the technique's canonical lowercase name; together with
// Set it makes *Technique a flag.Value.
func (t Technique) String() string { return string(t) }

// Set implements flag.Value via ParseTechnique.
func (t *Technique) Set(s string) error {
	v, err := ParseTechnique(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Set implements flag.Value via ParsePolicy (Policy.String is the printing
// half).
func (p *Policy) Set(s string) error {
	v, err := ParsePolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// FaultSpecFlag is a flag.Value for -faults. Spec stays nil until the flag
// is set, preserving the nil-vs-zero-spec distinction Config.Faults
// documents (both run the ideal machine, but only an explicit spec appears
// in cache keys and reports).
type FaultSpecFlag struct {
	// Spec is the parsed spec, nil when the flag was never set.
	Spec *FaultSpec
}

// String renders the current spec ("" when unset).
func (f *FaultSpecFlag) String() string {
	if f == nil || f.Spec == nil {
		return ""
	}
	return f.Spec.String()
}

// Set implements flag.Value via ParseFaultSpec.
func (f *FaultSpecFlag) Set(in string) error {
	s, err := ParseFaultSpec(in)
	if err != nil {
		return err
	}
	f.Spec = &s
	return nil
}

// TelemetryFlag is a flag.Value for -telemetry. Spec stays nil until the
// flag is set — an unset flag means telemetry off, while `-telemetry ""`
// enables it with all defaults (JSONL to stdout).
type TelemetryFlag struct {
	// Spec is the parsed spec, nil when the flag was never set.
	Spec *TelemetrySpec
}

// String renders the current spec ("" when unset).
func (f *TelemetryFlag) String() string {
	if f == nil || f.Spec == nil {
		return ""
	}
	return f.Spec.String()
}

// Set implements flag.Value via ParseTelemetrySpec.
func (f *TelemetryFlag) Set(in string) error {
	s, err := ParseTelemetrySpec(in)
	if err != nil {
		return err
	}
	f.Spec = &s
	return nil
}

var (
	_ flag.Value = (*Technique)(nil)
	_ flag.Value = (*Policy)(nil)
	_ flag.Value = (*FaultSpecFlag)(nil)
	_ flag.Value = (*TelemetryFlag)(nil)
)
