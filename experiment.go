package ptbsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ptbsim/internal/runner"
	"ptbsim/internal/sim"
)

// Progress is one streamed update from an Experiment: a configuration
// finished (successfully, from cache, or with an error).
type Progress struct {
	// Config is the finished configuration (with the experiment's scale
	// and cycle-cap defaults applied).
	Config Config
	// Result is the run result, nil on error.
	Result *Result
	// Err is the run error, if any.
	Err error
	// Cached marks a result served from the experiment cache or coalesced
	// onto a concurrent run of the same configuration.
	Cached bool
	// Done and Total report sweep completion (1/1 for single Run calls).
	Done, Total int
}

// Experiment runs simulations through the parallel experiment engine:
// a bounded worker pool with per-configuration caching, single-flight
// deduplication (two goroutines asking for the same configuration share
// one simulation), context cancellation, panic recovery, and streaming
// progress. All methods are safe for concurrent use. Returned Results are
// shared across callers and must be treated as read-only.
type Experiment struct {
	scale       float64
	maxCycles   int64
	parallelism int
	invariants  bool
	progress    func(Progress)

	eng *runner.Engine[*Result]

	mu   sync.Mutex // serializes progress callbacks and the sweep counter
	done int
}

// Option configures an Experiment.
type Option func(*Experiment)

// WithParallelism bounds the worker pool for sweeps (default
// runtime.NumCPU(); n < 1 selects that default too). Parallelism 1
// reproduces a fully serial sweep — results are identical either way,
// simulations being deterministic.
func WithParallelism(n int) Option {
	return func(e *Experiment) { e.parallelism = n }
}

// WithScale sets the workload scale applied to configs that leave
// WorkloadScale zero (1.0 = the Table-2 sizes).
func WithScale(scale float64) Option {
	return func(e *Experiment) { e.scale = scale }
}

// WithMaxCycles sets the cycle cap applied to configs that leave
// MaxCycles zero.
func WithMaxCycles(n int64) Option {
	return func(e *Experiment) { e.maxCycles = n }
}

// WithInvariants enables the runtime invariant layer on every run the
// experiment executes (configs that already set CheckInvariants keep it
// either way). A violation fails that run with an error wrapping
// ErrInvariantViolation. Checked runs produce identical Results — the
// checks only read simulation state — at a small simulation-speed cost.
func WithInvariants() Option {
	return func(e *Experiment) { e.invariants = true }
}

// WithProgress installs a streaming callback invoked once per finished
// configuration. Callbacks are serialized, so fn needs no locking of its
// own.
func WithProgress(fn func(Progress)) Option {
	return func(e *Experiment) { e.progress = fn }
}

// NewExperiment creates an experiment engine. Without options it runs
// paper-sized workloads (scale 1.0) on runtime.NumCPU() workers.
func NewExperiment(opts ...Option) *Experiment {
	e := &Experiment{parallelism: runtime.NumCPU()}
	for _, o := range opts {
		o(e)
	}
	if e.parallelism < 1 {
		e.parallelism = runtime.NumCPU()
	}
	e.eng = runner.New[*Result](e.parallelism)
	return e
}

// Parallelism reports the sweep worker-pool bound.
func (e *Experiment) Parallelism() int { return e.parallelism }

// normalize applies the experiment-level defaults to cfg and collapses
// fields the simulation ignores, so equivalent configurations share one
// cache entry (Policy and PTB-only knobs only matter to the PTB family).
func (e *Experiment) normalize(cfg Config) Config {
	if cfg.WorkloadScale == 0 {
		cfg.WorkloadScale = e.scale
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = e.maxCycles
	}
	if cfg.Technique == "" {
		cfg.Technique = None
	}
	if cfg.Technique != PTB && cfg.Technique != PTBSpinGate {
		cfg.Policy = ToAll
		cfg.PessimisticPTBLatency = false
		cfg.PTBClusterSize = 0
	}
	if e.invariants {
		cfg.CheckInvariants = true
	}
	return cfg
}

// key canonicalizes a normalized config into the engine cache key.
func (e *Experiment) key(cfg Config) string {
	return fmt.Sprintf("%s|%d|%s|%d|relax=%.4f|budget=%.4f|scale=%.4f|max=%d|pessim=%t|cluster=%d|check=%t",
		cfg.Benchmark, cfg.Cores, cfg.Technique, int(cfg.Policy),
		cfg.RelaxFrac, cfg.BudgetFrac, cfg.WorkloadScale, cfg.MaxCycles,
		cfg.PessimisticPTBLatency, cfg.PTBClusterSize, cfg.CheckInvariants)
}

// emit delivers one progress event; the lock serializes concurrent
// callbacks from sweep workers (fn must not call back into e).
func (e *Experiment) emit(p Progress) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.progress != nil {
		e.progress(p)
	}
}

// Run returns the result for one configuration, simulating it at most
// once per experiment no matter how many goroutines ask concurrently.
func (e *Experiment) Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = e.normalize(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fresh := false
	res, err := e.eng.Do(ctx, e.key(cfg), func(ctx context.Context) (*Result, error) {
		fresh = true
		return RunContext(ctx, cfg)
	})
	e.emit(Progress{Config: cfg, Result: res, Err: err, Cached: err == nil && !fresh, Done: 1, Total: 1})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Base returns the no-control base case matching cfg (same benchmark,
// cores, budget and scale), the denominator of the paper's normalized
// metrics.
func (e *Experiment) Base(ctx context.Context, cfg Config) (*Result, error) {
	cfg.Technique = None
	cfg.Policy = ToAll
	cfg.RelaxFrac = 0
	return e.Run(ctx, cfg)
}

// RunAll executes every configuration on the worker pool and returns the
// results in input order. Duplicate configurations coalesce onto one
// simulation (both slots get the shared result). The first error cancels
// the remaining runs and is returned with the partial results (failed or
// skipped slots are nil); on cancellation the error wraps ctx.Err().
func (e *Experiment) RunAll(ctx context.Context, cfgs []Config) ([]*Result, error) {
	jobs := make([]runner.Job[*Result], len(cfgs))
	normed := make([]Config, len(cfgs))
	fresh := make([]bool, len(cfgs))
	for i, cfg := range cfgs {
		cfg = e.normalize(cfg)
		if err := cfg.Validate(); err != nil {
			return make([]*Result, len(cfgs)), fmt.Errorf("config %d: %w", i, err)
		}
		normed[i] = cfg
		i := i
		jobs[i] = runner.Job[*Result]{
			Key: e.key(cfg),
			Run: func(ctx context.Context) (*Result, error) {
				fresh[i] = true
				return RunContext(ctx, cfg)
			},
		}
	}
	total := len(jobs)
	e.mu.Lock()
	e.done = 0
	e.mu.Unlock()
	return e.eng.ForEach(ctx, jobs, func(i int, res *Result, err error) {
		if err != nil && ctx.Err() != nil {
			return // one cancellation, reported by the returned error
		}
		e.mu.Lock()
		e.done++
		if e.progress != nil {
			e.progress(Progress{Config: normed[i], Result: res, Err: err,
				Cached: err == nil && !fresh[i], Done: e.done, Total: total})
		}
		e.mu.Unlock()
	})
}

// A Sweep declares a cross-product of configurations — the shape of the
// paper's evaluation. Zero-valued dimensions fall back to defaults, so the
// zero Sweep is the full headline grid: every Table-2 benchmark × the
// paper's core counts × the no-control base case.
type Sweep struct {
	// Benchmarks are Table-2 workload names (default: all 14).
	Benchmarks []string
	// CoreCounts are CMP sizes (default: 2, 4, 8, 16).
	CoreCounts []int
	// Techniques are the budget mechanisms (default: None).
	Techniques []Technique
	// Policies apply to the PTB-family techniques only; other techniques
	// contribute one configuration regardless (default: ToAll).
	Policies []Policy
	// RelaxFracs are trigger-threshold relaxations (default: 0).
	RelaxFracs []float64
	// BudgetFracs are global budgets as fractions of peak (default: the
	// paper's 0.5, expressed as the zero value).
	BudgetFracs []float64
}

// Configs expands the sweep into its configuration cross-product, in
// deterministic row-major order (benchmark, cores, budget, technique,
// policy, relax). Policy and relax dimensions collapse for techniques
// they cannot affect, so the list contains no redundant simulations.
func (s Sweep) Configs() []Config {
	benches := s.Benchmarks
	if len(benches) == 0 {
		for _, b := range Benchmarks() {
			benches = append(benches, b.Name)
		}
	}
	cores := s.CoreCounts
	if len(cores) == 0 {
		cores = []int{2, 4, 8, 16}
	}
	techs := s.Techniques
	if len(techs) == 0 {
		techs = []Technique{None}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []Policy{ToAll}
	}
	relaxes := s.RelaxFracs
	if len(relaxes) == 0 {
		relaxes = []float64{0}
	}
	budgets := s.BudgetFracs
	if len(budgets) == 0 {
		budgets = []float64{0}
	}
	var out []Config
	for _, b := range benches {
		for _, n := range cores {
			for _, bud := range budgets {
				for _, t := range techs {
					pols := policies
					if t != PTB && t != PTBSpinGate {
						pols = policies[:1]
					}
					rxs := relaxes
					if t == None || t == DVFS || t == DFS || t == MaxBIPS {
						// Only the throttling ladder (2level and the PTB
						// family on top of it) has a trigger to relax.
						rxs = relaxes[:1]
					}
					for _, p := range pols {
						for _, rx := range rxs {
							cfg := Config{
								Benchmark:  b,
								Cores:      n,
								Technique:  t,
								BudgetFrac: bud,
								RelaxFrac:  rx,
							}
							if t == PTB || t == PTBSpinGate {
								cfg.Policy = p
							}
							if t == None || t == DVFS || t == DFS || t == MaxBIPS {
								cfg.RelaxFrac = 0
							}
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return out
}

// RunSweep expands the sweep and executes it on the worker pool; see
// RunAll for ordering, error and cancellation semantics.
func (e *Experiment) RunSweep(ctx context.Context, s Sweep) ([]*Result, error) {
	return e.RunAll(ctx, s.Configs())
}

// CoreCounts returns the CMP sizes the paper evaluates (2, 4, 8, 16).
func CoreCounts() []int { return sim.CoreCounts() }
