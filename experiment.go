package ptbsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ptbsim/internal/partition"
	"ptbsim/internal/sched"
	"ptbsim/internal/sim"
)

// Progress is one streamed update from an Experiment: a configuration
// finished (successfully, from cache, or with an error).
type Progress struct {
	// Config is the finished configuration (with the experiment's scale
	// and cycle-cap defaults applied).
	Config Config
	// Result is the run result, nil on error.
	Result *Result
	// Err is the run error, if any.
	Err error
	// Cached marks a result served from the experiment cache or coalesced
	// onto a concurrent run of the same configuration.
	Cached bool
	// Done and Total report sweep completion (1/1 for single Run calls).
	Done, Total int
}

// Experiment runs simulations through the parallel experiment engine:
// a bounded worker pool with per-configuration caching, single-flight
// deduplication (two goroutines asking for the same configuration share
// one simulation), context cancellation, panic recovery, and streaming
// progress. All methods are safe for concurrent use. Returned Results are
// shared across callers and must be treated as read-only.
type Experiment struct {
	scale         float64
	maxCycles     int64
	parallelism   int
	invariants    bool
	faults        *FaultSpec
	intraParallel int
	checkpoint    *Checkpoint
	runTimeout    time.Duration
	retries       int
	backoff       time.Duration
	progress      func(Progress)
	observer      Observer
	obsEvery      int64
	obsRing       int
	telemetry     *Telemetry // shared serialized Telemetry built from observer

	cacheBackend ResultCache // nil = default in-memory cache
	queueCap     int         // Submit queue bound; 0 = unbounded

	eng *sched.Scheduler[*Result]

	mu   sync.Mutex // serializes progress callbacks and the sweep counter
	done int
}

// Option configures an Experiment.
type Option func(*Experiment)

// WithParallelism bounds the worker pool for sweeps (default
// runtime.NumCPU(); n < 1 selects that default too). Parallelism 1
// reproduces a fully serial sweep — results are identical either way,
// simulations being deterministic.
func WithParallelism(n int) Option {
	return func(e *Experiment) { e.parallelism = n }
}

// WithScale sets the workload scale applied to configs that leave
// WorkloadScale zero (1.0 = the Table-2 sizes).
func WithScale(scale float64) Option {
	return func(e *Experiment) { e.scale = scale }
}

// WithMaxCycles sets the cycle cap applied to configs that leave
// MaxCycles zero.
func WithMaxCycles(n int64) Option {
	return func(e *Experiment) { e.maxCycles = n }
}

// WithInvariants enables the runtime invariant layer on every run the
// experiment executes (configs that already set CheckInvariants keep it
// either way). A violation fails that run with an error wrapping
// ErrInvariantViolation. Checked runs produce identical Results — the
// checks only read simulation state — at a small simulation-speed cost.
func WithInvariants() Option {
	return func(e *Experiment) { e.invariants = true }
}

// WithFaults injects faults into every run the experiment executes whose
// config leaves Faults nil (configs that set their own spec keep it).
// The spec is part of the cache key, so faulted and ideal runs of the
// same configuration never share a result.
func WithFaults(spec FaultSpec) Option {
	return func(e *Experiment) { e.faults = &spec }
}

// WithRunTimeout bounds the wall-clock time of each individual run. A run
// exceeding the deadline fails with an error wrapping ErrRunDeadline —
// treated as transient and retried when WithRetries is set. d <= 0 (the
// default) disables the per-run deadline.
func WithRunTimeout(d time.Duration) Option {
	return func(e *Experiment) { e.runTimeout = d }
}

// WithRetries retries a run that failed transiently (per-run deadline
// exceeded while the caller's context was still live) up to n more times,
// sleeping an exponentially growing backoff between attempts (see
// WithRetryBackoff). Deterministic failures — validation errors,
// invariant violations, caller cancellation — are never retried. n <= 0
// (the default) disables retrying.
func WithRetries(n int) Option {
	return func(e *Experiment) { e.retries = n }
}

// WithRetryBackoff sets the base sleep before the first retry (default
// 50ms), doubling per attempt. The sleep aborts immediately if the
// caller's context ends.
func WithRetryBackoff(d time.Duration) Option {
	return func(e *Experiment) { e.backoff = d }
}

// WithProgress installs a streaming callback invoked once per finished
// configuration. Callbacks are serialized, so fn needs no locking of its
// own.
func WithProgress(fn func(Progress)) Option {
	return func(e *Experiment) { e.progress = fn }
}

// WithIntraParallel shards every run the experiment executes across up to
// n tiles of goroutine-stepped cores: each chip uses the largest divisor
// of its core count not exceeding n, so one setting works across a sweep
// mixing core counts (configs that set their own IntraParallel keep it,
// and those are validated strictly). Like telemetry, intra-run sharding
// never enters the cache key: results are bit-identical at every legal
// tile count (the conformance suite in internal/sim pins this), so a
// serial and a sharded request for the same configuration share one
// simulation.
func WithIntraParallel(n int) Option {
	return func(e *Experiment) { e.intraParallel = n }
}

// WithCheckpoint arms crash-recovery snapshots on every run the
// experiment executes whose config leaves Checkpoint nil: each run
// periodically saves a snapshot under dir and resumes from it after a
// crash, byte-identically (see Checkpoint). Snapshot files are keyed by
// the config's stable wire JSON, and a run's snapshot is deleted when
// the run completes. Like telemetry, checkpointing never enters the
// cache key — it cannot change a result.
func WithCheckpoint(every int64, dir string) Option {
	return func(e *Experiment) { e.checkpoint = &Checkpoint{Every: every, Dir: dir} }
}

// WithObserver streams epoch telemetry from every run the experiment
// executes into o, sampling every `every` cycles (0 = the default period):
// the sweep-level merged feed. Samples from concurrently simulating
// configurations interleave, serialized by the experiment so o needs no
// locking of its own; the per-sample run tags keep the feed unambiguous.
// If o also implements RunObserver, it additionally receives every
// Progress event, letting one sink (JSONLObserver does this) interleave
// run-completion records with the sample stream.
//
// Telemetry never enters the experiment's cache key — observation cannot
// change a result — so a configuration served from the cache (or coalesced
// onto a concurrent duplicate) emits no new samples, only its ObserveRun
// event with Cached set. Configs that set their own Observe keep it and
// bypass o.
func WithObserver(every int64, o Observer) Option {
	return func(e *Experiment) { e.observer = o; e.obsEvery = every }
}

// WithObserverRing sets the in-memory ring capacity of the runs observed
// via WithObserver (0 = the default).
func WithObserverRing(ring int) Option {
	return func(e *Experiment) { e.obsRing = ring }
}

// NewExperiment creates an experiment engine. Without options it runs
// paper-sized workloads (scale 1.0) on runtime.NumCPU() workers.
func NewExperiment(opts ...Option) *Experiment {
	e := &Experiment{parallelism: runtime.NumCPU(), backoff: 50 * time.Millisecond}
	for _, o := range opts {
		o(e)
	}
	if e.parallelism < 1 {
		e.parallelism = runtime.NumCPU()
	}
	if e.backoff <= 0 {
		e.backoff = 50 * time.Millisecond
	}
	if e.observer != nil {
		e.telemetry = &Telemetry{
			Every:    e.obsEvery,
			Ring:     e.obsRing,
			Observer: &lockedObserver{inner: e.observer},
		}
	}
	var engOpts []sched.Option[*Result]
	if e.cacheBackend != nil {
		engOpts = append(engOpts, sched.WithCache[*Result](e.cacheBackend))
	}
	if e.queueCap > 0 {
		engOpts = append(engOpts, sched.WithQueueCap[*Result](e.queueCap))
	}
	e.eng = sched.New[*Result](e.parallelism, engOpts...)
	return e
}

// Parallelism reports the sweep worker-pool bound.
func (e *Experiment) Parallelism() int { return e.parallelism }

// normalize applies the experiment-level defaults to cfg and collapses
// fields the simulation ignores, so equivalent configurations share one
// cache entry (Policy and PTB-only knobs only matter to the PTB family).
func (e *Experiment) normalize(cfg Config) Config {
	if cfg.WorkloadScale == 0 {
		cfg.WorkloadScale = e.scale
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = e.maxCycles
	}
	if cfg.Technique == "" {
		cfg.Technique = None
	}
	if cfg.Technique != PTB && cfg.Technique != PTBSpinGate {
		cfg.Policy = ToAll
		cfg.PessimisticPTBLatency = false
		cfg.PTBClusterSize = 0
	}
	if e.invariants {
		cfg.CheckInvariants = true
	}
	if cfg.Faults == nil && e.faults != nil {
		cfg.Faults = e.faults
	}
	if cfg.Observe == nil && e.telemetry != nil {
		cfg.Observe = e.telemetry
	}
	if cfg.Checkpoint == nil && e.checkpoint != nil {
		cfg.Checkpoint = e.checkpoint
	}
	if cfg.IntraParallel == 0 && e.intraParallel > 0 {
		// The experiment-level default means "up to n tiles": each chip is
		// sharded across the largest divisor of its core count that fits,
		// so one setting works across a sweep mixing core counts. Explicit
		// per-config IntraParallel stays strict (Validate rejects
		// non-divisors).
		cores := cfg.Cores
		if cores == 0 {
			cores = 4 // the documented Cores default
		}
		cfg.IntraParallel = partition.Fit(cores, e.intraParallel)
	}
	return cfg
}

// key canonicalizes a normalized config into the engine cache key. The key
// is built from the result-determining fields explicitly — Observe and
// IntraParallel stay out by construction: telemetry can never change a
// result, and intra-run sharding is proven bit-identical to serial.
func (e *Experiment) key(cfg Config) string {
	faults := "-"
	if cfg.Faults != nil {
		faults = cfg.Faults.String()
	}
	return fmt.Sprintf("%s|%d|%s|%d|relax=%.4f|budget=%.4f|scale=%.4f|max=%d|pessim=%t|cluster=%d|check=%t|faults=%s",
		cfg.Benchmark, cfg.Cores, cfg.Technique, int(cfg.Policy),
		cfg.RelaxFrac, cfg.BudgetFrac, cfg.WorkloadScale, cfg.MaxCycles,
		cfg.PessimisticPTBLatency, cfg.PTBClusterSize, cfg.CheckInvariants, faults)
}

// execute runs one validated configuration, applying the experiment's
// per-run deadline and transient-failure retry policy. Only deadline
// misses are transient: an attempt whose run context expired while the
// caller's context stayed live is retried after an exponentially growing
// backoff, up to the configured retry budget.
func (e *Experiment) execute(ctx context.Context, cfg Config) (*Result, error) {
	return e.executeWith(ctx, cfg, e.runTimeout)
}

// executeWith is execute with an explicit per-run deadline (<= 0
// disables it) — the hook for per-request timeout overrides.
func (e *Experiment) executeWith(ctx context.Context, cfg Config, timeout time.Duration) (*Result, error) {
	backoff := e.backoff
	for attempt := 0; ; attempt++ {
		runCtx, cancel := ctx, context.CancelFunc(func() {})
		if timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, timeout)
		}
		res, err := RunContext(runCtx, cfg)
		timedOut := errors.Is(runCtx.Err(), context.DeadlineExceeded)
		cancel()
		if err == nil {
			return res, nil
		}
		if !timedOut || ctx.Err() != nil {
			return nil, err // deterministic failure or caller cancellation
		}
		err = fmt.Errorf("ptbsim: %w (%s): %v", ErrRunDeadline, timeout, err)
		if attempt >= e.retries {
			return nil, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
	}
}

// notifyLocked fans one progress event out to the WithProgress callback
// and the WithObserver run observer, if any. Callers hold e.mu, which is
// what serializes both (neither may call back into e).
func (e *Experiment) notifyLocked(p Progress) {
	if e.progress != nil {
		e.progress(p)
	}
	if ro, ok := e.observer.(RunObserver); ok {
		ro.ObserveRun(p)
	}
}

// emit delivers one progress event; the lock serializes concurrent
// callbacks from sweep workers.
func (e *Experiment) emit(p Progress) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notifyLocked(p)
}

// Run returns the result for one configuration, simulating it at most
// once per experiment no matter how many goroutines ask concurrently.
func (e *Experiment) Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = e.normalize(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fresh := false
	res, err := e.eng.Do(ctx, e.key(cfg), func(ctx context.Context) (*Result, error) {
		fresh = true
		return e.execute(ctx, cfg)
	})
	e.emit(Progress{Config: cfg, Result: res, Err: err, Cached: err == nil && !fresh, Done: 1, Total: 1})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Base returns the no-control base case matching cfg (same benchmark,
// cores, budget and scale), the denominator of the paper's normalized
// metrics.
func (e *Experiment) Base(ctx context.Context, cfg Config) (*Result, error) {
	cfg.Technique = None
	cfg.Policy = ToAll
	cfg.RelaxFrac = 0
	return e.Run(ctx, cfg)
}

// ConfigError records the failure of one configuration in a sweep.
type ConfigError struct {
	// Index is the position of the failing configuration in the input
	// slice (RunAll) or the expanded cross-product (RunSweep).
	Index int
	// Config is the failing configuration, with the experiment defaults
	// applied.
	Config Config
	// Err is the underlying failure.
	Err error
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("config %d (%s/%d/%s): %v",
		e.Index, e.Config.Benchmark, e.Config.Cores, e.Config.Technique, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/errors.As.
func (e *ConfigError) Unwrap() error { return e.Err }

// SweepError aggregates every per-configuration failure of a partial
// sweep. It unwraps to all of them, so errors.Is(err, context.Canceled)
// or errors.Is(err, ErrInvariantViolation) answer "did any config fail
// that way", and errors.As(err, &configErr) recovers the first failure's
// detail.
type SweepError struct {
	// Total is the number of configurations attempted.
	Total int
	// Failures lists each failed configuration in input order.
	Failures []*ConfigError
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("ptbsim: %d of %d sweep configs failed; first: %v",
		len(e.Failures), e.Total, e.Failures[0])
}

// Unwrap exposes every failure to errors.Is/errors.As.
func (e *SweepError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// RunAll executes every configuration on the worker pool and returns the
// results in input order. Duplicate configurations coalesce onto one
// simulation (both slots get the shared result).
//
// Sweeps are partial-result: one configuration failing — validation,
// invariant violation, deadline past the retry budget — does not stop the
// others, and every completable slot holds its result on return. Failed
// slots are nil, and the error is a *SweepError listing each failure with
// its index and configuration; it unwraps to all of them, so errors.Is
// still answers "did anything fail that way". Only the caller's context
// ends a sweep early (undispatched slots then fail with ctx.Err(), and
// the returned error wraps it).
func (e *Experiment) RunAll(ctx context.Context, cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	normed := make([]Config, len(cfgs))
	fresh := make([]bool, len(cfgs))
	var jobs []sched.Job[*Result]
	var jobIdx []int // job slot → cfgs index (invalid configs get no job)
	for i, cfg := range cfgs {
		cfg = e.normalize(cfg)
		normed[i] = cfg
		if err := cfg.Validate(); err != nil {
			errs[i] = err
			continue
		}
		i, cfg := i, cfg
		jobs = append(jobs, sched.Job[*Result]{
			Key: e.key(cfg),
			Run: func(ctx context.Context) (*Result, error) {
				fresh[i] = true
				return e.execute(ctx, cfg)
			},
		})
		jobIdx = append(jobIdx, i)
	}
	total := len(cfgs)
	e.mu.Lock()
	e.done = 0
	e.mu.Unlock()
	// Invalid configurations are reported up front, before any simulation
	// runs; they occupy their slot in the Done/Total ramp like any other.
	for i, err := range errs {
		if err == nil {
			continue
		}
		e.mu.Lock()
		e.done++
		e.notifyLocked(Progress{Config: normed[i], Err: err, Done: e.done, Total: total})
		e.mu.Unlock()
	}
	vals, jobErrs := e.eng.ForEachAll(ctx, jobs, func(j int, res *Result, err error) {
		i := jobIdx[j]
		if err != nil && ctx.Err() != nil {
			return // cancellation noise; reported by the returned error
		}
		e.mu.Lock()
		e.done++
		e.notifyLocked(Progress{Config: normed[i], Result: res, Err: err,
			Cached: err == nil && !fresh[i], Done: e.done, Total: total})
		e.mu.Unlock()
	})
	for j, i := range jobIdx {
		results[i], errs[i] = vals[j], jobErrs[j]
	}
	var failures []*ConfigError
	for i, err := range errs {
		if err != nil {
			failures = append(failures, &ConfigError{Index: i, Config: normed[i], Err: err})
		}
	}
	if len(failures) == 0 {
		return results, nil
	}
	return results, &SweepError{Total: total, Failures: failures}
}

// A Sweep declares a cross-product of configurations — the shape of the
// paper's evaluation. Zero-valued dimensions fall back to defaults, so the
// zero Sweep is the full headline grid: every Table-2 benchmark × the
// paper's core counts × the no-control base case.
type Sweep struct {
	// Benchmarks are Table-2 workload names (default: all 14).
	Benchmarks []string
	// CoreCounts are CMP sizes (default: 2, 4, 8, 16).
	CoreCounts []int
	// Techniques are the budget mechanisms (default: None).
	Techniques []Technique
	// Policies apply to the PTB-family techniques only; other techniques
	// contribute one configuration regardless (default: ToAll).
	Policies []Policy
	// RelaxFracs are trigger-threshold relaxations (default: 0).
	RelaxFracs []float64
	// BudgetFracs are global budgets as fractions of peak (default: the
	// paper's 0.5, expressed as the zero value).
	BudgetFracs []float64
}

// Configs expands the sweep into its configuration cross-product, in
// deterministic row-major order (benchmark, cores, budget, technique,
// policy, relax). Policy and relax dimensions collapse for techniques
// they cannot affect, so the list contains no redundant simulations.
func (s Sweep) Configs() []Config {
	benches := s.Benchmarks
	if len(benches) == 0 {
		for _, b := range Benchmarks() {
			benches = append(benches, b.Name)
		}
	}
	cores := s.CoreCounts
	if len(cores) == 0 {
		cores = []int{2, 4, 8, 16}
	}
	techs := s.Techniques
	if len(techs) == 0 {
		techs = []Technique{None}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []Policy{ToAll}
	}
	relaxes := s.RelaxFracs
	if len(relaxes) == 0 {
		relaxes = []float64{0}
	}
	budgets := s.BudgetFracs
	if len(budgets) == 0 {
		budgets = []float64{0}
	}
	var out []Config
	for _, b := range benches {
		for _, n := range cores {
			for _, bud := range budgets {
				for _, t := range techs {
					pols := policies
					if t != PTB && t != PTBSpinGate {
						pols = policies[:1]
					}
					rxs := relaxes
					if t == None || t == DVFS || t == DFS || t == MaxBIPS {
						// Only the throttling ladder (2level and the PTB
						// family on top of it) has a trigger to relax.
						rxs = relaxes[:1]
					}
					for _, p := range pols {
						for _, rx := range rxs {
							cfg := Config{
								Benchmark:  b,
								Cores:      n,
								Technique:  t,
								BudgetFrac: bud,
								RelaxFrac:  rx,
							}
							if t == PTB || t == PTBSpinGate {
								cfg.Policy = p
							}
							if t == None || t == DVFS || t == DFS || t == MaxBIPS {
								cfg.RelaxFrac = 0
							}
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return out
}

// RunSweep expands the sweep and executes it on the worker pool; see
// RunAll for ordering, partial-result, error and cancellation semantics.
func (e *Experiment) RunSweep(ctx context.Context, s Sweep) ([]*Result, error) {
	return e.RunAll(ctx, s.Configs())
}

// CoreCounts returns the CMP sizes the paper evaluates (2, 4, 8, 16).
func CoreCounts() []int { return sim.CoreCounts() }
