package ptbsim

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
)

// Digest returns a deterministic one-line fingerprint of the run for the
// golden regression harness (testdata/golden/): the configuration label
// followed by the timing, energy, token-flow, coherence and NoC totals, and
// a short SHA-256 fragment over the line for at-a-glance diffing.
//
// Floating-point fields are rendered with strconv.FormatFloat in hexadecimal
// ('x') format, which round-trips the exact bit pattern — two digests are
// byte-identical iff every covered quantity is bit-identical, so golden
// comparisons detect even last-ULP behavioral drift. Simulations are
// single-threaded and deterministic, which makes digests independent of
// sweep parallelism; the golden tests assert exactly that.
func (r *Result) Digest() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	label := string(r.Technique)
	if r.Policy != "" {
		label += "/" + r.Policy
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d/%s cycles=%d committed=%d", r.Benchmark, r.Cores, label, r.Cycles, r.Committed)
	fmt.Fprintf(&b, " energy=%s aopb=%s", f(r.EnergyJ), f(r.AoPBJ))
	fmt.Fprintf(&b, " tokens=%s/%s/%s rounds=%d",
		f(r.TokenDonatedPJ), f(r.TokenGrantedPJ), f(r.TokenDiscardedPJ), r.BalanceRounds)
	fmt.Fprintf(&b, " coh=%d/%d/%d/%d/%d", r.CohGetS, r.CohGetX, r.CohPut, r.CohFwd, r.CohInv)
	fmt.Fprintf(&b, " noc=%d/%d", r.NoCMessages, r.NoCFlits)
	sum := sha256.Sum256([]byte(b.String()))
	fmt.Fprintf(&b, " sha=%x", sum[:6])
	return b.String()
}
