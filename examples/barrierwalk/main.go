// Barrierwalk reproduces the worked example of Figure 7: four cores with a
// local budget of 10 tokens each arrive one by one at a barrier. As each
// core starts spinning (consuming 4 tokens), it hands its 6 spare tokens to
// the PTB load-balancer, which re-grants them to the cores still computing
// — so the last, critical thread runs with an ever larger budget and is
// never slowed down.
//
// This example drives the real balancer (internal/core) against a scripted
// power schedule so the token flow is visible step by step; see
// examples/quickstart for the public-API view of the same mechanism.
package main

import (
	"fmt"

	"ptbsim/internal/budget"
	"ptbsim/internal/core"
	"ptbsim/internal/cpu"
	"ptbsim/internal/isa"
	"ptbsim/internal/power"
)

// nullMem, nullSrc and nullSync satisfy the core's interfaces; the cores
// themselves stay idle — the walkthrough drives the balancer directly with
// the Figure-7 power schedule.
type nullMem struct{}

func (nullMem) Read(int, uint64, func())      {}
func (nullMem) Write(int, uint64, func())     {}
func (nullMem) FetchProbe(int, uint64) bool   { return true }
func (nullMem) FetchMiss(int, uint64, func()) {}

type nullSrc struct{}

func (nullSrc) Next() (isa.Inst, bool) { return isa.Inst{}, false }
func (nullSrc) Resolve(int64)          {}

type nullSync struct{}

func (nullSync) Eval(int, isa.Inst) int64 { return 0 }

// recorder captures the grants each cycle.
type recorder struct{ extra []float64 }

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) Tick(st *budget.ChipState) {
	r.extra = append([]float64(nil), st.ExtraPJ...)
}

func main() {
	const n = 4
	// Figure 7 uses a 10-token local budget; our token is 2 pJ, so the
	// local budget is 20 pJ and the busy/spinning levels below mirror the
	// figure's 13-vs-4-token split.
	const tokenPJ = power.TokenUnitPJ
	localTokens := 10.0
	busyTokens := 13.0 // a computing core wants more than its share
	spinTokens := 4.0  // a spinning core needs far less

	meter := power.NewMeter(n)
	tm := power.NewTokenModel()
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.New(i, cpu.DefaultConfig(), meter, tm, nullMem{}, nullSync{}, nullSrc{})
	}
	st := budget.NewChipState(cores, meter, nil, n*localTokens*tokenPJ)
	rec := &recorder{}
	bal := core.NewBalancer(n, core.PolicyToAll, rec)

	// arrival[i] is the walkthrough step at which core i reaches the
	// barrier and starts spinning (core 3 is the critical thread).
	arrival := [n]int{2, 0, 1, 99}

	fmt.Println("Figure 7 walkthrough — PTB at a barrier (ToAll policy)")
	fmt.Printf("local budget = %.0f tokens/core; busy = %.0f, spinning = %.0f\n\n",
		localTokens, busyTokens, spinTokens)
	fmt.Printf("%-5s %-28s %-22s %s\n", "step", "state (C1..C4)", "est tokens", "granted tokens")

	lat := core.LatencyFor(n).Total()
	for step := 0; step < 6; step++ {
		// Hold each phase for the transfer latency so grants land within
		// the phase they were donated in.
		var stateStr string
		for sub := int64(0); sub <= lat; sub++ {
			cycle := int64(step)*(lat+1) + sub + 1
			st.Cycle = cycle
			st.ChipEstPJ = 0
			var states []string
			for i := 0; i < n; i++ {
				tok := busyTokens
				if step >= arrival[i] {
					tok = spinTokens
				}
				st.EstPJ[i] = tok * tokenPJ
				st.ChipEstPJ += st.EstPJ[i]
				if step >= arrival[i] {
					states = append(states, "spin")
				} else {
					states = append(states, "busy")
				}
			}
			// Figure 7 assumes the CMP sits at its budget limit throughout
			// (donation only happens while the chip exceeds the global
			// budget); emulate that standing pressure so the token flow of
			// the figure is visible even as spinners lower the real sum.
			if st.ChipEstPJ <= st.GlobalBudgetPJ {
				st.ChipEstPJ = st.GlobalBudgetPJ + 1
			}
			for i := range st.ExtraPJ {
				st.ExtraPJ[i] = 0
			}
			stateStr = fmt.Sprint(states)
			bal.Tick(st)
		}
		var est, grants []string
		for i := 0; i < n; i++ {
			est = append(est, fmt.Sprintf("%.0f", st.EstPJ[i]/tokenPJ))
			grants = append(grants, fmt.Sprintf("+%.1f", rec.extra[i]/tokenPJ))
		}
		fmt.Printf("%-5d %-28s %-22s %s\n", step, stateStr, fmt.Sprint(est), fmt.Sprint(grants))
	}

	donated, granted, discarded, rounds := bal.Stats()
	fmt.Printf("\nbalancer: %.0f tokens donated, %.0f granted, %.0f discarded over %d rounds\n",
		donated/tokenPJ, granted/tokenPJ, discarded/tokenPJ, rounds)
	fmt.Println("(grants are capped by the 4-bit token wires — one core can receive")
	fmt.Println(" at most its own local budget per cycle, hence the discarded excess)")
	fmt.Println("\nAs cores reach the barrier their spare tokens flow to the cores")
	fmt.Println("still computing; the last (critical) thread ends up with the whole")
	fmt.Println("chip's spare budget — it is never throttled, so the barrier opens")
	fmt.Println("as early as the power budget allows. PTB never identified a")
	fmt.Println("barrier: it only balanced power.")
}
