// Quickstart: run one parallel benchmark on a simulated CMP under a 50%
// power budget with Power Token Balancing, and compare it against the
// uncontrolled base case and plain DVFS — the paper's headline comparison.
// The three runs execute concurrently on the experiment engine's worker
// pool.
package main

import (
	"context"
	"fmt"
	"log"

	"ptbsim"
)

func main() {
	const bench = "ocean"
	const cores = 8

	fmt.Printf("== %s on a %d-core CMP, global budget = 50%% of peak ==\n\n", bench, cores)

	exp := ptbsim.NewExperiment(ptbsim.WithScale(0.3))
	ctx := context.Background()

	rs, err := exp.RunAll(ctx, []ptbsim.Config{
		{Benchmark: bench, Cores: cores},
		{Benchmark: bench, Cores: cores, Technique: ptbsim.DVFS},
		{Benchmark: bench, Cores: cores, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic},
	})
	if err != nil {
		log.Fatal(err)
	}
	base, dvfs, ptb := rs[0], rs[1], rs[2]

	fmt.Printf("%-12s %10s %10s %10s %9s %9s\n",
		"technique", "cycles", "energy mJ", "AoPB mJ", "meanP W", "tempC")
	for _, r := range []*ptbsim.Result{base, dvfs, ptb} {
		label := string(r.Technique)
		if r.Technique == ptbsim.PTB {
			label += "/" + r.Policy
		}
		fmt.Printf("%-12s %10d %10.4f %10.4f %9.2f %9.1f\n",
			label, r.Cycles, r.EnergyJ*1e3, r.AoPBJ*1e3, r.MeanPowerW, r.MeanTempC)
	}

	fmt.Println("\nnormalized to the base case (paper metrics):")
	fmt.Printf("%-12s %12s %12s %12s\n", "technique", "energy %", "AoPB %", "slowdown %")
	for _, r := range []*ptbsim.Result{dvfs, ptb} {
		label := string(r.Technique)
		if r.Technique == ptbsim.PTB {
			label += "/" + r.Policy
		}
		fmt.Printf("%-12s %+12.1f %12.1f %+12.1f\n", label,
			ptbsim.NormalizedEnergyPct(r, base),
			ptbsim.NormalizedAoPBPct(r, base),
			ptbsim.SlowdownPct(r, base))
	}
	fmt.Println("\nLower AoPB% = more accurate budget matching: PTB tracks the")
	fmt.Println("budget far more tightly than DVFS at a small energy premium.")
}
