// Quickstart: run one parallel benchmark on a simulated CMP under a 50%
// power budget with Power Token Balancing, and compare it against the
// uncontrolled base case and plain DVFS — the paper's headline comparison.
package main

import (
	"fmt"
	"log"

	"ptbsim"
)

func main() {
	const bench = "ocean"
	const cores = 8

	fmt.Printf("== %s on a %d-core CMP, global budget = 50%% of peak ==\n\n", bench, cores)

	base := run(ptbsim.Config{Benchmark: bench, Cores: cores, WorkloadScale: 0.3})
	dvfs := run(ptbsim.Config{Benchmark: bench, Cores: cores, WorkloadScale: 0.3,
		Technique: ptbsim.DVFS})
	ptb := run(ptbsim.Config{Benchmark: bench, Cores: cores, WorkloadScale: 0.3,
		Technique: ptbsim.PTB, Policy: ptbsim.Dynamic})

	fmt.Printf("%-12s %10s %10s %10s %9s %9s\n",
		"technique", "cycles", "energy mJ", "AoPB mJ", "meanP W", "tempC")
	for _, r := range []*ptbsim.Result{base, dvfs, ptb} {
		label := string(r.Technique)
		if r.Technique == ptbsim.PTB {
			label += "/" + r.Policy
		}
		fmt.Printf("%-12s %10d %10.4f %10.4f %9.2f %9.1f\n",
			label, r.Cycles, r.EnergyJ*1e3, r.AoPBJ*1e3, r.MeanPowerW, r.MeanTempC)
	}

	fmt.Println("\nnormalized to the base case (paper metrics):")
	fmt.Printf("%-12s %12s %12s %12s\n", "technique", "energy %", "AoPB %", "slowdown %")
	for _, r := range []*ptbsim.Result{dvfs, ptb} {
		label := string(r.Technique)
		if r.Technique == ptbsim.PTB {
			label += "/" + r.Policy
		}
		fmt.Printf("%-12s %+12.1f %12.1f %+12.1f\n", label,
			ptbsim.NormalizedEnergyPct(r, base),
			ptbsim.NormalizedAoPBPct(r, base),
			ptbsim.SlowdownPct(r, base))
	}
	fmt.Println("\nLower AoPB% = more accurate budget matching: PTB tracks the")
	fmt.Println("budget far more tightly than DVFS at a small energy premium.")
}

func run(cfg ptbsim.Config) *ptbsim.Result {
	r, err := ptbsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
