// Spindetect reproduces Figure 6 and the paper's observation that PTB's
// token stream doubles as a spinlock detector: when a core enters a
// spinning state its per-cycle power drops after the initial computation
// peak and stabilizes well under the budget. The example records a core's
// power trace through a lock-contended run using the public API, renders
// it, and then applies the same low-and-stable power-pattern rule the PTB
// balancer uses (no instruction inspection, no performance counters).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ptbsim"
)

func main() {
	const traceEvery = 25
	tr, err := ptbsim.RunTraceContext(context.Background(), ptbsim.Config{
		Benchmark:     "fluidanimate", // heavy fine-grained locking
		Cores:         4,
		WorkloadScale: 0.12,
	}, traceEvery, 2)
	if err != nil {
		log.Fatal(err)
	}
	localBudget := tr.GlobalBudgetPJ / float64(tr.Cores)

	fmt.Println("Figure 6 — power signature of a core through lock contention")
	fmt.Printf("core 2 of a 4-core CMP running fluidanimate; local budget %.0f pJ/cycle\n\n", localBudget)

	// Power-pattern spin detection on the sampled trace: low (under 55% of
	// the local budget) and stable (EWMA deviation under 30% of the mean)
	// for a sustained window.
	const (
		alpha      = 0.25
		lowFrac    = 0.55
		stableFrac = 0.30
		minSamples = 6
	)
	mean, dev := tr.CoreTrace[0], 0.0
	run := 0
	spinSamples, spinEntries := 0, 0
	spinning := false
	flags := make([]bool, len(tr.CoreTrace))
	for i, v := range tr.CoreTrace {
		mean += alpha * (v - mean)
		ad := v - mean
		if ad < 0 {
			ad = -ad
		}
		dev += alpha * (ad - dev)
		if mean < lowFrac*localBudget && dev < stableFrac*mean {
			run++
		} else {
			run = 0
		}
		was := spinning
		spinning = run >= minSamples
		if spinning {
			spinSamples++
			flags[i] = true
		}
		if spinning && !was {
			spinEntries++
		}
	}

	renderTrace(tr.CoreTrace, flags, localBudget)

	fmt.Printf("\ndetected %d spinning episodes covering %.1f%% of samples\n",
		spinEntries, 100*float64(spinSamples)/float64(len(tr.CoreTrace)))
	fmt.Printf("ground truth from the simulator: %.1f%% of time in lock-acquire\n",
		tr.LockAcqFrac*100)
	fmt.Println("\nPTB exploits this for free: a spinning core's spare tokens flow to")
	fmt.Println("the lock holder, which leaves its critical section sooner.")
}

// renderTrace draws a compact ASCII strip: one column per bucket of
// samples, '#' height proportional to power, with detected-spin columns
// marked underneath.
func renderTrace(trace []float64, flags []bool, budget float64) {
	const cols = 96
	const rows = 12
	per := (len(trace) + cols - 1) / cols
	if per < 1 {
		per = 1
	}
	maxV := budget * 1.2
	for _, v := range trace {
		if v > maxV {
			maxV = v
		}
	}
	heights := make([]int, 0, cols)
	spin := make([]bool, 0, cols)
	for i := 0; i < len(trace); i += per {
		end := i + per
		if end > len(trace) {
			end = len(trace)
		}
		avg := 0.0
		sp := true
		for j := i; j < end; j++ {
			avg += trace[j]
			sp = sp && flags[j]
		}
		avg /= float64(end - i)
		h := int(avg / maxV * rows)
		if h >= rows {
			h = rows - 1
		}
		heights = append(heights, h)
		spin = append(spin, sp)
	}
	budgetRow := int(budget / maxV * rows)
	for r := rows - 1; r >= 0; r-- {
		var b strings.Builder
		for c := range heights {
			switch {
			case heights[c] >= r:
				b.WriteByte('#')
			case r == budgetRow:
				b.WriteByte('-')
			default:
				b.WriteByte(' ')
			}
		}
		mark := " "
		if r == budgetRow {
			mark = "<- local budget"
		}
		fmt.Printf("%s %s\n", b.String(), mark)
	}
	var b strings.Builder
	for _, s := range spin {
		if s {
			b.WriteByte('s')
		} else {
			b.WriteByte('.')
		}
	}
	fmt.Printf("%s <- detected spinning\n", b.String())
}
