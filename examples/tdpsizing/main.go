// Tdpsizing reproduces the Section IV.D argument: accuracy on matching a
// power budget translates directly into how many cores fit under a fixed
// TDP. Starting from a 16-core, 100W CMP (6.25W per core), a 50% budget
// ideally doubles the core count to 32 at 3.125W each — but only if the
// budget is matched exactly. Each technique's measured AoPB error inflates
// the effective per-core power and shrinks the achievable core count.
//
// The experiment engine caches by configuration, so each benchmark's base
// case is simulated once even though every technique normalizes to it.
package main

import (
	"context"
	"fmt"
	"log"

	"ptbsim"
)

func main() {
	// Measure each technique's budget-matching error on a few benchmarks.
	// (The paper quotes 65% for DVFS, 40% for plain 2level, <10% for PTB.)
	benches := []string{"ocean", "fft", "blackscholes"}
	const cores = 8

	exp := ptbsim.NewExperiment(ptbsim.WithScale(0.25))
	ctx := context.Background()

	type tech struct {
		label string
		cfg   ptbsim.Config
	}
	techs := []tech{
		{"DVFS", ptbsim.Config{Technique: ptbsim.DVFS}},
		{"2Level", ptbsim.Config{Technique: ptbsim.TwoLevel}},
		{"PTB+2Level", ptbsim.Config{Technique: ptbsim.PTB, Policy: ptbsim.Dynamic}},
	}

	fmt.Println("Section IV.D — trading budget accuracy for cores under a fixed TDP")
	fmt.Printf("(errors measured on %v, %d cores, scale 0.25)\n\n", benches, cores)

	fmt.Printf("%-12s %12s %16s %14s\n", "technique", "AoPB err %", "eff. W/core", "cores @ 100W")
	fmt.Printf("%-12s %12s %16s %14s\n", "ideal", "0.0", "3.125", "32")
	for _, tc := range techs {
		var errSum float64
		for _, b := range benches {
			base, err := exp.Base(ctx, ptbsim.Config{Benchmark: b, Cores: cores})
			if err != nil {
				log.Fatal(err)
			}
			cfg := tc.cfg
			cfg.Benchmark = b
			cfg.Cores = cores
			r, err := exp.Run(ctx, cfg)
			if err != nil {
				log.Fatal(err)
			}
			errSum += ptbsim.NormalizedAoPBPct(r, base)
		}
		err := errSum / float64(len(benches)) / 100
		// Per the paper's §IV.D arithmetic: with error e, each core's
		// average power is 3.125×(1+e) W, so 100W fits 100/(3.125(1+e)).
		perCore := 3.125 * (1 + err)
		fmt.Printf("%-12s %12.1f %16.3f %14d\n",
			tc.label, err*100, perCore, int(100/perCore))
	}
	fmt.Println("\nThe more accurately a technique matches the budget, the closer the")
	fmt.Println("CMP gets to the ideal doubling of cores at the same TDP — the")
	fmt.Println("paper's economic argument for PTB.")
}
