// Policysweep compares PTB's token-distribution policies (§III.E.1, §IV.B)
// on two synchronization archetypes: a barrier-bound application (ocean),
// where ToAll should win by speeding every straggler toward the barrier,
// and a lock-bound one (raytrace's central work queue), where ToOne should
// win by boosting the critical-section holder. The Dynamic selector picks
// per cycle based on what kind of spinning is happening and should track
// the better static policy on both.
package main

import (
	"fmt"
	"log"

	"ptbsim"
)

func main() {
	const cores = 8
	const scale = 0.25

	for _, bench := range []string{"ocean", "raytrace"} {
		fmt.Printf("== %s (%d cores) ==\n", bench, cores)
		base := run(ptbsim.Config{Benchmark: bench, Cores: cores, WorkloadScale: scale})
		fmt.Printf("%-10s %10s %10s %12s\n", "policy", "AoPB %", "energy %", "slowdown %")
		for _, pol := range []ptbsim.Policy{ptbsim.ToAll, ptbsim.ToOne, ptbsim.Dynamic} {
			r := run(ptbsim.Config{
				Benchmark: bench, Cores: cores, WorkloadScale: scale,
				Technique: ptbsim.PTB, Policy: pol,
			})
			fmt.Printf("%-10s %10.1f %+10.1f %+12.1f\n", pol,
				ptbsim.NormalizedAoPBPct(r, base),
				ptbsim.NormalizedEnergyPct(r, base),
				ptbsim.SlowdownPct(r, base))
		}
		fmt.Println()
	}
	fmt.Println("The dynamic selector (locks → ToOne, barriers → ToAll) needs no")
	fmt.Println("per-application tuning: it switches policy with the spinning type.")
}

func run(cfg ptbsim.Config) *ptbsim.Result {
	r, err := ptbsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
