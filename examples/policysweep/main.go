// Policysweep compares PTB's token-distribution policies (§III.E.1, §IV.B)
// on two synchronization archetypes: a barrier-bound application (ocean),
// where ToAll should win by speeding every straggler toward the barrier,
// and a lock-bound one (raytrace's central work queue), where ToOne should
// win by boosting the critical-section holder. The Dynamic selector picks
// per cycle based on what kind of spinning is happening and should track
// the better static policy on both. The whole grid is declared as a Sweep
// and executed in parallel on the experiment engine.
package main

import (
	"context"
	"fmt"
	"log"

	"ptbsim"
)

func main() {
	const cores = 8

	exp := ptbsim.NewExperiment(ptbsim.WithScale(0.25))
	ctx := context.Background()

	for _, bench := range []string{"ocean", "raytrace"} {
		fmt.Printf("== %s (%d cores) ==\n", bench, cores)
		base, err := exp.Base(ctx, ptbsim.Config{Benchmark: bench, Cores: cores})
		if err != nil {
			log.Fatal(err)
		}
		rs, err := exp.RunSweep(ctx, ptbsim.Sweep{
			Benchmarks: []string{bench},
			CoreCounts: []int{cores},
			Techniques: []ptbsim.Technique{ptbsim.PTB},
			Policies:   []ptbsim.Policy{ptbsim.ToAll, ptbsim.ToOne, ptbsim.Dynamic},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10s %10s %12s\n", "policy", "AoPB %", "energy %", "slowdown %")
		for _, r := range rs {
			fmt.Printf("%-10s %10.1f %+10.1f %+12.1f\n", r.Policy,
				ptbsim.NormalizedAoPBPct(r, base),
				ptbsim.NormalizedEnergyPct(r, base),
				ptbsim.SlowdownPct(r, base))
		}
		fmt.Println()
	}
	fmt.Println("The dynamic selector (locks → ToOne, barriers → ToAll) needs no")
	fmt.Println("per-application tuning: it switches policy with the spinning type.")
}
