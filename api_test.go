package ptbsim_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"ptbsim"
)

func TestConfigValidate(t *testing.T) {
	valid := ptbsim.Config{Benchmark: "fft", Cores: 2}
	cases := []struct {
		name string
		mut  func(*ptbsim.Config)
		want error // nil = config must validate
	}{
		{"minimal valid", func(c *ptbsim.Config) {}, nil},
		{"zero cores selects default", func(c *ptbsim.Config) { c.Cores = 0 }, nil},
		{"all techniques valid", func(c *ptbsim.Config) { c.Technique = ptbsim.MaxBIPS }, nil},
		{"full knobs valid", func(c *ptbsim.Config) {
			c.Technique = ptbsim.PTB
			c.Policy = ptbsim.Dynamic
			c.RelaxFrac = 0.2
			c.BudgetFrac = 0.5
			c.WorkloadScale = 0.25
			c.MaxCycles = 1000
			c.PTBClusterSize = 4
		}, nil},
		{"unknown benchmark", func(c *ptbsim.Config) { c.Benchmark = "linpack" }, ptbsim.ErrUnknownBenchmark},
		{"empty benchmark", func(c *ptbsim.Config) { c.Benchmark = "" }, ptbsim.ErrUnknownBenchmark},
		{"negative cores", func(c *ptbsim.Config) { c.Cores = -1 }, ptbsim.ErrBadCores},
		{"cores above bound", func(c *ptbsim.Config) { c.Cores = ptbsim.MaxCores + 1 }, ptbsim.ErrBadCores},
		{"unknown technique", func(c *ptbsim.Config) { c.Technique = "turbo" }, ptbsim.ErrUnknownTechnique},
		{"unknown policy", func(c *ptbsim.Config) { c.Policy = ptbsim.Policy(99) }, ptbsim.ErrUnknownPolicy},
		{"negative scale", func(c *ptbsim.Config) { c.WorkloadScale = -0.5 }, ptbsim.ErrBadScale},
		{"budget above one", func(c *ptbsim.Config) { c.BudgetFrac = 1.5 }, ptbsim.ErrBadBudget},
		{"negative relax", func(c *ptbsim.Config) { c.RelaxFrac = -0.1 }, ptbsim.ErrBadRelax},
		{"negative max cycles", func(c *ptbsim.Config) { c.MaxCycles = -1 }, ptbsim.ErrBadMaxCycles},
		{"negative cluster", func(c *ptbsim.Config) { c.PTBClusterSize = -2 }, ptbsim.ErrBadCluster},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}

func TestRunContextRejectsInvalidConfig(t *testing.T) {
	_, err := ptbsim.RunContext(context.Background(), ptbsim.Config{Benchmark: "nope"})
	if !errors.Is(err, ptbsim.ErrUnknownBenchmark) {
		t.Fatalf("err = %v, want ErrUnknownBenchmark", err)
	}
}

func TestParseTechnique(t *testing.T) {
	cases := []struct {
		in      string
		want    ptbsim.Technique
		wantErr bool
	}{
		{"none", ptbsim.None, false},
		{"dvfs", ptbsim.DVFS, false},
		{"dfs", ptbsim.DFS, false},
		{"2level", ptbsim.TwoLevel, false},
		{"twolevel", ptbsim.TwoLevel, false}, // documented alias
		{"ptb", ptbsim.PTB, false},
		{"ptbgate", ptbsim.PTBSpinGate, false},
		{"maxbips", ptbsim.MaxBIPS, false},
		{"PTB", ptbsim.PTB, false},   // case-insensitive
		{" ptb ", ptbsim.PTB, false}, // trimmed
		{"MaxBIPS", ptbsim.MaxBIPS, false},
		{"", "", true},
		{"turbo", "", true},
	}
	for _, tc := range cases {
		got, err := ptbsim.ParseTechnique(tc.in)
		if tc.wantErr {
			if !errors.Is(err, ptbsim.ErrUnknownTechnique) {
				t.Errorf("ParseTechnique(%q) err = %v, want ErrUnknownTechnique", tc.in, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseTechnique(%q) = %q, %v, want %q", tc.in, got, err, tc.want)
		}
	}
	// The help list must cover every technique, ptbgate and maxbips
	// included (the old -tech usage string omitted them).
	names := ptbsim.TechniqueNames()
	want := []string{"none", "dvfs", "dfs", "2level", "ptb", "ptbgate", "maxbips"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("TechniqueNames() = %v, want %v", names, want)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    ptbsim.Policy
		wantErr bool
	}{
		{"toall", ptbsim.ToAll, false},
		{"toone", ptbsim.ToOne, false},
		{"dynamic", ptbsim.Dynamic, false},
		{"ToAll", ptbsim.ToAll, false},
		{" DYNAMIC ", ptbsim.Dynamic, false},
		{"", 0, true},
		{"fair", 0, true},
	}
	for _, tc := range cases {
		got, err := ptbsim.ParsePolicy(tc.in)
		if tc.wantErr {
			if !errors.Is(err, ptbsim.ErrUnknownPolicy) {
				t.Errorf("ParsePolicy(%q) err = %v, want ErrUnknownPolicy", tc.in, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v, want %v", tc.in, got, err, tc.want)
		}
	}
}

func TestSweepConfigs(t *testing.T) {
	s := ptbsim.Sweep{
		Benchmarks: []string{"fft"},
		CoreCounts: []int{2},
		Techniques: []ptbsim.Technique{ptbsim.None, ptbsim.DVFS, ptbsim.PTB},
		Policies:   []ptbsim.Policy{ptbsim.ToAll, ptbsim.ToOne, ptbsim.Dynamic},
		RelaxFracs: []float64{0, 0.2},
	}
	cfgs := s.Configs()
	// The policy dimension collapses for None and DVFS (1 config each),
	// and the relax dimension collapses for both too; PTB expands to
	// 3 policies × 2 relax values.
	want := 1 + 1 + 3*2
	if len(cfgs) != want {
		t.Fatalf("len(Configs) = %d, want %d", len(cfgs), want)
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Benchmark != "fft" || c.Cores != 2 {
			t.Fatalf("unexpected benchmark/cores in %+v", c)
		}
		key := string(c.Technique) + "/" + c.Policy.String()
		if c.RelaxFrac != 0 {
			key += "/relaxed"
		}
		if seen[key] {
			t.Fatalf("duplicate config %s", key)
		}
		seen[key] = true
		if err := c.Validate(); err != nil {
			t.Fatalf("generated config invalid: %v", err)
		}
	}

	// The zero sweep is the full base-case grid: 14 benchmarks × 4 sizes.
	if n := len((ptbsim.Sweep{}).Configs()); n != len(ptbsim.Benchmarks())*len(ptbsim.CoreCounts()) {
		t.Fatalf("zero Sweep has %d configs", n)
	}
}

// testSweep is a small but real grid used by the engine tests below.
func testSweep() ptbsim.Sweep {
	return ptbsim.Sweep{
		Benchmarks: []string{"fft", "radix"},
		CoreCounts: []int{2},
		Techniques: []ptbsim.Technique{ptbsim.None, ptbsim.DVFS, ptbsim.PTB},
		Policies:   []ptbsim.Policy{ptbsim.ToAll, ptbsim.Dynamic},
	}
}

// TestParallelMatchesSerial is the engine's determinism contract: the same
// sweep run serially and on a parallel pool must produce identical results.
// Run under -race this also exercises the engine for data races.
func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	sweep := testSweep()

	serialExp := ptbsim.NewExperiment(ptbsim.WithScale(0.05), ptbsim.WithParallelism(1))
	serial, err := serialExp.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	parExp := ptbsim.NewExperiment(ptbsim.WithScale(0.05), ptbsim.WithParallelism(4))
	par, err := parExp.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("result %d differs between serial and parallel runs:\nserial: %+v\npar:    %+v",
				i, serial[i], par[i])
		}
	}
}

// TestConcurrentRunsCoalesce checks the single-flight contract at the
// public layer: many goroutines requesting one configuration must share a
// single simulation (and, under -race, do so without races).
func TestConcurrentRunsCoalesce(t *testing.T) {
	cfg := ptbsim.Config{Benchmark: "fft", Cores: 2, Technique: ptbsim.PTB}

	var fresh int
	var mu sync.Mutex
	done := make(chan struct{})
	expProg := ptbsim.NewExperiment(ptbsim.WithScale(0.05), ptbsim.WithParallelism(4),
		ptbsim.WithProgress(func(p ptbsim.Progress) {
			mu.Lock()
			if !p.Cached {
				fresh++
			}
			mu.Unlock()
		}))
	const n = 8
	results := make([]*ptbsim.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := expProg.Run(context.Background(), cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("concurrent runs did not finish")
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("result %d is a distinct object — run was not coalesced", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if fresh != 1 {
		t.Fatalf("%d fresh simulations for one config, want 1", fresh)
	}
}

// TestSweepCancellation: cancelling mid-sweep must return promptly with an
// error wrapping context.Canceled.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	exp := ptbsim.NewExperiment(ptbsim.WithScale(1.0), ptbsim.WithParallelism(2),
		ptbsim.WithProgress(func(ptbsim.Progress) { cancel() }))

	// Full-scale runs take long enough that cancellation after the first
	// completed config must cut the rest of the sweep short.
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := exp.RunSweep(ctx, ptbsim.Sweep{
			Benchmarks: []string{"ocean", "raytrace", "barnes", "cholesky"},
			CoreCounts: []int{8, 16},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("cancelled sweep did not return promptly")
	}
	t.Logf("sweep returned %s after cancellation", time.Since(start).Round(time.Millisecond))
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp := ptbsim.NewExperiment(ptbsim.WithScale(0.05))
	if _, err := exp.Run(ctx, ptbsim.Config{Benchmark: "fft", Cores: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestProgressStreaming checks that a sweep reports one serialized event
// per configuration with a consistent Done/Total ramp.
func TestProgressStreaming(t *testing.T) {
	var mu sync.Mutex
	var events []ptbsim.Progress
	exp := ptbsim.NewExperiment(ptbsim.WithScale(0.05), ptbsim.WithParallelism(4),
		ptbsim.WithProgress(func(p ptbsim.Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		}))
	sweep := testSweep()
	total := len(sweep.Configs())
	if _, err := exp.RunSweep(context.Background(), sweep); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != total {
		t.Fatalf("%d progress events, want %d", len(events), total)
	}
	for i, p := range events {
		if p.Err != nil {
			t.Fatalf("event %d carries error %v", i, p.Err)
		}
		if p.Result == nil {
			t.Fatalf("event %d has nil result", i)
		}
		if p.Total != total || p.Done != i+1 {
			t.Fatalf("event %d has Done/Total %d/%d, want %d/%d", i, p.Done, p.Total, i+1, total)
		}
	}
}

func TestNormalizationHelpers(t *testing.T) {
	base := &ptbsim.Result{Cycles: 1000, EnergyJ: 2.0, AoPBJ: 0.5}
	r := &ptbsim.Result{Cycles: 1100, EnergyJ: 1.8, AoPBJ: 0.1}
	if got := ptbsim.SlowdownPct(r, base); got < 9.99 || got > 10.01 {
		t.Errorf("SlowdownPct = %v, want 10", got)
	}
	if got := ptbsim.NormalizedEnergyPct(r, base); got < -10.01 || got > -9.99 {
		t.Errorf("NormalizedEnergyPct = %v, want -10", got)
	}
	if got := ptbsim.NormalizedAoPBPct(r, base); got < 19.99 || got > 20.01 {
		t.Errorf("NormalizedAoPBPct = %v, want 20", got)
	}
	// Zero-valued bases must not divide by zero.
	zero := &ptbsim.Result{}
	if got := ptbsim.SlowdownPct(r, zero); got != 0 {
		t.Errorf("SlowdownPct(zero base) = %v", got)
	}
	if got := ptbsim.NormalizedEnergyPct(r, zero); got != 0 {
		t.Errorf("NormalizedEnergyPct(zero base) = %v", got)
	}
	if got := ptbsim.NormalizedAoPBPct(r, zero); got != 0 {
		t.Errorf("NormalizedAoPBPct(zero base) = %v", got)
	}
}

// TestDeprecatedShims keeps the pre-context entry points compiling and
// working for existing callers.
func TestDeprecatedShims(t *testing.T) {
	r, err := ptbsim.Run(ptbsim.Config{Benchmark: "fft", Cores: 2, WorkloadScale: 0.05})
	if err != nil || r.Cycles == 0 {
		t.Fatalf("Run = %+v, %v", r, err)
	}
	tr, err := ptbsim.RunTrace(ptbsim.Config{Benchmark: "fft", Cores: 2, WorkloadScale: 0.05}, 100, -1)
	if err != nil || len(tr.ChipTrace) == 0 {
		t.Fatalf("RunTrace = %+v, %v", tr, err)
	}
}
