module ptbsim

go 1.22
