package ptbsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"ptbsim"
)

// TestResultJSONRoundTrip marshals a real run's Result and a hand-built one
// exercising the fault/degradation fields, and demands that decoding
// reproduces every field exactly — float64 survives encoding/json bit-for-
// bit, so reflect.DeepEqual is the right bar. The wire schema (snake_case
// keys) is pinned separately below.
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := ptbsim.RunContext(context.Background(), ptbsim.Config{
		Benchmark:     "fft",
		Cores:         4,
		Technique:     ptbsim.PTB,
		Policy:        ptbsim.Dynamic,
		WorkloadScale: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	synthetic := &ptbsim.Result{
		Benchmark: "ocean", Cores: 8, Technique: ptbsim.PTB, Policy: "ToOne",
		Cycles: 123, Committed: 45, EnergyJ: 1.25e-3, AoPBJ: 1e-6, BudgetPJ: 1935.1,
		MeanPowerW: 2.5, StdPowerW: 0.25, BusyFrac: 0.75, BarrierFrac: 0.25,
		HitMaxCycles: true, ComponentJ: map[string]float64{"core": 1e-3, "noc": 2.5e-4},
		TokenDonatedPJ: 10, TokenGrantedPJ: 9, TokenDiscardedPJ: 1, BalanceRounds: 7,
		CohGetS: 1, CohGetX: 2, CohPut: 3, CohFwd: 4, CohInv: 5,
		NoCMessages: 100, NoCFlits: 700,
		Degraded: true, FaultsInjected: 11, TokenLostPJ: 3.5, TokenDupPJ: 0.5,
		TokenRetries: 6, TokenReportsLost: 2, StaleFallbackCycles: 40,
		NoCStallCycles: 8, NoCRetransmits: 9, DVFSGlitches: 1,
	}
	for name, r := range map[string]*ptbsim.Result{"simulated": res, "synthetic": synthetic} {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back ptbsim.Result
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(*r, back) {
			t.Errorf("%s: round trip changed the result:\n in  %+v\n out %+v", name, *r, back)
		}
	}
}

// TestResultJSONSchema pins the stable snake_case wire keys external
// tooling depends on, and that zero-valued optional fields stay off the
// wire.
func TestResultJSONSchema(t *testing.T) {
	buf, err := json.Marshal(&ptbsim.Result{Benchmark: "fft", Cores: 2, Technique: ptbsim.None,
		EnergyJ: 0.5, MeanPowerW: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"benchmark", "cores", "technique", "cycles", "committed",
		"energy_j", "aopb_j", "budget_pj", "mean_power_w", "noc_msgs", "noc_flits", "digest"} {
		if _, ok := m[key]; !ok {
			t.Errorf("wire form lacks key %q: %s", key, buf)
		}
	}
	for _, key := range []string{"policy", "hit_max_cycles", "component_j", "faults_injected", "degraded"} {
		if _, ok := m[key]; ok {
			t.Errorf("zero-valued optional key %q on the wire: %s", key, buf)
		}
	}
}

// TestResultJSONDigest pins the self-checking wire digest: the marshaled
// form embeds Result.Digest(), decoding verifies it (bit-exact float64
// round-tripping makes recomputation safe), a tampered stream fails with
// ErrDigestMismatch, and pre-digest streams still decode.
func TestResultJSONDigest(t *testing.T) {
	res, err := ptbsim.RunContext(context.Background(), ptbsim.Config{
		Benchmark: "radix", Cores: 2, Technique: ptbsim.None, WorkloadScale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if m["digest"] != res.Digest() {
		t.Fatalf("wire digest %v != Result.Digest() %q", m["digest"], res.Digest())
	}

	var back ptbsim.Result
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("verified decode failed: %v", err)
	}

	// Tamper with a digest-covered field: decode must fail loudly, never
	// hand back a silently-wrong result.
	m["cycles"] = float64(res.Cycles + 1)
	tampered, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	err = json.Unmarshal(tampered, &back)
	if !errors.Is(err, ptbsim.ErrDigestMismatch) {
		t.Fatalf("tampered decode error = %v, want ErrDigestMismatch", err)
	}

	// Pre-digest streams (no digest key) skip verification.
	delete(m, "digest")
	m["cycles"] = float64(res.Cycles)
	legacy, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(legacy, &back); err != nil {
		t.Fatalf("legacy decode failed: %v", err)
	}
}

// TestConfigJSONRoundTrip checks the Config wire form: parsers accept what
// Marshal emits, the fault spec travels as its canonical flag string, and
// the in-process-only Observe field never reaches the wire.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfgs := []ptbsim.Config{
		{Benchmark: "fft", Cores: 4, Technique: ptbsim.PTB, Policy: ptbsim.Dynamic,
			WorkloadScale: 0.25},
		{Benchmark: "ocean", Cores: 16, Technique: ptbsim.TwoLevel, RelaxFrac: 0.2,
			BudgetFrac: 0.5, MaxCycles: 1 << 20, PessimisticPTBLatency: true,
			PTBClusterSize: 4, CheckInvariants: true},
		{Benchmark: "raytrace", Cores: 2, Technique: ptbsim.PTB, Policy: ptbsim.ToOne,
			Faults: &ptbsim.FaultSpec{Seed: 42, TokenDrop: 0.25}},
		{},
	}
	for i, cfg := range cfgs {
		withObs := cfg
		withObs.Observe = &ptbsim.Telemetry{Every: 512, Observer: &ptbsim.MemoryObserver{}}
		buf, err := json.Marshal(withObs)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		var back ptbsim.Config
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		want := cfg
		want.Observe = nil // observers are in-process values with no wire form
		if !reflect.DeepEqual(want, back) {
			t.Errorf("config %d: round trip changed it:\n in  %+v\n out %+v\n wire %s",
				i, want, back, buf)
		}
	}
}

// TestConfigJSONRejectsBadNames checks that decoding goes through the same
// validated parsers as the CLI flags, so a bad technique or policy name on
// the wire surfaces the standard sentinel.
func TestConfigJSONRejectsBadNames(t *testing.T) {
	cases := map[string]error{
		`{"technique":"warp"}`:        ptbsim.ErrBadTechnique,
		`{"policy":"nosuch"}`:         ptbsim.ErrBadPolicy,
		`{"faults":"drop=2"}`:         ptbsim.ErrBadFaultSpec,
		`{"faults":"drop=0.1,bogus"}`: ptbsim.ErrBadFaultSpec,
	}
	for in, sentinel := range cases {
		var cfg ptbsim.Config
		err := json.Unmarshal([]byte(in), &cfg)
		if err == nil {
			t.Errorf("decoding %s succeeded, want error wrapping %v", in, sentinel)
			continue
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("decoding %s: error %v does not wrap %v", in, err, sentinel)
		}
	}
}
