package ptbsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ptbsim/internal/ckpt"
	"ptbsim/internal/sim"
)

// Checkpoint configures periodic crash-recovery snapshots for a run
// (DESIGN.md §14). Every Every cycles the simulator writes an atomic,
// checksummed, versioned snapshot into Dir; if the process dies, the
// next run of the same configuration resumes from the latest snapshot
// and produces a byte-identical Result — restore-then-run-to-end equals
// an uninterrupted run, digest for digest. Snapshots are passive: a
// checkpointed run's results are bit-identical to a plain run's, and a
// corrupt, version-skewed or mismatched snapshot falls back to
// recomputing from scratch (degraded, never wrong).
//
// Like Observe and IntraParallel, Checkpoint is excluded from experiment
// cache keys and from the stable Config wire schema — it changes where
// work is saved, never what is computed.
type Checkpoint struct {
	// Every is the snapshot period in cycles. <= 0 disables.
	Every int64
	// Dir is the snapshot directory (created on first write).
	Dir string
	// StopAfter, when > 0, deliberately aborts the run with ErrRunStopped
	// right after the Nth snapshot — a deterministic "crash" for resume
	// tests and CI drills. Resumed runs ignore it.
	StopAfter int
}

// Typed snapshot errors, re-exported from the checkpoint layer so
// callers can match them without importing internals.
var (
	// ErrSnapshotCorrupt marks a snapshot failing structural validation
	// (truncated, bit-flipped, bad checksum). Recoverable: rerun fresh.
	ErrSnapshotCorrupt = ckpt.ErrCorrupt
	// ErrSnapshotVersion marks a snapshot from another schema generation.
	ErrSnapshotVersion = ckpt.ErrVersion
	// ErrSnapshotMismatch marks a structurally valid snapshot that does
	// not match the run (different config, or writer/reader code skew).
	ErrSnapshotMismatch = ckpt.ErrStateMismatch
	// ErrRunStopped reports the deliberate Checkpoint.StopAfter abort.
	ErrRunStopped = ckpt.ErrStopped
	// ErrBadCheckpointSpec rejects malformed -checkpoint flag values.
	ErrBadCheckpointSpec = errors.New("ptbsim: bad checkpoint spec")
)

// plan builds the internal snapshot plan for cfg. The run key — and
// hence the snapshot file name — is the stable config wire JSON, which
// contains exactly the result-determining fields (Observe, IntraParallel
// and Checkpoint itself are excluded by construction), so equivalent
// runs share snapshots and different runs never collide.
func (ck *Checkpoint) plan(cfg Config) (*ckpt.Plan, error) {
	if ck == nil || ck.Every <= 0 {
		return nil, nil
	}
	if ck.Dir == "" {
		return nil, fmt.Errorf("%w: checkpointing needs a directory", ErrBadCheckpointSpec)
	}
	key, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("ptbsim: checkpoint key: %w", err)
	}
	return &ckpt.Plan{
		Every:     ck.Every,
		Dir:       ck.Dir,
		Key:       string(key),
		Config:    key,
		StopAfter: ck.StopAfter,
	}, nil
}

// runWithCheckpoint is RunContext's checkpoint-aware body: resume from
// the latest usable snapshot when one exists, otherwise run fresh with
// periodic snapshots armed; delete the snapshot once the run completes
// (it has served its purpose — the result is the durable artifact).
func runWithCheckpoint(ctx context.Context, icfg sim.Config, plan *ckpt.Plan) (*Result, error) {
	icfg.Checkpoint = plan
	res, err := sim.RunOrResumeContext(ctx, icfg)
	if err != nil {
		return nil, err
	}
	return fromMetrics(res), nil
}

// ResumeContext restores the run saved in the snapshot file at path and
// completes it, continuing periodic snapshots every every cycles (0
// disables further snapshots). Snapshots are self-describing — the full
// configuration rides inside — so this needs nothing but the file.
//
// Unlike the automatic resume inside RunContext, this explicit entry
// point fails loudly: a corrupt file returns ErrSnapshotCorrupt, a
// version-skewed one ErrSnapshotVersion, and a snapshot whose replay
// diverges ErrSnapshotMismatch, instead of silently recomputing.
func ResumeContext(ctx context.Context, path string, every int64) (*Result, error) {
	snap, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(snap.Config, &cfg); err != nil {
		return nil, fmt.Errorf("%w: embedded config: %v", ErrSnapshotCorrupt, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: embedded config: %v", ErrSnapshotCorrupt, err)
	}
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	if every > 0 {
		ck := &Checkpoint{Every: every, Dir: dirOf(path)}
		plan, err := ck.plan(cfg)
		if err != nil {
			return nil, err
		}
		icfg.Checkpoint = plan
	}
	res, err := sim.ResumeContext(ctx, icfg, snap)
	if err != nil {
		return nil, err
	}
	if every > 0 {
		_ = os.Remove(icfg.Checkpoint.Path())
	}
	return fromMetrics(res), nil
}

func dirOf(path string) string {
	if i := strings.LastIndexByte(path, os.PathSeparator); i > 0 {
		return path[:i]
	}
	return "."
}

// CheckpointSpec is the parsed form of the CLI tools' -checkpoint flag.
type CheckpointSpec struct {
	// Every is the snapshot period in cycles (0 = DefaultCheckpointEvery).
	Every int64
	// Dir is the snapshot directory (required).
	Dir string
	// Stop aborts after the Nth snapshot (crash drill; 0 = never).
	Stop int
}

// DefaultCheckpointEvery is the snapshot cadence when the -checkpoint
// flag names a directory but no period: frequent enough that little work
// is lost, rare enough that snapshot hashing is invisible in profiles.
const DefaultCheckpointEvery int64 = 1_000_000

// ParseCheckpointSpec builds a CheckpointSpec from a comma-separated
// key=value list, the syntax the CLI tools accept for their -checkpoint
// flag:
//
//	"dir=ckpt"
//	"every=500000,dir=/var/lib/ptbsim/ckpt"
//	"every=2000,dir=ckpt,stop=3"   (crash drill)
//
// Keys: dir (required), every, stop. Unknown or repeated keys and
// malformed values return an error wrapping ErrBadCheckpointSpec.
func ParseCheckpointSpec(in string) (CheckpointSpec, error) {
	var s CheckpointSpec
	if strings.TrimSpace(in) == "" {
		return CheckpointSpec{}, fmt.Errorf("%w: empty spec (need at least dir=...)", ErrBadCheckpointSpec)
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(in, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return CheckpointSpec{}, fmt.Errorf("%w: empty clause in %q", ErrBadCheckpointSpec, in)
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return CheckpointSpec{}, fmt.Errorf("%w: clause %q is not key=value", ErrBadCheckpointSpec, part)
		}
		k, v = strings.ToLower(strings.TrimSpace(k)), strings.TrimSpace(v)
		if seen[k] {
			return CheckpointSpec{}, fmt.Errorf("%w: repeated key %q", ErrBadCheckpointSpec, k)
		}
		seen[k] = true
		switch k {
		case "every":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return CheckpointSpec{}, fmt.Errorf("%w: every=%q (want a positive cycle count)", ErrBadCheckpointSpec, v)
			}
			s.Every = n
		case "dir":
			s.Dir = v
		case "stop":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return CheckpointSpec{}, fmt.Errorf("%w: stop=%q (want a non-negative snapshot count)", ErrBadCheckpointSpec, v)
			}
			s.Stop = n
		default:
			return CheckpointSpec{}, fmt.Errorf("%w: unknown key %q (valid: every, dir, stop)", ErrBadCheckpointSpec, k)
		}
	}
	if s.Dir == "" {
		return CheckpointSpec{}, fmt.Errorf("%w: missing dir=", ErrBadCheckpointSpec)
	}
	return s, nil
}

// String renders the spec in ParseCheckpointSpec's syntax.
func (s CheckpointSpec) String() string {
	var parts []string
	if s.Every != 0 {
		parts = append(parts, "every="+strconv.FormatInt(s.Every, 10))
	}
	if s.Dir != "" {
		parts = append(parts, "dir="+s.Dir)
	}
	if s.Stop != 0 {
		parts = append(parts, "stop="+strconv.Itoa(s.Stop))
	}
	return strings.Join(parts, ",")
}

// Checkpoint converts the spec to the Config field, applying the default
// cadence.
func (s CheckpointSpec) Checkpoint() *Checkpoint {
	every := s.Every
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	return &Checkpoint{Every: every, Dir: s.Dir, StopAfter: s.Stop}
}

// CheckpointFlag is a flag.Value for -checkpoint. Spec stays nil until
// the flag is set.
type CheckpointFlag struct {
	Spec *CheckpointSpec
}

// String implements flag.Value.
func (f *CheckpointFlag) String() string {
	if f == nil || f.Spec == nil {
		return ""
	}
	return f.Spec.String()
}

// Set implements flag.Value via ParseCheckpointSpec.
func (f *CheckpointFlag) Set(in string) error {
	s, err := ParseCheckpointSpec(in)
	if err != nil {
		return err
	}
	f.Spec = &s
	return nil
}
