# Development entry points. Everything here is plain go tooling; the
# Makefile only names the common invocations.

GO ?= go

.PHONY: all build test test-short race race-intra check chaos golden bench bench-baseline bench-compare bench-smoke serve-smoke ckpt-conformance crash-e2e profile fuzz fmt vet

all: build test

build:
	$(GO) build ./...

# Full suite, including the golden-digest matrix (~15 s of simulation).
test:
	$(GO) test ./...

# Unit tests only; skips the golden matrix and other long runs.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -shuffle=on -count=1 -short ./...

# The intra-run tile-parallelism conformance matrix under the race
# detector: technique × policy × fault cells with every chip sharded
# across goroutine tiles (the suite drives par-intra 2/4/8 internally),
# plus the partition package's property tests. CI's partition-conformance
# job runs exactly this (DESIGN.md §13).
race-intra:
	$(GO) test -race -count=1 -short -v \
		-run 'TestIntraParallel|TestStepZeroAllocSteadyState' ./internal/sim/
	$(GO) test -race -count=1 -v ./internal/partition/

# Full technique×benchmark matrix with the runtime invariant layer on,
# failing on any conservation/consistency violation or digest drift.
check:
	$(GO) test -count=1 -run 'TestGoldenMatrixDigests|TestInvariants' -v .  ./internal/sim/

# Fault-rate sweep with the invariant layer on: the balancer's
# energy-accounting error must grow monotonically with the token-drop
# rate at every core count (PTB graceful degradation; DESIGN.md §9).
chaos:
	$(GO) run ./cmd/ptbchaos -scale 0.25 -check -assert-monotone

# Regenerate the committed golden digests and the paper-table sweep
# (testdata/golden/matrix_scale025.txt, results_sweep.txt). Review the
# diff like source: it should only change with intentional model edits.
golden:
	$(GO) generate .

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkSimStep' -benchtime 3s ./internal/sim/

# Re-record BENCH_baseline.json on this machine (see cmd/ptbbench).
bench-baseline:
	( $(GO) test -run xxx -bench . -benchtime 1x . ; \
	  $(GO) test -run xxx -bench 'BenchmarkSimStep' -benchtime 3s ./internal/sim/ ) \
	| $(GO) run ./cmd/ptbbench -save BENCH_baseline.json

# Compare a fresh benchmark run against the committed baseline.
bench-compare:
	( $(GO) test -run xxx -bench . -benchtime 1x . ; \
	  $(GO) test -run xxx -bench 'BenchmarkSimStep' -benchtime 3s ./internal/sim/ ) \
	| $(GO) run ./cmd/ptbbench -compare BENCH_baseline.json

# The CI regression gate, runnable locally: the hot-loop benchmarks plus
# one figure benchmark against the committed baseline, failing on any
# regression beyond 15%. -par-intra also gates the big-chip intra-scaling
# speedup (par-intra=8 vs serial), enforced only when GOMAXPROCS >= 8.
bench-smoke:
	( $(GO) test -run xxx -bench 'BenchmarkSimStep' -benchtime 3s ./internal/sim/ ; \
	  $(GO) test -run xxx -bench 'BenchmarkFig9PolicySweep' -benchtime 1x . ) \
	| $(GO) run ./cmd/ptbbench -compare BENCH_baseline.json -fail-over 15 -par-intra 2

# End-to-end gate for the serving layer: boot ptbserve with a store,
# hammer it with concurrent duplicate sweeps via ptbload (single-flight
# + warm hit-rate assertions), SIGTERM-drain, reboot on the same store
# and demand byte-identical digests. CI's serve-e2e job runs this.
serve-smoke:
	sh scripts/serve_smoke.sh

# Checkpoint/restore conformance (DESIGN.md §14): the short
# snapshot-at-midpoint matrix under the race detector, then every golden
# cell through the drill-and-resume cycle at par-intra 1 and 4. CI's
# checkpoint-conformance job runs exactly this.
ckpt-conformance:
	$(GO) test -race -count=1 -v \
		-run 'TestCheckpointConformanceShort|TestCheckpointCrashDrillAndAutoResume|TestCheckpointFallsBackOnDamage|TestResumeContextExplicit|TestExperimentWithCheckpoint' .
	$(GO) test -race -count=1 -v ./internal/ckpt/
	$(GO) test -count=1 -v -run 'TestGoldenMatrixCheckpointConformance' .

# Crash-recovery e2e: boot ptbserve with journal + snapshots, SIGKILL it
# mid-sweep, reboot, and demand full recovery with byte-identical
# digests. CI's crash-e2e job runs this.
crash-e2e:
	sh scripts/crash_e2e.sh

# CPU- and heap-profile a representative full run. Every cmd tool takes
# -cpuprofile/-memprofile/-trace (internal/prof), so the same recipe
# works for ptbsweep, ptbreport, ptbchaos, ... See EXPERIMENTS.md
# "Profiling a run" for reading the output.
profile:
	$(GO) run ./cmd/ptbsim -bench ocean -cores 4 -tech ptb -scale 0.25 -nobase \
		-cpuprofile cpu.out -memprofile mem.out
	$(GO) tool pprof -top -nodecount 15 cpu.out

# Short exploratory fuzz of the parsing/validation surfaces (seed corpora
# under testdata/fuzz/ run on every plain `go test`).
fuzz:
	$(GO) test -run xxx -fuzz FuzzParseTechnique -fuzztime 30s .
	$(GO) test -run xxx -fuzz FuzzParsePolicy -fuzztime 30s .
	$(GO) test -run xxx -fuzz FuzzConfigValidate -fuzztime 30s .
	$(GO) test -run xxx -fuzz FuzzParseFaultSpec -fuzztime 30s .
	$(GO) test -run xxx -fuzz FuzzParseTelemetrySpec -fuzztime 30s .
	$(GO) test -run xxx -fuzz FuzzParseIntraParallel -fuzztime 30s .

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
