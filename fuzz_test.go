package ptbsim

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseTechnique checks that technique parsing never panics, that every
// accepted input round-trips to the same canonical technique, and that every
// rejection wraps ErrUnknownTechnique.
func FuzzParseTechnique(f *testing.F) {
	for _, s := range TechniqueNames() {
		f.Add(s)
		f.Add(strings.ToUpper(s))
	}
	f.Add("twolevel")
	f.Add(" ptb ")
	f.Add("")
	f.Add("dvfs\x00")
	f.Fuzz(func(t *testing.T, s string) {
		tech, err := ParseTechnique(s)
		if err != nil {
			if !errors.Is(err, ErrUnknownTechnique) {
				t.Fatalf("ParseTechnique(%q) error %v does not wrap ErrUnknownTechnique", s, err)
			}
			if tech != "" {
				t.Fatalf("ParseTechnique(%q) returned %q alongside an error", s, tech)
			}
			return
		}
		again, err2 := ParseTechnique(string(tech))
		if err2 != nil || again != tech {
			t.Fatalf("ParseTechnique(%q) = %q but canonical name does not round-trip: (%q, %v)",
				s, tech, again, err2)
		}
		found := false
		for _, name := range TechniqueNames() {
			if string(tech) == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("ParseTechnique(%q) = %q, not in TechniqueNames()", s, tech)
		}
	})
}

// FuzzParsePolicy checks that policy parsing never panics, that accepted
// inputs round-trip through Policy.String, and that rejections wrap
// ErrUnknownPolicy.
func FuzzParsePolicy(f *testing.F) {
	for _, s := range PolicyNames() {
		f.Add(s)
		f.Add(strings.ToUpper(s))
	}
	f.Add("ToAll")
	f.Add("")
	f.Add("dynamic ")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			if !errors.Is(err, ErrUnknownPolicy) {
				t.Fatalf("ParsePolicy(%q) error %v does not wrap ErrUnknownPolicy", s, err)
			}
			return
		}
		again, err2 := ParsePolicy(p.String())
		if err2 != nil || again != p {
			t.Fatalf("ParsePolicy(%q) = %v but String() %q does not round-trip: (%v, %v)",
				s, p, p.String(), again, err2)
		}
	})
}

// FuzzParseFaultSpec checks the fault-spec parser never panics, that every
// accepted input yields a spec that validates and whose canonical String()
// reparses to the identical spec, and that every rejection wraps
// ErrBadFaultSpec so CLI tools can always errors.Is-dispatch.
func FuzzParseFaultSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=42,drop=0.25")
	f.Add("drop=1")
	f.Add("noise=0.05,drift=0.02,glitch=0.1")
	f.Add("stale=-1,retries=-1,delaycycles=-1,stallcycles=-1")
	f.Add("seed=0x10,backoff=16")
	f.Add(" drop = 0.1 , stall = 0.05 ")
	f.Add("drop=2")
	f.Add("bogus=1")
	f.Add("drop=0.1,drop=0.2")
	f.Add("drop")
	f.Add("drop=nan")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseFaultSpec(in)
		if err != nil {
			if !errors.Is(err, ErrBadFaultSpec) {
				t.Fatalf("ParseFaultSpec(%q) error %v does not wrap ErrBadFaultSpec", in, err)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseFaultSpec(%q) accepted a spec Validate rejects: %v", in, verr)
		}
		canon := s.String()
		again, err2 := ParseFaultSpec(canon)
		if err2 != nil {
			t.Fatalf("ParseFaultSpec(%q) = %+v but canonical %q does not reparse: %v", in, s, canon, err2)
		}
		if again != s {
			t.Fatalf("ParseFaultSpec(%q): canonical %q reparses to a different spec:\n in  %+v\n out %+v",
				in, canon, s, again)
		}
		if again.String() != canon {
			t.Fatalf("String() not canonical: %q then %q", canon, again.String())
		}
	})
}

// FuzzParseTelemetrySpec checks the -telemetry spec parser never panics,
// that every accepted spec validates, that its canonical String() reparses
// to the identical spec, and that every rejection wraps ErrBadTelemetrySpec
// so CLI tools can always errors.Is-dispatch.
func FuzzParseTelemetrySpec(f *testing.F) {
	f.Add("")
	f.Add("every=2048,out=run.jsonl")
	f.Add("every=512,format=csv,out=power.csv,ring=4096")
	f.Add("out=-")
	f.Add(" every = 100 , format = JSONL ")
	f.Add("every=-1")
	f.Add("every=1,every=2")
	f.Add("format=xml")
	f.Add("bogus=1")
	f.Add("every")
	f.Add("every=,out=x")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseTelemetrySpec(in)
		if err != nil {
			if !errors.Is(err, ErrBadTelemetrySpec) {
				t.Fatalf("ParseTelemetrySpec(%q) error %v does not wrap ErrBadTelemetrySpec", in, err)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseTelemetrySpec(%q) accepted a spec Validate rejects: %v", in, verr)
		}
		canon := s.String()
		again, err2 := ParseTelemetrySpec(canon)
		if err2 != nil {
			t.Fatalf("ParseTelemetrySpec(%q) = %+v but canonical %q does not reparse: %v", in, s, canon, err2)
		}
		if again != s {
			t.Fatalf("ParseTelemetrySpec(%q): canonical %q reparses to a different spec:\n in  %+v\n out %+v",
				in, canon, s, again)
		}
		if again.String() != canon {
			t.Fatalf("String() not canonical: %q then %q", canon, again.String())
		}
	})
}

// FuzzParseIntraParallel checks the -par-intra parser never panics, that
// every accepted tile count genuinely divides the effective core count,
// that accepted values round-trip through their canonical decimal form,
// and that every rejection — zero, negatives, non-divisors, non-integers —
// wraps ErrBadIntraParallel so CLI tools can errors.Is-dispatch.
func FuzzParseIntraParallel(f *testing.F) {
	f.Add("1", 8)
	f.Add("8", 8)
	f.Add("2", 0)
	f.Add("0", 8)
	f.Add("-4", 16)
	f.Add("3", 8)
	f.Add("16", 8)
	f.Add(" 4 ", 8)
	f.Add("2.5", 8)
	f.Add("", 4)
	f.Add("0x2", 8)
	f.Add("64", 256)
	f.Fuzz(func(t *testing.T, s string, cores int) {
		n, err := ParseIntraParallel(s, cores)
		eff := cores
		if eff <= 0 {
			eff = 4
		}
		if err != nil {
			if !errors.Is(err, ErrBadIntraParallel) {
				t.Fatalf("ParseIntraParallel(%q, %d) error %v does not wrap ErrBadIntraParallel", s, cores, err)
			}
			if n != 0 {
				t.Fatalf("ParseIntraParallel(%q, %d) returned %d alongside an error", s, cores, n)
			}
			return
		}
		if n < 1 || n > eff || eff%n != 0 {
			t.Fatalf("ParseIntraParallel(%q, %d) accepted %d, not a divisor of the effective %d cores", s, cores, n, eff)
		}
		again, err2 := ParseIntraParallel(strconv.Itoa(n), cores)
		if err2 != nil || again != n {
			t.Fatalf("ParseIntraParallel(%q, %d) = %d but canonical form does not round-trip: (%d, %v)",
				s, cores, n, again, err2)
		}
	})
}

// FuzzConfigValidate checks that Validate never panics on arbitrary field
// combinations, that every rejection wraps one of the exported sentinels
// (so callers can always errors.Is-dispatch), and that every accepted
// Config also converts cleanly to the internal simulator config — Validate
// may not pass anything internal() would choke on.
func FuzzConfigValidate(f *testing.F) {
	f.Add("fft", "ptb", 4, 2, 0.0, 0.5, 0.25, int64(0), 0)
	f.Add("ocean", "dvfs", 16, 0, 0.2, 1.0, 1.0, int64(50_000_000), 0)
	f.Add("barnes", "ptb", 64, 1, 0.0, 0.5, 0.1, int64(0), 4)
	f.Add("", "", 0, 0, 0.0, 0.0, 0.0, int64(0), 0)
	f.Add("nosuch", "warp", -1, 9, -0.5, 2.0, -1.0, int64(-1), -2)
	f.Fuzz(func(t *testing.T, bench, tech string, cores, policy int,
		relax, budget, scale float64, maxCycles int64, cluster int) {
		cfg := Config{
			Benchmark:      bench,
			Cores:          cores,
			Technique:      Technique(tech),
			Policy:         Policy(policy),
			RelaxFrac:      relax,
			BudgetFrac:     budget,
			WorkloadScale:  scale,
			MaxCycles:      maxCycles,
			PTBClusterSize: cluster,
		}
		err := cfg.Validate()
		if err == nil {
			if _, ierr := cfg.internal(); ierr != nil {
				t.Fatalf("Validate accepted %+v but internal() rejects it: %v", cfg, ierr)
			}
			if err2 := cfg.Validate(); err2 != nil {
				t.Fatalf("Validate is not idempotent: first nil, then %v", err2)
			}
			return
		}
		sentinels := []error{
			ErrUnknownBenchmark, ErrBadCores, ErrUnknownTechnique,
			ErrUnknownPolicy, ErrBadScale, ErrBadBudget, ErrBadRelax,
			ErrBadMaxCycles, ErrBadCluster,
		}
		for _, s := range sentinels {
			if errors.Is(err, s) {
				return
			}
		}
		t.Fatalf("Validate(%+v) error %v wraps no exported sentinel", cfg, err)
	})
}
