// Command ptbtrace regenerates the paper's power-trace figures: Fig. 5
// (per-cycle CMP power around the global budget, the PTB motivation) and
// Fig. 6 (the power signature of a core entering a spinning state). Output
// is an ASCII chart plus optional CSV samples for external plotting.
// SIGINT cancels the trace run cleanly.
//
// Usage:
//
//	ptbtrace -exp fig5
//	ptbtrace -exp fig6 -csv > fig6.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ptbsim"
	"ptbsim/internal/prof"
)

func main() {
	var (
		exp   = flag.String("exp", "fig5", "trace: fig5 (chip power vs budget), fig6 (spinning core)")
		scale = flag.Float64("scale", 0.15, "workload scale")
		csv   = flag.Bool("csv", false, "emit CSV samples instead of an ASCII chart")
		width = flag.Int("width", 100, "chart columns")
		check = flag.Bool("check", false, "enable runtime invariant checks (fails on any violation)")
	)
	var faults ptbsim.FaultSpecFlag
	flag.Var(&faults, "faults", "fault-injection spec, e.g. seed=42,noise=0.05")
	profFlags := prof.Register(nil)
	flag.Parse()
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var trace []float64
	var budget float64
	var title string
	switch *exp {
	case "fig5":
		chip, _, budgetPJ, err := tracePower(ctx, ptbsim.Config{
			Benchmark:       "ocean",
			Cores:           4,
			Technique:       ptbsim.None,
			WorkloadScale:   *scale,
			MaxCycles:       20_000_000,
			CheckInvariants: *check,
			Faults:          faults.Spec,
		}, 50, -1)
		if err != nil {
			fail(err)
		}
		trace, budget = chip, budgetPJ
		title = "Figure 5 — per-cycle CMP power vs the global power budget (4-core ocean)"
	case "fig6":
		_, coreTrace, budgetPJ, err := tracePower(ctx, ptbsim.Config{
			Benchmark:       "raytrace",
			Cores:           4,
			Technique:       ptbsim.None,
			WorkloadScale:   *scale,
			MaxCycles:       20_000_000,
			CheckInvariants: *check,
			Faults:          faults.Spec,
		}, 10, 2)
		if err != nil {
			fail(err)
		}
		// A core's local budget is the global budget split evenly.
		trace, budget = coreTrace, budgetPJ/4
		title = "Figure 6 — per-cycle power of a core contending for a lock (raytrace)"
	default:
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", *exp)
		os.Exit(2)
	}

	if *csv {
		fmt.Println("sample,power_pj,budget_pj")
		for i, v := range trace {
			fmt.Printf("%d,%.1f,%.1f\n", i, v, budget)
		}
		return
	}
	fmt.Println(title)
	chart(trace, budget, *width)
}

// tracePower runs cfg with a MemoryObserver sampling every `every` cycles
// and flattens the telemetry into the chip power trace and, when core >= 0,
// that core's per-cycle power trace (both pJ at the sampled cycle). The
// partial tail sample is skipped to match the figures' fixed-period grids.
func tracePower(ctx context.Context, cfg ptbsim.Config, every int64, core int) (chip, coreTrace []float64, budgetPJ float64, err error) {
	mo := &ptbsim.MemoryObserver{}
	cfg.Observe = &ptbsim.Telemetry{Every: every, Ring: 1, Observer: mo}
	res, err := ptbsim.RunContext(ctx, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, s := range mo.Samples() {
		if s.Partial {
			continue
		}
		chip = append(chip, s.ChipPJ)
		if core >= 0 && core < len(s.CorePJ) {
			coreTrace = append(coreTrace, s.CorePJ[core])
		}
	}
	return chip, coreTrace, res.BudgetPJ, nil
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ptbtrace: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// chart draws the trace as rows of a horizontal ASCII plot, marking the
// budget line.
func chart(trace []float64, budget float64, width int) {
	if len(trace) == 0 {
		fmt.Println("(empty trace)")
		return
	}
	maxV := budget
	for _, v := range trace {
		if v > maxV {
			maxV = v
		}
	}
	// Aggregate samples into at most 48 rows.
	rows := 48
	per := (len(trace) + rows - 1) / rows
	budgetCol := int(budget / maxV * float64(width-1))
	fmt.Printf("budget = %.0f pJ/cycle (column marked '|'), peak sample = %.0f\n", budget, maxV)
	for i := 0; i < len(trace); i += per {
		end := i + per
		if end > len(trace) {
			end = len(trace)
		}
		avg := 0.0
		for _, v := range trace[i:end] {
			avg += v
		}
		avg /= float64(end - i)
		col := int(avg / maxV * float64(width-1))
		line := []byte(strings.Repeat(" ", width))
		for c := 0; c <= col && c < width; c++ {
			line[c] = '#'
		}
		if budgetCol < width {
			if line[budgetCol] == '#' {
				line[budgetCol] = 'X'
			} else {
				line[budgetCol] = '|'
			}
		}
		fmt.Printf("%6d %s %.0f\n", i, string(line), avg)
	}
}
