// Command ptbserve runs the experiment engine as a long-running HTTP
// service: clients POST configurations or sweep cross-products as JSON
// (the same stable wire schema as `ptbsim -json`), the server simulates
// them on a bounded priority queue with single-flight deduplication, and
// every result lands in a digest-verified on-disk cache that survives
// restarts. Live telemetry streams over SSE at /v1/telemetry.
//
// Usage:
//
//	ptbserve -addr :8177 -store /var/lib/ptbsim
//	ptbserve -addr :8177 -par 8 -queue 256 -scale 0.25
//
//	curl -s localhost:8177/v1/runs -d '{"config":{"benchmark":"fft","cores":8,"technique":"ptb"}}'
//	curl -s localhost:8177/v1/stats
//	curl -N localhost:8177/v1/telemetry
//
// Backpressure: with -queue set, a full queue answers 429 with a
// Retry-After header. SIGTERM/SIGINT stop the listener, finish every
// accepted job, flush the store, and exit 0; a second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"ptbsim"
	"ptbsim/internal/serve"
	"ptbsim/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8177", "listen address")
		par      = flag.Int("par", runtime.NumCPU(), "parallel simulations (worker pool size)")
		queueCap = flag.Int("queue", 1024, "max queued configurations before 429 backpressure (0 = unbounded)")
		storeDir = flag.String("store", "", "persistent result-cache directory (empty = in-memory only)")
		scale    = flag.Float64("scale", 0.25, "default workload scale for configs that leave it zero")
		every    = flag.Int64("every", 0, "telemetry sampling period in cycles for the SSE feed (0 = default)")
		check    = flag.Bool("check", false, "enable runtime invariant checks on every run")
		drainFor = flag.Duration("drain", 5*time.Minute, "graceful-shutdown budget for finishing accepted jobs")
	)
	var checkpoint ptbsim.CheckpointFlag
	flag.Var(&checkpoint, "checkpoint",
		"periodic per-run snapshots, e.g. every=1000000,dir=/var/lib/ptbsim/ckpt; interrupted runs resume from the latest snapshot on replay")
	flag.Parse()

	hub := serve.NewHub()
	opts := []ptbsim.Option{
		ptbsim.WithScale(*scale),
		ptbsim.WithParallelism(*par),
		ptbsim.WithQueue(*queueCap),
		ptbsim.WithObserver(*every, hub),
	}
	if *check {
		opts = append(opts, ptbsim.WithInvariants())
	}
	if checkpoint.Spec != nil {
		ck := checkpoint.Spec.Checkpoint()
		opts = append(opts, ptbsim.WithCheckpoint(ck.Every, ck.Dir))
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptbserve:", err)
			os.Exit(2)
		}
		if rej := st.Rejected(); len(rej) > 0 {
			fmt.Fprintf(os.Stderr, "ptbserve: store: quarantined %d corrupt entries: %v\n", len(rej), rej)
		}
		fmt.Fprintf(os.Stderr, "ptbserve: store %s: %d results loaded\n", st.Dir(), st.Len())
		opts = append(opts, ptbsim.WithCache(st))
	}
	exp := ptbsim.NewExperiment(opts...)
	srv := serve.New(exp, st, hub)

	// Crash recovery: with a persistent store, accepted jobs ride a
	// write-ahead journal. Replay whatever the last process left pending —
	// completed jobs resolve as cache hits, interrupted ones recompute (or
	// resume from their latest snapshot with -checkpoint) — so a SIGKILL
	// loses zero accepted jobs.
	var jr *store.Journal
	if *storeDir != "" {
		var pending []store.JournalRecord
		var err error
		jr, pending, err = store.OpenJournal(filepath.Join(*storeDir, "jobs.wal"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptbserve:", err)
			os.Exit(2)
		}
		defer jr.Close()
		if torn := jr.Torn(); torn > 0 {
			fmt.Fprintf(os.Stderr, "ptbserve: journal: dropped %d torn record(s) from the last crash\n", torn)
		}
		srv.AttachJournal(jr)
		if len(pending) > 0 {
			n, err := srv.ReplayJournal(context.Background(), pending)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ptbserve:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "ptbserve: journal: replaying %d interrupted job(s)\n", n)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ptbserve: listening on %s (par=%d queue=%d scale=%g)\n",
			*addr, *par, *queueCap, *scale)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ptbserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "ptbserve: shutting down: draining accepted jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ptbserve: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ptbserve:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ptbserve: drained cleanly")
}
