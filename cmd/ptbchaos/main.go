// Command ptbchaos measures PTB's graceful degradation under lossy token
// exchange: it sweeps the token-drop rate across core counts and prints,
// per (cores, rate), the balancer's energy-accuracy error next to the
// end-to-end drift (energy, runtime, AoPB) from the fault-free run of the
// same configuration and the degradation telemetry (lost token energy,
// stale-watchdog fallback cycles, Degraded flag).
//
// The energy-accuracy error Eerr is the share of chip energy whose power
// tokens the balancer lost past the retry bound or double-counted from
// duplicates — how far the balancer's energy picture drifts from ground
// truth. It is the structural degradation signal: a batch dies only when
// drop defeats every retransmission (probability ~drop^(1+retries)), so
// the error grows steeply and monotonically with the drop rate. The
// end-to-end columns are deliberately NOT asserted on: lost grants make
// the chip throttle conservatively, so total energy and AoPB drift
// fail-safe — small and direction-free — which is the graceful part of
// the degradation.
//
// The rate-0 row of each core count is the anchor: it runs through the
// same fault-injection code path with every rate at zero, so its errors
// are exactly 0 by the zero-rate identity the golden tests pin down.
// `-assert-monotone` turns the table into a regression check: the
// energy-accuracy error must be non-decreasing in the drop rate for every
// core count, the "more faults can only hurt, and gradually" claim of the
// degradation design.
//
// Usage:
//
//	ptbchaos -scale 0.25 -check
//	ptbchaos -rates 0,0.1,0.5,0.9 -cores 4,8,16 -bench raytrace
//	ptbchaos -scale 0.25 -check -assert-monotone   # the CI chaos-matrix job
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"ptbsim"
	"ptbsim/internal/prof"
)

func main() {
	var (
		bench    = flag.String("bench", "ocean", "benchmark name")
		coresCSV = flag.String("cores", "2,4,8", "comma-separated core counts")
		ratesCSV = flag.String("rates", "0,0.25,0.75", "comma-separated token-drop rates in [0, 1]")
		scale    = flag.Float64("scale", 0.25, "workload scale (1.0 = Table 2 size)")
		seed     = flag.Uint64("seed", 1, "fault-injection seed")
		par      = flag.Int("par", runtime.NumCPU(), "parallel simulations")
		check    = flag.Bool("check", false, "enable runtime invariant checks on every run (fails on any violation)")
		assert   = flag.Bool("assert-monotone", false, "exit 1 unless the energy-accuracy error is non-decreasing in the drop rate for every core count")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
		outPath  = flag.String("o", "", "output file (default stdout)")
		parIn    = flag.Int("par-intra", 0, "shard each simulated chip across up to this many goroutine-stepped tiles (0 = serial; each chip uses the largest divisor of its core count that fits; output is identical at any value)")
	)
	pol := ptbsim.Dynamic
	flag.Var(&pol, "policy", "PTB policy: "+strings.Join(ptbsim.PolicyNames(), ", "))
	var telemetry ptbsim.TelemetryFlag
	flag.Var(&telemetry, "telemetry", "stream epoch telemetry from every run into one merged feed, e.g. every=2048,out=chaos.jsonl")
	profFlags := prof.Register(nil)
	flag.Parse()
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	cores, err := parseInts(*coresCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -cores:", err)
		os.Exit(2)
	}
	rates, err := parseRates(*ratesCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -rates:", err)
		os.Exit(2)
	}
	sort.Float64s(rates)
	if rates[0] != 0 {
		// The fault-free anchor row is always simulated: every error column
		// is relative to it.
		rates = append([]float64{0}, rates...)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		out = f
	}

	opts := []ptbsim.Option{
		ptbsim.WithScale(*scale),
		ptbsim.WithParallelism(*par),
	}
	if *parIn > 0 {
		opts = append(opts, ptbsim.WithIntraParallel(*parIn))
	}
	if *check {
		opts = append(opts, ptbsim.WithInvariants())
	}
	if telemetry.Spec != nil {
		tel, closeTel, err := telemetry.Spec.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = append(opts, ptbsim.WithObserver(tel.Every, tel.Observer), ptbsim.WithObserverRing(tel.Ring))
		defer func() {
			if err := closeTel(); err != nil {
				fmt.Fprintln(os.Stderr, "ptbchaos: telemetry:", err)
			}
		}()
	}
	if !*quiet {
		opts = append(opts, ptbsim.WithProgress(func(p ptbsim.Progress) {
			if p.Err == nil {
				drop := 0.0
				if p.Config.Faults != nil {
					drop = p.Config.Faults.TokenDrop
				}
				fmt.Fprintf(os.Stderr, "ran %2d/%d %s/%d drop=%g\n",
					p.Done, p.Total, p.Config.Benchmark, p.Config.Cores, drop)
			}
		}))
	}
	e := ptbsim.NewExperiment(opts...)

	// One config per (cores, rate), row-major in the table's print order.
	var cfgs []ptbsim.Config
	for _, n := range cores {
		for _, rate := range rates {
			spec := &ptbsim.FaultSpec{Seed: *seed, TokenDrop: rate}
			cfgs = append(cfgs, ptbsim.Config{
				Benchmark: *bench,
				Cores:     n,
				Technique: ptbsim.PTB,
				Policy:    pol,
				Faults:    spec,
			})
		}
	}
	results, err := e.RunAll(ctx, cfgs)
	if err != nil {
		fail(err)
	}

	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "PTB degradation under token-drop faults — %s, policy %s, scale %g, seed %d\n",
		*bench, pol, *scale, *seed)
	fmt.Fprintf(w, "%-6s %-6s %12s %10s %10s %10s %10s %14s %12s %s\n",
		"cores", "drop", "energy(mJ)", "Eerr(%)", "dE(%)", "slow(%)", "dAoPB(%)", "tokLost(pJ)", "staleCycles", "degraded")
	monotone := true
	for ci, n := range cores {
		base := results[ci*len(rates)]
		prevErr := -1.0
		for ri, rate := range rates {
			r := results[ci*len(rates)+ri]
			eErr := accountingErrPct(r)
			dE := relErrPct(r.EnergyJ, base.EnergyJ)
			slow := (float64(r.Cycles)/float64(base.Cycles) - 1) * 100
			dAoPB := relErrPct(r.AoPBJ, base.AoPBJ)
			fmt.Fprintf(w, "%-6d %-6g %12.4f %10.4f %10.4f %10.4f %10.4f %14.1f %12d %t\n",
				n, rate, r.EnergyJ*1e3, eErr, dE, slow, dAoPB,
				r.TokenLostPJ, r.StaleFallbackCycles, r.Degraded)
			if eErr < prevErr {
				monotone = false
				fmt.Fprintf(w, "  ^ NON-MONOTONE: energy-accuracy error fell from %.4f%% at the previous rate\n", prevErr)
			}
			prevErr = eErr
		}
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	if *assert && !monotone {
		fmt.Fprintln(os.Stderr, "ptbchaos: energy-accuracy error is not monotone in the token-drop rate")
		stopProf()
		os.Exit(1)
	}
}

// accountingErrPct is the balancer's energy-accuracy error: the share of
// chip energy whose tokens were lost past the retry bound or
// double-counted from in-flight duplication, in percent. Exactly 0 at
// rate 0 (nothing fires), and monotone in the drop rate by construction —
// a batch dies only when drop defeats every retransmission.
func accountingErrPct(r *ptbsim.Result) float64 {
	chipPJ := r.EnergyJ * 1e12
	if chipPJ == 0 {
		return 0
	}
	return (r.TokenLostPJ + r.TokenDupPJ) / chipPJ * 100
}

// relErrPct is the relative drift of v against the fault-free anchor, in
// percent; exactly 0 when v equals the anchor bit-for-bit.
func relErrPct(v, anchor float64) float64 {
	if v == anchor {
		return 0
	}
	if anchor == 0 {
		return 100
	}
	e := (v/anchor - 1) * 100
	if e < 0 {
		e = -e
	}
	return e
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}

func parseRates(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("rate %g outside [0, 1]", f)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ptbchaos: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
