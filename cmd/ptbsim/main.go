// Command ptbsim runs one CMP simulation and prints the paper's metrics
// for it, optionally next to the no-control base case. SIGINT cancels the
// run cleanly.
//
// Usage:
//
//	ptbsim -bench ocean -cores 8 -tech ptb -policy dynamic
//	ptbsim -bench fluidanimate -cores 16 -tech 2level -scale 0.3
//	ptbsim -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ptbsim"
	"ptbsim/internal/prof"
)

func main() {
	var (
		bench   = flag.String("bench", "ocean", "benchmark name (see -list)")
		cores   = flag.Int("cores", 4, "number of cores (2, 4, 8, 16)")
		relax   = flag.Float64("relax", 0, "relaxed trigger threshold (e.g. 0.2 = +20%)")
		budget  = flag.Float64("budget", 0.5, "global budget as a fraction of rated peak")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = Table 2 size)")
		noBase  = flag.Bool("nobase", false, "skip the base-case run and normalization")
		pessim  = flag.Bool("pessimistic", false, "use the 10-cycle PTB latency")
		check   = flag.Bool("check", false, "enable runtime invariant checks (fails on any violation)")
		listAll = flag.Bool("list", false, "list benchmarks and exit")
		asJSON  = flag.Bool("json", false, "emit the result as JSON")
		parIn   = flag.String("par-intra", "1", "shard the simulated chip across this many goroutine-stepped tiles (a divisor of -cores; results are bit-identical at any legal value)")
	)
	// The typed flag.Values validate at parse time through the library's
	// parsers, so unknown names fail loudly with the canonical errors
	// instead of silently defaulting.
	tech := ptbsim.PTB
	flag.Var(&tech, "tech", "technique: "+strings.Join(ptbsim.TechniqueNames(), ", "))
	policy := ptbsim.Dynamic
	flag.Var(&policy, "policy", "PTB policy: "+strings.Join(ptbsim.PolicyNames(), ", "))
	var faults ptbsim.FaultSpecFlag
	flag.Var(&faults, "faults", "fault-injection spec, e.g. seed=42,drop=0.25,noise=0.02 (keys: seed, drop, delay, dup, delaycycles, stale, retries, backoff, stall, stallcycles, corrupt, noise, drift, glitch)")
	var telemetry ptbsim.TelemetryFlag
	flag.Var(&telemetry, "telemetry", "stream epoch telemetry, e.g. every=2048,out=run.jsonl (keys: every, ring, out, format)")
	var checkpoint ptbsim.CheckpointFlag
	flag.Var(&checkpoint, "checkpoint", "write crash-recovery snapshots and auto-resume, e.g. every=500000,dir=ckpt (keys: every, dir, stop)")
	resume := flag.String("resume", "", "resume explicitly from this snapshot file and run to completion (ignores the workload flags; fails loudly on a corrupt or mismatched snapshot)")
	profFlags := prof.Register(nil)
	flag.Parse()
	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	if *listAll {
		fmt.Printf("%-9s %-14s %s\n", "SUITE", "BENCHMARK", "INPUT")
		for _, b := range ptbsim.Benchmarks() {
			fmt.Printf("%-9s %-14s %s\n", b.Suite, b.Name, b.InputSize)
		}
		return
	}

	tiles, err := ptbsim.ParseIntraParallel(*parIn, *cores)
	if err != nil {
		fail(err)
	}

	cfg := ptbsim.Config{
		Benchmark:             *bench,
		Cores:                 *cores,
		Technique:             tech,
		Policy:                policy,
		RelaxFrac:             *relax,
		BudgetFrac:            *budget,
		WorkloadScale:         *scale,
		PessimisticPTBLatency: *pessim,
		CheckInvariants:       *check,
		Faults:                faults.Spec,
		IntraParallel:         tiles,
	}
	if checkpoint.Spec != nil {
		cfg.Checkpoint = checkpoint.Spec.Checkpoint()
	}
	if telemetry.Spec != nil {
		tel, closeTel, err := telemetry.Spec.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Observe = tel
		defer func() {
			if err := closeTel(); err != nil {
				fmt.Fprintln(os.Stderr, "ptbsim: telemetry:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *resume != "" {
		// Snapshots are self-describing, so -resume needs no workload flags:
		// the embedded config rides inside the file. -checkpoint may still set
		// the cadence for further snapshots while the run completes.
		var every int64
		if checkpoint.Spec != nil {
			every = checkpoint.Spec.Checkpoint().Every
		}
		r, err := ptbsim.ResumeContext(ctx, *resume, every)
		if err != nil {
			fail(err)
		}
		emit(r, *asJSON)
		return
	}

	r, err := ptbsim.RunContext(ctx, cfg)
	if err != nil {
		fail(err)
	}
	emit(r, *asJSON)
	if *asJSON {
		return
	}

	if !*noBase && cfg.Technique != ptbsim.None {
		baseCfg := cfg
		baseCfg.Technique = ptbsim.None
		baseCfg.Observe = nil // the telemetry feed covers the headline run
		base, err := ptbsim.RunContext(ctx, baseCfg)
		if err != nil {
			fail(err)
		}
		fmt.Println("vs no-control base case:")
		fmt.Printf("  normalized energy : %+6.1f %%\n", ptbsim.NormalizedEnergyPct(r, base))
		fmt.Printf("  normalized AoPB   : %6.1f %%\n", ptbsim.NormalizedAoPBPct(r, base))
		fmt.Printf("  slowdown          : %+6.1f %%\n", ptbsim.SlowdownPct(r, base))
	}
}

// emit prints r either as indented JSON or in the human layout.
func emit(r *ptbsim.Result, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	printResult(r)
}

// fail reports err and exits, distinguishing an interrupted run (exit 130,
// the conventional SIGINT status) and a deliberate crash-drill stop (exit 3,
// resumable) from a real failure.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "ptbsim: interrupted")
		os.Exit(130)
	}
	if errors.Is(err, ptbsim.ErrRunStopped) {
		fmt.Fprintln(os.Stderr, "ptbsim: crash drill stop:", err)
		fmt.Fprintln(os.Stderr, "ptbsim: rerun with the same -checkpoint dir to resume")
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func printResult(r *ptbsim.Result) {
	label := string(r.Technique)
	if r.Technique == ptbsim.PTB {
		label += "/" + r.Policy
	}
	fmt.Printf("%s on %d cores (%s)\n", r.Benchmark, r.Cores, label)
	fmt.Printf("  cycles            : %d\n", r.Cycles)
	fmt.Printf("  instructions      : %d (IPC/core %.2f)\n", r.Committed,
		float64(r.Committed)/float64(r.Cycles)/float64(r.Cores))
	fmt.Printf("  energy            : %.4f mJ\n", r.EnergyJ*1e3)
	fmt.Printf("  AoPB              : %.4f mJ (over budget %.1f%% of cycles)\n",
		r.AoPBJ*1e3, r.OverBudgetFrac*100)
	fmt.Printf("  chip power        : %.2f W mean, %.2f W std\n", r.MeanPowerW, r.StdPowerW)
	fmt.Printf("  time breakdown    : busy %.1f%%, lock-acq %.1f%%, lock-rel %.1f%%, barrier %.1f%%\n",
		r.BusyFrac*100, r.LockAcqFrac*100, r.LockRelFrac*100, r.BarrierFrac*100)
	fmt.Printf("  spinning power    : %.1f %% of energy\n", r.SpinEnergyFrac*100)
	fmt.Printf("  temperature       : %.1f C mean, %.2f C std\n", r.MeanTempC, r.StdTempC)
	if len(r.ComponentJ) > 0 && r.EnergyJ > 0 {
		fmt.Printf("  energy by group   :")
		for _, g := range []string{"frontend", "execute", "caches", "noc", "dram", "power-mgmt", "clock", "leakage"} {
			fmt.Printf(" %s %.0f%%", g, 100*r.ComponentJ[g]/r.EnergyJ)
		}
		fmt.Println()
	}
	if r.FaultsInjected > 0 || r.Degraded {
		fmt.Printf("  faults injected   : %d (token lost %.0f pJ, retries %d, reports lost %d, stale-fallback %d cycles, noc stalls %d, retransmits %d, dvfs glitches %d)\n",
			r.FaultsInjected, r.TokenLostPJ, r.TokenRetries, r.TokenReportsLost,
			r.StaleFallbackCycles, r.NoCStallCycles, r.NoCRetransmits, r.DVFSGlitches)
		if r.Degraded {
			fmt.Println("  DEGRADED: balancer lost tokens or ran on the stale-share fallback")
		}
	}
	if r.HitMaxCycles {
		fmt.Println("  WARNING: run truncated by the cycle cap")
	}
}
